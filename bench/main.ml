(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI) plus the ablation studies called out in
   DESIGN.md. Timing uses the monotonic clock (Benchkit.Clock); workload
   definitions and the machine-readable report live in Benchkit.Defs.

   Subcommands:
     fig1             - the three example IFPs of Fig. 1 (+ checks + DOT)
     table1           - Wilander-Kamkar suite results (Table I)
     table2 [scale]   - performance overhead VP vs VP+ (Table II)
     loc              - DIFT-integration LoC share (the paper's 6.81% stat)
     ablate-dmi       - DMI fast path vs full TLM routing
     ablate-policy    - cost decomposition: tags only vs tags+checks
     ablate-lub       - precomputed LUB table vs on-the-fly search
     ablate-quantum   - loosely-timed quantum sweep
     sweep-lattice    - VP+ overhead vs IFP size (beyond the paper)
     snapshot         - full-platform save/restore cost (checkpointing)
     parallel         - domain-parallel campaign engine: wall vs cpu scaling
     graph            - IFT graph store: ingest + backward-query cost
     table2-extended [scale] - additional workloads (crc32, matmul, ...)
     bechamel         - Bechamel micro-measurements (one group per table)
     all (default)    - everything above except bechamel

   [scale] is a float (0.01 gives a seconds-long smoke run); flags
   --no-block-cache / --no-fast-path disable the core's decoded-block
   cache / untainted fast path for the timed subcommands, and --trace adds
   a third vp+trace row per workload (VP+ with the tracing subsystem
   attached) to table2 / table2-extended so reports record the tracing
   overhead. --jobs=N sets the worker-domain count for table1 and
   parallel (default: the runtime's recommended domain count),
   --reps=N repeats each parallel row N times, and --no-warm-start
   cold-boots campaign SoCs instead of restoring the shared boot
   snapshot (see docs/parallel.md). For table2 / table2-extended,
   --engine=interp|threaded|superblock (repeatable) measures the
   workloads once per named execution engine — rows carry an "engine"
   field so CI can compare superblock vs threaded vs interpreter
   throughput — and --only=W1[,W2,...] restricts the set to the named
   workloads (the perf-smoke job runs `table2 --only=hello,dispatch
   --engine=interp --engine=threaded --engine=superblock`; slowest
   engine first, so process warmup is not charged to a gated
   comparison). Each timed
   subcommand also writes a BENCH_<name>.json report (schema in
   docs/perf.md). *)

let pf = Printf.printf
let now_s = Benchkit.Clock.now_s

module D = Benchkit.Defs

(* ------------------------------------------------------------------ *)
(* Fig. 1                                                              *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  pf "=== Fig. 1: example information flow policies ===\n\n";
  let show name l =
    pf "%s:\n%s\n" name (Format.asprintf "%a" Dift.Lattice.pp l);
    pf "dot:\n%s\n" (Dift.Lattice.to_dot l)
  in
  let c = Dift.Lattice.confidentiality () in
  let i = Dift.Lattice.integrity () in
  let p = Dift.Lattice.ifp3 () in
  show "IFP-1 (confidentiality)" c;
  show "IFP-2 (integrity)" i;
  show "IFP-3 (product)" p;
  (* The properties quoted in Section IV-A. *)
  let t n = Dift.Lattice.tag_of_name p n in
  let lub = Dift.Lattice.name p (Dift.Lattice.lub p (t "LC,LI") (t "HC,HI")) in
  pf "check: LUB((LC,LI),(HC,HI)) = %s (paper: HC,LI) %s\n" lub
    (if lub = "HC,LI" then "[ok]" else "[MISMATCH]");
  let flow a b = Dift.Lattice.allowed_flow p (t a) (t b) in
  pf "check: (HC,*) cannot reach (LC,*) outputs: %s\n"
    (if (not (flow "HC,HI" "LC,LI")) && not (flow "HC,LI" "LC,LI") then "[ok]"
     else "[MISMATCH]");
  pf "check: (*,LI) cannot reach (*,HI) sinks: %s\n"
    (if (not (flow "LC,LI" "LC,HI")) && not (flow "HC,LI" "HC,HI")  then "[ok]"
     else "[MISMATCH]")

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

(* Each attack boots its own SoC, so the suite is a natural task list:
   run the attacks on a worker pool, then print the results in attack
   order — the output is identical for every [jobs]. *)
let run_table1 ~jobs =
  Parallelkit.Pool.map_list ~jobs
    (fun a -> Firmware.Wilander.run a.Firmware.Wilander.id)
    Firmware.Wilander.attacks

let table1 ~jobs () =
  pf "=== Table I: buffer-overflow test-suite results ===\n\n";
  pf "%-5s %-15s %-26s %-10s %-10s\n" "Atk#" "Location" "Target" "Technique"
    "Result";
  let ok = ref true in
  List.iter2
    (fun a outcome ->
      let result =
        match outcome with
        | Firmware.Wilander.Detected -> "Detected"
        | Firmware.Wilander.Missed c ->
            ok := false;
            Printf.sprintf "MISSED (exit %d)" c
        | Firmware.Wilander.Not_applicable -> "N/A"
      in
      pf "%-5d %-15s %-26s %-10s %-10s\n" a.Firmware.Wilander.id
        a.Firmware.Wilander.location a.Firmware.Wilander.target
        a.Firmware.Wilander.technique result)
    Firmware.Wilander.attacks (run_table1 ~jobs);
  pf "\npaper: 10 Detected / 8 N/A -> %s\n"
    (if !ok then "reproduced" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* Machine-readable reports                                            *)
(* ------------------------------------------------------------------ *)

let write_report ~file ~bench ~scale ~block_cache ~fast_path rows =
  let doc = D.doc ~bench ~scale ~block_cache ~fast_path rows in
  (match D.validate doc with
  | Ok () -> ()
  | Error e -> pf "!! report failed schema validation: %s\n" e);
  Snapshot.Io.write_file_atomic file (Benchkit.Json.to_string doc ^ "\n");
  pf "\nwrote %s\n" file

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

(* Each group is a workload's measurement rows: [vp; vpp] or, with
   --trace, [vp; vpp; vp+trace]. *)
let print_table2 groups =
  let traced = List.exists (fun g -> List.length g > 2) groups in
  pf "%-15s %14s %8s %9s %9s %7s %7s %6s%s\n" "Benchmark" "#instr exec."
    "LoC ASM" "VP [s]" "VP+ [s]" "VP" "VP+" "Ov."
    (if traced then " +trace" else "");
  pf "%-15s %14s %8s %9s %9s %7s %7s %6s%s\n" "" "" "" "" "" "MIPS" "MIPS" ""
    (if traced then "    Ov." else "");
  List.iter
    (function
      | vp :: vpp :: rest ->
          if not (vp.D.m_exit_ok && vpp.D.m_exit_ok) then
            pf "!! %s did not exit cleanly\n" vp.D.m_workload;
          pf "%-15s %14d %8d %9.3f %9.3f %7.1f %7.1f %5.1fx" vp.D.m_workload
            vp.D.m_instructions vp.D.m_loc_asm vp.D.m_seconds vpp.D.m_seconds
            vp.D.m_mips vpp.D.m_mips vpp.D.m_overhead;
          (match rest with
          | vpt :: _ -> pf " %5.1fx" vpt.D.m_overhead
          | [] -> ());
          pf "\n"
      | _ -> ())
    groups;
  let vp_of g = List.nth g 0 and vpp_of g = List.nth g 1 in
  let n = float_of_int (List.length groups) in
  let avg f = List.fold_left (fun a g -> a +. f g) 0. groups /. n in
  let sum f = List.fold_left (fun a g -> a + f g) 0 groups in
  pf "%-15s %14d %8d %9.3f %9.3f %7.1f %7.1f %5.1fx" "- average -"
    (sum (fun g -> (vp_of g).D.m_instructions) / List.length groups)
    (sum (fun g -> (vp_of g).D.m_loc_asm) / List.length groups)
    (avg (fun g -> (vp_of g).D.m_seconds))
    (avg (fun g -> (vpp_of g).D.m_seconds))
    (avg (fun g -> (vp_of g).D.m_mips))
    (avg (fun g -> (vpp_of g).D.m_mips))
    (avg (fun g -> (vpp_of g).D.m_overhead));
  if traced then
    pf " %5.1fx"
      (avg (fun g ->
           match g with _ :: _ :: vpt :: _ -> vpt.D.m_overhead | _ -> 1.));
  pf "\n"

let measure_set ~block_cache ~fast_path ~trace ~engine defs =
  List.map (D.measure ~block_cache ~fast_path ~trace ~engine) defs

(* One measurement pass per requested engine; the rows of every engine
   land in the same report (distinguished by their "engine" field), so
   CI can compare threaded vs interpreter throughput from one file. *)
let measure_engines ~block_cache ~fast_path ~trace ~engines defs =
  List.concat_map
    (fun engine ->
      if List.length engines > 1 then
        pf "--- engine: %s ---\n" (Rv32.Core.engine_name engine);
      let groups = measure_set ~block_cache ~fast_path ~trace ~engine defs in
      print_table2 groups;
      pf "\n";
      List.concat groups)
    engines

let filter_defs ~only defs =
  match only with
  | None -> defs
  | Some names ->
      let names = String.split_on_char ',' names in
      List.iter
        (fun name ->
          if not (List.exists (fun d -> d.D.d_name = name) defs) then begin
            pf "no workload named %S (known: %s)\n" name
              (String.concat " " (List.map (fun d -> d.D.d_name) defs));
            exit 1
          end)
        names;
      List.filter (fun d -> List.mem d.D.d_name names) defs

let table2 ~scale ~block_cache ~fast_path ~trace ~engines ~only () =
  pf "=== Table II: performance overhead of VP-based DIFT (scale %g) ===\n\n"
    scale;
  pf "(workloads scaled down vs the paper's multi-billion-instruction runs;\n";
  pf " the target is the overhead SHAPE: VP+ roughly 1.2x-3x, average ~2x)\n\n";
  let defs = filter_defs ~only (D.table2 ~scale) in
  let rows = measure_engines ~block_cache ~fast_path ~trace ~engines defs in
  write_report ~file:"BENCH_table2.json" ~bench:"table2" ~scale ~block_cache
    ~fast_path rows

let table2_extended ~scale ~block_cache ~fast_path ~trace ~engines ~only () =
  pf "=== Extended workloads (beyond the paper's Table II set) ===\n\n";
  let defs = filter_defs ~only (D.extended ~scale) in
  let rows = measure_engines ~block_cache ~fast_path ~trace ~engines defs in
  write_report ~file:"BENCH_table2_extended.json" ~bench:"table2-extended"
    ~scale ~block_cache ~fast_path rows

(* ------------------------------------------------------------------ *)
(* LoC statistic (Section V-B1's 6.81%)                                *)
(* ------------------------------------------------------------------ *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let rec ml_files dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.concat_map (fun e ->
             let p = Filename.concat dir e in
             if Sys.is_directory p then ml_files p
             else if Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
             then [ p ]
             else [])
  | exception Sys_error _ -> []

let loc_report () =
  pf "=== DIFT-integration LoC share (cf. the paper's 6.81%%) ===\n\n";
  let total = List.fold_left (fun a f -> a + count_lines f) 0 (ml_files "lib") in
  let dift = List.fold_left (fun a f -> a + count_lines f) 0 (ml_files "lib/core") in
  if total = 0 then
    pf "(run from the repository root to measure the source tree)\n"
  else
    pf
      "DIFT engine (lib/core): %d lines of %d platform lines total = %.2f%%\n\
       (the paper reports 6.81%% of the original VP touched, 58.7%% of which\n\
       were plain type conversions; our engine is a separate library, so the\n\
       share counts its whole implementation)\n"
      dift total
      (100. *. float_of_int dift /. float_of_int total)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

(* One qsort run under explicit platform knobs, as a report row. *)
let qsort_case ~mode ~tracking ~dmi ~quantum ~block_cache ~fast_path
    ~policy_of =
  let img = Firmware.Qsort_fw.image ~n:1000 ~rounds:4 () in
  let policy = policy_of img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking ~dmi ~quantum ~block_cache
      ~fast_path ()
  in
  Vp.Soc.load_image soc img;
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000_000;
  Vp.Soc.start soc;
  let t0 = now_s () in
  Vp.Soc.run soc;
  let dt = now_s () -. t0 in
  let instr = soc.Vp.Soc.cpu.Vp.Soc.cpu_instret () in
  {
    D.m_workload = "qsort";
    m_mode = mode;
    m_engine = Rv32.Core.engine_name Rv32.Core.Threaded_superblock;
    m_instructions = instr;
    m_seconds = dt;
    m_mips = D.mips instr dt;
    m_overhead = 1.;
    m_fast_retired = soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired ();
    m_blocks_built = soc.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built ();
    m_superblocks = Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_superblocks_built ());
    m_chain_hits = Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_chain_hits ());
    m_ic_hits = Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_hits ());
    m_ic_misses = Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_misses ());
    m_loc_asm = img.Rv32_asm.Image.insn_count;
    m_trace = false;
    m_exit_ok =
      (match soc.Vp.Soc.cpu.Vp.Soc.cpu_exit () with
      | Rv32.Core.Exited 0 -> true
      | _ -> false);
    m_jobs = None;
    m_wall_ns = None;
    m_cpu_ns = None;
    m_worker_throughput = None;
    m_store_bytes = None;
    m_ingest_ns = None;
    m_query_ns = None;
    m_nodes = None;
    m_edges = None;
  }

(* Overheads relative to the first row. *)
let relativize = function
  | [] -> []
  | first :: _ as rows ->
      List.map
        (fun m ->
          {
            m with
            D.m_overhead =
              (if first.D.m_seconds > 0. then
                 m.D.m_seconds /. first.D.m_seconds
               else 1.);
          })
        rows

let print_cases rows =
  List.iter
    (fun m ->
      pf "%-28s %10d instr  %8.3f s  %7.1f MIPS  (%.2fx)\n" m.D.m_mode
        m.D.m_instructions m.D.m_seconds m.D.m_mips m.D.m_overhead)
    rows

let unrestricted_policy img =
  ignore img;
  let lat = Dift.Lattice.integrity () in
  Dift.Policy.unrestricted lat ~default_tag:(Dift.Lattice.tag_of_name lat "HI")

let ablate_dmi ~block_cache ~fast_path () =
  pf "=== Ablation: DMI fast path vs full TLM routing (qsort) ===\n\n";
  let rows =
    relativize
      (List.map
         (fun (mode, dmi, tracking) ->
           qsort_case ~mode ~tracking ~dmi ~quantum:1000 ~block_cache
             ~fast_path ~policy_of:D.integrity_policy)
         [ ("vp+dmi", true, false); ("vp+tlm-only", false, false);
           ("vp++dmi", true, true); ("vp++tlm-only", false, true) ])
  in
  print_cases rows;
  write_report ~file:"BENCH_ablate_dmi.json" ~bench:"ablate-dmi" ~scale:1.
    ~block_cache ~fast_path rows

let ablate_policy ~block_cache ~fast_path () =
  pf "=== Ablation: cost decomposition of the DIFT engine (qsort) ===\n\n";
  let rows =
    relativize
      (List.map
         (fun (mode, tracking, policy_of) ->
           qsort_case ~mode ~tracking ~dmi:true ~quantum:1000 ~block_cache
             ~fast_path ~policy_of)
         [ ("vp-no-tags", false, D.integrity_policy);
           ("vp+tags-only", true, unrestricted_policy);
           ("vp+tags+fetch-check", true, D.integrity_policy) ])
  in
  print_cases rows;
  write_report ~file:"BENCH_ablate_policy.json" ~bench:"ablate-policy"
    ~scale:1. ~block_cache ~fast_path rows

let ablate_quantum ~block_cache ~fast_path () =
  pf "=== Ablation: loosely-timed quantum sweep (qsort, VP+) ===\n\n";
  let rows =
    relativize
      (List.map
         (fun quantum ->
           qsort_case
             ~mode:(Printf.sprintf "quantum-%d" quantum)
             ~tracking:true ~dmi:true ~quantum ~block_cache ~fast_path
             ~policy_of:D.integrity_policy)
         [ 1; 10; 100; 1000; 10000 ])
  in
  print_cases rows;
  write_report ~file:"BENCH_ablate_quantum.json" ~bench:"ablate-quantum"
    ~scale:1. ~block_cache ~fast_path rows

let ablate_lub ~block_cache ~fast_path () =
  pf "=== Ablation: precomputed LUB table vs on-the-fly search ===\n\n";
  let lats =
    [ ("ifp2", "IFP-2 (2 classes)", Dift.Lattice.integrity ());
      ("ifp3", "IFP-3 (4 classes)", Dift.Lattice.ifp3 ());
      ("per-byte-19", "per-byte (19 classes)", Dift.Lattice.per_byte_key ~n:16) ]
  in
  let iters = 5_000_000 in
  let rows =
    List.concat_map
      (fun (key, name, lat) ->
        let n = Dift.Lattice.size lat in
        let bench f =
          let t0 = now_s () in
          let acc = ref 0 in
          for i = 0 to iters - 1 do
            acc := !acc + f lat (i mod n) ((i * 7) mod n)
          done;
          ignore !acc;
          now_s () -. t0
        in
        let t_table = bench Dift.Lattice.lub in
        let t_search = bench Dift.Lattice.lub_uncached in
        pf "%-24s table: %6.1f ns/op   search: %6.1f ns/op   (%.1fx)\n" name
          (t_table /. float_of_int iters *. 1e9)
          (t_search /. float_of_int iters *. 1e9)
          (t_search /. t_table);
        let mk mode t overhead =
          {
            D.m_workload = key;
            m_mode = mode;
            m_engine = Rv32.Core.engine_name Rv32.Core.Threaded_superblock;
            m_instructions = iters;
            m_seconds = t;
            m_mips = D.mips iters t;
            m_overhead = overhead;
            m_fast_retired = 0;
            m_blocks_built = 0;
            m_superblocks = None;
            m_chain_hits = None;
            m_ic_hits = None;
            m_ic_misses = None;
            m_loc_asm = 0;
            m_trace = false;
            m_exit_ok = true;
            m_jobs = None;
            m_wall_ns = None;
            m_cpu_ns = None;
            m_worker_throughput = None;
            m_store_bytes = None;
            m_ingest_ns = None;
            m_query_ns = None;
            m_nodes = None;
            m_edges = None;
          }
        in
        [ mk "lub-table" t_table 1.;
          mk "lub-search" t_search
            (if t_table > 0. then t_search /. t_table else 1.) ])
      lats
  in
  write_report ~file:"BENCH_ablate_lub.json" ~bench:"ablate-lub" ~scale:1.
    ~block_cache ~fast_path rows

(* Overhead vs lattice size: the LUB table should keep the per-class cost
   flat (an experiment beyond the paper). *)
let sweep_lattice ~block_cache ~fast_path () =
  pf "=== Sweep: VP+ overhead vs IFP size (qsort) ===\n\n";
  let lattices =
    [ ("ifp2-2", Dift.Lattice.integrity ());
      ("ifp3-4", Dift.Lattice.ifp3 ());
      ("per-byte-19", Dift.Lattice.per_byte_key ~n:16);
      ("per-byte-67", Dift.Lattice.per_byte_key ~n:64) ]
  in
  let baseline =
    qsort_case ~mode:"vp-baseline" ~tracking:false ~dmi:true ~quantum:1000
      ~block_cache ~fast_path ~policy_of:D.integrity_policy
  in
  let img = Firmware.Qsort_fw.image ~n:1000 ~rounds:4 () in
  let tracked =
    List.map
      (fun (mode, lat) ->
        let bot = Option.get (Dift.Lattice.bottom lat) in
        let policy_of _ =
          Dift.Policy.make ~lattice:lat ~default_tag:bot
            ~classification:
              [ Dift.Policy.region ~name:"program" ~lo:img.Rv32_asm.Image.org
                  ~hi:(Rv32_asm.Image.limit img - 1) ~tag:bot ]
            ~exec_fetch:(Option.get (Dift.Lattice.top lat))
            ()
        in
        qsort_case ~mode ~tracking:true ~dmi:true ~quantum:1000 ~block_cache
          ~fast_path ~policy_of)
      lattices
  in
  let rows = relativize (baseline :: tracked) in
  print_cases rows;
  write_report ~file:"BENCH_sweep_lattice.json" ~bench:"sweep-lattice"
    ~scale:1. ~block_cache ~fast_path rows

(* ------------------------------------------------------------------ *)
(* Snapshot cost                                                       *)
(* ------------------------------------------------------------------ *)

(* qsort under periodic full-platform checkpointing: the overhead columns
   put a price on Soc.save alone and on the full save + restore-into-a-
   fresh-SoC cycle, relative to the uninterrupted run; per-snapshot
   latency and encoded size are printed alongside. *)
let bench_snapshot ~block_cache ~fast_path () =
  pf "=== Snapshot: full-platform save/restore cost (qsort, VP+) ===\n\n";
  let img = Firmware.Qsort_fw.image ~n:1000 ~rounds:4 () in
  let stride = 100_000 in
  let make () =
    let policy = D.integrity_policy img in
    let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
    let soc =
      Vp.Soc.create ~policy ~monitor ~tracking:true ~quantum:1000 ~block_cache
        ~fast_path ()
    in
    Vp.Soc.load_image soc img;
    soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000_000;
    Vp.Soc.start soc;
    soc
  in
  let row mode soc dt =
    let instr = soc.Vp.Soc.cpu.Vp.Soc.cpu_instret () in
    {
      D.m_workload = "qsort";
      m_mode = mode;
      m_engine = Rv32.Core.engine_name Rv32.Core.Threaded_superblock;
      m_instructions = instr;
      m_seconds = dt;
      m_mips = D.mips instr dt;
      m_overhead = 1.;
      m_fast_retired = soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired ();
      m_blocks_built = soc.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built ();
      m_superblocks = Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_superblocks_built ());
      m_chain_hits = Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_chain_hits ());
      m_ic_hits = Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_hits ());
      m_ic_misses = Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_misses ());
      m_loc_asm = img.Rv32_asm.Image.insn_count;
      m_trace = false;
      m_exit_ok =
        (match soc.Vp.Soc.cpu.Vp.Soc.cpu_exit () with
        | Rv32.Core.Exited 0 -> true
        | _ -> false);
      m_jobs = None;
      m_wall_ns = None;
      m_cpu_ns = None;
      m_worker_throughput = None;
      m_store_bytes = None;
      m_ingest_ns = None;
      m_query_ns = None;
      m_nodes = None;
      m_edges = None;
    }
  in
  (* Uninterrupted reference. *)
  let soc = make () in
  let t0 = now_s () in
  Vp.Soc.run soc;
  let straight = row "vp++straight" soc (now_s () -. t0) in
  (* Checkpoint every [stride] instructions, Soc.save only. *)
  let snaps = ref 0 and snap_bytes = ref 0 and save_s = ref 0. in
  let soc = make () in
  let t0 = now_s () in
  let rec save_loop soc =
    Vp.Soc.pause_at soc (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret () + stride);
    Vp.Soc.run soc;
    if Vp.Soc.paused soc then begin
      let s0 = now_s () in
      let snap = Vp.Soc.save soc in
      save_s := !save_s +. (now_s () -. s0);
      incr snaps;
      snap_bytes := !snap_bytes + String.length snap;
      soc.Vp.Soc.cpu.Vp.Soc.cpu_clear_paused ();
      save_loop soc
    end
    else soc
  in
  let soc = save_loop soc in
  let save_only = row "vp++save" soc (now_s () -. t0) in
  (* Checkpoint, save, restore into a fresh SoC, continue there. *)
  let restore_s = ref 0. in
  let soc = make () in
  let t0 = now_s () in
  let rec cycle_loop soc =
    Vp.Soc.pause_at soc (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret () + stride);
    Vp.Soc.run soc;
    if Vp.Soc.paused soc then begin
      let snap = Vp.Soc.save soc in
      let r0 = now_s () in
      let soc' = make () in
      Vp.Soc.restore soc' snap;
      restore_s := !restore_s +. (now_s () -. r0);
      soc'.Vp.Soc.cpu.Vp.Soc.cpu_clear_paused ();
      cycle_loop soc'
    end
    else soc
  in
  let soc = cycle_loop soc in
  let cycle = row "vp++save+restore" soc (now_s () -. t0) in
  let rows = relativize [ straight; save_only; cycle ] in
  print_cases rows;
  if !snaps > 0 then
    pf
      "\n\
       %d snapshots of %d bytes each; save %.2f ms, restore (into a fresh \
       SoC) %.2f ms per checkpoint\n"
      !snaps
      (!snap_bytes / !snaps)
      (1000. *. !save_s /. float_of_int !snaps)
      (1000. *. !restore_s /. float_of_int (max 1 !snaps));
  write_report ~file:"BENCH_snapshot.json" ~bench:"snapshot" ~scale:1.
    ~block_cache ~fast_path rows

(* ------------------------------------------------------------------ *)
(* Parallel campaign engine                                            *)
(* ------------------------------------------------------------------ *)

(* The domain-parallel campaign engine measured end to end: the difftest
   campaign and the Table I attack suite, each at jobs=1 and jobs=N, on
   both clocks. Wall vs cpu is the honest scaling picture — cpu/wall is
   the parallelism actually realised on this host, and a single-core
   runner shows wall ~ cpu at every jobs value (the committed
   BENCH_parallel.json records which kind of host produced it via
   host_domains). Reports from the jobs=1 and jobs=N campaigns are
   compared for byte equality and the verdict lands in the rows'
   exit_ok, so a determinism regression poisons the artifact loudly. *)
let bench_parallel ~jobs ~warm ~reps ~block_cache ~fast_path () =
  pf "=== Parallel campaign engine: wall vs cpu scaling ===\n\n";
  let host = Parallelkit.Pool.default_jobs () in
  pf "host: %d recommended domain(s); rows at jobs=1 and jobs=%d, %d rep(s) per row, warm-start %s\n\n"
    host jobs reps (if warm then "on" else "off");
  let time f =
    let w0 = Benchkit.Clock.now_ns () and c0 = Benchkit.Clock.cpu_ns () in
    let last = ref (f ()) in
    for _ = 2 to reps do last := f () done;
    (!last, Benchkit.Clock.now_ns () - w0, Benchkit.Clock.cpu_ns () - c0)
  in
  let programs = 120 in
  let campaign jobs warm_start () =
    Difftest.Harness.run
      ~config:
        {
          Difftest.Harness.default with
          seed = 0x9a7a11e1;
          programs;
          shrink = false;
          jobs;
          warm_start;
        }
      ()
  in
  (* Fine-grained shards (shard_size=10 -> 12 shards for 120 programs)
     exercise the work-stealing scheduler: more shards than workers, so
     an idle worker finds something to steal. Shard size changes the
     stream, so these rows form their own byte-identity pair. *)
  let campaign_ws jobs () =
    Difftest.Harness.run
      ~config:
        {
          Difftest.Harness.default with
          seed = 0x9a7a11e1;
          programs;
          shrink = false;
          jobs;
          warm_start = warm;
          shard_size = 10;
        }
      ()
  in
  let render r = Format.asprintf "%a" Difftest.Harness.pp_report r in
  let r1, dw1, dc1 = time (campaign 1 warm) in
  let rn, dwn, dcn = time (campaign jobs warm) in
  let rcold, dwc, dcc = time (campaign 1 false) in
  let identical = String.equal (render r1) (render rn) in
  let cold_same = String.equal (render r1) (render rcold) in
  let w1, ww1, wc1 = time (campaign_ws 1) in
  let wn, wwn, wcn = time (campaign_ws jobs) in
  let ws_same = String.equal (render w1) (render wn) in
  let s1, tw1, tc1 = time (fun () -> run_table1 ~jobs:1) in
  let sn, twn, tcn = time (fun () -> run_table1 ~jobs) in
  let suite_same = s1 = sn in
  let n_attacks = List.length Firmware.Wilander.attacks in
  (* One instrumented pass over the attack suite to show the scheduler
     at work: per-worker task counts and how many tasks were stolen. *)
  let _, steal_stats =
    Parallelkit.Pool.map_stats ~jobs
      (fun a -> Firmware.Wilander.run a.Firmware.Wilander.id)
      (Array.of_list Firmware.Wilander.attacks)
  in
  let prow ~workload ~mode ~jobs ~tasks ~wall ~cpu ~base ~ok =
    D.parallel_row ~exit_ok:ok ~workload ~mode ~jobs ~tasks ~instructions:0
      ~wall_ns:wall ~cpu_ns:cpu
      ~overhead:(if base > 0 then float_of_int wall /. float_of_int base else 1.)
      ()
  in
  let rows =
    [
      prow ~workload:"difftest" ~mode:"jobs-1" ~jobs:1 ~tasks:(programs * reps)
        ~wall:dw1 ~cpu:dc1 ~base:dw1 ~ok:identical;
      prow ~workload:"difftest"
        ~mode:(Printf.sprintf "jobs-%d" jobs)
        ~jobs ~tasks:(programs * reps) ~wall:dwn ~cpu:dcn ~base:dw1
        ~ok:identical;
      prow ~workload:"difftest" ~mode:"jobs-1-cold" ~jobs:1
        ~tasks:(programs * reps) ~wall:dwc ~cpu:dcc ~base:dw1 ~ok:cold_same;
      prow ~workload:"difftest" ~mode:"jobs-1-ws10" ~jobs:1
        ~tasks:(programs * reps) ~wall:ww1 ~cpu:wc1 ~base:ww1 ~ok:ws_same;
      prow ~workload:"difftest"
        ~mode:(Printf.sprintf "jobs-%d-ws10" jobs)
        ~jobs ~tasks:(programs * reps) ~wall:wwn ~cpu:wcn ~base:ww1
        ~ok:ws_same;
      prow ~workload:"table1" ~mode:"jobs-1" ~jobs:1 ~tasks:(n_attacks * reps)
        ~wall:tw1 ~cpu:tc1 ~base:tw1 ~ok:suite_same;
      prow ~workload:"table1"
        ~mode:(Printf.sprintf "jobs-%d" jobs)
        ~jobs ~tasks:(n_attacks * reps) ~wall:twn ~cpu:tcn ~base:tw1
        ~ok:suite_same;
    ]
  in
  pf "%-10s %-10s %9s %9s %9s %8s %12s\n" "Workload" "Mode" "wall [s]"
    "cpu [s]" "cpu/wall" "speedup" "tasks/s/wkr";
  List.iter
    (fun m ->
      let wall = float_of_int (Option.get m.D.m_wall_ns) /. 1e9 in
      let cpu = float_of_int (Option.get m.D.m_cpu_ns) /. 1e9 in
      pf "%-10s %-10s %9.3f %9.3f %9.2f %7.2fx %12.1f\n" m.D.m_workload
        m.D.m_mode wall cpu
        (if wall > 0. then cpu /. wall else 0.)
        (if m.D.m_overhead > 0. then 1. /. m.D.m_overhead else 0.)
        (Option.get m.D.m_worker_throughput))
    rows;
  pf "\njobs=1 vs jobs=%d difftest reports byte-identical: %s\n" jobs
    (if identical then "yes" else "NO -- DETERMINISM REGRESSION");
  pf "warm-start vs cold-boot reports byte-identical: %s\n"
    (if cold_same then "yes" else "NO");
  pf "jobs=1 vs jobs=%d fine-grain (shard_size=10) reports byte-identical: %s\n"
    jobs (if ws_same then "yes" else "NO -- DETERMINISM REGRESSION");
  pf "jobs=1 vs jobs=%d Table I results identical: %s\n" jobs
    (if suite_same then "yes" else "NO");
  pf "work stealing (table1, jobs=%d): %d worker(s), %d steal(s), tasks/worker [%s]\n"
    jobs steal_stats.Parallelkit.Pool.workers
    steal_stats.Parallelkit.Pool.steals
    (String.concat "; "
       (Array.to_list
          (Array.map string_of_int
             steal_stats.Parallelkit.Pool.tasks_per_worker)));
  let doc =
    D.doc
      ~extra:
        [
          ("host_domains", Benchkit.Json.num_of_int host);
          ("jobs", Benchkit.Json.num_of_int jobs);
          ("reps", Benchkit.Json.num_of_int reps);
          ("warm_start", Benchkit.Json.Bool warm);
          ("reports_identical", Benchkit.Json.Bool identical);
          ("ws_reports_identical", Benchkit.Json.Bool ws_same);
          ("steals", Benchkit.Json.num_of_int steal_stats.Parallelkit.Pool.steals);
        ]
      ~bench:"parallel" ~scale:1. ~block_cache ~fast_path rows
  in
  (match D.validate doc with
  | Ok () -> ()
  | Error e -> pf "!! report failed schema validation: %s\n" e);
  Snapshot.Io.write_file_atomic "BENCH_parallel.json"
    (Benchkit.Json.to_string doc ^ "\n");
  pf "\nwrote BENCH_parallel.json\n"

(* ------------------------------------------------------------------ *)
(* Graph-store analysis                                                 *)
(* ------------------------------------------------------------------ *)

(* The iftgraph subsystem measured end to end: run the mtvec-hijack trap
   scenario on VP+ with a graph sink attached, persist the .iftg store,
   then time Analyze ingestion (decode + index build), the first (cold)
   backward source-finding query and the memoized repeat. The warm row's
   query_ns is the memo-table hit the near-O(answer) claim rests on
   (docs/ift_graph.md); exit_ok on both rows asserts the whole chain —
   attack detected, cold query reaching a seed, repeat answered without
   another store read. *)
let bench_graph ~block_cache ~fast_path () =
  pf "=== Graph store: ingest + backward-query cost (mtvec hijack) ===\n\n";
  let scenario = Firmware.Trap_attacks.Mtvec_hijack in
  let img = Firmware.Trap_attacks.image scenario in
  let policy = Firmware.Trap_attacks.policy scenario img in
  let tracer = Trace.Tracer.create policy.Dift.Policy.lattice in
  let sink = Trace.Graph.attach ~context:"bench graph mtvec-hijack" tracer in
  let outcome = Firmware.Trap_attacks.run ~tracer scenario in
  let detected = outcome = Firmware.Trap_attacks.Detected in
  let store = Trace.Graph.finish sink in
  Trace.Graph.detach sink;
  let bytes = String.length (Iftgraph.Store.to_string store) in
  let nodes = Array.length store.Iftgraph.Store.nodes in
  let edges = Array.length store.Iftgraph.Store.edges in
  let dir = Filename.temp_dir "bench_graph" "" in
  let path = Filename.concat dir "trap_hijack.iftg" in
  Iftgraph.Store.write_file store path;
  let time f =
    let t0 = Benchkit.Clock.now_ns () in
    let v = f () in
    (v, Benchkit.Clock.now_ns () - t0)
  in
  let a = Iftgraph.Analyze.load_dir dir in
  let _, ingest_ns = time (fun () -> Iftgraph.Analyze.stores a) in
  let pred = Iftgraph.Query.P_violation 0 in
  let cold, cold_ns = time (fun () -> Iftgraph.Analyze.sources_of a pred) in
  let _, warm_ns = time (fun () -> Iftgraph.Analyze.sources_of a pred) in
  Sys.remove path;
  Unix.rmdir dir;
  let sources =
    List.fold_left
      (fun acc (_, b) -> acc + List.length b.Iftgraph.Query.bk_sources)
      0 cold
  in
  let memoized =
    Iftgraph.Analyze.memo_hits a >= 1
    && Iftgraph.Analyze.store_reads a = Iftgraph.Analyze.run_count a
  in
  let ok = detected && sources > 0 && memoized in
  pf "store: %d bytes, %d nodes, %d edges; attack %s\n" bytes nodes edges
    (if detected then "detected" else "MISSED");
  pf "ingest %.1f us; sources-of violation:0 -> %d source(s)\n"
    (float_of_int ingest_ns /. 1e3)
    sources;
  pf "query cold %.1f us, memoized %.1f us (%d store read(s) total)\n"
    (float_of_int cold_ns /. 1e3)
    (float_of_int warm_ns /. 1e3)
    (Iftgraph.Analyze.store_reads a);
  if not memoized then pf "!! repeat query was not served from the memo table\n";
  let row mode query_ns =
    D.graph_row ~exit_ok:ok ~workload:"trap-hijack" ~mode ~store_bytes:bytes
      ~ingest_ns ~query_ns ~nodes ~edges ()
  in
  let rows = [ row "analyze-cold" cold_ns; row "analyze-warm" warm_ns ] in
  write_report ~file:"BENCH_graph.json" ~bench:"graph" ~scale:1. ~block_cache
    ~fast_path rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-measurements                                          *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  let open Bechamel in
  let lat = Dift.Lattice.ifp3 () in
  (* One Test.make per table/figure of the paper. *)
  let fig1_test =
    Test.make ~name:"fig1/lub+allowedFlow"
      (Staged.stage (fun () ->
           let n = Dift.Lattice.size lat in
           let acc = ref 0 in
           for i = 0 to 63 do
             let a = i mod n and b = (i * 3) mod n in
             acc := !acc + Dift.Lattice.lub lat a b;
             if Dift.Lattice.allowed_flow lat a b then incr acc
           done;
           !acc))
  in
  let table1_test =
    Test.make ~name:"table1/attack3-detection"
      (Staged.stage (fun () -> Firmware.Wilander.run 3))
  in
  let table2_vp =
    Test.make ~name:"table2/qsort-vp"
      (Staged.stage (fun () ->
           let img = Firmware.Qsort_fw.image ~n:64 ~rounds:1 () in
           let policy = D.integrity_policy img in
           let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
           let soc = Vp.Soc.create ~policy ~monitor ~tracking:false () in
           Vp.Soc.load_image soc img;
           ignore (Vp.Soc.run_for_instructions soc 10_000_000)))
  in
  let table2_vpp =
    Test.make ~name:"table2/qsort-vp+"
      (Staged.stage (fun () ->
           let img = Firmware.Qsort_fw.image ~n:64 ~rounds:1 () in
           let policy = D.integrity_policy img in
           let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
           let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
           Vp.Soc.load_image soc img;
           ignore (Vp.Soc.run_for_instructions soc 10_000_000)))
  in
  let immo_test =
    Test.make ~name:"sec6a/immobilizer-roundtrip"
      (Staged.stage (fun () ->
           let img =
             Firmware.Immo_fw.image
               ~variant:(Firmware.Immo_fw.Normal { fixed_dump = true })
               ()
           in
           let policy = Firmware.Immo_fw.base_policy img in
           let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
           let aes_out_tag, aes_in_clearance = Firmware.Immo_fw.aes_args policy in
           let soc =
             Vp.Soc.create ~policy ~monitor ~tracking:true ~aes_out_tag
               ~aes_in_clearance ()
           in
           Vp.Soc.load_image soc img;
           Vp.Can.push_rx_frame soc.Vp.Soc.can "CHALLNGE";
           ignore (Vp.Soc.run_for_instructions soc 10_000_000)))
  in
  let tests =
    Test.make_grouped ~name:"vp-dift"
      [ fig1_test; table1_test; table2_vp; table2_vpp; immo_test ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances tests in
    List.map (fun i -> Analyze.all ols i raw) instances
  in
  pf "=== Bechamel micro-measurements ===\n\n";
  let results = benchmark () in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> Printf.sprintf "%12.1f ns/run" e
            | Some es ->
                String.concat ", " (List.map (Printf.sprintf "%.1f") es)
            | None -> "n/a"
          in
          pf "%-32s %s\n" name est)
        tbl)
    results

(* ------------------------------------------------------------------ *)

let () =
  let is_flag a = String.length a >= 2 && a.[0] = '-' && a.[1] = '-' in
  let flags, args = List.partition is_flag (List.tl (Array.to_list Sys.argv)) in
  let starts_with p s =
    String.length s >= String.length p && String.sub s 0 (String.length p) = p
  in
  (* --jobs=N / --reps=N carry a value; everything else is exact-match. *)
  let int_flag name default =
    let p = name ^ "=" in
    List.fold_left
      (fun acc f ->
        if starts_with p f then
          match
            int_of_string_opt
              (String.sub f (String.length p) (String.length f - String.length p))
          with
          | Some v when v >= 1 -> v
          | _ ->
              pf "flag %s needs a positive integer (got %S)\n" name f;
              exit 1
        else acc)
      default flags
  in
  List.iter
    (fun f ->
      if
        f <> "--no-block-cache" && f <> "--no-fast-path" && f <> "--trace"
        && f <> "--no-warm-start"
        && not (starts_with "--jobs=" f)
        && not (starts_with "--reps=" f)
        && not (starts_with "--engine=" f)
        && not (starts_with "--only=" f)
      then begin
        pf
          "unknown flag %S (known: --no-block-cache --no-fast-path --trace \
           --no-warm-start --jobs=N --reps=N \
           --engine=interp|threaded|superblock --only=W1[,W2,...])\n"
          f;
        exit 1
      end)
    flags;
  let block_cache = not (List.mem "--no-block-cache" flags) in
  let fast_path = not (List.mem "--no-fast-path" flags) in
  let trace = List.mem "--trace" flags in
  let warm = not (List.mem "--no-warm-start" flags) in
  let jobs = int_flag "--jobs" (Parallelkit.Pool.default_jobs ()) in
  let reps = int_flag "--reps" 1 in
  (* --engine= is repeatable: table2 measures once per named engine
     (given order, duplicates collapsed); default superblock only. *)
  let engines =
    let named =
      List.filter_map
        (fun f ->
          if not (starts_with "--engine=" f) then None
          else
            let v = String.sub f 9 (String.length f - 9) in
            match Rv32.Core.engine_of_string v with
            | Some e -> Some e
            | None ->
                pf "flag --engine needs interp, threaded or superblock (got %S)\n"
                  v;
                exit 1)
        flags
    in
    match List.fold_left (fun acc e -> if List.mem e acc then acc else acc @ [ e ]) [] named with
    | [] -> [ Rv32.Core.Threaded_superblock ]
    | es -> es
  in
  let only =
    List.fold_left
      (fun acc f ->
        if starts_with "--only=" f then
          Some (String.sub f 7 (String.length f - 7))
        else acc)
      None flags
  in
  let scale =
    match args with
    | _ :: s :: _ -> (
        match float_of_string_opt s with Some v when v > 0. -> v | _ -> 1.)
    | _ -> 1.
  in
  match args with
  | "fig1" :: _ -> fig1 ()
  | "table1" :: _ -> table1 ~jobs ()
  | "table2" :: _ ->
      table2 ~scale ~block_cache ~fast_path ~trace ~engines ~only ()
  | "loc" :: _ -> loc_report ()
  | "ablate-dmi" :: _ -> ablate_dmi ~block_cache ~fast_path ()
  | "ablate-policy" :: _ -> ablate_policy ~block_cache ~fast_path ()
  | "ablate-lub" :: _ -> ablate_lub ~block_cache ~fast_path ()
  | "ablate-quantum" :: _ -> ablate_quantum ~block_cache ~fast_path ()
  | "sweep-lattice" :: _ -> sweep_lattice ~block_cache ~fast_path ()
  | "snapshot" :: _ -> bench_snapshot ~block_cache ~fast_path ()
  | "parallel" :: _ ->
      bench_parallel ~jobs ~warm ~reps ~block_cache ~fast_path ()
  | "graph" :: _ -> bench_graph ~block_cache ~fast_path ()
  | "table2-extended" :: _ ->
      table2_extended ~scale ~block_cache ~fast_path ~trace ~engines ~only ()
  | "bechamel" :: _ -> bechamel ()
  | "all" :: _ | [] ->
      fig1 ();
      pf "\n";
      table1 ~jobs ();
      pf "\n";
      table2 ~scale:1. ~block_cache ~fast_path ~trace ~engines ~only ();
      pf "\n";
      loc_report ();
      pf "\n";
      ablate_dmi ~block_cache ~fast_path ();
      pf "\n";
      ablate_policy ~block_cache ~fast_path ();
      pf "\n";
      ablate_lub ~block_cache ~fast_path ();
      pf "\n";
      ablate_quantum ~block_cache ~fast_path ();
      pf "\n";
      sweep_lattice ~block_cache ~fast_path ();
      pf "\n";
      bench_snapshot ~block_cache ~fast_path ();
      pf "\n";
      bench_parallel ~jobs ~warm ~reps ~block_cache ~fast_path ();
      pf "\n";
      bench_graph ~block_cache ~fast_path ();
      pf "\n";
      table2_extended ~scale:1. ~block_cache ~fast_path ~trace ~engines ~only ()
  | cmd :: _ ->
      pf "unknown command %S\n" cmd;
      exit 1
