exception Unbound of string

type transport_fn = Payload.t -> Sysc.Time.t -> Sysc.Time.t
type target = { t_name : string; fn : transport_fn }
type initiator = { i_name : string; mutable bound : target option }

let target ~name fn = { t_name = name; fn }
let target_name t = t.t_name
let initiator ~name = { i_name = name; bound = None }
let initiator_name i = i.i_name
let bind i t = i.bound <- Some t
let is_bound i = i.bound <> None

let transport i payload delay =
  match i.bound with
  | Some t -> t.fn payload delay
  | None -> raise (Unbound i.i_name)

let call t = t.fn
