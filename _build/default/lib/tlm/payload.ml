type command = Read | Write
type response = Ok_resp | Address_error | Command_error

type t = {
  mutable cmd : command;
  mutable addr : int;
  data : Bytes.t;
  tags : Bytes.t;
  mutable resp : response;
}

let create ?(cmd = Read) ?(addr = 0) ~len ~default_tag () =
  {
    cmd;
    addr;
    data = Bytes.make len '\000';
    tags = Bytes.make len (Char.chr default_tag);
    resp = Ok_resp;
  }

let length p = Bytes.length p.data
let get_byte p i = Char.code (Bytes.get p.data i)
let set_byte p i v = Bytes.set p.data i (Char.chr (v land 0xff))
let get_tag p i = Char.code (Bytes.get p.tags i)
let set_tag p i t = Bytes.set p.tags i (Char.chr t)
let set_all_tags p t = Bytes.fill p.tags 0 (Bytes.length p.tags) (Char.chr t)
let get_word p = Bytes.get_int32_le p.data 0
let set_word p v = Bytes.set_int32_le p.data 0 v

let word_tag lat p =
  let t = ref (get_tag p 0) in
  for i = 1 to 3 do
    t := Dift.Lattice.lub lat !t (get_tag p i)
  done;
  !t

let is_read p = p.cmd = Read
let is_write p = p.cmd = Write
let ok p = p.resp = Ok_resp

let pp fmt p =
  let cmd = match p.cmd with Read -> "R" | Write -> "W" in
  let resp =
    match p.resp with
    | Ok_resp -> "ok"
    | Address_error -> "addr-err"
    | Command_error -> "cmd-err"
  in
  Format.fprintf fmt "[%s 0x%08x len=%d %s]" cmd p.addr (length p) resp
