lib/tlm/payload.mli: Bytes Dift Format
