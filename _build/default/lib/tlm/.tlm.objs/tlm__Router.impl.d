lib/tlm/router.ml: List Payload Printf Socket
