lib/tlm/payload.ml: Bytes Char Dift Format
