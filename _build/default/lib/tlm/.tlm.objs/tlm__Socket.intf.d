lib/tlm/socket.mli: Payload Sysc
