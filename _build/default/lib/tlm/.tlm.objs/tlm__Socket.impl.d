lib/tlm/socket.ml: Payload Sysc
