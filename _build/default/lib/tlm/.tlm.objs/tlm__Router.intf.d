lib/tlm/router.mli: Socket
