(** Initiator / target sockets with blocking transport (cf. TLM-2.0
    [simple_initiator_socket] / [simple_target_socket]).

    The blocking-transport convention: the callee processes the payload,
    sets its response status, and returns the accumulated timing annotation
    (input delay plus the target's modelled latency). *)

exception Unbound of string
(** Transport through an unbound initiator socket. *)

type transport_fn = Payload.t -> Sysc.Time.t -> Sysc.Time.t

type target
type initiator

val target : name:string -> transport_fn -> target
val target_name : target -> string

val initiator : name:string -> initiator
val initiator_name : initiator -> string

val bind : initiator -> target -> unit
(** Rebinding replaces the previous binding. *)

val is_bound : initiator -> bool

val transport : initiator -> transport_fn
(** Forward a transaction through the binding. Raises {!Unbound} if the
    socket has no target. *)

val call : target -> transport_fn
(** Invoke a target's transport directly (used by routers). *)
