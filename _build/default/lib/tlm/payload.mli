(** TLM-2.0-style generic payload carrying tainted data.

    As in the paper, the data array of a transaction is an array of tainted
    bytes: each data byte travels with its security-class tag, so
    information flow is tracked through the interconnect and into the
    peripherals. Values and tags are stored in two parallel byte buffers. *)

type command = Read | Write

type response =
  | Ok_resp
  | Address_error  (** No target claims the address. *)
  | Command_error  (** Target rejected the access (size, alignment, ...). *)

type t = {
  mutable cmd : command;
  mutable addr : int;
      (** Global address as issued; routers rewrite it to a target-local
          offset for the duration of the downstream call. *)
  data : Bytes.t;  (** Byte values. *)
  tags : Bytes.t;  (** One security tag per data byte. *)
  mutable resp : response;
}

val create : ?cmd:command -> ?addr:int -> len:int -> default_tag:Dift.Lattice.tag -> unit -> t
(** Fresh payload with [len] zero bytes, all tagged [default_tag]. *)

val length : t -> int

val get_byte : t -> int -> int
val set_byte : t -> int -> int -> unit
val get_tag : t -> int -> Dift.Lattice.tag
val set_tag : t -> int -> Dift.Lattice.tag -> unit

val set_all_tags : t -> Dift.Lattice.tag -> unit

val get_word : t -> int32
(** Little-endian 32-bit value of bytes 0..3. Requires [length >= 4]. *)

val set_word : t -> int32 -> unit

val word_tag : Dift.Lattice.t -> t -> Dift.Lattice.tag
(** LUB of the tags of bytes 0..3. *)

val is_read : t -> bool
val is_write : t -> bool
val ok : t -> bool

val pp : Format.formatter -> t -> unit
