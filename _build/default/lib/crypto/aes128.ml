(* AES-128, FIPS-197. The S-box is generated from the multiplicative
   inverse in GF(2^8) followed by the affine transform, rather than
   hardcoded, so the known-answer tests exercise the construction too. *)

let xtime b = if b land 0x80 <> 0 then ((b lsl 1) lxor 0x1b) land 0xff else b lsl 1

let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 <> 0 then acc lxor a else acc in
      go (xtime a) (b lsr 1) acc
  in
  go a b 0

let sbox_arr, inv_sbox =
  let s = Array.make 256 0 and si = Array.make 256 0 in
  (* Multiplicative inverses via brute force (fine at init time). *)
  let inv = Array.make 256 0 in
  for a = 1 to 255 do
    for b = 1 to 255 do
      if gmul a b = 1 then inv.(a) <- b
    done
  done;
  for x = 0 to 255 do
    let i = inv.(x) in
    let rot v n = ((v lsl n) lor (v lsr (8 - n))) land 0xff in
    let y = i lxor rot i 1 lxor rot i 2 lxor rot i 3 lxor rot i 4 lxor 0x63 in
    s.(x) <- y;
    si.(y) <- x
  done;
  (s, si)

let rcon_arr = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

type key = int array array
(* 11 round keys of 16 bytes each. *)

let expand k =
  if String.length k <> 16 then invalid_arg "Aes128.expand: key must be 16 bytes";
  (* 44 words of 4 bytes. *)
  let w = Array.make_matrix 44 4 0 in
  for i = 0 to 3 do
    for j = 0 to 3 do
      w.(i).(j) <- Char.code k.[(4 * i) + j]
    done
  done;
  for i = 4 to 43 do
    let t = Array.copy w.(i - 1) in
    if i mod 4 = 0 then begin
      (* RotWord + SubWord + Rcon. *)
      let t0 = t.(0) in
      t.(0) <- sbox_arr.(t.(1)) lxor rcon_arr.((i / 4) - 1);
      t.(1) <- sbox_arr.(t.(2));
      t.(2) <- sbox_arr.(t.(3));
      t.(3) <- sbox_arr.(t0)
    end;
    for j = 0 to 3 do
      w.(i).(j) <- w.(i - 4).(j) lxor t.(j)
    done
  done;
  Array.init 11 (fun r ->
      Array.init 16 (fun b -> w.((4 * r) + (b / 4)).(b mod 4)))

let add_round_key st rk =
  for i = 0 to 15 do
    st.(i) <- st.(i) lxor rk.(i)
  done

let sub_bytes st box =
  for i = 0 to 15 do
    st.(i) <- box.(st.(i))
  done

(* State is column-major: byte (r, c) at index 4*c + r. *)
let shift_rows st =
  let g r c = st.((4 * c) + r) in
  let tmp = Array.copy st in
  let s r c v = tmp.((4 * c) + r) <- v in
  for r = 1 to 3 do
    for c = 0 to 3 do
      s r c (g r ((c + r) mod 4))
    done
  done;
  Array.blit tmp 0 st 0 16

let inv_shift_rows st =
  let g r c = st.((4 * c) + r) in
  let tmp = Array.copy st in
  let s r c v = tmp.((4 * c) + r) <- v in
  for r = 1 to 3 do
    for c = 0 to 3 do
      s r c (g r ((c - r + 4) mod 4))
    done
  done;
  Array.blit tmp 0 st 0 16

let mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) in
    let a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gmul a0 2 lxor gmul a1 3 lxor a2 lxor a3;
    st.((4 * c) + 1) <- a0 lxor gmul a1 2 lxor gmul a2 3 lxor a3;
    st.((4 * c) + 2) <- a0 lxor a1 lxor gmul a2 2 lxor gmul a3 3;
    st.((4 * c) + 3) <- gmul a0 3 lxor a1 lxor a2 lxor gmul a3 2
  done

let inv_mix_columns st =
  for c = 0 to 3 do
    let a0 = st.(4 * c) and a1 = st.((4 * c) + 1) in
    let a2 = st.((4 * c) + 2) and a3 = st.((4 * c) + 3) in
    st.(4 * c) <- gmul a0 14 lxor gmul a1 11 lxor gmul a2 13 lxor gmul a3 9;
    st.((4 * c) + 1) <- gmul a0 9 lxor gmul a1 14 lxor gmul a2 11 lxor gmul a3 13;
    st.((4 * c) + 2) <- gmul a0 13 lxor gmul a1 9 lxor gmul a2 14 lxor gmul a3 11;
    st.((4 * c) + 3) <- gmul a0 11 lxor gmul a1 13 lxor gmul a2 9 lxor gmul a3 14
  done

let check_block what s =
  if String.length s <> 16 then
    invalid_arg (Printf.sprintf "Aes128.%s: block must be 16 bytes" what)

let encrypt_block rk pt =
  check_block "encrypt_block" pt;
  let st = Array.init 16 (fun i -> Char.code pt.[i]) in
  add_round_key st rk.(0);
  for round = 1 to 9 do
    sub_bytes st sbox_arr;
    shift_rows st;
    mix_columns st;
    add_round_key st rk.(round)
  done;
  sub_bytes st sbox_arr;
  shift_rows st;
  add_round_key st rk.(10);
  String.init 16 (fun i -> Char.chr st.(i))

let decrypt_block rk ct =
  check_block "decrypt_block" ct;
  let st = Array.init 16 (fun i -> Char.code ct.[i]) in
  add_round_key st rk.(10);
  for round = 9 downto 1 do
    inv_shift_rows st;
    sub_bytes st inv_sbox;
    add_round_key st rk.(round);
    inv_mix_columns st
  done;
  inv_shift_rows st;
  sub_bytes st inv_sbox;
  add_round_key st rk.(0);
  String.init 16 (fun i -> Char.chr st.(i))

let encrypt_ecb rk msg =
  if String.length msg mod 16 <> 0 then
    invalid_arg "Aes128.encrypt_ecb: message must be a multiple of 16 bytes";
  String.concat ""
    (List.init
       (String.length msg / 16)
       (fun i -> encrypt_block rk (String.sub msg (16 * i) 16)))

let sbox = sbox_arr
let rcon = rcon_arr
