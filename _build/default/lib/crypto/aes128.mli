(** AES-128 block cipher (FIPS-197), used by the VP's AES peripheral for
    the immobilizer's challenge-response protocol.

    This is a plain table-based implementation for simulation purposes; it
    makes no constant-time claims. *)

type key
(** An expanded 128-bit key schedule. *)

val expand : string -> key
(** [expand k] expands a 16-byte key. Raises [Invalid_argument] on any
    other length. *)

val encrypt_block : key -> string -> string
(** Encrypt one 16-byte block (ECB). Raises [Invalid_argument] on any other
    length. *)

val decrypt_block : key -> string -> string
(** Inverse of {!encrypt_block}. *)

val encrypt_ecb : key -> string -> string
(** Encrypt a message that is a multiple of 16 bytes, block by block. *)

val sbox : int array
(** The AES S-box (256 entries), exposed for the software-AES firmware's
    lookup tables. *)

val rcon : int array
(** The 10 round constants of the AES-128 key schedule. *)
