lib/crypto/aes128.ml: Array Char List Printf String
