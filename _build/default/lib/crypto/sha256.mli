(** SHA-256 (FIPS 180-4). Used to check the firmware hash benchmark's
    results against a host-side reference. *)

val digest : string -> string
(** 32-byte binary digest. *)

val hexdigest : string -> string
(** Lowercase hexadecimal digest. *)
