type 'a t = {
  sig_name : string;
  kernel : Kernel.t;
  equal : 'a -> 'a -> bool;
  mutable cur : 'a;
  mutable next : 'a option;
  changed : Kernel.event;
}

let create kernel ?(equal = ( = )) sig_name init =
  {
    sig_name;
    kernel;
    equal;
    cur = init;
    next = None;
    changed = Kernel.create_event kernel (sig_name ^ ".changed");
  }

let read s = s.cur

let update s () =
  match s.next with
  | None -> ()
  | Some v ->
      s.next <- None;
      if not (s.equal s.cur v) then begin
        s.cur <- v;
        Kernel.notify s.changed
      end

let write s v =
  let first = s.next = None in
  s.next <- Some v;
  if first then Kernel.request_update s.kernel (update s)

let changed_event s = s.changed
let name s = s.sig_name
