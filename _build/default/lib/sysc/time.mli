(** Simulation time, in integer picoseconds (cf. [sc_time]).

    An OCaml [int] holds 2^62 ps (> 50 days of simulated time), ample for
    the VP workloads here. *)

type t = int
(** Picoseconds. Always non-negative in kernel use. *)

val zero : t
val ps : int -> t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val add : t -> t -> t
val compare : t -> t -> int

val to_ns : t -> float
val to_us : t -> float
val to_ms : t -> float

val pp : Format.formatter -> t -> unit
(** Prints with an auto-selected unit, e.g. ["25 ms"], ["1.5 us"]. *)
