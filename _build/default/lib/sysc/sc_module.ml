type t = { name : string; kernel : Kernel.t }

let create kernel name = { name; kernel }
let name m = m.name
let kernel m = m.kernel
let thread m n fn = Kernel.spawn m.kernel ~name:(m.name ^ "." ^ n) fn
let event m n = Kernel.create_event m.kernel (m.name ^ "." ^ n)
