type t = int

let zero = 0
let ps x = x
let ns x = x * 1_000
let us x = x * 1_000_000
let ms x = x * 1_000_000_000
let sec x = x * 1_000_000_000_000
let add = ( + )
let compare = Int.compare
let to_ns t = float_of_int t /. 1e3
let to_us t = float_of_int t /. 1e6
let to_ms t = float_of_int t /. 1e9

let pp fmt t =
  let f = float_of_int t in
  if t = 0 then Format.pp_print_string fmt "0 s"
  else if f >= 1e12 then Format.fprintf fmt "%g s" (f /. 1e12)
  else if f >= 1e9 then Format.fprintf fmt "%g ms" (f /. 1e9)
  else if f >= 1e6 then Format.fprintf fmt "%g us" (f /. 1e6)
  else if f >= 1e3 then Format.fprintf fmt "%g ns" (f /. 1e3)
  else Format.fprintf fmt "%d ps" t
