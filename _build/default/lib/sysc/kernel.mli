(** An event-driven simulation kernel with SystemC-like semantics.

    Processes are cooperative coroutines implemented with OCaml 5 effect
    handlers (the analogue of [SC_THREAD]). The scheduler follows the
    SystemC evaluate / update / delta-notification / timed-notification
    phase order:

    - all runnable processes run to their next [wait] (evaluation phase);
    - pending primitive-channel updates run (update phase, used by
      {!Signal});
    - delta notifications wake their waiting processes (a new delta cycle);
    - when nothing is runnable, time advances to the earliest timed
      notification.

    Deviation from IEEE-1666: an event may carry several pending
    notifications (SystemC keeps only the earliest); none of the models in
    this repository depend on the override rule. *)

type t
(** A kernel instance. Kernels are independent; each VP builds its own. *)

type event
(** A notifiable event (cf. [sc_event]). *)

exception Deadlock of string
(** Raised by {!run} if {!set_expect_progress} is on and the simulation
    runs out of events while processes are still alive and waiting
    (useful to catch lost interrupts / missing notifications). *)

val create : unit -> t

val now : t -> Time.t
(** Current simulation time. *)

val delta_count : t -> int
(** Number of delta cycles executed so far (for tests/statistics). *)

val create_event : t -> string -> event
val event_name : event -> string

(** {1 Processes} *)

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Register a process; it becomes runnable at the start of simulation (or
    immediately, if spawned during simulation). A process runs until it
    performs one of the [wait_*] operations below, halts, or returns. An
    exception escaping a process aborts the simulation and is re-raised by
    {!run}. *)

(** The following may only be called from inside a process spawned on some
    kernel; calling them elsewhere raises [Effect.Unhandled]. *)

val wait_for : Time.t -> unit
(** Suspend the calling process for a simulated duration. *)

val wait_event : event -> unit
(** Suspend until the event is notified. *)

val wait_any : event list -> unit
(** Suspend until any of the events is notified. *)

val halt : unit -> unit
(** Terminate the calling process. *)

(** {1 Notification} *)

val notify : event -> unit
(** Delta notification: waiters wake in the next delta cycle. *)

val notify_immediate : event -> unit
(** Immediate notification: waiters wake in the current evaluation phase. *)

val notify_after : event -> Time.t -> unit
(** Timed notification. *)

val request_update : t -> (unit -> unit) -> unit
(** Run a thunk in the next update phase (primitive-channel support). *)

(** {1 Running} *)

val run : ?until:Time.t -> t -> unit
(** Run the simulation until no activity remains, [stop] is called, or
    simulated time would exceed [until]. May be called repeatedly to resume
    (e.g. with increasing [until]). *)

val stop : t -> unit
(** Request the simulation to stop; takes effect at the next scheduling
    point. Callable from inside a process. *)

val stopped : t -> bool

val set_expect_progress : t -> bool -> unit
(** When on, {!run} raises {!Deadlock} if it returns for lack of events
    while spawned processes are still waiting (default off; [stop] and
    [~until] returns are never deadlocks). *)

val live_processes : t -> int
(** Number of spawned processes that have neither returned nor halted. *)
