(** Value-change-dump (VCD) tracing for simulations: record integer
    signals and event firings over simulated time and render a standard
    `.vcd` file loadable by GTKWave & co. (cf. SystemC's [sc_trace]).

    Registering a signal spawns a small watcher process, so do it before
    {!Kernel.run}. Time is dumped in picoseconds. *)

type t

val create : Kernel.t -> name:string -> t

val trace_signal : t -> int Signal.t -> unit
(** Record every settled value change of the signal (its initial value is
    dumped at time 0). *)

val trace_event : t -> Kernel.event -> unit
(** Record event notifications as a 1-tick pulse wire. *)

val mark : t -> string -> int -> unit
(** Record a custom scalar sample (e.g. a counter) under the given wire
    name at the current simulation time. *)

val dump : t -> string
(** Render everything recorded so far as VCD text. *)

val dump_to_file : t -> string -> unit
