(** Lightweight module identity (cf. [sc_module]): a named component bound
    to a kernel, with helpers to register threads under hierarchical names.

    OCaml components are ordinary records/closures; this wrapper only
    provides consistent naming for processes and events. *)

type t

val create : Kernel.t -> string -> t
val name : t -> string
val kernel : t -> Kernel.t

val thread : t -> string -> (unit -> unit) -> unit
(** [thread m n fn] spawns process ["<module>.<n>"] (cf. [SC_THREAD]). *)

val event : t -> string -> Kernel.event
(** Create an event named ["<module>.<n>"]. *)
