type wire = { id : string; wname : string; width : int }

type t = {
  kernel : Kernel.t;
  name : string;
  mutable wires : wire list;  (* newest first *)
  mutable samples : (Time.t * string * int) list;  (* newest first: (t, id, v) *)
  mutable next_id : int;
  custom : (string, wire) Hashtbl.t;
}

let create kernel ~name =
  { kernel; name; wires = []; samples = []; next_id = 0; custom = Hashtbl.create 8 }

(* VCD identifier codes: printable characters starting at '!'. *)
let fresh_id t =
  let n = t.next_id in
  t.next_id <- n + 1;
  let rec encode n acc =
    let c = Char.chr (33 + (n mod 94)) in
    let acc = String.make 1 c ^ acc in
    if n < 94 then acc else encode ((n / 94) - 1) acc
  in
  encode n ""

let add_wire t ~wname ~width =
  let w = { id = fresh_id t; wname; width } in
  t.wires <- w :: t.wires;
  w

let sample t w v = t.samples <- (Kernel.now t.kernel, w.id, v) :: t.samples

let trace_signal t s =
  let w = add_wire t ~wname:(Signal.name s) ~width:32 in
  sample t w (Signal.read s);
  Kernel.spawn t.kernel ~name:("vcd." ^ Signal.name s) (fun () ->
      while not (Kernel.stopped t.kernel) do
        Kernel.wait_event (Signal.changed_event s);
        sample t w (Signal.read s)
      done)

let trace_event t ev =
  let w = add_wire t ~wname:(Kernel.event_name ev) ~width:1 in
  Kernel.spawn t.kernel
    ~name:("vcd." ^ Kernel.event_name ev)
    (fun () ->
      while not (Kernel.stopped t.kernel) do
        Kernel.wait_event ev;
        (* A pulse: 1 at the firing instant, 0 one delta later is not
           representable without time advancing; dump 1 then 0 at +1ps. *)
        sample t w 1;
        Kernel.wait_for 1;
        sample t w 0
      done)

let mark t name v =
  let w =
    match Hashtbl.find_opt t.custom name with
    | Some w -> w
    | None ->
        let w = add_wire t ~wname:name ~width:32 in
        Hashtbl.add t.custom name w;
        w
  in
  sample t w v

let sanitize s =
  String.map (fun c -> if c = ' ' || c = '\t' then '_' else c) s

let dump t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "$date vp-dift trace $end\n";
  Buffer.add_string buf "$timescale 1ps $end\n";
  Buffer.add_string buf (Printf.sprintf "$scope module %s $end\n" (sanitize t.name));
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf "$var wire %d %s %s $end\n" w.width w.id (sanitize w.wname)))
    (List.rev t.wires);
  Buffer.add_string buf "$upscope $end\n$enddefinitions $end\n";
  let samples = List.rev t.samples in
  let emit_value w_id v width =
    if width = 1 then Printf.sprintf "%d%s\n" (v land 1) w_id
    else begin
      (* Binary vector form. *)
      let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (string_of_int (v land 1) ^ acc) in
      let b = if v = 0 then "0" else bits (v land 0xffffffff) "" in
      Printf.sprintf "b%s %s\n" b w_id
    end
  in
  let width_of id =
    match List.find_opt (fun w -> w.id = id) t.wires with
    | Some w -> w.width
    | None -> 32
  in
  let current_time = ref (-1) in
  List.iter
    (fun (time, id, v) ->
      if time <> !current_time then begin
        Buffer.add_string buf (Printf.sprintf "#%d\n" time);
        current_time := time
      end;
      Buffer.add_string buf (emit_value id v (width_of id)))
    samples;
  Buffer.contents buf

let dump_to_file t path =
  let oc = open_out path in
  output_string oc (dump t);
  close_out oc
