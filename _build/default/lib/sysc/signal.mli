(** A primitive channel with [sc_signal] semantics: writes take effect in
    the update phase, and a value change triggers a delta notification. *)

type 'a t

val create : Kernel.t -> ?equal:('a -> 'a -> bool) -> string -> 'a -> 'a t
(** [create k name init] makes a signal holding [init]. [equal] (default
    structural equality) decides whether a write constitutes a change. *)

val read : 'a t -> 'a
(** Current (settled) value. *)

val write : 'a t -> 'a -> unit
(** Schedule the value for the next update phase. The last write in an
    evaluation phase wins. *)

val changed_event : 'a t -> Kernel.event
(** Notified (delta) whenever the settled value changes. *)

val name : 'a t -> string
