lib/sysc/sc_module.ml: Kernel
