lib/sysc/signal.ml: Kernel
