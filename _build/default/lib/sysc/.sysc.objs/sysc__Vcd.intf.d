lib/sysc/vcd.mli: Kernel Signal
