lib/sysc/heap.ml: Array
