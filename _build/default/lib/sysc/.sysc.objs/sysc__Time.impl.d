lib/sysc/time.ml: Format Int
