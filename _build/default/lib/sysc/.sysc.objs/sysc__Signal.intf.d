lib/sysc/signal.mli: Kernel
