lib/sysc/heap.mli:
