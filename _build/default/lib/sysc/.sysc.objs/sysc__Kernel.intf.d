lib/sysc/kernel.mli: Time
