lib/sysc/time.mli: Format
