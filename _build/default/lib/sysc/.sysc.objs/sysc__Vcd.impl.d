lib/sysc/vcd.ml: Buffer Char Hashtbl Kernel List Printf Signal String Time
