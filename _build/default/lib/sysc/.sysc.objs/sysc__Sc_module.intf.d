lib/sysc/sc_module.mli: Kernel
