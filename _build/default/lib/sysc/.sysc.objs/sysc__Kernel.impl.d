lib/sysc/kernel.ml: Effect Heap Int List Printf Queue Time
