type event = {
  ev_name : string;
  ev_kernel : t;
  mutable waiters : (unit -> unit) list;  (* newest first *)
}

and timed_entry = { seq : int; thunk : unit -> unit }

and t = {
  mutable now : Time.t;
  runnable : (unit -> unit) Queue.t;
  mutable delta_events : event list;  (* newest first *)
  updates : (unit -> unit) Queue.t;
  timed : timed_entry Heap.t;
  mutable next_seq : int;
  mutable deltas : int;
  mutable stop_requested : bool;
  mutable error : exn option;
  mutable live : int;
  mutable expect_progress : bool;
  mutable hit_until : bool;
}

exception Deadlock of string

type _ Effect.t +=
  | Wait_time : Time.t -> unit Effect.t
  | Wait_event : event -> unit Effect.t
  | Wait_any : event list -> unit Effect.t
  | Halt : unit Effect.t

let create () =
  {
    now = Time.zero;
    runnable = Queue.create ();
    delta_events = [];
    updates = Queue.create ();
    timed = Heap.create ();
    next_seq = 0;
    deltas = 0;
    stop_requested = false;
    error = None;
    live = 0;
    expect_progress = false;
    hit_until = false;
  }

let now k = k.now
let delta_count k = k.deltas
let create_event k name = { ev_name = name; ev_kernel = k; waiters = [] }
let event_name e = e.ev_name

let schedule_timed k at thunk =
  k.next_seq <- k.next_seq + 1;
  Heap.push k.timed ~key:at { seq = k.next_seq; thunk }

(* Move an event's waiters (in FIFO order) onto the runnable queue. *)
let wake e =
  let ws = List.rev e.waiters in
  e.waiters <- [];
  List.iter (fun w -> Queue.push w e.ev_kernel.runnable) ws

let notify_immediate e = wake e

let notify e =
  let k = e.ev_kernel in
  if not (List.memq e k.delta_events) then k.delta_events <- e :: k.delta_events

let notify_after e t =
  let k = e.ev_kernel in
  schedule_timed k (Time.add k.now t) (fun () -> wake e)

let request_update k thunk = Queue.push thunk k.updates

let wait_for t = Effect.perform (Wait_time t)
let wait_event e = Effect.perform (Wait_event e)

let wait_any evs =
  match evs with
  | [] -> invalid_arg "Kernel.wait_any: empty event list"
  | [ e ] -> wait_event e
  | _ -> Effect.perform (Wait_any evs)

let halt () = Effect.perform Halt

let stop k = k.stop_requested <- true
let stopped k = k.stop_requested
let set_expect_progress k v = k.expect_progress <- v
let live_processes k = k.live

let spawn k ~name fn =
  let open Effect.Deep in
  let record_error e =
    k.live <- k.live - 1;
    if k.error = None then begin
      k.error <- Some e;
      k.stop_requested <- true
    end;
    ignore name
  in
  let run_proc () =
    match_with fn ()
      {
        retc = (fun () -> k.live <- k.live - 1);
        exnc = record_error;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait_time t ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    schedule_timed k (Time.add k.now t) (fun () ->
                        continue cont ()))
            | Wait_event e ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    e.waiters <- (fun () -> continue cont ()) :: e.waiters)
            | Wait_any evs ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    let fired = ref false in
                    let once () =
                      if not !fired then begin
                        fired := true;
                        continue cont ()
                      end
                    in
                    List.iter (fun e -> e.waiters <- once :: e.waiters) evs)
            | Halt ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    ignore cont;
                    k.live <- k.live - 1)
            | _ -> None);
      }
  in
  k.live <- k.live + 1;
  Queue.push run_proc k.runnable

let run ?until k =
  k.stop_requested <- false;
  let reraise_error () =
    match k.error with
    | Some e ->
        k.error <- None;
        raise e
    | None -> ()
  in
  let rec loop () =
    if k.stop_requested then ()
    else if not (Queue.is_empty k.runnable) then begin
      (* Evaluation phase. *)
      while (not (Queue.is_empty k.runnable)) && not k.stop_requested do
        (Queue.pop k.runnable) ()
      done;
      (* Update phase. *)
      while not (Queue.is_empty k.updates) do
        (Queue.pop k.updates) ()
      done;
      loop ()
    end
    else if not (Queue.is_empty k.updates) then begin
      (* Updates requested by a process that was resumed directly from a
         timed wakeup (no evaluation phase ran): still honour the update
         phase before delta notification. *)
      while not (Queue.is_empty k.updates) do
        (Queue.pop k.updates) ()
      done;
      loop ()
    end
    else if k.delta_events <> [] then begin
      (* Delta-notification phase: start a new delta cycle. *)
      k.deltas <- k.deltas + 1;
      let evs = List.rev k.delta_events in
      k.delta_events <- [];
      List.iter wake evs;
      loop ()
    end
    else begin
      (* Advance time to the next timed notification. *)
      match Heap.min_key k.timed with
      | None -> ()
      | Some t -> (
          match until with
          | Some u when t > u ->
              k.hit_until <- true;
              k.now <- u
          | _ ->
              k.now <- t;
              (* Pop everything scheduled for this instant, in insertion
                 order, to keep process wakeups deterministic. *)
              let batch = ref [] in
              let rec drain () =
                match Heap.min_key k.timed with
                | Some t' when t' = t -> (
                    match Heap.pop k.timed with
                    | Some (_, entry) ->
                        batch := entry :: !batch;
                        drain ()
                    | None -> ())
                | _ -> ()
              in
              drain ();
              let entries =
                List.sort (fun a b -> Int.compare a.seq b.seq) !batch
              in
              List.iter (fun e -> e.thunk ()) entries;
              loop ())
    end
  in
  k.hit_until <- false;
  loop ();
  reraise_error ();
  if
    k.expect_progress && (not k.stop_requested) && (not k.hit_until)
    && k.live > 0
  then
    raise
      (Deadlock
         (Printf.sprintf "%d process(es) still waiting with no pending events"
            k.live))
