module A = Rv32_asm.Asm
module R = Rv32.Reg

(* The record mirrors Dhrystone's Rec_Type: a discriminant, an enum, an int
   and a 30-char string, padded to 48 bytes. *)
let record_string = "DHRYSTONE PROGRAM, SOME STRING"
let other_string = "DHRYSTONE PROGRAM, 2'ND STRING"

(* Per iteration the checksum evolves like the firmware's loop below:
   chk = chk * 3 + int_field + strcmp_result_flag (mod 2^32). *)
let expected_checksum ~iterations =
  let chk = ref 0 in
  for i = 1 to iterations do
    let int_field = (i * 5) land 0xffff in
    let cmp_flag = if record_string = other_string then 1 else 2 in
    chk := (((!chk * 3) + int_field + cmp_flag) * 2) land 0xffffffff;
    chk := !chk lxor (i land 0xff)
  done;
  !chk

(* proc_arith: a0 = i -> returns (i * 5) & 0xffff, through two nested
   calls like Dhrystone's Proc_7 / Func_1 chains. *)
let emit_procs p =
  A.label p "func_mul5";
  A.slli p R.t0 R.a0 2;
  A.add p R.a0 R.t0 R.a0;
  A.ret p;
  Rt.fn p "proc_arith" (fun () ->
      A.call p "func_mul5";
      A.li p R.t1 0xffff;
      A.and_ p R.a0 R.a0 R.t1)

let build ?(iterations = 2000) p =
  Rt.entry p ();
  A.li p R.s1 1 (* i *);
  A.li p R.s2 iterations;
  A.li p R.s3 0 (* chk *);
  A.label p "main_loop";
  (* Record copy: *next_rec = *rec (48 bytes) like Dhrystone's
     structure assignment. *)
  A.la p R.a0 "next_rec";
  A.la p R.a1 "rec";
  A.li p R.a2 48;
  A.call p "memcpy";
  (* String comparison. *)
  A.la p R.a0 "str_1";
  A.la p R.a1 "str_2";
  A.call p "strcmp";
  A.snez p R.t0 R.a0;
  A.addi p R.s4 R.t0 1 (* 1 if equal, 2 if different *);
  (* Arithmetic through nested calls. *)
  A.mv p R.a0 R.s1;
  A.call p "proc_arith";
  (* chk = ((chk*3 + int_field + cmp) * 2) ^ (i & 0xff) *)
  A.slli p R.t0 R.s3 1;
  A.add p R.s3 R.t0 R.s3 (* chk*3 *);
  A.add p R.s3 R.s3 R.a0;
  A.add p R.s3 R.s3 R.s4;
  A.slli p R.s3 R.s3 1;
  A.andi p R.t0 R.s1 0xff;
  A.xor p R.s3 R.s3 R.t0;
  (* Store the int field into the record like Proc_1 does. *)
  A.la p R.t1 "next_rec";
  A.sw p R.a0 R.t1 8;
  A.addi p R.s1 R.s1 1;
  A.bge_l p R.s2 R.s1 "main_loop";
  (* Compare checksum with the expected value. *)
  A.la p R.t0 "expected";
  A.lw p R.t1 R.t0 0;
  A.bne_l p R.s3 R.t1 "fail";
  Rt.exit_ p ();
  A.label p "fail";
  Rt.exit_ p ~code:1 ();
  emit_procs p;
  Rt.emit_memcpy p;
  Rt.emit_strcmp p;
  A.align p 4;
  A.label p "expected";
  A.word p (expected_checksum ~iterations);
  A.label p "rec";
  A.word p 1 (* discriminant *);
  A.word p 2 (* enum *);
  A.word p 0 (* int field *);
  A.asciz p record_string;
  A.align p 4;
  A.space p 4;
  A.label p "next_rec";
  A.space p 48;
  A.label p "str_1";
  A.asciz p record_string;
  A.label p "str_2";
  A.asciz p other_string

let image ?iterations () =
  let p = A.create () in
  build ?iterations p;
  A.assemble p
