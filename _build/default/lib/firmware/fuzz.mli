(** Policy stress-testing by random simulation — the automatic test-case
    generation direction the paper lists as future work (Section VII).

    Deterministic (seeded) random straight-line RV32IM programs run twice,
    on the plain VP and on VP+ under a random security policy with the
    monitor in [Record] mode, checking the invariants that make the DIFT
    engine trustworthy:

    - {b transparency}: VP and VP+ finish with identical architectural
      state (registers, memory, instruction count) — tracking never
      changes values;
    - {b soundness of silence}: a policy with no checks configured records
      zero violations;
    - {b robustness}: no program aborts the simulator (fatal traps,
      internal errors). *)

type report = {
  programs : int;  (** Programs executed. *)
  completed : int;  (** Ran to their exit ecall on both flavours. *)
  violations : int;  (** Total violations recorded across runs. *)
  checks : int;  (** Total clearance checks performed. *)
  mismatches : int;  (** Transparency failures (must be 0). *)
  silent_failures : int;
      (** Violations under check-free policies (must be 0). *)
  errors : int;  (** Simulator crashes (must be 0). *)
}

val pp_report : Format.formatter -> report -> unit

val healthy : report -> bool
(** All must-be-zero counters are zero. *)

val run : ?seed:int -> ?size:int -> programs:int -> unit -> report
(** [run ~programs ()] fuzzes with [programs] random programs of roughly
    [size] instructions each (default 40). *)
