(** Firmware runtime support: entry/exit conventions and a small library of
    assembly subroutines shared by the benchmark and case-study programs.

    Conventions: programs start at the ["_start"] label with [sp] set by
    {!entry}; subroutines follow the RISC-V calling convention (args/results
    in [a0..], [ra] for return, callee-saved [s*]). *)

val stack_top : int
(** Default initial stack pointer (near the top of the 1 MiB RAM). *)

val entry : Rv32_asm.Asm.t -> ?stack:int -> unit -> unit
(** Emit the ["_start"] label and stack setup. *)

val exit_ : Rv32_asm.Asm.t -> ?code:int -> unit -> unit
(** Exit via the ecall convention with a constant code. *)

val exit_a0 : Rv32_asm.Asm.t -> unit
(** Exit with the current value of [a0] as code. *)

val fn : Rv32_asm.Asm.t -> string -> (unit -> unit) -> unit
(** [fn p name body]: emit a leaf-friendly function: label, a 16-byte frame
    saving [ra] and [s0], the body, then epilogue + [ret]. The body may call
    other functions (ra is saved). *)

(** {1 Subroutine emitters}

    Each [emit_*] appends one named subroutine; call each at most once per
    program and invoke with [Asm.call p "<name>"]. *)

val emit_uart_putc : Rv32_asm.Asm.t -> unit
(** ["uart_putc"]: transmit the byte in [a0]. *)

val emit_uart_puts : Rv32_asm.Asm.t -> unit
(** ["uart_puts"]: transmit the NUL-terminated string at [a0]. Requires
    ["uart_putc"]. *)

val emit_memcpy : Rv32_asm.Asm.t -> unit
(** ["memcpy"]: copy [a2] bytes from [a1] to [a0]; returns [a0]. *)

val emit_memset : Rv32_asm.Asm.t -> unit
(** ["memset"]: fill [a2] bytes at [a0] with byte [a1]; returns [a0]. *)

val emit_strcmp : Rv32_asm.Asm.t -> unit
(** ["strcmp"]: compare NUL-terminated strings [a0]/[a1]; result in [a0]. *)

val emit_rand : Rv32_asm.Asm.t -> seed:int -> unit
(** ["rand"]: xorshift32 PRNG; returns the next value in [a0]; state kept in
    the data word ["rand_state"]. *)

val setup_trap_handler : Rv32_asm.Asm.t -> string -> unit
(** Point [mtvec] at a label (clobbers [t6]). *)

val enable_machine_interrupts : Rv32_asm.Asm.t -> mie_bits:int -> unit
(** Set the given bits in [mie] and the global [mstatus.MIE] (clobbers
    [t6]). *)
