module A = Rv32_asm.Asm
module R = Rv32.Reg

(* Lomuto-partition quicksort over word pointers:
     qsort(a0 = lo, a1 = hi)      pointers to first/last element
   Frame: ra, s1 = lo, s2 = hi, s3 = i, s4 = j, s5 = pivot. *)
let emit_qsort p =
  A.label p "qsort";
  A.bgeu_l p R.a0 R.a1 "qsort.ret0" (* lo >= hi: done *);
  A.addi p R.sp R.sp (-32);
  A.sw p R.ra R.sp 28;
  A.sw p R.s1 R.sp 24;
  A.sw p R.s2 R.sp 20;
  A.sw p R.s3 R.sp 16;
  A.sw p R.s4 R.sp 12;
  A.sw p R.s5 R.sp 8;
  A.mv p R.s1 R.a0;
  A.mv p R.s2 R.a1;
  A.lw p R.s5 R.s2 0 (* pivot = *hi *);
  A.addi p R.s3 R.s1 (-4) (* i = lo - 4 *);
  A.mv p R.s4 R.s1 (* j = lo *);
  A.label p "qsort.part";
  A.bgeu_l p R.s4 R.s2 "qsort.part_done";
  A.lw p R.t0 R.s4 0;
  A.bltu_l p R.s5 R.t0 "qsort.next" (* *j >u pivot: skip *);
  A.addi p R.s3 R.s3 4;
  (* swap *i, *j *)
  A.lw p R.t1 R.s3 0;
  A.sw p R.t0 R.s3 0;
  A.sw p R.t1 R.s4 0;
  A.label p "qsort.next";
  A.addi p R.s4 R.s4 4;
  A.j p "qsort.part";
  A.label p "qsort.part_done";
  A.addi p R.s3 R.s3 4;
  (* swap *i, *hi *)
  A.lw p R.t0 R.s3 0;
  A.lw p R.t1 R.s2 0;
  A.sw p R.t1 R.s3 0;
  A.sw p R.t0 R.s2 0;
  (* qsort(lo, i - 4) *)
  A.mv p R.a0 R.s1;
  A.addi p R.a1 R.s3 (-4);
  A.call p "qsort";
  (* qsort(i + 4, hi) *)
  A.addi p R.a0 R.s3 4;
  A.mv p R.a1 R.s2;
  A.call p "qsort";
  A.lw p R.ra R.sp 28;
  A.lw p R.s1 R.sp 24;
  A.lw p R.s2 R.sp 20;
  A.lw p R.s3 R.sp 16;
  A.lw p R.s4 R.sp 12;
  A.lw p R.s5 R.sp 8;
  A.addi p R.sp R.sp 32;
  A.label p "qsort.ret0";
  A.ret p

let build ?(n = 512) ?(rounds = 4) p =
  Rt.entry p ();
  A.li p R.s10 rounds;
  A.label p "round";
  (* Fill the array with pseudo-random words. *)
  A.la p R.s8 "arr";
  A.li p R.s9 n;
  A.label p "fill";
  A.call p "rand";
  A.sw p R.a0 R.s8 0;
  A.addi p R.s8 R.s8 4;
  A.addi p R.s9 R.s9 (-1);
  A.bnez_l p R.s9 "fill";
  (* Sort. *)
  A.la p R.a0 "arr";
  A.la p R.a1 "arr";
  A.li p R.t0 ((n - 1) * 4);
  A.add p R.a1 R.a1 R.t0;
  A.call p "qsort";
  (* Verify ascending (unsigned). *)
  A.la p R.t0 "arr";
  A.li p R.t1 (n - 1);
  A.label p "verify";
  A.lw p R.t2 R.t0 0;
  A.lw p R.t3 R.t0 4;
  A.bltu_l p R.t3 R.t2 "fail";
  A.addi p R.t0 R.t0 4;
  A.addi p R.t1 R.t1 (-1);
  A.bnez_l p R.t1 "verify";
  A.addi p R.s10 R.s10 (-1);
  A.bnez_l p R.s10 "round";
  Rt.exit_ p ();
  A.label p "fail";
  Rt.exit_ p ~code:1 ();
  emit_qsort p;
  Rt.emit_rand p ~seed:0x13579bdf;
  A.align p 4;
  A.label p "arr";
  A.space p (4 * n)

let image ?n ?rounds () =
  let p = A.create () in
  build ?n ?rounds p;
  A.assemble p
