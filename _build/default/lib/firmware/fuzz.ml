module A = Rv32_asm.Asm
module I = Rv32.Insn

type report = {
  programs : int;
  completed : int;
  violations : int;
  checks : int;
  mismatches : int;
  silent_failures : int;
  errors : int;
}

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>fuzz: %d programs, %d completed@,\
     %d clearance checks, %d violations recorded@,\
     transparency mismatches: %d@,\
     violations under check-free policies: %d@,\
     simulator errors: %d@]"
    r.programs r.completed r.checks r.violations r.mismatches
    r.silent_failures r.errors

let healthy r = r.mismatches = 0 && r.silent_failures = 0 && r.errors = 0

(* Deterministic xorshift32 PRNG so runs are reproducible by seed. *)
type rng = { mutable s : int }

let next r =
  let x = r.s in
  let x = x lxor (x lsl 13) land 0xffffffff in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0xffffffff in
  r.s <- x;
  x

let rand r n = next r mod n

(* --- random programs ---------------------------------------------------- *)

let wreg r = 5 + rand r 11 (* x5..x15 *)
let buf_reg = 28

let random_insn r =
  let imm () = rand r 4096 - 2048 in
  let off_w () = 4 * rand r 63 in
  match rand r 24 with
  | 0 -> I.ADD (wreg r, wreg r, wreg r)
  | 1 -> I.SUB (wreg r, wreg r, wreg r)
  | 2 -> I.XOR (wreg r, wreg r, wreg r)
  | 3 -> I.OR (wreg r, wreg r, wreg r)
  | 4 -> I.AND (wreg r, wreg r, wreg r)
  | 5 -> I.SLT (wreg r, wreg r, wreg r)
  | 6 -> I.SLTU (wreg r, wreg r, wreg r)
  | 7 -> I.SLL (wreg r, wreg r, wreg r)
  | 8 -> I.SRL (wreg r, wreg r, wreg r)
  | 9 -> I.SRA (wreg r, wreg r, wreg r)
  | 10 -> I.MUL (wreg r, wreg r, wreg r)
  | 11 -> I.MULHU (wreg r, wreg r, wreg r)
  | 12 -> I.DIV (wreg r, wreg r, wreg r)
  | 13 -> I.REMU (wreg r, wreg r, wreg r)
  | 14 -> I.ADDI (wreg r, wreg r, imm ())
  | 15 -> I.XORI (wreg r, wreg r, imm ())
  | 16 -> I.ANDI (wreg r, wreg r, imm ())
  | 17 -> I.SLLI (wreg r, wreg r, rand r 32)
  | 18 -> I.SRAI (wreg r, wreg r, rand r 32)
  | 19 -> I.LUI (wreg r, rand r 0x100000 lsl 12)
  | 20 -> I.LW (wreg r, buf_reg, off_w ())
  | 21 -> I.LBU (wreg r, buf_reg, off_w () + rand r 4)
  | 22 -> I.SW (buf_reg, wreg r, off_w ())
  | _ -> I.SB (buf_reg, wreg r, off_w () + rand r 4)

let build_program r ~size =
  let p = A.create () in
  Rt.entry p ();
  List.iteri
    (fun i reg -> A.li p reg (0x2468 * (i + 3)))
    [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ];
  A.la p buf_reg "buf";
  for _ = 1 to size do
    if rand r 12 = 0 then A.insn p (I.BEQ (wreg r, wreg r, 8))
    else A.insn p (random_insn r)
  done;
  A.nop p;
  A.li p 17 93;
  A.insn p I.ECALL;
  A.align p 4;
  A.label p "buf";
  for i = 0 to 255 do
    A.byte p ((i * 41) land 0xff)
  done;
  A.assemble p

(* --- random policies ---------------------------------------------------- *)

let random_policy r img =
  let lat =
    match rand r 3 with
    | 0 -> Dift.Lattice.integrity ()
    | 1 -> Dift.Lattice.confidentiality ()
    | _ -> Dift.Lattice.ifp3 ()
  in
  let n = Dift.Lattice.size lat in
  let tag () = rand r n in
  let org = img.Rv32_asm.Image.org in
  let limit = Rv32_asm.Image.limit img in
  let regions =
    List.init (rand r 4) (fun i ->
        let lo = org + rand r (limit - org) in
        let hi = min (limit - 1) (lo + rand r 64) in
        Dift.Policy.region ~name:(Printf.sprintf "r%d" i) ~lo ~hi ~tag:(tag ()))
  in
  let opt f = if rand r 2 = 0 then None else Some (f ()) in
  (* Fetch clearance must admit the program region or nothing runs: use
     the lattice top when enabled. *)
  let top = Option.get (Dift.Lattice.top lat) in
  Dift.Policy.make ~lattice:lat
    ~default_tag:(tag ())
    ~classification:regions
    ~output_clearance:(match opt tag with Some t -> [ ("uart", t) ] | None -> [])
    ?exec_fetch:(if rand r 2 = 0 then None else Some top)
    ?exec_branch:(opt tag) ?exec_mem_addr:(opt tag) ()

let no_check_policy lat ~default_tag = Dift.Policy.unrestricted lat ~default_tag

(* --- execution ----------------------------------------------------------- *)

type outcome = {
  o_exit : bool;
  o_regs : int list;
  o_mem : string;
  o_instret : int;
}

let execute img policy ~tracking =
  let monitor = Dift.Monitor.create ~mode:Dift.Monitor.Record policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking () in
  Vp.Soc.load_image soc img;
  let reason = Vp.Soc.run_for_instructions soc 100_000 in
  let buf = Rv32_asm.Image.symbol img "buf" - Vp.Soc.ram_base in
  let o =
    {
      o_exit = (match reason with Rv32.Core.Exited _ -> true | _ -> false);
      o_regs =
        List.map (fun x -> soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg x)
          [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ];
      o_mem =
        String.init 256 (fun i ->
            Char.chr (Vp.Memory.read_byte soc.Vp.Soc.memory (buf + i)));
      o_instret = soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ();
    }
  in
  (o, Dift.Monitor.violation_count monitor, Dift.Monitor.check_count monitor)

let run ?(seed = 0x5eed) ?(size = 40) ~programs () =
  let r = { s = (if seed = 0 then 1 else seed land 0xffffffff) } in
  let completed = ref 0 in
  let violations = ref 0 in
  let checks = ref 0 in
  let mismatches = ref 0 in
  let silent = ref 0 in
  let errors = ref 0 in
  for _ = 1 to programs do
    match
      let img = build_program r ~size in
      let policy = random_policy r img in
      let base, _, _ = execute img (no_check_policy policy.Dift.Policy.lattice ~default_tag:policy.Dift.Policy.default_tag) ~tracking:false in
      (* Invariant 2: a check-free policy records nothing. *)
      let _, v0, _ =
        execute img
          (no_check_policy policy.Dift.Policy.lattice
             ~default_tag:policy.Dift.Policy.default_tag)
          ~tracking:true
      in
      if v0 <> 0 then incr silent;
      (* Invariant 1: VP+ under the random policy computes the same
         state (Record mode: execution continues past violations). *)
      let vpp, v, c = execute img policy ~tracking:true in
      violations := !violations + v;
      checks := !checks + c;
      if base.o_exit && vpp.o_exit then incr completed;
      if
        base.o_regs <> vpp.o_regs
        || not (String.equal base.o_mem vpp.o_mem)
        || base.o_instret <> vpp.o_instret
      then incr mismatches
    with
    | () -> ()
    | exception _ -> incr errors
  done;
  {
    programs;
    completed = !completed;
    violations = !violations;
    checks = !checks;
    mismatches = !mismatches;
    silent_failures = !silent;
    errors = !errors;
  }
