module A = Rv32_asm.Asm
module R = Rv32.Reg

let stack_top = 0x800f_fff0

let entry p ?(stack = stack_top) () =
  A.label p "_start";
  A.li p R.sp stack

let exit_ p ?(code = 0) () = A.exit_ecall p ~code ()

let exit_a0 p =
  A.li p R.a7 93;
  A.ecall p

let fn p name body =
  A.label p name;
  A.addi p R.sp R.sp (-16);
  A.sw p R.ra R.sp 12;
  A.sw p R.s0 R.sp 8;
  body ();
  A.lw p R.ra R.sp 12;
  A.lw p R.s0 R.sp 8;
  A.addi p R.sp R.sp 16;
  A.ret p

let emit_uart_putc p =
  A.label p "uart_putc";
  A.li p R.t6 Vp.Soc.uart_base;
  A.sb p R.a0 R.t6 0;
  A.ret p

let emit_uart_puts p =
  A.label p "uart_puts";
  A.li p R.t6 Vp.Soc.uart_base;
  A.label p "uart_puts.loop";
  A.lbu p R.t5 R.a0 0;
  A.beqz_l p R.t5 "uart_puts.done";
  A.sb p R.t5 R.t6 0;
  A.addi p R.a0 R.a0 1;
  A.j p "uart_puts.loop";
  A.label p "uart_puts.done";
  A.ret p

let emit_memcpy p =
  A.label p "memcpy";
  A.mv p R.t0 R.a0;
  A.label p "memcpy.loop";
  A.beqz_l p R.a2 "memcpy.done";
  A.lbu p R.t1 R.a1 0;
  A.sb p R.t1 R.t0 0;
  A.addi p R.a1 R.a1 1;
  A.addi p R.t0 R.t0 1;
  A.addi p R.a2 R.a2 (-1);
  A.j p "memcpy.loop";
  A.label p "memcpy.done";
  A.ret p

let emit_memset p =
  A.label p "memset";
  A.mv p R.t0 R.a0;
  A.label p "memset.loop";
  A.beqz_l p R.a2 "memset.done";
  A.sb p R.a1 R.t0 0;
  A.addi p R.t0 R.t0 1;
  A.addi p R.a2 R.a2 (-1);
  A.j p "memset.loop";
  A.label p "memset.done";
  A.ret p

let emit_strcmp p =
  A.label p "strcmp";
  A.label p "strcmp.loop";
  A.lbu p R.t0 R.a0 0;
  A.lbu p R.t1 R.a1 0;
  A.bne_l p R.t0 R.t1 "strcmp.diff";
  A.beqz_l p R.t0 "strcmp.eq";
  A.addi p R.a0 R.a0 1;
  A.addi p R.a1 R.a1 1;
  A.j p "strcmp.loop";
  A.label p "strcmp.eq";
  A.li p R.a0 0;
  A.ret p;
  A.label p "strcmp.diff";
  A.sub p R.a0 R.t0 R.t1;
  A.ret p

let emit_rand p ~seed =
  A.label p "rand";
  A.la p R.t0 "rand_state";
  A.lw p R.a0 R.t0 0;
  (* xorshift32 *)
  A.slli p R.t1 R.a0 13;
  A.xor p R.a0 R.a0 R.t1;
  A.srli p R.t1 R.a0 17;
  A.xor p R.a0 R.a0 R.t1;
  A.slli p R.t1 R.a0 5;
  A.xor p R.a0 R.a0 R.t1;
  A.sw p R.a0 R.t0 0;
  A.ret p;
  A.align p 4;
  A.label p "rand_state";
  A.word p seed

let setup_trap_handler p name =
  A.la p R.t6 name;
  A.csrrw p R.zero 0x305 R.t6

let enable_machine_interrupts p ~mie_bits =
  A.li p R.t6 mie_bits;
  A.csrrs p R.zero 0x304 R.t6;
  A.li p R.t6 0x8;
  A.csrrs p R.zero 0x300 R.t6
