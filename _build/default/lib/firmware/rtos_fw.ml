module A = Rv32_asm.Asm
module R = Rv32.Reg

(* Context frame: 128 bytes on the preempted task's stack.
   x1 at 0, x3..x31 at (r-2)*4, mepc at 120. *)
let frame_size = 128
let reg_off r = if r = 1 then 0 else (r - 2) * 4
let mepc_off = 120

let saved_regs = 1 :: List.init 29 (fun i -> i + 3)

let emit_save p =
  A.addi p R.sp R.sp (-frame_size);
  List.iter (fun r -> A.sw p r R.sp (reg_off r)) saved_regs;
  A.csrrs p R.t0 0x341 R.zero (* mepc *);
  A.sw p R.t0 R.sp mepc_off

let emit_restore p =
  A.lw p R.t0 R.sp mepc_off;
  A.csrrw p R.zero 0x341 R.t0;
  List.iter (fun r -> A.lw p r R.sp (reg_off r)) saved_regs;
  A.addi p R.sp R.sp frame_size;
  A.mret p

let emit_program_slice p ~slice_ticks =
  (* mtimecmp = mtime.lo + slice (the hi word stays 0 for these short
     simulations). *)
  A.li p R.t1 (Vp.Soc.clint_base + 0xbff8);
  A.lw p R.t2 R.t1 0;
  A.addi p R.t2 R.t2 slice_ticks;
  A.li p R.t1 (Vp.Soc.clint_base + 0x4000);
  A.sw p R.t2 R.t1 0;
  A.sw p R.zero R.t1 4

let build ?(switches = 16) ?(slice_ticks = 20) p =
  A.j p "_start";
  A.align p 4;
  (* --- timer interrupt: the scheduler ------------------------------- *)
  A.label p "scheduler";
  emit_save p;
  (* Count switches; exit once the budget is reached. *)
  A.la p R.t1 "nswitch";
  A.lw p R.t2 R.t1 0;
  A.addi p R.t2 R.t2 1;
  A.sw p R.t2 R.t1 0;
  A.li p R.t3 switches;
  A.blt_l p R.t2 R.t3 "sched.cont";
  Rt.exit_ p ();
  A.label p "sched.cont";
  (* tcbs[current].sp <- sp *)
  A.la p R.t1 "current";
  A.lw p R.t2 R.t1 0;
  A.la p R.t3 "tcbs";
  A.slli p R.t4 R.t2 2;
  A.add p R.t5 R.t3 R.t4;
  A.sw p R.sp R.t5 0;
  (* current <- 1 - current; sp <- tcbs[current].sp *)
  A.xori p R.t2 R.t2 1;
  A.sw p R.t2 R.t1 0;
  A.slli p R.t4 R.t2 2;
  A.add p R.t5 R.t3 R.t4;
  A.lw p R.sp R.t5 0;
  emit_program_slice p ~slice_ticks;
  emit_restore p;
  (* --- main ----------------------------------------------------------- *)
  Rt.entry p ();
  Rt.setup_trap_handler p "scheduler";
  (* Build task 1's initial context frame on its own stack. *)
  A.la p R.t0 "task1_stack_top";
  A.addi p R.t0 R.t0 (-frame_size);
  A.la p R.t1 "task1";
  A.sw p R.t1 R.t0 mepc_off;
  A.la p R.t2 "tcbs";
  A.sw p R.t0 R.t2 4;
  (* Arm the first slice and enable the timer interrupt. *)
  emit_program_slice p ~slice_ticks;
  Rt.enable_machine_interrupts p ~mie_bits:0x80 (* MTIE *);
  (* Fall through into task 0. *)
  A.label p "task0";
  A.la p R.t0 "cnt0";
  A.label p "task0.loop";
  A.lw p R.t1 R.t0 0;
  A.addi p R.t1 R.t1 1;
  A.sw p R.t1 R.t0 0;
  (* a little extra compute so the two tasks differ *)
  A.mul p R.t2 R.t1 R.t1;
  A.j p "task0.loop";
  A.label p "task1";
  A.la p R.t0 "cnt1";
  A.label p "task1.loop";
  A.lw p R.t1 R.t0 0;
  A.addi p R.t1 R.t1 1;
  A.sw p R.t1 R.t0 0;
  A.xor p R.t2 R.t1 R.t0;
  A.j p "task1.loop";
  (* --- data ----------------------------------------------------------- *)
  A.align p 4;
  A.label p "current";
  A.word p 0;
  A.label p "tcbs";
  A.word p 0;
  A.word p 0;
  A.label p "nswitch";
  A.word p 0;
  A.label p "cnt0";
  A.word p 0;
  A.label p "cnt1";
  A.word p 0;
  A.align p 16;
  A.space p 1024;
  A.label p "task1_stack_top";
  A.space p 4

let image ?switches ?slice_ticks () =
  let p = A.create () in
  build ?switches ?slice_ticks p;
  A.assemble p
