module A = Rv32_asm.Asm
module R = Rv32.Reg

let build ?(frames = 8) p =
  A.j p "_start";
  A.align p 4;
  (* External-interrupt handler: claim, forward one frame, complete. *)
  A.label p "handler";
  A.li p R.t0 (Vp.Soc.plic_base + 8);
  A.lw p R.t1 R.t0 0 (* claim *);
  A.li p R.t2 Vp.Soc.irq_sensor;
  A.bne_l p R.t1 R.t2 "handler.done";
  (* Copy the 64-byte frame to the UART. *)
  A.li p R.t2 Vp.Soc.sensor_base;
  A.li p R.t3 Vp.Soc.uart_base;
  A.li p R.t4 64;
  A.label p "copy";
  A.lbu p R.t5 R.t2 0;
  A.sb p R.t5 R.t3 0;
  A.addi p R.t2 R.t2 1;
  A.addi p R.t4 R.t4 (-1);
  A.bnez_l p R.t4 "copy";
  (* Count frames; exit after the budget. *)
  A.la p R.t2 "nframes";
  A.lw p R.t3 R.t2 0;
  A.addi p R.t3 R.t3 1;
  A.sw p R.t3 R.t2 0;
  A.li p R.t4 frames;
  A.blt_l p R.t3 R.t4 "handler.done";
  Rt.exit_ p ();
  A.label p "handler.done";
  A.sw p R.t1 R.t0 0 (* complete *);
  A.mret p;
  (* Main: configure interrupts and idle in wfi. *)
  Rt.entry p ();
  Rt.setup_trap_handler p "handler";
  A.li p R.t0 (Vp.Soc.plic_base + 4);
  A.li p R.t1 (1 lsl Vp.Soc.irq_sensor);
  A.sw p R.t1 R.t0 0;
  Rt.enable_machine_interrupts p ~mie_bits:0x800 (* MEIE *);
  A.label p "idle";
  A.wfi p;
  A.j p "idle";
  A.align p 4;
  A.label p "nframes";
  A.word p 0

let image ?frames () =
  let p = A.create () in
  build ?frames p;
  A.assemble p
