(** Hash benchmark (Table II's [sha512] slot): a full SHA-256 compression
    function in RV32 assembly, run over an embedded message and checked
    against the host-side {!Crypto.Sha256} reference.

    Substitution note: the paper hashes with sha512; RV32 has no 64-bit
    registers, so the natural 32-bit sibling SHA-256 is used — the workload
    shape (pure integer compute, rotate/xor/add dominated) is the same.

    Exit code: 0 if the computed digest equals the reference, 1 otherwise. *)

val build : ?message_len:int -> Rv32_asm.Asm.t -> unit
(** [message_len] bytes of deterministic message content (default 2048). *)

val image : ?message_len:int -> unit -> Rv32_asm.Image.t
