(** A complete software AES-128 (key schedule + 10 rounds, table-based
    S-box) in RV32 assembly.

    Beyond being a stress test for the ISS, this firmware demonstrates the
    paper's declassification argument (Section IV-A) from the other side:
    data encrypted {e in software} keeps the key's security class — the
    ciphertext may not leave on a public interface, and with the
    memory-address clearance active even the S-box lookups indexed by key
    material are flagged (the paper's [Mem[secret]] discussion). Only the
    trusted hardware AES peripheral, which declassifies its output, can
    produce sendable ciphertext.

    Labels: ["key"] (16 bytes), ["pt"] (16 bytes), ["ct"] (16-byte result).

    Exit codes: with [self_check] — 0 if the computed ciphertext matches
    the host reference, 1 otherwise; with [send_on_can] the ciphertext is
    transmitted as two CAN frames before exiting 0. *)

val key_value : string
val pt_value : string

val build : ?self_check:bool -> ?send_on_can:bool -> Rv32_asm.Asm.t -> unit
(** Defaults: [self_check = true], [send_on_can = false]. *)

val image : ?self_check:bool -> ?send_on_can:bool -> unit -> Rv32_asm.Image.t

val expected_ciphertext : string
(** Host-side AES-128(key_value, pt_value). *)
