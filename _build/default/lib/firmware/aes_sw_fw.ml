module A = Rv32_asm.Asm
module R = Rv32.Reg

let key_value = "\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c"
let pt_value = "\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34"

let expected_ciphertext =
  Crypto.Aes128.encrypt_block (Crypto.Aes128.expand key_value) pt_value

(* Register conventions inside the crypto code:
   s1 = &sbox, s2 = &rk (round keys), s3 = &state. *)

let emit_byte_copy p ~count =
  (* copy count bytes from t0 to t1 (clobbers t2, t3); inline loop with a
     caller-supplied unique label prefix via the current address. *)
  let l = Printf.sprintf "copy%x" (A.here p ()) in
  A.li p R.t2 count;
  A.label p l;
  A.lbu p R.t3 R.t0 0;
  A.sb p R.t3 R.t1 0;
  A.addi p R.t0 R.t0 1;
  A.addi p R.t1 R.t1 1;
  A.addi p R.t2 R.t2 (-1);
  A.bnez_l p R.t2 l

(* Key schedule: rk[0..175] from key. *)
let emit_key_expand p =
  A.label p "key_expand";
  A.la p R.t0 "key";
  A.mv p R.t1 R.s2;
  emit_byte_copy p ~count:16;
  A.li p R.s4 4 (* word index i *);
  A.la p R.s5 "rcon";
  A.label p "ke.loop";
  A.slli p R.t0 R.s4 2;
  A.add p R.t1 R.s2 R.t0 (* dst = &rk[4i] *);
  A.addi p R.t2 R.t1 (-4);
  A.lbu p R.a0 R.t2 0;
  A.lbu p R.a1 R.t2 1;
  A.lbu p R.a2 R.t2 2;
  A.lbu p R.a3 R.t2 3;
  A.andi p R.t3 R.s4 3;
  A.bnez_l p R.t3 "ke.norot";
  (* RotWord *)
  A.mv p R.t4 R.a0;
  A.mv p R.a0 R.a1;
  A.mv p R.a1 R.a2;
  A.mv p R.a2 R.a3;
  A.mv p R.a3 R.t4;
  (* SubWord: four S-box lookups (note: indexed by key material). *)
  List.iter
    (fun r ->
      A.add p R.t5 R.s1 r;
      A.lbu p r R.t5 0)
    [ R.a0; R.a1; R.a2; R.a3 ];
  (* Rcon *)
  A.srli p R.t5 R.s4 2;
  A.addi p R.t5 R.t5 (-1);
  A.add p R.t5 R.s5 R.t5;
  A.lbu p R.t5 R.t5 0;
  A.xor p R.a0 R.a0 R.t5;
  A.label p "ke.norot";
  A.addi p R.t2 R.t1 (-16);
  List.iteri
    (fun j r ->
      A.lbu p R.t6 R.t2 j;
      A.xor p R.t6 R.t6 r;
      A.sb p R.t6 R.t1 j)
    [ R.a0; R.a1; R.a2; R.a3 ];
  A.addi p R.s4 R.s4 1;
  A.li p R.t0 44;
  A.blt_l p R.s4 R.t0 "ke.loop";
  A.ret p

(* AddRoundKey: a0 = round number. *)
let emit_ark p =
  A.label p "ark";
  A.slli p R.t0 R.a0 4;
  A.add p R.t0 R.s2 R.t0;
  A.mv p R.t1 R.s3;
  A.li p R.t2 16;
  A.label p "ark.l";
  A.lbu p R.t3 R.t0 0;
  A.lbu p R.t4 R.t1 0;
  A.xor p R.t4 R.t4 R.t3;
  A.sb p R.t4 R.t1 0;
  A.addi p R.t0 R.t0 1;
  A.addi p R.t1 R.t1 1;
  A.addi p R.t2 R.t2 (-1);
  A.bnez_l p R.t2 "ark.l";
  A.ret p

let emit_subbytes p =
  A.label p "subbytes";
  A.mv p R.t0 R.s3;
  A.li p R.t1 16;
  A.label p "sb.l";
  A.lbu p R.t2 R.t0 0;
  A.add p R.t3 R.s1 R.t2;
  A.lbu p R.t2 R.t3 0;
  A.sb p R.t2 R.t0 0;
  A.addi p R.t0 R.t0 1;
  A.addi p R.t1 R.t1 (-1);
  A.bnez_l p R.t1 "sb.l";
  A.ret p

(* ShiftRows, fully unrolled through a temporary buffer.
   State is column-major: byte (r, c) at 4c + r. *)
let emit_shiftrows p =
  A.label p "shiftrows";
  A.la p R.t0 "tmpst";
  for c = 0 to 3 do
    for r = 0 to 3 do
      let src = (4 * ((c + r) mod 4)) + r in
      let dst = (4 * c) + r in
      A.lbu p R.t1 R.s3 src;
      A.sb p R.t1 R.t0 dst
    done
  done;
  for i = 0 to 15 do
    A.lbu p R.t1 R.t0 i;
    A.sb p R.t1 R.s3 i
  done;
  A.ret p

(* xtime: dst <- xt(src); branchless, clobbers t5. *)
let emit_xt p dst src =
  A.slli p dst src 1;
  A.srli p R.t5 src 7;
  A.neg p R.t5 R.t5;
  A.andi p R.t5 R.t5 0x1b;
  A.xor p dst dst R.t5;
  A.andi p dst dst 0xff

(* MixColumns, fully unrolled (4 columns). *)
let emit_mixcols p =
  A.label p "mixcols";
  for c = 0 to 3 do
    let base = 4 * c in
    A.lbu p R.a0 R.s3 (base + 0);
    A.lbu p R.a1 R.s3 (base + 1);
    A.lbu p R.a2 R.s3 (base + 2);
    A.lbu p R.a3 R.s3 (base + 3);
    emit_xt p R.t0 R.a0;
    emit_xt p R.t1 R.a1;
    emit_xt p R.t2 R.a2;
    emit_xt p R.t3 R.a3;
    (* b0 = xt(a0) ^ xt(a1) ^ a1 ^ a2 ^ a3 *)
    A.xor p R.t4 R.t0 R.t1;
    A.xor p R.t4 R.t4 R.a1;
    A.xor p R.t4 R.t4 R.a2;
    A.xor p R.t4 R.t4 R.a3;
    A.sb p R.t4 R.s3 (base + 0);
    (* b1 = a0 ^ xt(a1) ^ xt(a2) ^ a2 ^ a3 *)
    A.xor p R.t4 R.a0 R.t1;
    A.xor p R.t4 R.t4 R.t2;
    A.xor p R.t4 R.t4 R.a2;
    A.xor p R.t4 R.t4 R.a3;
    A.sb p R.t4 R.s3 (base + 1);
    (* b2 = a0 ^ a1 ^ xt(a2) ^ xt(a3) ^ a3 *)
    A.xor p R.t4 R.a0 R.a1;
    A.xor p R.t4 R.t4 R.t2;
    A.xor p R.t4 R.t4 R.t3;
    A.xor p R.t4 R.t4 R.a3;
    A.sb p R.t4 R.s3 (base + 2);
    (* b3 = xt(a0) ^ a0 ^ a1 ^ a2 ^ xt(a3) *)
    A.xor p R.t4 R.t0 R.a0;
    A.xor p R.t4 R.t4 R.a1;
    A.xor p R.t4 R.t4 R.a2;
    A.xor p R.t4 R.t4 R.t3;
    A.sb p R.t4 R.s3 (base + 3)
  done;
  A.ret p

let emit_encrypt p =
  A.label p "encrypt";
  A.addi p R.sp R.sp (-16);
  A.sw p R.ra R.sp 12;
  A.sw p R.s6 R.sp 8;
  (* state <- pt *)
  A.la p R.t0 "pt";
  A.mv p R.t1 R.s3;
  emit_byte_copy p ~count:16;
  A.li p R.a0 0;
  A.call p "ark";
  A.li p R.s6 1;
  A.label p "enc.round";
  A.call p "subbytes";
  A.call p "shiftrows";
  A.call p "mixcols";
  A.mv p R.a0 R.s6;
  A.call p "ark";
  A.addi p R.s6 R.s6 1;
  A.li p R.t0 10;
  A.blt_l p R.s6 R.t0 "enc.round";
  A.call p "subbytes";
  A.call p "shiftrows";
  A.li p R.a0 10;
  A.call p "ark";
  (* ct <- state *)
  A.mv p R.t0 R.s3;
  A.la p R.t1 "ct";
  emit_byte_copy p ~count:16;
  A.lw p R.ra R.sp 12;
  A.lw p R.s6 R.sp 8;
  A.addi p R.sp R.sp 16;
  A.ret p

let build ?(self_check = true) ?(send_on_can = false) p =
  Rt.entry p ();
  A.la p R.s1 "sbox";
  A.la p R.s2 "rk";
  A.la p R.s3 "state";
  A.call p "key_expand";
  A.call p "encrypt";
  if send_on_can then begin
    (* Ship the software ciphertext as two CAN frames — under a
       confidentiality policy this is exactly the flow declassification
       exists to permit, and software AES does not declassify. *)
    A.la p R.t0 "ct";
    A.li p R.t1 Vp.Soc.can_base;
    for frame = 0 to 1 do
      for i = 0 to 7 do
        A.lbu p R.t2 R.t0 ((8 * frame) + i);
        A.sb p R.t2 R.t1 i
      done;
      A.li p R.t2 1;
      A.sb p R.t2 R.t1 8
    done
  end;
  if self_check then begin
    A.la p R.t0 "ct";
    A.la p R.t1 "expected";
    A.li p R.t2 16;
    A.label p "chk";
    A.lbu p R.t3 R.t0 0;
    A.lbu p R.t4 R.t1 0;
    A.bne_l p R.t3 R.t4 "chk.fail";
    A.addi p R.t0 R.t0 1;
    A.addi p R.t1 R.t1 1;
    A.addi p R.t2 R.t2 (-1);
    A.bnez_l p R.t2 "chk";
    Rt.exit_ p ();
    A.label p "chk.fail";
    Rt.exit_ p ~code:1 ()
  end
  else Rt.exit_ p ();
  emit_key_expand p;
  emit_ark p;
  emit_subbytes p;
  emit_shiftrows p;
  emit_mixcols p;
  emit_encrypt p;
  (* --- data ----------------------------------------------------------- *)
  A.align p 4;
  A.label p "sbox";
  Array.iter (fun v -> A.byte p v) Crypto.Aes128.sbox;
  A.label p "rcon";
  Array.iter (fun v -> A.byte p v) Crypto.Aes128.rcon;
  A.align p 4;
  A.label p "key";
  A.ascii p key_value;
  A.label p "pt";
  A.ascii p pt_value;
  A.label p "expected";
  A.ascii p expected_ciphertext;
  A.align p 4;
  A.label p "rk";
  A.space p 176;
  A.label p "state";
  A.space p 16;
  A.label p "tmpst";
  A.space p 16;
  A.label p "ct";
  A.space p 16

let image ?self_check ?send_on_can () =
  let p = A.create () in
  build ?self_check ?send_on_can p;
  A.assemble p
