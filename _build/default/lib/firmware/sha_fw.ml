module A = Rv32_asm.Asm
module R = Rv32.Reg

let k256 =
  [| 0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5; 0x3956c25b; 0x59f111f1;
     0x923f82a4; 0xab1c5ed5; 0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
     0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174; 0xe49b69c1; 0xefbe4786;
     0x0fc19dc6; 0x240ca1cc; 0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
     0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7; 0xc6e00bf3; 0xd5a79147;
     0x06ca6351; 0x14292967; 0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
     0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85; 0xa2bfe8a1; 0xa81a664b;
     0xc24b8b70; 0xc76c51a3; 0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
     0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5; 0x391c0cb3; 0x4ed8aa4a;
     0x5b9cca4f; 0x682e6ff3; 0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
     0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2 |]

let iv =
  [| 0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a; 0x510e527f; 0x9b05688c;
     0x1f83d9ab; 0x5be0cd19 |]

(* Deterministic message content. *)
let message len = String.init len (fun i -> Char.chr ((i * 7 + (i lsr 5)) land 0xff))

(* Host-side SHA-256 padding, so the firmware only runs the compression
   loop (the dominant cost). *)
let padded msg =
  let len = String.length msg in
  let total = ((len + 9 + 63) / 64) * 64 in
  let b = Bytes.make total '\000' in
  Bytes.blit_string msg 0 b 0 len;
  Bytes.set b len '\x80';
  let bits = len * 8 in
  for i = 0 to 7 do
    Bytes.set b (total - 1 - i) (Char.chr ((bits lsr (8 * i)) land 0xff))
  done;
  Bytes.to_string b

(* rotr d, x, n (clobbers t6). *)
let rotr p d x n =
  A.srli p d x n;
  A.slli p R.t6 x (32 - n);
  A.or_ p d d R.t6

let a_ = R.s1
let b_ = R.s2
let c_ = R.s3
let d_ = R.s4
let e_ = R.s5
let f_ = R.s6
let g_ = R.s7
let h_ = R.s8

let build ?(message_len = 2048) p =
  let msg = message message_len in
  let data = padded msg in
  let blocks = String.length data / 64 in
  let digest = Crypto.Sha256.digest msg in
  Rt.entry p ();
  A.la p R.s9 "msg" (* block pointer *);
  A.li p R.s10 blocks;
  A.la p R.a5 "wbuf";
  A.la p R.a6 "k256";
  A.label p "block";
  (* Load working variables from the running hash state. *)
  A.la p R.t0 "hstate";
  A.lw p a_ R.t0 0;
  A.lw p b_ R.t0 4;
  A.lw p c_ R.t0 8;
  A.lw p d_ R.t0 12;
  A.lw p e_ R.t0 16;
  A.lw p f_ R.t0 20;
  A.lw p g_ R.t0 24;
  A.lw p h_ R.t0 28;
  (* W[0..15]: big-endian byte loads. *)
  A.li p R.s11 0;
  A.label p "sched0";
  A.slli p R.t0 R.s11 2;
  A.add p R.t1 R.s9 R.t0 (* &msg[4t] *);
  A.lbu p R.t2 R.t1 0;
  A.slli p R.t3 R.t2 24;
  A.lbu p R.t2 R.t1 1;
  A.slli p R.t2 R.t2 16;
  A.or_ p R.t3 R.t3 R.t2;
  A.lbu p R.t2 R.t1 2;
  A.slli p R.t2 R.t2 8;
  A.or_ p R.t3 R.t3 R.t2;
  A.lbu p R.t2 R.t1 3;
  A.or_ p R.t3 R.t3 R.t2;
  A.add p R.t1 R.a5 R.t0;
  A.sw p R.t3 R.t1 0;
  A.addi p R.s11 R.s11 1;
  A.li p R.t0 16;
  A.blt_l p R.s11 R.t0 "sched0";
  (* W[16..63]. *)
  A.label p "sched1";
  A.slli p R.t0 R.s11 2;
  A.add p R.t1 R.a5 R.t0 (* &W[t] *);
  A.lw p R.t2 R.t1 (-60) (* W[t-15] *);
  rotr p R.t3 R.t2 7;
  rotr p R.t4 R.t2 18;
  A.xor p R.t3 R.t3 R.t4;
  A.srli p R.t4 R.t2 3;
  A.xor p R.t3 R.t3 R.t4 (* s0 *);
  A.lw p R.t2 R.t1 (-8) (* W[t-2] *);
  rotr p R.t4 R.t2 17;
  rotr p R.t5 R.t2 19;
  A.xor p R.t4 R.t4 R.t5;
  A.srli p R.t5 R.t2 10;
  A.xor p R.t4 R.t4 R.t5 (* s1 *);
  A.lw p R.t2 R.t1 (-64) (* W[t-16] *);
  A.add p R.t3 R.t3 R.t2;
  A.lw p R.t2 R.t1 (-28) (* W[t-7] *);
  A.add p R.t3 R.t3 R.t2;
  A.add p R.t3 R.t3 R.t4;
  A.sw p R.t3 R.t1 0;
  A.addi p R.s11 R.s11 1;
  A.li p R.t0 64;
  A.blt_l p R.s11 R.t0 "sched1";
  (* 64 rounds. *)
  A.li p R.s11 0;
  A.label p "round";
  (* S1(e) -> t0 *)
  rotr p R.t0 e_ 6;
  rotr p R.t1 e_ 11;
  A.xor p R.t0 R.t0 R.t1;
  rotr p R.t1 e_ 25;
  A.xor p R.t0 R.t0 R.t1;
  (* Ch(e,f,g) -> t1 *)
  A.and_ p R.t1 e_ f_;
  A.not_ p R.t2 e_;
  A.and_ p R.t2 R.t2 g_;
  A.xor p R.t1 R.t1 R.t2;
  (* T1 = h + S1 + Ch + K[t] + W[t] -> t0 *)
  A.add p R.t0 R.t0 R.t1;
  A.add p R.t0 R.t0 h_;
  A.slli p R.t3 R.s11 2;
  A.add p R.t4 R.a6 R.t3;
  A.lw p R.t5 R.t4 0;
  A.add p R.t0 R.t0 R.t5;
  A.add p R.t4 R.a5 R.t3;
  A.lw p R.t5 R.t4 0;
  A.add p R.t0 R.t0 R.t5;
  (* S0(a) -> t1 *)
  rotr p R.t1 a_ 2;
  rotr p R.t2 a_ 13;
  A.xor p R.t1 R.t1 R.t2;
  rotr p R.t2 a_ 22;
  A.xor p R.t1 R.t1 R.t2;
  (* Maj(a,b,c) -> t2 *)
  A.and_ p R.t2 a_ b_;
  A.and_ p R.t3 a_ c_;
  A.xor p R.t2 R.t2 R.t3;
  A.and_ p R.t3 b_ c_;
  A.xor p R.t2 R.t2 R.t3;
  A.add p R.t1 R.t1 R.t2 (* T2 *);
  (* Rotate the working variables. *)
  A.mv p h_ g_;
  A.mv p g_ f_;
  A.mv p f_ e_;
  A.add p e_ d_ R.t0;
  A.mv p d_ c_;
  A.mv p c_ b_;
  A.mv p b_ a_;
  A.add p a_ R.t0 R.t1;
  A.addi p R.s11 R.s11 1;
  A.li p R.t0 64;
  A.blt_l p R.s11 R.t0 "round";
  (* Fold into the hash state. *)
  A.la p R.t0 "hstate";
  let fold reg off =
    A.lw p R.t1 R.t0 off;
    A.add p R.t1 R.t1 reg;
    A.sw p R.t1 R.t0 off
  in
  fold a_ 0;
  fold b_ 4;
  fold c_ 8;
  fold d_ 12;
  fold e_ 16;
  fold f_ 20;
  fold g_ 24;
  fold h_ 28;
  A.addi p R.s9 R.s9 64;
  A.addi p R.s10 R.s10 (-1);
  A.bnez_l p R.s10 "block";
  (* Compare against the reference digest. *)
  A.la p R.t0 "hstate";
  A.la p R.t1 "refdigest";
  A.li p R.t2 8;
  A.label p "cmp";
  A.lw p R.t3 R.t0 0;
  A.lw p R.t4 R.t1 0;
  A.bne_l p R.t3 R.t4 "fail";
  A.addi p R.t0 R.t0 4;
  A.addi p R.t1 R.t1 4;
  A.addi p R.t2 R.t2 (-1);
  A.bnez_l p R.t2 "cmp";
  Rt.exit_ p ();
  A.label p "fail";
  Rt.exit_ p ~code:1 ();
  (* Data. *)
  A.align p 4;
  A.label p "hstate";
  Array.iter (fun v -> A.word p v) iv;
  A.label p "refdigest";
  for i = 0 to 7 do
    let w =
      (Char.code digest.[4 * i] lsl 24)
      lor (Char.code digest.[(4 * i) + 1] lsl 16)
      lor (Char.code digest.[(4 * i) + 2] lsl 8)
      lor Char.code digest.[(4 * i) + 3]
    in
    A.word p w
  done;
  A.label p "k256";
  Array.iter (fun v -> A.word p v) k256;
  A.label p "wbuf";
  A.space p 256;
  A.label p "msg";
  A.ascii p data

let image ?message_len () =
  let p = A.create () in
  build ?message_len p;
  A.assemble p
