module A = Rv32_asm.Asm
module R = Rv32.Reg

let rec host_count c n count =
  if c >= n then count
  else begin
    let is_prime = ref true in
    let d = ref 2 in
    while !d * !d <= c do
      if c mod !d = 0 then is_prime := false;
      incr d
    done;
    host_count (c + 1) n (if !is_prime then count + 1 else count)
  end

let expected ~n = host_count 2 n 0

let build ?(n = 2000) p =
  Rt.entry p ();
  A.li p R.a0 0 (* count *);
  A.li p R.s1 2 (* candidate *);
  A.li p R.s2 n;
  A.label p "cand";
  A.bge_l p R.s1 R.s2 "done";
  (* trial division by d = 2 .. while d*d <= c *)
  A.li p R.s3 2;
  A.label p "trial";
  A.mul p R.t0 R.s3 R.s3;
  A.blt_l p R.s1 R.t0 "prime" (* d*d > c: prime *);
  A.rem p R.t1 R.s1 R.s3;
  A.beqz_l p R.t1 "composite";
  A.addi p R.s3 R.s3 1;
  A.j p "trial";
  A.label p "prime";
  A.addi p R.a0 R.a0 1;
  A.label p "composite";
  A.addi p R.s1 R.s1 1;
  A.j p "cand";
  A.label p "done";
  (* Compare with the host-side expected count; exit 0 on success so the
     benchmark harness can use the exit code as a health check, and return
     the count itself in the "prime_count" word. *)
  A.la p R.t0 "prime_count";
  A.sw p R.a0 R.t0 0;
  A.li p R.t1 (expected ~n);
  A.bne_l p R.a0 R.t1 "mismatch";
  Rt.exit_ p ();
  A.label p "mismatch";
  Rt.exit_ p ~code:1 ();
  A.align p 4;
  A.label p "prime_count";
  A.word p 0

let image ?n () =
  let p = A.create () in
  build ?n p;
  A.assemble p
