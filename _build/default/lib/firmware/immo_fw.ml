module A = Rv32_asm.Asm
module R = Rv32.Reg

type variant =
  | Normal of { fixed_dump : bool }
  | Leak_direct
  | Leak_indirect
  | Branch_on_pin
  | Overwrite_pin_external
  | Entropy_attack
  | Entropy_then_serve

let pin_value = "\x4f\xc2\x1a\x99\x03\xe7\x5d\x30\xaa\x18\x64\xbe\x07\x71\xd5\x2c"

(* --- firmware ---------------------------------------------------------- *)

(* Dump the window [dump_start, dump_end) to the UART; the fixed version
   skips the PIN region. *)
let emit_debug_dump p ~fixed =
  A.label p "debug_dump";
  A.la p R.t0 "dump_start";
  A.la p R.t1 "dump_end";
  A.li p R.t2 Vp.Soc.uart_base;
  A.la p R.t3 "pin";
  A.addi p R.t4 R.t3 16;
  A.label p "dump.loop";
  A.bgeu_l p R.t0 R.t1 "dump.done";
  (if fixed then begin
     (* Fixed firmware: exclude the key bytes from the dump. *)
     A.bltu_l p R.t0 R.t3 "dump.emit";
     A.bgeu_l p R.t0 R.t4 "dump.emit";
     A.addi p R.t0 R.t0 1;
     A.j p "dump.loop"
   end);
  A.label p "dump.emit";
  A.lbu p R.t5 R.t0 0;
  A.sb p R.t5 R.t2 0;
  A.addi p R.t0 R.t0 1;
  A.j p "dump.loop";
  A.label p "dump.done";
  A.ret p

(* Serve one challenge: CAN rx -> AES -> CAN tx (two frames). *)
let emit_handle_challenge p =
  A.label p "handle_challenge";
  A.li p R.t0 Vp.Soc.can_base;
  A.la p R.t1 "chall";
  for i = 0 to 7 do
    A.lbu p R.t2 R.t0 (0x10 + i);
    A.sb p R.t2 R.t1 i
  done;
  A.li p R.t2 1;
  A.sb p R.t2 R.t0 0x18 (* pop the frame *);
  (* Load the PIN into the AES key registers. *)
  A.li p R.t0 Vp.Soc.aes_base;
  A.la p R.t1 "pin";
  for i = 0 to 15 do
    A.lbu p R.t2 R.t1 i;
    A.sb p R.t2 R.t0 i
  done;
  (* Plaintext: challenge || zero pad. *)
  A.la p R.t1 "chall";
  for i = 0 to 7 do
    A.lbu p R.t2 R.t1 i;
    A.sb p R.t2 R.t0 (0x10 + i)
  done;
  for i = 8 to 15 do
    A.sb p R.zero R.t0 (0x10 + i)
  done;
  (* Start and wait. *)
  A.li p R.t2 1;
  A.sb p R.t2 R.t0 0x30;
  A.label p "aes.poll";
  A.lbu p R.t2 R.t0 0x30;
  A.bnez_l p R.t2 "aes.poll";
  (* Send the 16 ciphertext bytes as two CAN frames. *)
  A.li p R.t1 Vp.Soc.can_base;
  for frame = 0 to 1 do
    for i = 0 to 7 do
      A.lbu p R.t2 R.t0 (0x20 + (8 * frame) + i);
      A.sb p R.t2 R.t1 i
    done;
    A.li p R.t2 1;
    A.sb p R.t2 R.t1 8
  done;
  A.ret p

let build ?(variant = Normal { fixed_dump = true }) ?(challenges = 1) p =
  Rt.entry p ();
  (match variant with
  | Normal { fixed_dump } ->
      A.li p R.s1 challenges;
      A.label p "main";
      (* Debug console poll. *)
      A.li p R.t0 Vp.Soc.uart_base;
      A.lbu p R.t1 R.t0 8;
      A.andi p R.t1 R.t1 1;
      A.beqz_l p R.t1 "main.can";
      A.lbu p R.t1 R.t0 4 (* read the command byte *);
      A.li p R.t2 (Char.code 'D');
      A.bne_l p R.t1 R.t2 "main.can";
      A.call p "debug_dump";
      A.label p "main.can";
      A.li p R.t0 Vp.Soc.can_base;
      A.lbu p R.t1 R.t0 0x18;
      A.beqz_l p R.t1 "main";
      A.call p "handle_challenge";
      A.addi p R.s1 R.s1 (-1);
      A.bnez_l p R.s1 "main";
      Rt.exit_ p ();
      emit_debug_dump p ~fixed:fixed_dump;
      emit_handle_challenge p;
      Rt.emit_memcpy p
  | Leak_direct ->
      (* Attack scenario 1a: PIN straight to the UART. *)
      A.la p R.t0 "pin";
      A.li p R.t1 Vp.Soc.uart_base;
      A.lbu p R.t2 R.t0 0;
      A.sb p R.t2 R.t1 0;
      Rt.exit_ p ()
  | Leak_indirect ->
      (* Attack scenario 1b: PIN through an intermediate buffer. *)
      A.la p R.a0 "buf";
      A.la p R.a1 "pin";
      A.li p R.a2 16;
      A.call p "memcpy";
      A.la p R.t0 "buf";
      A.li p R.t1 Vp.Soc.uart_base;
      A.lbu p R.t2 R.t0 3;
      A.sb p R.t2 R.t1 0;
      Rt.exit_ p ()
  | Branch_on_pin ->
      (* Attack scenario 2: control flow depending on the PIN. *)
      A.la p R.t0 "pin";
      A.lbu p R.t1 R.t0 0;
      A.andi p R.t1 R.t1 1;
      A.beqz_l p R.t1 "bit0";
      A.li p R.t2 Vp.Soc.uart_base;
      A.li p R.t3 (Char.code '1');
      A.sb p R.t3 R.t2 0;
      Rt.exit_ p ();
      A.label p "bit0";
      A.li p R.t2 Vp.Soc.uart_base;
      A.li p R.t3 (Char.code '0');
      A.sb p R.t3 R.t2 0;
      Rt.exit_ p ()
  | Overwrite_pin_external ->
      (* Attack scenario 3: external CAN data over the PIN. *)
      A.li p R.t0 Vp.Soc.can_base;
      A.lbu p R.t1 R.t0 0x10;
      A.la p R.t2 "pin";
      A.sb p R.t1 R.t2 0;
      Rt.exit_ p ()
  | Entropy_attack ->
      (* The brute-force enabler: PIN[1..15] <- PIN[0] with trusted data. *)
      A.la p R.t0 "pin";
      A.lbu p R.t1 R.t0 0;
      for i = 1 to 15 do
        A.sb p R.t1 R.t0 i
      done;
      Rt.exit_ p ()
  | Entropy_then_serve ->
      (* Degrade the key, then answer challenges like the normal
         firmware. *)
      A.la p R.t0 "pin";
      A.lbu p R.t1 R.t0 0;
      for i = 1 to 15 do
        A.sb p R.t1 R.t0 i
      done;
      A.li p R.s1 challenges;
      A.label p "serve";
      A.li p R.t0 Vp.Soc.can_base;
      A.lbu p R.t1 R.t0 0x18;
      A.beqz_l p R.t1 "serve";
      A.call p "handle_challenge";
      A.addi p R.s1 R.s1 (-1);
      A.bnez_l p R.s1 "serve";
      Rt.exit_ p ();
      emit_handle_challenge p);
  (match variant with
  | Leak_indirect -> Rt.emit_memcpy p
  | Normal _ | Leak_direct | Branch_on_pin | Overwrite_pin_external
  | Entropy_attack | Entropy_then_serve ->
      ());
  (* --- data ----------------------------------------------------------- *)
  A.align p 4;
  A.label p "dump_start";
  A.asciz p "IMMO ECU v1.0";
  A.align p 4;
  A.label p "pin";
  A.ascii p pin_value;
  A.label p "chall";
  A.space p 8;
  A.label p "buf";
  A.space p 16;
  A.label p "dump_end";
  A.space p 4

let image ?variant ?challenges () =
  let p = A.create () in
  build ?variant ?challenges p;
  A.assemble p

(* --- policies ----------------------------------------------------------- *)

let image_region img tag =
  Dift.Policy.region ~name:"program" ~lo:img.Rv32_asm.Image.org
    ~hi:(Rv32_asm.Image.limit img - 1)
    ~tag

let base_policy img =
  let lat = Dift.Lattice.ifp3 () in
  let t n = Dift.Lattice.tag_of_name lat n in
  let lc_li = t "LC,LI" and lc_hi = t "LC,HI" and hc_hi = t "HC,HI" in
  let pin_lo = Rv32_asm.Image.symbol img "pin" in
  Dift.Policy.make ~lattice:lat ~default_tag:lc_li
    ~classification:
      [
        (* The PIN is the secret: most specific region first. *)
        Dift.Policy.region ~name:"pin" ~lo:pin_lo ~hi:(pin_lo + 15) ~tag:hc_hi;
        image_region img lc_hi;
      ]
    ~output_clearance:[ ("uart", lc_li); ("can", lc_li) ]
    ~exec_fetch:lc_hi ~exec_branch:lc_li ~exec_mem_addr:lc_li
    ~store_clearance:
      [ Dift.Policy.region ~name:"pin" ~lo:pin_lo ~hi:(pin_lo + 15) ~tag:hc_hi ]
    ()

let per_byte_policy img =
  let lat = Dift.Lattice.per_byte_key ~n:16 in
  let t n = Dift.Lattice.tag_of_name lat n in
  let lc_li = t "LC,LI" and lc_hi = t "LC,HI" in
  let pin_lo = Rv32_asm.Image.symbol img "pin" in
  let byte_region i =
    Dift.Policy.region
      ~name:(Printf.sprintf "pin[%d]" i)
      ~lo:(pin_lo + i) ~hi:(pin_lo + i)
      ~tag:(t (Printf.sprintf "KEY%d" i))
  in
  let per_byte = List.init 16 byte_region in
  Dift.Policy.make ~lattice:lat ~default_tag:lc_li
    ~classification:(per_byte @ [ image_region img lc_hi ])
    ~output_clearance:[ ("uart", lc_li); ("can", lc_li) ]
    ~exec_fetch:lc_hi ~exec_branch:lc_li ~exec_mem_addr:lc_li
    ~store_clearance:per_byte ()

let aes_args policy =
  let lat = policy.Dift.Policy.lattice in
  let t n = Dift.Lattice.tag_of_name lat n in
  if Dift.Lattice.mem_name lat "HC,HI" then (t "LC,LI", t "HC,HI")
  else (t "LC,LI", t "HC,LI")

(* --- host-side engine model --------------------------------------------- *)

module Engine = struct
  type t = { mutable frames : string list (* newest first *); challenge : string }

  let expected ~challenge =
    let key = Crypto.Aes128.expand pin_value in
    Crypto.Aes128.encrypt_block key (challenge ^ String.make 8 '\000')

  let attach soc ~challenge =
    if String.length challenge <> 8 then
      invalid_arg "Engine.attach: challenge must be 8 bytes";
    let t = { frames = []; challenge } in
    Vp.Can.set_tx_callback soc.Vp.Soc.can (fun frame ->
        t.frames <- frame :: t.frames);
    Vp.Can.push_rx_frame soc.Vp.Soc.can challenge;
    t

  let response t =
    match List.rev t.frames with
    | a :: b :: _ -> Some (a ^ b)
    | _ -> None

  let response_valid t =
    match response t with
    | Some r -> String.equal r (expected ~challenge:t.challenge)
    | None -> false

  let brute_force_uniform ~challenge ~response =
    let pt = challenge ^ String.make 8 '\000' in
    let rec try_byte b =
      if b > 255 then None
      else
        let key = String.make 16 (Char.chr b) in
        if
          String.equal
            (Crypto.Aes128.encrypt_block (Crypto.Aes128.expand key) pt)
            response
        then Some key
        else try_byte (b + 1)
    in
    try_byte 0
end
