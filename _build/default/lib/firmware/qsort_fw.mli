(** Quicksort benchmark (Table II's [qsort]): fills an array with
    pseudo-random words, sorts it with recursive quicksort, and verifies the
    result — repeated for several rounds.

    Exit code: 0 if every round ends sorted, 1 otherwise. *)

val build : ?n:int -> ?rounds:int -> Rv32_asm.Asm.t -> unit
(** [n] array elements (default 512), [rounds] sort rounds (default 4). *)

val image : ?n:int -> ?rounds:int -> unit -> Rv32_asm.Image.t
