(** Dhrystone-style synthetic benchmark (Table II's [dhrystone]): a loop of
    record copies, string comparisons, integer arithmetic and nested
    function calls modelled on the classic Dhrystone 2.1 mix.

    Exit code: 0 if the final checksum matches the expected value
    (computed by {!expected_checksum}), 1 otherwise. *)

val build : ?iterations:int -> Rv32_asm.Asm.t -> unit
(** [iterations] main-loop count (default 2000). *)

val image : ?iterations:int -> unit -> Rv32_asm.Image.t

val expected_checksum : iterations:int -> int
(** Host-side model of the firmware's checksum. *)
