(** Prime-number generator benchmark (Table II's [primes]): counts primes
    below [n] by trial division (exercising the M extension's div/rem).

    Exit code: 0 if the count matches the host-side reference, 1
    otherwise; the count itself lands in the ["prime_count"] data word. *)

val build : ?n:int -> Rv32_asm.Asm.t -> unit
(** [n] exclusive upper bound (default 2000). *)

val image : ?n:int -> unit -> Rv32_asm.Image.t

val expected : n:int -> int
(** Host-side reference count, for checking the firmware's result. *)
