(** Simple-sensor application (Table II's [simple-sensor]): interrupt
    driven, copies each freshly generated 64-byte sensor frame to the UART,
    as in the paper's description ("copies randomly generated data from a
    sensor to a UART peripheral").

    Exit code: 0 after [frames] frames have been forwarded. *)

val build : ?frames:int -> Rv32_asm.Asm.t -> unit
(** [frames] to forward before exiting (default 8). *)

val image : ?frames:int -> unit -> Rv32_asm.Image.t
