(** Car-engine-immobilizer firmware and security policies (the case study
    of Section VI-A).

    The ECU holds a secret 16-byte PIN and answers challenge-response
    authentication over the CAN bus: the engine sends an 8-byte random
    challenge, the immobilizer replies with AES-128(PIN, challenge || 0^8)
    as two CAN frames. A UART debug command ['D'] dumps a memory window.

    Variants reproduce the paper's findings:
    - [Normal ~fixed_dump:false]: the shipped firmware, whose debug dump
      includes the PIN region — the vulnerability the security policy
      catches;
    - [Normal ~fixed_dump:true]: the fixed firmware that skips the PIN;
    - the [Leak_*] / [Branch_on_pin] / [Overwrite_pin_external] variants
      are the paper's injected attack scenarios 1-3;
    - [Entropy_attack] overwrites PIN bytes 1..15 with byte 0 using trusted
      data — undetected under {!base_policy} (as the paper observes) and
      detected under {!per_byte_policy}. *)

type variant =
  | Normal of { fixed_dump : bool }
  | Leak_direct  (** Write PIN bytes straight to the UART. *)
  | Leak_indirect  (** Copy PIN through an intermediate buffer, then out. *)
  | Branch_on_pin  (** Branch on a PIN bit, then output a constant. *)
  | Overwrite_pin_external  (** Store a CAN byte over PIN[0]. *)
  | Entropy_attack  (** Copy PIN[0] over PIN[1..15]. *)
  | Entropy_then_serve
      (** The full exploit: degrade the PIN, then serve challenges as
          normal — the host can now brute-force the key from one
          challenge/response pair (see {!Engine.brute_force_uniform}). *)

val pin_value : string
(** The secret 16-byte PIN embedded in the image (label ["pin"]). *)

val build : ?variant:variant -> ?challenges:int -> Rv32_asm.Asm.t -> unit
(** [challenges] responses to serve before exiting (default 1). *)

val image : ?variant:variant -> ?challenges:int -> unit -> Rv32_asm.Image.t

(** {1 Policies} *)

val base_policy : Rv32_asm.Image.t -> Dift.Policy.t
(** IFP-3 policy: PIN classified (HC,HI); program (LC,HI); UART and CAN
    cleared (LC,LI); branch clearance (LC,LI); fetch clearance (LC,HI);
    PIN region protected with (HC,HI) store clearance. *)

val per_byte_policy : Rv32_asm.Image.t -> Dift.Policy.t
(** The refined policy: one security class per PIN byte
    ({!Dift.Lattice.per_byte_key}), defeating the entropy-reduction
    attack. *)

val aes_args : Dift.Policy.t -> Dift.Lattice.tag * Dift.Lattice.tag
(** [(out_tag, key_clearance)] for {!Vp.Soc.create}'s AES parameters under
    the given immobilizer policy. *)

(** {1 Host-side engine-ECU model} *)

module Engine : sig
  type t

  val attach : Vp.Soc.t -> challenge:string -> t
  (** Install the engine model on the SoC's CAN: queues the 8-byte
      challenge for the immobilizer and collects its response frames. *)

  val response : t -> string option
  (** The 16-byte response once both frames arrived. *)

  val response_valid : t -> bool
  (** Does the response equal AES-128(PIN, challenge || 0^8)? *)

  val expected : challenge:string -> string
  (** Host-side reference response. *)

  val brute_force_uniform : challenge:string -> response:string -> string option
  (** Attacker model after the entropy attack: the PIN is 16 copies of one
      byte, so 256 trial encryptions of [challenge || 0^8] recover it from
      a single sniffed response. Returns the recovered key. *)
end
