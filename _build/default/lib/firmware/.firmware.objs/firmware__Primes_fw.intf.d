lib/firmware/primes_fw.mli: Rv32_asm
