lib/firmware/aes_sw_fw.ml: Array Crypto List Printf Rt Rv32 Rv32_asm Vp
