lib/firmware/extra_fw.ml: Array Char List Printf Rt Rv32 Rv32_asm String
