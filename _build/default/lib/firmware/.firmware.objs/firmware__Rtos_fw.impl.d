lib/firmware/rtos_fw.ml: List Rt Rv32 Rv32_asm Vp
