lib/firmware/immo_fw.ml: Char Crypto Dift List Printf Rt Rv32 Rv32_asm String Vp
