lib/firmware/rt.ml: Rv32 Rv32_asm Vp
