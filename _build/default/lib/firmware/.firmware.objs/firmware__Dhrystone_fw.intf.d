lib/firmware/dhrystone_fw.mli: Rv32_asm
