lib/firmware/qsort_fw.mli: Rv32_asm
