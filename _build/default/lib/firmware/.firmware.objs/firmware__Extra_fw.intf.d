lib/firmware/extra_fw.mli: Rv32_asm
