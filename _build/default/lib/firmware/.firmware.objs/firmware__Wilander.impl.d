lib/firmware/wilander.ml: Char Dift List Rt Rv32 Rv32_asm String Vp
