lib/firmware/wilander.mli: Dift Rv32_asm
