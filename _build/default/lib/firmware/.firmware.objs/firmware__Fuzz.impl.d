lib/firmware/fuzz.ml: Char Dift Format List Option Printf Rt Rv32 Rv32_asm String Vp
