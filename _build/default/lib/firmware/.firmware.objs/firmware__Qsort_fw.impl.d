lib/firmware/qsort_fw.ml: Rt Rv32 Rv32_asm
