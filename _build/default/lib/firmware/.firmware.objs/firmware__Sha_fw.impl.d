lib/firmware/sha_fw.ml: Array Bytes Char Crypto Rt Rv32 Rv32_asm String
