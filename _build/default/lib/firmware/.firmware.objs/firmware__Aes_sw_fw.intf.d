lib/firmware/aes_sw_fw.mli: Rv32_asm
