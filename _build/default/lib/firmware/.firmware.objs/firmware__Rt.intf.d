lib/firmware/rt.mli: Rv32_asm
