lib/firmware/rtos_fw.mli: Rv32_asm
