lib/firmware/primes_fw.ml: Rt Rv32 Rv32_asm
