lib/firmware/immo_fw.mli: Dift Rv32_asm Vp
