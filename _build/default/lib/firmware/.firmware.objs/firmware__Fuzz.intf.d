lib/firmware/fuzz.mli: Format
