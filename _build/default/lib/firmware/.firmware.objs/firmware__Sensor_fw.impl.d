lib/firmware/sensor_fw.ml: Rt Rv32 Rv32_asm Vp
