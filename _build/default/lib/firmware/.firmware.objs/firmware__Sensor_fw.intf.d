lib/firmware/sensor_fw.mli: Rv32_asm
