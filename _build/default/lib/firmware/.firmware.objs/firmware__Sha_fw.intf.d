lib/firmware/sha_fw.mli: Rv32_asm
