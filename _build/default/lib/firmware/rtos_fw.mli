(** Mini-RTOS benchmark (Table II's [freertos-tasks] analogue): two
    preemptively scheduled tasks with private stacks, context-switched by
    the machine-timer interrupt in round-robin, like the paper's FreeRTOS
    application "scheduling two interleaved tasks".

    Task 0 runs a compute loop bumping the ["cnt0"] word; task 1 bumps
    ["cnt1"]. After [switches] context switches the scheduler exits with
    code 0. Both counters being non-zero (checked by reading RAM from the
    test) proves genuine interleaving. *)

val build : ?switches:int -> ?slice_ticks:int -> Rv32_asm.Asm.t -> unit
(** [switches] context switches before exit (default 16); [slice_ticks] the
    time slice in CLINT ticks (default 20). *)

val image : ?switches:int -> ?slice_ticks:int -> unit -> Rv32_asm.Image.t
