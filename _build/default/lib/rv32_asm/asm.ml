exception Unknown_label of string
exception Duplicate_label of string

type item =
  | Fixed of Rv32.Insn.t
  | Fixup of int * (addr:int -> resolve:(string -> int) -> Rv32.Insn.t list)
      (* byte size, late-bound emission *)
  | Lab of string
  | Data of string
  | Word_label of string
  | Align_to of int
  | Space_of of int

type t = {
  org : int;
  mutable items : item list;  (* newest first *)
  mutable addr : int;  (* current emission address *)
  mutable insns : int;  (* opcode count, for Table II's "LoC ASM" *)
}

let create ?(org = 0x8000_0000) () = { org; items = []; addr = org; insns = 0 }
let here p () = p.addr

let push p item =
  p.items <- item :: p.items;
  match item with
  | Fixed _ -> p.addr <- p.addr + 4
  | Fixup (size, _) ->
      p.addr <- p.addr + size;
      ()
  | Lab _ -> ()
  | Data s -> p.addr <- p.addr + String.length s
  | Word_label _ -> p.addr <- p.addr + 4
  | Align_to n ->
      let r = p.addr mod n in
      if r <> 0 then p.addr <- p.addr + (n - r)
  | Space_of n -> p.addr <- p.addr + n

let label p name = push p (Lab name)

let insn p i =
  p.insns <- p.insns + 1;
  push p (Fixed i)

let fixup p ~size ~count fn =
  p.insns <- p.insns + count;
  push p (Fixup (size, fn))

(* --- data ------------------------------------------------------------ *)

let word p v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  push p (Data (Bytes.to_string b))

let word_l p name = push p (Word_label name)

let half p v =
  let b = Bytes.create 2 in
  Bytes.set_uint16_le b 0 (v land 0xffff);
  push p (Data (Bytes.to_string b))

let byte p v = push p (Data (String.make 1 (Char.chr (v land 0xff))))
let ascii p s = push p (Data s)
let asciz p s = push p (Data (s ^ "\000"))
let space p n = push p (Space_of n)
let align p n = push p (Align_to n)

(* --- plain instructions ---------------------------------------------- *)

open Rv32.Insn

let lui p rd imm = insn p (LUI (rd, imm))
let auipc p rd imm = insn p (AUIPC (rd, imm))
let jal p rd off = insn p (JAL (rd, off))
let jalr p rd rs1 off = insn p (JALR (rd, rs1, off))
let beq p a b off = insn p (BEQ (a, b, off))
let bne p a b off = insn p (BNE (a, b, off))
let blt p a b off = insn p (BLT (a, b, off))
let bge p a b off = insn p (BGE (a, b, off))
let bltu p a b off = insn p (BLTU (a, b, off))
let bgeu p a b off = insn p (BGEU (a, b, off))
let lb p rd rs1 off = insn p (LB (rd, rs1, off))
let lh p rd rs1 off = insn p (LH (rd, rs1, off))
let lw p rd rs1 off = insn p (LW (rd, rs1, off))
let lbu p rd rs1 off = insn p (LBU (rd, rs1, off))
let lhu p rd rs1 off = insn p (LHU (rd, rs1, off))
let sb p src base off = insn p (SB (base, src, off))
let sh p src base off = insn p (SH (base, src, off))
let sw p src base off = insn p (SW (base, src, off))
let addi p rd rs1 imm = insn p (ADDI (rd, rs1, imm))
let slti p rd rs1 imm = insn p (SLTI (rd, rs1, imm))
let sltiu p rd rs1 imm = insn p (SLTIU (rd, rs1, imm))
let xori p rd rs1 imm = insn p (XORI (rd, rs1, imm))
let ori p rd rs1 imm = insn p (ORI (rd, rs1, imm))
let andi p rd rs1 imm = insn p (ANDI (rd, rs1, imm))
let slli p rd rs1 sh = insn p (SLLI (rd, rs1, sh))
let srli p rd rs1 sh = insn p (SRLI (rd, rs1, sh))
let srai p rd rs1 sh = insn p (SRAI (rd, rs1, sh))
let add p rd a b = insn p (ADD (rd, a, b))
let sub p rd a b = insn p (SUB (rd, a, b))
let sll p rd a b = insn p (SLL (rd, a, b))
let slt p rd a b = insn p (SLT (rd, a, b))
let sltu p rd a b = insn p (SLTU (rd, a, b))
let xor p rd a b = insn p (XOR (rd, a, b))
let srl p rd a b = insn p (SRL (rd, a, b))
let sra p rd a b = insn p (SRA (rd, a, b))
let or_ p rd a b = insn p (OR (rd, a, b))
let and_ p rd a b = insn p (AND (rd, a, b))
let mul p rd a b = insn p (MUL (rd, a, b))
let mulh p rd a b = insn p (MULH (rd, a, b))
let mulhsu p rd a b = insn p (MULHSU (rd, a, b))
let mulhu p rd a b = insn p (MULHU (rd, a, b))
let div p rd a b = insn p (DIV (rd, a, b))
let divu p rd a b = insn p (DIVU (rd, a, b))
let rem p rd a b = insn p (REM (rd, a, b))
let remu p rd a b = insn p (REMU (rd, a, b))
let fence p = insn p FENCE
let ecall p = insn p ECALL
let ebreak p = insn p EBREAK
let mret p = insn p MRET
let wfi p = insn p WFI
let csrrw p rd csr rs1 = insn p (CSRRW (rd, rs1, csr))
let csrrs p rd csr rs1 = insn p (CSRRS (rd, rs1, csr))
let csrrc p rd csr rs1 = insn p (CSRRC (rd, rs1, csr))
let csrrwi p rd csr z = insn p (CSRRWI (rd, z, csr))
let csrrsi p rd csr z = insn p (CSRRSI (rd, z, csr))
let csrrci p rd csr z = insn p (CSRRCI (rd, z, csr))

(* --- label-target forms ----------------------------------------------- *)

let branch_l p make target =
  fixup p ~size:4 ~count:1 (fun ~addr ~resolve ->
      [ make (resolve target - addr) ])

let jal_l p rd target = branch_l p (fun off -> JAL (rd, off)) target
let beq_l p a b target = branch_l p (fun off -> BEQ (a, b, off)) target
let bne_l p a b target = branch_l p (fun off -> BNE (a, b, off)) target
let blt_l p a b target = branch_l p (fun off -> BLT (a, b, off)) target
let bge_l p a b target = branch_l p (fun off -> BGE (a, b, off)) target
let bltu_l p a b target = branch_l p (fun off -> BLTU (a, b, off)) target
let bgeu_l p a b target = branch_l p (fun off -> BGEU (a, b, off)) target

(* --- pseudo-instructions ----------------------------------------------- *)

let nop p = addi p 0 0 0
let mv p rd rs = addi p rd rs 0
let not_ p rd rs = xori p rd rs (-1)
let neg p rd rs = sub p rd 0 rs
let seqz p rd rs = sltiu p rd rs 1
let snez p rd rs = sltu p rd 0 rs

(* hi/lo decomposition for 32-bit constants: [lui] takes the upper 20 bits
   rounded so the sign-extended 12-bit [addi] lands exactly on the value. *)
let hi_lo v =
  let v = v land 0xffffffff in
  let lo = Rv32.Decode.sext ~width:12 v in
  let hi = (v - lo) land 0xffffffff in
  (hi, lo)

let li p rd v =
  if Rv32.Encode.fits_signed ~width:12 v then addi p rd 0 v
  else begin
    let hi, lo = hi_lo v in
    lui p rd hi;
    if lo <> 0 then addi p rd rd lo else nop p
  end

let la p rd target =
  fixup p ~size:8 ~count:2 (fun ~addr:_ ~resolve ->
      let hi, lo = hi_lo (resolve target) in
      [ LUI (rd, hi); ADDI (rd, rd, lo) ])

let lui_hi p rd target =
  fixup p ~size:4 ~count:1 (fun ~addr:_ ~resolve ->
      let hi, _ = hi_lo (resolve target) in
      [ LUI (rd, hi) ])

let lo_fixup p make target =
  fixup p ~size:4 ~count:1 (fun ~addr:_ ~resolve ->
      let _, lo = hi_lo (resolve target) in
      [ make lo ])

let addi_lo p rd rs1 target = lo_fixup p (fun lo -> ADDI (rd, rs1, lo)) target
let lw_lo p rd rs1 target = lo_fixup p (fun lo -> LW (rd, rs1, lo)) target
let lbu_lo p rd rs1 target = lo_fixup p (fun lo -> LBU (rd, rs1, lo)) target
let sw_lo p src base target = lo_fixup p (fun lo -> SW (base, src, lo)) target
let sb_lo p src base target = lo_fixup p (fun lo -> SB (base, src, lo)) target

let j p target = jal_l p 0 target
let call p target = jal_l p 1 target
let ret p = jalr p 0 1 0
let beqz_l p rs target = beq_l p rs 0 target
let bnez_l p rs target = bne_l p rs 0 target
let bgtz_l p rs target = blt_l p 0 rs target
let blez_l p rs target = bge_l p 0 rs target
let bltz_l p rs target = blt_l p rs 0 target
let bgez_l p rs target = bge_l p rs 0 target

let exit_ecall p ?(code = 0) () =
  li p 17 93;
  li p 10 code;
  ecall p

(* --- assembly ---------------------------------------------------------- *)

let assemble p =
  let items = List.rev p.items in
  (* Pass 1: label addresses. *)
  let symbols = Hashtbl.create 64 in
  let addr = ref p.org in
  List.iter
    (fun item ->
      match item with
      | Lab name ->
          if Hashtbl.mem symbols name then raise (Duplicate_label name);
          Hashtbl.add symbols name !addr
      | Fixed _ -> addr := !addr + 4
      | Fixup (size, _) -> addr := !addr + size
      | Data s -> addr := !addr + String.length s
      | Word_label _ -> addr := !addr + 4
      | Align_to n ->
          let r = !addr mod n in
          if r <> 0 then addr := !addr + (n - r)
      | Space_of n -> addr := !addr + n)
    items;
  let total = !addr - p.org in
  let resolve name =
    match Hashtbl.find_opt symbols name with
    | Some a -> a
    | None -> raise (Unknown_label name)
  in
  (* Pass 2: emission. *)
  let code = Bytes.make total '\000' in
  let put_word at v = Bytes.set_int32_le code (at - p.org) (Int32.of_int v) in
  let addr = ref p.org in
  List.iter
    (fun item ->
      match item with
      | Lab _ -> ()
      | Fixed i ->
          put_word !addr (Rv32.Encode.encode i);
          addr := !addr + 4
      | Fixup (size, fn) ->
          let insns = fn ~addr:!addr ~resolve in
          if List.length insns * 4 <> size then
            invalid_arg "Asm.assemble: fixup emitted wrong size";
          List.iter
            (fun i ->
              put_word !addr (Rv32.Encode.encode i);
              addr := !addr + 4)
            insns
      | Data s ->
          Bytes.blit_string s 0 code (!addr - p.org) (String.length s);
          addr := !addr + String.length s
      | Word_label name ->
          put_word !addr (resolve name);
          addr := !addr + 4
      | Align_to n ->
          let r = !addr mod n in
          if r <> 0 then addr := !addr + (n - r)
      | Space_of n -> addr := !addr + n)
    items;
  {
    Image.org = p.org;
    code;
    symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [];
    insn_count = p.insns;
  }
