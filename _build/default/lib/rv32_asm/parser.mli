(** A textual RV32 assembler on top of the {!Asm} eDSL.

    Supported syntax (a practical GNU-as subset):
    - one optional [label:] and one instruction or directive per line;
    - comments with [#] or [//] to end of line;
    - registers by ABI name ([sp], [a0], ...) or numeric name ([x2]);
    - immediates in decimal or [0x] hexadecimal, possibly negative;
    - memory operands as [off(reg)] with an optional offset;
    - branch/jump targets as labels;
    - named CSRs ([mstatus], [mtvec], ...) or numeric CSR addresses;
    - pseudo-instructions: [nop mv not neg seqz snez li la j jr call ret
      beqz bnez bgtz blez bltz bgez];
    - directives: [.word] (value or label), [.half], [.byte], [.ascii],
      [.asciz], [.space], [.align], [.equ name, value]; [.globl], [.text],
      [.data] and [.section] are accepted and ignored. *)

exception Parse_error of { line : int; msg : string }

val parse_into : Asm.t -> string -> unit
(** Append the source text to an existing program. Raises {!Parse_error}. *)

val parse_string : ?org:int -> string -> Image.t
(** Assemble a complete source text. Raises {!Parse_error} on syntax errors
    and the {!Asm} exceptions on label errors. *)

val parse_result : ?org:int -> string -> (Image.t, string) result
(** Like {!parse_string} but returning errors (including label and encoding
    errors) as a message. *)
