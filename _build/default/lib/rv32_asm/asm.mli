(** An imperative RV32IM assembler eDSL.

    Firmware is written as OCaml functions that append instructions, labels
    and data to a program buffer; {!assemble} resolves labels in a second
    pass and produces a flat {!Image.t}. Example:

    {[
      let open Rv32_asm.Asm in
      let p = create ~org:0x8000_0000 () in
      li p Rv32.Reg.a0 0;
      label p "loop";
      addi p Rv32.Reg.a0 Rv32.Reg.a0 1;
      blt_l p Rv32.Reg.a0 Rv32.Reg.a1 "loop";
      exit_ecall p;
      assemble p
    ]}

    Raises [Invalid_argument] on malformed operands (via {!Rv32.Encode}) and
    {!Unknown_label} / {!Duplicate_label} on label errors. *)

exception Unknown_label of string
exception Duplicate_label of string

type t

val create : ?org:int -> unit -> t
(** [org] is the load address (default 0x8000_0000). *)

val here : t -> unit -> int
(** Current emission address (valid while building; data after it moves
    only forward). *)

val label : t -> string -> unit
val insn : t -> Rv32.Insn.t -> unit
(** Append a fixed instruction. *)

(** {1 Data directives} *)

val word : t -> int -> unit
val word_l : t -> string -> unit
(** A 32-bit word holding a label's absolute address. *)

val half : t -> int -> unit
val byte : t -> int -> unit
val ascii : t -> string -> unit
val asciz : t -> string -> unit
val space : t -> int -> unit
(** [space n] emits [n] zero bytes. *)

val align : t -> int -> unit
(** Pad with zero bytes to the next multiple of [n]. *)

(** {1 RV32I instructions} *)

val lui : t -> int -> int -> unit
val auipc : t -> int -> int -> unit
val jal : t -> int -> int -> unit
val jalr : t -> int -> int -> int -> unit
val beq : t -> int -> int -> int -> unit
val bne : t -> int -> int -> int -> unit
val blt : t -> int -> int -> int -> unit
val bge : t -> int -> int -> int -> unit
val bltu : t -> int -> int -> int -> unit
val bgeu : t -> int -> int -> int -> unit
val lb : t -> int -> int -> int -> unit
val lh : t -> int -> int -> int -> unit
val lw : t -> int -> int -> int -> unit
val lbu : t -> int -> int -> int -> unit
val lhu : t -> int -> int -> int -> unit
val sb : t -> int -> int -> int -> unit
(** [sb p src base off] — source register first, like the other stores. *)

val sh : t -> int -> int -> int -> unit
val sw : t -> int -> int -> int -> unit
val addi : t -> int -> int -> int -> unit
val slti : t -> int -> int -> int -> unit
val sltiu : t -> int -> int -> int -> unit
val xori : t -> int -> int -> int -> unit
val ori : t -> int -> int -> int -> unit
val andi : t -> int -> int -> int -> unit
val slli : t -> int -> int -> int -> unit
val srli : t -> int -> int -> int -> unit
val srai : t -> int -> int -> int -> unit
val add : t -> int -> int -> int -> unit
val sub : t -> int -> int -> int -> unit
val sll : t -> int -> int -> int -> unit
val slt : t -> int -> int -> int -> unit
val sltu : t -> int -> int -> int -> unit
val xor : t -> int -> int -> int -> unit
val srl : t -> int -> int -> int -> unit
val sra : t -> int -> int -> int -> unit
val or_ : t -> int -> int -> int -> unit
val and_ : t -> int -> int -> int -> unit
val mul : t -> int -> int -> int -> unit
val mulh : t -> int -> int -> int -> unit
val mulhsu : t -> int -> int -> int -> unit
val mulhu : t -> int -> int -> int -> unit
val div : t -> int -> int -> int -> unit
val divu : t -> int -> int -> int -> unit
val rem : t -> int -> int -> int -> unit
val remu : t -> int -> int -> int -> unit
val fence : t -> unit
val ecall : t -> unit
val ebreak : t -> unit
val mret : t -> unit
val wfi : t -> unit
val csrrw : t -> int -> int -> int -> unit
(** [csrrw p rd csr rs1]. *)

val csrrs : t -> int -> int -> int -> unit
val csrrc : t -> int -> int -> int -> unit
val csrrwi : t -> int -> int -> int -> unit
val csrrsi : t -> int -> int -> int -> unit
val csrrci : t -> int -> int -> int -> unit

(** {1 Label-target forms} *)

val jal_l : t -> int -> string -> unit
val beq_l : t -> int -> int -> string -> unit
val bne_l : t -> int -> int -> string -> unit
val blt_l : t -> int -> int -> string -> unit
val bge_l : t -> int -> int -> string -> unit
val bltu_l : t -> int -> int -> string -> unit
val bgeu_l : t -> int -> int -> string -> unit

(** {1 Pseudo-instructions} *)

val nop : t -> unit
val mv : t -> int -> int -> unit
val not_ : t -> int -> int -> unit
val neg : t -> int -> int -> unit
val seqz : t -> int -> int -> unit
val snez : t -> int -> int -> unit
val li : t -> int -> int -> unit
(** Loads any 32-bit constant (1 or 2 instructions). *)

val la : t -> int -> string -> unit
(** Load a label's absolute address (always 2 instructions). *)

val lui_hi : t -> int -> string -> unit
(** [lui rd, %hi(label)] — pairs with one of the [_lo] forms below. *)

val addi_lo : t -> int -> int -> string -> unit
(** [addi rd, rs1, %lo(label)]. *)

val lw_lo : t -> int -> int -> string -> unit
(** [lw rd, %lo(label)(rs1)]. *)

val lbu_lo : t -> int -> int -> string -> unit
val sw_lo : t -> int -> int -> string -> unit
(** [sw rs2, %lo(label)(rs1)] (source register first, as for {!sw}). *)

val sb_lo : t -> int -> int -> string -> unit

val j : t -> string -> unit
val call : t -> string -> unit
(** [jal ra, label]. *)

val ret : t -> unit
val beqz_l : t -> int -> string -> unit
val bnez_l : t -> int -> string -> unit
val bgtz_l : t -> int -> string -> unit
val blez_l : t -> int -> string -> unit
val bltz_l : t -> int -> string -> unit
val bgez_l : t -> int -> string -> unit

val exit_ecall : t -> ?code:int -> unit -> unit
(** The VP exit convention: [li a7, 93; li a0, code; ecall]. *)

(** {1 Assembly} *)

val assemble : t -> Image.t
(** Resolve labels and produce the image. The builder can keep growing and
    be assembled again. *)
