lib/rv32_asm/asm.ml: Bytes Char Hashtbl Image Int32 List Rv32 String
