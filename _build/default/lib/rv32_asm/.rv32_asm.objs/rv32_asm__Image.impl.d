lib/rv32_asm/image.ml: Bytes Format Int List
