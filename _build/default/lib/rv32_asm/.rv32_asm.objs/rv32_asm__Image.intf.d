lib/rv32_asm/image.mli: Bytes Format
