lib/rv32_asm/parser.ml: Asm Buffer Hashtbl List Printf Rv32 String
