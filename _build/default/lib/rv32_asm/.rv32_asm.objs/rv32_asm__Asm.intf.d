lib/rv32_asm/asm.mli: Image Rv32
