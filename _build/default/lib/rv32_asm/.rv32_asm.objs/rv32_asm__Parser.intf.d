lib/rv32_asm/parser.mli: Asm Image
