type t = {
  org : int;
  code : Bytes.t;
  symbols : (string * int) list;
  insn_count : int;
}

let size img = Bytes.length img.code

let symbol img name =
  match List.assoc_opt name img.symbols with
  | Some a -> a
  | None -> raise Not_found

let symbol_opt img name = List.assoc_opt name img.symbols
let limit img = img.org + size img

let pp_symbols fmt img =
  let sorted = List.sort (fun (_, a) (_, b) -> Int.compare a b) img.symbols in
  Format.fprintf fmt "@[<v>";
  List.iter (fun (n, a) -> Format.fprintf fmt "0x%08x %s@," a n) sorted;
  Format.fprintf fmt "@]"
