(** A linked memory image: the output of the assembler, the input of the
    VP loader. *)

type t = {
  org : int;  (** Load address of the first byte. *)
  code : Bytes.t;  (** Raw image contents (code and data). *)
  symbols : (string * int) list;  (** Label name -> absolute address. *)
  insn_count : int;
      (** Number of assembler opcodes in the image (the paper's "LoC ASM"
          column of Table II). *)
}

val size : t -> int
val symbol : t -> string -> int
(** Raises [Not_found] for unknown symbols. *)

val symbol_opt : t -> string -> int option
val limit : t -> int
(** One past the last address of the image ([org + size]). *)

val pp_symbols : Format.formatter -> t -> unit
