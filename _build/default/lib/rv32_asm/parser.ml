exception Parse_error of { line : int; msg : string }

let csr_names =
  [
    ("mstatus", 0x300); ("misa", 0x301); ("mie", 0x304); ("mtvec", 0x305);
    ("mscratch", 0x340); ("mepc", 0x341); ("mcause", 0x342); ("mtval", 0x343);
    ("mip", 0x344); ("mhartid", 0xf14); ("mvendorid", 0xf11);
    ("marchid", 0xf12); ("mimpid", 0xf13); ("mcycle", 0xb00);
    ("minstret", 0xb02); ("cycle", 0xc00); ("time", 0xc01); ("instret", 0xc02);
  ]

type ctx = { prog : Asm.t; equs : (string, int) Hashtbl.t; mutable line : int }

let fail ctx fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error { line = ctx.line; msg })) fmt

let strip_comment s =
  let cut i = String.sub s 0 i in
  let rec scan i in_str =
    if i >= String.length s then s
    else
      match s.[i] with
      | '"' -> scan (i + 1) (not in_str)
      | '#' when not in_str -> cut i
      | '/' when (not in_str) && i + 1 < String.length s && s.[i + 1] = '/' ->
          cut i
      | _ -> scan (i + 1) in_str
  in
  scan 0 false

let parse_int ctx s =
  let s = String.trim s in
  match int_of_string_opt s with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt ctx.equs s with
      | Some v -> v
      | None -> fail ctx "bad integer %S" s)

let parse_reg ctx s =
  match Rv32.Reg.of_name (String.trim s) with
  | Some r -> r
  | None -> fail ctx "bad register %S" s

let parse_csr ctx s =
  let s = String.trim s in
  match List.assoc_opt s csr_names with
  | Some n -> n
  | None -> parse_int ctx s

(* "%hi(label)" / "%lo(label)" relocation operands. *)
let parse_reloc s =
  let s = String.trim s in
  let pick prefix =
    let n = String.length prefix in
    if
      String.length s > n + 1
      && String.sub s 0 n = prefix
      && s.[String.length s - 1] = ')'
    then Some (String.trim (String.sub s n (String.length s - n - 1)))
    else None
  in
  match pick "%hi(" with
  | Some l -> Some (`Hi l)
  | None -> ( match pick "%lo(" with Some l -> Some (`Lo l) | None -> None)

(* "off(reg)" or "(reg)" or "reg" (offset 0). *)
let parse_mem ctx s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> (0, parse_reg ctx s)
  | Some i ->
      let off = String.trim (String.sub s 0 i) in
      let off = if off = "" then 0 else parse_int ctx off in
      (match String.index_opt s ')' with
      | Some j when j > i ->
          (off, parse_reg ctx (String.sub s (i + 1) (j - i - 1)))
      | Some _ | None -> fail ctx "bad memory operand %S" s)

let split_operands s =
  if String.trim s = "" then []
  else List.map String.trim (String.split_on_char ',' s)

(* A label operand is anything that is not a number. *)
let is_label ctx s =
  (not (Hashtbl.mem ctx.equs s)) && int_of_string_opt s = None

let unescape ctx s =
  let b = Buffer.create (String.length s) in
  let rec go i =
    if i < String.length s then
      if s.[i] = '\\' && i + 1 < String.length s then begin
        (match s.[i + 1] with
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | '0' -> Buffer.add_char b '\000'
        | '\\' -> Buffer.add_char b '\\'
        | '"' -> Buffer.add_char b '"'
        | c -> fail ctx "bad escape \\%c" c);
        go (i + 2)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

let parse_string_lit ctx s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then
    unescape ctx (String.sub s 1 (n - 2))
  else fail ctx "expected string literal, got %S" s

let directive ctx name ops =
  let p = ctx.prog in
  match name with
  | ".word" ->
      List.iter
        (fun op ->
          if is_label ctx op then Asm.word_l p op else Asm.word p (parse_int ctx op))
        ops
  | ".half" -> List.iter (fun op -> Asm.half p (parse_int ctx op)) ops
  | ".byte" -> List.iter (fun op -> Asm.byte p (parse_int ctx op)) ops
  | ".ascii" -> List.iter (fun op -> Asm.ascii p (parse_string_lit ctx op)) ops
  | ".asciz" | ".string" ->
      List.iter (fun op -> Asm.asciz p (parse_string_lit ctx op)) ops
  | ".space" | ".zero" -> (
      match ops with
      | [ n ] -> Asm.space p (parse_int ctx n)
      | _ -> fail ctx "%s expects one operand" name)
  | ".align" | ".balign" -> (
      match ops with
      | [ n ] ->
          let n = parse_int ctx n in
          (* .align is a power-of-two exponent in gas for RISC-V. *)
          Asm.align p (if name = ".align" then 1 lsl n else n)
      | _ -> fail ctx "%s expects one operand" name)
  | ".equ" | ".set" -> (
      match ops with
      | [ n; v ] -> Hashtbl.replace ctx.equs n (parse_int ctx v)
      | _ -> fail ctx "%s expects name, value" name)
  | ".globl" | ".global" | ".text" | ".data" | ".section" | ".option" -> ()
  | _ -> fail ctx "unknown directive %s" name

let instruction ctx mnem ops =
  let p = ctx.prog in
  let reg = parse_reg ctx and int_ = parse_int ctx in
  let rrr f = match ops with
    | [ a; b; c ] -> f p (reg a) (reg b) (reg c)
    | _ -> fail ctx "%s expects rd, rs1, rs2" mnem
  in
  let rri f = match ops with
    | [ a; b; c ] -> f p (reg a) (reg b) (int_ c)
    | _ -> fail ctx "%s expects rd, rs1, imm" mnem
  in
  let load f = match ops with
    | [ rd; m ] ->
        let off, base = parse_mem ctx m in
        f p (reg rd) base off
    | _ -> fail ctx "%s expects rd, off(rs1)" mnem
  in
  let store f = match ops with
    | [ src; m ] ->
        let off, base = parse_mem ctx m in
        f p (reg src) base off
    | _ -> fail ctx "%s expects rs2, off(rs1)" mnem
  in
  let branch fl fi = match ops with
    | [ a; b; t ] ->
        if is_label ctx t then fl p (reg a) (reg b) t
        else fi p (reg a) (reg b) (int_ t)
    | _ -> fail ctx "%s expects rs1, rs2, target" mnem
  in
  let branch_z fl = match ops with
    | [ a; t ] -> fl p (reg a) t
    | _ -> fail ctx "%s expects rs, target" mnem
  in
  let csr_r f = match ops with
    | [ rd; c; rs ] -> f p (reg rd) (parse_csr ctx c) (reg rs)
    | _ -> fail ctx "%s expects rd, csr, rs1" mnem
  in
  let csr_i f = match ops with
    | [ rd; c; z ] -> f p (reg rd) (parse_csr ctx c) (int_ z)
    | _ -> fail ctx "%s expects rd, csr, zimm" mnem
  in
  let mem_reloc flo f = match ops with
    (* "%lo(label)(reg)" memory operand *)
    | [ a; m ] -> (
        match String.index_opt m '(' with
        | Some i when i > 0 && String.length m > 4 && String.sub m 0 4 = "%lo(" -> (
            (* split  %lo(label)(reg)  at the second '(' *)
            match String.index_from_opt m (i + 1) '(' with
            | Some j ->
                let reloc = String.sub m 0 j in
                let rest = String.sub m j (String.length m - j) in
                (match (parse_reloc reloc, parse_mem ctx rest) with
                | Some (`Lo l), (0, base) -> flo p (reg a) base l
                | _ -> fail ctx "bad %%lo memory operand %S" m)
            | None -> fail ctx "bad %%lo memory operand %S" m)
        | _ ->
            let off, base = parse_mem ctx m in
            f p (reg a) base off)
    | _ -> fail ctx "%s expects rd, off(rs1)" mnem
  in
  match mnem with
  | "add" -> rrr Asm.add
  | "sub" -> rrr Asm.sub
  | "sll" -> rrr Asm.sll
  | "slt" -> rrr Asm.slt
  | "sltu" -> rrr Asm.sltu
  | "xor" -> rrr Asm.xor
  | "srl" -> rrr Asm.srl
  | "sra" -> rrr Asm.sra
  | "or" -> rrr Asm.or_
  | "and" -> rrr Asm.and_
  | "mul" -> rrr Asm.mul
  | "mulh" -> rrr Asm.mulh
  | "mulhsu" -> rrr Asm.mulhsu
  | "mulhu" -> rrr Asm.mulhu
  | "div" -> rrr Asm.div
  | "divu" -> rrr Asm.divu
  | "rem" -> rrr Asm.rem
  | "remu" -> rrr Asm.remu
  | "addi" -> (
      match ops with
      | [ rd; rs; op3 ] -> (
          match parse_reloc op3 with
          | Some (`Lo l) -> Asm.addi_lo p (reg rd) (reg rs) l
          | Some (`Hi _) -> fail ctx "%%hi not valid in addi"
          | None -> Asm.addi p (reg rd) (reg rs) (int_ op3))
      | _ -> fail ctx "addi expects rd, rs1, imm")
  | "slti" -> rri Asm.slti
  | "sltiu" -> rri Asm.sltiu
  | "xori" -> rri Asm.xori
  | "ori" -> rri Asm.ori
  | "andi" -> rri Asm.andi
  | "slli" -> rri Asm.slli
  | "srli" -> rri Asm.srli
  | "srai" -> rri Asm.srai
  | "lb" -> load Asm.lb
  | "lh" -> load Asm.lh
  | "lw" -> mem_reloc Asm.lw_lo Asm.lw
  | "lbu" -> mem_reloc Asm.lbu_lo Asm.lbu
  | "lhu" -> load Asm.lhu
  | "sb" -> mem_reloc Asm.sb_lo Asm.sb
  | "sh" -> store Asm.sh
  | "sw" -> mem_reloc Asm.sw_lo Asm.sw
  | "beq" -> branch Asm.beq_l Asm.beq
  | "bne" -> branch Asm.bne_l Asm.bne
  | "blt" -> branch Asm.blt_l Asm.blt
  | "bge" -> branch Asm.bge_l Asm.bge
  | "bltu" -> branch Asm.bltu_l Asm.bltu
  | "bgeu" -> branch Asm.bgeu_l Asm.bgeu
  | "bgt" -> branch (fun p a b t -> Asm.blt_l p b a t) (fun p a b o -> Asm.blt p b a o)
  | "ble" -> branch (fun p a b t -> Asm.bge_l p b a t) (fun p a b o -> Asm.bge p b a o)
  | "beqz" -> branch_z Asm.beqz_l
  | "bnez" -> branch_z Asm.bnez_l
  | "bgtz" -> branch_z Asm.bgtz_l
  | "blez" -> branch_z Asm.blez_l
  | "bltz" -> branch_z Asm.bltz_l
  | "bgez" -> branch_z Asm.bgez_l
  | "lui" -> (
      match ops with
      | [ rd; op2 ] -> (
          match parse_reloc op2 with
          | Some (`Hi l) -> Asm.lui_hi p (reg rd) l
          | Some (`Lo _) -> fail ctx "%%lo not valid in lui"
          | None -> Asm.lui p (reg rd) (int_ op2 lsl 12))
      | _ -> fail ctx "lui expects rd, imm20")
  | "auipc" -> (
      match ops with
      | [ rd; imm ] -> Asm.auipc p (reg rd) (int_ imm lsl 12)
      | _ -> fail ctx "auipc expects rd, imm20")
  | "jal" -> (
      match ops with
      | [ t ] when is_label ctx t -> Asm.jal_l p 1 t
      | [ rd; t ] when is_label ctx t -> Asm.jal_l p (reg rd) t
      | [ rd; o ] -> Asm.jal p (reg rd) (int_ o)
      | _ -> fail ctx "jal expects [rd,] target")
  | "jalr" -> (
      match ops with
      | [ r1 ] -> Asm.jalr p 1 (reg r1) 0
      | [ rd; m ] ->
          let off, base = parse_mem ctx m in
          Asm.jalr p (reg rd) base off
      | [ rd; r1; o ] -> Asm.jalr p (reg rd) (reg r1) (int_ o)
      | _ -> fail ctx "jalr expects rd, off(rs1)")
  | "jr" -> (
      match ops with
      | [ r1 ] -> Asm.jalr p 0 (reg r1) 0
      | _ -> fail ctx "jr expects rs1")
  | "j" -> (
      match ops with
      | [ t ] -> Asm.j p t
      | _ -> fail ctx "j expects target")
  | "call" -> (
      match ops with
      | [ t ] -> Asm.call p t
      | _ -> fail ctx "call expects target")
  | "ret" -> if ops = [] then Asm.ret p else fail ctx "ret takes no operands"
  | "nop" -> Asm.nop p
  | "mv" -> (
      match ops with
      | [ rd; rs ] -> Asm.mv p (reg rd) (reg rs)
      | _ -> fail ctx "mv expects rd, rs")
  | "not" -> (
      match ops with
      | [ rd; rs ] -> Asm.not_ p (reg rd) (reg rs)
      | _ -> fail ctx "not expects rd, rs")
  | "neg" -> (
      match ops with
      | [ rd; rs ] -> Asm.neg p (reg rd) (reg rs)
      | _ -> fail ctx "neg expects rd, rs")
  | "seqz" -> (
      match ops with
      | [ rd; rs ] -> Asm.seqz p (reg rd) (reg rs)
      | _ -> fail ctx "seqz expects rd, rs")
  | "snez" -> (
      match ops with
      | [ rd; rs ] -> Asm.snez p (reg rd) (reg rs)
      | _ -> fail ctx "snez expects rd, rs")
  | "li" -> (
      match ops with
      | [ rd; v ] -> Asm.li p (reg rd) (int_ v)
      | _ -> fail ctx "li expects rd, imm")
  | "la" -> (
      match ops with
      | [ rd; t ] -> Asm.la p (reg rd) t
      | _ -> fail ctx "la expects rd, label")
  | "fence" -> Asm.fence p
  | "ecall" -> Asm.ecall p
  | "ebreak" -> Asm.ebreak p
  | "mret" -> Asm.mret p
  | "wfi" -> Asm.wfi p
  | "csrrw" -> csr_r Asm.csrrw
  | "csrrs" -> csr_r Asm.csrrs
  | "csrrc" -> csr_r Asm.csrrc
  | "csrrwi" -> csr_i Asm.csrrwi
  | "csrrsi" -> csr_i Asm.csrrsi
  | "csrrci" -> csr_i Asm.csrrci
  | "csrr" -> (
      match ops with
      | [ rd; c ] -> Asm.csrrs p (reg rd) (parse_csr ctx c) 0
      | _ -> fail ctx "csrr expects rd, csr")
  | "csrw" -> (
      match ops with
      | [ c; rs ] -> Asm.csrrw p 0 (parse_csr ctx c) (reg rs)
      | _ -> fail ctx "csrw expects csr, rs")
  | _ -> fail ctx "unknown mnemonic %S" mnem

let parse_line ctx line =
  let line = String.trim (strip_comment line) in
  if line = "" then ()
  else begin
    (* Optional leading label. *)
    let rest =
      match String.index_opt line ':' with
      | Some i
        when (not (String.contains (String.sub line 0 i) ' '))
             && not (String.contains (String.sub line 0 i) '"') ->
          Asm.label ctx.prog (String.sub line 0 i);
          String.trim (String.sub line (i + 1) (String.length line - i - 1))
      | Some _ | None -> line
    in
    if rest <> "" then begin
      let mnem, operands =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some i ->
            ( String.sub rest 0 i,
              String.sub rest (i + 1) (String.length rest - i - 1) )
      in
      let mnem = String.lowercase_ascii mnem in
      if mnem.[0] = '.' then
        (* Strings may contain commas; split carefully only for non-string
           directives. *)
        match mnem with
        | ".ascii" | ".asciz" | ".string" ->
            directive ctx mnem [ String.trim operands ]
        | _ -> directive ctx mnem (split_operands operands)
      else instruction ctx mnem (split_operands operands)
    end
  end

let parse_into prog src =
  let ctx = { prog; equs = Hashtbl.create 16; line = 0 } in
  List.iter
    (fun line ->
      ctx.line <- ctx.line + 1;
      parse_line ctx line)
    (String.split_on_char '\n' src)

let parse_string ?org src =
  let prog = Asm.create ?org () in
  parse_into prog src;
  Asm.assemble prog

let parse_result ?org src =
  match parse_string ?org src with
  | img -> Ok img
  | exception Parse_error { line; msg } ->
      Error (Printf.sprintf "line %d: %s" line msg)
  | exception Asm.Unknown_label l -> Error ("unknown label " ^ l)
  | exception Asm.Duplicate_label l -> Error ("duplicate label " ^ l)
  | exception Invalid_argument msg -> Error msg
