type 'a t = { v : 'a; tag : Lattice.tag }

let make v tag = { v; tag }
let value x = x.v
let tag x = x.tag
let retag x tag = { x with tag }
let map _l f x = { v = f x.v; tag = x.tag }
let map2 l f a b = { v = f a.v b.v; tag = Lattice.lub l a.tag b.tag }
let check_clearance l x ~required = Lattice.allowed_flow l x.tag required

let to_bytes w =
  let byte i =
    { v = Char.chr (Int32.to_int (Int32.shift_right_logical w.v (8 * i)) land 0xff);
      tag = w.tag }
  in
  Array.init 4 byte

let from_bytes l ar =
  if Array.length ar <> 4 then
    invalid_arg "Taint.from_bytes: expected exactly 4 bytes";
  let v = ref 0l and t = ref ar.(0).tag in
  for i = 3 downto 0 do
    v := Int32.logor (Int32.shift_left !v 8) (Int32.of_int (Char.code ar.(i).v))
  done;
  Array.iter (fun b -> t := Lattice.lub l !t b.tag) ar;
  { v = !v; tag = !t }

let pp pp_v l fmt x =
  Format.fprintf fmt "%a@@%s" pp_v x.v (Lattice.name l x.tag)
