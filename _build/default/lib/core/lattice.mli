(** Information Flow Policy (IFP) lattices.

    An IFP is a finite join-semilattice of security classes. Data tagged with
    class [x] may flow to a sink with clearance [y] iff [allowed_flow l x y].
    Combining two pieces of data yields the least upper bound ([lub]) of
    their classes, i.e. the least class at least as restrictive as both. *)

type tag = int
(** A security class, represented as a dense integer tag (cf. the paper's
    [typedef uint8_t Tag]). Tags index into the lattice tables. *)

type t
(** A validated IFP lattice with precomputed flow and LUB tables. *)

val make : classes:string list -> flows:(string * string) list -> (t, string) result
(** [make ~classes ~flows] builds a lattice from named security classes and
    directed allowed-flow edges [(src, dst)]. The reflexive-transitive
    closure is taken automatically. Returns [Error _] if the relation is not
    antisymmetric (a flow cycle between distinct classes), if an edge names
    an unknown class, if classes are duplicated, or if some pair of classes
    has no unique least upper bound. *)

val make_exn : classes:string list -> flows:(string * string) list -> t
(** Like {!make} but raises [Invalid_argument] on error. *)

val size : t -> int
(** Number of security classes. *)

val name : t -> tag -> string
(** Human-readable name of a class. Raises [Invalid_argument] on a tag out
    of range. *)

val tag_of_name : t -> string -> tag
(** Inverse of {!name}. Raises [Not_found] for unknown names. *)

val mem_name : t -> string -> bool

val allowed_flow : t -> tag -> tag -> bool
(** [allowed_flow l x y] is true iff information of class [x] may flow to a
    place with clearance [y] (the paper's [allowedFlow(X, Y)]). This is the
    lattice partial order [x <= y]. *)

val lub : t -> tag -> tag -> tag
(** Least upper bound of two classes (the paper's [LUB]). O(1): looked up
    in a table precomputed at lattice construction. *)

val lub_uncached : t -> tag -> tag -> tag
(** Same result as {!lub} but recomputed from the flow relation on every
    call; exists only to quantify what the precomputed table buys (the
    [ablate-lub] bench). *)

val lub_list : t -> tag list -> tag
(** LUB of a non-empty list. Raises [Invalid_argument] on the empty list. *)

val bottom : t -> tag option
(** The unique least class, if one exists. *)

val top : t -> tag option
(** The unique greatest class, if one exists. *)

val tags : t -> tag list
(** All tags, in increasing order. *)

val pp : Format.formatter -> t -> unit
(** Print the lattice as its Hasse-style flow relation. *)

val to_dot : t -> string
(** Graphviz rendering of the flow relation (transitive reduction), for
    regenerating Fig. 1-style diagrams. *)

(** {1 Standard IFPs from the paper (Fig. 1)} *)

val confidentiality : unit -> t
(** IFP-1: classes [LC] and [HC]; flow allowed from [LC] to [HC] only, so
    confidential data cannot reach low outputs. *)

val integrity : unit -> t
(** IFP-2: classes [HI] and [LI]; flow allowed from [HI] to [LI] only, so
    untrusted data cannot reach high-integrity sinks. *)

val product : ?sep:string -> t -> t -> t
(** [product l1 l2] combines two IFPs: classes are pairs (named
    ["A" ^ sep ^ "B"], default separator ","), and a flow is allowed iff both
    component flows are allowed. *)

val ifp3 : unit -> t
(** IFP-3: [product (confidentiality ()) (integrity ())] — four classes
    [LC,LI], [LC,HI], [HC,LI], [HC,HI]. *)

val per_byte_key : n:int -> t
(** The refined immobilizer lattice of Section VI-A: IFP-3 with the (HC,HI)
    key class split into [n] pairwise-incomparable classes [KEY0..KEY(n-1)],
    each sitting between [LC,HI] and [HC,LI]. Writing byte [i] of the key
    over byte [j] (i <> j) then violates the store clearance, defeating the
    entropy-reduction attack. *)
