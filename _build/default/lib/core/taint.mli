(** Tainted values: a datum paired with its security-class tag.

    This is the OCaml analogue of the paper's [Taint<T>] C++ template
    (Fig. 3). Peripherals and the public API use this type; the inner ISS
    hot path stores values and tags in parallel unboxed arrays for speed but
    observes the same semantics. *)

type 'a t = private { v : 'a; tag : Lattice.tag }

val make : 'a -> Lattice.tag -> 'a t
(** [make v tag] pairs datum [v] with security class [tag]. *)

val value : 'a t -> 'a
val tag : 'a t -> Lattice.tag

val retag : 'a t -> Lattice.tag -> 'a t
(** Declassification / reclassification: replace the tag, keeping the value.
    Only trusted peripherals should do this (threat model, Section IV-B). *)

val map : Lattice.t -> ('a -> 'b) -> 'a t -> 'b t
(** Unary operation: the result keeps the operand's tag. *)

val map2 : Lattice.t -> ('a -> 'b -> 'c) -> 'a t -> 'b t -> 'c t
(** Binary operation: the result's tag is the LUB of the operands' tags,
    mirroring the paper's overloaded operators. *)

val check_clearance : Lattice.t -> 'a t -> required:Lattice.tag -> bool
(** [check_clearance l x ~required] is [allowed_flow l (tag x) required]:
    may [x] flow to a sink with clearance [required]? *)

(** {1 Byte conversion (paper's [to_bytes] / [from_bytes])} *)

val to_bytes : int32 t -> char t array
(** Split a 32-bit tainted word into four little-endian tainted bytes, each
    carrying the word's tag. *)

val from_bytes : Lattice.t -> char t array -> int32 t
(** Reassemble a 32-bit word from four little-endian tainted bytes; the
    word's tag is the LUB of all byte tags. Raises [Invalid_argument] if the
    array does not have exactly four elements. *)

val pp : (Format.formatter -> 'a -> unit) -> Lattice.t -> Format.formatter -> 'a t -> unit
