type tag = int

type t = {
  names : string array;
  index : (string, tag) Hashtbl.t;
  leq : bool array array;
  lub_table : tag array array;
}

let size l = Array.length l.names

let name l x =
  if x < 0 || x >= size l then
    invalid_arg (Printf.sprintf "Lattice.name: tag %d out of range" x);
  l.names.(x)

let tag_of_name l s =
  match Hashtbl.find_opt l.index s with
  | Some x -> x
  | None -> raise Not_found

let mem_name l s = Hashtbl.mem l.index s

let allowed_flow l x y = l.leq.(x).(y)
let lub l x y = l.lub_table.(x).(y)

(* Recompute the LUB by scanning the flow relation (the ablation
   baseline): find the least common upper bound. *)
let lub_uncached l a b =
  let n = size l in
  let best = ref (-1) in
  for c = 0 to n - 1 do
    if l.leq.(a).(c) && l.leq.(b).(c)
       && (!best < 0 || l.leq.(c).(!best)) then best := c
  done;
  !best

let lub_list l = function
  | [] -> invalid_arg "Lattice.lub_list: empty list"
  | x :: rest -> List.fold_left (lub l) x rest

let tags l = List.init (size l) (fun i -> i)

(* Reflexive-transitive closure via Floyd-Warshall over booleans. *)
let closure leq =
  let n = Array.length leq in
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if leq.(i).(k) then
        for j = 0 to n - 1 do
          if leq.(k).(j) then leq.(i).(j) <- true
        done
    done
  done

let compute_lub names leq =
  let n = Array.length names in
  let table = Array.make_matrix n n (-1) in
  let exception Bad of string in
  try
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        (* Common upper bounds of a and b. *)
        let ubs = ref [] in
        for c = 0 to n - 1 do
          if leq.(a).(c) && leq.(b).(c) then ubs := c :: !ubs
        done;
        (* The least among them: an upper bound below all other upper
           bounds. *)
        let least =
          List.filter (fun c -> List.for_all (fun d -> leq.(c).(d)) !ubs) !ubs
        in
        match least with
        | [ c ] -> table.(a).(b) <- c
        | [] ->
            raise
              (Bad
                 (Printf.sprintf "classes %s and %s have no least upper bound"
                    names.(a) names.(b)))
        | _ :: _ :: _ ->
            (* Impossible for a partial order: two distinct least elements
               would be mutually <= hence equal. Kept for safety. *)
            raise
              (Bad
                 (Printf.sprintf "classes %s and %s have ambiguous LUB"
                    names.(a) names.(b)))
      done
    done;
    Ok table
  with Bad msg -> Error msg

let make ~classes ~flows =
  let names = Array.of_list classes in
  let n = Array.length names in
  if n = 0 then Error "lattice must have at least one class"
  else begin
    let index = Hashtbl.create (2 * n) in
    let dup = ref None in
    Array.iteri
      (fun i s ->
        if Hashtbl.mem index s && !dup = None then dup := Some s;
        Hashtbl.replace index s i)
      names;
    match !dup with
    | Some s -> Error (Printf.sprintf "duplicate class %S" s)
    | None -> (
        let leq = Array.make_matrix n n false in
        for i = 0 to n - 1 do
          leq.(i).(i) <- true
        done;
        let bad_edge = ref None in
        List.iter
          (fun (a, b) ->
            match (Hashtbl.find_opt index a, Hashtbl.find_opt index b) with
            | Some i, Some j -> leq.(i).(j) <- true
            | None, _ -> if !bad_edge = None then bad_edge := Some a
            | _, None -> if !bad_edge = None then bad_edge := Some b)
          flows;
        match !bad_edge with
        | Some s -> Error (Printf.sprintf "flow mentions unknown class %S" s)
        | None -> (
            closure leq;
            (* Antisymmetry: no two distinct classes may be mutually
               reachable. *)
            let cycle = ref None in
            for i = 0 to n - 1 do
              for j = i + 1 to n - 1 do
                if leq.(i).(j) && leq.(j).(i) && !cycle = None then
                  cycle := Some (i, j)
              done
            done;
            match !cycle with
            | Some (i, j) ->
                Error
                  (Printf.sprintf "flow cycle between %s and %s" names.(i)
                     names.(j))
            | None -> (
                match compute_lub names leq with
                | Error e -> Error e
                | Ok lub_table -> Ok { names; index; leq; lub_table })))
  end

let make_exn ~classes ~flows =
  match make ~classes ~flows with
  | Ok l -> l
  | Error e -> invalid_arg ("Lattice.make_exn: " ^ e)

let extremum l ~dir =
  let n = size l in
  let is_ext c =
    let ok = ref true in
    for d = 0 to n - 1 do
      let rel = if dir then l.leq.(c).(d) else l.leq.(d).(c) in
      if not rel then ok := false
    done;
    !ok
  in
  let rec find c = if c >= n then None else if is_ext c then Some c else find (c + 1) in
  find 0

let bottom l = extremum l ~dir:true
let top l = extremum l ~dir:false

(* Transitive reduction edges (covers) for printing. *)
let covers l =
  let n = size l in
  let edges = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && l.leq.(a).(b) then begin
        let direct = ref true in
        for c = 0 to n - 1 do
          if c <> a && c <> b && l.leq.(a).(c) && l.leq.(c).(b) then
            direct := false
        done;
        if !direct then edges := (a, b) :: !edges
      end
    done
  done;
  List.rev !edges

let pp fmt l =
  Format.fprintf fmt "@[<v>lattice {%d classes}" (size l);
  List.iter
    (fun (a, b) -> Format.fprintf fmt "@,  %s -> %s" l.names.(a) l.names.(b))
    (covers l);
  Format.fprintf fmt "@]"

let to_dot l =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph ifp {\n  rankdir=BT;\n";
  Array.iter (fun s -> Buffer.add_string buf (Printf.sprintf "  %S;\n" s)) l.names;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  %S -> %S;\n" l.names.(a) l.names.(b)))
    (covers l);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let confidentiality () =
  make_exn ~classes:[ "LC"; "HC" ] ~flows:[ ("LC", "HC") ]

let integrity () = make_exn ~classes:[ "HI"; "LI" ] ~flows:[ ("HI", "LI") ]

let product ?(sep = ",") l1 l2 =
  let classes = ref [] in
  let flows = ref [] in
  let combined a b = l1.names.(a) ^ sep ^ l2.names.(b) in
  for a = size l1 - 1 downto 0 do
    for b = size l2 - 1 downto 0 do
      classes := combined a b :: !classes
    done
  done;
  for a = 0 to size l1 - 1 do
    for b = 0 to size l2 - 1 do
      for a' = 0 to size l1 - 1 do
        for b' = 0 to size l2 - 1 do
          if l1.leq.(a).(a') && l2.leq.(b).(b') && (a <> a' || b <> b') then
            flows := (combined a b, combined a' b') :: !flows
        done
      done
    done
  done;
  make_exn ~classes:!classes ~flows:!flows

let ifp3 () = product (confidentiality ()) (integrity ())

let per_byte_key ~n =
  if n < 1 then invalid_arg "Lattice.per_byte_key: n must be positive";
  let keys = List.init n (fun i -> Printf.sprintf "KEY%d" i) in
  let classes = [ "LC,HI"; "LC,LI"; "HC,LI" ] @ keys in
  let flows =
    [ ("LC,HI", "LC,LI"); ("LC,LI", "HC,LI"); ("LC,HI", "HC,LI") ]
    @ List.concat_map (fun k -> [ ("LC,HI", k); (k, "HC,LI") ]) keys
  in
  make_exn ~classes ~flows
