lib/core/taint.ml: Array Char Format Int32 Lattice
