lib/core/lattice.mli: Format
