lib/core/lattice.ml: Array Buffer Format Hashtbl List Printf
