lib/core/policy.ml: Format Lattice List Option Printf String
