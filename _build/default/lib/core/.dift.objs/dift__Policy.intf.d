lib/core/policy.mli: Format Lattice
