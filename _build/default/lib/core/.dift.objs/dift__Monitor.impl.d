lib/core/monitor.ml: Format Lattice List Violation
