lib/core/violation.mli: Format Lattice
