lib/core/monitor.mli: Format Lattice Violation
