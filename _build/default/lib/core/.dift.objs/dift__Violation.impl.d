lib/core/violation.ml: Format Lattice
