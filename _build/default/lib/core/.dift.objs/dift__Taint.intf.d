lib/core/taint.mli: Format Lattice
