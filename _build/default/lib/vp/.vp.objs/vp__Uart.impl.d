lib/vp/uart.ml: Buffer Char Dift Env List Printf Queue String Sysc Tlm
