lib/vp/watchdog.mli: Dift Env Tlm
