lib/vp/aes_periph.ml: Bytes Char Crypto Dift Env Printf Sysc Tlm
