lib/vp/can.ml: Bytes Char Dift Env List Printf Queue String Sysc Tlm
