lib/vp/soc.ml: Aes_periph Bytes Can Clint Dift Dma Env Gpio List Memory Plic Rv32 Rv32_asm Sensor Sysc Tlm Uart Watchdog
