lib/vp/clint.ml: Env Sysc Tlm
