lib/vp/clint.mli: Env Sysc Tlm
