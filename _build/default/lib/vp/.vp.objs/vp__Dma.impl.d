lib/vp/dma.ml: Env Sysc Tlm
