lib/vp/can.mli: Dift Env Tlm
