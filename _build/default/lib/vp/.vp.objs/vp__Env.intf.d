lib/vp/env.mli: Dift Sysc
