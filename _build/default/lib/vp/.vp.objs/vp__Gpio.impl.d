lib/vp/gpio.ml: Dift Env Printf Sysc Tlm
