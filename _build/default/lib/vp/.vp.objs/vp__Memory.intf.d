lib/vp/memory.mli: Bytes Dift Env Tlm
