lib/vp/uart.mli: Dift Env Tlm
