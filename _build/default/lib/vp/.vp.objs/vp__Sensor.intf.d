lib/vp/sensor.mli: Dift Env Sysc Tlm
