lib/vp/dma.mli: Env Tlm
