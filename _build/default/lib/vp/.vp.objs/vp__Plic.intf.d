lib/vp/plic.mli: Env Tlm
