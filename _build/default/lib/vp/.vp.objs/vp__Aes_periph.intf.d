lib/vp/aes_periph.mli: Dift Env Sysc Tlm
