lib/vp/soc.mli: Aes_periph Can Clint Dift Dma Env Gpio Memory Plic Rv32 Rv32_asm Sensor Sysc Tlm Uart Watchdog
