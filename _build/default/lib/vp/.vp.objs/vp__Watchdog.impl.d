lib/vp/watchdog.ml: Dift Env Sysc Tlm
