lib/vp/gpio.mli: Dift Env Tlm
