lib/vp/plic.ml: Env Sysc Tlm
