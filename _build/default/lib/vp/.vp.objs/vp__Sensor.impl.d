lib/vp/sensor.ml: Bytes Char Dift Env Sysc Tlm
