lib/vp/env.ml: Dift Printf Sysc
