lib/vp/memory.ml: Bytes Char Env Int32 List Sysc Tlm
