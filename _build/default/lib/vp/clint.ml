type t = {
  env : Env.t;
  name : string;
  tick : Sysc.Time.t;
  mutable mtimecmp : int;  (* 64-bit value in an OCaml int *)
  mutable msip : bool;
  mutable timer_irq : bool -> unit;
  mutable soft_irq : bool -> unit;
  wake : Sysc.Kernel.event;
  latency : Sysc.Time.t;
}

let create env ~name ?(tick = Sysc.Time.us 1) () =
  {
    env;
    name;
    tick;
    mtimecmp = max_int;
    msip = false;
    timer_irq = (fun _ -> ());
    soft_irq = (fun _ -> ());
    wake = Sysc.Kernel.create_event env.Env.kernel (name ^ ".wake");
    latency = Sysc.Time.ns 20;
  }

let set_timer_irq_callback c fn = c.timer_irq <- fn
let set_soft_irq_callback c fn = c.soft_irq <- fn
let mtime c = Sysc.Kernel.now c.env.Env.kernel / c.tick

let update_timer c =
  let pending = mtime c >= c.mtimecmp in
  c.timer_irq pending;
  (* If the deadline is in the future, make sure we wake then. A stale
     wakeup (after mtimecmp moved) is harmless: the condition is simply
     re-evaluated. *)
  if not pending then begin
    let delta_ticks = c.mtimecmp - mtime c in
    (* Cap to avoid overflow on the "infinitely far" reset value. *)
    if delta_ticks < 1_000_000_000 then
      Sysc.Kernel.notify_after c.wake (delta_ticks * c.tick)
  end

let start c =
  Sysc.Kernel.spawn c.env.Env.kernel ~name:(c.name ^ ".timer") (fun () ->
      while not (Sysc.Kernel.stopped c.env.Env.kernel) do
        Sysc.Kernel.wait_event c.wake;
        update_timer c
      done)

let reg_read c addr =
  let t = mtime c in
  match addr with
  | 0x0000 -> if c.msip then 1 else 0
  | 0x4000 -> c.mtimecmp land 0xffffffff
  | 0x4004 -> (c.mtimecmp lsr 32) land 0xffffffff
  | 0xbff8 -> t land 0xffffffff
  | 0xbffc -> (t lsr 32) land 0xffffffff
  | _ -> raise Not_found

let reg_write c addr v =
  match addr with
  | 0x0000 ->
      c.msip <- v land 1 <> 0;
      c.soft_irq c.msip
  | 0x4000 ->
      c.mtimecmp <- c.mtimecmp land lnot 0xffffffff lor v;
      update_timer c
  | 0x4004 ->
      c.mtimecmp <- c.mtimecmp land 0xffffffff lor (v lsl 32);
      update_timer c
  | 0xbff8 | 0xbffc -> ()
  | _ -> raise Not_found

let transport c (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let addr = p.Tlm.Payload.addr in
  (try
     (match p.Tlm.Payload.cmd with
     | Tlm.Payload.Read ->
         let v = reg_read c addr in
         for i = 0 to len - 1 do
           Tlm.Payload.set_byte p i ((v lsr (8 * i)) land 0xff)
         done;
         Tlm.Payload.set_all_tags p c.env.Env.pub
     | Tlm.Payload.Write ->
         let v = ref 0 in
         for i = len - 1 downto 0 do
           v := (!v lsl 8) lor Tlm.Payload.get_byte p i
         done;
         reg_write c addr !v);
     p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
   with Not_found -> p.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay c.latency

let socket c = Tlm.Socket.target ~name:c.name (transport c)
