(** Core-local interruptor (CLINT): machine timer and software interrupts.

    Register map (as in the SiFive/RISC-V VP convention):
    - [0x0000] MSIP: bit 0 raises the machine software interrupt;
    - [0x4000] / [0x4004] MTIMECMP low/high;
    - [0xbff8] / [0xbffc] MTIME low/high (read-only; derived from simulation
      time, one tick per [tick] of simulated time, default 1 us). *)

type t

val create : Env.t -> name:string -> ?tick:Sysc.Time.t -> unit -> t

val socket : t -> Tlm.Socket.target

val set_timer_irq_callback : t -> (bool -> unit) -> unit
(** Level callback for MTIP (wired to {!Rv32.Csr.bit_mti}). *)

val set_soft_irq_callback : t -> (bool -> unit) -> unit
(** Level callback for MSIP. *)

val start : t -> unit
(** Spawn the timer-compare process. *)

val mtime : t -> int
(** Current MTIME value. *)
