open Insn

let fits_signed ~width v =
  v >= -(1 lsl (width - 1)) && v < 1 lsl (width - 1)

let check_reg r =
  if r < 0 || r > 31 then invalid_arg (Printf.sprintf "Encode: bad register x%d" r)

let check_imm ~width ~what v =
  if not (fits_signed ~width v) then
    invalid_arg (Printf.sprintf "Encode: %s %d does not fit in %d bits" what v width)

let r_type ~funct7 ~funct3 ~opcode rd rs1 rs2 =
  check_reg rd;
  check_reg rs1;
  check_reg rs2;
  (funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor opcode

let i_type ~funct3 ~opcode rd rs1 imm =
  check_reg rd;
  check_reg rs1;
  check_imm ~width:12 ~what:"I-immediate" imm;
  ((imm land 0xfff) lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
  lor opcode

let shift ~funct7 ~funct3 rd rs1 shamt =
  check_reg rd;
  check_reg rs1;
  if shamt < 0 || shamt > 31 then
    invalid_arg (Printf.sprintf "Encode: shift amount %d out of range" shamt);
  (funct7 lsl 25) lor (shamt lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (rd lsl 7) lor 0x13

let s_type ~funct3 rs1 rs2 imm =
  check_reg rs1;
  check_reg rs2;
  check_imm ~width:12 ~what:"S-immediate" imm;
  let imm = imm land 0xfff in
  ((imm lsr 5) lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor ((imm land 0x1f) lsl 7) lor 0x23

let b_type ~funct3 rs1 rs2 off =
  check_reg rs1;
  check_reg rs2;
  if off land 1 <> 0 then invalid_arg "Encode: odd branch offset";
  check_imm ~width:13 ~what:"branch offset" off;
  let imm = off land 0x1fff in
  ((imm lsr 12) lsl 31)
  lor (((imm lsr 5) land 0x3f) lsl 25)
  lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
  lor (((imm lsr 1) land 0xf) lsl 8)
  lor (((imm lsr 11) land 0x1) lsl 7)
  lor 0x63

let u_type ~opcode rd imm =
  check_reg rd;
  if imm land 0xfff <> 0 || imm land 0xffffffff <> imm then
    invalid_arg (Printf.sprintf "Encode: bad U-immediate 0x%x" imm);
  imm lor (rd lsl 7) lor opcode

let j_type rd off =
  check_reg rd;
  if off land 1 <> 0 then invalid_arg "Encode: odd jump offset";
  check_imm ~width:21 ~what:"jump offset" off;
  let imm = off land 0x1fffff in
  ((imm lsr 20) lsl 31)
  lor (((imm lsr 1) land 0x3ff) lsl 21)
  lor (((imm lsr 11) land 0x1) lsl 20)
  lor (((imm lsr 12) land 0xff) lsl 12)
  lor (rd lsl 7) lor 0x6f

let csr_insn ~funct3 rd rs1_or_zimm csr =
  check_reg rd;
  check_reg rs1_or_zimm;
  if csr < 0 || csr > 0xfff then invalid_arg "Encode: CSR number out of range";
  (csr lsl 20) lor (rs1_or_zimm lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
  lor 0x73

let encode = function
  | LUI (rd, imm) -> u_type ~opcode:0x37 rd imm
  | AUIPC (rd, imm) -> u_type ~opcode:0x17 rd imm
  | JAL (rd, off) -> j_type rd off
  | JALR (rd, rs1, imm) -> i_type ~funct3:0 ~opcode:0x67 rd rs1 imm
  | BEQ (rs1, rs2, off) -> b_type ~funct3:0 rs1 rs2 off
  | BNE (rs1, rs2, off) -> b_type ~funct3:1 rs1 rs2 off
  | BLT (rs1, rs2, off) -> b_type ~funct3:4 rs1 rs2 off
  | BGE (rs1, rs2, off) -> b_type ~funct3:5 rs1 rs2 off
  | BLTU (rs1, rs2, off) -> b_type ~funct3:6 rs1 rs2 off
  | BGEU (rs1, rs2, off) -> b_type ~funct3:7 rs1 rs2 off
  | LB (rd, rs1, off) -> i_type ~funct3:0 ~opcode:0x03 rd rs1 off
  | LH (rd, rs1, off) -> i_type ~funct3:1 ~opcode:0x03 rd rs1 off
  | LW (rd, rs1, off) -> i_type ~funct3:2 ~opcode:0x03 rd rs1 off
  | LBU (rd, rs1, off) -> i_type ~funct3:4 ~opcode:0x03 rd rs1 off
  | LHU (rd, rs1, off) -> i_type ~funct3:5 ~opcode:0x03 rd rs1 off
  | SB (rs1, rs2, off) -> s_type ~funct3:0 rs1 rs2 off
  | SH (rs1, rs2, off) -> s_type ~funct3:1 rs1 rs2 off
  | SW (rs1, rs2, off) -> s_type ~funct3:2 rs1 rs2 off
  | ADDI (rd, rs1, imm) -> i_type ~funct3:0 ~opcode:0x13 rd rs1 imm
  | SLTI (rd, rs1, imm) -> i_type ~funct3:2 ~opcode:0x13 rd rs1 imm
  | SLTIU (rd, rs1, imm) -> i_type ~funct3:3 ~opcode:0x13 rd rs1 imm
  | XORI (rd, rs1, imm) -> i_type ~funct3:4 ~opcode:0x13 rd rs1 imm
  | ORI (rd, rs1, imm) -> i_type ~funct3:6 ~opcode:0x13 rd rs1 imm
  | ANDI (rd, rs1, imm) -> i_type ~funct3:7 ~opcode:0x13 rd rs1 imm
  | SLLI (rd, rs1, shamt) -> shift ~funct7:0x00 ~funct3:1 rd rs1 shamt
  | SRLI (rd, rs1, shamt) -> shift ~funct7:0x00 ~funct3:5 rd rs1 shamt
  | SRAI (rd, rs1, shamt) -> shift ~funct7:0x20 ~funct3:5 rd rs1 shamt
  | ADD (rd, rs1, rs2) -> r_type ~funct7:0x00 ~funct3:0 ~opcode:0x33 rd rs1 rs2
  | SUB (rd, rs1, rs2) -> r_type ~funct7:0x20 ~funct3:0 ~opcode:0x33 rd rs1 rs2
  | SLL (rd, rs1, rs2) -> r_type ~funct7:0x00 ~funct3:1 ~opcode:0x33 rd rs1 rs2
  | SLT (rd, rs1, rs2) -> r_type ~funct7:0x00 ~funct3:2 ~opcode:0x33 rd rs1 rs2
  | SLTU (rd, rs1, rs2) -> r_type ~funct7:0x00 ~funct3:3 ~opcode:0x33 rd rs1 rs2
  | XOR (rd, rs1, rs2) -> r_type ~funct7:0x00 ~funct3:4 ~opcode:0x33 rd rs1 rs2
  | SRL (rd, rs1, rs2) -> r_type ~funct7:0x00 ~funct3:5 ~opcode:0x33 rd rs1 rs2
  | SRA (rd, rs1, rs2) -> r_type ~funct7:0x20 ~funct3:5 ~opcode:0x33 rd rs1 rs2
  | OR (rd, rs1, rs2) -> r_type ~funct7:0x00 ~funct3:6 ~opcode:0x33 rd rs1 rs2
  | AND (rd, rs1, rs2) -> r_type ~funct7:0x00 ~funct3:7 ~opcode:0x33 rd rs1 rs2
  | MUL (rd, rs1, rs2) -> r_type ~funct7:0x01 ~funct3:0 ~opcode:0x33 rd rs1 rs2
  | MULH (rd, rs1, rs2) -> r_type ~funct7:0x01 ~funct3:1 ~opcode:0x33 rd rs1 rs2
  | MULHSU (rd, rs1, rs2) ->
      r_type ~funct7:0x01 ~funct3:2 ~opcode:0x33 rd rs1 rs2
  | MULHU (rd, rs1, rs2) -> r_type ~funct7:0x01 ~funct3:3 ~opcode:0x33 rd rs1 rs2
  | DIV (rd, rs1, rs2) -> r_type ~funct7:0x01 ~funct3:4 ~opcode:0x33 rd rs1 rs2
  | DIVU (rd, rs1, rs2) -> r_type ~funct7:0x01 ~funct3:5 ~opcode:0x33 rd rs1 rs2
  | REM (rd, rs1, rs2) -> r_type ~funct7:0x01 ~funct3:6 ~opcode:0x33 rd rs1 rs2
  | REMU (rd, rs1, rs2) -> r_type ~funct7:0x01 ~funct3:7 ~opcode:0x33 rd rs1 rs2
  | FENCE -> 0x0000000f
  | ECALL -> 0x00000073
  | EBREAK -> 0x00100073
  | MRET -> 0x30200073
  | WFI -> 0x10500073
  | CSRRW (rd, rs1, csr) -> csr_insn ~funct3:1 rd rs1 csr
  | CSRRS (rd, rs1, csr) -> csr_insn ~funct3:2 rd rs1 csr
  | CSRRC (rd, rs1, csr) -> csr_insn ~funct3:3 rd rs1 csr
  | CSRRWI (rd, zimm, csr) -> csr_insn ~funct3:5 rd zimm csr
  | CSRRSI (rd, zimm, csr) -> csr_insn ~funct3:6 rd zimm csr
  | CSRRCI (rd, zimm, csr) -> csr_insn ~funct3:7 rd zimm csr
  | ILLEGAL w -> w land 0xffffffff
