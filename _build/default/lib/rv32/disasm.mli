(** Textual disassembly of decoded instructions, GNU-style mnemonics. *)

val insn : Insn.t -> string
(** e.g. [insn (Insn.ADDI (2, 2, -16)) = "addi sp, sp, -16"]. *)

val word : int -> string
(** Decode and disassemble a raw instruction word. *)
