lib/rv32/encode.ml: Insn Printf
