lib/rv32/disasm.ml: Decode Insn Printf Reg
