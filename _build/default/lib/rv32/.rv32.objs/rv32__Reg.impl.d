lib/rv32/reg.ml: Array Printf String
