lib/rv32/core.ml: Array Bus_if Csr Decode Dift Hashtbl Insn Int64 Printf Reg Sysc
