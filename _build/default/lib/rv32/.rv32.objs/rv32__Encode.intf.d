lib/rv32/encode.mli: Insn
