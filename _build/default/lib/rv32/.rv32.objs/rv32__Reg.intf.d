lib/rv32/reg.mli:
