lib/rv32/bus_if.mli: Bytes Dift Sysc Tlm
