lib/rv32/insn.ml:
