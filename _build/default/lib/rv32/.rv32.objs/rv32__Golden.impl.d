lib/rv32/golden.ml: Array Bytes Decode Insn Int32 Int64 String
