lib/rv32/bus_if.ml: Bytes Char Dift Int32 Printf Sysc Tlm
