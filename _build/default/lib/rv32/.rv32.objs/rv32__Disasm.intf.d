lib/rv32/disasm.mli: Insn
