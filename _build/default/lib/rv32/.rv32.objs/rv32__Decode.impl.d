lib/rv32/decode.ml: Insn
