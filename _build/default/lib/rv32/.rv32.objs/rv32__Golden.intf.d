lib/rv32/golden.mli:
