lib/rv32/csr.mli:
