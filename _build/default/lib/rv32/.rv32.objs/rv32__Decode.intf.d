lib/rv32/decode.mli: Insn
