lib/rv32/csr.ml:
