lib/rv32/core.mli: Bus_if Csr Dift Insn Reg Sysc
