lib/rv32/insn.mli:
