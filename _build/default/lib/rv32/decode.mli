(** RV32IM(+Zicsr) instruction decoder. *)

val decode : int -> Insn.t
(** [decode word] decodes a 32-bit instruction word (given as an unsigned
    OCaml int). Undecodable words yield [Insn.ILLEGAL word]; they never
    raise. *)

val sext : width:int -> int -> int
(** Sign-extend the low [width] bits of a value (exposed for the assembler
    and tests). *)
