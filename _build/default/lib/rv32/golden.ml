type t = {
  mem_base : int;
  mem : Bytes.t;
  regs : int array;
  mutable pc : int;
}

type stop = Exited of int | Trap of int | Limit

let create ~mem_base ~mem_size =
  { mem_base; mem = Bytes.make mem_size '\000'; regs = Array.make 32 0; pc = mem_base }

let load t ~addr s =
  if addr < t.mem_base || addr + String.length s > t.mem_base + Bytes.length t.mem
  then invalid_arg "Golden.load: out of range";
  Bytes.blit_string s 0 t.mem (addr - t.mem_base) (String.length s)

let set_pc t v = t.pc <- v land 0xffffffff
let set_reg t r v = if r <> 0 then t.regs.(r) <- v land 0xffffffff
let reg t r = t.regs.(r)
let pc t = t.pc
let mem_byte t addr = Bytes.get_uint8 t.mem (addr - t.mem_base)

let u32 v = v land 0xffffffff
let s32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

exception Stop of stop

let in_range t addr width =
  addr >= t.mem_base && addr + width <= t.mem_base + Bytes.length t.mem

let load_v t width addr =
  if not (in_range t addr width) then raise (Stop (Trap 5));
  let off = addr - t.mem_base in
  match width with
  | 1 -> Bytes.get_uint8 t.mem off
  | 2 -> Bytes.get_uint16_le t.mem off
  | _ -> Int32.to_int (Bytes.get_int32_le t.mem off) land 0xffffffff

let store_v t width addr v =
  if not (in_range t addr width) then raise (Stop (Trap 7));
  let off = addr - t.mem_base in
  match width with
  | 1 -> Bytes.set_uint8 t.mem off (v land 0xff)
  | 2 -> Bytes.set_uint16_le t.mem off (v land 0xffff)
  | _ -> Bytes.set_int32_le t.mem off (Int32.of_int v)

let step t =
  let open Insn in
  let pc0 = t.pc in
  if not (in_range t pc0 4) then raise (Stop (Trap 1));
  let word = load_v t 4 pc0 in
  let r = t.regs in
  let wr rd v = if rd <> 0 then r.(rd) <- u32 v in
  t.pc <- u32 (pc0 + 4);
  match Decode.decode word with
  | LUI (rd, imm) -> wr rd imm
  | AUIPC (rd, imm) -> wr rd (pc0 + imm)
  | JAL (rd, off) ->
      wr rd (pc0 + 4);
      t.pc <- u32 (pc0 + off)
  | JALR (rd, rs1, off) ->
      let target = u32 (r.(rs1) + off) land lnot 1 in
      wr rd (pc0 + 4);
      t.pc <- target
  | BEQ (a, b, off) -> if r.(a) = r.(b) then t.pc <- u32 (pc0 + off)
  | BNE (a, b, off) -> if r.(a) <> r.(b) then t.pc <- u32 (pc0 + off)
  | BLT (a, b, off) -> if s32 r.(a) < s32 r.(b) then t.pc <- u32 (pc0 + off)
  | BGE (a, b, off) -> if s32 r.(a) >= s32 r.(b) then t.pc <- u32 (pc0 + off)
  | BLTU (a, b, off) -> if r.(a) < r.(b) then t.pc <- u32 (pc0 + off)
  | BGEU (a, b, off) -> if r.(a) >= r.(b) then t.pc <- u32 (pc0 + off)
  | LB (rd, rs1, off) ->
      let v = load_v t 1 (u32 (r.(rs1) + off)) in
      wr rd (if v land 0x80 <> 0 then v lor 0xffffff00 else v)
  | LH (rd, rs1, off) ->
      let v = load_v t 2 (u32 (r.(rs1) + off)) in
      wr rd (if v land 0x8000 <> 0 then v lor 0xffff0000 else v)
  | LW (rd, rs1, off) -> wr rd (load_v t 4 (u32 (r.(rs1) + off)))
  | LBU (rd, rs1, off) -> wr rd (load_v t 1 (u32 (r.(rs1) + off)))
  | LHU (rd, rs1, off) -> wr rd (load_v t 2 (u32 (r.(rs1) + off)))
  | SB (rs1, rs2, off) -> store_v t 1 (u32 (r.(rs1) + off)) r.(rs2)
  | SH (rs1, rs2, off) -> store_v t 2 (u32 (r.(rs1) + off)) r.(rs2)
  | SW (rs1, rs2, off) -> store_v t 4 (u32 (r.(rs1) + off)) r.(rs2)
  | ADDI (rd, rs1, imm) -> wr rd (r.(rs1) + imm)
  | SLTI (rd, rs1, imm) -> wr rd (if s32 r.(rs1) < imm then 1 else 0)
  | SLTIU (rd, rs1, imm) -> wr rd (if r.(rs1) < u32 imm then 1 else 0)
  | XORI (rd, rs1, imm) -> wr rd (r.(rs1) lxor u32 imm)
  | ORI (rd, rs1, imm) -> wr rd (r.(rs1) lor u32 imm)
  | ANDI (rd, rs1, imm) -> wr rd (r.(rs1) land u32 imm)
  | SLLI (rd, rs1, sh) -> wr rd (r.(rs1) lsl sh)
  | SRLI (rd, rs1, sh) -> wr rd (r.(rs1) lsr sh)
  | SRAI (rd, rs1, sh) -> wr rd (s32 r.(rs1) asr sh)
  | ADD (rd, a, b) -> wr rd (r.(a) + r.(b))
  | SUB (rd, a, b) -> wr rd (r.(a) - r.(b))
  | SLL (rd, a, b) -> wr rd (r.(a) lsl (r.(b) land 31))
  | SLT (rd, a, b) -> wr rd (if s32 r.(a) < s32 r.(b) then 1 else 0)
  | SLTU (rd, a, b) -> wr rd (if r.(a) < r.(b) then 1 else 0)
  | XOR (rd, a, b) -> wr rd (r.(a) lxor r.(b))
  | SRL (rd, a, b) -> wr rd (r.(a) lsr (r.(b) land 31))
  | SRA (rd, a, b) -> wr rd (s32 r.(a) asr (r.(b) land 31))
  | OR (rd, a, b) -> wr rd (r.(a) lor r.(b))
  | AND (rd, a, b) -> wr rd (r.(a) land r.(b))
  | MUL (rd, a, b) ->
      wr rd (Int64.to_int (Int64.mul (Int64.of_int r.(a)) (Int64.of_int r.(b))))
  | MULH (rd, a, b) ->
      wr rd
        (Int64.to_int
           (Int64.shift_right
              (Int64.mul (Int64.of_int (s32 r.(a))) (Int64.of_int (s32 r.(b))))
              32))
  | MULHSU (rd, a, b) ->
      wr rd
        (Int64.to_int
           (Int64.shift_right
              (Int64.mul (Int64.of_int (s32 r.(a))) (Int64.of_int r.(b)))
              32))
  | MULHU (rd, a, b) ->
      wr rd
        (Int64.to_int
           (Int64.shift_right_logical
              (Int64.mul (Int64.of_int r.(a)) (Int64.of_int r.(b)))
              32))
  | DIV (rd, a, b) ->
      let x = s32 r.(a) and y = s32 r.(b) in
      wr rd
        (if y = 0 then -1
         else if x = -0x80000000 && y = -1 then -0x80000000
         else x / y)
  | DIVU (rd, a, b) -> wr rd (if r.(b) = 0 then 0xffffffff else r.(a) / r.(b))
  | REM (rd, a, b) ->
      let x = s32 r.(a) and y = s32 r.(b) in
      wr rd (if y = 0 then x else if x = -0x80000000 && y = -1 then 0 else x mod y)
  | REMU (rd, a, b) -> wr rd (if r.(b) = 0 then r.(a) else r.(a) mod r.(b))
  | FENCE -> ()
  | ECALL ->
      if r.(17) = 93 then raise (Stop (Exited (s32 r.(10))))
      else raise (Stop (Trap 11))
  | EBREAK -> raise (Stop (Trap 3))
  | MRET | WFI -> raise (Stop (Trap 2))
  | CSRRW _ | CSRRS _ | CSRRC _ | CSRRWI _ | CSRRSI _ | CSRRCI _ ->
      raise (Stop (Trap 2))
  | ILLEGAL _ -> raise (Stop (Trap 2))

let run t ~max_insns =
  let n = ref 0 in
  try
    while !n < max_insns do
      step t;
      incr n
    done;
    (Limit, !n)
  with Stop s -> (s, !n + 1)
