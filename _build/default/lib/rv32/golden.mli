(** A golden-model RV32IM interpreter: an independent, deliberately naive
    re-implementation of the ISA semantics over a flat memory image, with
    no taint, no kernel, no peripherals and no decode caching.

    Used purely for differential verification of the production {!Core}
    (cf. the coverage-guided ISS-fuzzing work the paper cites): the same
    program run here and on the VP must produce identical registers and
    memory. Traps terminate execution (this model has no CSRs beyond the
    program counter). *)

type t

val create : mem_base:int -> mem_size:int -> t

val load : t -> addr:int -> string -> unit
(** Copy bytes into memory. Raises [Invalid_argument] out of range. *)

val set_pc : t -> int -> unit
val set_reg : t -> int -> int -> unit
val reg : t -> int -> int
val pc : t -> int
val mem_byte : t -> int -> int

type stop =
  | Exited of int  (** The exit ecall (a7 = 93). *)
  | Trap of int  (** Any other trap; the would-be mcause. *)
  | Limit  (** Instruction budget exhausted. *)

val run : t -> max_insns:int -> stop * int
(** Execute until a stopping condition; returns the reason and the number
    of instructions retired. *)
