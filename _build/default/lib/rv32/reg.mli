(** RV32 integer register numbers and ABI names. *)

type t = int
(** Register index 0..31. *)

val zero : t
val ra : t
val sp : t
val gp : t
val tp : t
val t0 : t
val t1 : t
val t2 : t
val s0 : t
val fp : t
(** Alias of {!s0}. *)

val s1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val a6 : t
val a7 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val s8 : t
val s9 : t
val s10 : t
val s11 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t

val name : t -> string
(** ABI name, e.g. [name 2 = "sp"]. Raises [Invalid_argument] if out of
    range. *)

val of_name : string -> t option
(** Accepts both ABI names ("sp", "fp") and numeric names ("x2"). *)
