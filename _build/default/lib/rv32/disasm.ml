open Insn

let r = Reg.name

let rrr m rd rs1 rs2 = Printf.sprintf "%s %s, %s, %s" m (r rd) (r rs1) (r rs2)
let rri m rd rs1 imm = Printf.sprintf "%s %s, %s, %d" m (r rd) (r rs1) imm
let mem m rd rs1 off = Printf.sprintf "%s %s, %d(%s)" m (r rd) off (r rs1)
let bra m rs1 rs2 off = Printf.sprintf "%s %s, %s, %d" m (r rs1) (r rs2) off
let csr_name n = Printf.sprintf "0x%03x" n

let insn = function
  | LUI (rd, imm) -> Printf.sprintf "lui %s, 0x%x" (r rd) (imm lsr 12)
  | AUIPC (rd, imm) -> Printf.sprintf "auipc %s, 0x%x" (r rd) (imm lsr 12)
  | JAL (rd, off) -> Printf.sprintf "jal %s, %d" (r rd) off
  | JALR (rd, rs1, off) -> mem "jalr" rd rs1 off
  | BEQ (a, b, off) -> bra "beq" a b off
  | BNE (a, b, off) -> bra "bne" a b off
  | BLT (a, b, off) -> bra "blt" a b off
  | BGE (a, b, off) -> bra "bge" a b off
  | BLTU (a, b, off) -> bra "bltu" a b off
  | BGEU (a, b, off) -> bra "bgeu" a b off
  | LB (rd, rs1, off) -> mem "lb" rd rs1 off
  | LH (rd, rs1, off) -> mem "lh" rd rs1 off
  | LW (rd, rs1, off) -> mem "lw" rd rs1 off
  | LBU (rd, rs1, off) -> mem "lbu" rd rs1 off
  | LHU (rd, rs1, off) -> mem "lhu" rd rs1 off
  | SB (rs1, rs2, off) -> mem "sb" rs2 rs1 off
  | SH (rs1, rs2, off) -> mem "sh" rs2 rs1 off
  | SW (rs1, rs2, off) -> mem "sw" rs2 rs1 off
  | ADDI (rd, rs1, imm) -> rri "addi" rd rs1 imm
  | SLTI (rd, rs1, imm) -> rri "slti" rd rs1 imm
  | SLTIU (rd, rs1, imm) -> rri "sltiu" rd rs1 imm
  | XORI (rd, rs1, imm) -> rri "xori" rd rs1 imm
  | ORI (rd, rs1, imm) -> rri "ori" rd rs1 imm
  | ANDI (rd, rs1, imm) -> rri "andi" rd rs1 imm
  | SLLI (rd, rs1, sh) -> rri "slli" rd rs1 sh
  | SRLI (rd, rs1, sh) -> rri "srli" rd rs1 sh
  | SRAI (rd, rs1, sh) -> rri "srai" rd rs1 sh
  | ADD (rd, a, b) -> rrr "add" rd a b
  | SUB (rd, a, b) -> rrr "sub" rd a b
  | SLL (rd, a, b) -> rrr "sll" rd a b
  | SLT (rd, a, b) -> rrr "slt" rd a b
  | SLTU (rd, a, b) -> rrr "sltu" rd a b
  | XOR (rd, a, b) -> rrr "xor" rd a b
  | SRL (rd, a, b) -> rrr "srl" rd a b
  | SRA (rd, a, b) -> rrr "sra" rd a b
  | OR (rd, a, b) -> rrr "or" rd a b
  | AND (rd, a, b) -> rrr "and" rd a b
  | MUL (rd, a, b) -> rrr "mul" rd a b
  | MULH (rd, a, b) -> rrr "mulh" rd a b
  | MULHSU (rd, a, b) -> rrr "mulhsu" rd a b
  | MULHU (rd, a, b) -> rrr "mulhu" rd a b
  | DIV (rd, a, b) -> rrr "div" rd a b
  | DIVU (rd, a, b) -> rrr "divu" rd a b
  | REM (rd, a, b) -> rrr "rem" rd a b
  | REMU (rd, a, b) -> rrr "remu" rd a b
  | FENCE -> "fence"
  | ECALL -> "ecall"
  | EBREAK -> "ebreak"
  | MRET -> "mret"
  | WFI -> "wfi"
  | CSRRW (rd, rs1, n) ->
      Printf.sprintf "csrrw %s, %s, %s" (r rd) (csr_name n) (r rs1)
  | CSRRS (rd, rs1, n) ->
      Printf.sprintf "csrrs %s, %s, %s" (r rd) (csr_name n) (r rs1)
  | CSRRC (rd, rs1, n) ->
      Printf.sprintf "csrrc %s, %s, %s" (r rd) (csr_name n) (r rs1)
  | CSRRWI (rd, z, n) ->
      Printf.sprintf "csrrwi %s, %s, %d" (r rd) (csr_name n) z
  | CSRRSI (rd, z, n) ->
      Printf.sprintf "csrrsi %s, %s, %d" (r rd) (csr_name n) z
  | CSRRCI (rd, z, n) ->
      Printf.sprintf "csrrci %s, %s, %d" (r rd) (csr_name n) z
  | ILLEGAL w -> Printf.sprintf ".word 0x%08x" w

let word w = insn (Decode.decode w)
