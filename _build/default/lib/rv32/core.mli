(** The RV32IM CPU core, functorised over the taint-tracking mode.

    [Make (struct let tracking = false end)] is the plain VP flavour;
    [Make (struct let tracking = true end)] is VP+ with the DIFT engine
    woven into the execute loop, reproducing the paper's three
    modifications: tainted register/CSR types, execution-clearance checks,
    and a tainted memory interface (Section V-B).

    Taint semantics (VP+):
    - ALU results carry the LUB of the source-register tags and the
      instruction's own tag (immediates inherit the code's class);
    - loads carry the LUB of the loaded bytes' tags; stores tag every
      written byte with the source register's tag;
    - execution clearance: the fetched word's tag is checked against the
      fetch-unit clearance, branch conditions / indirect-jump targets /
      trap-vector tags against the branch clearance, and load/store base
      addresses against the memory-address clearance (Section V-B2);
    - stores into policy-protected regions check the data tag against the
      region's required class. *)

exception Fatal_trap of { cause : int; pc : int; tval : int }
(** A synchronous trap occurred while [mtvec] is 0 (no handler installed),
    or a trap was raised from within the trap path. *)

type exit_reason =
  | Running
  | Exited of int  (** Firmware called the exit ecall (a7=93, code in a0). *)
  | Breakpoint  (** [ebreak] executed. *)
  | Insn_limit  (** The configured instruction budget was exhausted. *)

module type MODE = sig
  val tracking : bool
end

module type S = sig
  type t

  val create :
    kernel:Sysc.Kernel.t ->
    bus:Bus_if.t ->
    policy:Dift.Policy.t ->
    monitor:Dift.Monitor.t ->
    ?cycle_time:Sysc.Time.t ->
    ?quantum:int ->
    pc:int ->
    unit ->
    t
  (** [cycle_time] is the modelled cost of one instruction (default 10 ns);
      [quantum] the number of local cycles the core runs ahead before
      synchronising with the kernel (default 1000, loosely-timed style). *)

  (** {1 Architectural state} *)

  val pc : t -> int
  val set_pc : t -> int -> unit
  val get_reg : t -> Reg.t -> int
  val get_reg_tag : t -> Reg.t -> Dift.Lattice.tag
  val set_reg : t -> Reg.t -> int -> unit
  (** Sets the register with the lattice-bottom (public/trusted) tag. *)

  val set_reg_tagged : t -> Reg.t -> int -> Dift.Lattice.tag -> unit
  val csr : t -> Csr.t
  val instret : t -> int

  (** {1 Interrupt lines (driven by CLINT / PLIC)} *)

  val set_irq : t -> bit:int -> bool -> unit
  (** Set or clear an [mip] bit ({!Csr.bit_mti}, {!Csr.bit_msi},
      {!Csr.bit_mei}) and wake the core if it is in [wfi]. *)

  (** {1 Execution} *)

  val step : t -> unit
  (** Execute one instruction (taking a pending enabled interrupt first).
      Must run inside a kernel process if firmware touches TLM peripherals
      whose transport suspends, or uses [wfi]. *)

  val spawn_thread : ?stop_kernel_on_halt:bool -> t -> unit
  (** Register the fetch-decode-execute loop as a kernel process (default
      name ["cpu"]). When the core halts and [stop_kernel_on_halt] is true
      (default), the whole simulation stops. *)

  val set_max_instructions : t -> int -> unit
  val exit_reason : t -> exit_reason
  val halted : t -> bool

  val halt : t -> exit_reason -> unit
  (** Force the core to stop (used by peripherals/tests). *)

  val set_trace : t -> (int -> Insn.t -> unit) option -> unit
  (** Install (or remove) a per-instruction hook, called with the pc and
      decoded instruction before execution (tracing / coverage). *)
end

module Make (_ : MODE) : S

module Vp : S
(** The plain VP core. *)

module Vp_dift : S
(** The VP+ core with DIFT enabled. *)
