(** RV32 instruction encoder (inverse of {!Decode}); used by the assembler
    and by encode/decode round-trip tests.

    Raises [Invalid_argument] when a register index, immediate, or offset is
    out of range for the encoding (e.g. a branch offset that is odd or does
    not fit in 13 bits). [Insn.ILLEGAL w] encodes back to [w]. *)

val encode : Insn.t -> int
(** The 32-bit instruction word, as an unsigned OCaml int. *)

val fits_signed : width:int -> int -> bool
(** Does the value fit in [width] bits as a two's-complement integer? *)
