# leak.s — a classified byte reaches the UART.
# run:   dune exec bin/vp_run.exe -- examples/asm/leak.s
# catch: dune exec bin/vp_run.exe -- examples/asm/leak.s --policy confidentiality

    la a0, banner
    call puts
    la t0, secret
    lbu t1, 0(t0)       # load a secret byte...
    li t2, 0x10000000
    sb t1, 0(t2)        # ...and ship it out (violation under the policy)
    li a7, 93
    li a0, 0
    ecall

puts:
    li t6, 0x10000000
puts_loop:
    lbu t5, 0(a0)
    beqz t5, puts_done
    sb t5, 0(t6)
    addi a0, a0, 1
    j puts_loop
puts_done:
    ret

banner:
    .asciz "about to leak...\n"
    .align 2
secret:
    .ascii "HUNTER2HUNTER2!!"
secret_end:
