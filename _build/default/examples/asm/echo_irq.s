# echo_irq.s — interrupt-driven UART echo: every received byte is echoed
# back; a NUL byte exits.
# run: dune exec bin/vp_run.exe -- examples/asm/echo_irq.s --uart-input 'hi there'
# (vp_run appends no NUL; the run ends at the instruction limit unless the
#  input contains a 0 byte — use the test harness for a scripted run)

    .equ UART, 0x10000000
    .equ PLIC, 0x0c000000

    j start

    .align 2
handler:
    li t0, PLIC
    lw t1, 8(t0)        # claim
    li t2, UART
drain:
    lbu t3, 8(t2)       # status
    andi t3, t3, 1
    beqz t3, done
    lbu t4, 4(t2)       # rx byte
    beqz t4, quit
    sb t4, 0(t2)        # echo
    j drain
quit:
    li a7, 93
    li a0, 0
    ecall
done:
    sw t1, 8(t0)        # complete
    mret

start:
    li sp, 0x800ffff0
    la t0, handler
    csrw mtvec, t0
    li t0, PLIC
    li t1, 2            # source 1 = uart
    sw t1, 4(t0)
    li t0, UART
    li t1, 1
    sb t1, 12(t0)       # uart rx irq enable
    li t0, 0x800        # mie.MEIE
    csrrs zero, mie, t0
    li t0, 0x8
    csrrs zero, mstatus, t0
idle:
    wfi
    j idle
