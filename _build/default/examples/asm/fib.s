# fib.s — print fib(0..10) as decimal numbers on the UART.
# run: dune exec bin/vp_run.exe -- examples/asm/fib.s

    .equ UART, 0x10000000

    li sp, 0x800ffff0   # stack at the top of RAM
    li s1, 0            # fib(i)
    li s2, 1            # fib(i+1)
    li s3, 11           # count
loop:
    mv a0, s1
    call print_dec
    li a0, 10           # '\n'
    call putc
    add t0, s1, s2
    mv s1, s2
    mv s2, t0
    addi s3, s3, -1
    bnez s3, loop
    li a7, 93
    li a0, 0
    ecall

# print a0 as unsigned decimal
print_dec:
    addi sp, sp, -32
    sw ra, 28(sp)
    addi t0, sp, 27     # digit cursor (builds backwards)
    sb zero, 0(t0)
    li t1, 10
pd_loop:
    remu t2, a0, t1
    addi t2, t2, 48     # '0'
    addi t0, t0, -1
    sb t2, 0(t0)
    divu a0, a0, t1
    bnez a0, pd_loop
pd_out:
    lbu a0, 0(t0)
    beqz a0, pd_done
    call putc
    addi t0, t0, 1
    j pd_out
pd_done:
    lw ra, 28(sp)
    addi sp, sp, 32
    ret

putc:
    li t6, UART
    sb a0, 0(t6)
    ret
