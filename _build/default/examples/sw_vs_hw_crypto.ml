(* Software crypto vs the trusted hardware AES peripheral — the paper's
   declassification argument (Section IV-A), demonstrated:

   "a system operating with confidential information [must be able to]
    interact with the environment ... otherwise no encrypted information
    could be sent out on a public output interface because it depends on a
    secret key."

   1. A complete AES-128 implemented in RV32 assembly encrypts a block
      with a classified key. The ciphertext is correct — but it carries
      the key's (HC) class, so sending it on the CAN bus violates the
      output clearance. Taint cannot distinguish good crypto from a
      clever leak; only declassification can.
   2. With the memory-address execution clearance active, the software
      AES never even gets that far: its first S-box lookup is indexed by
      key material (the paper's Mem[secret] pattern).
   3. The hardware AES peripheral is the sanctioned path: it is trusted
      to declassify its output, so the same ciphertext leaves the system
      cleanly — and we verify it host-side.

     dune exec examples/sw_vs_hw_crypto.exe *)

module Sw = Firmware.Aes_sw_fw
module A = Rv32_asm.Asm
module R = Rv32.Reg

let lat = Dift.Lattice.confidentiality ()
let lc = Dift.Lattice.tag_of_name lat "LC"
let hc = Dift.Lattice.tag_of_name lat "HC"

let hexdump s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init (String.length s) (String.get s)))

let policy_for img ~mem_addr_check =
  let key_lo = Rv32_asm.Image.symbol img "key" in
  Dift.Policy.make ~lattice:lat ~default_tag:lc
    ~classification:
      [ Dift.Policy.region ~name:"key" ~lo:key_lo ~hi:(key_lo + 15) ~tag:hc ]
    ~output_clearance:[ ("can", lc); ("uart", lc) ]
    ?exec_mem_addr:(if mem_addr_check then Some lc else None)
    ()

let () =
  Format.printf "reference: AES-128(key, pt) = %s@.@."
    (hexdump Sw.expected_ciphertext);

  Format.printf "== 1. software AES, ciphertext sent on CAN ==@.";
  let img = Sw.image ~self_check:false ~send_on_can:true () in
  let policy = policy_for img ~mem_addr_check:false in
  let monitor = Dift.Monitor.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  Vp.Soc.load_image soc img;
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | exception Dift.Violation.Violation v ->
      Format.printf "blocked: %a@." (Dift.Violation.pp lat) v;
      Format.printf
        "(the ciphertext is numerically correct, but its class is still HC)@."
  | _ -> Format.printf "BUG: should have been blocked@.");

  Format.printf "@.== 2. same firmware, memory-address clearance active ==@.";
  let policy = policy_for img ~mem_addr_check:true in
  let monitor = Dift.Monitor.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  Vp.Soc.load_image soc img;
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | exception Dift.Violation.Violation v ->
      Format.printf "blocked earlier still: %a@." (Dift.Violation.pp lat) v;
      Format.printf "(an S-box lookup indexed by a key byte — Mem[secret])@."
  | _ -> Format.printf "BUG: should have been blocked@.");

  Format.printf "@.== 3. the hardware AES peripheral declassifies ==@.";
  (* Firmware: key -> AES regs, pt -> AES din, start, poll, send dout on
     CAN. *)
  let p = A.create () in
  Firmware.Rt.entry p ();
  A.li p R.t0 Vp.Soc.aes_base;
  A.la p R.t1 "key";
  for i = 0 to 15 do
    A.lbu p R.t2 R.t1 i;
    A.sb p R.t2 R.t0 i
  done;
  A.la p R.t1 "pt";
  for i = 0 to 15 do
    A.lbu p R.t2 R.t1 i;
    A.sb p R.t2 R.t0 (0x10 + i)
  done;
  A.li p R.t2 1;
  A.sb p R.t2 R.t0 0x30;
  A.label p "poll";
  A.lbu p R.t2 R.t0 0x30;
  A.bnez_l p R.t2 "poll";
  A.li p R.t1 Vp.Soc.can_base;
  for frame = 0 to 1 do
    for i = 0 to 7 do
      A.lbu p R.t2 R.t0 (0x20 + (8 * frame) + i);
      A.sb p R.t2 R.t1 i
    done;
    A.li p R.t2 1;
    A.sb p R.t2 R.t1 8
  done;
  Firmware.Rt.exit_ p ();
  A.align p 4;
  A.label p "key";
  A.ascii p Sw.key_value;
  A.label p "pt";
  A.ascii p Sw.pt_value;
  let img = A.assemble p in
  let policy = policy_for img ~mem_addr_check:true in
  let monitor = Dift.Monitor.create lat in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true ~aes_out_tag:lc
      ~aes_in_clearance:hc ()
  in
  Vp.Soc.load_image soc img;
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | Rv32.Core.Exited 0 ->
      let frames = Vp.Can.tx_frames soc.Vp.Soc.can in
      let ct = String.concat "" frames in
      Format.printf "CAN received %s@." (hexdump ct);
      Format.printf "matches the reference: %b@."
        (String.equal ct Sw.expected_ciphertext);
      Format.printf "declassification events: %d@."
        (Dift.Monitor.declassification_count monitor)
  | _ -> Format.printf "unexpected exit@.")
