(* Code-injection protection (Section VI-B): run the Wilander-Kamkar
   return-address smash (attack #3) on the plain VP — where it succeeds —
   and on VP+ with the code-injection policy — where the HI fetch
   clearance stops it the moment the first injected-classified instruction
   is fetched. Then sweep the whole Table I suite.

     dune exec examples/code_injection.exe *)

module W = Firmware.Wilander

let () =
  Format.printf "== attack #3: direct return-address overwrite ==@.";
  let img = Option.get (W.image_for 3) in
  Format.printf "attacker input (via UART, classified LI): %d bytes,@."
    (String.length (W.payload_for 3 img));
  Format.printf "the last 4 being the address of the payload at 0x%08x@.@."
    (Rv32_asm.Image.symbol img "attack_code");

  (match W.run ~tracking:false 3 with
  | W.Missed 7 ->
      Format.printf
        "plain VP : the payload RAN (exit 7) — control flow was hijacked.@."
  | _ -> Format.printf "plain VP : unexpected result@.");
  (match W.run 3 with
  | W.Detected ->
      Format.printf
        "VP+      : violation on instruction fetch — attack detected.@."
  | _ -> Format.printf "VP+      : unexpected result@.");

  Format.printf "@.== full Table I sweep ==@.";
  let detected = ref 0 and na = ref 0 in
  List.iter
    (fun a ->
      let result =
        match W.run a.W.id with
        | W.Detected ->
            incr detected;
            "Detected"
        | W.Not_applicable ->
            incr na;
            "N/A (" ^ a.W.na_reason ^ ")"
        | W.Missed c -> Printf.sprintf "MISSED (exit %d)" c
      in
      Format.printf "#%-2d %-14s %-26s %-8s %s@." a.W.id a.W.location a.W.target
        a.W.technique result)
    W.attacks;
  Format.printf "@.%d detected, %d not applicable (paper: 10 / 8)@." !detected !na
