examples/sw_vs_hw_crypto.ml: Char Dift Firmware Format List Printf Rv32 Rv32_asm String Vp
