examples/sw_vs_hw_crypto.mli:
