examples/quickstart.mli:
