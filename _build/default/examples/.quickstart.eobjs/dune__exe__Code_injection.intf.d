examples/code_injection.mli:
