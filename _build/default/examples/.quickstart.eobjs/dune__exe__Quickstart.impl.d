examples/quickstart.ml: Dift Firmware Format Rv32 Rv32_asm Vp
