examples/code_injection.ml: Firmware Format List Option Printf Rv32_asm String
