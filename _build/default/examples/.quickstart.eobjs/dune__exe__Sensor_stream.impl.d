examples/sensor_stream.ml: Dift Firmware Format Rv32 Rv32_asm String Sysc Vp
