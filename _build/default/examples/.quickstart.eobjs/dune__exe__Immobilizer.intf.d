examples/immobilizer.mli:
