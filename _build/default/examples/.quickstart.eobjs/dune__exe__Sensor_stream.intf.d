examples/sensor_stream.mli:
