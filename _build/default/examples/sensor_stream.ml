(* Fine-grained HW/SW interaction: sensor -> DMA -> UART.

   The firmware programs the DMA controller to move each fresh sensor
   frame to a RAM buffer, then forwards it to the UART. Security tags ride
   inside the TLM payloads, through the DMA engine and back to software —
   the paper's core argument for doing DIFT at the VP level.

   Scenario A: the sensor produces public (LC) data — everything flows.
   Scenario B: the sensor is reconfigured as confidential (HC) — the DMA
   copy itself is fine, but the moment the firmware pushes the buffered
   frame to the UART the clearance check fires, even though the data took
   a detour through a hardware DMA engine and an interrupt handler.

     dune exec examples/sensor_stream.exe *)

module A = Rv32_asm.Asm
module R = Rv32.Reg

let firmware ~frames =
  let p = A.create () in
  A.j p "_start";
  A.align p 4;
  (* External-interrupt handler: on a sensor frame, DMA it to "buf",
     then copy buf to the UART. *)
  A.label p "handler";
  A.li p R.t0 (Vp.Soc.plic_base + 8);
  A.lw p R.t1 R.t0 0 (* claim *);
  A.li p R.t2 Vp.Soc.irq_sensor;
  A.bne_l p R.t1 R.t2 "handler.out";
  (* Program the DMA: src = sensor frame, dst = buf, len = 64, start. *)
  A.li p R.t3 Vp.Soc.dma_base;
  A.li p R.t4 Vp.Soc.sensor_base;
  A.sw p R.t4 R.t3 0x0;
  A.la p R.t4 "buf";
  A.sw p R.t4 R.t3 0x4;
  A.li p R.t4 64;
  A.sw p R.t4 R.t3 0x8;
  A.li p R.t4 1;
  A.sw p R.t4 R.t3 0xc;
  A.label p "dma.poll";
  A.lw p R.t4 R.t3 0xc;
  A.bnez_l p R.t4 "dma.poll";
  (* Forward the buffered frame to the UART. *)
  A.la p R.t3 "buf";
  A.li p R.t4 Vp.Soc.uart_base;
  A.li p R.t5 64;
  A.label p "fwd";
  A.lbu p R.t6 R.t3 0;
  A.sb p R.t6 R.t4 0;
  A.addi p R.t3 R.t3 1;
  A.addi p R.t5 R.t5 (-1);
  A.bnez_l p R.t5 "fwd";
  (* Frame accounting. *)
  A.la p R.t3 "nframes";
  A.lw p R.t4 R.t3 0;
  A.addi p R.t4 R.t4 1;
  A.sw p R.t4 R.t3 0;
  A.li p R.t5 frames;
  A.blt_l p R.t4 R.t5 "handler.out";
  A.exit_ecall p ();
  A.label p "handler.out";
  A.sw p R.t1 R.t0 0 (* complete *);
  A.mret p;
  Firmware.Rt.entry p ();
  Firmware.Rt.setup_trap_handler p "handler";
  A.li p R.t0 (Vp.Soc.plic_base + 4);
  A.li p R.t1 (1 lsl Vp.Soc.irq_sensor);
  A.sw p R.t1 R.t0 0;
  Firmware.Rt.enable_machine_interrupts p ~mie_bits:0x800;
  A.label p "idle";
  A.wfi p;
  A.j p "idle";
  A.align p 4;
  A.label p "nframes";
  A.word p 0;
  A.label p "buf";
  A.space p 64;
  A.assemble p

let lat = Dift.Lattice.confidentiality ()
let lc = Dift.Lattice.tag_of_name lat "LC"
let hc = Dift.Lattice.tag_of_name lat "HC"

let run ~sensor_tag =
  let img = firmware ~frames:3 in
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:lc
      ~output_clearance:[ ("uart", lc) ]
      ()
  in
  let monitor = Dift.Monitor.create lat in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true
      ~sensor_period:(Sysc.Time.us 50) ()
  in
  Vp.Sensor.set_data_tag soc.Vp.Soc.sensor sensor_tag;
  Vp.Soc.load_image soc img;
  match Vp.Soc.run_for_instructions soc 1_000_000 with
  | exception Dift.Violation.Violation v ->
      Format.printf "violation: %a@." (Dift.Violation.pp lat) v;
      Format.printf "(DMA transfers completed before the stop: %d)@."
        (Vp.Dma.transfers_completed soc.Vp.Soc.dma)
  | Rv32.Core.Exited 0 ->
      Format.printf
        "streamed %d bytes through DMA + IRQ handler to the UART, %d DMA transfers@."
        (String.length (Vp.Uart.tx_string soc.Vp.Soc.uart))
        (Vp.Dma.transfers_completed soc.Vp.Soc.dma)
  | _ -> Format.printf "unexpected exit@."

let () =
  Format.printf "== scenario A: public sensor data (LC) ==@.";
  run ~sensor_tag:lc;
  Format.printf "@.== scenario B: confidential sensor data (HC) ==@.";
  Format.printf
    "the taint rides through the DMA engine and the interrupt handler:@.";
  run ~sensor_tag:hc
