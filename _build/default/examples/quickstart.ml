(* Quickstart: the smallest end-to-end DIFT run.

   We build an IFP-1 (confidentiality) policy, assemble a five-instruction
   firmware that reads a secret from memory and writes it to the UART, and
   watch the DIFT engine stop the leak.

     dune exec examples/quickstart.exe *)

module A = Rv32_asm.Asm
module R = Rv32.Reg

let () =
  (* 1. The information-flow policy: two classes, LC -> HC only. *)
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let hc = Dift.Lattice.tag_of_name lat "HC" in

  (* 2. A tiny firmware: load a secret byte, write it to the UART. *)
  let p = A.create () in
  Firmware.Rt.entry p ();
  A.la p R.t0 "secret";
  A.lbu p R.t1 R.t0 0;
  A.li p R.t2 Vp.Soc.uart_base;
  A.sb p R.t1 R.t2 0 (* <- this store must be flagged *);
  A.exit_ecall p ();
  A.label p "secret";
  A.asciz p "S3CRET!";
  let img = A.assemble p in

  (* 3. Classification: the secret bytes are HC; the UART is cleared for
     LC only. *)
  let secret = Rv32_asm.Image.symbol img "secret" in
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:lc
      ~classification:
        [ Dift.Policy.region ~name:"secret" ~lo:secret ~hi:(secret + 7) ~tag:hc ]
      ~output_clearance:[ ("uart", lc) ]
      ()
  in
  print_string (Format.asprintf "policy:@,%a@." Dift.Policy.pp policy);

  (* 4. Build the VP+ platform, load, run. *)
  let monitor = Dift.Monitor.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  Vp.Soc.load_image soc img;
  (match Vp.Soc.run_for_instructions soc 10_000 with
  | exception Dift.Violation.Violation v ->
      Format.printf "caught: %a@." (Dift.Violation.pp lat) v
  | _ -> print_endline "BUG: the leak was not detected!");

  (* 5. The same binary on the plain VP leaks happily. *)
  let monitor = Dift.Monitor.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:false () in
  Vp.Soc.load_image soc img;
  ignore (Vp.Soc.run_for_instructions soc 10_000);
  Format.printf "without DIFT the UART received: %S@."
    (Vp.Uart.tx_string soc.Vp.Soc.uart)
