(* The assembler: eDSL fixups and the textual parser. *)

open Helpers
module A = Rv32_asm.Asm
module Img = Rv32_asm.Image
module P = Rv32_asm.Parser
module R = Rv32.Reg

let word img off =
  Int32.to_int (Bytes.get_int32_le img.Img.code off) land 0xffffffff

let test_forward_backward_labels () =
  let p = A.create ~org:0x8000_0000 () in
  A.label p "top";
  A.j p "fwd" (* forward reference *);
  A.nop p;
  A.label p "fwd";
  A.j p "top" (* backward reference *);
  let img = A.assemble p in
  check_int "fwd jal offset" (Rv32.Encode.encode (Rv32.Insn.JAL (0, 8))) (word img 0);
  check_int "back jal offset" (Rv32.Encode.encode (Rv32.Insn.JAL (0, -8))) (word img 8)

let test_li_small_large () =
  let p = A.create () in
  A.li p R.a0 42 (* one insn *);
  A.li p R.a1 0x12345678 (* two insns *);
  A.li p R.a2 (-1) (* one insn *);
  let img = A.assemble p in
  check_int "sizes" 16 (Img.size img);
  check_int "insn count" 4 img.Img.insn_count

let test_la_hi_lo_carry () =
  (* Address with a low part >= 0x800 forces the +0x800 rounding in %hi. *)
  let p = A.create ~org:0x8000_0000 () in
  A.la p R.a0 "target";
  A.space p 0x7fc (* filler: la is 8 bytes, target lands at 0x804 -> carry *);
  A.label p "target";
  A.word p 0;
  let img = A.assemble p in
  (* Decode and simulate lui+addi. *)
  let lui = Rv32.Decode.decode (word img 0) in
  let addi = Rv32.Decode.decode (word img 4) in
  (match (lui, addi) with
  | Rv32.Insn.LUI (_, hi), Rv32.Insn.ADDI (_, _, lo) ->
      check_int "hi+lo = target" (Img.symbol img "target")
        ((hi + lo) land 0xffffffff)
  | _ -> Alcotest.fail "expected lui/addi pair")

let test_duplicate_label () =
  let p = A.create () in
  A.label p "x";
  A.label p "x";
  check_bool "duplicate rejected" true
    (try ignore (A.assemble p); false with A.Duplicate_label _ -> true)

let test_unknown_label () =
  let p = A.create () in
  A.j p "nowhere";
  check_bool "unknown rejected" true
    (try ignore (A.assemble p); false with A.Unknown_label _ -> true)

let test_align_and_data () =
  let p = A.create () in
  A.byte p 1;
  A.align p 4;
  A.label p "w";
  A.word p 0xcafebabe;
  A.half p 0x1234;
  A.asciz p "ab";
  let img = A.assemble p in
  check_int "aligned symbol" (0x8000_0000 + 4) (Img.symbol img "w");
  check_int "word" 0xcafebabe (word img 4);
  check_int "half" 0x34 (Bytes.get_uint8 img.Img.code 8);
  check_int "asciz nul" 0 (Bytes.get_uint8 img.Img.code 12)

let test_branch_range_checked () =
  let p = A.create () in
  A.label p "top";
  for _ = 1 to 2000 do
    A.nop p
  done;
  A.beq_l p R.t0 R.t1 "top" (* > 4 KiB away: B-format overflows *);
  check_bool "range error" true
    (try ignore (A.assemble p); false with Invalid_argument _ -> true)

(* --- textual parser --------------------------------------------------- *)

let test_parse_simple_program () =
  let src = {|
# sum 1..5
    li a0, 0
    li t0, 1
    li t1, 5
loop:
    add a0, a0, t0
    addi t0, t0, 1
    ble t0, t1, loop
    li a7, 93
    ecall
|} in
  let img = P.parse_string src in
  let soc = soc_of_policy (trivial_policy ()) in
  Vp.Soc.load_image soc img;
  expect_exit (Vp.Soc.run_for_instructions soc 1000) 15

let test_parse_directives () =
  let src = {|
    .equ MAGIC, 0x1234
start:
    li a0, MAGIC
    la a1, msg
    lbu a0, 0(a1)
    li a7, 93
    ecall
    .align 2
msg:
    .asciz "Z!"
    .word 7, 8
    .byte 1, 2, 3
    .space 4
|} in
  let img = P.parse_string src in
  let soc = soc_of_policy (trivial_policy ()) in
  Vp.Soc.load_image soc img;
  expect_exit (Vp.Soc.run_for_instructions soc 1000) (Char.code 'Z')

let test_parse_memory_operands () =
  let img = P.parse_string "lw a0, 8(sp)\nsw a1, -4(s0)\njalr ra, 0(t0)\n" in
  check_int "three insns" 12 (Img.size img)

let test_parse_csr_names () =
  let img = P.parse_string "csrr a0, mstatus\ncsrw mtvec, t0\ncsrrs a1, 0x342, zero\n" in
  let w0 = word img 0 in
  (match Rv32.Decode.decode w0 with
  | Rv32.Insn.CSRRS (10, 0, 0x300) -> ()
  | i -> Alcotest.failf "bad csrr decode: %s" (Rv32.Disasm.insn i));
  check_int "3 insns" 12 (Img.size img)

let test_parse_errors () =
  let bad src =
    match P.parse_result src with Error _ -> true | Ok _ -> false
  in
  check_bool "unknown mnemonic" true (bad "frobnicate a0, a1\n");
  check_bool "bad register" true (bad "addi q7, a0, 1\n");
  check_bool "bad integer" true (bad "li a0, zorp\n");
  check_bool "arity" true (bad "add a0, a1\n");
  check_bool "unknown label" true (bad "j nowhere\n")

let test_parse_hi_lo_relocs () =
  let src = {|
    lui t0, %hi(data)
    lw a0, %lo(data)(t0)
    lui t1, %hi(data)
    addi t1, t1, %lo(data)
    lw a1, 0(t1)
    add a0, a0, a1
    li a7, 93
    ecall
    .align 2
data:
    .word 21
|} in
  let img = P.parse_string src in
  let soc = soc_of_policy (trivial_policy ()) in
  Vp.Soc.load_image soc img;
  expect_exit (Vp.Soc.run_for_instructions soc 1000) 42

let test_parse_comments_and_blank () =
  let img = P.parse_string "  # just a comment\n\n// another\nnop # trailing\n" in
  check_int "one insn" 4 (Img.size img)

(* The shipped textual example programs assemble and run. *)
let example_src name =
  (* Alcotest changes the working directory; search upward for the
     examples tree (it is declared as a dune dependency, so it exists in
     the build sandbox too). *)
  let rec find dir depth =
    let candidate = Filename.concat dir (Filename.concat "examples/asm" name) in
    if Sys.file_exists candidate then candidate
    else if depth = 0 then Alcotest.failf "cannot locate examples/asm/%s" name
    else find (Filename.concat dir "..") (depth - 1)
  in
  let path = find "." 8 in
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let run_src ?uart_input src =
  let img = P.parse_string src in
  let soc = soc_of_policy (trivial_policy ()) in
  Vp.Soc.load_image soc img;
  (match uart_input with
  | Some s -> Vp.Uart.push_rx soc.Vp.Soc.uart s
  | None -> ());
  let reason = Vp.Soc.run_for_instructions soc 200_000 in
  (soc, reason)

let test_example_fib () =
  let soc, reason = run_src (example_src "fib.s") in
  expect_exit reason 0;
  check_string "fib sequence" "0\n1\n1\n2\n3\n5\n8\n13\n21\n34\n55\n"
    (Vp.Uart.tx_string soc.Vp.Soc.uart)

let test_example_leak () =
  (* Functionally: it leaks on the plain policy. *)
  let soc, reason = run_src (example_src "leak.s") in
  expect_exit reason 0;
  check_bool "leaked byte present" true
    (Astring_contains.contains ~sub:"H" (Vp.Uart.tx_string soc.Vp.Soc.uart));
  (* And the confidentiality policy catches it. *)
  let img = P.parse_string (example_src "leak.s") in
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let hc = Dift.Lattice.tag_of_name lat "HC" in
  let lo = Rv32_asm.Image.symbol img "secret" in
  let hi = Rv32_asm.Image.symbol img "secret_end" - 1 in
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:lc
      ~classification:[ Dift.Policy.region ~name:"secret" ~lo ~hi ~tag:hc ]
      ~output_clearance:[ ("uart", lc) ]
      ()
  in
  let soc = soc_of_policy policy in
  Vp.Soc.load_image soc img;
  check_bool "violation under policy" true
    (try
       ignore (Vp.Soc.run_for_instructions soc 200_000);
       false
     with Dift.Violation.Violation _ -> true)

let test_example_echo_irq () =
  let soc, reason = run_src ~uart_input:"ping\000" (example_src "echo_irq.s") in
  expect_exit reason 0;
  check_string "echoed" "ping" (Vp.Uart.tx_string soc.Vp.Soc.uart)

(* Round-trip: disassemble a parsed program and re-parse it. *)
let test_disasm_reparse () =
  let src = "addi sp, sp, -16\nsw ra, 12(sp)\nlw ra, 12(sp)\naddi sp, sp, 16\njalr zero, 0(ra)\n" in
  let img = P.parse_string src in
  let text =
    String.concat "\n"
      (List.init (Img.size img / 4) (fun i -> Rv32.Disasm.word (word img (4 * i))))
    ^ "\n"
  in
  let img2 = P.parse_string text in
  check_bool "identical code" true (Bytes.equal img.Img.code img2.Img.code)

let () =
  Alcotest.run "asm"
    [
      ( "edsl",
        [
          Alcotest.test_case "forward/backward labels" `Quick
            test_forward_backward_labels;
          Alcotest.test_case "li selects encoding" `Quick test_li_small_large;
          Alcotest.test_case "la hi/lo carry" `Quick test_la_hi_lo_carry;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
          Alcotest.test_case "unknown label" `Quick test_unknown_label;
          Alcotest.test_case "align and data" `Quick test_align_and_data;
          Alcotest.test_case "branch range checked" `Quick
            test_branch_range_checked;
        ] );
      ( "parser",
        [
          Alcotest.test_case "simple program runs" `Quick
            test_parse_simple_program;
          Alcotest.test_case "directives" `Quick test_parse_directives;
          Alcotest.test_case "memory operands" `Quick test_parse_memory_operands;
          Alcotest.test_case "csr names" `Quick test_parse_csr_names;
          Alcotest.test_case "errors reported" `Quick test_parse_errors;
          Alcotest.test_case "%hi/%lo relocations" `Quick test_parse_hi_lo_relocs;
          Alcotest.test_case "comments and blanks" `Quick
            test_parse_comments_and_blank;
          Alcotest.test_case "disasm/reparse roundtrip" `Quick
            test_disasm_reparse;
        ] );
      ( "shipped examples",
        [
          Alcotest.test_case "fib.s" `Quick test_example_fib;
          Alcotest.test_case "leak.s" `Quick test_example_leak;
          Alcotest.test_case "echo_irq.s" `Quick test_example_echo_irq;
        ] );
    ]
