(* The RV32IM ISS: decoder/encoder and instruction semantics. *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg
module I = Rv32.Insn

(* Run a tiny program that leaves its result in a0 and exits with it. *)
let result ?(setup = fun _ -> ()) body =
  let _, reason =
    run_program (fun p ->
        setup p;
        body p;
        Firmware.Rt.exit_a0 p)
  in
  match reason with
  | Rv32.Core.Exited c -> c land 0xffffffff
  | _ -> Alcotest.fail "program did not exit"

let li = A.li

let test_arith_wraparound () =
  check_int "add wraps"
    0x00000000
    (result (fun p ->
         li p R.t0 0xffffffff;
         li p R.t1 1;
         A.add p R.a0 R.t0 R.t1));
  check_int "sub wraps" 0xffffffff
    (result (fun p ->
         li p R.t0 0;
         li p R.t1 1;
         A.sub p R.a0 R.t0 R.t1))

let test_slt_signed_unsigned () =
  check_int "slt -1 < 1" 1
    (result (fun p ->
         li p R.t0 (-1);
         li p R.t1 1;
         A.slt p R.a0 R.t0 R.t1));
  check_int "sltu 0xffffffff > 1" 0
    (result (fun p ->
         li p R.t0 (-1);
         li p R.t1 1;
         A.sltu p R.a0 R.t0 R.t1));
  check_int "slti" 1
    (result (fun p ->
         li p R.t0 (-100);
         A.slti p R.a0 R.t0 (-5)));
  check_int "sltiu treats imm as unsigned after sext" 1
    (result (fun p ->
         li p R.t0 5;
         A.sltiu p R.a0 R.t0 (-1)))

let test_shifts () =
  check_int "sll" 0x10 (result (fun p -> li p R.t0 1; li p R.t1 4; A.sll p R.a0 R.t0 R.t1));
  check_int "shift amount masked to 5 bits" 2
    (result (fun p ->
         li p R.t0 1;
         li p R.t1 33;
         A.sll p R.a0 R.t0 R.t1));
  check_int "srl logical" 0x7fffffff
    (result (fun p ->
         li p R.t0 (-2);
         li p R.t1 1;
         A.srl p R.a0 R.t0 R.t1));
  check_int "sra arithmetic" 0xffffffff
    (result (fun p ->
         li p R.t0 (-2);
         li p R.t1 1;
         A.sra p R.a0 R.t0 R.t1));
  check_int "srai" 0xfffffff0
    (result (fun p ->
         li p R.t0 (-256);
         A.srai p R.a0 R.t0 4))

let test_logic_ops () =
  check_int "xor" 0x0ff0
    (result (fun p -> li p R.t0 0x0f0f; li p R.t1 0x00ff; A.xor p R.a0 R.t0 R.t1));
  check_int "andi" 0x0f
    (result (fun p -> li p R.t0 0xff; A.andi p R.a0 R.t0 0x0f));
  check_int "ori sign-extends imm" 0xffffffff
    (result (fun p -> li p R.t0 0; A.ori p R.a0 R.t0 (-1)))

let test_mul_div () =
  check_int "mul low" ((123 * 456) land 0xffffffff)
    (result (fun p -> li p R.t0 123; li p R.t1 456; A.mul p R.a0 R.t0 R.t1));
  check_int "mul wraps" 0x00020001
    (result (fun p ->
         li p R.t0 0x10001;
         li p R.t1 0x10001;
         A.mul p R.a0 R.t0 R.t1));
  check_int "mulh signed" 0xffffffff
    (result (fun p ->
         li p R.t0 (-2);
         li p R.t1 3;
         A.mulh p R.a0 R.t0 R.t1));
  check_int "mulhu" 0xfffffffe
    (result (fun p ->
         li p R.t0 (-1);
         li p R.t1 (-1);
         A.mulhu p R.a0 R.t0 R.t1));
  check_int "mulhsu" 0xffffffff
    (result (fun p ->
         li p R.t0 (-1);
         li p R.t1 2;
         A.mulhsu p R.a0 R.t0 R.t1));
  check_int "div" ((-7) / 2 land 0xffffffff)
    (result (fun p -> li p R.t0 (-7); li p R.t1 2; A.div p R.a0 R.t0 R.t1));
  check_int "div by zero = -1" 0xffffffff
    (result (fun p -> li p R.t0 42; li p R.t1 0; A.div p R.a0 R.t0 R.t1));
  check_int "div overflow" 0x80000000
    (result (fun p ->
         li p R.t0 0x80000000;
         li p R.t1 (-1);
         A.div p R.a0 R.t0 R.t1));
  check_int "divu by zero = all ones" 0xffffffff
    (result (fun p -> li p R.t0 42; li p R.t1 0; A.divu p R.a0 R.t0 R.t1));
  check_int "rem" (-1 land 0xffffffff)
    (result (fun p -> li p R.t0 (-7); li p R.t1 2; A.rem p R.a0 R.t0 R.t1));
  check_int "rem by zero = dividend" 42
    (result (fun p -> li p R.t0 42; li p R.t1 0; A.rem p R.a0 R.t0 R.t1));
  check_int "rem overflow = 0" 0
    (result (fun p ->
         li p R.t0 0x80000000;
         li p R.t1 (-1);
         A.rem p R.a0 R.t0 R.t1));
  check_int "remu by zero = dividend" 42
    (result (fun p -> li p R.t0 42; li p R.t1 0; A.remu p R.a0 R.t0 R.t1))

let test_x0_is_zero () =
  check_int "write to x0 discarded" 0
    (result (fun p ->
         li p R.t0 99;
         A.add p R.zero R.t0 R.t0;
         A.mv p R.a0 R.zero))

let test_load_sign_extension () =
  let prog load p =
    A.la p R.t0 "data";
    load p;
    A.j p "end";
    A.label p "data";
    A.word p 0x8180ff7f;
    A.label p "end";
    A.nop p
  in
  check_int "lb sign-extends" 0x7f (result (prog (fun p -> A.lb p R.a0 R.t0 0)));
  check_int "lb negative" 0xffffffff (result (prog (fun p -> A.lb p R.a0 R.t0 1)));
  check_int "lbu" 0xff (result (prog (fun p -> A.lbu p R.a0 R.t0 1)));
  check_int "lh sign-extends" 0xffffff7f (result (prog (fun p -> A.lh p R.a0 R.t0 0)));
  check_int "lhu" 0x8180 (result (prog (fun p -> A.lhu p R.a0 R.t0 2)));
  check_int "lw" 0x8180ff7f (result (prog (fun p -> A.lw p R.a0 R.t0 0)))

let test_store_widths () =
  check_int "sb only touches one byte" 0x12345699
    (result (fun p ->
         A.la p R.t0 "buf";
         li p R.t1 0x12345678;
         A.sw p R.t1 R.t0 0;
         li p R.t2 0x99;
         A.sb p R.t2 R.t0 0;
         A.lw p R.a0 R.t0 0;
         A.j p "end";
         A.align p 4;
         A.label p "buf";
         A.space p 4;
         A.label p "end";
         A.nop p))

let test_branches () =
  let taken br = result (fun p ->
      br p;
      li p R.a0 0;
      A.j p "end";
      A.label p "yes";
      li p R.a0 1;
      A.label p "end";
      A.nop p)
  in
  check_int "beq taken" 1
    (taken (fun p -> li p R.t0 5; li p R.t1 5; A.beq_l p R.t0 R.t1 "yes"));
  check_int "bne not taken" 0
    (taken (fun p -> li p R.t0 5; li p R.t1 5; A.bne_l p R.t0 R.t1 "yes"));
  check_int "blt signed" 1
    (taken (fun p -> li p R.t0 (-1); li p R.t1 0; A.blt_l p R.t0 R.t1 "yes"));
  check_int "bltu unsigned" 0
    (taken (fun p -> li p R.t0 (-1); li p R.t1 0; A.bltu_l p R.t0 R.t1 "yes"));
  check_int "bgeu" 1
    (taken (fun p -> li p R.t0 (-1); li p R.t1 0; A.bgeu_l p R.t0 R.t1 "yes"))

let test_jal_jalr_link () =
  check_int "jalr clears bit 0 of target" 77
    (result (fun p ->
         A.la p R.t0 "target";
         A.ori p R.t0 R.t0 1;
         A.jalr p R.ra R.t0 0;
         A.label p "target";
         li p R.a0 77))

let test_lui_auipc () =
  check_int "lui" 0xabcde000
    (result (fun p -> A.lui p R.a0 0xabcde000));
  (* auipc: pc-relative; a0 - pc_of_auipc = 0x1000. *)
  let _, reason =
    run_program (fun p ->
        A.label p "here";
        A.auipc p R.t0 0x1000;
        A.la p R.t1 "here";
        A.sub p R.a0 R.t0 R.t1;
        Firmware.Rt.exit_a0 p)
  in
  (match reason with
  | Rv32.Core.Exited c -> check_int "auipc offset" 0x1000 (c land 0xffffffff)
  | _ -> Alcotest.fail "no exit")

let test_csr_ops () =
  check_int "csrrw returns old, installs new" 0x123
    (result (fun p ->
         li p R.t0 0x123;
         A.csrrw p R.zero 0x340 R.t0 (* mscratch *);
         li p R.t1 0x456;
         A.csrrw p R.a0 0x340 R.t1));
  check_int "csrrs sets bits" 0x7
    (result (fun p ->
         li p R.t0 0x3;
         A.csrrw p R.zero 0x340 R.t0;
         li p R.t1 0x4;
         A.csrrs p R.zero 0x340 R.t1;
         A.csrrs p R.a0 0x340 R.zero));
  check_int "csrrc clears bits" 0x1
    (result (fun p ->
         li p R.t0 0x3;
         A.csrrw p R.zero 0x340 R.t0;
         li p R.t1 0x2;
         A.csrrc p R.zero 0x340 R.t1;
         A.csrrs p R.a0 0x340 R.zero));
  check_int "csrrwi immediate" 13
    (result (fun p ->
         A.csrrwi p R.zero 0x340 13;
         A.csrrs p R.a0 0x340 R.zero));
  check_int "instret counter readable" 1
    (result (fun p ->
         A.csrrs p R.t0 0xc02 R.zero;
         A.csrrs p R.t1 0xc02 R.zero;
         A.sub p R.a0 R.t1 R.t0))

let test_illegal_instruction_traps () =
  (* With a handler installed, an illegal instruction vectors to it with
     mcause=2 and mtval=the word. *)
  check_int "mcause on illegal" 2
    (result (fun p ->
         A.j p "start";
         A.align p 4;
         A.label p "handler";
         A.csrrs p R.a0 0x342 R.zero (* mcause *);
         Firmware.Rt.exit_a0 p;
         A.label p "start";
         Firmware.Rt.setup_trap_handler p "handler";
         A.insn p (I.ILLEGAL 0xffffffff)))

let test_illegal_without_handler_is_fatal () =
  let p = A.create () in
  Firmware.Rt.entry p ();
  A.insn p (I.ILLEGAL 0);
  let img = A.assemble p in
  let policy = trivial_policy () in
  let soc = soc_of_policy policy in
  Vp.Soc.load_image soc img;
  check_bool "Fatal_trap raised" true
    (try
       ignore (Vp.Soc.run_for_instructions soc 100);
       false
     with Rv32.Core.Fatal_trap _ -> true)

let test_ecall_trap_non_exit () =
  (* ecall with a7 <> 93 traps with cause 11. *)
  check_int "mcause" 11
    (result (fun p ->
         A.j p "start";
         A.align p 4;
         A.label p "handler";
         A.csrrs p R.a0 0x342 R.zero;
         Firmware.Rt.exit_a0 p;
         A.label p "start";
         Firmware.Rt.setup_trap_handler p "handler";
         li p R.a7 1;
         A.ecall p))

let test_mret_returns () =
  check_int "resumes after trap" 5
    (result (fun p ->
         A.j p "start";
         A.align p 4;
         A.label p "handler";
         (* skip the faulting instruction: mepc += 4 *)
         A.csrrs p R.t0 0x341 R.zero;
         A.addi p R.t0 R.t0 4;
         A.csrrw p R.zero 0x341 R.t0;
         A.mret p;
         A.label p "start";
         Firmware.Rt.setup_trap_handler p "handler";
         li p R.a0 5;
         li p R.a7 1;
         A.ecall p (* traps, handler skips it *)))

let test_fetch_from_unmapped_is_fatal () =
  let p = A.create () in
  Firmware.Rt.entry p ();
  li p R.t0 0x30000000;
  A.jalr p R.zero R.t0 0;
  let img = A.assemble p in
  let soc = soc_of_policy (trivial_policy ()) in
  Vp.Soc.load_image soc img;
  check_bool "fatal fetch fault" true
    (try
       ignore (Vp.Soc.run_for_instructions soc 100);
       false
     with Rv32.Core.Fatal_trap { cause = 1; _ } -> true)

let test_load_fault_traps () =
  check_int "load fault cause 5" 5
    (result (fun p ->
         A.j p "start";
         A.align p 4;
         A.label p "handler";
         A.csrrs p R.a0 0x342 R.zero;
         Firmware.Rt.exit_a0 p;
         A.label p "start";
         Firmware.Rt.setup_trap_handler p "handler";
         li p R.t0 0x30000000;
         A.lw p R.t1 R.t0 0))

let test_wfi_with_pending_is_nop () =
  (* WFI with an already-pending (but globally disabled) interrupt falls
     straight through. *)
  check_int "continues past wfi" 9
    (result (fun p ->
         (* make the timer pending: mtimecmp = 0 *)
         li p R.t0 (Vp.Soc.clint_base + 0x4000);
         A.sw p R.zero R.t0 0;
         A.sw p R.zero R.t0 4;
         li p R.t0 0x80;
         A.csrrs p R.zero 0x304 R.t0 (* mie.MTIE, but mstatus.MIE off *);
         A.wfi p;
         li p R.a0 9))

let test_readonly_counter_write_traps () =
  check_int "csrrw to cycle traps illegal" 2
    (result (fun p ->
         A.j p "start";
         A.align p 4;
         A.label p "handler";
         A.csrrs p R.a0 0x342 R.zero;
         Firmware.Rt.exit_a0 p;
         A.label p "start";
         Firmware.Rt.setup_trap_handler p "handler";
         li p R.t0 1;
         A.csrrw p R.zero 0xc00 R.t0))

let test_mtval_holds_fault_address () =
  let faulting = 0x30000004 in
  check_int "mtval = bad address" faulting
    (result (fun p ->
         A.j p "start";
         A.align p 4;
         A.label p "handler";
         A.csrrs p R.a0 0x343 R.zero (* mtval *);
         Firmware.Rt.exit_a0 p;
         A.label p "start";
         Firmware.Rt.setup_trap_handler p "handler";
         li p R.t0 faulting;
         A.lw p R.t1 R.t0 0))

let test_mepc_points_at_faulting_insn () =
  (* The handler reads mepc and returns it relative to _start. *)
  let _, reason =
    run_program (fun p ->
        A.j p "start";
        A.align p 4;
        A.label p "handler";
        A.csrrs p R.t0 0x341 R.zero;
        A.la p R.t1 "fault_site";
        A.sub p R.a0 R.t0 R.t1;
        Firmware.Rt.exit_a0 p;
        A.label p "start";
        Firmware.Rt.setup_trap_handler p "handler";
        A.label p "fault_site";
        A.insn p (I.ILLEGAL 0xffffffff))
  in
  expect_exit reason 0

(* --- decoder / encoder ---------------------------------------------- *)

let test_decode_known_words () =
  (* Cross-checked against the RISC-V spec / gas. *)
  let cases =
    [ (0x00000013, "addi zero, zero, 0");
      (0x00a00513, "addi a0, zero, 10");
      (0xfff00513, "addi a0, zero, -1");
      (0x00112623, "sw ra, 12(sp)");
      (0x00c12083, "lw ra, 12(sp)");
      (0x00008067, "jalr zero, 0(ra)");
      (0x00000073, "ecall");
      (0x30200073, "mret");
      (0x02a5d5b3, "divu a1, a1, a0") ]
  in
  List.iter
    (fun (w, expected) -> check_string (Printf.sprintf "0x%08x" w) expected (Rv32.Disasm.word w))
    cases

let gen_insn =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let imm12 = map (fun x -> x - 2048) (int_bound 4095) in
  let boff = map (fun x -> (x - 2048) * 2) (int_bound 4095) in
  let joff = map (fun x -> (x - 0x80000) * 2) (int_bound 0xfffff) in
  let uimm = map (fun x -> x lsl 12) (int_bound 0xfffff) in
  let shamt = int_bound 31 in
  let csr = int_bound 0xfff in
  let r3 f = map3 (fun a b c -> f (a, b, c)) reg reg reg in
  let open I in
  frequency
    [
      (2, map2 (fun a b -> LUI (a, b)) reg uimm);
      (2, map2 (fun a b -> AUIPC (a, b)) reg uimm);
      (2, map2 (fun a b -> JAL (a, b)) reg joff);
      (2, r3 (fun (a, b, _) -> JALR (a, b, 0)));
      (2, map3 (fun a b c -> JALR (a, b, c)) reg reg imm12);
      (6, map3 (fun a b c -> BEQ (a, b, c)) reg reg boff);
      (6, map3 (fun a b c -> BNE (a, b, c)) reg reg boff);
      (6, map3 (fun a b c -> LW (a, b, c)) reg reg imm12);
      (6, map3 (fun a b c -> SB (a, b, c)) reg reg imm12);
      (6, map3 (fun a b c -> ADDI (a, b, c)) reg reg imm12);
      (3, map3 (fun a b c -> SLLI (a, b, c)) reg reg shamt);
      (3, map3 (fun a b c -> SRAI (a, b, c)) reg reg shamt);
      (6, r3 (fun (a, b, c) -> ADD (a, b, c)));
      (6, r3 (fun (a, b, c) -> SUB (a, b, c)));
      (6, r3 (fun (a, b, c) -> MULHSU (a, b, c)));
      (6, r3 (fun (a, b, c) -> REMU (a, b, c)));
      (3, map3 (fun a b c -> CSRRW (a, b, c)) reg reg csr);
      (3, map3 (fun a b c -> CSRRS (a, b, c)) reg reg csr);
      (3, map3 (fun a b c -> CSRRCI (a, b, c)) reg (int_bound 31) csr);
      (1, return FENCE);
      (1, return ECALL);
      (1, return EBREAK);
      (1, return MRET);
      (1, return WFI);
    ]

let arb_insn = QCheck.make ~print:Rv32.Disasm.insn gen_insn

let prop_encode_decode =
  QCheck.Test.make ~name:"decode (encode i) = i" ~count:2000 arb_insn
    (fun i -> Rv32.Decode.decode (Rv32.Encode.encode i) = i)

let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises" ~count:2000
    QCheck.(int_bound 0xffffffff)
    (fun w ->
      ignore (Rv32.Decode.decode w);
      true)

(* Textual round trip: every disassembly must re-parse to the same word
   (ECALL-class and CSR forms included). *)
let prop_disasm_parse_roundtrip =
  QCheck.Test.make ~name:"parse (disasm i) = i" ~count:1000 arb_insn
    (fun i ->
      match i with
      | I.ILLEGAL _ -> true (* prints as .word, not an instruction *)
      | _ ->
          let text = Rv32.Disasm.insn i ^ "\n" in
          let img = Rv32_asm.Parser.parse_string text in
          let w =
            Int32.to_int (Bytes.get_int32_le img.Rv32_asm.Image.code 0)
            land 0xffffffff
          in
          w = Rv32.Encode.encode i)

let prop_decode_encode_word =
  QCheck.Test.make ~name:"encode (decode w) = w for decodable words"
    ~count:2000 arb_insn (fun i ->
      let w = Rv32.Encode.encode i in
      Rv32.Encode.encode (Rv32.Decode.decode w) = w)

let () =
  Alcotest.run "rv32"
    [
      ( "semantics",
        [
          Alcotest.test_case "arith wraparound" `Quick test_arith_wraparound;
          Alcotest.test_case "slt/sltu signed-unsigned" `Quick
            test_slt_signed_unsigned;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "logic ops" `Quick test_logic_ops;
          Alcotest.test_case "mul/div edge cases" `Quick test_mul_div;
          Alcotest.test_case "x0 is hardwired zero" `Quick test_x0_is_zero;
          Alcotest.test_case "load sign extension" `Quick
            test_load_sign_extension;
          Alcotest.test_case "store widths" `Quick test_store_widths;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "jalr target masking" `Quick test_jal_jalr_link;
          Alcotest.test_case "lui/auipc" `Quick test_lui_auipc;
          Alcotest.test_case "csr operations" `Quick test_csr_ops;
        ] );
      ( "traps",
        [
          Alcotest.test_case "illegal traps to handler" `Quick
            test_illegal_instruction_traps;
          Alcotest.test_case "illegal without handler fatal" `Quick
            test_illegal_without_handler_is_fatal;
          Alcotest.test_case "ecall traps (non-exit)" `Quick
            test_ecall_trap_non_exit;
          Alcotest.test_case "mret resumes" `Quick test_mret_returns;
          Alcotest.test_case "fetch fault fatal" `Quick
            test_fetch_from_unmapped_is_fatal;
          Alcotest.test_case "load fault traps" `Quick test_load_fault_traps;
          Alcotest.test_case "wfi with pending is nop" `Quick
            test_wfi_with_pending_is_nop;
          Alcotest.test_case "read-only counter write traps" `Quick
            test_readonly_counter_write_traps;
          Alcotest.test_case "mtval holds fault address" `Quick
            test_mtval_holds_fault_address;
          Alcotest.test_case "mepc points at faulting insn" `Quick
            test_mepc_points_at_faulting_insn;
        ] );
      ( "decode/encode",
        [ Alcotest.test_case "known words" `Quick test_decode_known_words ]
        @ List.map qtest
            [ prop_encode_decode; prop_decode_total; prop_decode_encode_word;
              prop_disasm_parse_roundtrip ]
      );
    ]
