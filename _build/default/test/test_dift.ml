(* The DIFT engine end to end: taint propagation through the ISS, the
   execution-clearance checks of Section V-B2, policy lookups, and the
   monitor. *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg
module L = Dift.Lattice

let lat = L.ifp3 ()
let t n = L.tag_of_name lat n

(* A policy with a (HC,HI) "secret" region and all execution clearances
   active, plus a protected region. *)
let policy_with ?(exec_fetch = true) ?(exec_branch = true)
    ?(exec_mem_addr = true) ~secret_lo ~secret_hi ~image () =
  let lo, hi = image in
  Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI")
    ~classification:
      [
        Dift.Policy.region ~name:"secret" ~lo:secret_lo ~hi:secret_hi
          ~tag:(t "HC,HI");
        Dift.Policy.region ~name:"program" ~lo ~hi ~tag:(t "LC,HI");
      ]
    ~output_clearance:[ ("uart", t "LC,LI") ]
    ?exec_fetch:(if exec_fetch then Some (t "LC,HI") else None)
    ?exec_branch:(if exec_branch then Some (t "LC,LI") else None)
    ?exec_mem_addr:(if exec_mem_addr then Some (t "LC,LI") else None)
    ()

(* Assemble, build the policy around the "secret" label, run; return
   (soc, result-of-run, monitor). *)
let run_dift ?exec_fetch ?exec_branch ?exec_mem_addr ?(mode = Dift.Monitor.Halt)
    build =
  let p = A.create () in
  build p;
  let img = A.assemble p in
  let secret_lo = Rv32_asm.Image.symbol img "secret" in
  let policy =
    policy_with ?exec_fetch ?exec_branch ?exec_mem_addr ~secret_lo
      ~secret_hi:(secret_lo + 15)
      ~image:(img.Rv32_asm.Image.org, Rv32_asm.Image.limit img - 1)
      ()
  in
  let monitor = Dift.Monitor.create ~mode lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  Vp.Soc.load_image soc img;
  let result =
    try Ok (Vp.Soc.run_for_instructions soc 100_000)
    with Dift.Violation.Violation v -> Error v
  in
  (soc, result, monitor)

let secret_data p =
  A.align p 4;
  A.label p "secret";
  A.ascii p "0123456789abcdef"

let expect_kind result want =
  match result with
  | Error v -> check_bool "violation kind" true (want v.Dift.Violation.kind)
  | Ok _ -> Alcotest.fail "expected a violation"

(* Taint propagates through arithmetic: secret + public = secret. *)
let test_alu_propagation () =
  let soc, result, _ =
    run_dift (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lw p R.t1 R.t0 0;
        A.li p R.t2 1;
        A.add p R.s2 R.t1 R.t2 (* still secret *);
        A.xor p R.s3 R.t1 R.t1 (* value 0 but tag still secret (no constant folding) *);
        Firmware.Rt.exit_ p ();
        secret_data p)
  in
  (match result with Ok _ -> () | Error _ -> Alcotest.fail "no violation expected");
  check_int "s2 tainted" (t "HC,HI") (soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag R.s2);
  check_int "s3 tainted despite zero value" (t "HC,HI")
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag R.s3)

(* Storing a secret then loading it back keeps the taint (memory tags). *)
let test_memory_propagation () =
  let soc, result, _ =
    run_dift (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lbu p R.t1 R.t0 0;
        A.la p R.t2 "scratch";
        A.sb p R.t1 R.t2 0;
        A.lbu p R.s2 R.t2 0;
        Firmware.Rt.exit_ p ();
        secret_data p;
        A.label p "scratch";
        A.space p 4)
  in
  (match result with Ok _ -> () | Error _ -> Alcotest.fail "no violation expected");
  check_int "taint survives store/load" (t "HC,HI")
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag R.s2)

(* Partial overwrite: storing a public byte into a secret word makes the
   word's load tag the LUB (byte-granular tags). *)
let test_byte_granular_tags () =
  let soc, result, _ =
    run_dift (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "scratch";
        A.la p R.t1 "secret";
        A.lw p R.t2 R.t1 0;
        A.sw p R.t2 R.t0 0 (* whole word secret *);
        A.li p R.t3 0x7f;
        A.sb p R.t3 R.t0 0 (* one public byte *);
        A.lbu p R.s2 R.t0 0 (* public byte alone *);
        A.lw p R.s3 R.t0 0 (* word still partially secret *);
        Firmware.Rt.exit_ p ();
        secret_data p;
        A.align p 4;
        A.label p "scratch";
        A.space p 4)
  in
  (match result with Ok _ -> () | Error _ -> Alcotest.fail "no violation expected");
  let tag r = soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r in
  check_int "overwritten byte is clean" (t "LC,HI") (tag R.s2);
  check_int "word LUBs remaining secret bytes" (t "HC,HI") (tag R.s3)

let test_branch_clearance () =
  let _, result, _ =
    run_dift (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lw p R.t1 R.t0 0;
        A.beqz_l p R.t1 "somewhere";
        A.label p "somewhere";
        Firmware.Rt.exit_ p ();
        secret_data p)
  in
  expect_kind result (function Dift.Violation.Exec_branch -> true | _ -> false)

let test_jalr_clearance () =
  let _, result, _ =
    run_dift (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lw p R.t1 R.t0 0;
        A.jalr p R.ra R.t1 0;
        Firmware.Rt.exit_ p ();
        secret_data p)
  in
  expect_kind result (function Dift.Violation.Exec_branch -> true | _ -> false)

let test_mem_addr_clearance () =
  let _, result, _ =
    run_dift (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lw p R.t1 R.t0 0 (* secret value *);
        A.andi p R.t1 R.t1 3;
        A.la p R.t2 "scratch";
        A.add p R.t2 R.t2 R.t1 (* address depends on secret *);
        A.lbu p R.a0 R.t2 0;
        Firmware.Rt.exit_ p ();
        secret_data p;
        A.label p "scratch";
        A.space p 8)
  in
  expect_kind result (function Dift.Violation.Exec_mem_addr -> true | _ -> false)

let test_branch_check_disabled () =
  let _, result, _ =
    run_dift ~exec_branch:false (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lw p R.t1 R.t0 0;
        A.beqz_l p R.t1 "somewhere";
        A.label p "somewhere";
        Firmware.Rt.exit_ p ();
        secret_data p)
  in
  match result with
  | Ok (Rv32.Core.Exited 0) -> ()
  | _ -> Alcotest.fail "disabled check must not fire"

(* Implicit-flow laundering (the motivating example of Section V-B2a):
   if (secret & 1) then public <- 1 — with the branch check off, the
   public variable's TAG stays clean even though it now reveals a secret
   bit. The branch clearance is exactly what catches this. *)
let test_implicit_flow_needs_branch_check () =
  let soc, result, _ =
    run_dift ~exec_branch:false (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lbu p R.t1 R.t0 0;
        A.andi p R.t1 R.t1 1;
        A.li p R.s2 0;
        A.beqz_l p R.t1 "done";
        A.li p R.s2 1;
        A.label p "done";
        Firmware.Rt.exit_ p ();
        secret_data p)
  in
  (match result with Ok _ -> () | Error _ -> Alcotest.fail "check disabled");
  check_int "laundered: s2 looks public" (t "LC,HI")
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag R.s2)

let test_record_mode_collects () =
  let _, result, monitor =
    run_dift ~mode:Dift.Monitor.Record (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lw p R.t1 R.t0 0;
        A.beqz_l p R.t1 "x";
        A.label p "x";
        A.beqz_l p R.t1 "y";
        A.label p "y";
        Firmware.Rt.exit_ p ();
        secret_data p)
  in
  (match result with Ok _ -> () | Error _ -> Alcotest.fail "record mode must not raise");
  check_int "both violations recorded" 2 (Dift.Monitor.violation_count monitor);
  check_bool "checks counted" true (Dift.Monitor.check_count monitor > 0)

let test_violation_diagnostics () =
  let _, result, _ =
    run_dift (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t0 "secret";
        A.lw p R.t1 R.t0 0;
        A.beqz_l p R.t1 "z";
        A.label p "z";
        Firmware.Rt.exit_ p ();
        secret_data p)
  in
  match result with
  | Error v ->
      check_bool "pc recorded" true (v.Dift.Violation.pc <> None);
      check_int "offending tag" (t "HC,HI") v.Dift.Violation.data_tag;
      check_int "required tag" (t "LC,LI") v.Dift.Violation.required_tag;
      let s = Dift.Violation.to_string lat v in
      check_bool "message names the classes" true
        (Astring_contains.contains ~sub:"HC,HI" s
        && Astring_contains.contains ~sub:"LC,LI" s)
  | Ok _ -> Alcotest.fail "expected violation"

(* Policy unit behaviour. *)
let test_policy_lookups () =
  let p =
    Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI")
      ~classification:
        [
          Dift.Policy.region ~name:"a" ~lo:10 ~hi:19 ~tag:(t "HC,HI");
          Dift.Policy.region ~name:"b" ~lo:15 ~hi:29 ~tag:(t "LC,HI");
        ]
      ~output_clearance:[ ("uart", t "LC,LI") ]
      ~store_clearance:[ Dift.Policy.region ~name:"p" ~lo:100 ~hi:101 ~tag:(t "HC,HI") ]
      ()
  in
  check_int "first region wins" (t "HC,HI") (Dift.Policy.classify_at p 15);
  check_int "second region" (t "LC,HI") (Dift.Policy.classify_at p 25);
  check_int "default" (t "LC,LI") (Dift.Policy.classify_at p 99);
  check_bool "store region hit" true
    (Dift.Policy.store_required_at p 100 = Some ("p", t "HC,HI"));
  check_bool "store region miss" true (Dift.Policy.store_required_at p 102 = None);
  check_bool "output lookup" true
    (Dift.Policy.output_required p "uart" = Some (t "LC,LI"));
  check_bool "unknown port unchecked" true (Dift.Policy.output_required p "spi" = None);
  check_bool "bad region rejected" true
    (try ignore (Dift.Policy.region ~name:"x" ~lo:5 ~hi:4 ~tag:0); false
     with Invalid_argument _ -> true)

let test_policy_validate () =
  let ok_policy =
    Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI")
      ~classification:
        [ Dift.Policy.region ~name:"pin" ~lo:10 ~hi:20 ~tag:(t "HC,HI");
          Dift.Policy.region ~name:"prog" ~lo:0 ~hi:100 ~tag:(t "LC,HI") ]
      ()
  in
  check_bool "specific-first is valid" true (Dift.Policy.validate ok_policy = Ok ());
  let shadowed =
    Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI")
      ~classification:
        [ Dift.Policy.region ~name:"prog" ~lo:0 ~hi:100 ~tag:(t "LC,HI");
          Dift.Policy.region ~name:"pin" ~lo:10 ~hi:20 ~tag:(t "HC,HI") ]
      ()
  in
  check_bool "shadowed region flagged" true
    (match Dift.Policy.validate shadowed with Error _ -> true | Ok () -> false);
  let bad_tag =
    Dift.Policy.make ~lattice:lat ~default_tag:99 ()
  in
  check_bool "out-of-range tag flagged" true
    (match Dift.Policy.validate bad_tag with Error _ -> true | Ok () -> false)

(* MMIO access to an invalid peripheral register traps like a bus fault. *)
let test_mmio_command_error_traps () =
  let _, result, _ =
    run_dift (fun p ->
        Firmware.Rt.entry p ();
        A.j p "go";
        A.align p 4;
        A.label p "handler";
        A.csrrs p R.a0 0x342 R.zero (* mcause *);
        Firmware.Rt.exit_a0 p;
        A.label p "go";
        Firmware.Rt.setup_trap_handler p "handler";
        A.li p R.t0 Vp.Soc.uart_base;
        A.li p R.t1 1;
        A.sb p R.t1 R.t0 0x40 (* no such register *);
        Firmware.Rt.exit_ p ();
        secret_data p)
  in
  match result with
  | Ok (Rv32.Core.Exited 7) -> () (* store access fault *)
  | Ok (Rv32.Core.Exited c) -> Alcotest.failf "wrong cause %d" c
  | Ok _ -> Alcotest.fail "no exit"
  | Error _ -> Alcotest.fail "unexpected violation"

let test_monitor_events () =
  let m = Dift.Monitor.create ~mode:Dift.Monitor.Record lat in
  Dift.Monitor.report m (Dift.Monitor.Note "hello");
  Dift.Monitor.report m
    (Dift.Monitor.Declassified { where = "aes"; from_tag = t "HC,HI"; to_tag = t "LC,LI" });
  Dift.Monitor.violation m
    { Dift.Violation.kind = Dift.Violation.Exec_fetch; data_tag = t "LC,LI";
      required_tag = t "LC,HI"; pc = Some 0x80000000; detail = "" };
  check_int "three events" 3 (List.length (Dift.Monitor.events m));
  check_int "one violation" 1 (Dift.Monitor.violation_count m);
  check_int "one declass" 1 (Dift.Monitor.declassification_count m);
  Dift.Monitor.clear m;
  check_int "cleared" 0 (List.length (Dift.Monitor.events m))

let () =
  Alcotest.run "dift"
    [
      ( "propagation",
        [
          Alcotest.test_case "ALU LUB" `Quick test_alu_propagation;
          Alcotest.test_case "through memory" `Quick test_memory_propagation;
          Alcotest.test_case "byte-granular tags" `Quick test_byte_granular_tags;
        ] );
      ( "execution clearance",
        [
          Alcotest.test_case "branch condition" `Quick test_branch_clearance;
          Alcotest.test_case "indirect jump" `Quick test_jalr_clearance;
          Alcotest.test_case "memory address" `Quick test_mem_addr_clearance;
          Alcotest.test_case "disabled check silent" `Quick
            test_branch_check_disabled;
          Alcotest.test_case "implicit flow motivates branch check" `Quick
            test_implicit_flow_needs_branch_check;
        ] );
      ( "monitor & policy",
        [
          Alcotest.test_case "record mode collects" `Quick test_record_mode_collects;
          Alcotest.test_case "violation diagnostics" `Quick
            test_violation_diagnostics;
          Alcotest.test_case "policy lookups" `Quick test_policy_lookups;
          Alcotest.test_case "policy validate" `Quick test_policy_validate;
          Alcotest.test_case "mmio command error traps" `Quick
            test_mmio_command_error_traps;
          Alcotest.test_case "monitor events" `Quick test_monitor_events;
        ] );
    ]
