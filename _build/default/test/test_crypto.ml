(* AES-128 and SHA-256 known-answer tests (FIPS vectors). *)

open Helpers

let hex s =
  let n = String.length s / 2 in
  String.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let to_hex s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init (String.length s) (String.get s)))

(* FIPS-197 Appendix C.1 / B. *)
let test_aes_fips_c1 () =
  let key = Crypto.Aes128.expand (hex "000102030405060708090a0b0c0d0e0f") in
  let ct = Crypto.Aes128.encrypt_block key (hex "00112233445566778899aabbccddeeff") in
  check_string "FIPS-197 C.1" "69c4e0d86a7b0430d8cdb78070b4c55a" (to_hex ct)

let test_aes_fips_b () =
  let key = Crypto.Aes128.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let ct = Crypto.Aes128.encrypt_block key (hex "3243f6a8885a308d313198a2e0370734") in
  check_string "FIPS-197 B" "3925841d02dc09fbdc118597196a0b32" (to_hex ct)

(* NIST SP 800-38A ECB-AES128 vectors. *)
let test_aes_sp800_38a () =
  let key = Crypto.Aes128.expand (hex "2b7e151628aed2a6abf7158809cf4f3c") in
  let cases =
    [ ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
      ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
      ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
      ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4") ]
  in
  List.iter
    (fun (pt, expected) ->
      check_string pt expected (to_hex (Crypto.Aes128.encrypt_block key (hex pt))))
    cases

let test_aes_decrypt_inverse () =
  let key = Crypto.Aes128.expand (hex "000102030405060708090a0b0c0d0e0f") in
  let pt = hex "00112233445566778899aabbccddeeff" in
  check_string "decrypt (encrypt pt) = pt" (to_hex pt)
    (to_hex (Crypto.Aes128.decrypt_block key (Crypto.Aes128.encrypt_block key pt)))

let prop_aes_roundtrip =
  let open QCheck in
  Test.make ~name:"AES decrypt inverts encrypt" ~count:100
    (pair (string_of_size (Gen.return 16)) (string_of_size (Gen.return 16)))
    (fun (k, pt) ->
      let key = Crypto.Aes128.expand k in
      Crypto.Aes128.decrypt_block key (Crypto.Aes128.encrypt_block key pt) = pt)

let test_aes_ecb_multiblock () =
  let key = Crypto.Aes128.expand (String.make 16 'k') in
  let msg = String.init 48 (fun i -> Char.chr (i land 0xff)) in
  let ct = Crypto.Aes128.encrypt_ecb key msg in
  check_int "length preserved" 48 (String.length ct);
  check_string "block 0 = encrypt of first block"
    (to_hex (Crypto.Aes128.encrypt_block key (String.sub msg 0 16)))
    (to_hex (String.sub ct 0 16))

let test_aes_bad_sizes () =
  check_bool "bad key size" true
    (try ignore (Crypto.Aes128.expand "short"); false
     with Invalid_argument _ -> true);
  let key = Crypto.Aes128.expand (String.make 16 'x') in
  check_bool "bad block size" true
    (try ignore (Crypto.Aes128.encrypt_block key "tiny"); false
     with Invalid_argument _ -> true)

(* FIPS 180-4 vectors. *)
let test_sha256_vectors () =
  check_string "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Crypto.Sha256.hexdigest "abc");
  check_string "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Crypto.Sha256.hexdigest "");
  check_string "two-block message"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Crypto.Sha256.hexdigest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_string "million a's"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Crypto.Sha256.hexdigest (String.make 1_000_000 'a'))

let test_sha256_padding_boundaries () =
  (* Lengths around the 55/56/64-byte padding boundaries must not crash
     and must be distinct. *)
  let digests =
    List.map (fun n -> Crypto.Sha256.hexdigest (String.make n 'x')) [ 54; 55; 56; 57; 63; 64; 65 ]
  in
  let uniq = List.sort_uniq compare digests in
  check_int "all distinct" (List.length digests) (List.length uniq)

let () =
  Alcotest.run "crypto"
    [
      ( "aes128",
        [
          Alcotest.test_case "FIPS-197 C.1" `Quick test_aes_fips_c1;
          Alcotest.test_case "FIPS-197 B" `Quick test_aes_fips_b;
          Alcotest.test_case "SP800-38A ECB" `Quick test_aes_sp800_38a;
          Alcotest.test_case "decrypt inverse" `Quick test_aes_decrypt_inverse;
          Alcotest.test_case "multi-block ECB" `Quick test_aes_ecb_multiblock;
          Alcotest.test_case "size validation" `Quick test_aes_bad_sizes;
          qtest prop_aes_roundtrip;
        ] );
      ( "sha256",
        [
          Alcotest.test_case "FIPS 180-4 vectors" `Slow test_sha256_vectors;
          Alcotest.test_case "padding boundaries" `Quick
            test_sha256_padding_boundaries;
        ] );
    ]
