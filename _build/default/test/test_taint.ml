(* The Taint value type (the paper's Taint<T>, Fig. 3). *)

open Helpers
module L = Dift.Lattice
module T = Dift.Taint

let lat = L.ifp3 ()
let t n = L.tag_of_name lat n

let test_make_value_tag () =
  let x = T.make 42 (t "HC,HI") in
  check_int "value" 42 (T.value x);
  check_int "tag" (t "HC,HI") (T.tag x)

let test_map_keeps_tag () =
  let x = T.make 21 (t "HC,LI") in
  let y = T.map lat (fun v -> v * 2) x in
  check_int "value doubled" 42 (T.value y);
  check_int "tag preserved" (t "HC,LI") (T.tag y)

let test_map2_lub () =
  (* Fig. 3's operator+: value op, tag LUB. *)
  let a = T.make 1 (t "LC,LI") and b = T.make 2 (t "HC,HI") in
  let c = T.map2 lat ( + ) a b in
  check_int "sum" 3 (T.value c);
  check_string "tag is the paper's LUB example" "HC,LI" (L.name lat (T.tag c))

let test_retag () =
  let x = T.make 7 (t "HC,HI") in
  let y = T.retag x (t "LC,LI") in
  check_int "value kept" 7 (T.value y);
  check_int "declassified" (t "LC,LI") (T.tag y)

let test_clearance () =
  let secret = T.make 1 (t "HC,HI") in
  let public = T.make 1 (t "LC,HI") in
  check_bool "secret blocked at LC,LI" false
    (T.check_clearance lat secret ~required:(t "LC,LI"));
  check_bool "public ok at LC,LI" true
    (T.check_clearance lat public ~required:(t "LC,LI"))

let test_bytes_roundtrip () =
  let w = T.make 0xdeadbeefl (t "HC,HI") in
  let bytes = T.to_bytes w in
  check_int "four bytes" 4 (Array.length bytes);
  check_int "little-endian low byte" 0xef (Char.code (T.value bytes.(0)));
  Array.iter (fun b -> check_int "byte tag" (t "HC,HI") (T.tag b)) bytes;
  let w' = T.from_bytes lat bytes in
  check_bool "value roundtrip" true (Int32.equal (T.value w) (T.value w'));
  check_int "tag roundtrip" (t "HC,HI") (T.tag w')

let test_from_bytes_lubs () =
  (* from_bytes combines all byte tags (Fig. 3 line 21). *)
  let mk v tag = T.make (Char.chr v) tag in
  let ar = [| mk 1 (t "LC,LI"); mk 2 (t "HC,HI"); mk 3 (t "LC,HI"); mk 4 (t "LC,HI") |] in
  let w = T.from_bytes lat ar in
  check_string "combined tag" "HC,LI" (L.name lat (T.tag w))

let test_from_bytes_arity () =
  let b = T.make 'x' (t "LC,HI") in
  check_bool "wrong arity rejected" true
    (try ignore (T.from_bytes lat [| b; b |]); false
     with Invalid_argument _ -> true)

let test_lub_list () =
  let l = lat in
  check_string "lub over a list" "HC,LI"
    (L.name l (L.lub_list l [ t "LC,HI"; t "LC,LI"; t "HC,HI" ]));
  check_bool "empty list rejected" true
    (try ignore (L.lub_list l []); false with Invalid_argument _ -> true)

let test_pp () =
  let x = T.make 7 (t "HC,HI") in
  check_string "pretty printing" "7@HC,HI"
    (Format.asprintf "%a" (T.pp Format.pp_print_int lat) x)

let prop_roundtrip =
  let open QCheck in
  Test.make ~name:"to_bytes/from_bytes roundtrip" ~count:500
    (pair int32 (int_bound (L.size lat - 1)))
    (fun (v, tag) ->
      let w = T.make v tag in
      let w' = T.from_bytes lat (T.to_bytes w) in
      Int32.equal (T.value w') v && T.tag w' = tag)

let () =
  Alcotest.run "taint"
    [
      ( "unit",
        [
          Alcotest.test_case "make/value/tag" `Quick test_make_value_tag;
          Alcotest.test_case "map keeps tag" `Quick test_map_keeps_tag;
          Alcotest.test_case "map2 takes LUB" `Quick test_map2_lub;
          Alcotest.test_case "retag (declassification)" `Quick test_retag;
          Alcotest.test_case "check_clearance" `Quick test_clearance;
          Alcotest.test_case "byte conversion roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "from_bytes LUBs tags" `Quick test_from_bytes_lubs;
          Alcotest.test_case "from_bytes arity" `Quick test_from_bytes_arity;
          Alcotest.test_case "lub_list" `Quick test_lub_list;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ("props", [ qtest prop_roundtrip ]);
    ]
