(* Peripherals exercised directly through their TLM sockets. *)

open Helpers
module P = Tlm.Payload
module S = Tlm.Socket

let lat = Dift.Lattice.ifp3 ()
let t n = Dift.Lattice.tag_of_name lat n

let env_and_monitor ?(mode = Dift.Monitor.Halt) () =
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI")
      ~output_clearance:[ ("uart", t "LC,LI"); ("can", t "LC,LI") ]
      ()
  in
  let monitor = Dift.Monitor.create ~mode lat in
  let kernel = Sysc.Kernel.create () in
  (Vp.Env.create kernel policy monitor, monitor)

let read_reg sock ~addr ~len ~tag =
  let p = P.create ~cmd:P.Read ~addr ~len ~default_tag:tag () in
  ignore (S.call sock p Sysc.Time.zero);
  p

let write_reg sock ~addr ~bytes ~tag =
  let p = P.create ~cmd:P.Write ~addr ~len:(List.length bytes) ~default_tag:tag () in
  List.iteri (fun i b -> P.set_byte p i b) bytes;
  ignore (S.call sock p Sysc.Time.zero);
  p

(* --- memory --------------------------------------------------------- *)

let test_memory_rw_with_tags () =
  let env, _ = env_and_monitor () in
  let m = Vp.Memory.create env ~name:"ram" ~size:256 in
  let sock = Vp.Memory.socket m in
  let w = P.create ~cmd:P.Write ~addr:16 ~len:4 ~default_tag:(t "HC,HI") () in
  P.set_word w 0xfeedf00dl;
  ignore (S.call sock w Sysc.Time.zero);
  let r = read_reg sock ~addr:16 ~len:4 ~tag:(t "LC,LI") in
  check_bool "value" true (Int32.equal (P.get_word r) 0xfeedf00dl);
  check_int "tag travelled" (t "HC,HI") (P.get_tag r 0)

let test_memory_oob () =
  let env, _ = env_and_monitor () in
  let m = Vp.Memory.create env ~name:"ram" ~size:16 in
  let sock = Vp.Memory.socket m in
  let r = read_reg sock ~addr:14 ~len:4 ~tag:(t "LC,LI") in
  check_bool "address error" true (r.P.resp = P.Address_error)

let test_memory_taint_map () =
  let env, _ = env_and_monitor () in
  let m = Vp.Memory.create env ~name:"ram" ~size:64 in
  let base = env.Vp.Env.pub in
  check_bool "clean memory has no regions" true
    (Vp.Memory.tainted_regions m ~baseline:base = []);
  Vp.Memory.fill_tags m ~off:8 ~len:4 (t "HC,HI");
  Vp.Memory.fill_tags m ~off:12 ~len:2 (t "LC,LI");
  Vp.Memory.fill_tags m ~off:40 ~len:1 (t "HC,HI");
  Alcotest.(check (list (triple int int int)))
    "regions split per tag"
    [ (8, 11, t "HC,HI"); (12, 13, t "LC,LI"); (40, 40, t "HC,HI") ]
    (Vp.Memory.tainted_regions m ~baseline:base)

(* --- uart ------------------------------------------------------------ *)

let test_uart_tx_clearance () =
  let env, _ = env_and_monitor () in
  let u = Vp.Uart.create env ~name:"uart" ~port:"uart" in
  let sock = Vp.Uart.socket u in
  ignore (write_reg sock ~addr:0 ~bytes:[ Char.code 'h' ] ~tag:(t "LC,HI"));
  check_string "byte logged" "h" (Vp.Uart.tx_string u);
  check_bool "secret byte violates" true
    (try
       ignore (write_reg sock ~addr:0 ~bytes:[ 0x55 ] ~tag:(t "HC,HI"));
       false
     with Dift.Violation.Violation v ->
       v.Dift.Violation.kind = Dift.Violation.Output_clearance "uart")

let test_uart_rx_fifo_and_status () =
  let env, _ = env_and_monitor () in
  let u = Vp.Uart.create env ~name:"uart" ~port:"uart" in
  let sock = Vp.Uart.socket u in
  let status () = P.get_byte (read_reg sock ~addr:8 ~len:1 ~tag:(t "LC,LI")) 0 in
  check_int "empty status" 2 (status () land 3);
  Vp.Uart.push_rx u ~tag:(t "LC,LI") "ab";
  check_int "nonempty status" 3 (status () land 3);
  let r1 = read_reg sock ~addr:4 ~len:1 ~tag:(t "LC,HI") in
  check_int "first byte" (Char.code 'a') (P.get_byte r1 0);
  check_int "rx byte tagged LI" (t "LC,LI") (P.get_tag r1 0);
  let _ = read_reg sock ~addr:4 ~len:1 ~tag:(t "LC,HI") in
  check_int "drained" 2 (status () land 3)

let test_uart_irq () =
  let env, _ = env_and_monitor () in
  let u = Vp.Uart.create env ~name:"uart" ~port:"uart" in
  let sock = Vp.Uart.socket u in
  let level = ref false in
  Vp.Uart.set_irq_callback u (fun on -> level := on);
  Vp.Uart.push_rx u "x";
  check_bool "no irq while disabled" false !level;
  ignore (write_reg sock ~addr:0xc ~bytes:[ 1 ] ~tag:(t "LC,HI"));
  check_bool "irq raised when enabled" true !level;
  let _ = read_reg sock ~addr:4 ~len:1 ~tag:(t "LC,HI") in
  check_bool "irq drops when drained" false !level

(* --- gpio -------------------------------------------------------------- *)

let gpio_env () =
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI")
      ~output_clearance:[ ("gpio", t "LC,LI") ]
      ()
  in
  let monitor = Dift.Monitor.create lat in
  let kernel = Sysc.Kernel.create () in
  Vp.Env.create kernel policy monitor

let test_gpio_directions_and_latch () =
  let env = gpio_env () in
  let g = Vp.Gpio.create env ~name:"gpio" ~port:"gpio" in
  let sock = Vp.Gpio.socket g in
  (* Pins 0..7 output. *)
  ignore (write_reg sock ~addr:0 ~bytes:[ 0xff; 0; 0; 0 ] ~tag:(t "LC,HI"));
  ignore (write_reg sock ~addr:4 ~bytes:[ 0xa5; 0xff; 0; 0 ] ~tag:(t "LC,HI"));
  check_int "only output bits latch" 0xa5 (Vp.Gpio.output_levels g);
  let r = read_reg sock ~addr:4 ~len:4 ~tag:(t "LC,LI") in
  check_int "readback" 0xa5 (P.get_byte r 0)

let test_gpio_output_clearance () =
  let env = gpio_env () in
  let g = Vp.Gpio.create env ~name:"gpio" ~port:"gpio" in
  let sock = Vp.Gpio.socket g in
  ignore (write_reg sock ~addr:0 ~bytes:[ 1; 0; 0; 0 ] ~tag:(t "LC,HI"));
  check_bool "secret-dependent pin write violates" true
    (try
       ignore (write_reg sock ~addr:4 ~bytes:[ 1; 0; 0; 0 ] ~tag:(t "HC,HI"));
       false
     with Dift.Violation.Violation v ->
       v.Dift.Violation.kind = Dift.Violation.Output_clearance "gpio")

let test_gpio_inputs_tagged_and_edges () =
  let env = gpio_env () in
  let g = Vp.Gpio.create env ~name:"gpio" ~port:"gpio" in
  let sock = Vp.Gpio.socket g in
  let edges = ref 0 in
  Vp.Gpio.set_irq_callback g (fun () -> incr edges);
  Vp.Gpio.drive_input g ~pin:3 ~tag:(t "HC,HI") true;
  Vp.Gpio.drive_input g ~pin:3 ~tag:(t "HC,HI") true (* level, not an edge *);
  Vp.Gpio.drive_input g ~pin:5 true;
  check_int "two rising edges" 2 !edges;
  let r = read_reg sock ~addr:8 ~len:4 ~tag:(t "LC,LI") in
  check_int "levels" ((1 lsl 3) lor (1 lsl 5)) (P.get_byte r 0);
  check_int "input tag is LUB of drives" (t "HC,LI") (P.get_tag r 0);
  let r = read_reg sock ~addr:0xc ~len:4 ~tag:(t "LC,LI") in
  check_int "rise latch" ((1 lsl 3) lor (1 lsl 5)) (P.get_byte r 0);
  let r = read_reg sock ~addr:0xc ~len:4 ~tag:(t "LC,LI") in
  check_int "rise cleared on read" 0 (P.get_byte r 0)

(* --- sensor ----------------------------------------------------------- *)

let test_sensor_frame_and_tag_reg () =
  let env, _ = env_and_monitor () in
  let s = Vp.Sensor.create env ~name:"sensor" () in
  let sock = Vp.Sensor.socket s in
  Vp.Sensor.set_data_tag s (t "HC,HI");
  (* Force a frame without the kernel: run the internal refill through the
     kernel thread is timing-based; instead read data_tag register and
     check frame reads work. *)
  let r = read_reg sock ~addr:0x40 ~len:1 ~tag:(t "LC,LI") in
  check_int "data_tag readable" (t "HC,HI") (P.get_byte r 0);
  check_int "data_tag register itself is public" env.Vp.Env.pub (P.get_tag r 0);
  (* Writing the register reconfigures the class (Fig. 4 line 47). *)
  ignore (write_reg sock ~addr:0x40 ~bytes:[ t "LC,LI" ] ~tag:(t "LC,HI"));
  check_int "reconfigured" (t "LC,LI") (Vp.Sensor.data_tag s)

let test_sensor_generates_tagged_frames () =
  let env, _ = env_and_monitor () in
  let s = Vp.Sensor.create env ~name:"sensor" ~period:(Sysc.Time.us 10) () in
  let sock = Vp.Sensor.socket s in
  Vp.Sensor.set_data_tag s (t "HC,HI");
  let fired = ref 0 in
  Vp.Sensor.set_irq_callback s (fun () -> incr fired);
  Vp.Sensor.start s;
  Sysc.Kernel.run ~until:(Sysc.Time.us 35) env.Vp.Env.kernel;
  check_int "frames" 3 !fired;
  check_int "frames counter" 3 (Vp.Sensor.frames_generated s);
  let r = read_reg sock ~addr:0 ~len:8 ~tag:(t "LC,LI") in
  check_int "frame data tagged" (t "HC,HI") (P.get_tag r 0);
  check_bool "paper's data range (rand%96+128)" true
    (let b = P.get_byte r 0 in
     b >= 128 && b < 224)

(* --- clint ------------------------------------------------------------ *)

let test_clint_timer () =
  let env, _ = env_and_monitor () in
  let c = Vp.Clint.create env ~name:"clint" () in
  let sock = Vp.Clint.socket c in
  let mtip = ref false in
  Vp.Clint.set_timer_irq_callback c (fun on -> mtip := on);
  Vp.Clint.start c;
  (* mtimecmp = 5 ticks *)
  ignore (write_reg sock ~addr:0x4000 ~bytes:[ 5; 0; 0; 0 ] ~tag:(t "LC,HI"));
  ignore (write_reg sock ~addr:0x4004 ~bytes:[ 0; 0; 0; 0 ] ~tag:(t "LC,HI"));
  Sysc.Kernel.run ~until:(Sysc.Time.us 3) env.Vp.Env.kernel;
  check_bool "not pending before" false !mtip;
  Sysc.Kernel.run ~until:(Sysc.Time.us 6) env.Vp.Env.kernel;
  check_bool "pending after" true !mtip;
  let r = read_reg sock ~addr:0xbff8 ~len:4 ~tag:(t "LC,LI") in
  check_int "mtime low" 5 (P.get_byte r 0)

let test_clint_msip () =
  let env, _ = env_and_monitor () in
  let c = Vp.Clint.create env ~name:"clint" () in
  let sock = Vp.Clint.socket c in
  let msip = ref false in
  Vp.Clint.set_soft_irq_callback c (fun on -> msip := on);
  ignore (write_reg sock ~addr:0 ~bytes:[ 1 ] ~tag:(t "LC,HI"));
  check_bool "raised" true !msip;
  ignore (write_reg sock ~addr:0 ~bytes:[ 0 ] ~tag:(t "LC,HI"));
  check_bool "cleared" false !msip

(* --- plic -------------------------------------------------------------- *)

let test_plic_claim_complete () =
  let env, _ = env_and_monitor () in
  let pl = Vp.Plic.create env ~name:"plic" in
  let sock = Vp.Plic.socket pl in
  let meip = ref false in
  Vp.Plic.set_ext_irq_callback pl (fun on -> meip := on);
  Vp.Plic.trigger pl 2;
  check_bool "masked: no meip" false !meip;
  ignore (write_reg sock ~addr:4 ~bytes:[ 1 lsl 2; 0; 0; 0 ] ~tag:(t "LC,HI"));
  check_bool "enabled: meip" true !meip;
  Vp.Plic.trigger pl 3;
  (* enable 3 too *)
  ignore (write_reg sock ~addr:4 ~bytes:[ (1 lsl 2) lor (1 lsl 3); 0; 0; 0 ] ~tag:(t "LC,HI"));
  let claim () = P.get_byte (read_reg sock ~addr:8 ~len:4 ~tag:(t "LC,LI")) 0 in
  check_int "lowest source first" 2 (claim ());
  check_bool "still pending source 3" true !meip;
  check_int "next source" 3 (claim ());
  check_bool "meip drops" false !meip;
  check_int "no pending -> 0" 0 (claim ())

(* --- dma ---------------------------------------------------------------- *)

let test_dma_copies_tags () =
  let env, _ = env_and_monitor () in
  let router = Tlm.Router.create ~name:"bus" () in
  let mem = Vp.Memory.create env ~name:"ram" ~size:256 in
  Tlm.Router.map router ~lo:0 ~hi:255 (Vp.Memory.socket mem);
  let dma = Vp.Dma.create env ~name:"dma" in
  Tlm.Socket.bind (Vp.Dma.initiator dma) (Tlm.Router.target_socket router);
  let dsock = Vp.Dma.socket dma in
  (* Source: 8 secret bytes at 0x10. *)
  for i = 0 to 7 do
    Vp.Memory.write_byte mem (0x10 + i) (0x40 + i);
    Vp.Memory.write_tag mem (0x10 + i) (t "HC,HI")
  done;
  let done_irq = ref false in
  Vp.Dma.set_irq_callback dma (fun () -> done_irq := true);
  Vp.Dma.start dma;
  ignore (write_reg dsock ~addr:0 ~bytes:[ 0x10; 0; 0; 0 ] ~tag:(t "LC,HI"));
  ignore (write_reg dsock ~addr:4 ~bytes:[ 0x80; 0; 0; 0 ] ~tag:(t "LC,HI"));
  ignore (write_reg dsock ~addr:8 ~bytes:[ 8; 0; 0; 0 ] ~tag:(t "LC,HI"));
  ignore (write_reg dsock ~addr:0xc ~bytes:[ 1 ] ~tag:(t "LC,HI"));
  Sysc.Kernel.run env.Vp.Env.kernel;
  check_bool "irq fired" true !done_irq;
  check_int "transfers" 1 (Vp.Dma.transfers_completed dma);
  for i = 0 to 7 do
    check_int "value copied" (0x40 + i) (Vp.Memory.read_byte mem (0x80 + i));
    check_int "tag copied" (t "HC,HI") (Vp.Memory.read_tag mem (0x80 + i))
  done

(* --- aes ---------------------------------------------------------------- *)

let test_aes_declassifies () =
  let env, monitor = env_and_monitor () in
  let aes =
    Vp.Aes_periph.create env ~name:"aes" ~out_tag:(t "LC,LI")
      ~in_clearance:(t "HC,HI") ~latency:(Sysc.Time.ns 100) ()
  in
  let sock = Vp.Aes_periph.socket aes in
  Vp.Aes_periph.start aes;
  (* Key: tagged (HC,HI) — allowed by the clearance. *)
  ignore (write_reg sock ~addr:0 ~bytes:(List.init 16 (fun i -> i)) ~tag:(t "HC,HI"));
  ignore (write_reg sock ~addr:0x10 ~bytes:(List.init 16 (fun _ -> 0)) ~tag:(t "LC,LI"));
  ignore (write_reg sock ~addr:0x30 ~bytes:[ 1 ] ~tag:(t "LC,HI"));
  Sysc.Kernel.run env.Vp.Env.kernel;
  check_int "one encryption" 1 (Vp.Aes_periph.encryptions aes);
  check_int "declassification recorded" 1
    (Dift.Monitor.declassification_count monitor);
  let r = read_reg sock ~addr:0x20 ~len:16 ~tag:(t "LC,LI") in
  let expected =
    Crypto.Aes128.encrypt_block
      (Crypto.Aes128.expand (String.init 16 Char.chr))
      (String.make 16 '\000')
  in
  for i = 0 to 15 do
    check_int "ciphertext" (Char.code expected.[i]) (P.get_byte r i);
    check_int "declassified tag" (t "LC,LI") (P.get_tag r i)
  done

let test_aes_key_clearance () =
  let env, _ = env_and_monitor () in
  let aes =
    Vp.Aes_periph.create env ~name:"aes" ~out_tag:(t "LC,LI")
      ~in_clearance:(t "HC,HI") ()
  in
  let sock = Vp.Aes_periph.socket aes in
  (* (LC,LI) data may not flow to the (HC,HI) key register: integrity. *)
  check_bool "untrusted key rejected" true
    (try
       ignore (write_reg sock ~addr:0 ~bytes:[ 0xff ] ~tag:(t "LC,LI"));
       false
     with Dift.Violation.Violation _ -> true)

(* --- can ----------------------------------------------------------------- *)

let test_can_clearance_and_host () =
  let env, _ = env_and_monitor () in
  let can = Vp.Can.create env ~name:"can" ~port:"can" in
  let sock = Vp.Can.socket can in
  let sent = ref [] in
  Vp.Can.set_tx_callback can (fun f -> sent := f :: !sent);
  ignore (write_reg sock ~addr:0 ~bytes:[ 1; 2; 3; 4 ] ~tag:(t "LC,HI"));
  ignore (write_reg sock ~addr:8 ~bytes:[ 1 ] ~tag:(t "LC,HI"));
  check_int "one frame" 1 (List.length !sent);
  check_bool "secret tx violates" true
    (try
       ignore (write_reg sock ~addr:0 ~bytes:[ 9 ] ~tag:(t "HC,HI"));
       false
     with Dift.Violation.Violation _ -> true);
  (* Host injection with default (untrusted) tag. *)
  Vp.Can.push_rx_frame can "hello!";
  let r = read_reg sock ~addr:0x10 ~len:8 ~tag:(t "LC,HI") in
  check_int "first byte" (Char.code 'h') (P.get_byte r 0);
  check_int "tagged untrusted" (t "LC,LI") (P.get_tag r 0);
  check_int "padded with zeros" 0 (P.get_byte r 7)

(* --- watchdog ------------------------------------------------------------ *)

let test_watchdog_expires_and_kicks () =
  let env, _ = env_and_monitor () in
  let w = Vp.Watchdog.create env ~name:"wdt" () in
  let sock = Vp.Watchdog.socket w in
  let reset = ref false in
  Vp.Watchdog.set_expiry_callback w (fun () -> reset := true);
  Vp.Watchdog.start w;
  (* reload = 10 us, enable. *)
  ignore (write_reg sock ~addr:0 ~bytes:[ 10; 0; 0; 0 ] ~tag:(t "LC,HI"));
  ignore (write_reg sock ~addr:8 ~bytes:[ 1 ] ~tag:(t "LC,HI"));
  (* Kick at 6 us: survives past the original 10 us deadline. *)
  Sysc.Kernel.run ~until:(Sysc.Time.us 6) env.Vp.Env.kernel;
  ignore (write_reg sock ~addr:4 ~bytes:[ 1 ] ~tag:(t "LC,HI"));
  Sysc.Kernel.run ~until:(Sysc.Time.us 12) env.Vp.Env.kernel;
  check_bool "kick deferred expiry" false !reset;
  (* Stop kicking: expires at 16 us. *)
  Sysc.Kernel.run ~until:(Sysc.Time.us 20) env.Vp.Env.kernel;
  check_bool "expired without kicks" true !reset;
  check_bool "status reads expired" true (Vp.Watchdog.expired w);
  check_int "one kick counted" 1 (Vp.Watchdog.kicks w)

let test_watchdog_reload_clearance () =
  let env, _ = env_and_monitor () in
  let w = Vp.Watchdog.create env ~name:"wdt" ~clearance:(t "LC,HI") () in
  let sock = Vp.Watchdog.socket w in
  (* Trusted reconfiguration passes. *)
  ignore (write_reg sock ~addr:0 ~bytes:[ 50; 0; 0; 0 ] ~tag:(t "LC,HI"));
  (* Untrusted data may not flow into the reload register. *)
  check_bool "untrusted reload flagged" true
    (try
       ignore (write_reg sock ~addr:0 ~bytes:[ 1; 0; 0; 0 ] ~tag:(t "LC,LI"));
       false
     with Dift.Violation.Violation v ->
       (match v.Dift.Violation.kind with
       | Dift.Violation.Custom _ -> true
       | _ -> false))

let () =
  Alcotest.run "periph"
    [
      ("memory", [ Alcotest.test_case "rw with tags" `Quick test_memory_rw_with_tags;
                   Alcotest.test_case "out of bounds" `Quick test_memory_oob;
                   Alcotest.test_case "taint map" `Quick test_memory_taint_map ]);
      ("uart", [ Alcotest.test_case "tx clearance" `Quick test_uart_tx_clearance;
                 Alcotest.test_case "rx fifo/status" `Quick test_uart_rx_fifo_and_status;
                 Alcotest.test_case "rx interrupt" `Quick test_uart_irq ]);
      ("gpio", [ Alcotest.test_case "directions and latch" `Quick
                   test_gpio_directions_and_latch;
                 Alcotest.test_case "output clearance" `Quick
                   test_gpio_output_clearance;
                 Alcotest.test_case "tagged inputs + edges" `Quick
                   test_gpio_inputs_tagged_and_edges ]);
      ("sensor", [ Alcotest.test_case "tag register" `Quick test_sensor_frame_and_tag_reg;
                   Alcotest.test_case "periodic tagged frames" `Quick
                     test_sensor_generates_tagged_frames ]);
      ("clint", [ Alcotest.test_case "timer compare" `Quick test_clint_timer;
                  Alcotest.test_case "msip" `Quick test_clint_msip ]);
      ("plic", [ Alcotest.test_case "claim/complete" `Quick test_plic_claim_complete ]);
      ("dma", [ Alcotest.test_case "copies values and tags" `Quick test_dma_copies_tags ]);
      ("aes", [ Alcotest.test_case "declassifies ciphertext" `Quick test_aes_declassifies;
                Alcotest.test_case "key clearance" `Quick test_aes_key_clearance ]);
      ("can", [ Alcotest.test_case "clearance and host model" `Quick
                  test_can_clearance_and_host ]);
      ("watchdog", [ Alcotest.test_case "expiry and kicks" `Quick
                       test_watchdog_expires_and_kicks;
                     Alcotest.test_case "reload clearance" `Quick
                       test_watchdog_reload_clearance ]);
    ]
