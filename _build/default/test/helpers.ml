(* Shared helpers for the test suites. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A permissive single-class policy for tests that don't exercise DIFT. *)
let trivial_policy () =
  let lat = Dift.Lattice.make_exn ~classes:[ "ANY" ] ~flows:[] in
  Dift.Policy.unrestricted lat ~default_tag:0

(* An integrity policy (IFP-2): HI-classified program region, HI fetch
   clearance; everything else LI. *)
let integrity_policy ?(image_hi = (0x8000_0000, 0x8000_ffff)) () =
  let lat = Dift.Lattice.integrity () in
  let hi = Dift.Lattice.tag_of_name lat "HI" in
  let li = Dift.Lattice.tag_of_name lat "LI" in
  let lo, hi_addr = image_hi in
  Dift.Policy.make ~lattice:lat ~default_tag:li
    ~classification:[ Dift.Policy.region ~name:"program" ~lo ~hi:hi_addr ~tag:hi ]
    ~exec_fetch:hi ()

let soc_of_policy ?(tracking = true) ?monitor ?aes_out_tag ?aes_in_clearance
    ?sensor_period policy =
  let monitor =
    match monitor with
    | Some m -> m
    | None -> Dift.Monitor.create policy.Dift.Policy.lattice
  in
  Vp.Soc.create ~policy ~monitor ~tracking ?aes_out_tag ?aes_in_clearance
    ?sensor_period ()

(* Assemble a program given by a builder function and run it to completion
   (or the instruction cap); returns the SoC for inspection. *)
let run_program ?(tracking = true) ?(policy = trivial_policy ()) ?monitor
    ?(max_insns = 2_000_000) build =
  let p = Rv32_asm.Asm.create () in
  build p;
  let img = Rv32_asm.Asm.assemble p in
  let soc = soc_of_policy ~tracking ?monitor policy in
  Vp.Soc.load_image soc img;
  let reason = Vp.Soc.run_for_instructions soc max_insns in
  (soc, reason)

let expect_exit reason code =
  match reason with
  | Rv32.Core.Exited c -> check_int "exit code" code c
  | Rv32.Core.Running -> Alcotest.fail "program still running"
  | Rv32.Core.Breakpoint -> Alcotest.fail "program hit ebreak"
  | Rv32.Core.Insn_limit -> Alcotest.fail "program hit the instruction limit"

let qtest = QCheck_alcotest.to_alcotest
