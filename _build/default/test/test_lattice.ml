(* IFP lattices: construction, the Fig. 1 examples, and algebraic laws. *)

open Helpers
module L = Dift.Lattice

let t lat n = L.tag_of_name lat n
let flow lat a b = L.allowed_flow lat (t lat a) (t lat b)

let test_confidentiality () =
  let l = L.confidentiality () in
  check_int "two classes" 2 (L.size l);
  check_bool "LC -> HC" true (flow l "LC" "HC");
  check_bool "HC -/-> LC" false (flow l "HC" "LC");
  check_bool "reflexive LC" true (flow l "LC" "LC");
  check_bool "reflexive HC" true (flow l "HC" "HC");
  check_string "lub" "HC" (L.name l (L.lub l (t l "LC") (t l "HC")));
  check_string "bottom" "LC" (L.name l (Option.get (L.bottom l)));
  check_string "top" "HC" (L.name l (Option.get (L.top l)))

let test_integrity () =
  let l = L.integrity () in
  check_bool "HI -> LI" true (flow l "HI" "LI");
  check_bool "LI -/-> HI" false (flow l "LI" "HI");
  check_string "lub HI LI" "LI" (L.name l (L.lub l (t l "HI") (t l "LI")))

(* The worked example from Section IV-A: in IFP-3,
   LUB((LC,LI), (HC,HI)) = (HC,LI). *)
let test_ifp3_paper_example () =
  let l = L.ifp3 () in
  check_int "four classes" 4 (L.size l);
  let a = t l "LC,LI" and b = t l "HC,HI" in
  check_string "paper's LUB example" "HC,LI" (L.name l (L.lub l a b));
  check_bool "(LC,HI) is bottom" true
    (L.name l (Option.get (L.bottom l)) = "LC,HI");
  check_bool "(HC,LI) is top" true (L.name l (Option.get (L.top l)) = "HC,LI");
  check_bool "(LC,LI) and (HC,HI) incomparable" true
    ((not (flow l "LC,LI" "HC,HI")) && not (flow l "HC,HI" "LC,LI"))

let test_product_componentwise () =
  let c = L.confidentiality () and i = L.integrity () in
  let l = L.product c i in
  List.iter
    (fun (ca, ia) ->
      List.iter
        (fun (cb, ib) ->
          let name_a = ca ^ "," ^ ia and name_b = cb ^ "," ^ ib in
          let expected = flow c ca cb && flow i ia ib in
          check_bool
            (Printf.sprintf "flow %s -> %s" name_a name_b)
            expected (flow l name_a name_b))
        [ ("LC", "HI"); ("LC", "LI"); ("HC", "HI"); ("HC", "LI") ])
    [ ("LC", "HI"); ("LC", "LI"); ("HC", "HI"); ("HC", "LI") ]

let test_per_byte_key () =
  let l = L.per_byte_key ~n:4 in
  check_int "3 + n classes" 7 (L.size l);
  check_bool "KEY0 -/-> KEY1" false (flow l "KEY0" "KEY1");
  check_bool "KEY2 -/-> KEY0" false (flow l "KEY2" "KEY0");
  check_bool "KEY0 -> KEY0" true (flow l "KEY0" "KEY0");
  check_bool "bottom -> KEY3" true (flow l "LC,HI" "KEY3");
  check_bool "KEY1 -> top" true (flow l "KEY1" "HC,LI");
  check_bool "KEY0 -/-> LC,LI (stays confidential)" false (flow l "KEY0" "LC,LI");
  check_string "lub of two key bytes hits top" "HC,LI"
    (L.name l (L.lub l (t l "KEY0") (t l "KEY1")))

let test_errors () =
  let is_err = function Error _ -> true | Ok _ -> false in
  check_bool "duplicate class" true
    (is_err (L.make ~classes:[ "A"; "A" ] ~flows:[]));
  check_bool "unknown class in flow" true
    (is_err (L.make ~classes:[ "A" ] ~flows:[ ("A", "B") ]));
  check_bool "cycle" true
    (is_err (L.make ~classes:[ "A"; "B" ] ~flows:[ ("A", "B"); ("B", "A") ]));
  check_bool "no LUB (two maximal elements)" true
    (is_err (L.make ~classes:[ "BOT"; "X"; "Y" ] ~flows:[ ("BOT", "X"); ("BOT", "Y") ]));
  check_bool "empty" true (is_err (L.make ~classes:[] ~flows:[]));
  check_bool "diamond is fine" true
    (match
       L.make ~classes:[ "B"; "X"; "Y"; "T" ]
         ~flows:[ ("B", "X"); ("B", "Y"); ("X", "T"); ("Y", "T") ]
     with
    | Ok _ -> true
    | Error _ -> false)

let test_transitivity_closure () =
  let l = L.make_exn ~classes:[ "A"; "B"; "C" ] ~flows:[ ("A", "B"); ("B", "C") ] in
  check_bool "A -> C by transitivity" true (flow l "A" "C")

let test_to_dot () =
  let l = L.ifp3 () in
  let dot = L.to_dot l in
  check_bool "mentions classes" true (Astring_contains.contains ~sub:"HC,LI" dot);
  check_bool "digraph" true (Astring_contains.contains ~sub:"digraph" dot)

(* --- property tests ------------------------------------------------- *)

let sample_lattices =
  [ L.confidentiality (); L.integrity (); L.ifp3 (); L.per_byte_key ~n:8 ]

let lattice_and_tags =
  let open QCheck in
  let gen =
    Gen.(
      int_bound (List.length sample_lattices - 1) >>= fun li ->
      let l = List.nth sample_lattices li in
      int_bound (L.size l - 1) >>= fun a ->
      int_bound (L.size l - 1) >>= fun b ->
      int_bound (L.size l - 1) >>= fun c -> return (li, a, b, c))
  in
  make ~print:(fun (li, a, b, c) -> Printf.sprintf "(lat %d, %d, %d, %d)" li a b c) gen

let lat_of (li, _, _, _) = List.nth sample_lattices li

let prop_lub_idempotent =
  QCheck.Test.make ~name:"lub idempotent" ~count:500 lattice_and_tags
    (fun ((_, a, _, _) as x) ->
      let l = lat_of x in
      L.lub l a a = a)

let prop_lub_commutative =
  QCheck.Test.make ~name:"lub commutative" ~count:500 lattice_and_tags
    (fun ((_, a, b, _) as x) ->
      let l = lat_of x in
      L.lub l a b = L.lub l b a)

let prop_lub_associative =
  QCheck.Test.make ~name:"lub associative" ~count:500 lattice_and_tags
    (fun ((_, a, b, c) as x) ->
      let l = lat_of x in
      L.lub l a (L.lub l b c) = L.lub l (L.lub l a b) c)

let prop_lub_upper_bound =
  QCheck.Test.make ~name:"lub is an upper bound" ~count:500 lattice_and_tags
    (fun ((_, a, b, _) as x) ->
      let l = lat_of x in
      let u = L.lub l a b in
      L.allowed_flow l a u && L.allowed_flow l b u)

let prop_lub_least =
  QCheck.Test.make ~name:"lub is least among upper bounds" ~count:500
    lattice_and_tags (fun ((_, a, b, c) as x) ->
      let l = lat_of x in
      if L.allowed_flow l a c && L.allowed_flow l b c then
        L.allowed_flow l (L.lub l a b) c
      else true)

let prop_order_antisym =
  QCheck.Test.make ~name:"flow is antisymmetric" ~count:500 lattice_and_tags
    (fun ((_, a, b, _) as x) ->
      let l = lat_of x in
      if L.allowed_flow l a b && L.allowed_flow l b a then a = b else true)

let prop_order_transitive =
  QCheck.Test.make ~name:"flow is transitive" ~count:500 lattice_and_tags
    (fun ((_, a, b, c) as x) ->
      let l = lat_of x in
      if L.allowed_flow l a b && L.allowed_flow l b c then L.allowed_flow l a c
      else true)

let prop_lub_uncached_agrees =
  QCheck.Test.make ~name:"lub_uncached = lub" ~count:500 lattice_and_tags
    (fun ((_, a, b, _) as x) ->
      let l = lat_of x in
      L.lub_uncached l a b = L.lub l a b)

let prop_lub_monotone =
  QCheck.Test.make ~name:"lub monotone" ~count:500 lattice_and_tags
    (fun ((_, a, b, c) as x) ->
      let l = lat_of x in
      if L.allowed_flow l a b then L.allowed_flow l (L.lub l a c) (L.lub l b c)
      else true)

let () =
  Alcotest.run "lattice"
    [
      ( "unit",
        [
          Alcotest.test_case "IFP-1 confidentiality" `Quick test_confidentiality;
          Alcotest.test_case "IFP-2 integrity" `Quick test_integrity;
          Alcotest.test_case "IFP-3 paper example" `Quick test_ifp3_paper_example;
          Alcotest.test_case "product is component-wise" `Quick
            test_product_componentwise;
          Alcotest.test_case "per-byte key lattice" `Quick test_per_byte_key;
          Alcotest.test_case "construction errors" `Quick test_errors;
          Alcotest.test_case "transitive closure" `Quick test_transitivity_closure;
          Alcotest.test_case "dot output" `Quick test_to_dot;
        ] );
      ( "laws",
        List.map qtest
          [
            prop_lub_idempotent;
            prop_lub_commutative;
            prop_lub_associative;
            prop_lub_upper_bound;
            prop_lub_least;
            prop_order_antisym;
            prop_order_transitive;
            prop_lub_monotone;
            prop_lub_uncached_agrees;
          ] );
    ]
