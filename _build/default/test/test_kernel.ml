(* The SystemC-like simulation kernel: scheduling semantics. *)

open Helpers
module K = Sysc.Kernel
module T = Sysc.Time

let test_time_units () =
  check_int "1 us = 1000 ns" (T.us 1) (T.ns 1000);
  check_int "1 ms = 1000 us" (T.ms 1) (T.us 1000);
  check_int "1 s = 1000 ms" (T.sec 1) (T.ms 1000);
  check_string "pp ms" "25 ms" (Format.asprintf "%a" T.pp (T.ms 25))

let test_wait_advances_time () =
  let k = K.create () in
  let seen = ref [] in
  K.spawn k ~name:"p" (fun () ->
      K.wait_for (T.ns 10);
      seen := (K.now k, "a") :: !seen;
      K.wait_for (T.ns 5);
      seen := (K.now k, "b") :: !seen);
  K.run k;
  Alcotest.(check (list (pair int string)))
    "timeline"
    [ (T.ns 10, "a"); (T.ns 15, "b") ]
    (List.rev !seen)

let test_two_processes_interleave () =
  let k = K.create () in
  let log = ref [] in
  let proc name period n () =
    for i = 1 to n do
      K.wait_for period;
      log := (K.now k, name, i) :: !log
    done
  in
  K.spawn k ~name:"fast" (proc "fast" (T.ns 10) 3);
  K.spawn k ~name:"slow" (proc "slow" (T.ns 25) 2);
  K.run k;
  let events = List.rev !log in
  Alcotest.(check (list (triple int string int)))
    "interleaving"
    [ (T.ns 10, "fast", 1); (T.ns 20, "fast", 2); (T.ns 25, "slow", 1);
      (T.ns 30, "fast", 3); (T.ns 50, "slow", 2) ]
    events

let test_event_notify_delta () =
  let k = K.create () in
  let ev = K.create_event k "ev" in
  let got = ref false in
  K.spawn k ~name:"waiter" (fun () ->
      K.wait_event ev;
      got := true);
  K.spawn k ~name:"notifier" (fun () -> K.notify ev);
  K.run k;
  check_bool "waiter woke" true !got;
  check_bool "some delta cycles ran" true (K.delta_count k >= 1)

let test_event_timed_notify () =
  let k = K.create () in
  let ev = K.create_event k "ev" in
  let at = ref (-1) in
  K.spawn k ~name:"waiter" (fun () ->
      K.wait_event ev;
      at := K.now k);
  K.spawn k ~name:"notifier" (fun () -> K.notify_after ev (T.us 3));
  K.run k;
  check_int "woken at 3us" (T.us 3) !at

let test_wait_any () =
  let k = K.create () in
  let e1 = K.create_event k "e1" and e2 = K.create_event k "e2" in
  let woken = ref 0 in
  K.spawn k ~name:"waiter" (fun () ->
      K.wait_any [ e1; e2 ];
      incr woken);
  K.spawn k ~name:"n" (fun () ->
      K.wait_for (T.ns 5);
      K.notify e2);
  K.run k;
  check_int "woken exactly once" 1 !woken

let test_until_limit () =
  let k = K.create () in
  let count = ref 0 in
  K.spawn k ~name:"ticker" (fun () ->
      while true do
        K.wait_for (T.us 1);
        incr count
      done);
  K.run ~until:(T.us 10) k;
  check_bool "stopped around 10 ticks" true (!count <= 10);
  check_bool "ran most ticks" true (!count >= 9)

let test_stop () =
  let k = K.create () in
  let count = ref 0 in
  K.spawn k ~name:"ticker" (fun () ->
      while true do
        K.wait_for (T.us 1);
        incr count;
        if !count = 5 then K.stop k
      done);
  K.run k;
  check_int "stopped at 5" 5 !count

let test_exception_propagates () =
  let k = K.create () in
  K.spawn k ~name:"boom" (fun () ->
      K.wait_for (T.ns 1);
      failwith "boom");
  check_bool "exception re-raised from run" true
    (try K.run k; false with Failure m -> m = "boom")

let test_halt () =
  let k = K.create () in
  let after = ref false in
  K.spawn k ~name:"h" (fun () ->
      K.halt ();
      after := true);
  K.run k;
  check_bool "code after halt not run" false !after

let test_immediate_vs_delta_order () =
  (* Immediate notification wakes in the same evaluation phase; delta in
     the next one. *)
  let k = K.create () in
  let ei = K.create_event k "imm" and ed = K.create_event k "del" in
  let order = ref [] in
  K.spawn k ~name:"wi" (fun () ->
      K.wait_event ei;
      order := "imm" :: !order);
  K.spawn k ~name:"wd" (fun () ->
      K.wait_event ed;
      order := "del" :: !order);
  K.spawn k ~name:"n" (fun () ->
      K.notify ed;
      K.notify_immediate ei);
  K.run k;
  Alcotest.(check (list string)) "immediate first" [ "imm"; "del" ] (List.rev !order)

let test_signal_update_semantics () =
  let k = K.create () in
  let s = Sysc.Signal.create k "sig" 0 in
  let observed = ref (-1) in
  K.spawn k ~name:"writer" (fun () ->
      Sysc.Signal.write s 1;
      (* Value not visible until the update phase. *)
      observed := Sysc.Signal.read s);
  K.run k;
  check_int "read before update sees old value" 0 !observed;
  check_int "settled value" 1 (Sysc.Signal.read s)

let test_signal_changed_event () =
  let k = K.create () in
  let s = Sysc.Signal.create k "sig" 0 in
  let changes = ref 0 in
  K.spawn k ~name:"watcher" (fun () ->
      while !changes < 2 do
        K.wait_event (Sysc.Signal.changed_event s);
        incr changes
      done);
  K.spawn k ~name:"writer" (fun () ->
      Sysc.Signal.write s 1;
      K.wait_for (T.ns 1);
      Sysc.Signal.write s 1 (* same value: no change event *);
      K.wait_for (T.ns 1);
      Sysc.Signal.write s 2);
  K.run k;
  check_int "two changes observed" 2 !changes

let test_same_time_fifo () =
  (* Two timed wakeups at the same instant run in scheduling order. *)
  let k = K.create () in
  let order = ref [] in
  K.spawn k ~name:"a" (fun () ->
      K.wait_for (T.ns 10);
      order := "a" :: !order);
  K.spawn k ~name:"b" (fun () ->
      K.wait_for (T.ns 10);
      order := "b" :: !order);
  K.run k;
  Alcotest.(check (list string)) "fifo" [ "a"; "b" ] (List.rev !order)

let test_wait_zero () =
  let k = K.create () in
  let steps = ref 0 in
  K.spawn k ~name:"z" (fun () ->
      K.wait_for 0;
      incr steps;
      K.wait_for 0;
      incr steps);
  K.run k;
  check_int "zero-delay waits complete" 2 !steps

let test_deadlock_detection () =
  let k = K.create () in
  K.set_expect_progress k true;
  let ev = K.create_event k "never" in
  K.spawn k ~name:"stuck" (fun () -> K.wait_event ev);
  check_bool "deadlock raised" true
    (try K.run k; false with K.Deadlock _ -> true);
  (* A clean completion must not raise. *)
  let k = K.create () in
  K.set_expect_progress k true;
  K.spawn k ~name:"fine" (fun () -> K.wait_for (T.ns 5));
  K.run k;
  check_int "no live processes left" 0 (K.live_processes k);
  (* Stopping is not a deadlock even with waiters. *)
  let k = K.create () in
  K.set_expect_progress k true;
  let ev = K.create_event k "never" in
  K.spawn k ~name:"stuck" (fun () -> K.wait_event ev);
  K.spawn k ~name:"stopper" (fun () ->
      K.wait_for (T.ns 1);
      K.stop k);
  K.run k (* must not raise *)

let test_live_process_accounting () =
  let k = K.create () in
  K.spawn k ~name:"a" (fun () -> ());
  K.spawn k ~name:"b" (fun () -> K.halt ());
  K.spawn k ~name:"c" (fun () -> K.wait_for (T.ns 1));
  check_int "three spawned" 3 (K.live_processes k);
  K.run k;
  check_int "all retired" 0 (K.live_processes k)

let test_vcd_trace () =
  let k = K.create () in
  let vcd = Sysc.Vcd.create k ~name:"top" in
  let s = Sysc.Signal.create k "counter" 0 in
  let ev = K.create_event k "tick" in
  Sysc.Vcd.trace_signal vcd s;
  Sysc.Vcd.trace_event vcd ev;
  K.spawn k ~name:"driver" (fun () ->
      for i = 1 to 3 do
        K.wait_for (T.ns 10);
        Sysc.Signal.write s i;
        K.notify ev
      done;
      K.wait_for (T.ns 5);
      K.stop k);
  K.run k;
  Sysc.Vcd.mark vcd "done" 1;
  let out = Sysc.Vcd.dump vcd in
  check_bool "header" true (Astring_contains.contains ~sub:"$timescale 1ps $end" out);
  check_bool "declares counter" true (Astring_contains.contains ~sub:"counter" out);
  check_bool "declares tick" true (Astring_contains.contains ~sub:"tick" out);
  check_bool "time 10ns stamp" true (Astring_contains.contains ~sub:"#10000" out);
  check_bool "binary value 3" true (Astring_contains.contains ~sub:"b11 " out);
  check_bool "custom mark" true (Astring_contains.contains ~sub:"done" out)

let test_heap_ordering () =
  let h = Sysc.Heap.create () in
  List.iter (fun x -> Sysc.Heap.push h ~key:x x) [ 5; 1; 4; 1; 3; 9; 0 ];
  let popped = ref [] in
  let rec drain () =
    match Sysc.Heap.pop h with
    | Some (k, _) ->
        popped := k :: !popped;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 0; 1; 1; 3; 4; 5; 9 ] (List.rev !popped)

let prop_heap_sorts =
  let open QCheck in
  Test.make ~name:"heap pops keys in order" ~count:200
    (list_of_size Gen.(int_bound 50) (int_bound 1000))
    (fun keys ->
      let h = Sysc.Heap.create () in
      List.iter (fun k -> Sysc.Heap.push h ~key:k k) keys;
      let rec drain acc =
        match Sysc.Heap.pop h with
        | Some (k, _) -> drain (k :: acc)
        | None -> List.rev acc
      in
      drain [] = List.sort Int.compare keys)

let test_sc_module_naming () =
  let k = K.create () in
  let m = Sysc.Sc_module.create k "dut" in
  check_string "name" "dut" (Sysc.Sc_module.name m);
  let ev = Sysc.Sc_module.event m "done" in
  check_string "event name" "dut.done" (K.event_name ev)

let () =
  Alcotest.run "kernel"
    [
      ( "scheduling",
        [
          Alcotest.test_case "time units" `Quick test_time_units;
          Alcotest.test_case "wait advances time" `Quick test_wait_advances_time;
          Alcotest.test_case "processes interleave" `Quick
            test_two_processes_interleave;
          Alcotest.test_case "delta notify" `Quick test_event_notify_delta;
          Alcotest.test_case "timed notify" `Quick test_event_timed_notify;
          Alcotest.test_case "wait_any wakes once" `Quick test_wait_any;
          Alcotest.test_case "run ~until" `Quick test_until_limit;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "process exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "halt" `Quick test_halt;
          Alcotest.test_case "immediate vs delta order" `Quick
            test_immediate_vs_delta_order;
        ] );
      ( "channels",
        [
          Alcotest.test_case "signal update phase" `Quick
            test_signal_update_semantics;
          Alcotest.test_case "signal changed event" `Quick
            test_signal_changed_event;
          Alcotest.test_case "sc_module naming" `Quick test_sc_module_naming;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "same-time FIFO" `Quick test_same_time_fifo;
          Alcotest.test_case "zero-delay wait" `Quick test_wait_zero;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "live process accounting" `Quick
            test_live_process_accounting;
        ] );
      ("vcd", [ Alcotest.test_case "trace dump" `Quick test_vcd_trace ]);
      ("heap", [ Alcotest.test_case "ordering" `Quick test_heap_ordering;
                 qtest prop_heap_sorts ]);
    ]
