(* Firmware benchmark programs: functional correctness on the VP. *)

open Helpers

let run_image ?(tracking = true) ?(max_insns = 20_000_000) img =
  let policy = trivial_policy () in
  let soc = soc_of_policy ~tracking policy in
  Vp.Soc.load_image soc img;
  let reason = Vp.Soc.run_for_instructions soc max_insns in
  (soc, reason)

let read_word_at soc img label =
  let addr = Rv32_asm.Image.symbol img label in
  Vp.Memory.read_word soc.Vp.Soc.memory (addr - Vp.Soc.ram_base)

let test_qsort () =
  let _, reason = run_image (Firmware.Qsort_fw.image ~n:128 ~rounds:2 ()) in
  expect_exit reason 0

let test_qsort_untracked () =
  let _, reason =
    run_image ~tracking:false (Firmware.Qsort_fw.image ~n:128 ~rounds:2 ())
  in
  expect_exit reason 0

let test_primes () =
  let n = 500 in
  let img = Firmware.Primes_fw.image ~n () in
  let soc, reason = run_image img in
  expect_exit reason 0;
  check_int "count stored" (Firmware.Primes_fw.expected ~n)
    (read_word_at soc img "prime_count")

let test_dhrystone () =
  let _, reason = run_image (Firmware.Dhrystone_fw.image ~iterations:200 ()) in
  expect_exit reason 0

let test_sha () =
  let _, reason = run_image (Firmware.Sha_fw.image ~message_len:256 ()) in
  expect_exit reason 0

let test_sensor_app () =
  let img = Firmware.Sensor_fw.image ~frames:3 () in
  let policy = trivial_policy () in
  let soc = soc_of_policy ~sensor_period:(Sysc.Time.us 100) policy in
  Vp.Soc.load_image soc img;
  let reason = Vp.Soc.run_for_instructions soc 1_000_000 in
  expect_exit reason 0;
  check_int "uart got 3 frames" (3 * 64)
    (String.length (Vp.Uart.tx_string soc.Vp.Soc.uart))

let test_software_aes () =
  (* Functional: the RV32 software AES matches the host reference
     (FIPS-197 appendix B key/plaintext). *)
  let _, reason = run_image (Firmware.Aes_sw_fw.image ()) in
  expect_exit reason 0

let test_software_aes_ct_stays_classified () =
  (* Security: under a confidentiality policy the software-computed
     ciphertext still carries the key's class and may not leave on CAN. *)
  let img = Firmware.Aes_sw_fw.image ~self_check:false ~send_on_can:true () in
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let hc = Dift.Lattice.tag_of_name lat "HC" in
  let key_lo = Rv32_asm.Image.symbol img "key" in
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:lc
      ~classification:
        [ Dift.Policy.region ~name:"key" ~lo:key_lo ~hi:(key_lo + 15) ~tag:hc ]
      ~output_clearance:[ ("can", lc) ]
      ()
  in
  let monitor = Dift.Monitor.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  Vp.Soc.load_image soc img;
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | exception Dift.Violation.Violation v ->
      check_bool "output clearance on CAN" true
        (v.Dift.Violation.kind = Dift.Violation.Output_clearance "can")
  | _ -> Alcotest.fail "software ciphertext must not pass the CAN clearance")

let test_software_aes_sbox_lookup_flagged () =
  (* With the memory-address clearance active, the very first S-box lookup
     indexed by key material is a violation (the paper's Mem[secret]
     discussion). *)
  let img = Firmware.Aes_sw_fw.image ~self_check:false () in
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let hc = Dift.Lattice.tag_of_name lat "HC" in
  let key_lo = Rv32_asm.Image.symbol img "key" in
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:lc
      ~classification:
        [ Dift.Policy.region ~name:"key" ~lo:key_lo ~hi:(key_lo + 15) ~tag:hc ]
      ~exec_mem_addr:lc ()
  in
  let monitor = Dift.Monitor.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  Vp.Soc.load_image soc img;
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | exception Dift.Violation.Violation v ->
      check_bool "mem-addr violation" true
        (v.Dift.Violation.kind = Dift.Violation.Exec_mem_addr)
  | _ -> Alcotest.fail "key-indexed S-box lookup must be flagged")

let test_rtos () =
  let img = Firmware.Rtos_fw.image ~switches:8 ~slice_ticks:20 () in
  let soc, reason = run_image img in
  expect_exit reason 0;
  let cnt0 = read_word_at soc img "cnt0" in
  let cnt1 = read_word_at soc img "cnt1" in
  let nswitch = read_word_at soc img "nswitch" in
  check_int "switch count" 8 nswitch;
  check_bool "task0 ran" true (cnt0 > 0);
  check_bool "task1 ran" true (cnt1 > 0)

let test_crc32 () =
  let _, reason = run_image (Firmware.Extra_fw.crc32_image ~len:256 ()) in
  expect_exit reason 0

let test_matmul () =
  let _, reason = run_image (Firmware.Extra_fw.matmul_image ~n:8 ()) in
  expect_exit reason 0

let test_strings () =
  let _, reason = run_image (Firmware.Extra_fw.strings_image ~count:32 ()) in
  expect_exit reason 0

let test_crc32_reference () =
  (* Known vector: CRC-32("123456789") = 0xcbf43926. *)
  check_int "check vector" 0xcbf43926
    (Firmware.Extra_fw.crc32_reference "123456789")

let () =
  Alcotest.run "firmware"
    [
      ( "benchmarks",
        [
          Alcotest.test_case "qsort sorts (VP+)" `Quick test_qsort;
          Alcotest.test_case "qsort sorts (VP)" `Quick test_qsort_untracked;
          Alcotest.test_case "primes count" `Quick test_primes;
          Alcotest.test_case "dhrystone checksum" `Quick test_dhrystone;
          Alcotest.test_case "sha256 digest" `Quick test_sha;
          Alcotest.test_case "sensor app forwards frames" `Quick test_sensor_app;
          Alcotest.test_case "rtos interleaves two tasks" `Quick test_rtos;
          Alcotest.test_case "software AES matches host" `Quick
            test_software_aes;
          Alcotest.test_case "software ciphertext stays classified" `Quick
            test_software_aes_ct_stays_classified;
          Alcotest.test_case "key-indexed sbox lookup flagged" `Quick
            test_software_aes_sbox_lookup_flagged;
          Alcotest.test_case "crc32 matches reference" `Quick test_crc32;
          Alcotest.test_case "crc32 reference vector" `Quick test_crc32_reference;
          Alcotest.test_case "matrix multiply checksum" `Quick test_matmul;
          Alcotest.test_case "string routines" `Quick test_strings;
        ] );
    ]
