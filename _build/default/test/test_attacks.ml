(* Table I: the Wilander-Kamkar code-injection suite. *)

open Helpers
module W = Firmware.Wilander

let outcome_name = function
  | W.Detected -> "Detected"
  | W.Missed c -> Printf.sprintf "Missed (exit %d)" c
  | W.Not_applicable -> "N/A"

let test_attack id () =
  match W.run id with
  | W.Detected -> ()
  | other -> Alcotest.failf "attack %d: expected Detected, got %s" id (outcome_name other)

(* The attacks genuinely work when tracking is off: the payload executes
   and exits with code 7 — proving the detection isn't vacuous. *)
let test_attack_lands_untracked id () =
  match W.run ~tracking:false id with
  | W.Missed 7 -> ()
  | other ->
      Alcotest.failf "attack %d (VP): expected the payload to run, got %s" id
        (outcome_name other)

let test_table_shape () =
  check_int "18 rows" 18 (List.length W.attacks);
  check_int "10 applicable" 10
    (List.length (List.filter (fun a -> a.W.applicable) W.attacks));
  List.iter
    (fun a ->
      check_bool "expected_detected matches applicability" a.W.applicable
        (List.mem a.W.id W.expected_detected))
    W.attacks

let test_na_rows_report_na () =
  List.iter
    (fun a ->
      if not a.W.applicable then
        match W.run a.W.id with
        | W.Not_applicable -> ()
        | o -> Alcotest.failf "attack %d: expected N/A, got %s" a.W.id (outcome_name o))
    W.attacks

let () =
  let detected_cases =
    List.map
      (fun id ->
        Alcotest.test_case (Printf.sprintf "attack %2d detected" id) `Quick
          (test_attack id))
      W.expected_detected
  in
  let landed_cases =
    List.map
      (fun id ->
        Alcotest.test_case
          (Printf.sprintf "attack %2d lands without DIFT" id)
          `Quick
          (test_attack_lands_untracked id))
      W.expected_detected
  in
  Alcotest.run "attacks"
    [
      ("table-1 shape", [ Alcotest.test_case "rows" `Quick test_table_shape;
                          Alcotest.test_case "n/a rows" `Quick test_na_rows_report_na ]);
      ("detection (VP+)", detected_cases);
      ("efficacy (plain VP)", landed_cases);
    ]
