(* Integration tests: full firmware runs on the composed SoC. *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg

(* Sum 1..10 and exit with the result. *)
let test_sum_loop () =
  let _, reason =
    run_program (fun p ->
        A.li p R.a0 0;
        A.li p R.t0 1;
        A.li p R.t1 10;
        A.label p "loop";
        A.add p R.a0 R.a0 R.t0;
        A.addi p R.t0 R.t0 1;
        A.bge_l p R.t1 R.t0 "loop";
        A.li p R.a7 93;
        A.ecall p)
  in
  expect_exit reason 55

(* Store/load through RAM, byte and word granularity. *)
let test_memory_roundtrip () =
  let _, reason =
    run_program (fun p ->
        A.la p R.t0 "buf";
        A.li p R.t1 0x12345678;
        A.sw p R.t1 R.t0 0;
        A.lbu p R.a0 R.t0 1 (* expect 0x56 *);
        A.lw p R.t2 R.t0 0;
        A.bne_l p R.t1 R.t2 "fail";
        A.li p R.a7 93;
        A.ecall p;
        A.label p "fail";
        A.li p R.a7 93;
        A.li p R.a0 1;
        A.ecall p;
        A.align p 4;
        A.label p "buf";
        A.space p 8)
  in
  (match reason with
  | Rv32.Core.Exited 0x56 -> ()
  | r ->
      Alcotest.failf "expected exit 0x56, got %s"
        (match r with
        | Rv32.Core.Exited c -> Printf.sprintf "exit %d" c
        | Rv32.Core.Running -> "running"
        | Rv32.Core.Breakpoint -> "breakpoint"
        | Rv32.Core.Insn_limit -> "insn limit"));
  ignore reason

(* Write a string to the UART; check it on the host side. *)
let test_uart_tx () =
  let soc, reason =
    run_program (fun p ->
        A.la p R.t0 "msg";
        A.li p R.t1 Vp.Soc.uart_base;
        A.label p "loop";
        A.lbu p R.t2 R.t0 0;
        A.beqz_l p R.t2 "done";
        A.sb p R.t2 R.t1 0;
        A.addi p R.t0 R.t0 1;
        A.j p "loop";
        A.label p "done";
        A.exit_ecall p ();
        A.label p "msg";
        A.asciz p "hello, vp!")
  in
  expect_exit reason 0;
  check_string "uart output" "hello, vp!" (Vp.Uart.tx_string soc.Vp.Soc.uart)

(* Read bytes from the UART rx FIFO (host-injected). *)
let test_uart_rx () =
  let policy = trivial_policy () in
  let soc = soc_of_policy policy in
  let p = A.create () in
  A.li p R.t1 Vp.Soc.uart_base;
  (* Read 3 bytes (assume available), sum them, exit. *)
  A.li p R.a0 0;
  A.li p R.t3 3;
  A.label p "rd";
  A.lbu p R.t0 R.t1 8 (* STATUS *);
  A.andi p R.t0 R.t0 1;
  A.beqz_l p R.t0 "rd";
  A.lbu p R.t2 R.t1 4 (* RXDATA *);
  A.add p R.a0 R.a0 R.t2;
  A.addi p R.t3 R.t3 (-1);
  A.bnez_l p R.t3 "rd";
  A.li p R.a7 93;
  A.ecall p;
  Vp.Soc.load_image soc (A.assemble p);
  Vp.Uart.push_rx soc.Vp.Soc.uart "\x01\x02\x03";
  let reason = Vp.Soc.run_for_instructions soc 10_000 in
  expect_exit reason 6

(* Timer interrupt: set mtimecmp, enable MTI, wfi, count in the handler. *)
let test_timer_interrupt () =
  let _, reason =
    run_program ~max_insns:200_000 (fun p ->
        (* trap handler *)
        A.j p "start";
        A.align p 4;
        A.label p "handler";
        (* stop the timer by setting mtimecmp far away *)
        A.li p R.t0 (Vp.Soc.clint_base + 0x4000);
        A.li p R.t1 0x7fffffff;
        A.sw p R.t1 R.t0 0;
        A.sw p R.t1 R.t0 4;
        A.li p R.a0 42;
        A.li p R.a7 93;
        A.ecall p;
        A.label p "start";
        A.la p R.t0 "handler";
        A.csrrw p R.zero 0x305 R.t0 (* mtvec *);
        (* mtimecmp = mtime + 10 ticks *)
        A.li p R.t0 (Vp.Soc.clint_base + 0xbff8);
        A.lw p R.t1 R.t0 0;
        A.addi p R.t1 R.t1 10;
        A.li p R.t0 (Vp.Soc.clint_base + 0x4000);
        A.sw p R.t1 R.t0 0;
        A.sw p R.zero R.t0 4;
        (* enable MTI + global interrupts *)
        A.li p R.t0 0x80 (* mie.MTIE *);
        A.csrrs p R.zero 0x304 R.t0;
        A.li p R.t0 0x8;
        A.csrrs p R.zero 0x300 R.t0 (* mstatus.MIE *);
        A.label p "idle";
        A.wfi p;
        A.j p "idle")
  in
  expect_exit reason 42

(* Sensor -> PLIC -> external interrupt -> claim. *)
let test_sensor_interrupt () =
  let policy = trivial_policy () in
  let soc = soc_of_policy ~sensor_period:(Sysc.Time.us 50) policy in
  let p = A.create () in
  A.j p "start";
  A.align p 4;
  A.label p "handler";
  (* claim the interrupt, store the source id, exit *)
  A.li p R.t0 (Vp.Soc.plic_base + 8);
  A.lw p R.a0 R.t0 0;
  A.li p R.a7 93;
  A.ecall p;
  A.label p "start";
  A.la p R.t0 "handler";
  A.csrrw p R.zero 0x305 R.t0;
  (* enable sensor source in PLIC *)
  A.li p R.t0 (Vp.Soc.plic_base + 4);
  A.li p R.t1 (1 lsl Vp.Soc.irq_sensor);
  A.sw p R.t1 R.t0 0;
  (* enable MEI + MIE *)
  A.li p R.t0 0x800;
  A.csrrs p R.zero 0x304 R.t0;
  A.li p R.t0 0x8;
  A.csrrs p R.zero 0x300 R.t0;
  A.label p "idle";
  A.wfi p;
  A.j p "idle";
  Vp.Soc.load_image soc (A.assemble p);
  let reason = Vp.Soc.run_for_instructions soc 100_000 in
  expect_exit reason Vp.Soc.irq_sensor

(* DMA copy: program the engine, poll busy, compare buffers. *)
let test_dma_copy () =
  let soc, reason =
    run_program ~max_insns:100_000 (fun p ->
        A.la p R.t0 "src";
        A.la p R.t1 "dst";
        A.li p R.t2 Vp.Soc.dma_base;
        A.sw p R.t0 R.t2 0x0;
        A.sw p R.t1 R.t2 0x4;
        A.li p R.t3 8;
        A.sw p R.t3 R.t2 0x8;
        A.li p R.t3 1;
        A.sw p R.t3 R.t2 0xc;
        A.label p "poll";
        A.lw p R.t3 R.t2 0xc;
        A.bnez_l p R.t3 "poll";
        (* compare first word *)
        A.lw p R.t4 R.t0 0;
        A.lw p R.t5 R.t1 0;
        A.bne_l p R.t4 R.t5 "fail";
        A.exit_ecall p ();
        A.label p "fail";
        A.exit_ecall p ~code:1 ();
        A.align p 4;
        A.label p "src";
        A.word p 0xdeadbeef;
        A.word p 0x01020304;
        A.label p "dst";
        A.space p 8)
  in
  expect_exit reason 0;
  let mem = soc.Vp.Soc.memory in
  ignore mem

(* AES peripheral: encrypt a block from firmware; verify against host AES. *)
let test_aes_peripheral () =
  let soc, reason =
    run_program ~max_insns:200_000 (fun p ->
        A.li p R.t0 Vp.Soc.aes_base;
        (* key = 00.01...0f, data = 00x16 *)
        A.la p R.t1 "key";
        A.li p R.t3 16;
        A.li p R.t4 0;
        A.label p "wk";
        A.add p R.t5 R.t1 R.t4;
        A.lbu p R.t2 R.t5 0;
        A.add p R.t5 R.t0 R.t4;
        A.sb p R.t2 R.t5 0;
        A.addi p R.t4 R.t4 1;
        A.blt_l p R.t4 R.t3 "wk";
        (* din stays zero: write zeros *)
        A.li p R.t4 0;
        A.label p "wd";
        A.add p R.t5 R.t0 R.t4;
        A.sb p R.zero R.t5 0x10;
        A.addi p R.t4 R.t4 1;
        A.blt_l p R.t4 R.t3 "wd";
        (* start, poll *)
        A.li p R.t2 1;
        A.sb p R.t2 R.t0 0x30;
        A.label p "poll";
        A.lbu p R.t2 R.t0 0x30;
        A.bnez_l p R.t2 "poll";
        (* read first ct byte *)
        A.lbu p R.a0 R.t0 0x20;
        A.li p R.a7 93;
        A.ecall p;
        A.label p "key";
        List.iter (fun i -> A.byte p i) (List.init 16 (fun i -> i)))
  in
  let key = String.init 16 Char.chr in
  let ct =
    Crypto.Aes128.encrypt_block (Crypto.Aes128.expand key) (String.make 16 '\000')
  in
  expect_exit reason (Char.code ct.[0]);
  ignore soc

(* CAN mailbox: firmware sends a frame; host model receives and replies. *)
let test_can_roundtrip () =
  let policy = trivial_policy () in
  let soc = soc_of_policy policy in
  let received = ref "" in
  Vp.Can.set_tx_callback soc.Vp.Soc.can (fun frame ->
      received := frame;
      Vp.Can.push_rx_frame soc.Vp.Soc.can "ACK\000\000\000\000\000");
  let p = A.create () in
  A.li p R.t0 Vp.Soc.can_base;
  (* send "PING" *)
  A.la p R.t1 "msg";
  A.lw p R.t2 R.t1 0;
  A.sw p R.t2 R.t0 0;
  A.sw p R.zero R.t0 4;
  A.li p R.t2 1;
  A.sb p R.t2 R.t0 8;
  (* wait for rx *)
  A.label p "poll";
  A.lbu p R.t2 R.t0 0x18;
  A.beqz_l p R.t2 "poll";
  A.lbu p R.a0 R.t0 0x10 (* 'A' *);
  A.li p R.a7 93;
  A.ecall p;
  A.label p "msg";
  A.ascii p "PING";
  A.word p 0;
  Vp.Soc.load_image soc (A.assemble p);
  let reason = Vp.Soc.run_for_instructions soc 50_000 in
  expect_exit reason (Char.code 'A');
  check_string "frame" "PING\000\000\000\000" !received


(* Interrupt priority: external is taken before software before timer. *)
let test_interrupt_priority () =
  let policy = trivial_policy () in
  let soc = soc_of_policy policy in
  let p = A.create () in
  A.j p "start";
  A.align p 4;
  A.label p "handler";
  A.csrrs p R.a0 0x342 R.zero (* mcause *);
  A.li p R.a7 93;
  A.ecall p;
  A.label p "start";
  A.la p R.t0 "handler";
  A.csrrw p R.zero 0x305 R.t0;
  (* Enable all three, then raise all three before enabling MIE. *)
  A.li p R.t0 0x888;
  A.csrrs p R.zero 0x304 R.t0;
  (* Raise MSIP via CLINT and MTIP by making mtimecmp = 0. *)
  A.li p R.t0 Vp.Soc.clint_base;
  A.li p R.t1 1;
  A.sw p R.t1 R.t0 0 (* msip *);
  A.li p R.t0 (Vp.Soc.clint_base + 0x4000);
  A.sw p R.zero R.t0 0;
  A.sw p R.zero R.t0 4 (* mtimecmp = 0 -> pending at once *);
  (* External: trigger the PLIC from firmware is not possible; use the
     sensor by enabling its source and waiting a frame? Simpler: MEI is
     raised host-side before MIE is set below, see after-load code. *)
  A.li p R.t0 0x8;
  A.csrrs p R.zero 0x300 R.t0 (* MIE on: all three pending *);
  A.label p "spin";
  A.j p "spin";
  Vp.Soc.load_image soc (A.assemble p);
  (* Raise the external line directly. *)
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_irq ~bit:Rv32.Csr.bit_mei ~on:true;
  let reason = Vp.Soc.run_for_instructions soc 10_000 in
  (* cause = interrupt bit | 11 (external). *)
  (match reason with
  | Rv32.Core.Exited c ->
      check_int "external first" (0x80000000 lor 11) (c land 0xffffffff)
  | _ -> Alcotest.fail "no exit")

(* mstatus.MPIE/MIE save-restore across trap and mret. *)
let test_mstatus_trap_restore () =
  let _, reason =
    run_program (fun p ->
        A.j p "start";
        A.align p 4;
        A.label p "handler";
        (* Inside the handler MIE must be 0 and MPIE must hold the old MIE
           (1). Record mstatus, skip the ecall, return. *)
        A.csrrs p R.s2 0x300 R.zero;
        A.csrrs p R.t0 0x341 R.zero;
        A.addi p R.t0 R.t0 4;
        A.csrrw p R.zero 0x341 R.t0;
        A.mret p;
        A.label p "start";
        Firmware.Rt.setup_trap_handler p "handler";
        A.li p R.t0 0x8;
        A.csrrs p R.zero 0x300 R.t0 (* MIE = 1 *);
        A.li p R.a7 1;
        A.ecall p (* trap *);
        (* Back from mret: MIE must be restored to 1. *)
        A.csrrs p R.s3 0x300 R.zero;
        (* a0 = (handler saw MIE=0, MPIE=1) and (restored MIE=1) *)
        A.andi p R.t0 R.s2 0x8;
        A.snez p R.t0 R.t0 (* 1 if MIE was set in handler (bad) *);
        A.andi p R.t1 R.s2 0x80;
        A.snez p R.t1 R.t1 (* 1 if MPIE set in handler (good) *);
        A.andi p R.t2 R.s3 0x8;
        A.snez p R.t2 R.t2 (* 1 if MIE restored (good) *);
        (* encode: a0 = t0*100 + t1*10 + t2, expect 011 *)
        A.li p R.t3 100;
        A.mul p R.a0 R.t0 R.t3;
        A.li p R.t3 10;
        A.mul p R.t1 R.t1 R.t3;
        A.add p R.a0 R.a0 R.t1;
        A.add p R.a0 R.a0 R.t2;
        Firmware.Rt.exit_a0 p)
  in
  expect_exit reason 11

(* The whole platform still works with the DMI fast path disabled (every
   access routed through TLM). *)
let test_tlm_only_mode () =
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true ~dmi:false () in
  let p = A.create () in
  A.li p R.a0 0;
  A.li p R.t0 1;
  A.li p R.t1 100;
  A.label p "loop";
  A.add p R.a0 R.a0 R.t0;
  A.addi p R.t0 R.t0 1;
  A.bge_l p R.t1 R.t0 "loop";
  A.li p R.a7 93;
  A.ecall p;
  Vp.Soc.load_image soc (A.assemble p);
  expect_exit (Vp.Soc.run_for_instructions soc 10_000) 5050

(* UART receive interrupt wakes a wfi loop: echo each byte, exit on NUL. *)
let test_uart_irq_echo () =
  let policy = trivial_policy () in
  let soc = soc_of_policy policy in
  let p = A.create () in
  A.j p "start";
  A.align p 4;
  A.label p "handler";
  A.li p R.t0 (Vp.Soc.plic_base + 8);
  A.lw p R.t1 R.t0 0 (* claim *);
  A.li p R.t2 Vp.Soc.uart_base;
  A.label p "drain";
  A.lbu p R.t3 R.t2 8;
  A.andi p R.t3 R.t3 1;
  A.beqz_l p R.t3 "h.done";
  A.lbu p R.t4 R.t2 4 (* rx byte *);
  A.beqz_l p R.t4 "h.exit";
  A.sb p R.t4 R.t2 0 (* echo *);
  A.j p "drain";
  A.label p "h.exit";
  A.exit_ecall p ();
  A.label p "h.done";
  A.sw p R.t1 R.t0 0;
  A.mret p;
  A.label p "start";
  Firmware.Rt.entry p ();
  Firmware.Rt.setup_trap_handler p "handler";
  A.li p R.t0 (Vp.Soc.plic_base + 4);
  A.li p R.t1 (1 lsl Vp.Soc.irq_uart);
  A.sw p R.t1 R.t0 0;
  (* Enable the UART rx interrupt in the device. *)
  A.li p R.t0 Vp.Soc.uart_base;
  A.li p R.t1 1;
  A.sb p R.t1 R.t0 0xc;
  Firmware.Rt.enable_machine_interrupts p ~mie_bits:0x800;
  A.label p "idle";
  A.wfi p;
  A.j p "idle";
  Vp.Soc.load_image soc (A.assemble p);
  Vp.Uart.push_rx soc.Vp.Soc.uart "echo!\000";
  let reason = Vp.Soc.run_for_instructions soc 100_000 in
  expect_exit reason 0;
  check_string "echoed" "echo!" (Vp.Uart.tx_string soc.Vp.Soc.uart)

(* GPIO scenario: a tamper switch drives a classified input pin; the
   firmware branches on it and reports over the UART. With the pin
   classified HC and a branch clearance of LC, the DIFT engine flags the
   implicit flow. With an LC pin the same firmware runs clean. *)
let gpio_firmware () =
  let p = A.create () in
  Firmware.Rt.entry p ();
  A.li p R.t0 Vp.Soc.gpio_base;
  A.lw p R.t1 R.t0 8 (* IN *);
  A.andi p R.t1 R.t1 1 (* pin 0 = tamper switch *);
  A.beqz_l p R.t1 "ok";
  A.li p R.t2 Vp.Soc.uart_base;
  A.li p R.t3 (Char.code 'T');
  A.sb p R.t3 R.t2 0;
  A.label p "ok";
  A.exit_ecall p ();
  A.assemble p

let gpio_soc ~tamper_tag =
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:lc
      ~output_clearance:[ ("uart", lc) ]
      ~exec_branch:lc ()
  in
  let monitor = Dift.Monitor.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  Vp.Soc.load_image soc (gpio_firmware ());
  Vp.Gpio.drive_input soc.Vp.Soc.gpio ~pin:0
    ~tag:(Dift.Lattice.tag_of_name lat tamper_tag)
    true;
  soc

let test_gpio_tamper_classified () =
  let soc = gpio_soc ~tamper_tag:"HC" in
  match Vp.Soc.run_for_instructions soc 10_000 with
  | exception Dift.Violation.Violation v ->
      check_bool "branch on classified pin flagged" true
        (v.Dift.Violation.kind = Dift.Violation.Exec_branch)
  | _ -> Alcotest.fail "classified tamper pin must trip the branch check"

let test_gpio_tamper_public () =
  let soc = gpio_soc ~tamper_tag:"LC" in
  expect_exit (Vp.Soc.run_for_instructions soc 10_000) 0;
  check_string "tamper reported" "T" (Vp.Uart.tx_string soc.Vp.Soc.uart)

let () =
  Alcotest.run "soc"

    [
      ( "integration",
        [
          Alcotest.test_case "sum loop" `Quick test_sum_loop;
          Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
          Alcotest.test_case "uart tx" `Quick test_uart_tx;
          Alcotest.test_case "uart rx" `Quick test_uart_rx;
          Alcotest.test_case "timer interrupt" `Quick test_timer_interrupt;
          Alcotest.test_case "sensor interrupt" `Quick test_sensor_interrupt;
          Alcotest.test_case "dma copy" `Quick test_dma_copy;
          Alcotest.test_case "aes peripheral" `Quick test_aes_peripheral;
          Alcotest.test_case "can roundtrip" `Quick test_can_roundtrip;
          Alcotest.test_case "interrupt priority" `Quick test_interrupt_priority;
          Alcotest.test_case "mstatus trap save/restore" `Quick
            test_mstatus_trap_restore;
          Alcotest.test_case "TLM-only mode (no DMI)" `Quick test_tlm_only_mode;
          Alcotest.test_case "uart irq echo" `Quick test_uart_irq_echo;
          Alcotest.test_case "gpio tamper pin (classified)" `Quick
            test_gpio_tamper_classified;
          Alcotest.test_case "gpio tamper pin (public)" `Quick
            test_gpio_tamper_public;
        ] );
    ]
