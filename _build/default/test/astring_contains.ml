(* Tiny substring search used by a few tests. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  if n = 0 then true
  else begin
    let found = ref false in
    for i = 0 to m - n do
      if (not !found) && String.sub s i n = sub then found := true
    done;
    !found
  end
