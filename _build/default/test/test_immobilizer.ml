(* The car-engine-immobilizer case study of Section VI-A. *)

open Helpers
module Immo = Firmware.Immo_fw

let make_soc ?(per_byte = false) ?monitor img =
  let policy =
    if per_byte then Immo.per_byte_policy img else Immo.base_policy img
  in
  let monitor =
    match monitor with
    | Some m -> m
    | None -> Dift.Monitor.create policy.Dift.Policy.lattice
  in
  let aes_out_tag, aes_in_clearance = Immo.aes_args policy in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true ~aes_out_tag
      ~aes_in_clearance ()
  in
  Vp.Soc.load_image soc img;
  soc

let run soc = Vp.Soc.run_for_instructions soc 2_000_000

(* Run and expect a specific violation kind. *)
let expect_violation ~kind_check img setup =
  let soc = make_soc img in
  setup soc;
  match run soc with
  | exception Dift.Violation.Violation v ->
      check_bool "violation kind" true (kind_check v.Dift.Violation.kind)
  | _ -> Alcotest.fail "expected a security violation, none raised"

let test_protocol_works () =
  let img = Immo.image ~variant:(Immo.Normal { fixed_dump = true }) () in
  let soc = make_soc img in
  let engine = Immo.Engine.attach soc ~challenge:"CHLLNG00" in
  expect_exit (run soc) 0;
  check_bool "two response frames" true (Immo.Engine.response engine <> None);
  check_bool "response encrypts challenge with the PIN" true
    (Immo.Engine.response_valid engine)

let test_pin_never_on_can () =
  let img = Immo.image ~variant:(Immo.Normal { fixed_dump = true }) () in
  let soc = make_soc img in
  let _engine = Immo.Engine.attach soc ~challenge:"CHLLNG01" in
  expect_exit (run soc) 0;
  List.iter
    (fun frame ->
      check_bool "no PIN fragment in CAN traffic" false
        (Astring_contains.contains ~sub:(String.sub Immo.pin_value 0 4) frame))
    (Vp.Can.tx_frames soc.Vp.Soc.can)

let test_vulnerable_dump_detected () =
  let img = Immo.image ~variant:(Immo.Normal { fixed_dump = false }) () in
  expect_violation img
    ~kind_check:(function
      | Dift.Violation.Output_clearance "uart" -> true
      | _ -> false)
    (fun soc ->
      let _engine = Immo.Engine.attach soc ~challenge:"CHLLNG02" in
      Vp.Uart.push_rx soc.Vp.Soc.uart "D")

let test_fixed_dump_safe () =
  let img = Immo.image ~variant:(Immo.Normal { fixed_dump = true }) () in
  let soc = make_soc img in
  let _engine = Immo.Engine.attach soc ~challenge:"CHLLNG03" in
  Vp.Uart.push_rx soc.Vp.Soc.uart "D";
  expect_exit (run soc) 0;
  let out = Vp.Uart.tx_string soc.Vp.Soc.uart in
  check_bool "dump happened" true (String.length out > 0);
  check_bool "dump does not contain the PIN" false
    (Astring_contains.contains ~sub:(String.sub Immo.pin_value 0 4) out)

let test_leak_direct () =
  expect_violation
    (Immo.image ~variant:Immo.Leak_direct ())
    ~kind_check:(function
      | Dift.Violation.Output_clearance "uart" -> true
      | _ -> false)
    (fun _ -> ())

let test_leak_indirect () =
  expect_violation
    (Immo.image ~variant:Immo.Leak_indirect ())
    ~kind_check:(function
      | Dift.Violation.Output_clearance "uart" -> true
      | _ -> false)
    (fun _ -> ())

let test_branch_on_pin () =
  expect_violation
    (Immo.image ~variant:Immo.Branch_on_pin ())
    ~kind_check:(function Dift.Violation.Exec_branch -> true | _ -> false)
    (fun _ -> ())

let test_overwrite_pin_external () =
  expect_violation
    (Immo.image ~variant:Immo.Overwrite_pin_external ())
    ~kind_check:(function
      | Dift.Violation.Store_integrity _ -> true
      | _ -> false)
    (fun soc -> Vp.Can.push_rx_frame soc.Vp.Soc.can "XXXXXXXX")

(* The entropy-reduction attack: allowed by the base policy (as the paper
   observes), caught by the per-byte policy. *)
let test_entropy_attack_base_policy_misses () =
  let img = Immo.image ~variant:Immo.Entropy_attack () in
  let soc = make_soc img in
  expect_exit (run soc) 0;
  (* The attack actually degraded the key: all bytes now equal byte 0. *)
  let pin_addr = Rv32_asm.Image.symbol img "pin" - Vp.Soc.ram_base in
  let b0 = Vp.Memory.read_byte soc.Vp.Soc.memory pin_addr in
  for i = 1 to 15 do
    check_int "pin byte overwritten" b0
      (Vp.Memory.read_byte soc.Vp.Soc.memory (pin_addr + i))
  done

let test_entropy_attack_per_byte_detects () =
  let img = Immo.image ~variant:Immo.Entropy_attack () in
  let soc = make_soc ~per_byte:true img in
  match run soc with
  | exception Dift.Violation.Violation v ->
      check_bool "store-integrity violation" true
        (match v.Dift.Violation.kind with
        | Dift.Violation.Store_integrity _ -> true
        | _ -> false)
  | _ -> Alcotest.fail "per-byte policy must detect the entropy attack"

(* The end-to-end exploit the paper warns about: under the base policy the
   degraded key answers challenges normally, and one sniffed response is
   enough to brute-force the PIN in at most 256 trials. *)
let test_entropy_exploit_brute_forces_pin () =
  let img = Immo.image ~variant:Immo.Entropy_then_serve () in
  let soc = make_soc img in
  let engine = Immo.Engine.attach soc ~challenge:"CHLLNG99" in
  expect_exit (run soc) 0;
  match Immo.Engine.response engine with
  | None -> Alcotest.fail "no response to brute-force"
  | Some response -> (
      match
        Immo.Engine.brute_force_uniform ~challenge:"CHLLNG99" ~response
      with
      | Some key ->
          check_string "recovered the degraded key"
            (String.make 16 Immo.pin_value.[0])
            key
      | None -> Alcotest.fail "brute force failed")

(* And under the per-byte policy the degrade step itself is stopped, so
   the exploit never reaches the protocol. *)
let test_entropy_exploit_blocked_per_byte () =
  let img = Immo.image ~variant:Immo.Entropy_then_serve () in
  let soc = make_soc ~per_byte:true img in
  let _engine = Immo.Engine.attach soc ~challenge:"CHLLNG99" in
  match run soc with
  | exception Dift.Violation.Violation _ -> ()
  | _ -> Alcotest.fail "per-byte policy must stop the exploit"

let test_protocol_still_works_per_byte () =
  let img = Immo.image ~variant:(Immo.Normal { fixed_dump = true }) () in
  let soc = make_soc ~per_byte:true img in
  let engine = Immo.Engine.attach soc ~challenge:"CHLLNG04" in
  expect_exit (run soc) 0;
  check_bool "response valid under per-byte policy" true
    (Immo.Engine.response_valid engine)

let test_shipped_policies_validate () =
  let img = Immo.image ~variant:(Immo.Normal { fixed_dump = true }) () in
  (match Dift.Policy.validate (Immo.base_policy img) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "base policy invalid: %s" e);
  (match Dift.Policy.validate (Immo.per_byte_policy img) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "per-byte policy invalid: %s" e);
  match Firmware.Wilander.image_for 3 with
  | Some wimg -> (
      match Dift.Policy.validate (Firmware.Wilander.policy wimg) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "code-injection policy invalid: %s" e)
  | None -> Alcotest.fail "attack 3 must exist"

let test_declassification_logged () =
  let img = Immo.image ~variant:(Immo.Normal { fixed_dump = true }) () in
  let policy = Immo.base_policy img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = make_soc ~monitor img in
  let _engine = Immo.Engine.attach soc ~challenge:"CHLLNG05" in
  expect_exit (run soc) 0;
  check_bool "AES declassified at least once" true
    (Dift.Monitor.declassification_count monitor >= 1)

let () =
  Alcotest.run "immobilizer"
    [
      ( "case-study",
        [
          Alcotest.test_case "challenge-response protocol" `Quick
            test_protocol_works;
          Alcotest.test_case "PIN never on CAN in plaintext" `Quick
            test_pin_never_on_can;
          Alcotest.test_case "vulnerable debug dump detected" `Quick
            test_vulnerable_dump_detected;
          Alcotest.test_case "fixed debug dump passes" `Quick
            test_fixed_dump_safe;
          Alcotest.test_case "attack 1a: direct leak detected" `Quick
            test_leak_direct;
          Alcotest.test_case "attack 1b: indirect leak detected" `Quick
            test_leak_indirect;
          Alcotest.test_case "attack 2: branch on PIN detected" `Quick
            test_branch_on_pin;
          Alcotest.test_case "attack 3: external overwrite detected" `Quick
            test_overwrite_pin_external;
          Alcotest.test_case "entropy attack missed by base policy" `Quick
            test_entropy_attack_base_policy_misses;
          Alcotest.test_case "entropy attack caught per-byte" `Quick
            test_entropy_attack_per_byte_detects;
          Alcotest.test_case "entropy exploit brute-forces the PIN" `Quick
            test_entropy_exploit_brute_forces_pin;
          Alcotest.test_case "entropy exploit blocked per-byte" `Quick
            test_entropy_exploit_blocked_per_byte;
          Alcotest.test_case "protocol ok under per-byte policy" `Quick
            test_protocol_still_works_per_byte;
          Alcotest.test_case "declassification events logged" `Quick
            test_declassification_logged;
          Alcotest.test_case "shipped policies validate" `Quick
            test_shipped_policies_validate;
        ] );
    ]
