test/test_periph.mli:
