test/test_attacks.ml: Alcotest Firmware Helpers List Printf
