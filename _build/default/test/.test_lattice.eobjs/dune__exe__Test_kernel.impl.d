test/test_kernel.ml: Alcotest Astring_contains Format Gen Helpers Int List QCheck Sysc Test
