test/test_soc.ml: Alcotest Char Crypto Dift Firmware Helpers List Printf Rv32 Rv32_asm String Sysc Vp
