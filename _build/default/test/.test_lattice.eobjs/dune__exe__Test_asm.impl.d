test/test_asm.ml: Alcotest Astring_contains Bytes Char Dift Filename Helpers Int32 List Rv32 Rv32_asm String Sys Vp
