test/helpers.ml: Alcotest Dift QCheck_alcotest Rv32 Rv32_asm Vp
