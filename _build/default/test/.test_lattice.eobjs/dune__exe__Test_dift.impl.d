test/test_dift.ml: Alcotest Astring_contains Dift Firmware Helpers List Rv32 Rv32_asm Vp
