test/test_periph.ml: Alcotest Char Crypto Dift Helpers Int32 List String Sysc Tlm Vp
