test/test_taint.ml: Alcotest Array Char Dift Format Helpers Int32 QCheck Test
