test/test_rv32.ml: Alcotest Bytes Firmware Helpers Int32 List Printf QCheck Rv32 Rv32_asm Vp
