test/test_tlm.mli:
