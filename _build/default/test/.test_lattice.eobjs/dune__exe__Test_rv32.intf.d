test/test_rv32.mli:
