test/test_lattice.ml: Alcotest Astring_contains Dift Gen Helpers List Option Printf QCheck
