test/test_crypto.ml: Alcotest Char Crypto Gen Helpers List Printf QCheck String Test
