test/test_immobilizer.ml: Alcotest Astring_contains Dift Firmware Helpers List Rv32_asm String Vp
