test/test_immobilizer.mli:
