test/test_firmware.ml: Alcotest Dift Firmware Helpers Rv32_asm String Sysc Vp
