test/test_tlm.ml: Alcotest Dift Helpers Int32 List QCheck Sysc Test Tlm
