(* policy_fuzz: stress-test the DIFT engine with random programs under
   random security policies (the paper's future-work direction).

     dune exec bin/policy_fuzz.exe -- --programs 500 --seed 42 *)

open Cmdliner

let run programs seed size =
  let report = Firmware.Fuzz.run ~seed ~size ~programs () in
  Format.printf "%a@." Firmware.Fuzz.pp_report report;
  if Firmware.Fuzz.healthy report then begin
    Format.printf "all invariants hold.@.";
    0
  end
  else begin
    Format.printf "INVARIANT VIOLATIONS — see counters above.@.";
    1
  end

let programs_arg =
  Arg.(value & opt int 200 & info [ "programs"; "n" ] ~docv:"N" ~doc:"Programs to generate.")

let seed_arg =
  Arg.(value & opt int 0x5eed & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are reproducible).")

let size_arg =
  Arg.(value & opt int 40 & info [ "size" ] ~docv:"K" ~doc:"Instructions per program.")

let cmd =
  let doc = "fuzz the DIFT engine with random programs and policies" in
  Cmd.v (Cmd.info "policy_fuzz" ~doc)
    Term.(const run $ programs_arg $ seed_arg $ size_arg)

let () = exit (Cmd.eval' cmd)
