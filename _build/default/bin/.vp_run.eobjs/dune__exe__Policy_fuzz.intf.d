bin/policy_fuzz.mli:
