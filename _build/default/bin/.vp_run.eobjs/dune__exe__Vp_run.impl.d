bin/vp_run.ml: Arg Bytes Cmd Cmdliner Dift Format Hashtbl Int32 List Printf Rv32 Rv32_asm String Term Vp
