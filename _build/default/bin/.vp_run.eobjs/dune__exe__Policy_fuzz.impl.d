bin/policy_fuzz.ml: Arg Cmd Cmdliner Firmware Format Term
