bin/vp_run.mli:
