bin/rvasm.mli:
