bin/rvasm.ml: Arg Bytes Cmd Cmdliner Format Int32 Printf Rv32 Rv32_asm Term
