(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section VI) plus the ablation studies called out in
   DESIGN.md.

   Subcommands:
     fig1             - the three example IFPs of Fig. 1 (+ checks + DOT)
     table1           - Wilander-Kamkar suite results (Table I)
     table2 [scale]   - performance overhead VP vs VP+ (Table II)
     loc              - DIFT-integration LoC share (the paper's 6.81% stat)
     ablate-dmi       - DMI fast path vs full TLM routing
     ablate-policy    - cost decomposition: tags only vs tags+checks
     ablate-lub       - precomputed LUB table vs on-the-fly search
     ablate-quantum   - loosely-timed quantum sweep
     sweep-lattice    - VP+ overhead vs IFP size (beyond the paper)
     table2-extended  - additional workloads (crc32, matmul, strings, sw-AES)
     bechamel         - Bechamel micro-measurements (one group per table)
     all (default)    - everything above except bechamel *)

let pf = Printf.printf

let now_s () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Fig. 1                                                              *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  pf "=== Fig. 1: example information flow policies ===\n\n";
  let show name l =
    pf "%s:\n%s\n" name (Format.asprintf "%a" Dift.Lattice.pp l);
    pf "dot:\n%s\n" (Dift.Lattice.to_dot l)
  in
  let c = Dift.Lattice.confidentiality () in
  let i = Dift.Lattice.integrity () in
  let p = Dift.Lattice.ifp3 () in
  show "IFP-1 (confidentiality)" c;
  show "IFP-2 (integrity)" i;
  show "IFP-3 (product)" p;
  (* The properties quoted in Section IV-A. *)
  let t n = Dift.Lattice.tag_of_name p n in
  let lub = Dift.Lattice.name p (Dift.Lattice.lub p (t "LC,LI") (t "HC,HI")) in
  pf "check: LUB((LC,LI),(HC,HI)) = %s (paper: HC,LI) %s\n" lub
    (if lub = "HC,LI" then "[ok]" else "[MISMATCH]");
  let flow a b = Dift.Lattice.allowed_flow p (t a) (t b) in
  pf "check: (HC,*) cannot reach (LC,*) outputs: %s\n"
    (if (not (flow "HC,HI" "LC,LI")) && not (flow "HC,LI" "LC,LI") then "[ok]"
     else "[MISMATCH]");
  pf "check: (*,LI) cannot reach (*,HI) sinks: %s\n"
    (if (not (flow "LC,LI" "LC,HI")) && not (flow "HC,LI" "HC,HI")  then "[ok]"
     else "[MISMATCH]")

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  pf "=== Table I: buffer-overflow test-suite results ===\n\n";
  pf "%-5s %-15s %-26s %-10s %-10s\n" "Atk#" "Location" "Target" "Technique"
    "Result";
  let ok = ref true in
  List.iter
    (fun a ->
      let result =
        match Firmware.Wilander.run a.Firmware.Wilander.id with
        | Firmware.Wilander.Detected -> "Detected"
        | Firmware.Wilander.Missed c ->
            ok := false;
            Printf.sprintf "MISSED (exit %d)" c
        | Firmware.Wilander.Not_applicable -> "N/A"
      in
      pf "%-5d %-15s %-26s %-10s %-10s\n" a.Firmware.Wilander.id
        a.Firmware.Wilander.location a.Firmware.Wilander.target
        a.Firmware.Wilander.technique result)
    Firmware.Wilander.attacks;
  pf "\npaper: 10 Detected / 8 N/A -> %s\n"
    (if !ok then "reproduced" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

type bench_def = {
  b_name : string;
  make_image : int -> Rv32_asm.Image.t;  (* scale -> image *)
  make_policy : Rv32_asm.Image.t -> Dift.Policy.t;
  setup : Vp.Soc.t -> unit;
  sensor_period : Sysc.Time.t option;
  aes : Rv32_asm.Image.t -> (Dift.Lattice.tag * Dift.Lattice.tag) option;
}

(* The default benchmark policy: the code-injection setup of Section VI-B
   (program HI, fetch clearance HI) — a representative always-on check. *)
let integrity_policy img =
  let lat = Dift.Lattice.integrity () in
  let hi = Dift.Lattice.tag_of_name lat "HI" in
  let li = Dift.Lattice.tag_of_name lat "LI" in
  Dift.Policy.make ~lattice:lat ~default_tag:li
    ~classification:
      [ Dift.Policy.region ~name:"program" ~lo:img.Rv32_asm.Image.org
          ~hi:(Rv32_asm.Image.limit img - 1) ~tag:hi ]
    ~exec_fetch:hi ()

let plain b ~make_image = {
  b_name = b;
  make_image;
  make_policy = integrity_policy;
  setup = (fun _ -> ());
  sensor_period = None;
  aes = (fun _ -> None);
}

(* Host side of the immobilizer: keep feeding challenges. *)
let auto_engine ~challenges soc =
  let sent = ref 1 and frames = ref 0 in
  Vp.Can.set_tx_callback soc.Vp.Soc.can (fun _ ->
      incr frames;
      if !frames mod 2 = 0 && !sent < challenges then begin
        incr sent;
        Vp.Can.push_rx_frame soc.Vp.Soc.can (Printf.sprintf "CH%06d" !sent)
      end);
  Vp.Can.push_rx_frame soc.Vp.Soc.can "CH000000"

let benches scale =
  [
    plain "qsort" ~make_image:(fun s ->
        Firmware.Qsort_fw.image ~n:1000 ~rounds:(4 * s) ());
    plain "dhrystone" ~make_image:(fun s ->
        Firmware.Dhrystone_fw.image ~iterations:(8000 * s) ());
    plain "primes" ~make_image:(fun s -> Firmware.Primes_fw.image ~n:(4000 * s) ());
    plain "sha512" ~make_image:(fun s ->
        Firmware.Sha_fw.image ~message_len:(16384 * s) ());
    { (plain "simple-sensor" ~make_image:(fun s ->
           Firmware.Sensor_fw.image ~frames:(600 * s) ()))
      with sensor_period = Some (Sysc.Time.us 20) };
    plain "freertos-tasks" ~make_image:(fun s ->
        Firmware.Rtos_fw.image ~switches:(400 * s) ~slice_ticks:20 ());
    {
      b_name = "immo-fixed";
      make_image =
        (fun s ->
          Firmware.Immo_fw.image
            ~variant:(Firmware.Immo_fw.Normal { fixed_dump = true })
            ~challenges:(300 * s) ());
      make_policy = Firmware.Immo_fw.base_policy;
      setup = (fun soc -> auto_engine ~challenges:(300 * scale) soc);
      sensor_period = None;
      aes = (fun img -> Some (Firmware.Immo_fw.aes_args (Firmware.Immo_fw.base_policy img)));
    };
  ]

type row = {
  r_name : string;
  instr : int;
  loc_asm : int;
  time_vp : float;
  time_vpp : float;
}

let run_one def ~scale ~tracking =
  let img = def.make_image scale in
  let policy = def.make_policy img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let aes_out_tag, aes_in_clearance =
    match def.aes img with Some (o, c) -> (Some o, Some c) | None -> (None, None)
  in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking ?sensor_period:def.sensor_period
      ?aes_out_tag ?aes_in_clearance ()
  in
  Vp.Soc.load_image soc img;
  def.setup soc;
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000_000;
  Vp.Soc.start soc;
  let t0 = now_s () in
  Vp.Soc.run soc;
  let dt = now_s () -. t0 in
  (match soc.Vp.Soc.cpu.Vp.Soc.cpu_exit () with
  | Rv32.Core.Exited 0 -> ()
  | Rv32.Core.Exited c -> pf "!! %s exited with %d\n" def.b_name c
  | r ->
      pf "!! %s did not exit cleanly (%s)\n" def.b_name
        (match r with
        | Rv32.Core.Running -> "running"
        | Rv32.Core.Breakpoint -> "breakpoint"
        | Rv32.Core.Insn_limit -> "insn-limit"
        | Rv32.Core.Exited _ -> assert false));
  (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret (), img.Rv32_asm.Image.insn_count, dt)

let table2_rows ~scale =
  List.map
    (fun def ->
      let instr, loc_asm, time_vp = run_one def ~scale ~tracking:false in
      let _, _, time_vpp = run_one def ~scale ~tracking:true in
      { r_name = def.b_name; instr; loc_asm; time_vp; time_vpp })
    (benches scale)

let print_table2 rows =
  pf "%-15s %14s %8s %9s %9s %7s %7s %6s\n" "Benchmark" "#instr exec."
    "LoC ASM" "VP [s]" "VP+ [s]" "VP" "VP+" "Ov.";
  pf "%-15s %14s %8s %9s %9s %7s %7s %6s\n" "" "" "" "" "" "MIPS" "MIPS" "";
  let mips i t = if t > 0. then float_of_int i /. t /. 1e6 else 0. in
  List.iter
    (fun r ->
      pf "%-15s %14d %8d %9.3f %9.3f %7.1f %7.1f %5.1fx\n" r.r_name r.instr
        r.loc_asm r.time_vp r.time_vpp (mips r.instr r.time_vp)
        (mips r.instr r.time_vpp)
        (if r.time_vp > 0. then r.time_vpp /. r.time_vp else 0.))
    rows;
  let n = float_of_int (List.length rows) in
  let avg f = List.fold_left (fun a r -> a +. f r) 0. rows /. n in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  pf "%-15s %14d %8d %9.3f %9.3f %7.1f %7.1f %5.1fx\n" "- average -"
    (sum (fun r -> r.instr) / List.length rows)
    (sum (fun r -> r.loc_asm) / List.length rows)
    (avg (fun r -> r.time_vp))
    (avg (fun r -> r.time_vpp))
    (avg (fun r -> mips r.instr r.time_vp))
    (avg (fun r -> mips r.instr r.time_vpp))
    (avg (fun r -> if r.time_vp > 0. then r.time_vpp /. r.time_vp else 0.))

let table2 ~scale () =
  pf "=== Table II: performance overhead of VP-based DIFT (scale %d) ===\n\n"
    scale;
  pf "(workloads scaled down vs the paper's multi-billion-instruction runs;\n";
  pf " the target is the overhead SHAPE: VP+ roughly 1.2x-3x, average ~2x)\n\n";
  print_table2 (table2_rows ~scale)

(* ------------------------------------------------------------------ *)
(* LoC statistic (Section V-B1's 6.81%)                                *)
(* ------------------------------------------------------------------ *)

let count_lines path =
  try
    let ic = open_in path in
    let n = ref 0 in
    (try
       while true do
         ignore (input_line ic);
         incr n
       done
     with End_of_file -> ());
    close_in ic;
    !n
  with Sys_error _ -> 0

let rec ml_files dir =
  match Sys.readdir dir with
  | entries ->
      Array.to_list entries
      |> List.concat_map (fun e ->
             let p = Filename.concat dir e in
             if Sys.is_directory p then ml_files p
             else if Filename.check_suffix p ".ml" || Filename.check_suffix p ".mli"
             then [ p ]
             else [])
  | exception Sys_error _ -> []

let loc_report () =
  pf "=== DIFT-integration LoC share (cf. the paper's 6.81%%) ===\n\n";
  let total = List.fold_left (fun a f -> a + count_lines f) 0 (ml_files "lib") in
  let dift = List.fold_left (fun a f -> a + count_lines f) 0 (ml_files "lib/core") in
  if total = 0 then
    pf "(run from the repository root to measure the source tree)\n"
  else
    pf
      "DIFT engine (lib/core): %d lines of %d platform lines total = %.2f%%\n\
       (the paper reports 6.81%% of the original VP touched, 58.7%% of which\n\
       were plain type conversions; our engine is a separate library, so the\n\
       share counts its whole implementation)\n"
      dift total
      (100. *. float_of_int dift /. float_of_int total)

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let time_qsort ~tracking ~dmi ~quantum ~policy_of =
  let img = Firmware.Qsort_fw.image ~n:1000 ~rounds:4 () in
  let policy = policy_of img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking ~dmi ~quantum () in
  Vp.Soc.load_image soc img;
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000_000;
  Vp.Soc.start soc;
  let t0 = now_s () in
  Vp.Soc.run soc;
  let dt = now_s () -. t0 in
  (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret (), dt)

let unrestricted_policy img =
  ignore img;
  let lat = Dift.Lattice.integrity () in
  Dift.Policy.unrestricted lat ~default_tag:(Dift.Lattice.tag_of_name lat "HI")

let ablate_dmi () =
  pf "=== Ablation: DMI fast path vs full TLM routing (qsort) ===\n\n";
  List.iter
    (fun (label, dmi, tracking) ->
      let instr, dt = time_qsort ~tracking ~dmi ~quantum:1000 ~policy_of:integrity_policy in
      pf "%-28s %10d instr  %8.3f s  %7.1f MIPS\n" label instr dt
        (float_of_int instr /. dt /. 1e6))
    [ ("VP  + DMI", true, false); ("VP  + TLM-only", false, false);
      ("VP+ + DMI", true, true); ("VP+ + TLM-only", false, true) ]

let ablate_policy () =
  pf "=== Ablation: cost decomposition of the DIFT engine (qsort) ===\n\n";
  let cases =
    [ ("VP (no tags at all)", false, integrity_policy);
      ("VP+ tags only (no checks)", true, unrestricted_policy);
      ("VP+ tags + fetch check", true, integrity_policy) ]
  in
  List.iter
    (fun (label, tracking, policy_of) ->
      let instr, dt = time_qsort ~tracking ~dmi:true ~quantum:1000 ~policy_of in
      pf "%-28s %10d instr  %8.3f s  %7.1f MIPS\n" label instr dt
        (float_of_int instr /. dt /. 1e6))
    cases

let ablate_lub () =
  pf "=== Ablation: precomputed LUB table vs on-the-fly search ===\n\n";
  let lats =
    [ ("IFP-2 (2 classes)", Dift.Lattice.integrity ());
      ("IFP-3 (4 classes)", Dift.Lattice.ifp3 ());
      ("per-byte (19 classes)", Dift.Lattice.per_byte_key ~n:16) ]
  in
  let iters = 5_000_000 in
  List.iter
    (fun (name, lat) ->
      let n = Dift.Lattice.size lat in
      let bench f =
        let t0 = now_s () in
        let acc = ref 0 in
        for i = 0 to iters - 1 do
          acc := !acc + f lat (i mod n) ((i * 7) mod n)
        done;
        ignore !acc;
        now_s () -. t0
      in
      let t_table = bench Dift.Lattice.lub in
      let t_search = bench Dift.Lattice.lub_uncached in
      pf "%-24s table: %6.1f ns/op   search: %6.1f ns/op   (%.1fx)\n" name
        (t_table /. float_of_int iters *. 1e9)
        (t_search /. float_of_int iters *. 1e9)
        (t_search /. t_table))
    lats

(* Extended workloads beyond the paper's benchmark set. *)
let table2_extended ~scale () =
  pf "=== Extended workloads (beyond the paper's Table II set) ===\n\n";
  let extras =
    [
      plain "crc32" ~make_image:(fun s -> Firmware.Extra_fw.crc32_image ~len:(8192 * s) ());
      plain "matmul" ~make_image:(fun s -> Firmware.Extra_fw.matmul_image ~n:(24 * s) ());
      plain "strings" ~make_image:(fun s -> Firmware.Extra_fw.strings_image ~count:(512 * s) ());
      plain "aes-sw" ~make_image:(fun _ -> Firmware.Aes_sw_fw.image ());
    ]
  in
  let rows =
    List.map
      (fun def ->
        let instr, loc_asm, time_vp = run_one def ~scale ~tracking:false in
        let _, _, time_vpp = run_one def ~scale ~tracking:true in
        { r_name = def.b_name; instr; loc_asm; time_vp; time_vpp })
      extras
  in
  print_table2 rows

(* Overhead vs lattice size: the LUB table should keep the per-class cost
   flat (an experiment beyond the paper). *)
let sweep_lattice () =
  pf "=== Sweep: VP+ overhead vs IFP size (qsort) ===\n\n";
  let lattices =
    [ ("IFP-2 (2 classes)", Dift.Lattice.integrity ());
      ("IFP-3 (4 classes)", Dift.Lattice.ifp3 ());
      ("per-byte (19 classes)", Dift.Lattice.per_byte_key ~n:16);
      ("per-byte (67 classes)", Dift.Lattice.per_byte_key ~n:64) ]
  in
  let img = Firmware.Qsort_fw.image ~n:1000 ~rounds:4 () in
  let baseline =
    let policy = integrity_policy img in
    let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
    let soc = Vp.Soc.create ~policy ~monitor ~tracking:false () in
    Vp.Soc.load_image soc img;
    soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000_000;
    Vp.Soc.start soc;
    let t0 = now_s () in
    Vp.Soc.run soc;
    now_s () -. t0
  in
  pf "%-24s %8.3f s   (VP baseline)\n" "no tracking" baseline;
  List.iter
    (fun (name, lat) ->
      let bot = Option.get (Dift.Lattice.bottom lat) in
      let policy =
        Dift.Policy.make ~lattice:lat ~default_tag:bot
          ~classification:
            [ Dift.Policy.region ~name:"program" ~lo:img.Rv32_asm.Image.org
                ~hi:(Rv32_asm.Image.limit img - 1) ~tag:bot ]
          ~exec_fetch:(Option.get (Dift.Lattice.top lat))
          ()
      in
      let monitor = Dift.Monitor.create lat in
      let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
      Vp.Soc.load_image soc img;
      soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000_000;
      Vp.Soc.start soc;
      let t0 = now_s () in
      Vp.Soc.run soc;
      let dt = now_s () -. t0 in
      pf "%-24s %8.3f s   (%.2fx)\n" name dt (dt /. baseline))
    lattices

let ablate_quantum () =
  pf "=== Ablation: loosely-timed quantum sweep (qsort, VP+) ===\n\n";
  List.iter
    (fun quantum ->
      let instr, dt = time_qsort ~tracking:true ~dmi:true ~quantum ~policy_of:integrity_policy in
      pf "quantum %6d cycles: %10d instr  %8.3f s  %7.1f MIPS\n" quantum instr
        dt
        (float_of_int instr /. dt /. 1e6))
    [ 1; 10; 100; 1000; 10000 ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-measurements                                          *)
(* ------------------------------------------------------------------ *)

let bechamel () =
  let open Bechamel in
  let lat = Dift.Lattice.ifp3 () in
  (* One Test.make per table/figure of the paper. *)
  let fig1_test =
    Test.make ~name:"fig1/lub+allowedFlow"
      (Staged.stage (fun () ->
           let n = Dift.Lattice.size lat in
           let acc = ref 0 in
           for i = 0 to 63 do
             let a = i mod n and b = (i * 3) mod n in
             acc := !acc + Dift.Lattice.lub lat a b;
             if Dift.Lattice.allowed_flow lat a b then incr acc
           done;
           !acc))
  in
  let table1_test =
    Test.make ~name:"table1/attack3-detection"
      (Staged.stage (fun () -> Firmware.Wilander.run 3))
  in
  let table2_vp =
    Test.make ~name:"table2/qsort-vp"
      (Staged.stage (fun () ->
           let img = Firmware.Qsort_fw.image ~n:64 ~rounds:1 () in
           let policy = integrity_policy img in
           let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
           let soc = Vp.Soc.create ~policy ~monitor ~tracking:false () in
           Vp.Soc.load_image soc img;
           ignore (Vp.Soc.run_for_instructions soc 10_000_000)))
  in
  let table2_vpp =
    Test.make ~name:"table2/qsort-vp+"
      (Staged.stage (fun () ->
           let img = Firmware.Qsort_fw.image ~n:64 ~rounds:1 () in
           let policy = integrity_policy img in
           let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
           let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
           Vp.Soc.load_image soc img;
           ignore (Vp.Soc.run_for_instructions soc 10_000_000)))
  in
  let immo_test =
    Test.make ~name:"sec6a/immobilizer-roundtrip"
      (Staged.stage (fun () ->
           let img =
             Firmware.Immo_fw.image
               ~variant:(Firmware.Immo_fw.Normal { fixed_dump = true })
               ()
           in
           let policy = Firmware.Immo_fw.base_policy img in
           let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
           let aes_out_tag, aes_in_clearance = Firmware.Immo_fw.aes_args policy in
           let soc =
             Vp.Soc.create ~policy ~monitor ~tracking:true ~aes_out_tag
               ~aes_in_clearance ()
           in
           Vp.Soc.load_image soc img;
           Vp.Can.push_rx_frame soc.Vp.Soc.can "CHALLNGE";
           ignore (Vp.Soc.run_for_instructions soc 10_000_000)))
  in
  let tests =
    Test.make_grouped ~name:"vp-dift"
      [ fig1_test; table1_test; table2_vp; table2_vpp; immo_test ]
  in
  let benchmark () =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instances = Toolkit.Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg instances tests in
    List.map (fun i -> Analyze.all ols i raw) instances
  in
  pf "=== Bechamel micro-measurements ===\n\n";
  let results = benchmark () in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name ols ->
          let est =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> Printf.sprintf "%12.1f ns/run" e
            | Some es ->
                String.concat ", " (List.map (Printf.sprintf "%.1f") es)
            | None -> "n/a"
          in
          pf "%-32s %s\n" name est)
        tbl)
    results

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let scale =
    match args with
    | _ :: "table2" :: s :: _ -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> 1)
    | _ -> 1
  in
  match args with
  | _ :: "fig1" :: _ -> fig1 ()
  | _ :: "table1" :: _ -> table1 ()
  | _ :: "table2" :: _ -> table2 ~scale ()
  | _ :: "loc" :: _ -> loc_report ()
  | _ :: "ablate-dmi" :: _ -> ablate_dmi ()
  | _ :: "ablate-policy" :: _ -> ablate_policy ()
  | _ :: "ablate-lub" :: _ -> ablate_lub ()
  | _ :: "ablate-quantum" :: _ -> ablate_quantum ()
  | _ :: "sweep-lattice" :: _ -> sweep_lattice ()
  | _ :: "table2-extended" :: _ -> table2_extended ~scale:1 ()
  | _ :: "bechamel" :: _ -> bechamel ()
  | _ :: "all" :: _ | [ _ ] ->
      fig1 ();
      pf "\n";
      table1 ();
      pf "\n";
      table2 ~scale:1 ();
      pf "\n";
      loc_report ();
      pf "\n";
      ablate_dmi ();
      pf "\n";
      ablate_policy ();
      pf "\n";
      ablate_lub ();
      pf "\n";
      ablate_quantum ();
      pf "\n";
      sweep_lattice ();
      pf "\n";
      table2_extended ~scale:1 ()
  | _ :: cmd :: _ ->
      pf "unknown command %S\n" cmd;
      exit 1
  | [] -> ()
