(* Taint propagation for misaligned and byte-boundary-crossing loads and
   stores: an LH/LW whose footprint spans tainted and untainted bytes must
   carry the LUB of exactly the bytes it touches — no more, no less — and
   the answer must not depend on whether the untainted fast path is
   enabled (the first tainted byte disables it mid-run). *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg
module L = Dift.Lattice

let lat = L.ifp3 ()
let t n = L.tag_of_name lat n

(* The scratch word layout built by [program]:
     scratch[0..1] public, scratch[2] secret, scratch[3] public,
     scratch[4] secret, scratch[5..7] public.
   Loads under test:
     s2 = lh  scratch+2   (secret byte 2 + public byte 3  -> secret)
     s3 = lh  scratch+0   (public bytes only             -> public)
     s4 = lw  scratch+0   (includes byte 2               -> secret)
     s5 = lw  scratch+1   (misaligned; bytes 1..4, incl. 2 and 4 -> secret)
     s6 = lhu scratch+3   (misaligned; crosses the word boundary at
                           byte 4: public byte 3 + secret byte 4 -> secret)
     s7 = lhu scratch+6   (bytes 6..7, beyond both secrets -> public)
   And a cross-boundary store:
     sh of a secret halfword at scratch2+3 (misaligned, spans the word
     boundary); byte loads of scratch2[3] and scratch2[4] must both be
     secret while scratch2[5] stays public. *)
let program p =
  Firmware.Rt.entry p ();
  A.la p R.t0 "secret";
  A.la p R.t1 "scratch";
  A.lbu p R.t2 R.t0 0;
  A.sb p R.t2 R.t1 2;
  A.sb p R.t2 R.t1 4;
  A.lh p R.s2 R.t1 2;
  A.lh p R.s3 R.t1 0;
  A.lw p R.s4 R.t1 0;
  A.lw p R.s5 R.t1 1;
  A.lhu p R.s6 R.t1 3;
  A.lhu p R.s7 R.t1 6;
  (* Cross-boundary store: secret halfword over scratch2[3..4]. *)
  A.lhu p R.t3 R.t0 0;
  A.la p R.t4 "scratch2";
  A.sh p R.t3 R.t4 3;
  A.lbu p R.s8 R.t4 3;
  A.lbu p R.s9 R.t4 4;
  A.lbu p R.s10 R.t4 5;
  Firmware.Rt.exit_ p ();
  A.align p 4;
  A.label p "secret";
  A.ascii p "0123456789abcdef";
  A.align p 4;
  A.label p "scratch";
  A.space p 8;
  A.label p "scratch2";
  A.space p 8

let policy_for img =
  let secret_lo = Rv32_asm.Image.symbol img "secret" in
  Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI")
    ~classification:
      [
        Dift.Policy.region ~name:"secret" ~lo:secret_lo ~hi:(secret_lo + 15)
          ~tag:(t "HC,HI");
        Dift.Policy.region ~name:"program"
          ~lo:img.Rv32_asm.Image.org
          ~hi:(Rv32_asm.Image.limit img - 1)
          ~tag:(t "LC,HI");
      ]
    ~exec_fetch:(t "LC,HI") ()

let run ~fast_path () =
  let p = A.create () in
  program p;
  let img = A.assemble p in
  let policy = policy_for img in
  let monitor = Dift.Monitor.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true ~fast_path () in
  Vp.Soc.load_image soc img;
  expect_exit (Vp.Soc.run_for_instructions soc 100_000) 0;
  soc

let check_tags soc =
  let tag r = soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r in
  (* Everything in the image (including the scratch words) sits in the
     "program" region, so the public expectation is LC,HI — the lattice
     bottom — not the off-image default LC,LI. *)
  let sec = t "HC,HI" and pub = t "LC,HI" in
  check_int "lh spanning secret|public byte" sec (tag R.s2);
  check_int "lh over public bytes only" pub (tag R.s3);
  check_int "lw containing one secret byte" sec (tag R.s4);
  check_int "misaligned lw spanning both secrets" sec (tag R.s5);
  check_int "misaligned lhu across the word boundary" sec (tag R.s6);
  check_int "lhu beyond the secrets" pub (tag R.s7);
  check_int "cross-boundary sh taints low byte" sec (tag R.s8);
  check_int "cross-boundary sh taints high byte" sec (tag R.s9);
  check_int "byte after the stored halfword stays public" pub (tag R.s10)

let test_with_fast_path () =
  let soc = run ~fast_path:true () in
  check_tags soc

let test_without_fast_path () =
  let soc = run ~fast_path:false () in
  check_int "fast path actually off" 0
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired ());
  check_tags soc

(* The two flavours must agree on every register tag and every memory tag
   byte (the fast path may only skip work, never change results). *)
let test_flavours_agree () =
  let a = run ~fast_path:true () in
  let b = run ~fast_path:false () in
  for r = 0 to 31 do
    check_int
      (Printf.sprintf "reg %d tag" r)
      (b.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r)
      (a.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r)
  done;
  check_bool "memory tag arrays identical" true
    (Bytes.equal
       (Vp.Memory.tags a.Vp.Soc.memory)
       (Vp.Memory.tags b.Vp.Soc.memory))

let () =
  Alcotest.run "misaligned"
    [
      ( "taint",
        [
          Alcotest.test_case "cross-boundary loads/stores (fast path on)"
            `Quick test_with_fast_path;
          Alcotest.test_case "cross-boundary loads/stores (fast path off)"
            `Quick test_without_fast_path;
          Alcotest.test_case "fast path changes nothing" `Quick
            test_flavours_agree;
        ] );
    ]
