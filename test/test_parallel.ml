(* The domain-parallel campaign engine (lib/parallelkit) and its
   determinism contract:

   - the worker pool maps task arrays in order, re-raises worker
     exceptions, and degrades to the plain sequential path at jobs <= 1;
   - campaign sharding depends only on (total, shard_size) — never on the
     worker count — with shard 0 keeping the campaign seed so one-shard
     campaigns reproduce the historical sequential stream;
   - a difftest campaign (including injected failures, shrinking and
     merged coverage) renders to a byte-identical report at jobs=1 and
     jobs=4, warm-started or cold-booted. *)

open Helpers
module Pool = Parallelkit.Pool
module Campaign = Parallelkit.Campaign
module Chan = Parallelkit.Chan
module H = Difftest.Harness

(* --- Chan ------------------------------------------------------------ *)

let test_chan_fifo_and_close () =
  let c = Chan.create () in
  Chan.send c 1;
  Chan.send c 2;
  Chan.close c;
  check_bool "fifo 1" true (Chan.recv c = Some 1);
  check_bool "fifo 2" true (Chan.recv c = Some 2);
  check_bool "drained + closed" true (Chan.recv c = None);
  check_bool "recv after drain stays None" true (Chan.recv c = None);
  check_bool "send on closed rejected" true
    (try
       Chan.send c 3;
       false
     with Invalid_argument _ -> true);
  (* close is idempotent *)
  Chan.close c

(* --- Pool ------------------------------------------------------------ *)

let test_pool_map_order () =
  let tasks = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) tasks in
  check_bool "jobs=1 (sequential path)" true
    (Pool.map ~jobs:1 (fun i -> i * i) tasks = expect);
  check_bool "jobs=4" true (Pool.map ~jobs:4 (fun i -> i * i) tasks = expect);
  check_bool "more jobs than tasks" true
    (Pool.map ~jobs:8 (fun i -> i * 2) [| 1; 2; 3 |] = [| 2; 4; 6 |]);
  check_bool "empty task array" true
    (Pool.map ~jobs:4 (fun i -> i) [||] = [||]);
  check_bool "map_list" true
    (Pool.map_list ~jobs:3 String.uppercase_ascii [ "a"; "b" ] = [ "A"; "B" ])

exception Boom of int

let test_pool_exception () =
  (* Several tasks fail; the exception re-raised is the failing task with
     the lowest index, regardless of completion order. *)
  let f i = if i mod 3 = 1 then raise (Boom i) else i in
  let tasks = Array.init 20 (fun i -> i) in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs f tasks with
      | exception Boom 1 -> ()
      | exception e ->
          Alcotest.failf "jobs=%d: wrong exception %s" jobs
            (Printexc.to_string e)
      | _ -> Alcotest.failf "jobs=%d: no exception" jobs)
    [ 1; 4 ]

let test_default_jobs () =
  check_bool "at least one worker" true (Pool.default_jobs () >= 1)

(* --- Campaign sharding ----------------------------------------------- *)

let test_shard_structure () =
  let shards = Campaign.shards ~seed:0x5eed ~total:10 ~shard_size:4 in
  check_int "shard count" 3 (Array.length shards);
  Array.iteri
    (fun i (s : Campaign.shard) ->
      check_int "index" i s.Campaign.index;
      check_int "start" (i * 4) s.Campaign.start)
    shards;
  check_int "full shard" 4 shards.(0).Campaign.length;
  check_int "tail shard" 2 shards.(2).Campaign.length;
  check_int "shard 0 keeps the campaign seed" 0x5eed shards.(0).Campaign.seed;
  let seeds = Array.map (fun s -> s.Campaign.seed) shards in
  Array.iter
    (fun s ->
      check_bool "seed in 32-bit nonzero range" true (s > 0 && s <= 0xffffffff))
    seeds;
  check_bool "derived seeds distinct" true
    (seeds.(0) <> seeds.(1) && seeds.(1) <> seeds.(2) && seeds.(0) <> seeds.(2));
  (* Pure function of (seed, total, shard_size). *)
  check_bool "deterministic" true
    (Campaign.shards ~seed:0x5eed ~total:10 ~shard_size:4 = shards);
  check_bool "empty campaign" true
    (Campaign.shards ~seed:1 ~total:0 ~shard_size:4 = [||]);
  check_bool "shard_size must be positive" true
    (try
       ignore (Campaign.shards ~seed:1 ~total:10 ~shard_size:0);
       false
     with Invalid_argument _ -> true)

let test_derive_seed () =
  check_int "shard 0 is the identity" 42 (Campaign.derive_seed ~seed:42 ~shard:0);
  let a = Campaign.derive_seed ~seed:42 ~shard:1 in
  check_int "stable" a (Campaign.derive_seed ~seed:42 ~shard:1);
  check_bool "seed-sensitive" true (Campaign.derive_seed ~seed:43 ~shard:1 <> a);
  check_bool "shard-sensitive" true (Campaign.derive_seed ~seed:42 ~shard:2 <> a);
  check_bool "never zero" true
    (List.for_all
       (fun shard -> Campaign.derive_seed ~seed:0 ~shard <> 0)
       [ 1; 2; 3; 4; 5 ])

(* --- Campaign determinism: jobs=1 vs jobs=4 byte-identical ------------ *)

(* 40 programs at the default 25-program shard size = 2 shards, so the
   campaign genuinely crosses a shard boundary; the injected fault makes
   failures (detection, shrinking, reproducer sources) part of the
   compared report, and shrinking runs inside the worker that found the
   failure. *)
let det_cfg =
  {
    H.default with
    seed = 0xde7;
    programs = 40;
    size = 20;
    inject = Some "mulhsu";
  }

let render r = Format.asprintf "%a" H.pp_report r

let seq_report = lazy (H.run ~config:det_cfg ())

let test_jobs_byte_identical () =
  let r1 = Lazy.force seq_report in
  let r4 = H.run ~config:{ det_cfg with jobs = 4 } () in
  check_bool "campaign spans multiple shards" true
    (det_cfg.H.programs > det_cfg.H.shard_size);
  check_bool "injected failures present (comparison is meaningful)" true
    (r1.H.injected_hits > 0 && r1.H.failures <> []);
  check_string "jobs=1 and jobs=4 reports byte-identical" (render r1)
    (render r4)

let test_warm_start_equivalent () =
  let r1 = Lazy.force seq_report in
  let cold = H.run ~config:{ det_cfg with warm_start = false } () in
  check_string "warm-start and cold-boot reports byte-identical" (render r1)
    (render cold);
  (* And directly at the oracle level, on a fresh generated program. *)
  let prog =
    Difftest.Gen.program
      (Difftest.Rng.create ~seed:0x77a7)
      (Difftest.Coverage.create ())
      ~size:30
  in
  let img = Difftest.Prog.assemble prog in
  let cold = Difftest.Oracle.run img in
  let warm = Difftest.Oracle.warm_boot () in
  let warmed = Difftest.Oracle.run ~warm img in
  check_bool "plain-VP legs agree architecturally" true
    (Difftest.Oracle.agree cold.Difftest.Oracle.vp warmed.Difftest.Oracle.vp);
  check_int "same instret" cold.Difftest.Oracle.vp.Difftest.Oracle.instret
    warmed.Difftest.Oracle.vp.Difftest.Oracle.instret

(* A campaign that fits one shard reproduces the historical sequential
   stream: this pins the shard-0-keeps-seed compatibility rule that the
   fixed-seed suites in test_difftest rely on. *)
let test_single_shard_is_sequential_stream () =
  let cfg = { det_cfg with programs = 5; shard_size = 25 } in
  let one = H.run ~config:cfg () in
  (* Same 5 programs through a giant shard size: identical by the
     shard-0 rule even though the shard boundaries moved. *)
  let giant = H.run ~config:{ cfg with shard_size = 1000 } () in
  check_string "shard size irrelevant below one shard" (render one)
    (render giant)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "chan fifo + close" `Quick test_chan_fifo_and_close;
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "shard structure" `Quick test_shard_structure;
          Alcotest.test_case "seed derivation" `Quick test_derive_seed;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 = jobs=4 (byte-identical)" `Quick
            test_jobs_byte_identical;
          Alcotest.test_case "warm start = cold boot" `Quick
            test_warm_start_equivalent;
          Alcotest.test_case "single shard = sequential stream" `Quick
            test_single_shard_is_sequential_stream;
        ] );
    ]
