(* The domain-parallel campaign engine (lib/parallelkit) and its
   determinism contract:

   - the work-stealing worker pool maps task arrays in order, re-raises
     worker exceptions, and degrades to the plain sequential path at
     jobs <= 1; steals rebalance uneven shards without reordering
     results;
   - campaign sharding depends only on (total, shard_size) — never on the
     worker count — with shard 0 keeping the campaign seed so one-shard
     campaigns reproduce the historical sequential stream, and derived
     shard seeds never colliding across sweeps;
   - a difftest campaign (including injected failures, shrinking and
     merged coverage) renders to a byte-identical report at jobs=1 and
     jobs=4, warm-started or cold-booted;
   - a campaign killed mid-run and resumed from its DIFTVPCP checkpoint
     (even at a different --jobs) produces the byte-identical report,
     while corrupt or mismatched checkpoints are refused up front. *)

open Helpers
module Pool = Parallelkit.Pool
module Campaign = Parallelkit.Campaign
module Chan = Parallelkit.Chan
module Deque = Parallelkit.Deque
module Ck = Parallelkit.Checkpoint
module H = Difftest.Harness

(* --- Chan ------------------------------------------------------------ *)

let test_chan_fifo_and_close () =
  let c = Chan.create () in
  Chan.send c 1;
  Chan.send c 2;
  Chan.close c;
  check_bool "fifo 1" true (Chan.recv c = Some 1);
  check_bool "fifo 2" true (Chan.recv c = Some 2);
  check_bool "drained + closed" true (Chan.recv c = None);
  check_bool "recv after drain stays None" true (Chan.recv c = None);
  check_bool "send on closed rejected" true
    (try
       Chan.send c 3;
       false
     with Invalid_argument _ -> true);
  (* close is idempotent *)
  Chan.close c

(* --- Deque ----------------------------------------------------------- *)

let test_deque_ends () =
  let d = Deque.create () in
  check_bool "empty pop_front" true (Deque.pop_front d = None);
  check_bool "empty steal" true (Deque.steal d = None);
  List.iter (Deque.push d) [ 1; 2; 3; 4; 5 ];
  check_int "length" 5 (Deque.length d);
  check_bool "owner takes the oldest" true (Deque.pop_front d = Some 1);
  check_bool "thief takes the newest" true (Deque.steal d = Some 5);
  check_bool "owner again" true (Deque.pop_front d = Some 2);
  check_bool "thief again" true (Deque.steal d = Some 4);
  check_bool "the ends meet on the last element" true
    (Deque.pop_front d = Some 3);
  check_bool "drained" true (Deque.pop_front d = None && Deque.steal d = None)

let test_deque_growth () =
  let d = Deque.create () in
  (* Pop a prefix first so the ring wraps before it grows. *)
  for i = 0 to 9 do
    Deque.push d i
  done;
  for i = 0 to 4 do
    check_bool "pre-wrap pop" true (Deque.pop_front d = Some i)
  done;
  for i = 10 to 99 do
    Deque.push d i
  done;
  let ok = ref true in
  for i = 5 to 99 do
    ok := !ok && Deque.pop_front d = Some i
  done;
  check_bool "growth preserves order at the owner end" true !ok;
  check_int "empty after drain" 0 (Deque.length d)

(* --- Pool ------------------------------------------------------------ *)

let test_pool_map_order () =
  let tasks = Array.init 100 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) tasks in
  check_bool "jobs=1 (sequential path)" true
    (Pool.map ~jobs:1 (fun i -> i * i) tasks = expect);
  check_bool "jobs=4" true (Pool.map ~jobs:4 (fun i -> i * i) tasks = expect);
  check_bool "more jobs than tasks" true
    (Pool.map ~jobs:8 (fun i -> i * 2) [| 1; 2; 3 |] = [| 2; 4; 6 |]);
  check_bool "empty task array" true
    (Pool.map ~jobs:4 (fun i -> i) [||] = [||]);
  check_bool "map_list" true
    (Pool.map_list ~jobs:3 String.uppercase_ascii [ "a"; "b" ] = [ "A"; "B" ])

exception Boom of int

let test_pool_exception () =
  (* Several tasks fail; the exception re-raised is the failing task with
     the lowest index, regardless of completion order. *)
  let f i = if i mod 3 = 1 then raise (Boom i) else i in
  let tasks = Array.init 20 (fun i -> i) in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs f tasks with
      | exception Boom 1 -> ()
      | exception e ->
          Alcotest.failf "jobs=%d: wrong exception %s" jobs
            (Printexc.to_string e)
      | _ -> Alcotest.failf "jobs=%d: no exception" jobs)
    [ 1; 4 ]

let test_default_jobs () =
  check_bool "at least one worker" true (Pool.default_jobs () >= 1)

let test_pool_steals () =
  (* Worker 0's first task spins until every other task has finished, so
     worker 1 must steal the rest of worker 0's deque to let it finish:
     the run deadlocks without stealing and must still return results in
     task order with it. *)
  let n = 10 in
  let finished = Atomic.make 0 in
  let f i =
    if i = 0 then
      while Atomic.get finished < n - 1 do
        Domain.cpu_relax ()
      done;
    Atomic.incr finished;
    i * 7
  in
  let results, stats = Pool.map_stats ~jobs:2 f (Array.init n Fun.id) in
  check_bool "results in task order despite steals" true
    (results = Array.init n (fun i -> i * 7));
  check_int "two workers" 2 stats.Pool.workers;
  check_bool "at least one steal" true (stats.Pool.steals >= 1);
  check_int "per-worker counts sum to the task count" n
    (Array.fold_left ( + ) 0 stats.Pool.tasks_per_worker)

let test_pool_stats_sequential () =
  let _, stats = Pool.map_stats ~jobs:1 (fun i -> i) (Array.init 5 Fun.id) in
  check_int "sequential path reports one worker" 1 stats.Pool.workers;
  check_int "no steals" 0 stats.Pool.steals;
  check_bool "all tasks on the one worker" true
    (stats.Pool.tasks_per_worker = [| 5 |])

let test_on_done () =
  (* Sequential: called once per task, ascending, with the result. *)
  let calls = ref [] in
  let r =
    Pool.map
      ~on_done:(fun i v -> calls := (i, v) :: !calls)
      ~jobs:1
      (fun i -> i + 100)
      (Array.init 5 Fun.id)
  in
  check_bool "sequential results" true (r = [| 100; 101; 102; 103; 104 |]);
  check_bool "sequential on_done ascending with values" true
    (List.rev !calls = List.init 5 (fun i -> (i, i + 100)));
  (* Parallel: exactly one call per task, each with the right value; the
     hook runs on the calling domain so plain mutable state is safe. *)
  let seen = Array.make 16 (-1) in
  let count = ref 0 in
  let _ =
    Pool.map
      ~on_done:(fun i v ->
        incr count;
        seen.(i) <- v)
      ~jobs:4
      (fun i -> i * 3)
      (Array.init 16 Fun.id)
  in
  check_int "parallel on_done called once per task" 16 !count;
  check_bool "parallel on_done values correct" true
    (seen = Array.init 16 (fun i -> i * 3))

exception Hook

let test_on_done_raise () =
  (* A raising on_done aborts the pool cleanly: the exception propagates
     (not an assert or a hang) and every worker domain is joined. *)
  List.iter
    (fun jobs ->
      match
        Pool.map
          ~on_done:(fun _ _ -> raise Hook)
          ~jobs Fun.id (Array.init 8 Fun.id)
      with
      | exception Hook -> ()
      | exception e ->
          Alcotest.failf "jobs=%d: wrong exception %s" jobs
            (Printexc.to_string e)
      | _ -> Alcotest.failf "jobs=%d: no exception" jobs)
    [ 1; 4 ]

(* --- Campaign sharding ----------------------------------------------- *)

let test_shard_structure () =
  let shards = Campaign.shards ~seed:0x5eed ~total:10 ~shard_size:4 in
  check_int "shard count" 3 (Array.length shards);
  Array.iteri
    (fun i (s : Campaign.shard) ->
      check_int "index" i s.Campaign.index;
      check_int "start" (i * 4) s.Campaign.start)
    shards;
  check_int "full shard" 4 shards.(0).Campaign.length;
  check_int "tail shard" 2 shards.(2).Campaign.length;
  check_int "shard 0 keeps the campaign seed" 0x5eed shards.(0).Campaign.seed;
  let seeds = Array.map (fun s -> s.Campaign.seed) shards in
  Array.iter
    (fun s ->
      check_bool "seed in 32-bit nonzero range" true (s > 0 && s <= 0xffffffff))
    seeds;
  check_bool "derived seeds distinct" true
    (seeds.(0) <> seeds.(1) && seeds.(1) <> seeds.(2) && seeds.(0) <> seeds.(2));
  (* Pure function of (seed, total, shard_size). *)
  check_bool "deterministic" true
    (Campaign.shards ~seed:0x5eed ~total:10 ~shard_size:4 = shards);
  check_bool "empty campaign" true
    (Campaign.shards ~seed:1 ~total:0 ~shard_size:4 = [||]);
  check_bool "shard_size must be positive" true
    (try
       ignore (Campaign.shards ~seed:1 ~total:10 ~shard_size:0);
       false
     with Invalid_argument _ -> true)

let test_derive_seed () =
  check_int "shard 0 is the identity" 42 (Campaign.derive_seed ~seed:42 ~shard:0);
  let a = Campaign.derive_seed ~seed:42 ~shard:1 in
  check_int "stable" a (Campaign.derive_seed ~seed:42 ~shard:1);
  check_bool "seed-sensitive" true (Campaign.derive_seed ~seed:43 ~shard:1 <> a);
  check_bool "shard-sensitive" true (Campaign.derive_seed ~seed:42 ~shard:2 <> a);
  check_bool "never zero" true
    (List.for_all
       (fun shard -> Campaign.derive_seed ~seed:0 ~shard <> 0)
       [ 1; 2; 3; 4; 5 ])

let test_derive_seed_sweep () =
  (* The derived seed is a splitmix64 output truncated to 32 bits; a
     collision between shard indices would make two shards replay the
     same program stream and silently halve a campaign's coverage. Pin
     that a realistic sweep (10^4 shards under one campaign seed) is
     collision-free, and that the shard-0 identity survives. *)
  let seen = Hashtbl.create 20_048 in
  let collisions = ref 0 in
  for shard = 0 to 9_999 do
    let s = Campaign.derive_seed ~seed:0xc0ffee ~shard in
    if Hashtbl.mem seen s then incr collisions else Hashtbl.add seen s ();
    if s <= 0 || s > 0xffffffff then
      Alcotest.failf "shard %d: seed %#x outside the nonzero 32-bit range"
        shard s
  done;
  check_int "no collisions across 10^4 shards" 0 !collisions;
  check_int "shard 0 keeps the campaign seed" 0xc0ffee
    (Campaign.derive_seed ~seed:0xc0ffee ~shard:0)

(* --- Checkpoint container (DIFTVPCP) ---------------------------------- *)

let test_checkpoint_roundtrip () =
  let t = Ck.create ~fingerprint:"fp-1" ~shards:4 in
  check_int "fresh is empty" 0 (Ck.completed t);
  check_bool "fresh is not complete" false (Ck.is_complete t);
  let t = Ck.add t ~shard:2 ~payload:"two" in
  let t = Ck.add t ~shard:0 ~payload:"zero" in
  let t = Ck.add t ~shard:2 ~payload:"two'" in
  check_int "replacing a shard does not duplicate it" 2 (Ck.completed t);
  check_bool "find present" true (Ck.find t 2 = Some "two'");
  check_bool "find absent" true (Ck.find t 1 = None);
  check_bool "entries ascending by index" true
    (Ck.entries t = [ (0, "zero"); (2, "two'") ]);
  let t' = Ck.decode (Ck.encode t) in
  check_bool "decode . encode = id" true
    (Ck.entries t' = Ck.entries t
    && Ck.fingerprint t' = "fp-1"
    && Ck.shards t' = 4);
  check_bool "out-of-range shard rejected" true
    (try
       ignore (Ck.add t ~shard:4 ~payload:"x");
       false
     with Invalid_argument _ -> true);
  Ck.require t ~fingerprint:"fp-1" ~shards:4;
  check_bool "wrong fingerprint refused" true
    (try
       Ck.require t ~fingerprint:"fp-2" ~shards:4;
       false
     with Ck.Mismatch _ -> true);
  check_bool "wrong shard count refused" true
    (try
       Ck.require t ~fingerprint:"fp-1" ~shards:5;
       false
     with Ck.Mismatch _ -> true);
  let full = Ck.add (Ck.add t ~shard:1 ~payload:"one") ~shard:3 ~payload:"three" in
  check_bool "all shards recorded -> complete" true (Ck.is_complete full)

let test_checkpoint_corrupt () =
  let expect_corrupt what s =
    match Ck.decode s with
    | _ -> Alcotest.failf "%s: decode succeeded on corrupt input" what
    | exception Snapshot.Codec.Corrupt _ -> ()
  in
  expect_corrupt "empty" "";
  expect_corrupt "bad magic" "NOTMAGIC-and-then-some";
  let good =
    Ck.encode
      (Ck.add (Ck.create ~fingerprint:"fp" ~shards:3) ~shard:1 ~payload:"p")
  in
  expect_corrupt "truncated" (String.sub good 0 (String.length good - 3));
  expect_corrupt "magic only" (String.sub good 0 8);
  expect_corrupt "trailing garbage" (good ^ "xx")

let test_checkpoint_file_roundtrip () =
  let path = Filename.temp_file "diftvpcp" ".cp" in
  let t = Ck.add (Ck.create ~fingerprint:"fp" ~shards:2) ~shard:0 ~payload:"a" in
  Ck.save t path;
  let t' = Ck.load path in
  check_bool "load . save = id" true
    (Ck.entries t' = Ck.entries t
    && Ck.fingerprint t' = Ck.fingerprint t
    && Ck.shards t' = Ck.shards t);
  Sys.remove path

(* --- Atomic file I/O (lib/snapshot Io) -------------------------------- *)

let test_io_atomic_write () =
  let path = Filename.temp_file "snapio" ".dat" in
  Snapshot.Io.write_file_atomic path "first";
  check_string "write + read back" "first" (Snapshot.Io.read_file path);
  Snapshot.Io.write_file_atomic path "second version";
  check_string "overwrite replaces the whole file" "second version"
    (Snapshot.Io.read_file path);
  let hidden = "." ^ Filename.basename path in
  let leftovers =
    Sys.readdir (Filename.dirname path)
    |> Array.to_list
    |> List.filter (fun f ->
           String.length f >= String.length hidden
           && String.sub f 0 (String.length hidden) = hidden)
  in
  check_bool "no temp files left behind" true (leftovers = []);
  Sys.remove path

(* --- Campaign determinism: jobs=1 vs jobs=4 byte-identical ------------ *)

(* 40 programs at the default 25-program shard size = 2 shards, so the
   campaign genuinely crosses a shard boundary; the injected fault makes
   failures (detection, shrinking, reproducer sources) part of the
   compared report, and shrinking runs inside the worker that found the
   failure. *)
let det_cfg =
  {
    H.default with
    seed = 0xde7;
    programs = 40;
    size = 20;
    inject = Some "mulhsu";
  }

let render r = Format.asprintf "%a" H.pp_report r

let seq_report = lazy (H.run ~config:det_cfg ())

let test_jobs_byte_identical () =
  let r1 = Lazy.force seq_report in
  let r4 = H.run ~config:{ det_cfg with jobs = 4 } () in
  check_bool "campaign spans multiple shards" true
    (det_cfg.H.programs > det_cfg.H.shard_size);
  check_bool "injected failures present (comparison is meaningful)" true
    (r1.H.injected_hits > 0 && r1.H.failures <> []);
  check_string "jobs=1 and jobs=4 reports byte-identical" (render r1)
    (render r4)

let test_warm_start_equivalent () =
  let r1 = Lazy.force seq_report in
  let cold = H.run ~config:{ det_cfg with warm_start = false } () in
  check_string "warm-start and cold-boot reports byte-identical" (render r1)
    (render cold);
  (* And directly at the oracle level, on a fresh generated program. *)
  let prog =
    Difftest.Gen.program
      (Difftest.Rng.create ~seed:0x77a7)
      (Difftest.Coverage.create ())
      ~size:30
  in
  let img = Difftest.Prog.assemble prog in
  let cold = Difftest.Oracle.run img in
  let warm = Difftest.Oracle.warm_boot () in
  let warmed = Difftest.Oracle.run ~warm img in
  check_bool "plain-VP legs agree architecturally" true
    (Difftest.Oracle.agree cold.Difftest.Oracle.vp warmed.Difftest.Oracle.vp);
  check_int "same instret" cold.Difftest.Oracle.vp.Difftest.Oracle.instret
    warmed.Difftest.Oracle.vp.Difftest.Oracle.instret

(* A campaign that fits one shard reproduces the historical sequential
   stream: this pins the shard-0-keeps-seed compatibility rule that the
   fixed-seed suites in test_difftest rely on. *)
let test_single_shard_is_sequential_stream () =
  let cfg = { det_cfg with programs = 5; shard_size = 25 } in
  let one = H.run ~config:cfg () in
  (* Same 5 programs through a giant shard size: identical by the
     shard-0 rule even though the shard boundaries moved. *)
  let giant = H.run ~config:{ cfg with shard_size = 1000 } () in
  check_string "shard size irrelevant below one shard" (render one)
    (render giant)

(* --- Checkpointed resume --------------------------------------------- *)

(* Same campaign as [det_cfg] but at shard_size=10, so the 40 programs
   make 4 shards — enough structure to kill a run "mid-way" and resume
   the remainder on a different worker count. *)
let resume_cfg = { det_cfg with shard_size = 10 }

let test_kill_and_resume () =
  let ck = Filename.temp_file "diftvp" ".cp" in
  (* The uninterrupted run, checkpointing as it goes. *)
  let full = H.run ~config:{ resume_cfg with checkpoint = Some ck } () in
  let straight = render full in
  let complete = Ck.load ck in
  check_bool "checkpoint complete after a full run" true
    (Ck.is_complete complete);
  check_int "one entry per shard" 4 (Ck.completed complete);
  (* Simulate SIGKILL after 2 of 4 shards: a checkpoint holding only the
     first two entries, exactly what an interrupted run would have
     published atomically. *)
  let partial =
    List.fold_left
      (fun t (shard, payload) -> Ck.add t ~shard ~payload)
      (Ck.create
         ~fingerprint:(Ck.fingerprint complete)
         ~shards:(Ck.shards complete))
      (List.filteri (fun i _ -> i < 2) (Ck.entries complete))
  in
  Ck.save partial ck;
  (* Resume on a different worker count; completed shards are skipped,
     the rest recomputed, and the merged report must not betray the
     kill/resume split. *)
  let resumed =
    H.run
      ~config:
        { resume_cfg with resume = Some ck; checkpoint = Some ck; jobs = 2 }
      ()
  in
  check_string "kill + resume (different jobs) = uninterrupted" straight
    (render resumed);
  (* The resumed run re-completed the checkpoint; resuming from it again
     runs zero shards and still reproduces the report. *)
  let cached = H.run ~config:{ resume_cfg with resume = Some ck } () in
  check_string "resume from a complete checkpoint = uninterrupted" straight
    (render cached);
  Sys.remove ck

let test_resume_corrupt () =
  (* A corrupt or truncated checkpoint fails up front — before any
     oracle work, with nothing partially merged. *)
  let ck = Filename.temp_file "diftvp" ".cp" in
  Snapshot.Io.write_file_atomic ck "DIFTVPCP\x07garbage-after-the-magic";
  (match H.run ~config:{ resume_cfg with resume = Some ck } () with
  | _ -> Alcotest.fail "corrupt checkpoint accepted"
  | exception Snapshot.Codec.Corrupt _ -> ());
  Sys.remove ck

let test_resume_mismatch () =
  (* A checkpoint from a different campaign configuration is refused:
     a well-formed container whose fingerprint cannot match. *)
  let ck = Filename.temp_file "diftvp" ".cp" in
  Ck.save (Ck.create ~fingerprint:"some-other-campaign" ~shards:4) ck;
  (match H.run ~config:{ resume_cfg with resume = Some ck } () with
  | _ -> Alcotest.fail "mismatched checkpoint accepted"
  | exception Ck.Mismatch _ -> ());
  Sys.remove ck

let () =
  Alcotest.run "parallel"
    [
      ( "deque",
        [
          Alcotest.test_case "owner and thief ends" `Quick test_deque_ends;
          Alcotest.test_case "ring growth" `Quick test_deque_growth;
        ] );
      ( "pool",
        [
          Alcotest.test_case "chan fifo + close" `Quick test_chan_fifo_and_close;
          Alcotest.test_case "map order" `Quick test_pool_map_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
          Alcotest.test_case "work stealing rebalances" `Quick test_pool_steals;
          Alcotest.test_case "sequential stats" `Quick
            test_pool_stats_sequential;
          Alcotest.test_case "on_done hook" `Quick test_on_done;
          Alcotest.test_case "on_done raise aborts cleanly" `Quick
            test_on_done_raise;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "shard structure" `Quick test_shard_structure;
          Alcotest.test_case "seed derivation" `Quick test_derive_seed;
          Alcotest.test_case "seed sweep: 10^4 shards, no collisions" `Quick
            test_derive_seed_sweep;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "container round-trip" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "corrupt containers refused" `Quick
            test_checkpoint_corrupt;
          Alcotest.test_case "file round-trip" `Quick
            test_checkpoint_file_roundtrip;
          Alcotest.test_case "atomic write" `Quick test_io_atomic_write;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 = jobs=4 (byte-identical)" `Quick
            test_jobs_byte_identical;
          Alcotest.test_case "warm start = cold boot" `Quick
            test_warm_start_equivalent;
          Alcotest.test_case "single shard = sequential stream" `Quick
            test_single_shard_is_sequential_stream;
        ] );
      ( "resume",
        [
          Alcotest.test_case "kill + resume byte-identical" `Quick
            test_kill_and_resume;
          Alcotest.test_case "corrupt checkpoint refused" `Quick
            test_resume_corrupt;
          Alcotest.test_case "mismatched checkpoint refused" `Quick
            test_resume_mismatch;
        ] );
    ]
