(* Engine-differential tests for superblock chaining and the jalr inline
   caches: the [Threaded_superblock] engine (hot block pairs recompiled
   into cross-block closure chains, monomorphic jalr sites promoted to
   direct chain entries) must be observationally identical to both the
   [Interp] and the plain [Threaded] engines — same exit reason, same
   retired-instruction count, byte-identical architectural state
   including every register's taint tag, and byte-identical full-platform
   snapshots.  Every program loops well past the link threshold so the
   profiler actually promotes blocks; the counter assertions at the
   bottom pin that superblocks, chain transitions and inline-cache
   hits/misses really happened.  Covers mid-chain taint entry (fast
   chain -> guard -> full-chain fallback), SMC and DMA patches landing
   inside an already-linked chain, polymorphic jalr demotion, a trap
   firing out of the middle of a chain, and an Interp-saved snapshot
   restored under the superblock engine. *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg

let reason_str = function
  | Rv32.Core.Running -> "running"
  | Rv32.Core.Exited c -> Printf.sprintf "exited %d" c
  | Rv32.Core.Breakpoint -> "breakpoint"
  | Rv32.Core.Insn_limit -> "insn limit"

let run_e ?(tracking = true) ?policy ?(seed = fun _ _ -> ())
    ?(max_insns = 500_000) ~engine build =
  let p = A.create () in
  build p;
  let img = A.assemble p in
  let policy =
    match policy with Some pol -> pol | None -> trivial_policy ()
  in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking ~engine () in
  Vp.Soc.load_image soc img;
  seed soc img;
  let reason = Vp.Soc.run_for_instructions soc max_insns in
  (soc, reason)

(* Run [build] under all three engines and demand indistinguishable
   outcomes: exit reason, instret, all 32 registers and their tags, and
   the full platform snapshot.  Returns the interp and superblock SoCs
   for extra per-test assertions. *)
let check_engines ?tracking ?policy ?seed ?code ~name build =
  let soc_i, r_i =
    run_e ?tracking ?policy ?seed ~engine:Rv32.Core.Interp build
  in
  let soc_t, r_t =
    run_e ?tracking ?policy ?seed ~engine:Rv32.Core.Threaded build
  in
  let soc_s, r_s =
    run_e ?tracking ?policy ?seed ~engine:Rv32.Core.Threaded_superblock build
  in
  (match (r_i, r_s) with
  | Rv32.Core.Exited a, Rv32.Core.Exited b ->
      check_int (name ^ ": exit code agrees") a b;
      Option.iter (fun c -> check_int (name ^ ": expected exit code") c a) code
  | a, b ->
      Alcotest.failf "%s: interp %s, superblock %s" name (reason_str a)
        (reason_str b));
  (match (r_t, r_s) with
  | Rv32.Core.Exited a, Rv32.Core.Exited b ->
      check_int (name ^ ": exit code agrees with threaded") a b
  | a, b ->
      Alcotest.failf "%s: threaded %s, superblock %s" name (reason_str a)
        (reason_str b));
  check_int
    (name ^ ": instret agrees")
    (soc_i.Vp.Soc.cpu.Vp.Soc.cpu_instret ())
    (soc_s.Vp.Soc.cpu.Vp.Soc.cpu_instret ());
  for r = 0 to 31 do
    check_int
      (Printf.sprintf "%s: x%d value" name r)
      (soc_i.Vp.Soc.cpu.Vp.Soc.cpu_get_reg r)
      (soc_s.Vp.Soc.cpu.Vp.Soc.cpu_get_reg r);
    check_int
      (Printf.sprintf "%s: x%d tag" name r)
      (soc_i.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r)
      (soc_s.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r)
  done;
  let snap_s = Vp.Soc.save soc_s in
  check_bool
    (name ^ ": snapshot identical to interp's")
    true
    (String.equal (Vp.Soc.save soc_i) snap_s);
  check_bool
    (name ^ ": snapshot identical to threaded's")
    true
    (String.equal (Vp.Soc.save soc_t) snap_s);
  (soc_i, soc_s)

let exit_with p reg =
  A.mv p R.a0 reg;
  A.li p R.a7 93;
  A.ecall p

(* --- opcode classes under linked chains ---------------------------------- *)

(* A hot self-loop (the canonical superblock case: the block links to its
   own recompilation) plus a two-block loop whose first edge alternates
   every iteration — the profiler must keep resetting that edge counter
   and only ever link the stable back-edge. *)
let alu_prog p =
  A.li p R.s0 0;
  A.li p R.s1 100;
  A.label p "spin";
  A.addi p R.s0 R.s0 1;
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "spin";
  A.li p R.s1 64;
  A.label p "loop";
  A.addi p R.s0 R.s0 3;
  A.xori p R.s0 R.s0 0x155;
  A.slli p R.t0 R.s0 2;
  A.srai p R.t1 R.t0 1;
  A.add p R.s0 R.s0 R.t1;
  A.lui p R.t2 0xffff000;
  A.xor p R.t3 R.s0 R.t2;
  A.sltu p R.t4 R.s0 R.t3;
  A.add p R.s0 R.s0 R.t4;
  A.andi p R.s0 R.s0 0x7ff;
  A.andi p R.t2 R.s1 1;
  A.beqz_l p R.t2 "even" (* alternates taken/not-taken *);
  A.addi p R.s0 R.s0 5;
  A.label p "even";
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "loop";
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0

let test_alu () = ignore (check_engines ~name:"alu" alu_prog)

let muldiv_pairs =
  [
    (0, 0);
    (1, 0);
    (0x8000_0000, -1);
    (0x8000_0000, 1);
    (-1, -1);
    (7, -3);
    (-7, 3);
    (123456789, 1013);
    (0xdead_beef, 0xcafe);
    (3, 0x7fff_ffff);
  ]

(* The muldiv table walk, repeated enough times that the loop body links:
   every M-extension edge case retires inside a chained superblock. *)
let muldiv_prog p =
  A.li p R.s3 4;
  A.li p R.s0 0;
  A.label p "again";
  A.la p R.s1 "tab";
  A.li p R.s2 (List.length muldiv_pairs);
  A.label p "loop";
  A.lw p R.t0 R.s1 0;
  A.lw p R.t1 R.s1 4;
  let acc r = A.add p R.s0 R.s0 r in
  A.mul p R.t2 R.t0 R.t1;
  acc R.t2;
  A.mulh p R.t2 R.t0 R.t1;
  acc R.t2;
  A.mulhsu p R.t2 R.t0 R.t1;
  acc R.t2;
  A.mulhu p R.t2 R.t0 R.t1;
  acc R.t2;
  A.div p R.t2 R.t0 R.t1;
  acc R.t2;
  A.divu p R.t2 R.t0 R.t1;
  acc R.t2;
  A.rem p R.t2 R.t0 R.t1;
  acc R.t2;
  A.remu p R.t2 R.t0 R.t1;
  acc R.t2;
  A.addi p R.s1 R.s1 8;
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "loop";
  A.addi p R.s3 R.s3 (-1);
  A.bnez_l p R.s3 "again";
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0;
  A.align p 4;
  A.label p "tab";
  List.iter
    (fun (a, b) ->
      A.word p (a land 0xffff_ffff);
      A.word p (b land 0xffff_ffff))
    muldiv_pairs

let test_muldiv () = ignore (check_engines ~name:"muldiv" muldiv_prog)

(* Every load/store width with sign/zero extension inside a hot loop, so
   the accesses run from a linked chain. *)
let memory_prog p =
  A.la p R.s1 "buf";
  A.li p R.s2 40;
  A.li p R.s0 0;
  A.label p "loop";
  A.slli p R.t0 R.s2 8;
  A.xori p R.t0 R.t0 0x7e;
  A.sw p R.t0 R.s1 0;
  A.lb p R.t1 R.s1 1;
  A.add p R.s0 R.s0 R.t1;
  A.lbu p R.t1 R.s1 1;
  A.add p R.s0 R.s0 R.t1;
  A.sh p R.t0 R.s1 4;
  A.lh p R.t1 R.s1 4;
  A.add p R.s0 R.s0 R.t1;
  A.lhu p R.t1 R.s1 4;
  A.add p R.s0 R.s0 R.t1;
  A.sb p R.t0 R.s1 6;
  A.lw p R.t1 R.s1 4;
  A.add p R.s0 R.s0 R.t1;
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "loop";
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0;
  A.align p 4;
  A.label p "buf";
  A.space p 16

let test_memory () = ignore (check_engines ~name:"memory" memory_prog)

(* Tight call/return: the call-site block ends in a direct jal (chains),
   the callee ends in a monomorphic ret (inline cache). *)
let callret_prog p =
  A.li p R.s1 64;
  A.li p R.s0 0;
  A.label p "loop";
  A.call p "fn";
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "loop";
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0;
  A.label p "fn";
  A.addi p R.s0 R.s0 1;
  A.ret p

let test_callret () =
  ignore (check_engines ~name:"call/ret" ~code:0 callret_prog)

(* Table-driven indirect dispatch alternating between two handlers: the
   dispatch site's inline cache must demote (two distinct targets) while
   each handler's ret stays monomorphic. *)
let poly_prog p =
  A.li p R.s1 64;
  A.li p R.s0 0;
  A.li p R.s3 0;
  A.label p "loop";
  A.andi p R.t0 R.s3 1;
  A.slli p R.t0 R.t0 2;
  A.la p R.t1 "tab";
  A.add p R.t0 R.t0 R.t1;
  A.lw p R.t1 R.t0 0;
  A.jalr p R.ra R.t1 0;
  A.addi p R.s3 R.s3 1;
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "loop";
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0;
  A.label p "f0";
  A.addi p R.s0 R.s0 2;
  A.ret p;
  A.label p "f1";
  A.xori p R.s0 R.s0 0x3e7;
  A.ret p;
  A.align p 4;
  A.label p "tab";
  A.word_l p "f0";
  A.word_l p "f1"

let test_poly () = ignore (check_engines ~name:"polymorphic jalr" poly_prog)

(* --- trap out of the middle of a chain ----------------------------------- *)

(* Once the loop body is linked, every iteration traps via ecall from
   inside the chain, runs the handler, and mret's back — the retirement
   protocol at the trap boundary must leave identical state. *)
let trap_prog p =
  A.la p R.t0 "handler";
  A.csrrw p R.zero Rv32.Csr.mtvec R.t0;
  A.li p R.s1 32;
  A.li p R.s0 0;
  A.label p "loop";
  A.addi p R.s0 R.s0 1;
  A.xori p R.s0 R.s0 0x2a;
  A.li p R.a7 1;
  A.ecall p;
  A.add p R.s0 R.s0 R.s4;
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "loop";
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0;
  A.label p "handler";
  A.csrrs p R.s4 Rv32.Csr.mcause R.zero;
  A.csrrs p R.t5 Rv32.Csr.mepc R.zero;
  A.addi p R.t5 R.t5 4;
  A.csrrw p R.zero Rv32.Csr.mepc R.t5;
  A.mret p

let test_trap_mid_chain () =
  ignore (check_engines ~name:"trap mid-chain" trap_prog)

(* --- taint: mid-chain entry on the fast variant -------------------------- *)

let conf_policy () =
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  Dift.Policy.make ~lattice:lat ~default_tag:lc ()

(* Clean ALU work, then a secret load mid-body: the fast chain's guard
   must divert to the full chain in the middle of a linked superblock,
   every iteration (the registers are scrubbed before the back-branch,
   so each dispatch starts fast again). *)
let taint_prog p =
  A.li p R.s2 50;
  A.li p R.s0 0;
  A.label p "loop";
  A.addi p R.s0 R.s0 3;
  A.xori p R.s0 R.s0 0x155;
  A.la p R.t2 "secret";
  A.lw p R.t3 R.t2 0 (* taint enters mid-chain *);
  A.add p R.t4 R.t3 R.s0;
  A.la p R.t5 "cell";
  A.sw p R.t4 R.t5 0;
  A.li p R.t3 0;
  A.li p R.t4 0 (* scrub: regs all-public again *);
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "loop";
  A.la p R.t5 "cell";
  A.lw p R.a1 R.t5 0 (* a1 must come back tainted *);
  A.andi p R.a0 R.s0 0x3f;
  A.li p R.a7 93;
  A.ecall p;
  A.align p 4;
  A.label p "secret";
  A.word p 0x5ec2e700;
  A.label p "cell";
  A.word p 0

let test_taint_mid_chain () =
  let policy = conf_policy () in
  let lat = policy.Dift.Policy.lattice in
  let hc = Dift.Lattice.tag_of_name lat "HC" in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let seed soc img =
    Vp.Soc.seed_taint soc ~origin:"secret"
      ~addr:(Rv32_asm.Image.symbol img "secret")
      ~len:4 hc
  in
  let _soc_i, soc_s =
    check_engines ~policy ~seed ~name:"taint mid-chain" taint_prog
  in
  let tag r = soc_s.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r in
  check_int "a1 tainted HC" hc (tag 11);
  check_int "s0 stays public" lc (tag 8);
  check_bool "fast variant retired instructions" true
    (soc_s.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired () > 0);
  check_bool "superblocks were linked" true
    (soc_s.Vp.Soc.cpu.Vp.Soc.cpu_superblocks_built () > 0)

(* --- invalidation of linked chains --------------------------------------- *)

(* The loop runs hot (linked) for 20 iterations, then a store patches an
   instruction further down the same loop body: the already-linked chain
   must be flushed and the patched form must execute in the very
   iteration that wrote it.  20 x 1 + 20 x 3 = 80. *)
let smc_in_chain p =
  A.li p R.s1 40;
  A.li p R.s0 0;
  A.label p "loop";
  A.li p R.t2 20;
  A.bne_l p R.s1 R.t2 "nopatch";
  A.la p R.t0 "site";
  A.la p R.t1 "newinsn";
  A.lw p R.t1 R.t1 0;
  A.sw p R.t1 R.t0 0;
  A.label p "nopatch";
  A.label p "site";
  A.addi p R.s0 R.s0 1;
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "loop";
  exit_with p R.s0;
  A.align p 4;
  A.label p "newinsn";
  (* addi s0, s0, 3 *)
  A.word p (Rv32.Encode.encode (Rv32.Insn.ADDI (R.s0, R.s0, 3)))

let test_smc_in_chain () =
  ignore (check_engines ~name:"smc in-chain" ~code:80 smc_in_chain)

(* A hot, linked callee is overwritten by a DMA transfer behind the
   CPU's back; the next call must run the patched code (32 warm calls of
   1, then one patched call of 99). *)
let dma_into_chain p =
  A.li p R.s1 32;
  A.li p R.s0 0;
  A.label p "warm";
  A.call p "site_fn";
  A.add p R.s0 R.s0 R.a0;
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "warm";
  A.la p R.t0 "newinsn";
  A.la p R.t1 "site_fn";
  A.li p R.t2 Vp.Soc.dma_base;
  A.sw p R.t0 R.t2 0x0;
  A.sw p R.t1 R.t2 0x4;
  A.li p R.t3 4;
  A.sw p R.t3 R.t2 0x8;
  A.li p R.t3 1;
  A.sw p R.t3 R.t2 0xc;
  A.label p "poll";
  A.lw p R.t3 R.t2 0xc;
  A.bnez_l p R.t3 "poll";
  A.call p "site_fn";
  A.add p R.a0 R.a0 R.s0;
  A.li p R.a7 93;
  A.ecall p;
  A.label p "site_fn";
  A.addi p R.a0 R.zero 1;
  A.ret p;
  A.align p 4;
  A.label p "newinsn";
  (* addi a0, x0, 99 *)
  A.word p (Rv32.Encode.encode (Rv32.Insn.ADDI (R.a0, R.zero, 99)))

let test_dma_into_chain () =
  ignore (check_engines ~name:"dma into chain" ~code:131 dma_into_chain)

(* --- snapshot across engines --------------------------------------------- *)

(* A snapshot saved mid-run under the interpreter must restore into a
   superblock-engine SoC and continue to exactly the state an
   uninterrupted superblock run reaches — and the second half must be
   long enough that chains are linked again after the restore. *)
let snapshot_prog p =
  A.li p R.s1 2000;
  A.li p R.s0 0;
  A.label p "loop";
  A.addi p R.s0 R.s0 7;
  A.xori p R.s0 R.s0 0x111;
  A.call p "fn";
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "loop";
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0;
  A.label p "fn";
  A.addi p R.s0 R.s0 1;
  A.ret p

let make_soc ~engine img =
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true ~engine () in
  Vp.Soc.load_image soc img;
  soc

let test_restore_under_superblocks () =
  let p = A.create () in
  snapshot_prog p;
  let img = A.assemble p in
  (* Reference: uninterrupted run under the superblock engine. *)
  let soc0 = make_soc ~engine:Rv32.Core.Threaded_superblock img in
  soc0.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000;
  Vp.Soc.start soc0;
  Vp.Soc.run soc0;
  let final0 = Vp.Soc.save soc0 in
  let total = soc0.Vp.Soc.cpu.Vp.Soc.cpu_instret () in
  check_bool "run is long enough to split" true (total > 400);
  (* Save mid-run under the interpreter. *)
  let soc1 = make_soc ~engine:Rv32.Core.Interp img in
  Vp.Soc.pause_at soc1 (total / 2);
  soc1.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000;
  Vp.Soc.start soc1;
  Vp.Soc.run soc1;
  check_bool "paused mid-run under interp" true (Vp.Soc.paused soc1);
  let mid = Vp.Soc.save soc1 in
  (* Restore into a superblock-engine SoC and finish. *)
  let soc2 = make_soc ~engine:Rv32.Core.Threaded_superblock img in
  Vp.Soc.restore soc2 mid;
  soc2.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000;
  Vp.Soc.start soc2;
  Vp.Soc.run soc2;
  check_bool "final snapshot matches the superblock reference" true
    (String.equal final0 (Vp.Soc.save soc2));
  check_bool "superblocks linked after the restore" true
    (soc2.Vp.Soc.cpu.Vp.Soc.cpu_superblocks_built () > 0)

(* --- counters: the machinery actually fired ------------------------------ *)

let test_counters () =
  (* Hot call/return: superblocks link, chains run, the monomorphic ret
     hits its inline cache. *)
  let soc, reason =
    run_e ~engine:Rv32.Core.Threaded_superblock callret_prog
  in
  (match reason with
  | Rv32.Core.Exited _ -> ()
  | r -> Alcotest.failf "callret under superblock: %s" (reason_str r));
  let c = soc.Vp.Soc.cpu in
  check_bool "blocks built" true (c.Vp.Soc.cpu_blocks_built () > 0);
  check_bool "superblocks built" true (c.Vp.Soc.cpu_superblocks_built () > 0);
  check_bool "chain transitions taken" true (c.Vp.Soc.cpu_chain_hits () > 0);
  check_bool "inline-cache hits" true (c.Vp.Soc.cpu_ic_hits () > 0);
  (* Polymorphic dispatch: the rotating target site must keep missing
     (and stay demoted) without ever entering a stale chain. *)
  let soc, _ = run_e ~engine:Rv32.Core.Threaded_superblock poly_prog in
  check_bool "inline-cache misses on the polymorphic site" true
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_misses () > 0);
  (* The plain threaded engine never links or installs caches. *)
  let soc, _ = run_e ~engine:Rv32.Core.Threaded callret_prog in
  let c = soc.Vp.Soc.cpu in
  check_int "threaded links no superblocks" 0 (c.Vp.Soc.cpu_superblocks_built ());
  check_int "threaded installs no inline caches" 0
    (c.Vp.Soc.cpu_ic_hits () + c.Vp.Soc.cpu_ic_misses ())

let () =
  Alcotest.run "superblock"
    [
      ( "opcode classes",
        [
          Alcotest.test_case "alu (self-loop + alternating edge)" `Quick
            test_alu;
          Alcotest.test_case "mul/div edge cases in a chain" `Quick
            test_muldiv;
          Alcotest.test_case "loads/stores in a chain" `Quick test_memory;
          Alcotest.test_case "call/ret (monomorphic jalr)" `Quick test_callret;
          Alcotest.test_case "polymorphic jalr dispatch" `Quick test_poly;
        ] );
      ( "traps",
        [
          Alcotest.test_case "trap out of a linked chain" `Quick
            test_trap_mid_chain;
        ] );
      ( "taint",
        [
          Alcotest.test_case "mid-chain taint entry falls back" `Quick
            test_taint_mid_chain;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "smc inside a linked chain" `Quick
            test_smc_in_chain;
          Alcotest.test_case "dma into a linked callee" `Quick
            test_dma_into_chain;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "interp save -> superblock restore" `Quick
            test_restore_under_superblocks;
        ] );
      ( "counters",
        [
          Alcotest.test_case "superblock/chain/ic counters fire" `Quick
            test_counters;
        ] );
    ]
