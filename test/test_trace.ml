(* Tier-1 tests for the tracing subsystem (lib/trace): ring-buffer
   mechanics, the bounded provenance graph, and the end-to-end acceptance
   paths — a tainted sensor word carried by DMA and encrypted by the AES
   engine traces back to the sensor, Wilander violations carry non-empty
   provenance, and an immobilizer forensic report's chain terminates at
   the PIN's classification region. *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg
module T = Trace

(* --- Ring buffer ----------------------------------------------------- *)

let test_ring () =
  let r = T.Ring.create 4 in
  check_int "capacity" 4 (T.Ring.capacity r);
  check_int "empty length" 0 (T.Ring.length r);
  for i = 1 to 6 do
    let e = T.Ring.emit r in
    e.T.Event.time <- i;
    e.T.Event.kind <- T.Event.Note;
    e.T.Event.text <- string_of_int i
  done;
  check_int "total counts overwritten events" 6 (T.Ring.total r);
  check_int "length capped at capacity" 4 (T.Ring.length r);
  let times = ref [] in
  T.Ring.iter r (fun e -> times := e.T.Event.time :: !times);
  check_bool "iter oldest to newest" true (List.rev !times = [ 3; 4; 5; 6 ]);
  let last2 = T.Ring.last r 2 in
  check_bool "last n, oldest first" true
    (List.map (fun e -> e.T.Event.time) last2 = [ 5; 6 ]);
  (* [last] returns copies, not live slots. *)
  let e = T.Ring.emit r in
  e.T.Event.time <- 99;
  check_bool "copies survive slot recycling" true
    (List.map (fun e -> e.T.Event.time) last2 = [ 5; 6 ]);
  T.Ring.clear r;
  check_int "cleared" 0 (T.Ring.length r);
  check_bool "create rejects non-positive size" true
    (try
       ignore (T.Ring.create 0);
       false
     with Invalid_argument _ -> true)

(* --- Provenance graph ------------------------------------------------ *)

(* A diamond lattice so lub(a,b) is a genuine join (differs from both). *)
let diamond () =
  Dift.Lattice.make_exn
    ~classes:[ "BOT"; "A"; "B"; "TOP" ]
    ~flows:[ ("BOT", "A"); ("BOT", "B"); ("A", "TOP"); ("B", "TOP") ]

let test_provenance () =
  let lat = diamond () in
  let t n = Dift.Lattice.tag_of_name lat n in
  let a = t "A" and b = t "B" and top = t "TOP" and bot = t "BOT" in
  let p = T.Provenance.create lat in
  let id1 = T.Provenance.source p ~origin:"sensor" ~time:10 a in
  let id1' = T.Provenance.source p ~origin:"sensor" ~time:999 a in
  check_int "re-registering the same (origin, addr) dedupes" id1 id1';
  let _ = T.Provenance.source p ~origin:"can" ~time:20 b in
  check_int "sources_of a" 1 (List.length (T.Provenance.sources_of p a));
  T.Provenance.record_merge p ~a ~b ~result:top;
  (* Trivial joins (result equals an input) are not edges. *)
  T.Provenance.record_merge p ~a ~b:bot ~result:a;
  T.Provenance.record_via p ~channel:"dma" a;
  T.Provenance.record_declass p ~from:top ~result:bot;
  let chain_top = T.Provenance.chain p top in
  check_bool "chain(top) has the merge step" true
    (List.exists
       (function
         | T.Provenance.Merged m -> m.result = top && m.a = a && m.b = b
         | _ -> false)
       chain_top.T.Provenance.c_steps);
  let origins c =
    List.map (fun s -> s.T.Provenance.s_origin) c.T.Provenance.c_sources
  in
  check_bool "chain(top) reaches both introductions" true
    (List.mem "sensor" (origins chain_top) && List.mem "can" (origins chain_top));
  let chain_bot = T.Provenance.chain p bot in
  check_bool "chain(bot) walks through the declassification" true
    (List.exists
       (function
         | T.Provenance.Declassified d -> d.result = bot && d.from = top
         | _ -> false)
       chain_bot.T.Provenance.c_steps);
  check_bool "chain(bot) still reaches the sensor" true
    (List.mem "sensor" (origins chain_bot));
  check_bool "chain(a) notes the dma hop" true
    (List.exists
       (function
         | T.Provenance.Via v -> v.channel = "dma" && v.tag = a
         | _ -> false)
       (T.Provenance.chain p a).T.Provenance.c_steps);
  (* Budgets: the third distinct source for one tag is dropped, loudly. *)
  let q = T.Provenance.create ~max_sources_per_tag:2 lat in
  let s1 = T.Provenance.source q ~origin:"one" ~time:0 a in
  let s2 = T.Provenance.source q ~origin:"two" ~time:0 a in
  let s3 = T.Provenance.source q ~origin:"three" ~time:0 a in
  check_bool "budgeted ids valid" true (s1 >= 0 && s2 >= 0);
  check_int "over-budget source rejected" (-1) s3;
  check_bool "drops counted" true (T.Provenance.dropped q > 0)

(* --- Sensor -> DMA -> AES end to end --------------------------------- *)

(* Firmware: wait for a sensor frame, DMA its first word into RAM, load
   it, feed it to the AES engine, read the (declassified) ciphertext. *)
let sensor_dma_aes p =
  A.li p R.t0 Vp.Soc.sensor_base;
  A.label p "poll_sensor";
  A.lbu p R.t1 R.t0 0;
  A.beqz_l p R.t1 "poll_sensor";
  A.li p R.t2 Vp.Soc.dma_base;
  A.sw p R.t0 R.t2 0x0;
  A.la p R.t3 "buf";
  A.sw p R.t3 R.t2 0x4;
  A.li p R.t4 4;
  A.sw p R.t4 R.t2 0x8;
  A.li p R.t4 1;
  A.sw p R.t4 R.t2 0xc;
  A.label p "poll_dma";
  A.lw p R.t4 R.t2 0xc;
  A.bnez_l p R.t4 "poll_dma";
  A.la p R.t3 "buf";
  A.lw p R.s0 R.t3 0;
  A.li p R.t5 Vp.Soc.aes_base;
  A.sw p R.s0 R.t5 0x10;
  A.li p R.t4 1;
  A.sw p R.t4 R.t5 0x30;
  A.label p "poll_aes";
  A.lw p R.t4 R.t5 0x30;
  A.bnez_l p R.t4 "poll_aes";
  A.lw p R.s1 R.t5 0x20;
  A.li p R.a0 0;
  A.li p R.a7 93;
  A.ecall p;
  A.align p 4;
  A.label p "buf";
  A.word p 0

let test_sensor_dma_aes_provenance () =
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let hc = Dift.Lattice.tag_of_name lat "HC" in
  let policy = Dift.Policy.unrestricted lat ~default_tag:lc in
  let monitor = Dift.Monitor.create lat in
  let tracer = T.Tracer.create lat in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true
      ~sensor_period:(Sysc.Time.us 20) ~aes_out_tag:lc ~tracer ()
  in
  Vp.Sensor.set_data_tag soc.Vp.Soc.sensor hc;
  let p = A.create () in
  sensor_dma_aes p;
  Vp.Soc.load_image soc (A.assemble p);
  expect_exit (Vp.Soc.run_for_instructions soc 2_000_000) 0;
  check_bool "tracer attached" true (soc.Vp.Soc.trace <> None);
  check_bool "events recorded" true (T.Tracer.events_recorded tracer > 0);
  (* The routed DMA read shows up as a bus event on the sensor target. *)
  let saw_sensor_read = ref false in
  T.Ring.iter tracer.T.Tracer.ring (fun e ->
      if e.T.Event.kind = T.Event.Tlm_read && e.T.Event.text = "sensor" then
        saw_sensor_read := true);
  check_bool "sensor bus read traced" true !saw_sensor_read;
  (* The ciphertext's class walks back through the AES declassification
     to the sensor that introduced the plaintext's class. *)
  let chain = T.Provenance.chain tracer.T.Tracer.prov lc in
  check_bool "ciphertext chain has the declassification" true
    (List.exists
       (function
         | T.Provenance.Declassified d -> d.result = lc && d.from = hc
         | _ -> false)
       chain.T.Provenance.c_steps);
  check_bool "chain terminates at the sensor" true
    (List.exists
       (fun s -> s.T.Provenance.s_origin = "sensor" && s.T.Provenance.s_tag = hc)
       chain.T.Provenance.c_sources);
  check_bool "the tainted word travelled via dma" true
    (List.exists
       (function
         | T.Provenance.Via v -> v.channel = "dma" && v.tag = hc
         | _ -> false)
       (T.Provenance.chain tracer.T.Tracer.prov hc).T.Provenance.c_steps)

(* --- JSONL sink round-trip ------------------------------------------- *)

(* Every line the JSONL sink writes is a self-contained JSON object that
   re-parses through jsonkit and carries the documented keys for its kind
   (docs/tracing.md) — the contract scripts consuming --trace-out rely
   on. Reuses the sensor -> DMA -> AES run so instruction, bus and
   declassification events all appear in the window. *)
let test_jsonl_roundtrip () =
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let hc = Dift.Lattice.tag_of_name lat "HC" in
  let policy = Dift.Policy.unrestricted lat ~default_tag:lc in
  let monitor = Dift.Monitor.create lat in
  let tracer = T.Tracer.create lat in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true
      ~sensor_period:(Sysc.Time.us 20) ~aes_out_tag:lc ~tracer ()
  in
  Vp.Sensor.set_data_tag soc.Vp.Soc.sensor hc;
  let p = A.create () in
  sensor_dma_aes p;
  Vp.Soc.load_image soc (A.assemble p);
  expect_exit (Vp.Soc.run_for_instructions soc 2_000_000) 0;
  let file = Filename.temp_file "trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      T.Sink.write_file tracer ~format:`Jsonl file;
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      check_int "one line per retained event"
        (T.Ring.length tracer.T.Tracer.ring)
        (List.length lines);
      let member = Jsonkit.Json.member in
      let kinds = Hashtbl.create 8 in
      List.iter
        (fun line ->
          match Jsonkit.Json.of_string line with
          | Error e -> Alcotest.failf "line %S does not parse: %s" line e
          | Ok j ->
              check_bool "time present and integral" true
                (member "t" j |> Option.map Jsonkit.Json.to_int |> Option.join
                <> None);
              let k =
                match
                  member "k" j |> Option.map Jsonkit.Json.to_str |> Option.join
                with
                | Some k -> k
                | None -> Alcotest.failf "line %S has no kind" line
              in
              Hashtbl.replace kinds k ();
              let require keys =
                List.iter
                  (fun key ->
                    check_bool (Printf.sprintf "%s event has %S" k key) true
                      (member key j <> None))
                  keys
              in
              (match k with
              | "insn" -> require [ "pc"; "word"; "asm"; "tag"; "tainted" ]
              | "rd" | "wr" -> require [ "addr"; "len"; "tag"; "target" ]
              | "trap" -> require [ "pc"; "code"; "what" ]
              | "violation" -> require [ "pc"; "tag"; "what" ]
              | "declass" -> require [ "from"; "to"; "where" ]
              | "note" -> require [ "text" ]
              | other -> Alcotest.failf "unknown event kind %S" other))
        lines;
      check_bool "instruction events in the window" true
        (Hashtbl.mem kinds "insn");
      check_bool "bus events in the window" true
        (Hashtbl.mem kinds "rd" || Hashtbl.mem kinds "wr"))

(* --- Explicit seeding and inertness ---------------------------------- *)

let test_seed_taint () =
  let lat = Dift.Lattice.confidentiality () in
  let hc = Dift.Lattice.tag_of_name lat "HC" in
  let policy =
    Dift.Policy.unrestricted lat
      ~default_tag:(Dift.Lattice.tag_of_name lat "LC")
  in
  let monitor = Dift.Monitor.create lat in
  let tracer = T.Tracer.create lat in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true ~tracer () in
  Vp.Soc.seed_taint soc ~origin:"manual" ~addr:Vp.Soc.ram_base ~len:4 hc;
  check_bool "seeded source registered" true
    (List.exists
       (fun s -> s.T.Provenance.s_origin = "manual")
       (T.Provenance.sources_of tracer.T.Tracer.prov hc));
  check_bool "seeding outside RAM rejected" true
    (try
       Vp.Soc.seed_taint soc ~origin:"bad" ~addr:0x1000 ~len:4 hc;
       false
     with Invalid_argument _ -> true);
  (* Without a tracer the SoC carries no trace state at all. *)
  let monitor2 = Dift.Monitor.create lat in
  let plain = Vp.Soc.create ~policy ~monitor:monitor2 ~tracking:true () in
  check_bool "no tracer, no trace" true (plain.Vp.Soc.trace = None)

(* --- Wilander attacks carry provenance ------------------------------- *)

let test_wilander_provenance () =
  (* A structurally identical lattice to the attack policy's. *)
  let tracer = T.Tracer.create (Dift.Lattice.integrity ()) in
  (match Firmware.Wilander.run ~tracer 3 with
  | Firmware.Wilander.Detected -> ()
  | Firmware.Wilander.Missed c -> Alcotest.failf "attack 3 missed (exit %d)" c
  | Firmware.Wilander.Not_applicable -> Alcotest.fail "attack 3 marked N/A");
  let viol = ref None in
  T.Ring.iter tracer.T.Tracer.ring (fun e ->
      if e.T.Event.kind = T.Event.Violation then viol := Some (T.Event.copy e));
  match !viol with
  | None -> Alcotest.fail "no violation event in the ring"
  | Some e ->
      let chain = T.Provenance.chain tracer.T.Tracer.prov e.T.Event.tag in
      check_bool "violating tag has non-empty provenance" true
        (chain.T.Provenance.c_sources <> []);
      check_bool "provenance names the attack input channel" true
        (List.exists
           (fun s -> s.T.Provenance.s_origin = "uart.rx")
           chain.T.Provenance.c_sources)

(* --- Immobilizer forensic report (the acceptance check) -------------- *)

let test_immobilizer_forensics () =
  let img =
    Firmware.Immo_fw.image
      ~variant:(Firmware.Immo_fw.Normal { fixed_dump = false })
      ()
  in
  let policy = Firmware.Immo_fw.base_policy img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let aes_out_tag, aes_in_clearance = Firmware.Immo_fw.aes_args policy in
  let tracer = T.Tracer.create policy.Dift.Policy.lattice in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true ~aes_out_tag
      ~aes_in_clearance ~tracer ()
  in
  Vp.Soc.load_image soc img;
  let _engine = Firmware.Immo_fw.Engine.attach soc ~challenge:"CHLLNG42" in
  Vp.Uart.push_rx soc.Vp.Soc.uart "D";
  (match Vp.Soc.run_for_instructions soc 2_000_000 with
  | exception Dift.Violation.Violation _ -> ()
  | _ -> Alcotest.fail "vulnerable dump did not raise a violation");
  let v =
    match Dift.Monitor.violations monitor with
    | v :: _ -> v
    | [] -> Alcotest.fail "monitor recorded no violation"
  in
  let r =
    T.Forensics.make ~violation:v ~context:"immobilizer acceptance" tracer ()
  in
  check_bool "window non-empty" true (r.T.Forensics.r_window <> []);
  (match r.T.Forensics.r_chain with
  | None -> Alcotest.fail "report has no provenance chain"
  | Some c ->
      check_bool "chain terminates at the PIN classification region" true
        (List.exists
           (fun s -> s.T.Provenance.s_origin = "policy-region:pin")
           c.T.Provenance.c_sources));
  let text = T.Forensics.to_string r in
  check_bool "text report renders" true
    (String.length text > 0
    && String.sub text 0 (min 3 (String.length text)) = "===");
  match Jsonkit.Json.of_string (Jsonkit.Json.to_string (T.Forensics.to_json r)) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "forensic JSON does not re-parse: %s" e

let () =
  Alcotest.run "trace"
    [
      ("ring", [ Alcotest.test_case "wrap/last/total" `Quick test_ring ]);
      ( "provenance",
        [ Alcotest.test_case "sources/merge/declass/chain" `Quick test_provenance ]
      );
      ( "integration",
        [
          Alcotest.test_case "sensor -> dma -> aes chain" `Quick
            test_sensor_dma_aes_provenance;
          Alcotest.test_case "jsonl sink round-trip" `Quick
            test_jsonl_roundtrip;
          Alcotest.test_case "explicit seeding + inert without tracer" `Quick
            test_seed_taint;
          Alcotest.test_case "wilander violation provenance" `Quick
            test_wilander_provenance;
          Alcotest.test_case "immobilizer forensic report" `Quick
            test_immobilizer_forensics;
        ] );
    ]
