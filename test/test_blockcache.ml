(* Correctness tests for the decoded basic-block cache: self-modifying
   code through the CPU's DMI store path (cross-block and within the
   running block), DMA writes into cached code over TLM, and agreement of
   exit code / retired-instruction count between cached and single-step
   execution in both VP flavours. *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg

let run_bc ?(tracking = true) ?(block_cache = true) ?(fast_path = true)
    ?engine ?(max_insns = 200_000) build =
  let p = A.create () in
  build p;
  let img = A.assemble p in
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking ~block_cache ~fast_path ?engine ()
  in
  Vp.Soc.load_image soc img;
  let reason = Vp.Soc.run_for_instructions soc max_insns in
  (soc, reason)

(* Run [build] under every (tracking, block_cache) combination; the exit
   reason and instret must not depend on the cache, and the cached VP+ run
   must also be identical with the fast path forced off. *)
let check_all_configs ~name ~code build =
  let reference = ref None in
  List.iter
    (fun (tracking, block_cache, fast_path) ->
      let ctx =
        Printf.sprintf "%s (tracking=%b cache=%b fast=%b)" name tracking
          block_cache fast_path
      in
      let soc, reason = run_bc ~tracking ~block_cache ~fast_path build in
      (match reason with
      | Rv32.Core.Exited c -> check_int (ctx ^ ": exit code") code c
      | _ -> Alcotest.failf "%s: did not exit" ctx);
      let instret = soc.Vp.Soc.cpu.Vp.Soc.cpu_instret () in
      match !reference with
      | None -> reference := Some instret
      | Some r -> check_int (ctx ^ ": instret") r instret)
    [
      (false, true, true);
      (false, false, false);
      (true, true, true);
      (true, true, false);
      (true, false, false);
    ]

(* A function is called, then its first instruction is overwritten through
   a plain store; later calls must execute the patched instruction. *)
let smc_cross_block p =
  A.li p R.s1 0;
  A.li p R.s2 3;
  A.la p R.t0 "site";
  A.la p R.t1 "newinsn";
  A.lw p R.t1 R.t1 0;
  A.label p "loop";
  A.call p "site_fn";
  A.sw p R.t1 R.t0 0;
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "loop";
  A.mv p R.a0 R.s1;
  A.li p R.a7 93;
  A.ecall p;
  A.label p "site_fn";
  A.label p "site";
  A.addi p R.s1 R.s1 1;
  A.ret p;
  A.align p 4;
  A.label p "newinsn";
  (* addi s1, s1, 100 *)
  A.word p (Rv32.Encode.encode (Rv32.Insn.ADDI (R.s1, R.s1, 100)))

(* First call original (+1), two calls patched (+100 each). *)
let test_smc_cross_block () =
  check_all_configs ~name:"smc cross-block" ~code:201 smc_cross_block

(* The store patches an instruction a few slots ahead in the SAME
   straight-line block: the patched word must take effect at its very next
   fetch, exactly as in single-step mode. *)
let smc_in_block p =
  A.li p R.a0 0;
  A.la p R.t0 "site";
  A.la p R.t1 "newinsn";
  A.lw p R.t1 R.t1 0;
  A.sw p R.t1 R.t0 0;
  A.nop p;
  A.label p "site";
  A.addi p R.a0 R.a0 1;
  A.li p R.a7 93;
  A.ecall p;
  A.align p 4;
  A.label p "newinsn";
  (* addi a0, a0, 42 *)
  A.word p (Rv32.Encode.encode (Rv32.Insn.ADDI (R.a0, R.a0, 42)))

let test_smc_in_block () =
  check_all_configs ~name:"smc in-block" ~code:42 smc_in_block

(* DMA writes land in RAM over TLM, behind the CPU's back: a cached
   function is patched by a DMA transfer and must execute the new
   instruction on the next call. *)
let dma_into_code p =
  A.call p "site_fn";
  A.mv p R.s0 R.a0;
  (* DMA: copy 4 bytes from "newinsn" over "site_fn". *)
  A.la p R.t0 "newinsn";
  A.la p R.t1 "site_fn";
  A.li p R.t2 Vp.Soc.dma_base;
  A.sw p R.t0 R.t2 0x0;
  A.sw p R.t1 R.t2 0x4;
  A.li p R.t3 4;
  A.sw p R.t3 R.t2 0x8;
  A.li p R.t3 1;
  A.sw p R.t3 R.t2 0xc;
  A.label p "poll";
  A.lw p R.t3 R.t2 0xc;
  A.bnez_l p R.t3 "poll";
  A.call p "site_fn";
  A.add p R.a0 R.a0 R.s0;
  A.li p R.a7 93;
  A.ecall p;
  A.label p "site_fn";
  A.addi p R.a0 R.zero 1;
  A.ret p;
  A.align p 4;
  A.label p "newinsn";
  (* addi a0, x0, 99 *)
  A.word p (Rv32.Encode.encode (Rv32.Insn.ADDI (R.a0, R.zero, 99)))

(* 1 (original) + 99 (patched). Timing of the DMA engine differs from the
   CPU's instruction stream, so only the exit code is compared across
   configurations (the poll loop's length is allowed to vary with
   scheduling, not with the cache — instret is still checked). *)
let test_dma_into_code () =
  check_all_configs ~name:"dma into code" ~code:100 dma_into_code

let test_counters () =
  let soc, reason = run_bc smc_cross_block in
  expect_exit reason 201;
  check_bool "blocks built > 0" true
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built () > 0);
  check_bool "fast-path instructions retired > 0" true
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired () > 0);
  let soc, reason = run_bc ~block_cache:false ~fast_path:false smc_cross_block in
  expect_exit reason 201;
  check_int "no blocks without cache" 0
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built ());
  check_int "no fast path without cache" 0
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired ());
  (* The plain VP has no tags, so the threaded engine runs its value-only
     specialized chains unconditionally: fast_retired counts them. Under
     the single-step interpreter the counter stays at zero. *)
  let soc, reason = run_bc ~tracking:false smc_cross_block in
  expect_exit reason 201;
  check_bool "plain VP retires through specialized chains" true
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired () > 0);
  let soc, reason =
    run_bc ~tracking:false ~engine:Rv32.Core.Interp smc_cross_block
  in
  expect_exit reason 201;
  check_int "no fast path on the interpreted plain VP" 0
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired ())

(* Pin the per-instruction hook contract documented on Core.set_trace:
   the hook sees every retired instruction exactly once, in retirement
   order, with its fetch pc — including instructions retired from cached
   blocks and on the untainted fast path — and installing it neither
   flushes blocks nor disables the fast path. The tracing subsystem
   (lib/trace) depends on this stream being complete. *)
let hook_pc_stream ~tracking ~block_cache ~fast_path build =
  let p = A.create () in
  build p;
  let img = A.assemble p in
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking ~block_cache ~fast_path ()
  in
  Vp.Soc.load_image soc img;
  let pcs = ref [] in
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_trace (Some (fun pc _ -> pcs := pc :: !pcs));
  let reason = Vp.Soc.run_for_instructions soc 200_000 in
  (soc, reason, List.rev !pcs)

let test_hook_sees_cached_blocks () =
  let reference = ref None in
  List.iter
    (fun (tracking, block_cache, fast_path) ->
      let ctx =
        Printf.sprintf "hook (tracking=%b cache=%b fast=%b)" tracking
          block_cache fast_path
      in
      let soc, reason, pcs =
        hook_pc_stream ~tracking ~block_cache ~fast_path smc_cross_block
      in
      expect_exit reason 201;
      check_int
        (ctx ^ ": one hook call per retired instruction")
        (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ())
        (List.length pcs);
      (if block_cache then
         check_bool (ctx ^ ": hook does not disable block building") true
           (soc.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built () > 0));
      (if tracking && block_cache && fast_path then
         check_bool (ctx ^ ": hook does not disable the fast path") true
           (soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired () > 0));
      match !reference with
      | None -> reference := Some pcs
      | Some r -> check_bool (ctx ^ ": pc stream identical") true (r = pcs))
    [
      (false, true, true);
      (false, false, false);
      (true, true, true);
      (true, true, false);
      (true, false, false);
    ]

let () =
  Alcotest.run "blockcache"
    [
      ( "invalidation",
        [
          Alcotest.test_case "self-modifying code, cross-block" `Quick
            test_smc_cross_block;
          Alcotest.test_case "self-modifying code, in-block" `Quick
            test_smc_in_block;
          Alcotest.test_case "dma write into cached code" `Quick
            test_dma_into_code;
        ] );
      ( "counters",
        [ Alcotest.test_case "block/fast-path counters" `Quick test_counters ]
      );
      ( "hook",
        [
          Alcotest.test_case "per-instruction hook sees cached blocks" `Quick
            test_hook_sees_cached_blocks;
        ] );
    ]
