(* Differential fuzzing: VP and VP+ must compute identical architectural
   state on random programs — the DIFT engine may only ADD checks, never
   change values. This is the stress-testing direction the paper lists as
   future work, done with QCheck.

   Programs are straight-line RV32IM with optional one-instruction forward
   skips; memory traffic is confined to a scratch buffer. *)

open Helpers
module A = Rv32_asm.Asm
module I = Rv32.Insn

(* Working registers x5..x15; x28 holds the scratch-buffer base. *)
let wreg = QCheck.Gen.int_range 5 15
let buf_reg = 28

type rinsn = Plain of I.t | Skip_if_eq of int * int

let gen_rinsn =
  let open QCheck.Gen in
  let imm = int_range (-2048) 2047 in
  let off = map (fun x -> x * 4) (int_bound 62) (* word-aligned, in buffer *) in
  let boff = int_bound 255 in
  let shamt = int_bound 31 in
  frequency
    [
      (6, map3 (fun rd a b -> Plain (I.ADD (rd, a, b))) wreg wreg wreg);
      (4, map3 (fun rd a b -> Plain (I.SUB (rd, a, b))) wreg wreg wreg);
      (4, map3 (fun rd a b -> Plain (I.XOR (rd, a, b))) wreg wreg wreg);
      (4, map3 (fun rd a b -> Plain (I.OR (rd, a, b))) wreg wreg wreg);
      (4, map3 (fun rd a b -> Plain (I.AND (rd, a, b))) wreg wreg wreg);
      (3, map3 (fun rd a b -> Plain (I.SLT (rd, a, b))) wreg wreg wreg);
      (3, map3 (fun rd a b -> Plain (I.SLTU (rd, a, b))) wreg wreg wreg);
      (3, map3 (fun rd a b -> Plain (I.SLL (rd, a, b))) wreg wreg wreg);
      (3, map3 (fun rd a b -> Plain (I.SRL (rd, a, b))) wreg wreg wreg);
      (3, map3 (fun rd a b -> Plain (I.SRA (rd, a, b))) wreg wreg wreg);
      (4, map3 (fun rd a b -> Plain (I.MUL (rd, a, b))) wreg wreg wreg);
      (2, map3 (fun rd a b -> Plain (I.MULH (rd, a, b))) wreg wreg wreg);
      (2, map3 (fun rd a b -> Plain (I.MULHU (rd, a, b))) wreg wreg wreg);
      (2, map3 (fun rd a b -> Plain (I.DIV (rd, a, b))) wreg wreg wreg);
      (2, map3 (fun rd a b -> Plain (I.DIVU (rd, a, b))) wreg wreg wreg);
      (2, map3 (fun rd a b -> Plain (I.REM (rd, a, b))) wreg wreg wreg);
      (2, map3 (fun rd a b -> Plain (I.REMU (rd, a, b))) wreg wreg wreg);
      (6, map3 (fun rd a i -> Plain (I.ADDI (rd, a, i))) wreg wreg imm);
      (3, map3 (fun rd a i -> Plain (I.XORI (rd, a, i))) wreg wreg imm);
      (3, map3 (fun rd a i -> Plain (I.ANDI (rd, a, i))) wreg wreg imm);
      (3, map3 (fun rd a i -> Plain (I.ORI (rd, a, i))) wreg wreg imm);
      (3, map3 (fun rd a s -> Plain (I.SLLI (rd, a, s))) wreg wreg shamt);
      (3, map3 (fun rd a s -> Plain (I.SRAI (rd, a, s))) wreg wreg shamt);
      (2, map2 (fun rd i -> Plain (I.LUI (rd, i lsl 12))) wreg (int_bound 0xfffff));
      (4, map2 (fun rd o -> Plain (I.LW (rd, buf_reg, o))) wreg off);
      (3, map2 (fun rd o -> Plain (I.LBU (rd, buf_reg, o))) wreg (map2 (+) off (int_bound 3)));
      (3, map2 (fun rd o -> Plain (I.LB (rd, buf_reg, o))) wreg (map2 (+) off (int_bound 3)));
      (2, map2 (fun rd o -> Plain (I.LH (rd, buf_reg, o))) wreg (map2 (fun a b -> a + 2 * b) off (int_bound 1)));
      (4, map2 (fun rs o -> Plain (I.SW (buf_reg, rs, o))) wreg off);
      (3, map2 (fun rs o -> Plain (I.SB (buf_reg, rs, o))) wreg (map2 (+) off (int_bound 3)));
      (2, map2 (fun rs o -> Plain (I.SH (buf_reg, rs, o))) wreg (map2 (fun a b -> a + 2 * b) off (int_bound 1)));
      (3, map2 (fun a b -> Skip_if_eq (a, b)) wreg wreg);
      (1, return (Plain I.FENCE));
      (1, map (fun b -> Plain (I.SLTIU (5, 5, b))) boff);
    ]

let gen_program =
  QCheck.Gen.(list_size (int_range 10 60) gen_rinsn)

let print_program prog =
  String.concat "\n"
    (List.map
       (function
         | Plain i -> Rv32.Disasm.insn i
         | Skip_if_eq (a, b) ->
             Printf.sprintf "beq %s, %s, +8 (skip)" (Rv32.Reg.name a)
               (Rv32.Reg.name b))
       prog)

let arb_program = QCheck.make ~print:print_program gen_program

let build_image prog =
  let p = A.create () in
  Firmware.Rt.entry p ();
  (* Seed the working registers deterministically and point x28 at the
     buffer. *)
  List.iteri (fun i r -> A.li p r (0x1234 * (i + 1))) [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ];
  A.la p buf_reg "buf";
  List.iter
    (function
      | Plain i -> A.insn p i
      | Skip_if_eq (a, b) -> A.insn p (I.BEQ (a, b, 8)))
    prog;
  (* A trailing skip must not jump over the exit sequence. *)
  A.nop p;
  A.li p 17 93;
  A.insn p I.ECALL;
  A.align p 4;
  A.label p "buf";
  (* Non-trivial initial contents. *)
  for i = 0 to 255 do
    A.byte p ((i * 37) land 0xff)
  done;
  A.assemble p

let run_flavour ~tracking img =
  let policy = integrity_policy () in
  let soc = soc_of_policy ~tracking policy in
  Vp.Soc.load_image soc img;
  match Vp.Soc.run_for_instructions soc 10_000 with
  | Rv32.Core.Exited code ->
      let regs = List.map (fun r -> soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg r)
          [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ] in
      let buf_addr = Rv32_asm.Image.symbol img "buf" - Vp.Soc.ram_base in
      let mem = List.init 256 (fun i -> Vp.Memory.read_byte soc.Vp.Soc.memory (buf_addr + i)) in
      Some (code, regs, mem, soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ())
  | _ -> None

let prop_differential =
  QCheck.Test.make ~name:"VP and VP+ agree on architectural state" ~count:150
    arb_program (fun prog ->
      let img = build_image prog in
      match (run_flavour ~tracking:false img, run_flavour ~tracking:true img) with
      | Some (c1, r1, m1, i1), Some (c2, r2, m2, i2) ->
          c1 = c2 && r1 = r2 && m1 = m2 && i1 = i2
      | None, None -> true (* both refused identically *)
      | _ -> false)

(* Random programs must also round-trip through the encoder at image
   level: disassembling the built image and re-assembling reproduces it. *)
let prop_image_disasm_stable =
  QCheck.Test.make ~name:"image disassembles to decodable words" ~count:100
    arb_program (fun prog ->
      let img = build_image prog in
      let code = img.Rv32_asm.Image.code in
      let buf_off = Rv32_asm.Image.symbol img "buf" - img.Rv32_asm.Image.org in
      let ok = ref true in
      let i = ref 0 in
      while !i + 4 <= buf_off do
        let w = Int32.to_int (Bytes.get_int32_le code !i) land 0xffffffff in
        (match Rv32.Decode.decode w with
        | Rv32.Insn.ILLEGAL _ -> ok := false
        | _ -> ());
        i := !i + 4
      done;
      !ok)

(* Golden-model differential: the production ISS must agree with the
   independent naive interpreter on registers, memory and retirement
   count. *)
let run_golden img =
  let g = Rv32.Golden.create ~mem_base:Vp.Soc.ram_base ~mem_size:(1 lsl 20) in
  Rv32.Golden.load g ~addr:img.Rv32_asm.Image.org
    (Bytes.to_string img.Rv32_asm.Image.code);
  Rv32.Golden.set_pc g img.Rv32_asm.Image.org;
  match Rv32.Golden.run g ~max_insns:10_000 with
  | Rv32.Golden.Exited code, n ->
      let regs = List.map (Rv32.Golden.reg g) [ 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ] in
      let buf = Rv32_asm.Image.symbol img "buf" in
      let mem = List.init 256 (fun i -> Rv32.Golden.mem_byte g (buf + i)) in
      Some (code, regs, mem, n)
  | _ -> None

let prop_golden_model =
  QCheck.Test.make ~name:"production ISS agrees with the golden model"
    ~count:150 arb_program (fun prog ->
      let img = build_image prog in
      match (run_golden img, run_flavour ~tracking:true img) with
      | Some (c1, r1, m1, n1), Some (c2, r2, m2, n2) ->
          (* The golden model counts the exit ecall in its retired total;
             the core counts it too — both via n. Exit codes are the s32
             view of a0 in both. *)
          c1 = c2 && r1 = r2 && m1 = m2 && n1 = n2
      | None, None -> true
      | _ -> false)

let test_fuzz_harness () =
  let config =
    { Difftest.Harness.default with seed = 7; programs = 60; props_every = 10 }
  in
  let report = Difftest.Harness.run ~config () in
  check_bool "invariants hold" true (Difftest.Harness.healthy report);
  check_int "all programs completed" 60 report.Difftest.Harness.completed;
  check_bool "checks actually ran" true (report.Difftest.Harness.checks > 0)

let () =
  Alcotest.run "diff"
    [
      ( "differential",
        List.map qtest
          [ prop_differential; prop_image_disasm_stable; prop_golden_model ] );
      ("policy fuzz", [ Alcotest.test_case "fuzz harness healthy" `Quick test_fuzz_harness ]);
    ]
