(* Transparency of the untainted fast path: with the fast path on vs
   forced off, every observable of a run must be bit-identical — exit
   reason, retired instructions, register tags, the memory taint map and
   the recorded violations. The fast path may only change how fast the
   simulation runs and how many checks the monitor counts. *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg
module L = Dift.Lattice
module Immo = Firmware.Immo_fw

let lat = L.ifp3 ()
let t n = L.tag_of_name lat n

(* Same shape as the policy in test_dift: (HC,HI) secret region, program
   region at ifp3's bottom (LC,HI), all execution clearances on — so the
   fast path is enabled and engages until the first tainted load. *)
let policy_with ~secret_lo ~secret_hi ~image () =
  let lo, hi = image in
  Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI")
    ~classification:
      [
        Dift.Policy.region ~name:"secret" ~lo:secret_lo ~hi:secret_hi
          ~tag:(t "HC,HI");
        Dift.Policy.region ~name:"program" ~lo ~hi ~tag:(t "LC,HI");
      ]
    ~output_clearance:[ ("uart", t "LC,LI") ]
    ~exec_fetch:(t "LC,HI") ~exec_branch:(t "LC,LI")
    ~exec_mem_addr:(t "LC,LI") ()

type snapshot = {
  s_reason : Rv32.Core.exit_reason;
  s_instret : int;
  s_reg_tags : int list;
  s_taint : (int * int * Dift.Lattice.tag) list;
  s_violations : Dift.Violation.t list;
  s_checks : int;
  s_fast : int;
}

let run_scenario ?(fast_path = true) ?(veto = false) build =
  let p = A.create () in
  build p;
  let img = A.assemble p in
  let secret_lo = Rv32_asm.Image.symbol img "secret" in
  let policy =
    policy_with ~secret_lo
      ~secret_hi:(secret_lo + 15)
      ~image:(img.Rv32_asm.Image.org, Rv32_asm.Image.limit img - 1)
      ()
  in
  let monitor = Dift.Monitor.create ~mode:Dift.Monitor.Record lat in
  if veto then Dift.Monitor.set_fast_path_ok monitor false;
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true ~fast_path () in
  Vp.Soc.load_image soc img;
  let reason = Vp.Soc.run_for_instructions soc 200_000 in
  let cpu = soc.Vp.Soc.cpu in
  {
    s_reason = reason;
    s_instret = cpu.Vp.Soc.cpu_instret ();
    s_reg_tags = List.init 32 (fun r -> cpu.Vp.Soc.cpu_get_reg_tag r);
    s_taint =
      Vp.Memory.tainted_regions soc.Vp.Soc.memory ~baseline:(t "LC,HI");
    s_violations = Dift.Monitor.violations monitor;
    s_checks = Dift.Monitor.check_count monitor;
    s_fast = cpu.Vp.Soc.cpu_fast_retired ();
  }

let check_equal ~name a b =
  check_bool (name ^ ": exit reason") true (a.s_reason = b.s_reason);
  check_int (name ^ ": instret") a.s_instret b.s_instret;
  check_bool (name ^ ": register tags") true (a.s_reg_tags = b.s_reg_tags);
  check_bool (name ^ ": memory taint map") true (a.s_taint = b.s_taint);
  check_int (name ^ ": violation count")
    (List.length a.s_violations)
    (List.length b.s_violations);
  check_bool (name ^ ": violations") true (a.s_violations = b.s_violations)

(* Fast on vs off; the on-run must actually exercise the fast path. *)
let compare_scenario ~name ?(expect_fast = true) build =
  let on = run_scenario ~fast_path:true build in
  let off = run_scenario ~fast_path:false build in
  check_equal ~name on off;
  check_int (name ^ ": no fast path when disabled") 0 off.s_fast;
  if expect_fast then
    check_bool (name ^ ": fast path exercised") true (on.s_fast > 0)

(* A warm-up loop of pure-constant work: every instruction is eligible for
   the fast path. *)
let warm_loop p =
  A.li p R.s4 50;
  A.label p "warm";
  A.addi p R.s5 R.s5 3;
  A.addi p R.s4 R.s4 (-1);
  A.bnez_l p R.s4 "warm"

let secret_data p =
  A.align p 4;
  A.label p "secret";
  A.ascii p "0123456789abcdef"

(* Taint enters via a load and propagates through the ALU; no violation. *)
let alu_scenario p =
  Firmware.Rt.entry p ();
  warm_loop p;
  A.la p R.t0 "secret";
  A.lw p R.t1 R.t0 0;
  A.li p R.t2 1;
  A.add p R.s2 R.t1 R.t2;
  A.xor p R.s3 R.t1 R.t1;
  Firmware.Rt.exit_ p ();
  secret_data p

let test_alu () =
  compare_scenario ~name:"alu taint" alu_scenario;
  (* The taint itself must be there (guards against "identical because the
     engine did nothing"). *)
  let on = run_scenario alu_scenario in
  check_bool "s2 tainted" true
    (List.nth on.s_reg_tags R.s2 = t "HC,HI")

(* Branching on a secret: an Exec_branch violation must be recorded
   identically whether or not the fast path was live moments before. *)
let branch_scenario p =
  Firmware.Rt.entry p ();
  warm_loop p;
  A.la p R.t0 "secret";
  A.lw p R.t1 R.t0 0;
  A.beqz_l p R.t1 "somewhere";
  A.label p "somewhere";
  A.beqz_l p R.t1 "elsewhere";
  A.label p "elsewhere";
  Firmware.Rt.exit_ p ();
  secret_data p

let test_branch_violation () =
  compare_scenario ~name:"branch violation" branch_scenario;
  let on = run_scenario branch_scenario in
  check_int "two violations recorded" 2 (List.length on.s_violations);
  List.iter
    (fun v ->
      check_bool "kind is exec-branch" true
        (v.Dift.Violation.kind = Dift.Violation.Exec_branch))
    on.s_violations

(* Secret-dependent address: Exec_mem_addr. *)
let mem_addr_scenario p =
  Firmware.Rt.entry p ();
  warm_loop p;
  A.la p R.t0 "secret";
  A.lw p R.t1 R.t0 0;
  A.andi p R.t1 R.t1 3;
  A.la p R.t2 "scratch";
  A.add p R.t2 R.t2 R.t1;
  A.lbu p R.a0 R.t2 0;
  Firmware.Rt.exit_ p ();
  secret_data p;
  A.label p "scratch";
  A.space p 8

let test_mem_addr_violation () =
  compare_scenario ~name:"mem-addr violation" mem_addr_scenario;
  let on = run_scenario mem_addr_scenario in
  check_bool "exec-mem-addr recorded" true
    (List.exists
       (fun v -> v.Dift.Violation.kind = Dift.Violation.Exec_mem_addr)
       on.s_violations)

(* Taint written to memory: the taint MAP must agree, not just registers. *)
let store_scenario p =
  Firmware.Rt.entry p ();
  warm_loop p;
  A.la p R.t0 "secret";
  A.lbu p R.t1 R.t0 0;
  A.la p R.t2 "scratch";
  A.sb p R.t1 R.t2 0;
  A.lbu p R.s2 R.t2 0;
  Firmware.Rt.exit_ p ();
  secret_data p;
  A.label p "scratch";
  A.space p 4

let test_store_taint () =
  compare_scenario ~name:"store taint" store_scenario;
  let on = run_scenario store_scenario in
  check_bool "taint map not empty" true (on.s_taint <> [])

(* The monitor's veto: with set_fast_path_ok false the engine must fall
   back to exact per-check accounting — check_count then matches the
   fast_path:false run exactly. *)
let test_monitor_veto () =
  let vetoed = run_scenario ~fast_path:true ~veto:true branch_scenario in
  let off = run_scenario ~fast_path:false branch_scenario in
  check_int "veto disables the fast path" 0 vetoed.s_fast;
  check_equal ~name:"vetoed vs disabled" vetoed off;
  check_int "exact check accounting restored" off.s_checks vetoed.s_checks

(* The immobilizer case study end to end: protocol run and a detected
   attack, fast path on vs off. *)
let immo_soc ~fast_path img =
  let policy = Immo.base_policy img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let aes_out_tag, aes_in_clearance = Immo.aes_args policy in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true ~aes_out_tag
      ~aes_in_clearance ~fast_path ()
  in
  Vp.Soc.load_image soc img;
  soc

let test_immobilizer_protocol () =
  let run fast_path =
    let img = Immo.image ~variant:(Immo.Normal { fixed_dump = true }) () in
    let soc = immo_soc ~fast_path img in
    let engine = Immo.Engine.attach soc ~challenge:"CHLLNG42" in
    let reason = Vp.Soc.run_for_instructions soc 2_000_000 in
    expect_exit reason 0;
    check_bool "response valid" true (Immo.Engine.response_valid engine);
    soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ()
  in
  check_int "instret agrees" (run true) (run false)

let test_immobilizer_leak_detected () =
  List.iter
    (fun fast_path ->
      let img = Immo.image ~variant:Immo.Leak_direct () in
      let soc = immo_soc ~fast_path img in
      match Vp.Soc.run_for_instructions soc 2_000_000 with
      | exception Dift.Violation.Violation v ->
          check_bool "uart output-clearance violation" true
            (match v.Dift.Violation.kind with
            | Dift.Violation.Output_clearance "uart" -> true
            | _ -> false)
      | _ ->
          Alcotest.failf "leak not detected (fast_path=%b)" fast_path)
    [ true; false ]

let () =
  Alcotest.run "fastpath"
    [
      ( "transparency",
        [
          Alcotest.test_case "alu taint" `Quick test_alu;
          Alcotest.test_case "branch violation" `Quick test_branch_violation;
          Alcotest.test_case "mem-addr violation" `Quick
            test_mem_addr_violation;
          Alcotest.test_case "store taint map" `Quick test_store_taint;
          Alcotest.test_case "monitor veto" `Quick test_monitor_veto;
        ] );
      ( "immobilizer",
        [
          Alcotest.test_case "protocol unchanged" `Quick
            test_immobilizer_protocol;
          Alcotest.test_case "leak still detected" `Quick
            test_immobilizer_leak_detected;
        ] );
    ]
