(* The coverage-guided differential-testing subsystem, exercised with fixed
   seeds so tier-1 runs are deterministic:

   - a ~100-program smoke run of the three-way oracle (golden model, plain
     VP, VP+) with taint-metamorphic property checks must hold every
     invariant and reach full RV32IM opcode coverage;
   - an injected fault (a stand-in for a tag-propagation bug in one
     instruction) must be detected, shrunk to a minimal program, and
     emitted as re-assembleable .s source that still reproduces;
   - the textual reproducer path must agree byte-for-byte with the binary
     assembly path. *)

open Helpers
module H = Difftest.Harness
module P = Difftest.Prog

let smoke_cfg =
  { H.default with seed = 0xd1f7; programs = 100; size = 30; shrink = false }

let smoke = lazy (H.run ~config:smoke_cfg ())

let test_smoke_healthy () =
  let r = Lazy.force smoke in
  check_bool "invariants hold" true (H.healthy r);
  check_int "no injected hits" 0 r.H.injected_hits;
  check_bool "most programs complete" true (r.H.completed > 90);
  check_bool "clearance checks ran" true (r.H.checks > 0)

let test_smoke_coverage () =
  let r = Lazy.force smoke in
  check_bool "all RV32IM opcodes executed"
    true
    (Difftest.Coverage.missing r.H.coverage = []);
  (* Branches must have been exercised in both directions overall. *)
  let taken, not_taken =
    List.fold_left
      (fun (t, n) op ->
        ( t + Difftest.Coverage.taken r.H.coverage op,
          n + Difftest.Coverage.not_taken r.H.coverage op ))
      (0, 0)
      [ "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu" ]
  in
  check_bool "branches taken" true (taken > 0);
  check_bool "branches not taken" true (not_taken > 0)

(* The block-cache transparency check of the harness: every program is
   additionally replayed with the cache and fast path off, and the two runs
   must agree on all architectural and taint state. Fixed seed, fewer
   programs than the smoke run (each costs four extra simulations). *)
let test_cache_diff_clean () =
  let cfg =
    {
      H.default with
      seed = 0xcac4e;
      programs = 40;
      size = 30;
      shrink = false;
      cache_diff = true;
    }
  in
  let r = H.run ~config:cfg () in
  check_bool "invariants hold" true (H.healthy r);
  check_int "no cache-vs-nocache mismatches" 0 r.H.cache_mismatches;
  check_bool "programs completed" true (r.H.completed > 30)

(* The generator emits real control flow and memory traffic, not just
   straight-line code. *)
let test_generator_structure () =
  let rng = Difftest.Rng.create ~seed:0xabcd in
  let cov = Difftest.Coverage.create () in
  let progs = List.init 20 (fun _ -> Difftest.Gen.program rng cov ~size:30) in
  let has f = List.exists (fun p -> List.exists f p) progs in
  check_bool "guards generated" true (has (function P.Guard _ -> true | _ -> false));
  check_bool "loops generated" true (has (function P.Loop _ -> true | _ -> false));
  check_bool "calls generated" true (has (function P.Call _ -> true | _ -> false));
  check_bool "memory ops generated" true
    (has (fun b -> List.exists Rv32.Insn.is_memory (P.body_of b)))

let test_to_asm_matches_assemble () =
  let rng = Difftest.Rng.create ~seed:0xbeef in
  let cov = Difftest.Coverage.create () in
  for _ = 1 to 10 do
    let prog = Difftest.Gen.program rng cov ~size:20 in
    let direct = P.assemble prog in
    let parsed = Rv32_asm.Parser.parse_string (P.to_asm prog) in
    check_bool "same code bytes" true
      (Bytes.equal direct.Rv32_asm.Image.code parsed.Rv32_asm.Image.code)
  done

(* Injected fault end-to-end: detect, shrink to a 1-minimal program, emit
   .s that re-assembles and still reproduces. *)
let test_injected_fault_shrinks () =
  let config =
    {
      H.default with
      seed = 7;
      programs = 5;
      props_every = 0;
      inject = Some "mulhsu";
    }
  in
  let r = H.run ~config () in
  check_bool "fault detected" true (r.H.injected_hits > 0);
  check_bool "other invariants still hold" true (H.healthy r);
  match r.H.failures with
  | [] -> Alcotest.fail "no failure recorded"
  | f :: _ ->
      check_bool "shrunk to very few blocks" true (f.H.f_blocks <= 2);
      check_bool "shrunk to very few insns" true (f.H.f_insns <= 3);
      (* The reproducer must re-assemble and still execute the opcode. *)
      let img = Rv32_asm.Parser.parse_string f.H.f_asm in
      let cov = Difftest.Coverage.create () in
      let res = Difftest.Oracle.run ~trace:(Difftest.Coverage.hook cov) img in
      check_bool "reproducer still executes mulhsu" true
        (Difftest.Coverage.count cov "mulhsu" > 0);
      check_bool "reproducer exits cleanly" true
        (match res.Difftest.Oracle.vpp.Difftest.Oracle.stop with
        | Difftest.Oracle.Exited _ -> true
        | _ -> false);
      (* The forensic replay attaches a rendered report to the failure. *)
      match f.H.f_forensics with
      | None -> Alcotest.fail "no forensic report attached"
      | Some text ->
          check_bool "forensic report non-empty" true (String.length text > 0);
          check_bool "forensic report has event window" true
            (let re = "last " in
             let n = String.length text and m = String.length re in
             let rec find i =
               i + m <= n && (String.sub text i m = re || find (i + 1))
             in
             find 0)

(* The shrinker is 1-minimal against a cheap static predicate: removing any
   remaining block or body instruction must clear the predicate. *)
let test_shrinker_minimal () =
  let count_op prog =
    List.fold_left
      (fun acc b ->
        acc
        + List.length
            (List.filter
               (fun i -> Rv32.Insn.opcode i = "mul")
               (P.body_of b)))
      0 prog
  in
  let pred p = count_op p >= 2 in
  let rng = Difftest.Rng.create ~seed:0x5eed1 in
  let cov = Difftest.Coverage.create () in
  (* Find a program with at least two MULs to start from. *)
  let rec find () =
    let p = Difftest.Gen.program rng cov ~size:40 in
    if pred p then p else find ()
  in
  let prog = find () in
  let shrunk, stats = Difftest.Shrink.minimize pred prog in
  check_bool "still failing" true (pred shrunk);
  check_bool "got smaller" true (stats.Difftest.Shrink.to_insns <= stats.Difftest.Shrink.from_insns);
  check_int "exactly the two needed insns survive elsewhere" 2 (count_op shrunk);
  (* 1-minimality at block level. *)
  let n = List.length shrunk in
  for i = 0 to n - 1 do
    let without = List.filteri (fun j _ -> j <> i) shrunk in
    if without <> [] && pred without then
      Alcotest.failf "block %d is removable — not minimal" i
  done

let test_oracle_agreement_on_fixed_program () =
  (* A deterministic structured program through the full oracle. *)
  let prog =
    [
      P.Straight (P.li_insns 5 0x80000000 @ P.li_insns 6 0xffffffff @ [ Rv32.Insn.DIV (7, 5, 6) ]);
      P.Loop { count = 3; body = [ Rv32.Insn.ADDI (8, 8, 1) ] };
      P.Guard { kind = P.Bne; rs1 = 8; rs2 = 9; body = [ Rv32.Insn.XOR (10, 10, 10) ] };
      P.Call { via_jalr = true; body = [ Rv32.Insn.SW (P.buf_reg, 7, 16) ] };
    ]
  in
  let res = Difftest.Oracle.run (P.assemble prog) in
  check_bool "golden agrees with VP" true
    (Difftest.Oracle.agree res.Difftest.Oracle.golden res.Difftest.Oracle.vp);
  check_bool "VP agrees with VP+" true
    (Difftest.Oracle.agree res.Difftest.Oracle.vp res.Difftest.Oracle.vpp);
  (* INT_MIN / -1 = INT_MIN must have landed in the scratch buffer. *)
  let w =
    let m = res.Difftest.Oracle.vpp.Difftest.Oracle.mem in
    Char.code m.[16] lor (Char.code m.[17] lsl 8) lor (Char.code m.[18] lsl 16)
    lor (Char.code m.[19] lsl 24)
  in
  check_int "INT_MIN / -1 stored" 0x80000000 w

let test_props_hold_on_random_programs () =
  let rng = Difftest.Rng.create ~seed:0xfeed in
  let cov = Difftest.Coverage.create () in
  for _ = 1 to 5 do
    let img = P.assemble (Difftest.Gen.program rng cov ~size:15) in
    (match Difftest.Props.purity img with
    | Difftest.Props.Ok -> ()
    | Difftest.Props.Failed m -> Alcotest.failf "purity: %s" m);
    match Difftest.Props.monotonic rng img with
    | Difftest.Props.Ok -> ()
    | Difftest.Props.Failed m -> Alcotest.failf "monotonicity: %s" m
  done

let () =
  Alcotest.run "difftest"
    [
      ( "smoke",
        [
          Alcotest.test_case "fixed-seed run healthy" `Quick test_smoke_healthy;
          Alcotest.test_case "full RV32IM coverage" `Quick test_smoke_coverage;
          Alcotest.test_case "cache-vs-nocache diff clean" `Quick
            test_cache_diff_clean;
        ] );
      ( "generator",
        [
          Alcotest.test_case "structured programs" `Quick test_generator_structure;
          Alcotest.test_case ".s emission = binary emission" `Quick
            test_to_asm_matches_assemble;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "three-way agreement" `Quick
            test_oracle_agreement_on_fixed_program;
          Alcotest.test_case "metamorphic properties" `Quick
            test_props_hold_on_random_programs;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "injected fault to minimal .s" `Quick
            test_injected_fault_shrinks;
          Alcotest.test_case "1-minimal result" `Quick test_shrinker_minimal;
        ] );
    ]
