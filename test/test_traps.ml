(* Architectural trap tests: every synchronous exception cause delivered
   to an installed machine handler, with mcause/mepc/mtval and the
   mstatus MIE/MPIE/MPP stack-unstack checked — on both execution
   engines, with and without the decoded-block cache. *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg
module C = Rv32.Csr

(* Every case runs the same scaffold: enable mstatus.MIE, install the
   handler, run an optional [pre] (e.g. drop to U-mode), then the
   trigger. The handler records mcause/mepc/mtval/mstatus into
   s2/s3/s4/s5, redirects mepc to [resume] (forcing MPP back to M so the
   epilogue runs privileged), and mrets; [resume] records the unstacked
   mstatus into s6 and exits 0. Triggers place the label [fault_at]
   immediately before the faulting instruction. *)
let scaffold ?(pre = fun _ -> ()) trigger p =
  Firmware.Rt.entry p ();
  A.li p R.t0 C.mstatus_mie;
  A.csrrs p R.zero C.mstatus R.t0;
  A.la p R.t6 "tvec";
  A.csrrw p R.zero C.mtvec R.t6;
  pre p;
  trigger p;
  A.label p "resume";
  A.csrrs p R.s6 C.mstatus 0;
  Firmware.Rt.exit_ p ~code:0 ();
  (* Landing pad for the control-flow triggers (never executed). *)
  A.align p 4;
  A.label p "target";
  A.nop p;
  A.nop p;
  A.align p 4;
  A.label p "tvec";
  A.csrrs p R.s2 C.mcause 0;
  A.csrrs p R.s3 C.mepc 0;
  A.csrrs p R.s4 C.mtval 0;
  A.csrrs p R.s5 C.mstatus 0;
  A.la p R.t6 "resume";
  A.csrrw p R.zero C.mepc R.t6;
  A.li p R.t6 C.mstatus_mpp_mask;
  A.csrrs p R.zero C.mstatus R.t6;
  A.mret p;
  A.align p 4;
  A.label p "data";
  A.word p 0x11223344;
  A.word p 0

let unmapped = 0x0000_0100

(* Expected mepc / mtval, resolved against the assembled image. *)
type addr = Fault_at | Target_plus of int | Data_plus of int | Abs of int

let resolve img = function
  | Fault_at -> Rv32_asm.Image.symbol img "fault_at"
  | Target_plus k -> Rv32_asm.Image.symbol img "target" + k
  | Data_plus k -> Rv32_asm.Image.symbol img "data" + k
  | Abs a -> a

type case = {
  c_name : string;
  c_cause : int;
  c_epc : addr;
  c_tval : addr;
  c_priv : int; (* privilege captured in mstatus.MPP at trap entry *)
  c_strict : bool; (* needs a strict-alignment SoC *)
  c_pre : A.t -> unit;
  c_trigger : A.t -> unit;
}

let mk ?(priv = C.priv_m) ?(strict = false) ?(pre = fun _ -> ()) name cause epc
    tval trigger =
  {
    c_name = name;
    c_cause = cause;
    c_epc = epc;
    c_tval = tval;
    c_priv = priv;
    c_strict = strict;
    c_pre = pre;
    c_trigger = trigger;
  }

(* Drop to U-mode at the trigger: mepc <- the trigger, MPIE <- 1 (so the
   mret leaves MIE set, same as the machine-mode cases), MPP <- U. *)
let drop_to_u p =
  A.li p R.t0 C.mstatus_mpie;
  A.csrrs p R.zero C.mstatus R.t0;
  A.la p R.t6 "umode";
  A.csrrw p R.zero C.mepc R.t6;
  A.li p R.t6 C.mstatus_mpp_mask;
  A.csrrc p R.zero C.mstatus R.t6;
  A.mret p;
  A.label p "umode"

let cases =
  [
    mk "fetch-misaligned" C.cause_fetch_misaligned (Target_plus 2)
      (Target_plus 2) (fun p ->
        A.la p R.t1 "target";
        A.addi p R.t1 R.t1 2;
        A.label p "fault_at";
        A.jalr p R.zero R.t1 0);
    mk "fetch-fault" C.cause_fetch_fault (Abs unmapped) (Abs unmapped)
      (fun p ->
        A.li p R.t1 unmapped;
        A.label p "fault_at";
        A.jalr p R.zero R.t1 0);
    mk "illegal" C.cause_illegal Fault_at (Abs 0xffff_ffff) (fun p ->
        A.label p "fault_at";
        A.word p 0xffff_ffff);
    mk "breakpoint" C.cause_breakpoint Fault_at Fault_at (fun p ->
        A.label p "fault_at";
        A.ebreak p);
    mk "load-misaligned" ~strict:true C.cause_load_misaligned Fault_at
      (Data_plus 2) (fun p ->
        A.la p R.t1 "data";
        A.label p "fault_at";
        A.lw p R.t2 R.t1 2);
    mk "load-fault" C.cause_load_fault Fault_at (Abs unmapped) (fun p ->
        A.li p R.t1 unmapped;
        A.label p "fault_at";
        A.lw p R.t2 R.t1 0);
    mk "store-misaligned" ~strict:true C.cause_store_misaligned Fault_at
      (Data_plus 2) (fun p ->
        A.la p R.t1 "data";
        A.label p "fault_at";
        A.sw p R.t2 R.t1 2);
    mk "store-fault" C.cause_store_fault Fault_at (Abs unmapped) (fun p ->
        A.li p R.t1 unmapped;
        A.label p "fault_at";
        A.sw p R.t2 R.t1 0);
    mk "ecall-u" ~priv:C.priv_u ~pre:drop_to_u C.cause_ecall_u Fault_at
      (Abs 0) (fun p ->
        A.label p "fault_at";
        A.ecall p);
    mk "ecall-m" C.cause_ecall_m Fault_at (Abs 0) (fun p ->
        A.li p R.a7 0;
        A.label p "fault_at";
        A.ecall p);
  ]

let run_scaffold ~engine ~block_cache ~strict_align ?pre trigger =
  let p = A.create () in
  scaffold ?pre trigger p;
  let img = A.assemble p in
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true ~engine ~block_cache
      ~strict_align ()
  in
  Vp.Soc.load_image soc img;
  expect_exit (Vp.Soc.run_for_instructions soc 100_000) 0;
  (soc, img)

let reg soc r = soc.Vp.Soc.cpu.Vp.Soc.cpu_get_reg r

let test_case ~engine ~block_cache c () =
  let soc, img =
    run_scaffold ~engine ~block_cache ~strict_align:c.c_strict ~pre:c.c_pre
      c.c_trigger
  in
  check_int "mcause" c.c_cause (reg soc R.s2);
  check_int "mepc" (resolve img c.c_epc) (reg soc R.s3);
  check_int "mtval" (resolve img c.c_tval) (reg soc R.s4);
  (* Trap entry stacks: MIE <- 0, MPIE <- old MIE (1), MPP <- old priv. *)
  let in_handler = reg soc R.s5 in
  check_int "handler mstatus.MIE" 0 (in_handler land C.mstatus_mie);
  check_int "handler mstatus.MPIE" C.mstatus_mpie
    (in_handler land C.mstatus_mpie);
  check_int "handler mstatus.MPP" c.c_priv (C.mstatus_mpp in_handler);
  (* mret unstacks: MIE <- MPIE (1), MPIE <- 1, MPP <- U. *)
  let after = reg soc R.s6 in
  check_int "post-mret mstatus.MIE" C.mstatus_mie (after land C.mstatus_mie);
  check_int "post-mret mstatus.MPIE" C.mstatus_mpie
    (after land C.mstatus_mpie);
  check_int "post-mret mstatus.MPP" C.priv_u (C.mstatus_mpp after)

(* Without strict alignment the same misaligned access completes (the
   handler never runs: s2 keeps its reset value). *)
let test_lenient_misaligned ~engine () =
  let soc, _ =
    run_scaffold ~engine ~block_cache:true ~strict_align:false (fun p ->
        A.la p R.t1 "data";
        A.label p "fault_at";
        A.lw p R.t2 R.t1 2)
  in
  check_int "no trap taken" 0 (reg soc R.s2);
  (* data = 0x11223344 .. 0x00000000; the straddling word is 0x00001122. *)
  check_int "misaligned value" 0x1122 (reg soc R.t2)

let () =
  let configs =
    [
      ("interp", Rv32.Core.Interp, true);
      ("interp/nocache", Rv32.Core.Interp, false);
      ("threaded", Rv32.Core.Threaded, true);
      ("threaded/nocache", Rv32.Core.Threaded, false);
    ]
  in
  let suites =
    List.map
      (fun (cname, engine, block_cache) ->
        ( cname,
          List.map
            (fun c ->
              Alcotest.test_case c.c_name `Quick
                (test_case ~engine ~block_cache c))
            cases ))
      configs
  in
  Alcotest.run "traps"
    (suites
    @ [
        ( "lenient alignment",
          [
            Alcotest.test_case "interp" `Quick
              (test_lenient_misaligned ~engine:Rv32.Core.Interp);
            Alcotest.test_case "threaded" `Quick
              (test_lenient_misaligned ~engine:Rv32.Core.Threaded);
          ] );
      ])
