(* Deterministic snapshot/restore (lib/snapshot + Soc.{save,restore}) and
   the determinism bugfixes that make it possible: the kernel's IEEE-1666
   notification override rule, the CLINT mtimecmp two-half write glitch,
   and DMA memmove overlap semantics. *)

open Helpers
module Codec = Snapshot.Codec

(* --- codec -------------------------------------------------------------- *)

let test_codec_roundtrip () =
  let w = Codec.writer () in
  Codec.put_u8 w 0xab;
  Codec.put_u32 w 0xdeadbeef;
  Codec.put_i64 w (-42);
  Codec.put_i64 w max_int;
  Codec.put_bool w true;
  Codec.put_string w "hello";
  Codec.put_list w Codec.put_u32 [ 1; 2; 3 ];
  let r = Codec.reader (Codec.contents w) in
  check_int "u8" 0xab (Codec.get_u8 r);
  check_int "u32" 0xdeadbeef (Codec.get_u32 r);
  check_int "i64 neg" (-42) (Codec.get_i64 r);
  check_int "i64 max" max_int (Codec.get_i64 r);
  check_bool "bool" true (Codec.get_bool r);
  check_string "string" "hello" (Codec.get_string r);
  check_bool "list" true (Codec.get_list r Codec.get_u32 = [ 1; 2; 3 ]);
  Codec.expect_end r

let test_codec_rle () =
  let mk n f = Bytes.init n f in
  let cases =
    [
      mk 0 (fun _ -> 'x');
      mk 4096 (fun _ -> '\000');
      mk 1000 (fun i -> Char.chr (i land 0xff));
      mk 777 (fun i -> if i < 300 then 'a' else Char.chr (i * 7 land 0xff));
    ]
  in
  List.iter
    (fun src ->
      let w = Codec.writer () in
      Codec.put_bytes_rle w src;
      let dst = Bytes.make (Bytes.length src) 'Z' in
      let r = Codec.reader (Codec.contents w) in
      Codec.get_bytes_rle_into r dst;
      Codec.expect_end r;
      check_bool "rle roundtrip" true (Bytes.equal src dst))
    cases;
  (* The all-zeros image must actually compress. *)
  let w = Codec.writer () in
  Codec.put_bytes_rle w (Bytes.make 65536 '\000');
  check_bool "rle compresses" true (String.length (Codec.contents w) < 64)

let test_codec_container () =
  let sections = [ ("alpha", "payload-a"); ("beta", String.make 300 'b') ] in
  let enc = Codec.Container.encode sections in
  check_bool "decode" true (Codec.Container.decode enc = sections);
  (match Codec.Container.decode "garbage" with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let truncated = String.sub enc 0 (String.length enc - 3) in
  match Codec.Container.decode truncated with
  | exception Codec.Corrupt _ -> ()
  | _ -> Alcotest.fail "truncated container accepted"

(* --- kernel override rule ---------------------------------------------- *)

let test_override_rule () =
  let k = Sysc.Kernel.create () in
  let e = Sysc.Kernel.create_event k "e" in
  let fired = ref [] in
  Sysc.Kernel.spawn k ~name:"w" (fun () ->
      while true do
        Sysc.Kernel.wait_event e;
        fired := Sysc.Kernel.now k :: !fired
      done);
  (* Later notification discarded while an earlier one is pending. *)
  Sysc.Kernel.notify_after e (Sysc.Time.ns 10);
  Sysc.Kernel.notify_after e (Sysc.Time.ns 50);
  check_bool "earlier wins" true
    (Sysc.Kernel.pending_notification e = Some (Sysc.Time.ns 10));
  (* Earlier notification overrides a pending later one. *)
  Sysc.Kernel.notify_after e (Sysc.Time.ns 5);
  check_bool "override by earlier" true
    (Sysc.Kernel.pending_notification e = Some (Sysc.Time.ns 5));
  Sysc.Kernel.run ~until:(Sysc.Time.ns 100) k;
  check_bool "fired exactly once, at the overriding instant" true
    (!fired = [ Sysc.Time.ns 5 ]);
  (* Delta notification overrides timed. *)
  fired := [];
  Sysc.Kernel.notify_after e (Sysc.Time.ns 10);
  Sysc.Kernel.notify e;
  Sysc.Kernel.run ~until:(Sysc.Time.add (Sysc.Kernel.now k) (Sysc.Time.ns 100)) k;
  check_int "delta override fires once" 1 (List.length !fired);
  (* Cancel kills a pending notification. *)
  fired := [];
  Sysc.Kernel.notify_after e (Sysc.Time.ns 10);
  Sysc.Kernel.cancel e;
  check_bool "cancelled" true (Sysc.Kernel.pending_notification e = None);
  Sysc.Kernel.run ~until:(Sysc.Time.add (Sysc.Kernel.now k) (Sysc.Time.ns 100)) k;
  check_bool "no fire after cancel" true (!fired = [])

let test_kernel_snapshot_roundtrip () =
  (* pending_timed/restore reproduce the pending set on a fresh kernel. *)
  let mk () =
    let k = Sysc.Kernel.create () in
    let a = Sysc.Kernel.create_event k "a" in
    let b = Sysc.Kernel.create_event k "b" in
    (k, a, b)
  in
  let k1, a1, b1 = mk () in
  Sysc.Kernel.notify_after b1 (Sysc.Time.ns 30);
  Sysc.Kernel.notify_after a1 (Sysc.Time.ns 30);
  let saved = Sysc.Kernel.pending_timed k1 in
  check_bool "arming order preserved" true
    (saved = [ ("b", Sysc.Time.ns 30); ("a", Sysc.Time.ns 30) ]);
  let k2, a2, b2 = mk () in
  (* A bogus construction-time arm must not survive restore. *)
  Sysc.Kernel.notify_after a2 (Sysc.Time.ns 1);
  Sysc.Kernel.restore k2 ~now:Sysc.Time.zero ~deltas:0 ~notifications:saved;
  check_bool "restored pending set" true (Sysc.Kernel.pending_timed k2 = saved);
  let order = ref [] in
  let waiter name e =
    Sysc.Kernel.spawn k2 ~name (fun () ->
        Sysc.Kernel.wait_event e;
        order := name :: !order)
  in
  waiter "a" a2;
  waiter "b" b2;
  Sysc.Kernel.run k2;
  check_bool "same-instant wakeups in arming order" true
    (List.rev !order = [ "b"; "a" ])

(* --- clint regression --------------------------------------------------- *)

let test_clint_half_write_no_glitch () =
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let kernel = Sysc.Kernel.create () in
  let env = Vp.Env.create kernel policy monitor in
  let c = Vp.Clint.create env ~name:"clint" () in
  let sock = Vp.Clint.socket c in
  let glitches = ref 0 and mtip = ref false in
  Vp.Clint.set_timer_irq_callback c (fun on ->
      if on then incr glitches;
      mtip := on);
  Vp.Clint.start c;
  let write32 addr v =
    let p =
      Tlm.Payload.create ~cmd:Tlm.Payload.Write ~addr ~len:4
        ~default_tag:env.Vp.Env.pub ()
    in
    for i = 0 to 3 do
      Tlm.Payload.set_byte p i ((v lsr (8 * i)) land 0xff)
    done;
    ignore (Tlm.Socket.call sock p Sysc.Time.zero)
  in
  (* The historical glitch: writing a deadline whose high half has bit 31
     set composed to a negative OCaml int and asserted MTIP spuriously.
     The reset value (all-ones) must also never fire. *)
  Sysc.Kernel.run ~until:(Sysc.Time.ms 1) kernel;
  check_int "no irq at reset value" 0 !glitches;
  write32 0x4004 0xffff_ffff;
  write32 0x4000 200;
  write32 0x4004 0x8000_0000;
  Sysc.Kernel.run ~until:(Sysc.Time.add (Sysc.Kernel.now kernel) (Sysc.Time.ms 1)) kernel;
  check_int "no spurious irq for far deadline" 0 !glitches;
  (* Standard glitch-free update sequence down to a near deadline. *)
  write32 0x4004 0xffff_ffff;
  write32 0x4000 ((Vp.Clint.mtime c + 5) land 0xffff_ffff);
  write32 0x4004 ((Vp.Clint.mtime c + 5) lsr 32);
  Sysc.Kernel.run ~until:(Sysc.Time.add (Sysc.Kernel.now kernel) (Sysc.Time.us 10)) kernel;
  check_int "fires exactly once at the real deadline" 1 !glitches;
  check_bool "mtip level high" true !mtip

(* --- dma overlap -------------------------------------------------------- *)

let test_dma_overlap_memmove () =
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true () in
  (* 8 source bytes at RAM+0x100, destination overlapping 4 bytes ahead. *)
  let base = Vp.Soc.ram_base in
  for i = 0 to 7 do
    Vp.Memory.write_byte soc.Vp.Soc.memory (0x100 + i) (0x10 + i)
  done;
  let dma_sock = Vp.Dma.socket soc.Vp.Soc.dma in
  let write32 addr v =
    let p =
      Tlm.Payload.create ~cmd:Tlm.Payload.Write ~addr ~len:4 ~default_tag:0 ()
    in
    for i = 0 to 3 do
      Tlm.Payload.set_byte p i ((v lsr (8 * i)) land 0xff)
    done;
    ignore (Tlm.Socket.call dma_sock p Sysc.Time.zero)
  in
  write32 0x00 (base + 0x100);
  write32 0x04 (base + 0x104);
  write32 0x08 8;
  write32 0x0c 1;
  Vp.Soc.run ~until:(Sysc.Time.us 10) soc;
  check_bool "transfer completed" true
    (Vp.Dma.transfers_completed soc.Vp.Soc.dma = 1);
  (* memmove semantics: dst[i] = original src[i], not the clobbered one. *)
  for i = 0 to 7 do
    check_int
      (Printf.sprintf "dst byte %d" i)
      (0x10 + i)
      (Vp.Memory.read_byte soc.Vp.Soc.memory (0x104 + i))
  done

(* --- full-platform snapshot determinism -------------------------------- *)

module Immo = Firmware.Immo_fw

let immo_image = lazy (Immo.image ~variant:(Immo.Normal { fixed_dump = true }) ())

(* Build an immobilizer SoC; [collect] accumulates the complete trace
   event stream as rendered JSONL lines. *)
let immo_soc ?engine ?block_cache () =
  let img = Lazy.force immo_image in
  let policy = Immo.base_policy img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let aes_out_tag, aes_in_clearance = Immo.aes_args policy in
  let tracer = Trace.Tracer.create policy.Dift.Policy.lattice in
  let buf = Buffer.create 4096 in
  Trace.Tracer.set_on_record tracer
    (Some
       (fun e ->
         Buffer.add_string buf
           (Jsonkit.Json.to_string (Trace.Sink.event_json tracer e));
         Buffer.add_char buf '\n'));
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true ~aes_out_tag
      ~aes_in_clearance ~tracer ?engine ?block_cache ()
  in
  Vp.Soc.load_image soc img;
  (soc, monitor, buf)

let finish soc =
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 2_000_000;
  (match Vp.Soc.run soc with () -> ());
  expect_exit (soc.Vp.Soc.cpu.Vp.Soc.cpu_exit ()) 0

let test_save_resume_bit_identical () =
  (* Reference: uninterrupted run. *)
  let soc0, mon0, buf0 = immo_soc () in
  let _e0 = Immo.Engine.attach soc0 ~challenge:"CHLLNGSN" in
  Vp.Uart.push_rx soc0.Vp.Soc.uart "D";
  Vp.Soc.start soc0;
  finish soc0;
  let final0 = Vp.Soc.save soc0 in
  let total = soc0.Vp.Soc.cpu.Vp.Soc.cpu_instret () in
  check_bool "run is long enough to split" true (total > 400);
  (* Same run, paused in the middle, snapshotted, resumed in-process. *)
  let soc1, mon1, buf1 = immo_soc () in
  let _e1 = Immo.Engine.attach soc1 ~challenge:"CHLLNGSN" in
  Vp.Uart.push_rx soc1.Vp.Soc.uart "D";
  Vp.Soc.pause_at soc1 (total / 2);
  soc1.Vp.Soc.cpu.Vp.Soc.cpu_set_max 2_000_000;
  Vp.Soc.start soc1;
  Vp.Soc.run soc1;
  check_bool "paused mid-run" true (Vp.Soc.paused soc1);
  check_bool "paused before the end" true
    (soc1.Vp.Soc.cpu.Vp.Soc.cpu_instret () < total);
  let mid = Vp.Soc.save soc1 in
  let mid_trace_len = Buffer.length buf1 in
  Vp.Soc.resume soc1;
  expect_exit (soc1.Vp.Soc.cpu.Vp.Soc.cpu_exit ()) 0;
  let final1 = Vp.Soc.save soc1 in
  check_bool "final snapshots bit-identical" true (String.equal final0 final1);
  check_string "uart tx identical"
    (Vp.Uart.tx_string soc0.Vp.Soc.uart)
    (Vp.Uart.tx_string soc1.Vp.Soc.uart);
  check_bool "trace event streams identical" true
    (String.equal (Buffer.contents buf0) (Buffer.contents buf1));
  check_int "monitor checks identical"
    (Dift.Monitor.check_count mon0)
    (Dift.Monitor.check_count mon1);
  (* And restored into a fresh process: rebuild, restore the mid-run
     snapshot, continue. *)
  let soc2, _mon2, buf2 = immo_soc () in
  Vp.Soc.restore soc2 mid;
  Vp.Soc.start soc2;
  finish soc2;
  let final2 = Vp.Soc.save soc2 in
  check_bool "restored run's final snapshot bit-identical" true
    (String.equal final0 final2);
  check_string "restored run's uart tx identical"
    (Vp.Uart.tx_string soc0.Vp.Soc.uart)
    (Vp.Uart.tx_string soc2.Vp.Soc.uart);
  (* The fresh process records only post-checkpoint events; they must be
     exactly the reference stream's suffix. *)
  let suffix =
    String.sub (Buffer.contents buf0) mid_trace_len
      (Buffer.length buf0 - mid_trace_len)
  in
  check_bool "restored trace is the post-checkpoint suffix" true
    (String.equal suffix (Buffer.contents buf2));
  (* Saving the same paused state twice yields the same bytes. *)
  let soc3, _, _ = immo_soc () in
  Vp.Soc.restore soc3 mid;
  check_bool "restore/save is the identity on snapshots" true
    (String.equal mid (Vp.Soc.save soc3))

(* --- cross-engine restore ----------------------------------------------- *)

(* A snapshot holds only architectural state: one saved under the
   interpreter engine must restore into a threaded-engine SoC (here with
   the block cache flipped off on the saving side, too) and continue to
   exactly the state an uninterrupted run reaches — same final snapshot,
   same UART output, and a trace event stream whose post-checkpoint
   suffix is byte-identical. *)
let test_restore_across_engines () =
  (* Reference: uninterrupted run under the default (threaded) engine. *)
  let soc0, _, buf0 = immo_soc () in
  let _e0 = Immo.Engine.attach soc0 ~challenge:"CHLLNGSN" in
  Vp.Uart.push_rx soc0.Vp.Soc.uart "D";
  Vp.Soc.start soc0;
  finish soc0;
  let final0 = Vp.Soc.save soc0 in
  let total = soc0.Vp.Soc.cpu.Vp.Soc.cpu_instret () in
  (* Save mid-run under the interpreter with the block cache off. *)
  let soc1, _, buf1 = immo_soc ~engine:Rv32.Core.Interp ~block_cache:false () in
  let _e1 = Immo.Engine.attach soc1 ~challenge:"CHLLNGSN" in
  Vp.Uart.push_rx soc1.Vp.Soc.uart "D";
  Vp.Soc.pause_at soc1 (total / 2);
  soc1.Vp.Soc.cpu.Vp.Soc.cpu_set_max 2_000_000;
  Vp.Soc.start soc1;
  Vp.Soc.run soc1;
  check_bool "paused mid-run under interp" true (Vp.Soc.paused soc1);
  let mid = Vp.Soc.save soc1 in
  let mid_trace_len = Buffer.length buf1 in
  (* The interpreter's pre-checkpoint trace must itself be a prefix of
     the threaded reference stream. *)
  check_bool "interp trace is a reference prefix" true
    (mid_trace_len <= Buffer.length buf0
    && String.equal (Buffer.contents buf1)
         (String.sub (Buffer.contents buf0) 0 mid_trace_len));
  (* Restore into a threaded-engine SoC and finish. *)
  let soc2, _, buf2 = immo_soc ~engine:Rv32.Core.Threaded () in
  Vp.Soc.restore soc2 mid;
  Vp.Soc.start soc2;
  finish soc2;
  check_bool "final snapshot matches the threaded reference" true
    (String.equal final0 (Vp.Soc.save soc2));
  check_string "uart tx identical"
    (Vp.Uart.tx_string soc0.Vp.Soc.uart)
    (Vp.Uart.tx_string soc2.Vp.Soc.uart);
  let suffix =
    String.sub (Buffer.contents buf0) mid_trace_len
      (Buffer.length buf0 - mid_trace_len)
  in
  check_bool "post-restore trace is the reference suffix" true
    (String.equal suffix (Buffer.contents buf2));
  (* And the compiled-chain engine actually ran after the restore. *)
  check_bool "threaded engine compiled blocks after restore" true
    (soc2.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built () > 0)

(* --- wilander attacks across a checkpoint ------------------------------ *)

module W = Firmware.Wilander

let wilander_soc id =
  let img = Option.get (W.image_for id) in
  let policy = W.policy img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking:true ~quantum:64 () in
  Vp.Soc.load_image soc img;
  (soc, img)

let run_to_violation soc =
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 1_000_000;
  match Vp.Soc.run soc with
  | exception Dift.Violation.Violation _ ->
      Some (soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ())
  | () -> None

let test_wilander_across_checkpoint id () =
  (* Discover when the attack is detected. *)
  let soc0, img = wilander_soc id in
  Vp.Uart.push_rx soc0.Vp.Soc.uart (W.payload_for id img);
  Vp.Soc.start soc0;
  let v =
    match run_to_violation soc0 with
    | Some v -> v
    | None -> Alcotest.failf "attack %d not detected in the straight run" id
  in
  (* Pausing at [v/2] rounds up to the next quantum boundary (64); that
     boundary is guaranteed to precede the violation only when v > 128. *)
  check_bool "violation late enough to checkpoint before it" true (v > 128);
  let n1 = v / 2 in
  (* Straight run paused just before the violation. *)
  let soc1, _ = wilander_soc id in
  Vp.Uart.push_rx soc1.Vp.Soc.uart (W.payload_for id img);
  Vp.Soc.pause_at soc1 n1;
  soc1.Vp.Soc.cpu.Vp.Soc.cpu_set_max 1_000_000;
  Vp.Soc.start soc1;
  Vp.Soc.run soc1;
  check_bool "paused" true (Vp.Soc.paused soc1);
  check_bool "paused before the violation" true
    (soc1.Vp.Soc.cpu.Vp.Soc.cpu_instret () < v);
  let mid = Vp.Soc.save soc1 in
  (* Restore into a fresh SoC; the attack must still be detected, at the
     same instruction count, with identical mid-flight state. *)
  let soc2, _ = wilander_soc id in
  Vp.Soc.restore soc2 mid;
  check_bool "snapshot is stable across restore/save" true
    (String.equal mid (Vp.Soc.save soc2));
  Vp.Soc.start soc2;
  (match run_to_violation soc2 with
  | Some v2 -> check_int "violation at the same instruction" v v2
  | None -> Alcotest.failf "attack %d missed after restore" id);
  (* The in-process resume detects it too. *)
  match
    soc1.Vp.Soc.cpu.Vp.Soc.cpu_clear_paused ();
    Vp.Soc.run soc1
  with
  | exception Dift.Violation.Violation _ ->
      check_int "resumed run's violation instruction" v
        (soc1.Vp.Soc.cpu.Vp.Soc.cpu_instret ())
  | () -> Alcotest.failf "attack %d missed after resume" id

(* --- checkpoint inside a trap handler ----------------------------------- *)

module A = Rv32_asm.Asm
module R = Rv32.Reg
module C = Rv32.Csr

(* Interrupt-driven firmware with live privilege state everywhere: the
   main loop spins in U-mode; the sensor's PLIC source (priority 5,
   threshold 1) interrupts it; the ISR claims, dawdles, completes, and
   exits 0 after the third frame. Pausing between the claim and the
   complete checkpoints a SoC with a non-empty PLIC in-service mask and a
   stacked mstatus. *)
let irq_program p =
  Firmware.Rt.entry p ();
  A.la p R.t6 "handler";
  A.csrrw p R.zero C.mtvec R.t6;
  A.li p R.t0 Vp.Soc.plic_base;
  A.li p R.t1 1;
  A.sw p R.t1 R.t0 0x10;
  A.li p R.t1 5;
  A.sw p R.t1 R.t0 (0x80 + (4 * Vp.Soc.irq_sensor));
  A.li p R.t1 (1 lsl Vp.Soc.irq_sensor);
  A.sw p R.t1 R.t0 4;
  A.li p R.t0 C.bit_mei;
  A.csrrs p R.zero C.mie R.t0;
  (* Drop to U-mode with MPIE set, so the mret lands with MIE on. *)
  A.li p R.t0 C.mstatus_mpie;
  A.csrrs p R.zero C.mstatus R.t0;
  A.la p R.t6 "uloop";
  A.csrrw p R.zero C.mepc R.t6;
  A.li p R.t6 C.mstatus_mpp_mask;
  A.csrrc p R.zero C.mstatus R.t6;
  A.mret p;
  A.label p "uloop";
  A.j p "uloop";
  A.align p 4;
  A.label p "handler";
  A.li p R.t0 Vp.Soc.plic_base;
  A.lw p R.t1 R.t0 8;
  A.nop p;
  A.nop p;
  A.sw p R.t1 R.t0 8;
  A.addi p R.s2 R.s2 1;
  A.li p R.t1 3;
  A.blt_l p R.s2 R.t1 "back";
  Firmware.Rt.exit_ p ~code:0 ();
  A.label p "back";
  A.mret p

let irq_image = lazy (let p = A.create () in irq_program p; A.assemble p)

(* quantum 1 makes every instruction a sync boundary, so pause_at is
   exact and a checkpoint can land inside the handler. *)
let irq_soc () =
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true ~quantum:2
      ~sensor_period:(Sysc.Time.us 10) ()
  in
  Vp.Soc.load_image soc (Lazy.force irq_image);
  soc

let pause_run soc n =
  Vp.Soc.pause_at soc n;
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 2_000_000;
  Vp.Soc.start soc;
  Vp.Soc.run soc;
  check_bool "paused" true (Vp.Soc.paused soc)

(* The reference run records the instruction count of every interrupt
   entry; the checkpoint targets a few instructions into the second
   handler activation (after the claim, before the complete). *)
let irq_reference () =
  let soc = irq_soc () in
  let enters = ref [] in
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_trap_hook
    (Some
       (function
       | Rv32.Core.Trap_enter _ ->
           enters := soc.Vp.Soc.cpu.Vp.Soc.cpu_instret () :: !enters
       | _ -> ()));
  Vp.Soc.start soc;
  finish soc;
  let final = Vp.Soc.save soc in
  match List.rev !enters with
  | _ :: e2 :: _ -> (final, e2)
  | _ -> Alcotest.fail "expected at least two interrupt entries"

let test_checkpoint_mid_handler () =
  let final0, e2 = irq_reference () in
  let soc1 = irq_soc () in
  pause_run soc1 (e2 + 3);
  (* The checkpoint really is inside the handler's claim window. *)
  check_int "source in service at the checkpoint"
    (1 lsl Vp.Soc.irq_sensor)
    (Vp.Plic.in_service soc1.Vp.Soc.plic);
  check_int "handler runs in M" C.priv_m (soc1.Vp.Soc.cpu.Vp.Soc.cpu_priv ());
  check_int "interrupted U-mode stacked in MPP" C.priv_u
    (C.mstatus_mpp soc1.Vp.Soc.cpu.Vp.Soc.cpu_csr.C.v_mstatus);
  let mid = Vp.Soc.save soc1 in
  (* Restore into a fresh platform: byte-identical state, identical
     continuation. *)
  let soc2 = irq_soc () in
  Vp.Soc.restore soc2 mid;
  check_bool "restore/save identity on the mid-handler snapshot" true
    (String.equal mid (Vp.Soc.save soc2));
  Vp.Soc.start soc2;
  finish soc2;
  check_bool "restored run reaches the reference final state" true
    (String.equal final0 (Vp.Soc.save soc2));
  (* The in-process resume agrees too. *)
  Vp.Soc.resume soc1;
  expect_exit (soc1.Vp.Soc.cpu.Vp.Soc.cpu_exit ()) 0;
  check_bool "resumed run reaches the reference final state" true
    (String.equal final0 (Vp.Soc.save soc1))

(* --- v1 -> v2 snapshot migration ---------------------------------------- *)

(* A v1 snapshot predates the privilege architecture: the cpu section has
   no trailing privilege byte and the plic section ends after
   pending/enable. Loaders must fill the missing fields with reset
   defaults (M-mode; claim/threshold/priority reset) while keeping
   everything the section does carry. *)
let test_v1_snapshot_migration () =
  (* Checkpoint in the U-mode loop, shortly after the first handler
     activation: priv=U, tuned PLIC priorities — state a v1 restore must
     visibly reset. *)
  let _, e2 = irq_reference () in
  let soc1 = irq_soc () in
  pause_run soc1 (e2 - 40);
  check_int "paused in U-mode" C.priv_u (soc1.Vp.Soc.cpu.Vp.Soc.cpu_priv ());
  check_int "tuned threshold" 1 (Vp.Plic.threshold soc1.Vp.Soc.plic);
  check_int "tuned priority" 5
    (Vp.Plic.priority soc1.Vp.Soc.plic Vp.Soc.irq_sensor);
  let v2 = Vp.Soc.save soc1 in
  (* Sanity: a v2 restore reproduces the privilege and PLIC tuning. *)
  let socv2 = irq_soc () in
  Vp.Soc.restore socv2 v2;
  check_int "v2 restore keeps U-mode" C.priv_u
    (socv2.Vp.Soc.cpu.Vp.Soc.cpu_priv ());
  check_int "v2 restore keeps the threshold" 1
    (Vp.Plic.threshold socv2.Vp.Soc.plic);
  (* Strip the v2-only trailing fields and re-encode as version 1. *)
  let sections =
    List.map
      (fun (name, s) ->
        match name with
        | "cpu" -> (name, String.sub s 0 (String.length s - 1))
        | "plic" -> (name, String.sub s 0 8)
        | _ -> (name, s))
      (Codec.Container.decode v2)
  in
  let v1 = Codec.Container.encode_at ~version:1 sections in
  let socv1 = irq_soc () in
  Vp.Soc.restore socv1 v1;
  (* Missing fields come back as reset defaults... *)
  check_int "v1 restore defaults to M-mode" C.priv_m
    (socv1.Vp.Soc.cpu.Vp.Soc.cpu_priv ());
  check_int "v1 restore resets the threshold" 0
    (Vp.Plic.threshold socv1.Vp.Soc.plic);
  check_int "v1 restore resets priorities" 1
    (Vp.Plic.priority socv1.Vp.Soc.plic Vp.Soc.irq_sensor);
  check_int "v1 restore clears in-service" 0
    (Vp.Plic.in_service socv1.Vp.Soc.plic);
  (* ...while the fields v1 does carry survive. *)
  check_int "enable mask survives" (1 lsl Vp.Soc.irq_sensor)
    (Vp.Plic.enabled socv1.Vp.Soc.plic);
  check_int "pc survives"
    (soc1.Vp.Soc.cpu.Vp.Soc.cpu_pc ())
    (socv1.Vp.Soc.cpu.Vp.Soc.cpu_pc ());
  check_int "registers survive"
    (soc1.Vp.Soc.cpu.Vp.Soc.cpu_get_reg R.s2)
    (socv1.Vp.Soc.cpu.Vp.Soc.cpu_get_reg R.s2)

let () =
  Alcotest.run "snapshot"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "rle" `Quick test_codec_rle;
          Alcotest.test_case "container" `Quick test_codec_container;
        ] );
      ( "kernel",
        [
          Alcotest.test_case "notification override rule" `Quick
            test_override_rule;
          Alcotest.test_case "pending_timed/restore roundtrip" `Quick
            test_kernel_snapshot_roundtrip;
        ] );
      ( "clint",
        [
          Alcotest.test_case "mtimecmp half-writes glitch-free" `Quick
            test_clint_half_write_no_glitch;
        ] );
      ( "dma",
        [
          Alcotest.test_case "overlapping copy is memmove" `Quick
            test_dma_overlap_memmove;
        ] );
      ( "soc",
        [
          Alcotest.test_case "save/resume/restore bit-identical" `Quick
            test_save_resume_bit_identical;
          Alcotest.test_case "restore across engines (interp -> threaded)"
            `Quick test_restore_across_engines;
        ] );
      ( "privilege",
        [
          Alcotest.test_case "checkpoint inside a trap handler" `Quick
            test_checkpoint_mid_handler;
          Alcotest.test_case "v1 -> v2 migration" `Quick
            test_v1_snapshot_migration;
        ] );
      ( "wilander",
        List.map
          (fun id ->
            Alcotest.test_case
              (Printf.sprintf "attack %d across a checkpoint" id)
              `Quick
              (test_wilander_across_checkpoint id))
          [ 3; 5; 7; 9 ] );
    ]
