(* PLIC semantics: priority/threshold arbitration, the claim/complete
   protocol with its in-service window, level-source re-assertion, the
   public-control-plane taint invariant pinned by plic.mli, and a
   vectored-mtvec interrupt dispatch on the full SoC. *)

open Helpers
module P = Tlm.Payload
module S = Tlm.Socket
module A = Rv32_asm.Asm
module R = Rv32.Reg
module C = Rv32.Csr

let lat = Dift.Lattice.ifp3 ()
let t n = Dift.Lattice.tag_of_name lat n

let fresh_plic () =
  let policy = Dift.Policy.make ~lattice:lat ~default_tag:(t "LC,LI") () in
  let monitor = Dift.Monitor.create lat in
  let kernel = Sysc.Kernel.create () in
  let env = Vp.Env.create kernel policy monitor in
  let pl = Vp.Plic.create env ~name:"plic" in
  let meip = ref false in
  Vp.Plic.set_ext_irq_callback pl (fun on -> meip := on);
  (env, pl, Vp.Plic.socket pl, meip)

let read_word sock ~addr ~tag =
  let p = P.create ~cmd:P.Read ~addr ~len:4 ~default_tag:tag () in
  ignore (S.call sock p Sysc.Time.zero);
  p

let write_word sock ~addr ~value ~tag =
  let p = P.create ~cmd:P.Write ~addr ~len:4 ~default_tag:tag () in
  P.set_word p (Int32.of_int value);
  ignore (S.call sock p Sysc.Time.zero)

let claim_reg = 8
let threshold_reg = 0x10
let priority_reg src = 0x80 + (4 * src)
let enable sock mask = write_word sock ~addr:4 ~value:mask ~tag:(t "LC,HI")

let claim sock =
  Int32.to_int (P.get_word (read_word sock ~addr:claim_reg ~tag:(t "LC,LI")))

let complete sock src =
  write_word sock ~addr:claim_reg ~value:src ~tag:(t "LC,HI")

(* Higher priority wins regardless of source id; equal priorities tie to
   the lowest id. *)
let test_priority_arbitration () =
  let _, pl, sock, _ = fresh_plic () in
  enable sock 0b11100;
  write_word sock ~addr:(priority_reg 4) ~value:5 ~tag:(t "LC,HI");
  Vp.Plic.trigger pl 2;
  Vp.Plic.trigger pl 3;
  Vp.Plic.trigger pl 4;
  check_int "highest priority first" 4 (claim sock);
  check_int "then lowest id among ties" 2 (claim sock);
  check_int "then the other tie" 3 (claim sock);
  check_int "drained" 0 (claim sock)

(* Sources at or below the threshold are withheld: no MEIP, claim reads
   0; raising the source's priority above the threshold delivers it. *)
let test_threshold_gates_delivery () =
  let _, pl, sock, meip = fresh_plic () in
  enable sock 0b100;
  write_word sock ~addr:threshold_reg ~value:3 ~tag:(t "LC,HI");
  Vp.Plic.trigger pl 2;
  check_bool "below threshold: no meip" false !meip;
  check_int "below threshold: claim 0" 0 (claim sock);
  check_bool "claim did not consume it" true (Vp.Plic.pending pl land 0b100 <> 0);
  write_word sock ~addr:(priority_reg 2) ~value:4 ~tag:(t "LC,HI");
  check_bool "above threshold: meip" true !meip;
  check_int "delivered" 2 (claim sock)

(* The in-service window: between claim and complete the source is not
   re-delivered even if re-triggered; complete reopens it. *)
let test_in_service_window () =
  let _, pl, sock, meip = fresh_plic () in
  enable sock 0b100;
  Vp.Plic.trigger pl 2;
  check_int "claimed" 2 (claim sock);
  check_int "in service" 0b100 (Vp.Plic.in_service pl);
  Vp.Plic.trigger pl 2;
  check_bool "no re-delivery while in service" false !meip;
  check_int "claim empty while in service" 0 (claim sock);
  complete sock 2;
  check_bool "re-armed after complete" true !meip;
  check_int "re-delivered" 2 (claim sock);
  complete sock 2;
  check_int "no longer in service" 0 (Vp.Plic.in_service pl)

(* A level source still asserted at COMPLETE goes straight back to
   pending (this is what makes the irq-leak ISR re-enter); a released
   one does not. *)
let test_level_reassertion () =
  let _, pl, sock, meip = fresh_plic () in
  enable sock 0b10;
  Vp.Plic.set_level pl 1 true;
  check_int "asserted level source" 1 (claim sock);
  complete sock 1;
  check_bool "still asserted: pending again" true !meip;
  check_int "re-claimed" 1 (claim sock);
  Vp.Plic.set_level pl 1 false;
  complete sock 1;
  check_bool "released: quiet" false !meip;
  check_int "nothing pending" 0 (claim sock)

(* Control-plane invariant: whatever taint arrives on the configuration
   writes, every value read back from the controller is public — a
   tainted payload in a triggering peripheral must not taint the
   claim/dispatch path. *)
let test_control_plane_stays_public () =
  let env, pl, sock, _ = fresh_plic () in
  let hot = t "HC,LI" in
  write_word sock ~addr:4 ~value:0b100 ~tag:hot;
  write_word sock ~addr:(priority_reg 2) ~value:7 ~tag:hot;
  write_word sock ~addr:threshold_reg ~value:1 ~tag:hot;
  Vp.Plic.trigger pl 2;
  List.iter
    (fun (name, addr) ->
      let p = read_word sock ~addr ~tag:hot in
      check_int (name ^ " reads public") env.Vp.Env.pub (P.get_tag p 0))
    [
      ("pending", 0); ("enable", 4); ("claim", claim_reg);
      ("threshold", threshold_reg); ("priority", priority_reg 2);
    ]

(* End-to-end vectored dispatch: mtvec mode 1 sends a machine software
   interrupt (cause 3) to base + 12. *)
let test_vectored_interrupt () =
  let soc, reason =
    run_program (fun p ->
        Firmware.Rt.entry p ();
        A.la p R.t6 "vec";
        A.ori p R.t6 R.t6 1;
        A.csrrw p R.zero C.mtvec R.t6;
        A.li p R.t0 C.bit_msi;
        A.csrrs p R.zero C.mie R.t0;
        A.li p R.t0 C.mstatus_mie;
        A.csrrs p R.zero C.mstatus R.t0;
        A.li p R.t0 Vp.Soc.clint_base;
        A.li p R.t1 1;
        A.sw p R.t1 R.t0 0;
        A.label p "spin";
        A.j p "spin";
        A.align p 4;
        A.label p "vec";
        A.j p "fail";
        A.j p "fail";
        A.j p "fail";
        A.j p "msi";
        A.label p "fail";
        Firmware.Rt.exit_ p ~code:1 ();
        A.label p "msi";
        Firmware.Rt.exit_ p ~code:42 ())
  in
  expect_exit reason 42;
  check_int "mcause is interrupt 3" (C.cause_interrupt 3)
    soc.Vp.Soc.cpu.Vp.Soc.cpu_csr.C.v_mcause

let () =
  Alcotest.run "plic"
    [
      ( "arbitration",
        [
          Alcotest.test_case "priority order" `Quick test_priority_arbitration;
          Alcotest.test_case "threshold gating" `Quick
            test_threshold_gates_delivery;
        ] );
      ( "claim/complete",
        [
          Alcotest.test_case "in-service window" `Quick test_in_service_window;
          Alcotest.test_case "level re-assertion" `Quick test_level_reassertion;
        ] );
      ( "taint",
        [
          Alcotest.test_case "control plane stays public" `Quick
            test_control_plane_stays_public;
        ] );
      ( "delivery",
        [ Alcotest.test_case "vectored mtvec" `Quick test_vectored_interrupt ] );
    ]
