(* Table I: the Wilander-Kamkar code-injection suite, plus the
   trap-driven attack scenarios of the privilege architecture. *)

open Helpers
module W = Firmware.Wilander
module TA = Firmware.Trap_attacks

let outcome_name = function
  | W.Detected -> "Detected"
  | W.Missed c -> Printf.sprintf "Missed (exit %d)" c
  | W.Not_applicable -> "N/A"

let test_attack id () =
  match W.run id with
  | W.Detected -> ()
  | other -> Alcotest.failf "attack %d: expected Detected, got %s" id (outcome_name other)

(* The attacks genuinely work when tracking is off: the payload executes
   and exits with code 7 — proving the detection isn't vacuous. *)
let test_attack_lands_untracked id () =
  match W.run ~tracking:false id with
  | W.Missed 7 -> ()
  | other ->
      Alcotest.failf "attack %d (VP): expected the payload to run, got %s" id
        (outcome_name other)

let test_table_shape () =
  check_int "18 rows" 18 (List.length W.attacks);
  check_int "10 applicable" 10
    (List.length (List.filter (fun a -> a.W.applicable) W.attacks));
  List.iter
    (fun a ->
      check_bool "expected_detected matches applicability" a.W.applicable
        (List.mem a.W.id W.expected_detected))
    W.attacks

let test_na_rows_report_na () =
  List.iter
    (fun a ->
      if not a.W.applicable then
        match W.run a.W.id with
        | W.Not_applicable -> ()
        | o -> Alcotest.failf "attack %d: expected N/A, got %s" a.W.id (outcome_name o))
    W.attacks

(* --- trap-driven attacks (privilege architecture) --------------------- *)

let ta_outcome_name = function
  | TA.Detected -> "Detected"
  | TA.Missed c -> Printf.sprintf "Missed (exit %d)" c

let test_trap_attack_detected s () =
  match TA.run s with
  | TA.Detected -> ()
  | other ->
      Alcotest.failf "%s: expected Detected, got %s" (TA.name s)
        (ta_outcome_name other)

let test_trap_attack_lands s () =
  match TA.run ~tracking:false s with
  | TA.Missed c when c = TA.exit_code -> ()
  | other ->
      Alcotest.failf "%s (VP): expected the attack to land with exit %d, got %s"
        (TA.name s) TA.exit_code (ta_outcome_name other)

(* The hijack gadget announces itself on the UART when it runs — check
   the untracked run is a real machine-mode control-flow capture, not
   just an exit-code coincidence. *)
let test_hijack_gadget_observable () =
  let img = TA.image TA.Mtvec_hijack in
  let pol = TA.policy TA.Mtvec_hijack img in
  let monitor = Dift.Monitor.create pol.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy:pol ~monitor ~tracking:false () in
  Vp.Soc.load_image soc img;
  (match TA.payload TA.Mtvec_hijack img with
  | Some bytes -> Vp.Uart.push_rx soc.Vp.Soc.uart bytes
  | None -> ());
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 1_000_000;
  Vp.Soc.start soc;
  Vp.Soc.run soc;
  check_string "gadget printed" "P" (Vp.Uart.tx_string soc.Vp.Soc.uart)

(* Detection comes with a forensics chain: replaying the detected run
   with a tracer attached yields recorded events and a rendered report
   naming the violation. *)
let test_trap_attack_forensics s lat () =
  let tracer = Trace.Tracer.create lat in
  (match TA.run ~tracer s with
  | TA.Detected -> ()
  | other ->
      Alcotest.failf "%s (traced): expected Detected, got %s" (TA.name s)
        (ta_outcome_name other));
  check_bool "events recorded" true (Trace.Tracer.events_recorded tracer > 0);
  let text =
    Trace.Forensics.to_string
      (Trace.Forensics.make ~context:(TA.describe s) tracer ())
  in
  check_bool "report renders events" true
    (Astring_contains.contains ~sub:"trap" text
    || Astring_contains.contains ~sub:"VIOLATION" text)

let () =
  let detected_cases =
    List.map
      (fun id ->
        Alcotest.test_case (Printf.sprintf "attack %2d detected" id) `Quick
          (test_attack id))
      W.expected_detected
  in
  let landed_cases =
    List.map
      (fun id ->
        Alcotest.test_case
          (Printf.sprintf "attack %2d lands without DIFT" id)
          `Quick
          (test_attack_lands_untracked id))
      W.expected_detected
  in
  let trap_cases =
    List.concat_map
      (fun s ->
        [
          Alcotest.test_case (TA.name s ^ " detected") `Quick
            (test_trap_attack_detected s);
          Alcotest.test_case (TA.name s ^ " lands without DIFT") `Quick
            (test_trap_attack_lands s);
        ])
      TA.scenarios
    @ [
        Alcotest.test_case "mtvec-hijack gadget runs in M-mode" `Quick
          test_hijack_gadget_observable;
        Alcotest.test_case "mtvec-hijack forensics" `Quick
          (test_trap_attack_forensics TA.Mtvec_hijack
             (Dift.Lattice.integrity ()));
        Alcotest.test_case "irq-leak forensics" `Quick
          (test_trap_attack_forensics TA.Irq_leak
             (Dift.Lattice.confidentiality ()));
      ]
  in
  Alcotest.run "attacks"
    [
      ("table-1 shape", [ Alcotest.test_case "rows" `Quick test_table_shape;
                          Alcotest.test_case "n/a rows" `Quick test_na_rows_report_na ]);
      ("detection (VP+)", detected_cases);
      ("efficacy (plain VP)", landed_cases);
      ("trap-driven attacks", trap_cases);
    ]
