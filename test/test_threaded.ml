(* Engine-differential tests for the threaded-code block compiler: the
   [Threaded] engine (closure chains with an untainted specialization per
   block) must be observationally identical to the [Interp] engine
   (per-instruction dispatch over the same decoded-block cache) — same
   exit reason, same retired-instruction count, byte-identical
   architectural state including every register's taint tag, and
   byte-identical full-platform snapshots.  Covers every rv32im opcode
   class, mid-block taint entry (fast variant -> guard -> full-chain
   fallback), self-modifying code and DMA invalidation of compiled
   chains, and the Fatal_trap path when no handler is installed
   (mtvec = 0). *)

open Helpers
module A = Rv32_asm.Asm
module R = Rv32.Reg

let reason_str = function
  | Rv32.Core.Running -> "running"
  | Rv32.Core.Exited c -> Printf.sprintf "exited %d" c
  | Rv32.Core.Breakpoint -> "breakpoint"
  | Rv32.Core.Insn_limit -> "insn limit"

let run_e ?(tracking = true) ?policy ?(seed = fun _ _ -> ())
    ?(max_insns = 500_000) ~engine build =
  let p = A.create () in
  build p;
  let img = A.assemble p in
  let policy =
    match policy with Some pol -> pol | None -> trivial_policy ()
  in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking ~engine () in
  Vp.Soc.load_image soc img;
  seed soc img;
  let reason = Vp.Soc.run_for_instructions soc max_insns in
  (soc, reason)

(* Run [build] under both engines and demand indistinguishable outcomes:
   exit reason, instret, all 32 registers and their tags, and the full
   platform snapshot (registers, tags, CSRs, RAM contents and RAM tag
   planes, peripheral state, kernel time).  Returns both SoCs for extra
   per-test assertions. *)
let check_engines ?tracking ?policy ?seed ?code ~name build =
  let soc_i, r_i = run_e ?tracking ?policy ?seed ~engine:Rv32.Core.Interp build in
  let soc_t, r_t =
    run_e ?tracking ?policy ?seed ~engine:Rv32.Core.Threaded build
  in
  (match (r_i, r_t) with
  | Rv32.Core.Exited a, Rv32.Core.Exited b ->
      check_int (name ^ ": exit code agrees") a b;
      Option.iter (fun c -> check_int (name ^ ": expected exit code") c a) code
  | a, b ->
      Alcotest.failf "%s: interp %s, threaded %s" name (reason_str a)
        (reason_str b));
  check_int
    (name ^ ": instret agrees")
    (soc_i.Vp.Soc.cpu.Vp.Soc.cpu_instret ())
    (soc_t.Vp.Soc.cpu.Vp.Soc.cpu_instret ());
  for r = 0 to 31 do
    check_int
      (Printf.sprintf "%s: x%d value" name r)
      (soc_i.Vp.Soc.cpu.Vp.Soc.cpu_get_reg r)
      (soc_t.Vp.Soc.cpu.Vp.Soc.cpu_get_reg r);
    check_int
      (Printf.sprintf "%s: x%d tag" name r)
      (soc_i.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r)
      (soc_t.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r)
  done;
  check_bool
    (name ^ ": full platform snapshot byte-identical")
    true
    (String.equal (Vp.Soc.save soc_i) (Vp.Soc.save soc_t));
  (soc_i, soc_t)

let exit_with p reg =
  A.mv p R.a0 reg;
  A.li p R.a7 93;
  A.ecall p

(* --- opcode classes ------------------------------------------------------ *)

(* Integer register-immediate and register-register ops, lui/auipc,
   shift-amount masking with a negative register operand. *)
let alu_prog p =
  A.lui p R.t0 0x12345000;
  A.auipc p R.t1 0;
  A.li p R.s0 0;
  let acc r = A.add p R.s0 R.s0 r in
  acc R.t0;
  acc R.t1;
  A.addi p R.t2 R.t0 (-273);
  acc R.t2;
  A.slti p R.t3 R.t2 (-1);
  acc R.t3;
  A.sltiu p R.t3 R.t2 (-1);
  acc R.t3;
  A.xori p R.t3 R.t2 0x4d2;
  acc R.t3;
  A.ori p R.t3 R.t2 0x2a;
  acc R.t3;
  A.andi p R.t3 R.t2 0x7ff;
  acc R.t3;
  A.slli p R.t3 R.t2 7;
  acc R.t3;
  A.srli p R.t3 R.t2 3;
  acc R.t3;
  A.srai p R.t3 R.t2 3;
  acc R.t3;
  A.li p R.t4 (-5);
  A.add p R.t3 R.t2 R.t4;
  acc R.t3;
  A.sub p R.t3 R.t2 R.t4;
  acc R.t3;
  A.sll p R.t3 R.t2 R.t4 (* shamt = -5 land 31 = 27 *);
  acc R.t3;
  A.srl p R.t3 R.t2 R.t4;
  acc R.t3;
  A.sra p R.t3 R.t2 R.t4;
  acc R.t3;
  A.slt p R.t3 R.t2 R.t4;
  acc R.t3;
  A.sltu p R.t3 R.t2 R.t4;
  acc R.t3;
  A.xor p R.t3 R.t2 R.t4;
  acc R.t3;
  A.or_ p R.t3 R.t2 R.t4;
  acc R.t3;
  A.and_ p R.t3 R.t2 R.t4;
  acc R.t3;
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0

let test_alu () = ignore (check_engines ~name:"alu" alu_prog)

(* The M extension over a table of operand pairs that includes every edge
   case: division by zero, the overflow pair (-2^31, -1), mixed signs,
   and large unsigned values. *)
let muldiv_pairs =
  [
    (0, 0);
    (1, 0);
    (0x8000_0000, -1);
    (0x8000_0000, 1);
    (-1, -1);
    (7, -3);
    (-7, 3);
    (123456789, 1013);
    (0xdead_beef, 0xcafe);
    (3, 0x7fff_ffff);
  ]

let muldiv_prog p =
  A.la p R.s1 "tab";
  A.li p R.s2 (List.length muldiv_pairs);
  A.li p R.s0 0;
  A.label p "loop";
  A.lw p R.t0 R.s1 0;
  A.lw p R.t1 R.s1 4;
  let acc r = A.add p R.s0 R.s0 r in
  A.mul p R.t2 R.t0 R.t1;
  acc R.t2;
  A.mulh p R.t2 R.t0 R.t1;
  acc R.t2;
  A.mulhsu p R.t2 R.t0 R.t1;
  acc R.t2;
  A.mulhu p R.t2 R.t0 R.t1;
  acc R.t2;
  A.div p R.t2 R.t0 R.t1;
  acc R.t2;
  A.divu p R.t2 R.t0 R.t1;
  acc R.t2;
  A.rem p R.t2 R.t0 R.t1;
  acc R.t2;
  A.remu p R.t2 R.t0 R.t1;
  acc R.t2;
  A.addi p R.s1 R.s1 8;
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "loop";
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0;
  A.align p 4;
  A.label p "tab";
  List.iter
    (fun (a, b) ->
      A.word p (a land 0xffff_ffff);
      A.word p (b land 0xffff_ffff))
    muldiv_pairs

let test_muldiv () = ignore (check_engines ~name:"muldiv" muldiv_prog)

(* Loads and stores of every width with sign/zero extension, byte and
   halfword sub-word addressing, and read-back through a different
   width.  Self-checking: exits 0 on success. *)
let memory_prog p =
  A.la p R.s1 "buf";
  (* sw then per-byte lb/lbu across the word *)
  A.li p R.t0 0x8042_ff7e;
  A.sw p R.t0 R.s1 0;
  A.lb p R.t1 R.s1 3 (* 0x80 -> -128 *);
  A.li p R.t2 (-128);
  A.bne_l p R.t1 R.t2 "fail";
  A.lbu p R.t1 R.s1 3;
  A.li p R.t2 0x80;
  A.bne_l p R.t1 R.t2 "fail";
  A.lb p R.t1 R.s1 1 (* 0xff -> -1 *);
  A.li p R.t2 (-1);
  A.bne_l p R.t1 R.t2 "fail";
  A.lbu p R.t1 R.s1 0 (* 0x7e *);
  A.li p R.t2 0x7e;
  A.bne_l p R.t1 R.t2 "fail";
  (* sh/lh/lhu on both halves *)
  A.li p R.t0 0xbeef;
  A.sh p R.t0 R.s1 4;
  A.li p R.t0 0x1234;
  A.sh p R.t0 R.s1 6;
  A.lh p R.t1 R.s1 4 (* 0xbeef -> negative *);
  A.li p R.t2 (0xbeef - 0x10000);
  A.bne_l p R.t1 R.t2 "fail";
  A.lhu p R.t1 R.s1 4;
  A.li p R.t2 0xbeef;
  A.bne_l p R.t1 R.t2 "fail";
  A.lw p R.t1 R.s1 4 (* halves reassembled *);
  A.li p R.t2 0x1234_beef;
  A.bne_l p R.t1 R.t2 "fail";
  (* sb overwrites one byte of a word *)
  A.li p R.t0 0x55;
  A.sb p R.t0 R.s1 5;
  A.lw p R.t1 R.s1 4;
  A.li p R.t2 0x1234_55ef;
  A.bne_l p R.t1 R.t2 "fail";
  (* negative offsets *)
  A.addi p R.s2 R.s1 8;
  A.lw p R.t1 R.s2 (-8);
  A.li p R.t2 0x8042_ff7e;
  A.bne_l p R.t1 R.t2 "fail";
  A.li p R.a0 0;
  A.li p R.a7 93;
  A.ecall p;
  A.label p "fail";
  A.li p R.a0 1;
  A.li p R.a7 93;
  A.ecall p;
  A.align p 4;
  A.label p "buf";
  A.space p 16

let test_memory () = ignore (check_engines ~name:"memory" ~code:0 memory_prog)

(* Branches taken and not taken in both polarities, a nested loop,
   call/ret, jal with a dead link register, and jalr where rd aliases
   rs1. *)
let branch_prog p =
  A.li p R.s0 0;
  A.li p R.t0 5;
  A.li p R.t1 (-3);
  A.beq_l p R.t0 R.t1 "fail" (* not taken *);
  A.bne_l p R.t0 R.t0 "fail";
  A.blt_l p R.t0 R.t1 "fail" (* 5 < -3 signed: no *);
  A.bge_l p R.t1 R.t0 "fail";
  A.bltu_l p R.t1 R.t0 "fail" (* -3 unsigned is huge: no *);
  A.bgeu_l p R.t0 R.t1 "fail";
  A.blt_l p R.t1 R.t0 "b1" (* taken *);
  A.j p "fail";
  A.label p "b1";
  A.bltu_l p R.t0 R.t1 "b2" (* taken *);
  A.j p "fail";
  A.label p "b2";
  (* nested loop: s0 += 1 inner, outer 3 x inner 4 *)
  A.li p R.s1 3;
  A.label p "outer";
  A.li p R.s2 4;
  A.label p "inner";
  A.addi p R.s0 R.s0 1;
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "inner";
  A.addi p R.s1 R.s1 (-1);
  A.bnez_l p R.s1 "outer";
  (* call/ret and jalr with rd = rs1 *)
  A.call p "fn";
  A.la p R.t3 "fn2";
  A.jalr p R.t3 R.t3 0;
  A.li p R.t4 12;
  A.beq_l p R.s0 R.t4 "fail" (* loop + fn + fn2 = 14, not 12 *);
  A.li p R.t4 14;
  A.beq_l p R.s0 R.t4 "ok";
  A.label p "fail";
  A.li p R.a0 1;
  A.li p R.a7 93;
  A.ecall p;
  A.label p "ok";
  A.li p R.a0 0;
  A.li p R.a7 93;
  A.ecall p;
  A.label p "fn";
  A.addi p R.s0 R.s0 1;
  A.ret p;
  A.label p "fn2";
  A.addi p R.s0 R.s0 1;
  A.jalr p R.zero R.t3 0

let test_branches () =
  ignore (check_engines ~name:"branches" ~code:0 branch_prog)

(* CSR ops, a trap round-trip through a handler (ecall -> mcause/mepc
   read -> mret), and fence.  These retire through the step fallback in
   both engines — the test pins that blocks broken by them still chain
   correctly around the break. *)
let csr_prog p =
  A.la p R.t0 "handler";
  A.csrrw p R.zero Rv32.Csr.mtvec R.t0;
  A.li p R.t1 0xabc;
  A.csrrw p R.zero Rv32.Csr.mscratch R.t1;
  A.csrrs p R.s0 Rv32.Csr.mscratch R.zero (* s0 = 0xabc *);
  A.li p R.t2 0x041;
  A.csrrs p R.zero Rv32.Csr.mscratch R.t2 (* set bits *);
  A.csrrc p R.s1 Rv32.Csr.mscratch R.t1 (* s1 = 0xafd, clear 0xabc *);
  A.csrrwi p R.zero Rv32.Csr.mscratch 0x15;
  A.csrrsi p R.s2 Rv32.Csr.mscratch 0x0a (* s2 = 0x15 *);
  A.csrrci p R.s3 Rv32.Csr.mscratch 0x06 (* s3 = 0x1f *);
  A.fence p;
  (* trap round-trip: the handler records mcause in s4 and skips the
     ecall *)
  A.li p R.a7 1;
  A.ecall p;
  A.csrrs p R.s5 Rv32.Csr.mscratch R.zero (* survives the trap *);
  A.add p R.s0 R.s0 R.s1;
  A.add p R.s0 R.s0 R.s2;
  A.add p R.s0 R.s0 R.s3;
  A.add p R.s0 R.s0 R.s4;
  A.add p R.s0 R.s0 R.s5;
  A.andi p R.s0 R.s0 0x3f;
  exit_with p R.s0;
  A.label p "handler";
  A.csrrs p R.s4 Rv32.Csr.mcause R.zero;
  A.csrrs p R.t5 Rv32.Csr.mepc R.zero;
  A.addi p R.t5 R.t5 4;
  A.csrrw p R.zero Rv32.Csr.mepc R.t5;
  A.mret p

let test_csr () = ignore (check_engines ~name:"csr" csr_prog)

(* --- taint: mid-block entry on the fast variant -------------------------- *)

(* A confidentiality policy with no clearance checks: taint propagates
   but never traps. *)
let conf_policy () =
  let lat = Dift.Lattice.confidentiality () in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  Dift.Policy.make ~lattice:lat ~default_tag:lc ()

(* Each iteration runs one straight-line block that starts with clean
   ALU work (eligible for the untainted specialized chain), then loads a
   secret word mid-block — the threaded fast variant's guard must catch
   the non-bottom tag and fall back to the full chain for the rest of
   the block.  The tainted value is parked in memory and the registers
   are scrubbed before the back-branch, so the next dispatch starts on
   the fast variant again: every iteration exercises the
   fast -> guard -> fallback transition. *)
let taint_prog p =
  A.li p R.s2 50;
  A.li p R.s0 0;
  A.label p "loop";
  A.addi p R.s0 R.s0 3;
  A.xori p R.s0 R.s0 0x155;
  A.la p R.t2 "secret";
  A.lw p R.t3 R.t2 0 (* taint enters mid-block *);
  A.add p R.t4 R.t3 R.s0 (* tainted ALU result *);
  A.la p R.t5 "cell";
  A.sw p R.t4 R.t5 0 (* tainted store *);
  A.li p R.t3 0;
  A.li p R.t4 0 (* scrub: regs all-public again *);
  A.addi p R.s2 R.s2 (-1);
  A.bnez_l p R.s2 "loop";
  A.la p R.t5 "cell";
  A.lw p R.a1 R.t5 0 (* a1 must come back tainted *);
  A.andi p R.a0 R.s0 0x3f;
  A.li p R.a7 93;
  A.ecall p;
  A.align p 4;
  A.label p "secret";
  A.word p 0x5ec2e700;
  A.label p "cell";
  A.word p 0

let test_taint_mid_block () =
  let policy = conf_policy () in
  let lat = policy.Dift.Policy.lattice in
  let hc = Dift.Lattice.tag_of_name lat "HC" in
  let lc = Dift.Lattice.tag_of_name lat "LC" in
  let seed soc img =
    Vp.Soc.seed_taint soc ~origin:"secret"
      ~addr:(Rv32_asm.Image.symbol img "secret")
      ~len:4 hc
  in
  let _soc_i, soc_t =
    check_engines ~policy ~seed ~name:"taint mid-block" taint_prog
  in
  let tag r = soc_t.Vp.Soc.cpu.Vp.Soc.cpu_get_reg_tag r in
  check_int "a1 tainted HC" hc (tag 11);
  check_int "s0 stays public" lc (tag 8);
  (* The specialized chains really ran before each fallback. *)
  check_bool "fast variant retired instructions" true
    (soc_t.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired () > 0)

(* --- invalidation of compiled chains ------------------------------------- *)

(* Store into the currently-executing block: the patched instruction is
   a few slots ahead in the same straight-line run and must execute in
   its patched form at the very next fetch. *)
let smc_in_block p =
  A.li p R.a0 0;
  A.la p R.t0 "site";
  A.la p R.t1 "newinsn";
  A.lw p R.t1 R.t1 0;
  A.sw p R.t1 R.t0 0;
  A.nop p;
  A.label p "site";
  A.addi p R.a0 R.a0 1;
  A.li p R.a7 93;
  A.ecall p;
  A.align p 4;
  A.label p "newinsn";
  (* addi a0, a0, 42 *)
  A.word p (Rv32.Encode.encode (Rv32.Insn.ADDI (R.a0, R.a0, 42)))

let test_smc_in_block () =
  ignore (check_engines ~name:"smc in-block" ~code:42 smc_in_block)

(* A cached, already-compiled function is overwritten by a DMA transfer
   behind the CPU's back; the next call must run the patched code. *)
let dma_into_code p =
  A.call p "site_fn";
  A.mv p R.s0 R.a0;
  A.la p R.t0 "newinsn";
  A.la p R.t1 "site_fn";
  A.li p R.t2 Vp.Soc.dma_base;
  A.sw p R.t0 R.t2 0x0;
  A.sw p R.t1 R.t2 0x4;
  A.li p R.t3 4;
  A.sw p R.t3 R.t2 0x8;
  A.li p R.t3 1;
  A.sw p R.t3 R.t2 0xc;
  A.label p "poll";
  A.lw p R.t3 R.t2 0xc;
  A.bnez_l p R.t3 "poll";
  A.call p "site_fn";
  A.add p R.a0 R.a0 R.s0;
  A.li p R.a7 93;
  A.ecall p;
  A.label p "site_fn";
  A.addi p R.a0 R.zero 1;
  A.ret p;
  A.align p 4;
  A.label p "newinsn";
  (* addi a0, x0, 99 *)
  A.word p (Rv32.Encode.encode (Rv32.Insn.ADDI (R.a0, R.zero, 99)))

let test_dma_into_code () =
  ignore (check_engines ~name:"dma into code" ~code:100 dma_into_code)

(* --- Fatal_trap with mtvec = 0 ------------------------------------------- *)

(* With no handler installed a synchronous trap is fatal; both engines
   must report the identical (cause, pc, tval) triple at the identical
   instruction count — the pc in particular catches any stale [cur_pc]
   bookkeeping in compiled chains. *)
let run_fatal ~tracking ~engine build =
  let p = A.create () in
  build p;
  let img = A.assemble p in
  let policy = trivial_policy () in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let soc = Vp.Soc.create ~policy ~monitor ~tracking ~engine () in
  Vp.Soc.load_image soc img;
  match Vp.Soc.run_for_instructions soc 10_000 with
  | exception Rv32.Core.Fatal_trap { cause; pc; tval } ->
      (cause, pc, tval, soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ())
  | r -> Alcotest.failf "expected Fatal_trap, got %s" (reason_str r)

let check_fatal ~name ~cause build =
  List.iter
    (fun tracking ->
      let c_i, pc_i, tv_i, n_i =
        run_fatal ~tracking ~engine:Rv32.Core.Interp build
      in
      let c_t, pc_t, tv_t, n_t =
        run_fatal ~tracking ~engine:Rv32.Core.Threaded build
      in
      let ctx = Printf.sprintf "%s (tracking=%b)" name tracking in
      check_int (ctx ^ ": expected cause") cause c_i;
      check_int (ctx ^ ": cause agrees") c_i c_t;
      check_int (ctx ^ ": pc agrees") pc_i pc_t;
      check_int (ctx ^ ": tval agrees") tv_i tv_t;
      check_int (ctx ^ ": instret agrees") n_i n_t)
    [ false; true ]

let unmapped = 0x0000_0100

(* A little clean ALU work ahead of the faulting access keeps the fault
   inside a compiled chain rather than at its head. *)
let fatal_load p =
  A.li p R.t0 unmapped;
  A.addi p R.t1 R.t0 1;
  A.xor p R.t2 R.t1 R.t0;
  A.lw p R.t3 R.t0 0;
  A.nop p;
  exit_with p R.zero

let fatal_store p =
  A.li p R.t0 unmapped;
  A.addi p R.t1 R.t0 1;
  A.sw p R.t1 R.t0 0;
  A.nop p;
  exit_with p R.zero

let fatal_fetch p =
  A.li p R.t0 unmapped;
  A.addi p R.t1 R.zero 7;
  A.jalr p R.zero R.t0 0;
  exit_with p R.zero

let fatal_ecall p =
  A.li p R.a7 1;
  A.li p R.a0 2;
  A.ecall p;
  exit_with p R.zero

let fatal_illegal p =
  A.li p R.t0 3;
  A.addi p R.t1 R.t0 4;
  A.word p 0xffff_ffff;
  exit_with p R.zero

let test_fatal_load () =
  check_fatal ~name:"fatal load" ~cause:Rv32.Csr.cause_load_fault fatal_load

let test_fatal_store () =
  check_fatal ~name:"fatal store" ~cause:Rv32.Csr.cause_store_fault fatal_store

let test_fatal_fetch () = check_fatal ~name:"fatal fetch" ~cause:1 fatal_fetch

let test_fatal_ecall () =
  check_fatal ~name:"fatal ecall" ~cause:Rv32.Csr.cause_ecall_m fatal_ecall

let test_fatal_illegal () =
  check_fatal ~name:"fatal illegal" ~cause:Rv32.Csr.cause_illegal fatal_illegal

(* --- engine coverage sanity ---------------------------------------------- *)

(* The differential only means something if the threaded runs actually
   execute compiled chains: pin the counters on a loopy program. *)
let test_threaded_actually_compiles () =
  let soc, reason = run_e ~engine:Rv32.Core.Threaded muldiv_prog in
  (match reason with
  | Rv32.Core.Exited _ -> ()
  | r -> Alcotest.failf "muldiv under threaded: %s" (reason_str r));
  check_bool "blocks built" true (soc.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built () > 0);
  check_bool "fast chains retired" true
    (soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired () > 0)

let () =
  Alcotest.run "threaded"
    [
      ( "opcode classes",
        [
          Alcotest.test_case "alu" `Quick test_alu;
          Alcotest.test_case "mul/div edge cases" `Quick test_muldiv;
          Alcotest.test_case "loads/stores" `Quick test_memory;
          Alcotest.test_case "branches/jumps" `Quick test_branches;
          Alcotest.test_case "csr/trap/mret/fence" `Quick test_csr;
        ] );
      ( "taint",
        [
          Alcotest.test_case "mid-block taint entry falls back" `Quick
            test_taint_mid_block;
        ] );
      ( "invalidation",
        [
          Alcotest.test_case "smc within the compiled block" `Quick
            test_smc_in_block;
          Alcotest.test_case "dma into compiled code" `Quick test_dma_into_code;
        ] );
      ( "fatal traps (mtvec=0)",
        [
          Alcotest.test_case "load fault" `Quick test_fatal_load;
          Alcotest.test_case "store fault" `Quick test_fatal_store;
          Alcotest.test_case "fetch fault" `Quick test_fatal_fetch;
          Alcotest.test_case "ecall without handler" `Quick test_fatal_ecall;
          Alcotest.test_case "illegal instruction" `Quick test_fatal_illegal;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "threaded runs compiled chains" `Quick
            test_threaded_actually_compiles;
        ] );
    ]
