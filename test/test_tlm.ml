(* TLM payloads, sockets and the address-mapped router. *)

open Helpers
module P = Tlm.Payload
module S = Tlm.Socket
module R = Tlm.Router

let lat = Dift.Lattice.integrity ()
let hi = Dift.Lattice.tag_of_name lat "HI"
let li = Dift.Lattice.tag_of_name lat "LI"

let test_payload_word () =
  let p = P.create ~len:4 ~default_tag:hi () in
  P.set_word p 0x11223344l;
  check_int "byte 0 (LE)" 0x44 (P.get_byte p 0);
  check_int "byte 3" 0x11 (P.get_byte p 3);
  check_bool "word" true (Int32.equal (P.get_word p) 0x11223344l)

let test_payload_word_tag () =
  let p = P.create ~len:4 ~default_tag:hi () in
  P.set_tag p 2 li;
  check_int "word tag is LUB" li (P.word_tag lat p)

let test_payload_tags_travel () =
  let p = P.create ~len:8 ~default_tag:hi () in
  P.set_all_tags p li;
  for i = 0 to 7 do
    check_int "all tagged" li (P.get_tag p i)
  done

(* An echo target that records what it saw and doubles incoming bytes. *)
let make_echo name =
  let last = ref None in
  let t =
    S.target ~name (fun p delay ->
        last := Some (p.P.cmd, p.P.addr, P.get_byte p 0);
        if P.is_read p then P.set_byte p 0 0x5a;
        p.P.resp <- P.Ok_resp;
        Sysc.Time.add delay (Sysc.Time.ns 7))
  in
  (t, last)

let test_socket_binding () =
  let t, last = make_echo "echo" in
  let i = S.initiator ~name:"cpu" in
  check_bool "unbound" false (S.is_bound i);
  check_bool "unbound transport raises" true
    (try
       ignore (S.transport i (P.create ~len:1 ~default_tag:hi ()) 0);
       false
     with S.Unbound _ -> true);
  S.bind i t;
  check_bool "bound" true (S.is_bound i);
  let p = P.create ~cmd:P.Read ~addr:0x10 ~len:1 ~default_tag:hi () in
  let d = S.transport i p Sysc.Time.zero in
  check_int "delay annotated" (Sysc.Time.ns 7) d;
  check_int "target ran" 0x5a (P.get_byte p 0);
  check_bool "target saw the address" true (!last = Some (P.Read, 0x10, 0))

let test_router_dispatch_and_offset () =
  let r = R.create ~name:"bus" () in
  let seen = ref [] in
  let target name =
    S.target ~name (fun p d ->
        seen := (name, p.P.addr) :: !seen;
        p.P.resp <- P.Ok_resp;
        d)
  in
  R.map r ~lo:0x1000 ~hi:0x1fff (target "a");
  R.map r ~lo:0x8000 ~hi:0x8fff (target "b");
  let sock = R.target_socket r in
  let p = P.create ~cmd:P.Read ~addr:0x1010 ~len:1 ~default_tag:hi () in
  ignore (S.call sock p Sysc.Time.zero);
  check_bool "routed to a with local offset" true (!seen = [ ("a", 0x10) ]);
  check_int "global address restored" 0x1010 p.P.addr;
  p.P.addr <- 0x8123;
  ignore (S.call sock p Sysc.Time.zero);
  check_bool "routed to b" true (List.hd !seen = ("b", 0x123))

let test_router_unmapped () =
  let r = R.create ~name:"bus" () in
  let sock = R.target_socket r in
  let p = P.create ~cmd:P.Read ~addr:0xdead ~len:1 ~default_tag:hi () in
  ignore (S.call sock p Sysc.Time.zero);
  check_bool "address error" true (p.P.resp = P.Address_error)

let test_router_overlap_rejected () =
  let r = R.create ~name:"bus" () in
  let t = S.target ~name:"x" (fun _ d -> d) in
  R.map r ~lo:0 ~hi:10 t;
  check_bool "overlap" true
    (try R.map r ~lo:5 ~hi:20 t; false with Invalid_argument _ -> true);
  check_bool "empty range" true
    (try R.map r ~lo:30 ~hi:20 t; false with Invalid_argument _ -> true)

let test_router_resolve () =
  let r = R.create ~name:"bus" () in
  let t = S.target ~name:"ram" (fun _ d -> d) in
  R.map r ~lo:0x8000_0000 ~hi:0x800f_ffff t;
  (match R.resolve r 0x8000_1234 with
  | Some (tt, off) ->
      check_string "target" "ram" (S.target_name tt);
      check_int "offset" 0x1234 off
  | None -> Alcotest.fail "resolve failed");
  check_bool "unmapped resolves to None" true (R.resolve r 0x100 = None)

(* Many targets, mapped in shuffled order: every address must reach its
   own target with the right local offset (exercises the sorted-array
   binary search across all positions, both ends included), gaps between
   ranges must still address-error, and [mappings] must keep insertion
   order. *)
let test_router_many_targets () =
  let r = R.create ~name:"bus" () in
  let n = 64 in
  let hit = Array.make n (-1) in
  (* Deterministic shuffle of the mapping order. *)
  let order = Array.init n (fun i -> (i * 37) mod n) in
  Array.iter
    (fun i ->
      let t =
        S.target ~name:(Printf.sprintf "t%02d" i) (fun p d ->
            hit.(i) <- p.P.addr;
            p.P.resp <- P.Ok_resp;
            d)
      in
      (* Ranges of width 0x100 with a 0x100 gap between neighbours. *)
      R.map r ~lo:(i * 0x200) ~hi:((i * 0x200) + 0xff) t)
    order;
  let sock = R.target_socket r in
  for i = 0 to n - 1 do
    Array.fill hit 0 n (-1);
    let off = if i land 1 = 0 then 0 else 0xff in
    let p =
      P.create ~cmd:P.Read ~addr:((i * 0x200) + off) ~len:1 ~default_tag:hi ()
    in
    ignore (S.call sock p Sysc.Time.zero);
    check_bool "ok response" true (p.P.resp = P.Ok_resp);
    check_int (Printf.sprintf "target %d hit at local offset" i) off hit.(i);
    Array.iteri
      (fun j a -> if j <> i && a <> -1 then Alcotest.failf "target %d also hit" j)
      hit;
    (* The gap just above this range is unmapped. *)
    let q =
      P.create ~cmd:P.Read ~addr:((i * 0x200) + 0x100) ~len:1 ~default_tag:hi ()
    in
    ignore (S.call sock q Sysc.Time.zero);
    check_bool "gap address-errors" true (q.P.resp = P.Address_error)
  done;
  (* Below the lowest and above the highest range. *)
  check_bool "below all" true (R.resolve r (-1) = None);
  check_bool "above all" true (R.resolve r ((n - 1) * 0x200 + 0x100) = None);
  (* Insertion (mapping) order is preserved in the listing. *)
  let listed = List.map (fun (_, _, name) -> name) (R.mappings r) in
  let expected =
    Array.to_list (Array.map (fun i -> Printf.sprintf "t%02d" i) order)
  in
  Alcotest.(check (list string)) "mapping order" expected listed

let test_mappings_listing () =
  let r = R.create ~name:"bus" () in
  let t n = S.target ~name:n (fun _ d -> d) in
  R.map r ~lo:0 ~hi:1 (t "a");
  R.map r ~lo:2 ~hi:3 (t "b");
  Alcotest.(check (list (triple int int string)))
    "mappings" [ (0, 1, "a"); (2, 3, "b") ] (R.mappings r)

let prop_payload_byte_roundtrip =
  let open QCheck in
  Test.make ~name:"payload byte set/get" ~count:300
    (pair (int_bound 255) (int_bound 7))
    (fun (v, i) ->
      let p = P.create ~len:8 ~default_tag:hi () in
      P.set_byte p i v;
      P.get_byte p i = v)

let () =
  Alcotest.run "tlm"
    [
      ( "payload",
        [
          Alcotest.test_case "word accessors" `Quick test_payload_word;
          Alcotest.test_case "word tag LUB" `Quick test_payload_word_tag;
          Alcotest.test_case "tags travel" `Quick test_payload_tags_travel;
        ] );
      ( "socket/router",
        [
          Alcotest.test_case "socket binding" `Quick test_socket_binding;
          Alcotest.test_case "router dispatch + offset" `Quick
            test_router_dispatch_and_offset;
          Alcotest.test_case "unmapped address" `Quick test_router_unmapped;
          Alcotest.test_case "overlap rejected" `Quick test_router_overlap_rejected;
          Alcotest.test_case "resolve" `Quick test_router_resolve;
          Alcotest.test_case "many targets, binary search" `Quick
            test_router_many_targets;
          Alcotest.test_case "mappings listing" `Quick test_mappings_listing;
        ] );
      ("props", [ qtest prop_payload_byte_roundtrip ]);
    ]
