(* Golden test for Table I: the Wilander-Kamkar result matrix is pinned
   row by row (location x target x technique x applicability), the paper's
   Detected set is reproduced on VP+, and — as a sanity check that the
   detections are real — the same applicable attacks succeed undetected on
   the plain VP. *)

module W = Firmware.Wilander

type na = Applicable | Param_in_reg | Fp_in_reg | Layout

(* Table I of the paper, RISC-V port. *)
let golden =
  [
    (1, "Stack", "Function Pointer (param)", "Direct", Param_in_reg);
    (2, "Stack", "Longjmp Buffer (param)", "Direct", Param_in_reg);
    (3, "Stack", "Return Address", "Direct", Applicable);
    (4, "Stack", "Base Pointer", "Direct", Fp_in_reg);
    (5, "Stack", "Function Pointer (local)", "Direct", Applicable);
    (6, "Stack", "Longjmp Buffer", "Direct", Applicable);
    (7, "Heap/BSS/Data", "Function Pointer", "Direct", Applicable);
    (8, "Heap/BSS/Data", "Longjmp Buffer", "Direct", Layout);
    (9, "Stack", "Function Pointer (param)", "Indirect", Applicable);
    (10, "Stack", "Longjump Buffer (param)", "Indirect", Applicable);
    (11, "Stack", "Return Address", "Indirect", Applicable);
    (12, "Stack", "Base Pointer", "Indirect", Fp_in_reg);
    (13, "Stack", "Function Pointer (local)", "Indirect", Applicable);
    (14, "Stack", "Longjmp Buffer", "Indirect", Applicable);
    (15, "Heap/BSS/Data", "Return Address", "Indirect", Layout);
    (16, "Heap/BSS/Data", "Base Pointer", "Indirect", Fp_in_reg);
    (17, "Heap/BSS/Data", "Function Pointer (local)", "Indirect", Applicable);
    (18, "Heap/BSS/Data", "Longjmp Buffer", "Indirect", Layout);
  ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let na_marker = function
  | Applicable -> ""
  | Param_in_reg -> "parameter in a register"
  | Fp_in_reg -> "frame pointer in a register"
  | Layout -> "segment layout"

let test_matrix () =
  Alcotest.(check int) "18 attack forms" 18 (List.length W.attacks);
  List.iter2
    (fun a (id, location, target, technique, na) ->
      let ctx = Printf.sprintf "attack %d" id in
      Alcotest.(check int) (ctx ^ " id") id a.W.id;
      Alcotest.(check string) (ctx ^ " location") location a.W.location;
      Alcotest.(check string) (ctx ^ " target") target a.W.target;
      Alcotest.(check string) (ctx ^ " technique") technique a.W.technique;
      Alcotest.(check bool) (ctx ^ " applicable") (na = Applicable) a.W.applicable;
      if na <> Applicable then
        Alcotest.(check bool)
          (Printf.sprintf "%s N/A reason mentions %S" ctx (na_marker na))
          true
          (contains ~sub:(na_marker na) a.W.na_reason))
    W.attacks golden

let test_expected_detected () =
  Alcotest.(check (list int)) "paper's Detected set"
    [ 3; 5; 6; 7; 9; 10; 11; 13; 14; 17 ]
    W.expected_detected;
  (* The Detected set must be exactly the applicable rows. *)
  let applicable =
    List.filter_map
      (fun a -> if a.W.applicable then Some a.W.id else None)
      W.attacks
  in
  Alcotest.(check (list int)) "applicable rows" applicable W.expected_detected

let test_vpp_detects () =
  let detected = ref 0 and na = ref 0 in
  List.iter
    (fun a ->
      match (a.W.applicable, W.run a.W.id) with
      | true, W.Detected -> incr detected
      | true, W.Missed c ->
          Alcotest.failf "attack %d MISSED on VP+ (exit %d)" a.W.id c
      | true, W.Not_applicable ->
          Alcotest.failf "attack %d unexpectedly N/A" a.W.id
      | false, W.Not_applicable -> incr na
      | false, r ->
          Alcotest.failf "N/A attack %d returned %s" a.W.id
            (match r with
            | W.Detected -> "Detected"
            | W.Missed c -> Printf.sprintf "Missed %d" c
            | W.Not_applicable -> assert false))
    W.attacks;
  Alcotest.(check int) "10 Detected" 10 !detected;
  Alcotest.(check int) "8 N/A" 8 !na

(* Without DIFT the same attacks must land: the payload runs and exits 7.
   This guards against the suite "passing" because the attacks are broken
   rather than because the engine catches them. *)
let test_vp_misses () =
  List.iter
    (fun a ->
      if a.W.applicable then
        match W.run ~tracking:false a.W.id with
        | W.Missed 7 -> ()
        | W.Missed c ->
            Alcotest.failf "attack %d on plain VP: exit %d, expected 7" a.W.id c
        | W.Detected ->
            Alcotest.failf "attack %d 'detected' with tracking off" a.W.id
        | W.Not_applicable ->
            Alcotest.failf "attack %d unexpectedly N/A" a.W.id)
    W.attacks

let () =
  Alcotest.run "table1"
    [
      ( "golden",
        [
          Alcotest.test_case "result matrix" `Quick test_matrix;
          Alcotest.test_case "expected Detected set" `Quick
            test_expected_detected;
        ] );
      ( "detection",
        [
          Alcotest.test_case "VP+ detects all applicable attacks" `Slow
            test_vpp_detects;
          Alcotest.test_case "plain VP misses all applicable attacks" `Slow
            test_vp_misses;
        ] );
    ]
