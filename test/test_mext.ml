(* M-extension edge semantics: the RISC-V spec pins div-by-zero,
   INT_MIN / -1 overflow, and the MULH* sign behaviours. The golden model
   and the production core (both VP flavours) must agree with each other
   AND with the spec value on every case. *)

open Helpers
module I = Rv32.Insn
module P = Difftest.Prog
module O = Difftest.Oracle

let int_min = 0x8000_0000
let m1 = 0xffff_ffff (* -1 as u32 *)
let u32 v = v land 0xffff_ffff

let run_op mk a b =
  let prog = [ P.Straight (P.li_insns 5 a @ P.li_insns 6 b @ [ mk (7, 5, 6) ]) ] in
  let res = O.run (P.assemble prog) in
  (match O.explain res.O.golden res.O.vp with
  | Some d -> Alcotest.failf "golden vs VP: %s" d
  | None -> ());
  (match O.explain res.O.vp res.O.vpp with
  | Some d -> Alcotest.failf "VP vs VP+: %s" d
  | None -> ());
  res.O.golden.O.regs.(7)

let case name mk a b expected () =
  check_int
    (Printf.sprintf "%s(0x%08x, 0x%08x)" name a b)
    (u32 expected) (run_op mk a b)

let div_cases =
  [
    ("div by zero is -1", (fun (d, a, b) -> I.DIV (d, a, b)), 0x1234, 0, m1);
    ("div 0/0 is -1", (fun (d, a, b) -> I.DIV (d, a, b)), 0, 0, m1);
    ("div INT_MIN/-1 overflows to INT_MIN", (fun (d, a, b) -> I.DIV (d, a, b)), int_min, m1, int_min);
    ("div -7/2", (fun (d, a, b) -> I.DIV (d, a, b)), u32 (-7), 2, u32 (-3));
    ("divu by zero is all-ones", (fun (d, a, b) -> I.DIVU (d, a, b)), 0xdead_beef, 0, m1);
    ("divu INT_MIN/-1 is 0", (fun (d, a, b) -> I.DIVU (d, a, b)), int_min, m1, 0);
    ("rem by zero is dividend", (fun (d, a, b) -> I.REM (d, a, b)), u32 (-77), 0, u32 (-77));
    ("rem INT_MIN/-1 is 0", (fun (d, a, b) -> I.REM (d, a, b)), int_min, m1, 0);
    ("rem -7/2", (fun (d, a, b) -> I.REM (d, a, b)), u32 (-7), 2, u32 (-1));
    ("remu by zero is dividend", (fun (d, a, b) -> I.REMU (d, a, b)), 0xcafe, 0, 0xcafe);
    ("remu INT_MIN/-1", (fun (d, a, b) -> I.REMU (d, a, b)), int_min, m1, int_min);
  ]

let mulh_cases =
  [
    (* mulh: signed x signed, upper 32 bits. *)
    ("mulh ++", (fun (d, a, b) -> I.MULH (d, a, b)), 0x7fff_ffff, 0x7fff_ffff, 0x3fff_ffff);
    ("mulh +-", (fun (d, a, b) -> I.MULH (d, a, b)), 0x7fff_ffff, m1, m1);
    ("mulh -+", (fun (d, a, b) -> I.MULH (d, a, b)), m1, 0x7fff_ffff, m1);
    ("mulh --", (fun (d, a, b) -> I.MULH (d, a, b)), m1, m1, 0);
    ("mulh min*min", (fun (d, a, b) -> I.MULH (d, a, b)), int_min, int_min, 0x4000_0000);
    ("mulh min*-1", (fun (d, a, b) -> I.MULH (d, a, b)), int_min, m1, 0);
    (* mulhsu: signed x unsigned. *)
    ("mulhsu -1 * max-u", (fun (d, a, b) -> I.MULHSU (d, a, b)), m1, m1, m1);
    ("mulhsu min * max-u", (fun (d, a, b) -> I.MULHSU (d, a, b)), int_min, m1, u32 (-0x8000_0000));
    ("mulhsu + * big-u", (fun (d, a, b) -> I.MULHSU (d, a, b)), 0x7fff_ffff, m1, 0x7fff_fffe);
    (* mulhu: unsigned x unsigned. *)
    ("mulhu max*max", (fun (d, a, b) -> I.MULHU (d, a, b)), m1, m1, 0xffff_fffe);
    ("mulhu min*min", (fun (d, a, b) -> I.MULHU (d, a, b)), int_min, int_min, 0x4000_0000);
    ("mulhu min*-1u", (fun (d, a, b) -> I.MULHU (d, a, b)), int_min, m1, 0x7fff_ffff);
    (* mul: low 32 bits wrap. *)
    ("mul min*-1 wraps", (fun (d, a, b) -> I.MUL (d, a, b)), int_min, m1, int_min);
  ]

(* Sweep every M opcode over a small operand grid; no expected values, just
   three-model agreement (the differential property in isolation). *)
let test_mext_grid_agrees () =
  let ops =
    [ (fun (d, a, b) -> I.MUL (d, a, b));
      (fun (d, a, b) -> I.MULH (d, a, b));
      (fun (d, a, b) -> I.MULHSU (d, a, b));
      (fun (d, a, b) -> I.MULHU (d, a, b));
      (fun (d, a, b) -> I.DIV (d, a, b));
      (fun (d, a, b) -> I.DIVU (d, a, b));
      (fun (d, a, b) -> I.REM (d, a, b));
      (fun (d, a, b) -> I.REMU (d, a, b)) ]
  in
  let operands = [ 0; m1; int_min; 0x7fff_ffff; u32 (-3) ] in
  List.iter
    (fun mk ->
      List.iter
        (fun a -> List.iter (fun b -> ignore (run_op mk a b)) operands)
        operands)
    ops

let () =
  let tc (name, mk, a, b, expected) =
    Alcotest.test_case name `Quick (case name mk a b expected)
  in
  Alcotest.run "mext"
    [
      ("division edges", List.map tc div_cases);
      ("multiply-high edges", List.map tc mulh_cases);
      ( "grid",
        [ Alcotest.test_case "8 ops x 5x5 operands agree" `Quick test_mext_grid_agrees ] );
    ]
