(* Encode/decode round-trip over the FULL instruction table: every
   constructor of Rv32.Insn (the partial-table properties live in
   test_rv32.ml), plus rejection of a curated sample of invalid
   encodings. *)

open Helpers
module I = Rv32.Insn

(* One QCheck generator per constructor so `oneofl` over the table covers
   everything; operands are drawn at full encodable range. *)
let gen_full_table =
  let open QCheck.Gen in
  let reg = int_bound 31 in
  let imm12 = map (fun x -> x - 2048) (int_bound 4095) in
  let boff = map (fun x -> (x - 2048) * 2) (int_bound 4095) in
  let joff = map (fun x -> (x - 0x80000) * 2) (int_bound 0xfffff) in
  let uimm = map (fun x -> x lsl 12) (int_bound 0xfffff) in
  let shamt = int_bound 31 in
  let csr = int_bound 0xfff in
  let zimm = int_bound 31 in
  let u i = map2 (fun rd imm -> i (rd, imm)) reg uimm in
  let j i = map2 (fun rd off -> i (rd, off)) reg joff in
  let b i = map3 (fun a b off -> i (a, b, off)) reg reg boff in
  let ld i = map3 (fun rd rs off -> i (rd, rs, off)) reg reg imm12 in
  let st i = map3 (fun rs1 rs2 off -> i (rs1, rs2, off)) reg reg imm12 in
  let ri i = map3 (fun rd rs imm -> i (rd, rs, imm)) reg reg imm12 in
  let sh i = map3 (fun rd rs s -> i (rd, rs, s)) reg reg shamt in
  let rr i = map3 (fun rd a b -> i (rd, a, b)) reg reg reg in
  let cs i = map3 (fun rd rs c -> i (rd, rs, c)) reg reg csr in
  let ci i = map3 (fun rd z c -> i (rd, z, c)) reg zimm csr in
  [
    u (fun (a, b) -> I.LUI (a, b));
    u (fun (a, b) -> I.AUIPC (a, b));
    j (fun (a, b) -> I.JAL (a, b));
    ld (fun (a, b, c) -> I.JALR (a, b, c));
    b (fun (a, b, c) -> I.BEQ (a, b, c));
    b (fun (a, b, c) -> I.BNE (a, b, c));
    b (fun (a, b, c) -> I.BLT (a, b, c));
    b (fun (a, b, c) -> I.BGE (a, b, c));
    b (fun (a, b, c) -> I.BLTU (a, b, c));
    b (fun (a, b, c) -> I.BGEU (a, b, c));
    ld (fun (a, b, c) -> I.LB (a, b, c));
    ld (fun (a, b, c) -> I.LH (a, b, c));
    ld (fun (a, b, c) -> I.LW (a, b, c));
    ld (fun (a, b, c) -> I.LBU (a, b, c));
    ld (fun (a, b, c) -> I.LHU (a, b, c));
    st (fun (a, b, c) -> I.SB (a, b, c));
    st (fun (a, b, c) -> I.SH (a, b, c));
    st (fun (a, b, c) -> I.SW (a, b, c));
    ri (fun (a, b, c) -> I.ADDI (a, b, c));
    ri (fun (a, b, c) -> I.SLTI (a, b, c));
    ri (fun (a, b, c) -> I.SLTIU (a, b, c));
    ri (fun (a, b, c) -> I.XORI (a, b, c));
    ri (fun (a, b, c) -> I.ORI (a, b, c));
    ri (fun (a, b, c) -> I.ANDI (a, b, c));
    sh (fun (a, b, c) -> I.SLLI (a, b, c));
    sh (fun (a, b, c) -> I.SRLI (a, b, c));
    sh (fun (a, b, c) -> I.SRAI (a, b, c));
    rr (fun (a, b, c) -> I.ADD (a, b, c));
    rr (fun (a, b, c) -> I.SUB (a, b, c));
    rr (fun (a, b, c) -> I.SLL (a, b, c));
    rr (fun (a, b, c) -> I.SLT (a, b, c));
    rr (fun (a, b, c) -> I.SLTU (a, b, c));
    rr (fun (a, b, c) -> I.XOR (a, b, c));
    rr (fun (a, b, c) -> I.SRL (a, b, c));
    rr (fun (a, b, c) -> I.SRA (a, b, c));
    rr (fun (a, b, c) -> I.OR (a, b, c));
    rr (fun (a, b, c) -> I.AND (a, b, c));
    rr (fun (a, b, c) -> I.MUL (a, b, c));
    rr (fun (a, b, c) -> I.MULH (a, b, c));
    rr (fun (a, b, c) -> I.MULHSU (a, b, c));
    rr (fun (a, b, c) -> I.MULHU (a, b, c));
    rr (fun (a, b, c) -> I.DIV (a, b, c));
    rr (fun (a, b, c) -> I.DIVU (a, b, c));
    rr (fun (a, b, c) -> I.REM (a, b, c));
    rr (fun (a, b, c) -> I.REMU (a, b, c));
    QCheck.Gen.return I.FENCE;
    QCheck.Gen.return I.ECALL;
    QCheck.Gen.return I.EBREAK;
    QCheck.Gen.return I.MRET;
    QCheck.Gen.return I.WFI;
    cs (fun (a, b, c) -> I.CSRRW (a, b, c));
    cs (fun (a, b, c) -> I.CSRRS (a, b, c));
    cs (fun (a, b, c) -> I.CSRRC (a, b, c));
    ci (fun (a, b, c) -> I.CSRRWI (a, b, c));
    ci (fun (a, b, c) -> I.CSRRSI (a, b, c));
    ci (fun (a, b, c) -> I.CSRRCI (a, b, c));
  ]

let arb_any =
  QCheck.make ~print:Rv32.Disasm.insn
    QCheck.Gen.(oneof gen_full_table)

let prop_full_roundtrip =
  QCheck.Test.make ~name:"decode (encode i) = i over the full table"
    ~count:5000 arb_any (fun i -> Rv32.Decode.decode (Rv32.Encode.encode i) = i)

(* Every constructor deterministically, once, with representative operands
   (a property run could in principle under-sample a variant). *)
let fixed_one_per_constructor =
  [
    I.LUI (1, 0xfffff lsl 12); I.AUIPC (31, 0x12345 lsl 12);
    I.JAL (1, -0x100000); I.JALR (0, 31, -2048);
    I.BEQ (1, 2, 4094); I.BNE (3, 4, -4096); I.BLT (5, 6, 2);
    I.BGE (7, 8, -2); I.BLTU (9, 10, 1024); I.BGEU (11, 12, -1024);
    I.LB (13, 14, -1); I.LH (15, 16, 2047); I.LW (17, 18, -2048);
    I.LBU (19, 20, 0); I.LHU (21, 22, 1);
    I.SB (23, 24, -1); I.SH (25, 26, 2047); I.SW (27, 28, -2048);
    I.ADDI (29, 30, 2047); I.SLTI (31, 0, -2048); I.SLTIU (1, 2, 42);
    I.XORI (3, 4, -1); I.ORI (5, 6, 0); I.ANDI (7, 8, 255);
    I.SLLI (9, 10, 0); I.SRLI (11, 12, 31); I.SRAI (13, 14, 1);
    I.ADD (15, 16, 17); I.SUB (18, 19, 20); I.SLL (21, 22, 23);
    I.SLT (24, 25, 26); I.SLTU (27, 28, 29); I.XOR (30, 31, 0);
    I.SRL (1, 2, 3); I.SRA (4, 5, 6); I.OR (7, 8, 9); I.AND (10, 11, 12);
    I.MUL (13, 14, 15); I.MULH (16, 17, 18); I.MULHSU (19, 20, 21);
    I.MULHU (22, 23, 24); I.DIV (25, 26, 27); I.DIVU (28, 29, 30);
    I.REM (31, 0, 1); I.REMU (2, 3, 4);
    I.FENCE; I.ECALL; I.EBREAK; I.MRET; I.WFI;
    I.CSRRW (5, 6, 0x300); I.CSRRS (7, 8, 0xc00); I.CSRRC (9, 10, 0x344);
    I.CSRRWI (11, 31, 0x305); I.CSRRSI (12, 0, 0x304); I.CSRRCI (13, 15, 0x341);
  ]

let test_every_constructor () =
  List.iter
    (fun i ->
      let w = Rv32.Encode.encode i in
      if Rv32.Decode.decode w <> i then
        Alcotest.failf "round-trip failed for %s (0x%08x)" (Rv32.Disasm.insn i) w)
    fixed_one_per_constructor;
  (* The fixed list really is the full table: one mnemonic per opcode kind. *)
  let seen = List.sort_uniq compare (List.map I.opcode fixed_one_per_constructor) in
  check_int "one case per non-ILLEGAL constructor" 56
    (List.length fixed_one_per_constructor);
  check_int "all mnemonics distinct" 56 (List.length seen)

(* Decode must reject malformed words rather than mis-decode them. *)
let invalid_words =
  [
    (0x0000_0000, "all zeroes");
    (0xffff_ffff, "all ones");
    (0x0000_0007, "unused opcode 0x07");
    (0x0000_00ab, "unused major opcode");
    (0x0000_2067, "jalr with funct3=2");
    (0x0000_2063, "branch with funct3=2");
    (0x0000_3063, "branch with funct3=3");
    (0x0000_3003, "ld (64-bit load) in rv32");
    (0x0000_7003, "load with funct3=7");
    (0x0000_3023, "sd (64-bit store) in rv32");
    (0x0200_1013, "slli with funct7 set");
    (0x4000_5033 lor 0x0200_0000, "srl with both funct7 bits");
    (0x0400_0033, "op with funct7=0x02");
    (0xfe00_0033, "op with funct7=0x7f");
    (0x0000_4073, "system with funct3=4");
    (0x1000_0073, "system funct12 unknown (sret unsupported)");
    (0x0010_0073 lor (1 lsl 7), "ebreak with rd<>0");
    (0x0000_0073 lor (1 lsl 15), "ecall with rs1<>0");
  ]

let test_invalid_encodings_rejected () =
  List.iter
    (fun (w, what) ->
      match Rv32.Decode.decode w with
      | I.ILLEGAL w' ->
          check_int (Printf.sprintf "%s keeps the raw word" what) w w'
      | i ->
          Alcotest.failf "0x%08x (%s) decoded as %s instead of ILLEGAL" w what
            (Rv32.Disasm.insn i))
    invalid_words

(* ILLEGAL round-trips through encode as the raw word. *)
let prop_illegal_identity =
  QCheck.Test.make ~name:"encode (ILLEGAL w) = w" ~count:500
    QCheck.(int_bound 0xffffffff)
    (fun w -> Rv32.Encode.encode (I.ILLEGAL w) = w)

let () =
  Alcotest.run "encdec"
    [
      ( "round-trip",
        [ Alcotest.test_case "every constructor once" `Quick test_every_constructor ]
        @ List.map qtest [ prop_full_roundtrip; prop_illegal_identity ] );
      ( "rejection",
        [
          Alcotest.test_case "invalid encodings -> ILLEGAL" `Quick
            test_invalid_encodings_rejected;
        ] );
    ]
