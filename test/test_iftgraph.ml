(* Tier-1 tests for lib/iftgraph: the varint codec primitive, the query
   predicate language, canonical store encoding, and the acceptance path
   of the persistent graph store — the mtvec-hijack run's store ingests
   byte-identically at jobs=1 and jobs=4, its backward source-finding
   query returns exactly the live forensic chain walk-back's source set,
   and a repeated query is answered from the memo table without touching
   the store files again. *)

open Helpers
module S = Iftgraph.Store
module B = Iftgraph.Build
module Q = Iftgraph.Query
module An = Iftgraph.Analyze
module Rp = Iftgraph.Report
module C = Snapshot.Codec
module T = Trace

(* --- Varint primitive ------------------------------------------------- *)

let test_varint () =
  let vals =
    [ 0; 1; 127; 128; 255; 300; 16383; 16384; (1 lsl 31) - 1; 1 lsl 31;
      max_int ]
  in
  let w = C.writer () in
  List.iter (C.put_varint w) vals;
  let r = C.reader (C.contents w) in
  List.iter (fun v -> check_int (string_of_int v) v (C.get_varint r)) vals;
  C.expect_end r;
  (* Minimal encodings: one byte up to 127, two up to 16383. *)
  let len v =
    let w = C.writer () in
    C.put_varint w v;
    String.length (C.contents w)
  in
  check_int "127 is one byte" 1 (len 127);
  check_int "128 is two bytes" 2 (len 128);
  check_bool "negative rejected" true
    (try
       C.put_varint (C.writer ()) (-1);
       false
     with Invalid_argument _ -> true);
  check_bool "truncated input raises Corrupt" true
    (try
       ignore (C.get_varint (C.reader "\x80"));
       false
     with C.Corrupt _ -> true)

(* --- Predicate language ----------------------------------------------- *)

let test_pred_parser () =
  let ok s p =
    match Q.parse_pred s with
    | Ok p' -> check_bool s true (p = p')
    | Error e -> Alcotest.failf "%s rejected: %s" s e
  in
  ok "violation:0" (Q.P_violation 0);
  ok "violation:7" (Q.P_violation 7);
  ok "pc:0x100" (Q.P_pc 0x100);
  ok "pc:256" (Q.P_pc 256);
  ok "tag:HI" (Q.P_tag "HI");
  ok "origin:uart.rx" (Q.P_origin "uart.rx");
  ok "addr:0x10013000" (Q.P_addr 0x10013000);
  List.iter
    (fun s ->
      match Q.parse_pred s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid predicate %S" s)
    [ ""; "violation"; "violation:x"; "bogus:1"; "pc:"; "addr:zzz" ];
  (* The printer round-trips through the parser. *)
  List.iter
    (fun p ->
      check_bool (Q.pred_to_string p) true
        (Q.parse_pred (Q.pred_to_string p) = Ok p))
    [ Q.P_violation 3; Q.P_pc 0x80000040; Q.P_tag "HC,LI";
      Q.P_origin "sensor"; Q.P_addr 0x2000 ]

(* --- Store encoding + single-store queries ---------------------------- *)

let small_store () =
  let b = B.create ~context:"unit test" ~classes:[ "LI"; "HI" ] () in
  B.set_pos b ~time:10 ~pc:0x100;
  B.add_seed b ~origin:"uart.rx" ~addr:0x10013000 ~time:10 ~tag:0 ();
  B.add_seed b ~origin:"policy-region:program" ~time:0 ~tag:1 ();
  B.set_pos b ~time:20 ~pc:0x104;
  B.add_merge b ~a:0 ~b:1 ~result:1;
  B.add_via b ~channel:"dma" ~tag:1;
  B.set_pos b ~time:30 ~pc:0x108;
  B.add_violation b ~what:"exec-clearance" ~pc:0x108 ~time:30 ~tag:1;
  B.set_dropped b ~edges:2 ~sources:1;
  B.finish b

let test_store_roundtrip () =
  let s = small_store () in
  let blob = S.to_string s in
  check_string "magic leads the file" S.magic (String.sub blob 0 8);
  let s' = S.of_string blob in
  check_string "canonical: decode then encode is byte-identical" blob
    (S.to_string s');
  let seeds, merges, declasses, vias, violations = S.stats s' in
  check_int "seeds" 2 seeds;
  check_int "merges" 1 merges;
  check_int "declasses" 0 declasses;
  check_int "vias" 1 vias;
  check_int "violations" 1 violations;
  check_string "context" "unit test" s'.S.meta.S.context;
  check_int "dropped edges in header" 2 s'.S.meta.S.dropped_edges;
  check_int "dropped sources in header" 1 s'.S.meta.S.dropped_sources;
  check_bool "corrupt input raises" true
    (try
       ignore (S.of_string (S.magic ^ "garbage"));
       false
     with C.Corrupt _ -> true);
  check_bool "wrong magic raises" true
    (try
       ignore (S.of_string "NOTAGRPH");
       false
     with C.Corrupt _ -> true)

let test_store_queries () =
  let s = small_store () in
  let idx = S.index s in
  check_int "one violation indexed" 1 (Array.length idx.S.violations);
  (* Backward from the violation (tag HI): through the merge to both the
     program region (HI) and the uart seed (LI). *)
  let back = Q.sources_of s idx (Q.P_violation 0) in
  let origins = List.map (fun src -> src.Q.src_origin) back.Q.bk_sources in
  check_bool "backward reaches the uart seed" true
    (List.mem "uart.rx" origins);
  check_bool "backward reaches the program region" true
    (List.mem "policy-region:program" origins);
  check_int "two sources, deduped" 2 (List.length back.Q.bk_sources);
  (* Forward from the uart seed: its class feeds the merge and (through
     the HI chain) the violation. *)
  let reach = Q.reaches s idx (Q.P_origin "uart.rx") in
  check_bool "forward reach hits the violation" true
    (reach.Q.rc_violations <> []);
  check_bool "forward reach covers both classes" true
    (List.length reach.Q.rc_tags = 2);
  (* A predicate that matches nothing yields an empty, not an error. *)
  let none = Q.sources_of s idx (Q.P_violation 9) in
  check_bool "out-of-range violation index is empty" true
    (none.Q.bk_start = [] && none.Q.bk_sources = [])

(* --- Acceptance: trap hijack store, parallel ingest, memoized query --- *)

let run_trap_store () =
  let scenario = Firmware.Trap_attacks.Mtvec_hijack in
  let img = Firmware.Trap_attacks.image scenario in
  let policy = Firmware.Trap_attacks.policy scenario img in
  let tracer = T.Tracer.create policy.Dift.Policy.lattice in
  let sink = T.Graph.attach ~context:"test trap hijack" tracer in
  (match Firmware.Trap_attacks.run ~tracer scenario with
  | Firmware.Trap_attacks.Detected -> ()
  | Firmware.Trap_attacks.Missed c ->
      Alcotest.failf "mtvec hijack missed (exit %d)" c);
  let store = T.Graph.finish sink in
  T.Graph.detach sink;
  (tracer, store)

let with_store_dir stores f =
  let dir = Filename.temp_dir "iftgraph" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      List.iter (fun (name, s) -> S.write_file s (Filename.concat dir name))
        stores;
      f dir)

let test_trap_hijack_analyze () =
  let tracer, store = run_trap_store () in
  check_bool "store is non-trivial" true (Array.length store.S.nodes >= 2);
  let blob = S.to_string store in
  (* Three copies so a jobs=4 ingest actually shards the file list. *)
  with_store_dir
    [ ("a.iftg", store); ("b.iftg", store); ("c.iftg", store) ]
    (fun dir ->
      let a1 = An.load_dir ~jobs:1 dir in
      let a4 = An.load_dir ~jobs:4 dir in
      check_int "three stores listed" 3 (An.run_count a1);
      (* Ingestion is jobs-independent: every decoded store re-encodes to
         the exact bytes on disk, identically at jobs=1 and jobs=4. *)
      let enc a = List.map (fun (n, s, _) -> (n, S.to_string s)) (An.stores a) in
      check_bool "jobs=1 vs jobs=4 ingestion byte-identical" true
        (enc a1 = enc a4);
      check_bool "re-encode matches the bytes on disk" true
        (List.for_all (fun (_, e) -> String.equal e blob) (enc a1));
      (* The backward query's source set equals the live forensic chain
         walk-back's, exactly. *)
      let back = An.sources_of a1 (Q.P_violation 0) in
      check_int "an answer per store" 3 (List.length back);
      let _, b0 = List.hd back in
      let store_set =
        List.sort_uniq compare
          (List.map
             (fun src -> (src.Q.src_origin, src.Q.src_addr, src.Q.src_tag))
             b0.Q.bk_sources)
      in
      let vtag = ref None in
      T.Ring.iter tracer.T.Tracer.ring (fun e ->
          if e.T.Event.kind = T.Event.Violation then
            vtag := Some e.T.Event.tag);
      let vtag =
        match !vtag with
        | Some t -> t
        | None -> Alcotest.fail "no violation event in the ring"
      in
      let chain = T.Provenance.chain tracer.T.Tracer.prov vtag in
      let live_set =
        List.sort_uniq compare
          (List.map
             (fun s ->
               (s.T.Provenance.s_origin, s.T.Provenance.s_addr,
                s.T.Provenance.s_tag))
             chain.T.Provenance.c_sources)
      in
      check_bool "source set equals the forensic walk-back" true
        (store_set = live_set);
      check_bool "the attack input channel is a source" true
        (List.exists (fun (o, _, _) -> o = "uart.rx") store_set);
      (* Memoized repeat: identical answer, zero store reads beyond the
         index, one more memo hit. *)
      let reads = An.store_reads a1 in
      check_int "each store read exactly once" 3 reads;
      let hits = An.memo_hits a1 in
      let back' = An.sources_of a1 (Q.P_violation 0) in
      check_bool "memoized result identical" true (back = back');
      check_int "no store reads beyond the index" reads (An.store_reads a1);
      check_bool "memo hit counted" true (An.memo_hits a1 > hits);
      (* Every report kind validates against its schema. *)
      let checkv name j =
        match Rp.validate j with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s report invalid: %s" name e
      in
      checkv "sources-of" (Rp.sources_json a1 (Q.P_violation 0));
      checkv "reaches" (Rp.reaches_json a1 (Q.P_origin "uart.rx"));
      checkv "summary" (Rp.summary_json a1);
      (* The cross-run summary aggregates all three stores. *)
      let sm = An.summary a1 in
      check_int "a run row per store" 3 (List.length sm.An.sm_runs);
      check_int "violations totalled" 3 sm.An.sm_total_violations;
      check_bool "uart.rx in the origin histogram" true
        (List.exists
           (fun o -> o.An.o_origin = "uart.rx" && o.An.o_runs = 3)
           sm.An.sm_origins);
      check_bool "top flow path is uart.rx -> the trap violation" true
        (match sm.An.sm_top_paths with
        | p :: _ -> p.An.p_origin = "uart.rx" && p.An.p_flows = 3
        | [] -> false))

(* The analyzer raises on paths that are not directories and skips
   non-store files rather than tripping over them. *)
let test_analyze_edges () =
  check_bool "load_dir rejects a non-directory" true
    (try
       ignore (An.load_dir "/nonexistent/iftgraph/stores");
       false
     with Invalid_argument _ -> true);
  let s = small_store () in
  with_store_dir [ ("only.iftg", s) ] (fun dir ->
      let oc = open_out (Filename.concat dir "README.txt") in
      output_string oc "not a store\n";
      close_out oc;
      let a = An.load_dir dir in
      check_int "only .iftg files selected" 1 (An.run_count a);
      let sm = An.summary a in
      check_int "one run row" 1 (List.length sm.An.sm_runs);
      let r = List.hd sm.An.sm_runs in
      check_string "run named after the file" "only.iftg" r.An.r_name;
      check_int "truncation flagged from the header" 1 sm.An.sm_truncated_runs)

let () =
  Alcotest.run "iftgraph"
    [
      ( "codec",
        [ Alcotest.test_case "varint round-trip" `Quick test_varint ] );
      ( "query",
        [
          Alcotest.test_case "predicate parser" `Quick test_pred_parser;
          Alcotest.test_case "store round-trip" `Quick test_store_roundtrip;
          Alcotest.test_case "backward + forward queries" `Quick
            test_store_queries;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "trap hijack: parallel ingest, exact sources, \
                              memoized repeat" `Quick test_trap_hijack_analyze;
          Alcotest.test_case "analyzer edge cases" `Quick test_analyze_edges;
        ] );
    ]
