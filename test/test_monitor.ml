(* Dift.Monitor unit coverage: Halt vs Record interception, mode switches
   mid-run, check counting (passed and failed), and clear semantics. *)

open Helpers

let lat () = Dift.Lattice.confidentiality ()

let violation ?(detail = "test") lat =
  {
    Dift.Violation.kind = Dift.Violation.Custom "unit";
    data_tag = Dift.Lattice.tag_of_name lat "HC";
    required_tag = Dift.Lattice.tag_of_name lat "LC";
    pc = Some 0x8000_0000;
    detail;
  }

let test_halt_reraises () =
  let lat = lat () in
  let m = Dift.Monitor.create lat in
  check_bool "default mode is Halt" true (Dift.Monitor.mode m = Dift.Monitor.Halt);
  (match Dift.Monitor.violation m (violation lat) with
  | () -> Alcotest.fail "Halt mode must re-raise"
  | exception Dift.Violation.Violation v ->
      check_string "violation detail" "test" v.Dift.Violation.detail);
  (* The violation is recorded before the re-raise. *)
  check_int "recorded despite raise" 1 (Dift.Monitor.violation_count m)

let test_record_continues () =
  let lat = lat () in
  let m = Dift.Monitor.create ~mode:Dift.Monitor.Record lat in
  Dift.Monitor.violation m (violation lat ~detail:"a");
  Dift.Monitor.violation m (violation lat ~detail:"b");
  check_int "both recorded" 2 (Dift.Monitor.violation_count m);
  check_int "events in order" 2 (List.length (Dift.Monitor.events m));
  match Dift.Monitor.violations m with
  | [ va; vb ] ->
      check_string "oldest first" "a" va.Dift.Violation.detail;
      check_string "newest last" "b" vb.Dift.Violation.detail
  | l -> Alcotest.failf "expected 2 violations, got %d" (List.length l)

let test_set_mode_mid_run () =
  let lat = lat () in
  let m = Dift.Monitor.create ~mode:Dift.Monitor.Record lat in
  Dift.Monitor.violation m (violation lat);
  Dift.Monitor.set_mode m Dift.Monitor.Halt;
  check_bool "mode switched" true (Dift.Monitor.mode m = Dift.Monitor.Halt);
  (match Dift.Monitor.violation m (violation lat) with
  | () -> Alcotest.fail "post-switch violation must raise"
  | exception Dift.Violation.Violation _ -> ());
  check_int "count includes both" 2 (Dift.Monitor.violation_count m);
  (* And back: Record resumes continuing. *)
  Dift.Monitor.set_mode m Dift.Monitor.Record;
  Dift.Monitor.violation m (violation lat);
  check_int "third recorded without raise" 3 (Dift.Monitor.violation_count m)

let test_check_count_passed_and_failed () =
  let lat = lat () in
  let m = Dift.Monitor.create ~mode:Dift.Monitor.Record lat in
  (* The engine counts every clearance check; only failed ones also record
     a violation. Simulate three passed checks and two failed ones. *)
  Dift.Monitor.count_check m;
  Dift.Monitor.count_check m;
  Dift.Monitor.count_check m;
  Dift.Monitor.count_check m;
  Dift.Monitor.violation m (violation lat);
  Dift.Monitor.count_check m;
  Dift.Monitor.violation m (violation lat);
  check_int "checks counted independently of outcome" 5 (Dift.Monitor.check_count m);
  check_int "violations counted separately" 2 (Dift.Monitor.violation_count m)

let test_clear () =
  let lat = lat () in
  let m = Dift.Monitor.create ~mode:Dift.Monitor.Record lat in
  Dift.Monitor.violation m (violation lat);
  Dift.Monitor.report m
    (Dift.Monitor.Declassified
       {
         where = "aes";
         from_tag = Dift.Lattice.tag_of_name lat "HC";
         to_tag = Dift.Lattice.tag_of_name lat "LC";
       });
  Dift.Monitor.report m (Dift.Monitor.Note "note");
  Dift.Monitor.count_check m;
  check_int "events before clear" 3 (List.length (Dift.Monitor.events m));
  check_int "declass before clear" 1 (Dift.Monitor.declassification_count m);
  Dift.Monitor.clear m;
  check_int "no events" 0 (List.length (Dift.Monitor.events m));
  check_int "no violations" 0 (Dift.Monitor.violation_count m);
  check_int "no declassifications" 0 (Dift.Monitor.declassification_count m);
  check_int "no checks" 0 (Dift.Monitor.check_count m);
  check_bool "mode survives clear" true (Dift.Monitor.mode m = Dift.Monitor.Record);
  (* The monitor keeps working after clear. *)
  Dift.Monitor.violation m (violation lat);
  check_int "usable after clear" 1 (Dift.Monitor.violation_count m)

(* End-to-end: a VP+ run in Record mode collects violations the same
   program raises fatally in Halt mode. *)
let test_modes_against_engine () =
  let lat = Dift.Lattice.integrity () in
  let hi = Dift.Lattice.tag_of_name lat "HI" in
  let li = Dift.Lattice.tag_of_name lat "LI" in
  (* The program region is classified LI (think injected / untrusted code)
     while fetch requires HI: every fetch violates. *)
  let policy =
    Dift.Policy.make ~lattice:lat ~default_tag:li
      ~classification:
        [
          Dift.Policy.region ~name:"untrusted" ~lo:0x8000_0000 ~hi:0x8000_ffff
            ~tag:li;
        ]
      ~exec_fetch:hi ()
  in
  let build p =
    Rv32_asm.Asm.label p "_start";
    Rv32_asm.Asm.nop p;
    Rv32_asm.Asm.exit_ecall p ()
  in
  (* Record: runs to completion, violations recorded. *)
  let record = Dift.Monitor.create ~mode:Dift.Monitor.Record lat in
  let _, reason = run_program ~policy ~monitor:record build in
  expect_exit reason 0;
  check_bool "violations recorded" true (Dift.Monitor.violation_count record > 0);
  (* Halt: the same program stops at the first fetch. *)
  let halt = Dift.Monitor.create ~mode:Dift.Monitor.Halt lat in
  (match run_program ~policy ~monitor:halt build with
  | _ -> Alcotest.fail "Halt mode must abort the run"
  | exception Dift.Violation.Violation v ->
      check_bool "fetch violation" true (v.Dift.Violation.kind = Dift.Violation.Exec_fetch));
  check_int "exactly one recorded before halt" 1 (Dift.Monitor.violation_count halt)

let () =
  Alcotest.run "monitor"
    [
      ( "modes",
        [
          Alcotest.test_case "halt re-raises" `Quick test_halt_reraises;
          Alcotest.test_case "record continues" `Quick test_record_continues;
          Alcotest.test_case "set_mode mid-run" `Quick test_set_mode_mid_run;
          Alcotest.test_case "engine halt vs record" `Quick test_modes_against_engine;
        ] );
      ( "counters",
        [
          Alcotest.test_case "check_count passed+failed" `Quick
            test_check_count_passed_and_failed;
          Alcotest.test_case "clear semantics" `Quick test_clear;
        ] );
    ]
