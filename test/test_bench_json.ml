(* Tier-1 guard for the machine-readable perf reports: the Json
   renderer/parser round-trips, the report schema validates, and a real
   (tiny-scale) benchmark run produces a document that survives a write →
   read → parse → validate cycle, exactly as CI consumes it. *)

module J = Benchkit.Json
module D = Benchkit.Defs
open Helpers

let roundtrip v =
  match J.of_string (J.to_string v) with
  | Ok v' -> v'
  | Error e -> Alcotest.failf "re-parse failed: %s" e

let test_json_roundtrip () =
  let samples =
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Num 0.;
      J.Num 3.25;
      J.Num (-17.);
      J.Num 1e10;
      J.num_of_int max_int;
      J.Str "";
      J.Str "plain";
      J.Str "esc \" \\ \n \t \r \x0c \b quoted";
      J.Str "control \x01 \x1f bytes";
      J.List [];
      J.List [ J.Num 1.; J.Str "two"; J.Bool false; J.Null ];
      J.Obj [];
      J.Obj
        [
          ("a", J.Num 1.);
          ("nested", J.Obj [ ("b", J.List [ J.Str "x" ]) ]);
        ];
    ]
  in
  List.iter (fun v -> check_bool (J.to_string v) true (roundtrip v = v)) samples

let test_json_render () =
  check_string "compact object" {|{"a":1,"b":[true,null,"x"]}|}
    (J.to_string
       (J.Obj
          [ ("a", J.Num 1.); ("b", J.List [ J.Bool true; J.Null; J.Str "x" ]) ]));
  check_string "integral floats have no point" "42" (J.to_string (J.Num 42.));
  check_bool "non-finite rejected" true
    (try
       ignore (J.to_string (J.Num Float.nan));
       false
     with Invalid_argument _ -> true)

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted invalid input %S" s)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{'a':1}" ]

let test_json_unicode_escape () =
  match J.of_string "\"a\\u00e9A\"" with
  | Ok (J.Str s) -> check_string "utf-8 decoding" "a\xc3\xa9A" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

(* A hand-built document that matches the schema. *)
let good_row ?(workload = "w") ?(mode = "vp") ?(instructions = 100)
    ?(seconds = 0.5) ?(overhead = 1.) () =
  J.Obj
    [
      ("workload", J.Str workload);
      ("mode", J.Str mode);
      ("instructions", J.num_of_int instructions);
      ("seconds", J.Num seconds);
      ("mips", J.Num (D.mips instructions seconds));
      ("overhead", J.Num overhead);
      ("fast_retired", J.num_of_int 10);
      ("blocks_built", J.num_of_int 3);
      ("loc_asm", J.num_of_int 20);
      ("exit_ok", J.Bool true);
    ]

let good_doc ?(rows = [ good_row () ]) () =
  J.Obj
    [
      ("bench", J.Str "table2");
      ("scale", J.Num 1.);
      ("block_cache", J.Bool true);
      ("fast_path", J.Bool true);
      ("rows", J.List rows);
    ]

let expect_valid doc =
  match D.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid, got: %s" e

let expect_invalid name doc =
  match D.validate doc with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s passed validation" name

let without field = function
  | J.Obj kvs -> J.Obj (List.remove_assoc field kvs)
  | v -> v

let test_validate () =
  expect_valid (good_doc ());
  expect_invalid "empty rows" (good_doc ~rows:[] ());
  expect_invalid "missing bench" (without "bench" (good_doc ()));
  expect_invalid "missing rows" (without "rows" (good_doc ()));
  expect_invalid "row without workload"
    (good_doc ~rows:[ without "workload" (good_row ()) ] ());
  expect_invalid "empty workload"
    (good_doc ~rows:[ good_row ~workload:"" () ] ());
  expect_invalid "zero overhead"
    (good_doc ~rows:[ good_row ~overhead:0. () ] ());
  expect_invalid "negative instructions"
    (good_doc ~rows:[ good_row ~instructions:(-1) () ] ());
  expect_invalid "non-object document" (J.List []);
  (* The optional per-row trace marker: bool ok, anything else rejected. *)
  let with_field k v = function
    | J.Obj kvs -> J.Obj (kvs @ [ (k, v) ])
    | j -> j
  in
  expect_valid
    (good_doc ~rows:[ with_field "trace" (J.Bool true) (good_row ()) ] ());
  expect_invalid "non-bool trace field"
    (good_doc ~rows:[ with_field "trace" (J.Str "yes") (good_row ()) ] ());
  (* The parallel-campaign fields: all four together or none at all,
     each range-checked. *)
  let parallel_fields =
    [
      ("jobs", J.num_of_int 4);
      ("wall_ns", J.num_of_int 1_000_000);
      ("cpu_ns", J.num_of_int 3_900_000);
      ("worker_throughput", J.Num 12.5);
    ]
  in
  let with_fields kvs j = List.fold_left (fun j (k, v) -> with_field k v j) j kvs in
  expect_valid
    (good_doc ~rows:[ with_fields parallel_fields (good_row ()) ] ());
  List.iter
    (fun missing ->
      expect_invalid
        (Printf.sprintf "parallel row without %S" missing)
        (good_doc
           ~rows:
             [
               with_fields
                 (List.remove_assoc missing parallel_fields)
                 (good_row ());
             ]
           ()))
    [ "jobs"; "wall_ns"; "cpu_ns"; "worker_throughput" ];
  expect_invalid "zero jobs"
    (good_doc
       ~rows:
         [
           with_fields
             (("jobs", J.num_of_int 0)
             :: List.remove_assoc "jobs" parallel_fields)
             (good_row ());
         ]
       ());
  expect_invalid "negative wall_ns"
    (good_doc
       ~rows:
         [
           with_fields
             (("wall_ns", J.num_of_int (-1))
             :: List.remove_assoc "wall_ns" parallel_fields)
             (good_row ());
         ]
       ());
  expect_invalid "ill-typed worker_throughput"
    (good_doc
       ~rows:
         [
           with_fields
             (("worker_throughput", J.Str "fast")
             :: List.remove_assoc "worker_throughput" parallel_fields)
             (good_row ());
         ]
       ());
  (* The graph-analyze fields: all five together or none at all. *)
  let graph_fields =
    [
      ("store_bytes", J.num_of_int 199);
      ("ingest_ns", J.num_of_int 20_000);
      ("query_ns", J.num_of_int 4_500);
      ("nodes", J.num_of_int 2);
      ("edges", J.num_of_int 1);
    ]
  in
  expect_valid (good_doc ~rows:[ with_fields graph_fields (good_row ()) ] ());
  List.iter
    (fun missing ->
      expect_invalid
        (Printf.sprintf "graph row without %S" missing)
        (good_doc
           ~rows:
             [
               with_fields
                 (List.remove_assoc missing graph_fields)
                 (good_row ());
             ]
           ()))
    [ "store_bytes"; "ingest_ns"; "query_ns"; "nodes"; "edges" ];
  expect_invalid "negative query_ns"
    (good_doc
       ~rows:
         [
           with_fields
             (("query_ns", J.num_of_int (-1))
             :: List.remove_assoc "query_ns" graph_fields)
             (good_row ());
         ]
       ());
  expect_invalid "ill-typed nodes"
    (good_doc
       ~rows:
         [
           with_fields
             (("nodes", J.Str "two") :: List.remove_assoc "nodes" graph_fields)
             (good_row ());
         ]
       ());
  (* The block-engine fields: all four together or none at all. *)
  let engine_fields =
    [
      ("superblocks_built", J.num_of_int 2);
      ("chain_hits", J.num_of_int 50);
      ("ic_hits", J.num_of_int 9);
      ("ic_misses", J.num_of_int 1);
    ]
  in
  expect_valid (good_doc ~rows:[ with_fields engine_fields (good_row ()) ] ());
  List.iter
    (fun missing ->
      expect_invalid
        (Printf.sprintf "block-engine row without %S" missing)
        (good_doc
           ~rows:
             [
               with_fields
                 (List.remove_assoc missing engine_fields)
                 (good_row ());
             ]
           ()))
    [ "superblocks_built"; "chain_hits"; "ic_hits"; "ic_misses" ];
  expect_invalid "negative chain_hits"
    (good_doc
       ~rows:
         [
           with_fields
             (("chain_hits", J.num_of_int (-1))
             :: List.remove_assoc "chain_hits" engine_fields)
             (good_row ());
         ]
       ());
  expect_invalid "ill-typed ic_hits"
    (good_doc
       ~rows:
         [
           with_fields
             (("ic_hits", J.Str "many")
             :: List.remove_assoc "ic_hits" engine_fields)
             (good_row ());
         ]
       ())

(* The parallel_row constructor fills the four optional fields
   consistently and renders/validates end to end. *)
let test_parallel_row () =
  let m =
    D.parallel_row ~workload:"difftest" ~mode:"jobs-4" ~jobs:4 ~tasks:200
      ~instructions:0 ~wall_ns:2_000_000_000 ~cpu_ns:7_600_000_000
      ~overhead:0.27 ()
  in
  check_bool "jobs recorded" true (m.D.m_jobs = Some 4);
  check_bool "wall recorded" true (m.D.m_wall_ns = Some 2_000_000_000);
  check_bool "cpu recorded" true (m.D.m_cpu_ns = Some 7_600_000_000);
  (* 200 tasks / 2 s / 4 workers = 25 tasks per second per worker. *)
  check_bool "throughput" true
    (match m.D.m_worker_throughput with
    | Some t -> Float.abs (t -. 25.) < 1e-9
    | None -> false);
  check_bool "seconds derived from wall_ns" true
    (Float.abs (m.D.m_seconds -. 2.) < 1e-9);
  let doc =
    D.doc ~bench:"parallel" ~scale:1. ~block_cache:true ~fast_path:true [ m ]
  in
  expect_valid doc;
  (* A classic row (all four None) renders without the parallel keys. *)
  (match D.row m with
  | J.Obj kvs -> check_bool "jobs rendered" true (List.mem_assoc "jobs" kvs)
  | _ -> Alcotest.fail "expected object");
  let classic = { m with D.m_jobs = None; m_wall_ns = None; m_cpu_ns = None;
                  m_worker_throughput = None } in
  match D.row classic with
  | J.Obj kvs -> check_bool "no jobs key" false (List.mem_assoc "jobs" kvs)
  | _ -> Alcotest.fail "expected object"

(* The graph_row constructor fills the five optional fields consistently
   and renders/validates end to end — the BENCH_graph.json shape. *)
let test_graph_row () =
  let m =
    D.graph_row ~workload:"trap-hijack" ~mode:"analyze-cold" ~store_bytes:199
      ~ingest_ns:20_000 ~query_ns:4_500 ~nodes:2 ~edges:1 ()
  in
  check_bool "store_bytes recorded" true (m.D.m_store_bytes = Some 199);
  check_bool "ingest recorded" true (m.D.m_ingest_ns = Some 20_000);
  check_bool "query recorded" true (m.D.m_query_ns = Some 4_500);
  check_bool "nodes recorded" true (m.D.m_nodes = Some 2);
  check_bool "edges recorded" true (m.D.m_edges = Some 1);
  check_bool "seconds derived from ingest + query" true
    (Float.abs (m.D.m_seconds -. 24.5e-6) < 1e-12);
  check_bool "no parallel fields" true (m.D.m_jobs = None);
  let doc =
    D.doc ~bench:"graph" ~scale:1. ~block_cache:true ~fast_path:true [ m ]
  in
  expect_valid doc;
  (match D.row m with
  | J.Obj kvs ->
      check_bool "store_bytes rendered" true
        (List.mem_assoc "store_bytes" kvs);
      check_bool "no jobs key" false (List.mem_assoc "jobs" kvs)
  | _ -> Alcotest.fail "expected object");
  let classic =
    { m with D.m_store_bytes = None; m_ingest_ns = None; m_query_ns = None;
      m_nodes = None; m_edges = None }
  in
  match D.row classic with
  | J.Obj kvs ->
      check_bool "no store_bytes key" false (List.mem_assoc "store_bytes" kvs)
  | _ -> Alcotest.fail "expected object"

(* End to end: run one real workload at a tiny scale, build the report,
   write it, read it back, parse and validate — the exact CI pipeline. *)
let test_real_report () =
  let defs = D.table2 ~scale:0.01 in
  let qsort =
    List.find (fun d -> d.D.d_name = "qsort") defs
  in
  let rows = D.measure qsort in
  check_int "vp and vp+ rows" 2 (List.length rows);
  let vp = List.nth rows 0 and vpp = List.nth rows 1 in
  check_string "vp row first" "vp" vp.D.m_mode;
  check_string "vp+ row second" "vp+" vpp.D.m_mode;
  check_bool "vp exited cleanly" true vp.D.m_exit_ok;
  check_bool "vp+ exited cleanly" true vpp.D.m_exit_ok;
  check_bool "instructions retired" true (vp.D.m_instructions > 0);
  check_int "vp and vp+ agree on instret" vp.D.m_instructions
    vpp.D.m_instructions;
  check_bool "vp+ built blocks" true (vpp.D.m_blocks_built > 0);
  check_bool "vp+ used the fast path" true (vpp.D.m_fast_retired > 0);
  check_bool "measured rows carry the block-engine counter group" true
    (vpp.D.m_superblocks <> None
    && vpp.D.m_chain_hits <> None
    && vpp.D.m_ic_hits <> None
    && vpp.D.m_ic_misses <> None);
  let doc =
    D.doc ~bench:"table2" ~scale:0.01 ~block_cache:true ~fast_path:true rows
  in
  expect_valid doc;
  let file = Filename.temp_file "bench" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let oc = open_out file in
      output_string oc (J.to_string doc);
      output_string oc "\n";
      close_out oc;
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      match J.of_string (String.trim s) with
      | Error e -> Alcotest.failf "re-parse of written report failed: %s" e
      | Ok doc' ->
          expect_valid doc';
          check_bool "round-tripped document identical" true (doc = doc');
          (* Spot-check the fields CI's trend tooling reads. *)
          let get path =
            List.fold_left
              (fun acc k ->
                match acc with Some v -> J.member k v | None -> None)
              (Some doc') path
          in
          check_bool "bench name" true
            (get [ "bench" ] |> Option.map (J.to_str) |> Option.join
            = Some "table2");
          let rows' =
            get [ "rows" ] |> Option.map J.to_list |> Option.join
            |> Option.value ~default:[]
          in
          check_int "two rows in file" 2 (List.length rows');
          let ovh =
            J.member "overhead" (List.nth rows' 1)
            |> Option.map J.to_num |> Option.join
          in
          check_bool "vp+ overhead present and positive" true
            (match ovh with Some o -> o > 0. | None -> false);
          check_bool "block-engine counters rendered" true
            (J.member "superblocks_built" (List.nth rows' 1) <> None
            && J.member "chain_hits" (List.nth rows' 1) <> None
            && J.member "ic_hits" (List.nth rows' 1) <> None
            && J.member "ic_misses" (List.nth rows' 1) <> None))

(* The tracing guardrail: --trace adds exactly one vp+trace row that is
   architecturally identical to the untraced runs (same instret, clean
   exit) and carries the trace marker; the default measure stays two rows
   (checked by test_real_report), i.e. tracing is strictly opt-in. *)
let test_trace_row () =
  let defs = D.table2 ~scale:0.01 in
  let qsort = List.find (fun d -> d.D.d_name = "qsort") defs in
  let rows = D.measure ~trace:true qsort in
  check_int "vp, vp+ and vp+trace rows" 3 (List.length rows);
  let vp = List.nth rows 0 and vpp = List.nth rows 1 in
  let vpt = List.nth rows 2 in
  check_string "third row mode" "vp+trace" vpt.D.m_mode;
  check_bool "third row marked traced" true vpt.D.m_trace;
  check_bool "untraced rows unmarked" false (vp.D.m_trace || vpp.D.m_trace);
  check_bool "vp+trace exited cleanly" true vpt.D.m_exit_ok;
  check_int "tracing is transparent (instret)" vp.D.m_instructions
    vpt.D.m_instructions;
  check_bool "vp+trace overhead positive" true (vpt.D.m_overhead > 0.);
  let doc =
    D.doc ~bench:"table2" ~scale:0.01 ~block_cache:true ~fast_path:true rows
  in
  expect_valid doc;
  (* The rendered row exposes the marker to CI trend tooling. *)
  match J.member "rows" doc |> Option.map J.to_list |> Option.join with
  | Some [ _; _; r ] ->
      check_bool "rendered trace marker" true
        (J.member "trace" r |> Option.map J.to_bool |> Option.join
        = Some true)
  | _ -> Alcotest.fail "expected three rendered rows"

(* The branch-heavy dispatch workload drives all three counter classes
   under the default superblock engine: linked superblocks, in-chain
   transitions, inline-cache hits (monomorphic rets) and misses (the
   rotating dispatch site). *)
let test_dispatch_counters () =
  let defs = D.table2 ~scale:0.01 in
  let dispatch = List.find (fun d -> d.D.d_name = "dispatch") defs in
  let rows = D.measure dispatch in
  let some_pos = function Some n -> n > 0 | None -> false in
  List.iter
    (fun m ->
      let ctx what = Printf.sprintf "dispatch %s: %s" m.D.m_mode what in
      check_bool (ctx "exited cleanly") true m.D.m_exit_ok;
      check_bool (ctx "superblocks linked") true (some_pos m.D.m_superblocks);
      check_bool (ctx "chains taken") true (some_pos m.D.m_chain_hits);
      check_bool (ctx "ic hits") true (some_pos m.D.m_ic_hits);
      check_bool (ctx "ic misses") true (some_pos m.D.m_ic_misses))
    rows;
  (* Under the plain threaded engine the same workload reports the group
     as all-zero — present (measured) but empty. *)
  let rows = D.measure ~engine:Rv32.Core.Threaded dispatch in
  List.iter
    (fun m ->
      check_bool "threaded rows carry zero superblocks" true
        (m.D.m_superblocks = Some 0);
      check_bool "threaded rows carry zero ic traffic" true
        (m.D.m_ic_hits = Some 0 && m.D.m_ic_misses = Some 0))
    rows

let () =
  Alcotest.run "bench_json"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rendering" `Quick test_json_render;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escape;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validate" `Quick test_validate;
          Alcotest.test_case "parallel row fields" `Quick test_parallel_row;
          Alcotest.test_case "graph row fields" `Quick test_graph_row;
          Alcotest.test_case "real report end to end" `Slow test_real_report;
          Alcotest.test_case "trace row guardrail" `Slow test_trace_row;
          Alcotest.test_case "dispatch workload counters" `Slow
            test_dispatch_counters;
        ] );
    ]
