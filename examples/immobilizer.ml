(* The car-engine-immobilizer case study of Section VI-A, end to end:

   1. the challenge-response protocol under the IFP-3 policy;
   2. the debug-dump vulnerability the policy catches;
   3. the fixed firmware passing cleanly;
   4. the entropy-reduction attack that slips past the base policy;
   5. the per-byte-class policy that catches it.

     dune exec examples/immobilizer.exe

   With --trace the vulnerable run of section 2 additionally records an
   execution trace and taint provenance (lib/trace, see docs/tracing.md)
   and writes immobilizer.trace.jsonl, immobilizer.forensics.txt and the
   persistent provenance-graph store immobilizer.iftg (docs/ift_graph.md,
   query it with vp_run analyze) — CI runs this as the tracing smoke test
   and diffs the store's analyze summary against a committed golden. *)

module Immo = Firmware.Immo_fw

let with_trace = Array.exists (String.equal "--trace") Sys.argv

let section title = Format.printf "@.== %s ==@." title

(* The graph sink must be attached before [load_image] so the policy's
   classification-region seeds (policy-region:pin, ...) land in the
   store. *)
let make_soc ?(per_byte = false) ?(trace = false) img =
  let policy =
    if per_byte then Immo.per_byte_policy img else Immo.base_policy img
  in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let aes_out_tag, aes_in_clearance = Immo.aes_args policy in
  let tracer =
    if trace then Some (Trace.Tracer.create policy.Dift.Policy.lattice)
    else None
  in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking:true ~aes_out_tag
      ~aes_in_clearance ?tracer ()
  in
  let graph =
    Option.map
      (Trace.Graph.attach ~context:"immobilizer --trace smoke run")
      tracer
  in
  Vp.Soc.load_image soc img;
  (soc, policy, monitor, graph)

let hexdump s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c))
                      (List.init (String.length s) (String.get s)))

let () =
  section "1. challenge-response authentication (fixed firmware, IFP-3)";
  let img = Immo.image ~variant:(Immo.Normal { fixed_dump = true }) () in
  let soc, policy, monitor, _ = make_soc img in
  Format.printf "%a@." Dift.Policy.pp policy;
  let engine = Immo.Engine.attach soc ~challenge:"R4ND0MCH" in
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | Rv32.Core.Exited 0 -> Format.printf "firmware completed.@."
  | _ -> Format.printf "unexpected exit@.");
  (match Immo.Engine.response engine with
  | Some r ->
      Format.printf "engine received response %s@." (hexdump r);
      Format.printf "response valid: %b   (AES-128(PIN, challenge))@."
        (Immo.Engine.response_valid engine)
  | None -> Format.printf "no response frames?!@.");
  Format.printf "declassifications by the AES peripheral: %d@."
    (Dift.Monitor.declassification_count monitor);

  section "2. the debug-dump vulnerability (shipped firmware)";
  let img_vuln = Immo.image ~variant:(Immo.Normal { fixed_dump = false }) () in
  let soc, policy_vuln, _, graph = make_soc ~trace:with_trace img_vuln in
  let _ = Immo.Engine.attach soc ~challenge:"R4ND0MCH" in
  Vp.Uart.push_rx soc.Vp.Soc.uart "D" (* attacker asks for a memory dump *);
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | exception Dift.Violation.Violation v -> (
      Format.printf "DIFT stops the dump: %a@."
        (Dift.Violation.pp policy_vuln.Dift.Policy.lattice)
        v;
      match soc.Vp.Soc.trace with
      | Some tr ->
          let report =
            Trace.Forensics.make ~violation:v
              ~context:"immobilizer --trace smoke run" tr ()
          in
          Format.printf "%a@." Trace.Forensics.pp report;
          let oc = open_out "immobilizer.forensics.txt" in
          output_string oc (Trace.Forensics.to_string report);
          output_char oc '\n';
          close_out oc;
          Trace.Sink.write_file tr ~format:`Jsonl "immobilizer.trace.jsonl";
          Format.printf
            "wrote immobilizer.trace.jsonl (%d events) and immobilizer.forensics.txt@."
            (Trace.Tracer.events_recorded tr)
      | None -> ())
  | _ -> Format.printf "BUG: dump not detected@.");
  (match graph with
  | Some g ->
      Trace.Graph.write_file g "immobilizer.iftg";
      let b = Trace.Graph.builder g in
      Format.printf "wrote immobilizer.iftg (%d nodes, %d edges)@."
        (Iftgraph.Build.node_count b)
        (Iftgraph.Build.edge_count b)
  | None -> ());

  section "3. the fixed dump excludes the PIN region";
  let soc, _, _, _ = make_soc img in
  let _ = Immo.Engine.attach soc ~challenge:"R4ND0MCH" in
  Vp.Uart.push_rx soc.Vp.Soc.uart "D";
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | Rv32.Core.Exited 0 ->
      Format.printf "dump served (%d bytes), no violation.@."
        (String.length (Vp.Uart.tx_string soc.Vp.Soc.uart))
  | _ -> Format.printf "unexpected exit@.");

  section "4. the entropy-reduction attack passes the base policy";
  let img_ent = Immo.image ~variant:Immo.Entropy_attack () in
  let soc, _, _, _ = make_soc img_ent in
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | Rv32.Core.Exited 0 ->
      let pin = Rv32_asm.Image.symbol img_ent "pin" - Vp.Soc.ram_base in
      let bytes =
        List.init 16 (fun i -> Vp.Memory.read_byte soc.Vp.Soc.memory (pin + i))
      in
      Format.printf
        "attack ran to completion: PIN is now %s — one byte of entropy,@."
        (String.concat "" (List.map (Printf.sprintf "%02x") bytes));
      Format.printf
        "brute-forcible in 256 attempts. The policy never fired: PIN bytes@.";
      Format.printf "are (HC,HI) and so is the overwriting data.@."
  | _ -> Format.printf "unexpected exit@.");

  section "4b. ...and the exploit is real: brute-forcing the degraded key";
  let img_exploit = Immo.image ~variant:Immo.Entropy_then_serve () in
  let soc, _, _, _ = make_soc img_exploit in
  let engine = Immo.Engine.attach soc ~challenge:"R4ND0MCH" in
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | Rv32.Core.Exited 0 -> (
      match Immo.Engine.response engine with
      | Some response -> (
          match
            Immo.Engine.brute_force_uniform ~challenge:"R4ND0MCH" ~response
          with
          | Some key ->
              Format.printf
                "from ONE sniffed response, 256 trial encryptions recover the degraded key:@.";
              Format.printf "  %s (16 copies of 0x%02x)@." (hexdump key)
                (Char.code key.[0])
          | None -> Format.printf "brute force failed?!@.")
      | None -> Format.printf "no response?!@.")
  | _ -> Format.printf "unexpected exit@.");

  section "5. one security class per PIN byte defeats it";
  let soc, policy, _, _ = make_soc ~per_byte:true img_ent in
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | exception Dift.Violation.Violation v ->
      Format.printf "caught: %a@."
        (Dift.Violation.pp policy.Dift.Policy.lattice)
        v
  | _ -> Format.printf "BUG: not detected@.");

  section "6. and the protocol still works under the per-byte policy";
  let soc, _, _, _ = make_soc ~per_byte:true img in
  let engine = Immo.Engine.attach soc ~challenge:"R4ND0MCH" in
  (match Vp.Soc.run_for_instructions soc 1_000_000 with
  | Rv32.Core.Exited 0 ->
      Format.printf "response valid: %b@." (Immo.Engine.response_valid engine)
  | _ -> Format.printf "unexpected exit@.")
