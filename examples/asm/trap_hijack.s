# trap_hijack.s — trap-handler hijack through a tainted vector-table
# index (the privilege-architecture case study).
#
# The firmware keeps a table of trap-handler slots (16 bytes each) and
# lets a byte received on the UART select which slot becomes the machine
# trap vector — an unvalidated "flexible vector table update".  Slot 0 is
# the legitimate skip-handler; slot 1 jumps to an attacker gadget that
# prints 'P' and exits 99.
#
# Under the integrity policy the selector byte is LI and the trap-steering
# clearance (trap_csr) flags the csrw mtvec before any trap is taken:
#
#   benign:   vp_run examples/asm/trap_hijack.s --uart-input 0 --no-tracking
#   attack:   vp_run examples/asm/trap_hijack.s --uart-input 1 --no-tracking
#   detected: vp_run examples/asm/trap_hijack.s --uart-input 1 \
#               --policy integrity --forensics

    .equ UART, 0x10000000

_start:
    li sp, 0x800ffff0
    la t6, handlers         # boot with the legitimate slot 0
    csrw mtvec, t6
poll:                       # wait for the configuration byte
    li t1, UART
    lbu t2, 8(t1)           # status
    andi t2, t2, 1
    beqz t2, poll
    lbu t0, 4(t1)           # attacker-controlled selector
    andi t0, t0, 3
    slli t0, t0, 4          # slot index -> byte offset (16-byte slots)
    la t6, handlers
    add t6, t6, t0
    csrw mtvec, t6          # tainted vector write: Trap_steering under VP+
    li a7, 0
    ecall                   # the next service call dispatches through it
    li a0, 0
    li a7, 93
    ecall                   # benign path: exit 0

handlers:                   # slot 0: legitimate handler (skip + return)
    csrr t6, mepc
    addi t6, t6, 4
    csrw mepc, t6
    mret
                            # slot 1 (= handlers + 16): the hijack target
    j gadget
    nop
    nop
    nop

gadget:                     # attacker-chosen machine-mode code
    li t0, UART
    li t1, 0x50             # 'P'
    sb t1, 0(t0)
    li a0, 99
    li a7, 93
    ecall
