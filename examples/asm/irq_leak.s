# irq_leak.s — interrupt-driven information leak through an unclaimed
# PLIC source (the privilege-architecture case study).
#
# The ISR on the sensor interrupt is buggy twice over: it copies
# classified sensor-frame bytes straight to the UART, and it never claims
# the interrupt — so the still-pending source re-enters the ISR
# immediately after every mret and drains the frame one byte per spurious
# interrupt, without the main loop ever running.  After 16 bytes it exits
# 99.
#
# Under the confidentiality policy the sensor data is HC and the UART is
# cleared for LC only, so the first leaked byte raises Output_clearance:
#
#   attack:   vp_run examples/asm/irq_leak.s --no-tracking
#   detected: vp_run examples/asm/irq_leak.s --policy confidentiality \
#               --forensics

    .equ UART,   0x10000000
    .equ PLIC,   0x0c000000
    .equ SENSOR, 0x50000000

    j start

    .align 2
isr:                        # no claim: the source stays pending
    la t0, nleaked
    lw t1, 0(t0)
    li t2, SENSOR
    add t2, t2, t1
    lbu t3, 0(t2)           # classified sensor byte
    li t4, UART
    sb t3, 0(t4)            # leaked: Output_clearance under VP+
    addi t1, t1, 1
    sw t1, 0(t0)
    li t2, 16
    blt t1, t2, isr_done
    li a0, 99
    li a7, 93
    ecall
isr_done:
    mret                    # pending source re-enters immediately

start:
    li sp, 0x800ffff0
    la t6, isr
    csrw mtvec, t6
    li t0, PLIC
    li t1, 4                # enable source 2 = sensor
    sw t1, 4(t0)
    li t0, 0x800            # mie.MEIE
    csrrs zero, mie, t0
    li t0, 0x8              # mstatus.MIE
    csrrs zero, mstatus, t0
idle:
    wfi
    j idle

    .align 2
nleaked:
    .word 0
