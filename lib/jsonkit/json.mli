(** Minimal JSON support for the machine-readable benchmark reports
    ([BENCH_*.json]): the toolchain deliberately has no JSON dependency, so
    this covers exactly what the perf harness and its tests need — a value
    AST, a renderer, and a strict recursive-descent parser. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num_of_int : int -> t

val to_string : t -> string
(** Compact rendering. Integral [Num]s print without a decimal point.
    @raise Invalid_argument on NaN / infinite numbers. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document (no trailing input). The error
    string includes a byte offset. *)

val member : string -> t -> t option
(** Field of an [Obj] ([None] on missing field or non-object). *)

val to_list : t -> t list option
val to_str : t -> string option
val to_num : t -> float option
val to_bool : t -> bool option

val to_int : t -> int option
(** [Num]s with an integral value only. *)
