type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_of_int i = Num (float_of_int i)

(* --- Rendering ------------------------------------------------------- *)

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f ->
      if not (Float.is_finite f) then
        invalid_arg "Json.to_string: non-finite number";
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" f)
      else Buffer.add_string b (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char b '"';
      escape_into b s;
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        items;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_into b k;
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* --- Parsing --------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        incr pos;
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' -> (
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            match int_of_string_opt ("0x" ^ hex) with
            | None -> fail "invalid \\u escape"
            | Some cp ->
                (* UTF-8 encode (BMP only; surrogate pairs unsupported). *)
                if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                else if cp < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xc0 lor (cp lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xe0 lor (cp lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
                  Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3f)))
                end)
        | _ -> fail "invalid escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- Accessors ------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
