type t = {
  env : Env.t;
  name : string;
  clearance : int option;
  mutable reload_us : int;
  mutable enabled : bool;
  mutable deadline : Sysc.Time.t;
  mutable expired : bool;
  mutable kicks : int;
  mutable on_expiry : unit -> unit;
  wake : Sysc.Kernel.event;
  latency : Sysc.Time.t;
}

let create env ~name ?clearance () =
  {
    env;
    name;
    clearance;
    reload_us = 1000;
    enabled = false;
    deadline = max_int;
    expired = false;
    kicks = 0;
    on_expiry = (fun () -> ());
    wake = Sysc.Kernel.create_event env.Env.kernel (name ^ ".wake");
    latency = Sysc.Time.ns 20;
  }

let set_expiry_callback w fn = w.on_expiry <- fn
let expired w = w.expired
let kicks w = w.kicks

let rearm w =
  let k = w.env.Env.kernel in
  w.deadline <- Sysc.Time.add (Sysc.Kernel.now k) (Sysc.Time.us w.reload_us);
  Sysc.Kernel.notify_after w.wake (Sysc.Time.us w.reload_us)

let start w =
  Sysc.Kernel.spawn w.env.Env.kernel ~name:(w.name ^ ".count") (fun () ->
      while not (Sysc.Kernel.stopped w.env.Env.kernel) do
        Sysc.Kernel.wait_event w.wake;
        if w.enabled && not w.expired then begin
          let now = Sysc.Kernel.now w.env.Env.kernel in
          if now >= w.deadline then begin
            w.expired <- true;
            w.on_expiry ()
          end
          else
            (* Stale wake: a kick moved the deadline past this wakeup (the
               kernel keeps the earlier of two pending notifications, per
               the IEEE-1666 override rule). Chase the live deadline. *)
            Sysc.Kernel.notify_after w.wake (w.deadline - now)
        end
      done)

let check_reload_write w ~tag =
  match w.clearance with
  | None -> ()
  | Some required ->
      Dift.Monitor.count_check w.env.Env.monitor;
      if not (Dift.Lattice.allowed_flow w.env.Env.lat tag required) then
        Dift.Monitor.violation w.env.Env.monitor
          {
            Dift.Violation.kind = Dift.Violation.Custom (w.name ^ "-reload");
            data_tag = tag;
            required_tag = required;
            pc = None;
            detail = "watchdog reload register";
          }

let transport w (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let get () =
    let v = ref 0 in
    for i = len - 1 downto 0 do
      v := (!v lsl 8) lor Tlm.Payload.get_byte p i
    done;
    !v
  in
  let word_tag () =
    let t = ref (Tlm.Payload.get_tag p 0) in
    for i = 1 to len - 1 do
      t := Dift.Lattice.lub w.env.Env.lat !t (Tlm.Payload.get_tag p i)
    done;
    !t
  in
  let put v =
    for i = 0 to len - 1 do
      Tlm.Payload.set_byte p i ((v lsr (8 * i)) land 0xff)
    done;
    Tlm.Payload.set_all_tags p w.env.Env.pub
  in
  p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
  (match (p.Tlm.Payload.addr, p.Tlm.Payload.cmd) with
  | 0x00, Tlm.Payload.Read -> put w.reload_us
  | 0x00, Tlm.Payload.Write ->
      check_reload_write w ~tag:(word_tag ());
      w.reload_us <- max 1 (get ())
  | 0x04, Tlm.Payload.Write ->
      if get () land 1 <> 0 then begin
        w.kicks <- w.kicks + 1;
        rearm w
      end
  | 0x08, Tlm.Payload.Read -> put (if w.enabled then 1 else 0)
  | 0x08, Tlm.Payload.Write ->
      let on = get () land 1 <> 0 in
      if on && not w.enabled then begin
        w.enabled <- true;
        rearm w
      end
      else if not on then w.enabled <- false
  | 0x0c, Tlm.Payload.Read -> put (if w.expired then 1 else 0)
  | _, _ -> p.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay w.latency

let socket w = Tlm.Socket.target ~name:w.name (transport w)

let save w wr =
  let open Snapshot.Codec in
  put_u32 wr w.reload_us;
  put_bool wr w.enabled;
  put_i64 wr w.deadline;
  put_bool wr w.expired;
  put_i64 wr w.kicks

let load w r =
  let open Snapshot.Codec in
  w.reload_us <- get_u32 r;
  w.enabled <- get_bool r;
  w.deadline <- get_i64 r;
  w.expired <- get_bool r;
  w.kicks <- get_i64 r
