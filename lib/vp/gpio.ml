type t = {
  env : Env.t;
  name : string;
  port : string;
  mutable dir : int;  (* 1 = output *)
  mutable out : int;
  mutable out_tag : int;
  mutable inp : int;
  mutable inp_tag : int;
  mutable rise : int;
  mutable irq : unit -> unit;
  latency : Sysc.Time.t;
}

let create env ~name ~port =
  {
    env;
    name;
    port;
    dir = 0;
    out = 0;
    out_tag = env.Env.pub;
    inp = 0;
    inp_tag = env.Env.pub;
    rise = 0;
    irq = (fun () -> ());
    latency = Sysc.Time.ns 30;
  }

let set_irq_callback g fn = g.irq <- fn

let drive_input g ~pin ?tag level =
  if pin < 0 || pin > 31 then invalid_arg "Gpio.drive_input: pin out of range";
  let tag =
    match tag with Some t -> t | None -> g.env.Env.policy.Dift.Policy.default_tag
  in
  let old = g.inp in
  let bit = 1 lsl pin in
  g.inp <- (if level then old lor bit else old land lnot bit land 0xffffffff);
  g.inp_tag <- Dift.Lattice.lub g.env.Env.lat g.inp_tag tag;
  if level && old land bit = 0 then begin
    g.rise <- g.rise lor bit;
    g.irq ()
  end

let output_levels g = g.out
let output_tag g = g.out_tag

let transport g (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let get () =
    let v = ref 0 in
    for i = len - 1 downto 0 do
      v := (!v lsl 8) lor Tlm.Payload.get_byte p i
    done;
    !v
  in
  let word_tag () =
    let t = ref (Tlm.Payload.get_tag p 0) in
    for i = 1 to len - 1 do
      t := Dift.Lattice.lub g.env.Env.lat !t (Tlm.Payload.get_tag p i)
    done;
    !t
  in
  let put v tag =
    for i = 0 to len - 1 do
      Tlm.Payload.set_byte p i ((v lsr (8 * i)) land 0xff)
    done;
    Tlm.Payload.set_all_tags p tag
  in
  p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
  (match (p.Tlm.Payload.addr, p.Tlm.Payload.cmd) with
  | 0x00, Tlm.Payload.Read -> put g.dir g.env.Env.pub
  | 0x00, Tlm.Payload.Write -> g.dir <- get ()
  | 0x04, Tlm.Payload.Read -> put g.out g.out_tag
  | 0x04, Tlm.Payload.Write ->
      let tag = word_tag () in
      Env.check_output g.env ~port:g.port ~data_tag:tag
        ~detail:(Printf.sprintf "%s output latch" g.name);
      g.out <- get () land g.dir;
      g.out_tag <- tag
  | 0x08, Tlm.Payload.Read -> put g.inp g.inp_tag
  | 0x0c, Tlm.Payload.Read ->
      put g.rise g.inp_tag;
      g.rise <- 0
  | (0x08 | 0x0c), Tlm.Payload.Write -> () (* read-only, writes ignored *)
  | _, _ -> p.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay g.latency

let socket g = Tlm.Socket.target ~name:g.name (transport g)

let save g w =
  let open Snapshot.Codec in
  put_u32 w g.dir;
  put_u32 w g.out;
  put_u8 w g.out_tag;
  put_u32 w g.inp;
  put_u8 w g.inp_tag;
  put_u32 w g.rise

let load g r =
  let open Snapshot.Codec in
  g.dir <- get_u32 r;
  g.out <- get_u32 r;
  g.out_tag <- get_u8 r;
  g.inp <- get_u32 r;
  g.inp_tag <- get_u8 r;
  g.rise <- get_u32 r
