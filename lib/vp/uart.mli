(** UART peripheral with a host-visible transmit log and an injectable
    receive FIFO.

    Register map (byte offsets):
    - [0x00] TXDATA (write): transmit one byte — this is an {e output
      interface}: the byte's tag is checked against the policy clearance of
      the port name given at creation;
    - [0x04] RXDATA (read): pop one received byte (0 if the FIFO is empty);
    - [0x08] STATUS (read): bit0 = receive FIFO non-empty, bit1 = transmit
      ready (always set);
    - [0x0c] IRQ_EN (read/write): bit0 enables the receive interrupt. *)

type t

val create : Env.t -> name:string -> port:string -> t
(** [port] is the output-interface name looked up in the policy's
    clearance table. *)

val socket : t -> Tlm.Socket.target

val set_irq_callback : t -> (bool -> unit) -> unit
(** Called with [true] when the receive interrupt condition rises (wired to
    a PLIC source by the SoC). *)

(** {1 Host side} *)

val push_rx : t -> ?tag:Dift.Lattice.tag -> string -> unit
(** Inject bytes into the receive FIFO; each byte is classified with [tag]
    (default: the policy's default class — external, untrusted data). *)

val rx_pending : t -> int

val tx_string : t -> string
(** Everything transmitted so far, as characters. *)

val tx_tagged : t -> (char * Dift.Lattice.tag) list
val clear_tx : t -> unit

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
