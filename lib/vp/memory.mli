(** Tainted RAM: parallel value and tag byte arrays, accessible through a
    TLM target socket and (for speed) exposed to the core's DMI fast path. *)

type t

val create : Env.t -> name:string -> size:int -> t

val size : t -> int
val data : t -> Bytes.t
(** Backing value bytes (for DMI registration and the loader). *)

val tags : t -> Bytes.t
(** Backing tag bytes. *)

val socket : t -> Tlm.Socket.target
(** Target socket with a configurable per-access latency. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_tag : t -> int -> Dift.Lattice.tag
val write_tag : t -> int -> Dift.Lattice.tag -> unit
val read_word : t -> int -> int
(** Little-endian 32-bit read at a local offset. *)

val write_word : t -> int -> int -> unit

val fill_tags : t -> off:int -> len:int -> Dift.Lattice.tag -> unit

val load : t -> off:int -> Bytes.t -> unit
(** Blit [src] into the value bytes at [off], firing the write hook (the
    loader's entry point; raw {!data} blits would bypass invalidation). *)

val set_write_hook : t -> (int -> int -> unit) -> unit
(** Install a callback fired with [(offset, len)] after every mutation of
    the value or tag bytes through this module (TLM writes, the loader,
    direct accessors). The SoC uses it to invalidate the core's decoded
    basic-block cache on DMA-into-code and reclassification. Writes taken
    on the CPU's DMI fast path are reported by {!Rv32.Bus_if}'s own hook
    instead. *)

val tainted_regions : t -> baseline:Dift.Lattice.tag -> (int * int * Dift.Lattice.tag) list
(** Maximal runs of consecutive bytes whose tag differs from [baseline],
    as [(first_offset, last_offset, tag)] triples with a uniform tag per
    run — a taint map for diagnostics. *)

val save : t -> Snapshot.Codec.writer -> unit
(** Serialise contents and tag array (run-length encoded). *)

val restore : t -> Snapshot.Codec.reader -> unit
(** Counterpart of {!save} ([load] is the image loader); fires the write
    hook over the whole range so cached decoded blocks are invalidated. *)
