type t = {
  env : Env.t;
  name : string;
  port : string;
  txd : Bytes.t;
  txd_tags : Bytes.t;
  rxd : Bytes.t;
  rxd_tags : Bytes.t;
  mutable rx_valid : bool;
  rx_fifo : (string * int) Queue.t;
  mutable tx_log : string list;  (* newest first *)
  mutable on_tx : string -> unit;
  mutable irq : unit -> unit;
  latency : Sysc.Time.t;
}

let create env ~name ~port =
  {
    env;
    name;
    port;
    txd = Bytes.make 8 '\000';
    txd_tags = Bytes.make 8 (Char.chr env.Env.pub);
    rxd = Bytes.make 8 '\000';
    rxd_tags = Bytes.make 8 (Char.chr env.Env.pub);
    rx_valid = false;
    rx_fifo = Queue.create ();
    tx_log = [];
    on_tx = (fun _ -> ());
    irq = (fun () -> ());
    latency = Sysc.Time.ns 200;
  }

let set_irq_callback c fn = c.irq <- fn
let set_tx_callback c fn = c.on_tx <- fn
let tx_frames c = List.rev c.tx_log
let rx_pending c = Queue.length c.rx_fifo + if c.rx_valid then 1 else 0

let load_rx c =
  match Queue.take_opt c.rx_fifo with
  | Some (frame, tag) ->
      Bytes.blit_string frame 0 c.rxd 0 8;
      Bytes.fill c.rxd_tags 0 8 (Char.chr tag);
      c.rx_valid <- true
  | None -> c.rx_valid <- false

let push_rx_frame c ?tag frame =
  let tag =
    match tag with Some t -> t | None -> c.env.Env.policy.Dift.Policy.default_tag
  in
  let padded =
    if String.length frame >= 8 then String.sub frame 0 8
    else frame ^ String.make (8 - String.length frame) '\000'
  in
  Env.taint_source c.env ~origin:(c.name ^ ".rx") tag;
  Queue.push (padded, tag) c.rx_fifo;
  if not c.rx_valid then load_rx c;
  c.irq ()

let send c =
  let frame = Bytes.to_string c.txd in
  c.tx_log <- frame :: c.tx_log;
  c.on_tx frame

let transport c (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let addr = p.Tlm.Payload.addr in
  p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
  (match p.Tlm.Payload.cmd with
  | Tlm.Payload.Write when addr + len <= 8 ->
      for i = 0 to len - 1 do
        let tag = Tlm.Payload.get_tag p i in
        (* The CAN bus is an output interface: check clearance per byte. *)
        Env.check_output c.env ~port:c.port ~data_tag:tag
          ~detail:(Printf.sprintf "%s tx byte %d" c.name (addr + i));
        Bytes.set c.txd (addr + i) (Char.chr (Tlm.Payload.get_byte p i));
        Bytes.set c.txd_tags (addr + i) (Char.chr tag)
      done
  | Tlm.Payload.Write when addr = 0x08 ->
      if Tlm.Payload.get_byte p 0 land 1 <> 0 then send c
  | Tlm.Payload.Read when addr = 0x08 ->
      Tlm.Payload.set_byte p 0 1 (* tx always ready *);
      for i = 1 to len - 1 do
        Tlm.Payload.set_byte p i 0
      done;
      Tlm.Payload.set_all_tags p c.env.Env.pub
  | Tlm.Payload.Read when addr >= 0x10 && addr + len <= 0x18 ->
      for i = 0 to len - 1 do
        let o = addr + i - 0x10 in
        Tlm.Payload.set_byte p i (Char.code (Bytes.get c.rxd o));
        Tlm.Payload.set_tag p i (Char.code (Bytes.get c.rxd_tags o))
      done
  | Tlm.Payload.Read when addr = 0x18 ->
      Tlm.Payload.set_byte p 0 (rx_pending c land 0xff);
      for i = 1 to len - 1 do
        Tlm.Payload.set_byte p i 0
      done;
      Tlm.Payload.set_all_tags p c.env.Env.pub
  | Tlm.Payload.Write when addr = 0x18 ->
      if Tlm.Payload.get_byte p 0 land 1 <> 0 then load_rx c
  | Tlm.Payload.Read | Tlm.Payload.Write ->
      p.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay c.latency

let socket c = Tlm.Socket.target ~name:c.name (transport c)

let put_fixed w b = Snapshot.Codec.put_string w (Bytes.to_string b)

let get_fixed r dst =
  let str = Snapshot.Codec.get_string r in
  if String.length str <> Bytes.length dst then
    raise (Snapshot.Codec.Corrupt "can buffer length");
  Bytes.blit_string str 0 dst 0 (String.length str)

let save c w =
  let open Snapshot.Codec in
  put_fixed w c.txd;
  put_fixed w c.txd_tags;
  put_fixed w c.rxd;
  put_fixed w c.rxd_tags;
  put_bool w c.rx_valid;
  put_list w
    (fun w (frame, tag) ->
      put_string w frame;
      put_u8 w tag)
    (List.of_seq (Queue.to_seq c.rx_fifo));
  put_list w put_string (List.rev c.tx_log)

let load c r =
  let open Snapshot.Codec in
  get_fixed r c.txd;
  get_fixed r c.txd_tags;
  get_fixed r c.rxd;
  get_fixed r c.rxd_tags;
  c.rx_valid <- get_bool r;
  Queue.clear c.rx_fifo;
  List.iter
    (fun ft -> Queue.push ft c.rx_fifo)
    (get_list r (fun r ->
         let frame = get_string r in
         let tag = get_u8 r in
         (frame, tag)));
  c.tx_log <- List.rev (get_list r get_string)
