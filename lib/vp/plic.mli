(** Platform-level interrupt controller: 31 sources, one target context,
    with per-source priorities, a claim threshold and an in-service mask.

    Register map (word registers):
    - [0x00] PENDING (read): bitmask of pending sources;
    - [0x04] ENABLE (read/write): bitmask of enabled sources;
    - [0x08] CLAIM (read): best pending source id, atomically moved from
      pending to in-service (0 if none); COMPLETE (write): source id ends
      its in-service window — a level-triggered source still asserted goes
      straight back to pending;
    - [0x10] THRESHOLD (read/write): only sources with priority strictly
      above it are delivered (0..7, reset 0);
    - [0x80 + 4*src] PRIORITY (read/write): per-source priority (0..7,
      reset 1; priority 0 effectively masks the source).

    Arbitration picks the highest priority among pending, enabled,
    not-in-service sources above the threshold, ties to the lowest source
    id. The external line (MEIP) is the level of that predicate.

    Values read from the controller are always public/trusted: interrupt
    delivery is control plane — a tainted payload in the triggering
    peripheral must not taint the claim/dispatch path (pinned by
    [test_plic]). *)

type t

val create : Env.t -> name:string -> t
val socket : t -> Tlm.Socket.target

val set_ext_irq_callback : t -> (bool -> unit) -> unit
(** Level callback for MEIP (wired to {!Rv32.Csr.bit_mei}). *)

val trigger : t -> int -> unit
(** Edge gateway: mark source [1..31] pending. *)

val set_level : t -> int -> bool -> unit
(** Level gateway: assert or release source [1..31]. Asserting pends the
    source (unless in service); a source still asserted at COMPLETE is
    immediately pending again. *)

val pending : t -> int
val enabled : t -> int

val in_service : t -> int
(** Bitmask of claimed-but-not-completed sources. *)

val threshold : t -> int

val priority : t -> int -> int
(** Priority of source [1..31]. *)

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
