(** Simplified platform-level interrupt controller: 31 edge-triggered
    sources with a single target context.

    Register map:
    - [0x00] PENDING (read): bitmask of pending sources;
    - [0x04] ENABLE (read/write): bitmask of enabled sources;
    - [0x08] CLAIM (read): lowest pending-and-enabled source id, atomically
      cleared (0 if none); COMPLETE (write): end-of-interrupt, re-evaluates
      the external-interrupt line. *)

type t

val create : Env.t -> name:string -> t
val socket : t -> Tlm.Socket.target

val set_ext_irq_callback : t -> (bool -> unit) -> unit
(** Level callback for MEIP (wired to {!Rv32.Csr.bit_mei}). *)

val trigger : t -> int -> unit
(** Peripheral gateway: mark source [1..31] pending. *)

val pending : t -> int
val enabled : t -> int

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
