(** Core-local interruptor (CLINT): machine timer and software interrupts.

    Register map (as in the SiFive/RISC-V VP convention):
    - [0x0000] MSIP: bit 0 raises the machine software interrupt;
    - [0x4000] / [0x4004] MTIMECMP low/high;
    - [0xbff8] / [0xbffc] MTIME low/high (read-only; derived from simulation
      time, one tick per [tick] of simulated time, default 1 us).

    MTIMECMP is held as its two 32-bit halves and compared against MTIME
    half by half (unsigned), never composed into one OCaml int — the
    composed form overflows the 63-bit native int for high halves with
    bit 31 set and asserted the interrupt spuriously mid-update. The
    reset value is all-ones ("never"); writing [0xffffffff] to the high
    half first, as the standard RISC-V sequence does, updates the
    deadline glitch-free. Distant deadlines are tracked with bounded
    re-armed wakeups, so no reachable deadline misses its interrupt. *)

type t

val create : Env.t -> name:string -> ?tick:Sysc.Time.t -> unit -> t

val socket : t -> Tlm.Socket.target

val set_timer_irq_callback : t -> (bool -> unit) -> unit
(** Level callback for MTIP (wired to {!Rv32.Csr.bit_mti}). *)

val set_soft_irq_callback : t -> (bool -> unit) -> unit
(** Level callback for MSIP. *)

val start : t -> unit
(** Spawn the timer-compare process. *)

val mtime : t -> int
(** Current MTIME value. *)

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
