(** Watchdog timer: fires a callback (modelling a system reset) unless the
    firmware services it in time. The reload register is a classic
    integrity-sensitive target — configure a [store]-style clearance by
    passing [clearance]: writes of data whose class may not flow to it are
    violations (untrusted data must not reconfigure the watchdog).

    Register map:
    - [0x00] RELOAD (read/write): timeout in microseconds (clearance-checked
      write);
    - [0x04] KICK (write 1): restart the countdown;
    - [0x08] CTRL (read/write): bit 0 enables the countdown;
    - [0x0c] STATUS (read): bit 0 = expired. *)

type t

val create : Env.t -> name:string -> ?clearance:Dift.Lattice.tag -> unit -> t
val socket : t -> Tlm.Socket.target

val set_expiry_callback : t -> (unit -> unit) -> unit
(** Invoked once when the countdown reaches zero (e.g. stop the kernel or
    record a reset). *)

val start : t -> unit
(** Spawn the countdown process. *)

val expired : t -> bool
val kicks : t -> int

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
