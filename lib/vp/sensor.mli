(** The sensor peripheral of Fig. 4: a memory-mapped 64-byte data frame of
    tainted bytes, periodically refilled with freshly classified data by a
    SystemC thread, plus a [data_tag] configuration register.

    Register map:
    - [0x00..0x3f]: the data frame (read/write);
    - [0x40] DATA_TAG: reading returns the configured security class (as a
      low-confidentiality value, mirroring Fig. 4 line 45); writing sets the
      class assigned to subsequently generated sensor data. *)

type t

val create : Env.t -> name:string -> ?period:Sysc.Time.t -> ?seed:int -> unit -> t
(** [period] defaults to 25 ms (40 Hz, as in the paper). Data is generated
    with a deterministic xorshift PRNG seeded by [seed] so simulations are
    reproducible. *)

val socket : t -> Tlm.Socket.target

val set_irq_callback : t -> (unit -> unit) -> unit
(** Invoked on every newly generated frame (edge-triggered interrupt,
    Fig. 4 line 24). *)

val set_data_tag : t -> Dift.Lattice.tag -> unit
(** Host-side configuration of the generated data's class. *)

val data_tag : t -> Dift.Lattice.tag

val start : t -> unit
(** Arm the first tick (one [period] from now) and spawn the generation
    thread. The tick is a named kernel event, so a pending tick is part of
    the serialisable kernel state. *)

val frames_generated : t -> int

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
