type t = {
  kernel : Sysc.Kernel.t;
  lat : Dift.Lattice.t;
  policy : Dift.Policy.t;
  monitor : Dift.Monitor.t;
  pub : Dift.Lattice.tag;
  prov : Trace.Provenance.t option;
}

let create ?prov kernel policy monitor =
  let lat = policy.Dift.Policy.lattice in
  let pub =
    match Dift.Lattice.bottom lat with
    | Some b -> b
    | None -> policy.Dift.Policy.default_tag
  in
  { kernel; lat; policy; monitor; pub; prov }

let taint_source env ~origin ?addr tag =
  match env.prov with
  | Some p when tag <> env.pub ->
      ignore
        (Trace.Provenance.source p ~origin ?addr
           ~time:(Sysc.Kernel.now env.kernel)
           tag)
  | Some _ | None -> ()

let taint_via env ~channel tag =
  match env.prov with
  | Some p when tag <> env.pub -> Trace.Provenance.record_via p ~channel tag
  | Some _ | None -> ()

let check_output env ~port ~data_tag ~detail =
  match Dift.Policy.output_required env.policy port with
  | None -> ()
  | Some required ->
      Dift.Monitor.count_check env.monitor;
      if not (Dift.Lattice.allowed_flow env.lat data_tag required) then
        Dift.Monitor.violation env.monitor
          {
            Dift.Violation.kind = Dift.Violation.Output_clearance port;
            data_tag;
            required_tag = required;
            pc = None;
            detail;
          }

let declassify env ~where ~from_tag to_tag =
  Dift.Monitor.report env.monitor
    (Dift.Monitor.Declassified { where; from_tag; to_tag });
  to_tag

let check_store env ~addr ~data_tag ~who =
  match Dift.Policy.store_required_at env.policy addr with
  | None -> ()
  | Some (region, required) ->
      Dift.Monitor.count_check env.monitor;
      if not (Dift.Lattice.allowed_flow env.lat data_tag required) then
        Dift.Monitor.violation env.monitor
          {
            Dift.Violation.kind = Dift.Violation.Store_integrity region;
            data_tag;
            required_tag = required;
            pc = None;
            detail = Printf.sprintf "%s store to 0x%08x" who addr;
          }
