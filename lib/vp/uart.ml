type t = {
  env : Env.t;
  name : string;
  port : string;
  rx : (int * int) Queue.t;  (* byte, tag *)
  mutable tx : (char * int) list;  (* newest first *)
  mutable irq_en : bool;
  mutable irq : bool -> unit;
  latency : Sysc.Time.t;
}

let create env ~name ~port =
  {
    env;
    name;
    port;
    rx = Queue.create ();
    tx = [];
    irq_en = false;
    irq = (fun _ -> ());
    latency = Sysc.Time.ns 100;
  }

let set_irq_callback u fn = u.irq <- fn

let update_irq u = u.irq (u.irq_en && not (Queue.is_empty u.rx))

let push_rx u ?tag s =
  let tag =
    match tag with Some t -> t | None -> u.env.Env.policy.Dift.Policy.default_tag
  in
  if s <> "" then Env.taint_source u.env ~origin:(u.name ^ ".rx") tag;
  String.iter (fun c -> Queue.push (Char.code c, tag) u.rx) s;
  update_irq u

let rx_pending u = Queue.length u.rx

let tx_string u =
  let b = Buffer.create (List.length u.tx) in
  List.iter (fun (c, _) -> Buffer.add_char b c) (List.rev u.tx);
  Buffer.contents b
let tx_tagged u = List.rev u.tx
let clear_tx u = u.tx <- []

let transport u (p : Tlm.Payload.t) delay =
  let ok () = p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp in
  let err () = p.Tlm.Payload.resp <- Tlm.Payload.Command_error in
  (match (p.Tlm.Payload.addr, p.Tlm.Payload.cmd) with
  | 0x00, Tlm.Payload.Write ->
      let byte = Tlm.Payload.get_byte p 0 in
      let tag = Tlm.Payload.get_tag p 0 in
      Env.check_output u.env ~port:u.port ~data_tag:tag
        ~detail:(Printf.sprintf "%s tx byte 0x%02x" u.name byte);
      u.tx <- (Char.chr byte, tag) :: u.tx;
      ok ()
  | 0x04, Tlm.Payload.Read ->
      let byte, tag =
        match Queue.take_opt u.rx with Some bt -> bt | None -> (0, u.env.Env.pub)
      in
      Tlm.Payload.set_byte p 0 byte;
      Tlm.Payload.set_tag p 0 tag;
      for i = 1 to Tlm.Payload.length p - 1 do
        Tlm.Payload.set_byte p i 0;
        Tlm.Payload.set_tag p i u.env.Env.pub
      done;
      update_irq u;
      ok ()
  | 0x08, Tlm.Payload.Read ->
      let status = (if Queue.is_empty u.rx then 0 else 1) lor 2 in
      Tlm.Payload.set_byte p 0 status;
      for i = 1 to Tlm.Payload.length p - 1 do
        Tlm.Payload.set_byte p i 0
      done;
      Tlm.Payload.set_all_tags p u.env.Env.pub;
      ok ()
  | 0x0c, Tlm.Payload.Read ->
      Tlm.Payload.set_byte p 0 (if u.irq_en then 1 else 0);
      for i = 1 to Tlm.Payload.length p - 1 do
        Tlm.Payload.set_byte p i 0
      done;
      Tlm.Payload.set_all_tags p u.env.Env.pub;
      ok ()
  | 0x0c, Tlm.Payload.Write ->
      u.irq_en <- Tlm.Payload.get_byte p 0 land 1 <> 0;
      update_irq u;
      ok ()
  | _, _ -> err ());
  Sysc.Time.add delay u.latency

let socket u = Tlm.Socket.target ~name:u.name (transport u)

let save u w =
  let open Snapshot.Codec in
  put_list w
    (fun w (byte, tag) ->
      put_u8 w byte;
      put_u8 w tag)
    (List.of_seq (Queue.to_seq u.rx));
  put_list w
    (fun w (c, tag) ->
      put_u8 w (Char.code c);
      put_u8 w tag)
    (List.rev u.tx);
  put_bool w u.irq_en

let load u r =
  let open Snapshot.Codec in
  Queue.clear u.rx;
  List.iter
    (fun bt -> Queue.push bt u.rx)
    (get_list r (fun r ->
         let byte = get_u8 r in
         let tag = get_u8 r in
         (byte, tag)));
  u.tx <-
    List.rev
      (get_list r (fun r ->
           let c = Char.chr (get_u8 r) in
           let tag = get_u8 r in
           (c, tag)));
  u.irq_en <- get_bool r
