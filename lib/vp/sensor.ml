type t = {
  env : Env.t;
  name : string;
  period : Sysc.Time.t;
  frame : Bytes.t;  (* 64 data bytes *)
  frame_tags : Bytes.t;
  mutable tag : int;
  mutable rng : int;
  mutable irq : unit -> unit;
  mutable frames : int;
  (* The periodic refill runs off a named kernel event rather than
     [wait_for], so the pending tick is serialisable kernel state and a
     restored run ticks at the same instants as an uninterrupted one. *)
  tick_ev : Sysc.Kernel.event;
  latency : Sysc.Time.t;
}

let frame_size = 64

let create env ~name ?(period = Sysc.Time.ms 25) ?(seed = 0x2545f491) () =
  {
    env;
    name;
    period;
    frame = Bytes.make frame_size '\000';
    frame_tags = Bytes.make frame_size (Char.chr env.Env.pub);
    tag = env.Env.policy.Dift.Policy.default_tag;
    rng = seed;
    irq = (fun () -> ());
    frames = 0;
    tick_ev = Sysc.Kernel.create_event env.Env.kernel (name ^ ".tick");
    latency = Sysc.Time.ns 50;
  }

let set_irq_callback s fn = s.irq <- fn
let set_data_tag s tag = s.tag <- tag
let data_tag s = s.tag
let frames_generated s = s.frames

(* xorshift32: deterministic stand-in for the paper's rand(). *)
let next_rand s =
  let x = s.rng in
  let x = x lxor (x lsl 13) land 0xffffffff in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land 0xffffffff in
  s.rng <- x;
  x

let refill s =
  Env.taint_source s.env ~origin:s.name s.tag;
  let c = Char.chr s.tag in
  for i = 0 to frame_size - 1 do
    (* Fig. 4 line 21: random data of the configured security class. *)
    Bytes.set_uint8 s.frame i ((next_rand s mod 96) + 128);
    Bytes.set s.frame_tags i c
  done;
  s.frames <- s.frames + 1;
  s.irq ()

let start s =
  (* The override rule makes this arm a no-op after a restore: the saved
     (earlier-or-equal) tick notification is re-armed first and wins. *)
  Sysc.Kernel.notify_after s.tick_ev s.period;
  Sysc.Kernel.spawn s.env.Env.kernel ~name:(s.name ^ ".run") (fun () ->
      while not (Sysc.Kernel.stopped s.env.Env.kernel) do
        Sysc.Kernel.wait_event s.tick_ev;
        refill s;
        Sysc.Kernel.notify_after s.tick_ev s.period
      done)

let transport s (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let addr = p.Tlm.Payload.addr in
  (if addr + len <= frame_size then begin
     (match p.Tlm.Payload.cmd with
     | Tlm.Payload.Read ->
         Bytes.blit s.frame addr p.Tlm.Payload.data 0 len;
         Bytes.blit s.frame_tags addr p.Tlm.Payload.tags 0 len
     | Tlm.Payload.Write ->
         Bytes.blit p.Tlm.Payload.data 0 s.frame addr len;
         Bytes.blit p.Tlm.Payload.tags 0 s.frame_tags addr len);
     p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
   end
   else if addr = 0x40 then begin
     (match p.Tlm.Payload.cmd with
     | Tlm.Payload.Read ->
         (* The configured class itself is not confidential (Fig. 4 l.45). *)
         Tlm.Payload.set_byte p 0 s.tag;
         for i = 1 to len - 1 do
           Tlm.Payload.set_byte p i 0
         done;
         Tlm.Payload.set_all_tags p s.env.Env.pub
     | Tlm.Payload.Write -> s.tag <- Tlm.Payload.get_byte p 0);
     p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
   end
   else p.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay s.latency

let socket s = Tlm.Socket.target ~name:s.name (transport s)

let save s w =
  let open Snapshot.Codec in
  put_u8 w s.tag;
  put_u32 w s.rng;
  put_i64 w s.frames;
  put_string w (Bytes.to_string s.frame);
  put_string w (Bytes.to_string s.frame_tags)

let load s r =
  let open Snapshot.Codec in
  s.tag <- get_u8 r;
  s.rng <- get_u32 r;
  s.frames <- get_i64 r;
  let blit_into dst str =
    if String.length str <> Bytes.length dst then
      raise (Corrupt "sensor frame length");
    Bytes.blit_string str 0 dst 0 (String.length str)
  in
  blit_into s.frame (get_string r);
  blit_into s.frame_tags (get_string r)
