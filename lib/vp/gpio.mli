(** General-purpose I/O: 32 pins, each direction-configurable.

    Output pins form an output interface (clearance-checked per write, like
    the UART); input pins are driven from the host side with an explicit
    security class — a cheap way to model classified discrete signals
    (door-lock state, tamper switches, ...).

    Register map:
    - [0x00] DIR (read/write): bit n = 1 makes pin n an output;
    - [0x04] OUT (read/write): output latch — writes are clearance-checked
      against the port named at creation; only bits configured as outputs
      take effect;
    - [0x08] IN (read): current input-pin levels, tagged per the last
      {!drive_input} call;
    - [0x0c] RISE (read): pins that rose since the last read (write-1 has
      no effect; reading clears). *)

type t

val create : Env.t -> name:string -> port:string -> t
val socket : t -> Tlm.Socket.target

val set_irq_callback : t -> (unit -> unit) -> unit
(** Fired on any input edge while at least one input pin is high. *)

(** {1 Host side} *)

val drive_input : t -> pin:int -> ?tag:Dift.Lattice.tag -> bool -> unit
(** Set the level of input pin [pin] (0..31). The pin's byte-wide tag
    defaults to the policy's default class. *)

val output_levels : t -> int
(** Current output latch (host-side observation of the pins). *)

val output_tag : t -> Dift.Lattice.tag
(** Class of the data last written to the output latch. *)

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
