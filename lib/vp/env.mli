(** Shared platform context handed to every peripheral: the IFP lattice,
    the active security policy, the run-time monitor, and the "public"
    (lattice-bottom) tag used for untainted data. *)

type t = {
  kernel : Sysc.Kernel.t;
  lat : Dift.Lattice.t;
  policy : Dift.Policy.t;
  monitor : Dift.Monitor.t;
  pub : Dift.Lattice.tag;
  prov : Trace.Provenance.t option;
      (** Provenance recorder, when the SoC runs with a tracer. *)
}

val create :
  ?prov:Trace.Provenance.t -> Sysc.Kernel.t -> Dift.Policy.t -> Dift.Monitor.t -> t

val taint_source : t -> origin:string -> ?addr:int -> Dift.Lattice.tag -> unit
(** Register a taint introduction (peripheral seeding [tag] into the
    platform) with the provenance recorder at current simulation time.
    No-op when no recorder is attached or [tag] is the public tag, so
    peripherals call it unconditionally. *)

val taint_via : t -> channel:string -> Dift.Lattice.tag -> unit
(** Note that tagged data travelled through a named transfer channel
    (e.g. the DMA engine). Same no-op conventions as {!taint_source}. *)

val check_output : t -> port:string -> data_tag:Dift.Lattice.tag -> detail:string -> unit
(** Clearance check at a named output interface: looks up the port's
    required class in the policy (no check if undeclared) and reports a
    violation to the monitor on failure. *)

val declassify : t -> where:string -> from_tag:Dift.Lattice.tag -> Dift.Lattice.tag -> Dift.Lattice.tag
(** [declassify env ~where ~from_tag to_tag] records the declassification
    event and returns [to_tag]. Only trusted peripherals may call this
    (threat model, Section IV-B). *)

val check_store : t -> addr:int -> data_tag:Dift.Lattice.tag -> who:string -> unit
(** Integrity check for a store at a global address into a policy-protected
    region (used by bus masters other than the CPU, e.g. the DMA engine). *)
