(** AES-128 peripheral: the trusted crypto engine of the immobilizer case
    study. It accepts classified key/plaintext material (its input-side
    clearance is checked against the policy when configured) and
    {e declassifies} the ciphertext so encrypted data may leave on a public
    interface (Section IV-A).

    Register map:
    - [0x00..0x0f] KEY (write);
    - [0x10..0x1f] DATA_IN (write);
    - [0x20..0x2f] DATA_OUT (read): ciphertext, tagged [out_tag];
    - [0x30] CTRL (write 1: start encryption) / STATUS (read: bit 0 busy). *)

type t

val create :
  Env.t ->
  name:string ->
  out_tag:Dift.Lattice.tag ->
  ?in_clearance:Dift.Lattice.tag ->
  ?latency:Sysc.Time.t ->
  unit ->
  t
(** [out_tag] is the declassified class of the ciphertext. [in_clearance],
    when given, is the peripheral's execution clearance on the KEY
    register: key writes whose class may not flow to it are violations
    (e.g. (HC,HI) in the immobilizer policy, which also blocks attacker key
    substitution); plaintext writes are never checked since the engine's
    purpose is to encrypt untrusted challenges. [latency] models the encryption time (default
    2 us). *)

val socket : t -> Tlm.Socket.target

val set_irq_callback : t -> (unit -> unit) -> unit
(** Encryption-complete interrupt. *)

val start : t -> unit
(** Spawn the crypto engine process. *)

val busy : t -> bool
val encryptions : t -> int

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
