type t = {
  env : Env.t;
  name : string;
  mutable pend : int;
  mutable en : int;
  mutable ext_irq : bool -> unit;
  latency : Sysc.Time.t;
}

let create env ~name =
  {
    env;
    name;
    pend = 0;
    en = 0;
    ext_irq = (fun _ -> ());
    latency = Sysc.Time.ns 20;
  }

let set_ext_irq_callback p fn = p.ext_irq <- fn
let update p = p.ext_irq (p.pend land p.en <> 0)

let trigger p src =
  if src < 1 || src > 31 then invalid_arg "Plic.trigger: source out of range";
  p.pend <- p.pend lor (1 lsl src);
  update p

let pending p = p.pend
let enabled p = p.en

let claim p =
  let active = p.pend land p.en in
  if active = 0 then 0
  else begin
    let rec lowest i = if active land (1 lsl i) <> 0 then i else lowest (i + 1) in
    let src = lowest 1 in
    p.pend <- p.pend land lnot (1 lsl src);
    update p;
    src
  end

let transport p (pay : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length pay in
  let put v =
    for i = 0 to len - 1 do
      Tlm.Payload.set_byte pay i ((v lsr (8 * i)) land 0xff)
    done;
    Tlm.Payload.set_all_tags pay p.env.Env.pub
  in
  let get () =
    let v = ref 0 in
    for i = len - 1 downto 0 do
      v := (!v lsl 8) lor Tlm.Payload.get_byte pay i
    done;
    !v
  in
  (match (pay.Tlm.Payload.addr, pay.Tlm.Payload.cmd) with
  | 0x00, Tlm.Payload.Read ->
      put p.pend;
      pay.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
  | 0x04, Tlm.Payload.Read ->
      put p.en;
      pay.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
  | 0x04, Tlm.Payload.Write ->
      p.en <- get ();
      update p;
      pay.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
  | 0x08, Tlm.Payload.Read ->
      put (claim p);
      pay.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
  | 0x08, Tlm.Payload.Write ->
      update p;
      pay.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
  | _, _ -> pay.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay p.latency

let socket p = Tlm.Socket.target ~name:p.name (transport p)

let save p w =
  let open Snapshot.Codec in
  put_u32 w p.pend;
  put_u32 w p.en

let load p r =
  let open Snapshot.Codec in
  p.pend <- get_u32 r;
  p.en <- get_u32 r
