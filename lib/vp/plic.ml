type t = {
  env : Env.t;
  name : string;
  mutable pend : int;
  mutable en : int;
  mutable claimed : int;  (* in-service: claimed but not yet completed *)
  mutable level : int;  (* level-triggered sources currently asserted *)
  mutable threshold : int;
  prio : int array;  (* per-source priority, index 0 unused *)
  mutable ext_irq : bool -> unit;
  latency : Sysc.Time.t;
}

let prio_max = 7
let default_prio = 1

let create env ~name =
  {
    env;
    name;
    pend = 0;
    en = 0;
    claimed = 0;
    level = 0;
    threshold = 0;
    prio = Array.make 32 default_prio;
    ext_irq = (fun _ -> ());
    latency = Sysc.Time.ns 20;
  }

let set_ext_irq_callback p fn = p.ext_irq <- fn

(* Highest priority among pending, enabled, not-in-service sources above
   the threshold; ties broken towards the lowest source id (so the reset
   configuration — all priorities 1, threshold 0 — arbitrates exactly like
   the old lowest-id-wins controller). *)
let best p =
  let cand = p.pend land p.en land lnot p.claimed in
  let best_src = ref 0 and best_prio = ref p.threshold in
  for src = 1 to 31 do
    if cand land (1 lsl src) <> 0 && p.prio.(src) > !best_prio then begin
      best_src := src;
      best_prio := p.prio.(src)
    end
  done;
  !best_src

let update p = p.ext_irq (best p <> 0)

let check_src fn src =
  if src < 1 || src > 31 then
    invalid_arg (Printf.sprintf "Plic.%s: source %d out of range" fn src)

let trigger p src =
  check_src "trigger" src;
  p.pend <- p.pend lor (1 lsl src);
  update p

let set_level p src asserted =
  check_src "set_level" src;
  let bit = 1 lsl src in
  if asserted then begin
    p.level <- p.level lor bit;
    (* The gateway forwards a level request only while it is not already
       in service; completion re-samples the line below. *)
    if p.claimed land bit = 0 then p.pend <- p.pend lor bit
  end
  else p.level <- p.level land lnot bit;
  update p

let pending p = p.pend
let enabled p = p.en
let in_service p = p.claimed
let threshold p = p.threshold

let priority p src =
  check_src "priority" src;
  p.prio.(src)

let claim p =
  let src = best p in
  if src <> 0 then begin
    p.pend <- p.pend land lnot (1 lsl src);
    p.claimed <- p.claimed lor (1 lsl src);
    update p
  end;
  src

let complete p src =
  if src >= 1 && src <= 31 then begin
    let bit = 1 lsl src in
    p.claimed <- p.claimed land lnot bit;
    (* Level-triggered source still asserted: immediately pending again. *)
    if p.level land bit <> 0 then p.pend <- p.pend lor bit
  end;
  update p

let transport p (pay : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length pay in
  (* Every value the controller hands out is public/trusted: interrupt
     delivery is control plane, not data plane — a tainted payload in the
     triggering peripheral must not taint the claim/dispatch path. *)
  let put v =
    for i = 0 to len - 1 do
      Tlm.Payload.set_byte pay i ((v lsr (8 * i)) land 0xff)
    done;
    Tlm.Payload.set_all_tags pay p.env.Env.pub
  in
  let get () =
    let v = ref 0 in
    for i = len - 1 downto 0 do
      v := (!v lsl 8) lor Tlm.Payload.get_byte pay i
    done;
    !v
  in
  let ok () = pay.Tlm.Payload.resp <- Tlm.Payload.Ok_resp in
  (match (pay.Tlm.Payload.addr, pay.Tlm.Payload.cmd) with
  | 0x00, Tlm.Payload.Read ->
      put p.pend;
      ok ()
  | 0x04, Tlm.Payload.Read ->
      put p.en;
      ok ()
  | 0x04, Tlm.Payload.Write ->
      p.en <- get ();
      update p;
      ok ()
  | 0x08, Tlm.Payload.Read ->
      put (claim p);
      ok ()
  | 0x08, Tlm.Payload.Write ->
      complete p (get ());
      ok ()
  | 0x10, Tlm.Payload.Read ->
      put p.threshold;
      ok ()
  | 0x10, Tlm.Payload.Write ->
      p.threshold <- get () land prio_max;
      update p;
      ok ()
  | addr, cmd when addr >= 0x80 && addr < 0x80 + (32 * 4) && addr land 3 = 0 ->
      let src = (addr - 0x80) / 4 in
      if src = 0 then pay.Tlm.Payload.resp <- Tlm.Payload.Address_error
      else begin
        (match cmd with
        | Tlm.Payload.Read -> put p.prio.(src)
        | Tlm.Payload.Write ->
            p.prio.(src) <- get () land prio_max;
            update p);
        ok ()
      end
  | _, _ -> pay.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay p.latency

let socket p = Tlm.Socket.target ~name:p.name (transport p)

let save p w =
  let open Snapshot.Codec in
  put_u32 w p.pend;
  put_u32 w p.en;
  (* v2 additions. *)
  put_u32 w p.claimed;
  put_u32 w p.level;
  put_u8 w p.threshold;
  for src = 1 to 31 do
    put_u8 w p.prio.(src)
  done

let load p r =
  let open Snapshot.Codec in
  p.pend <- get_u32 r;
  p.en <- get_u32 r;
  if reader_version r >= 2 then begin
    p.claimed <- get_u32 r;
    p.level <- get_u32 r;
    p.threshold <- get_u8 r;
    for src = 1 to 31 do
      p.prio.(src) <- get_u8 r
    done
  end
  else begin
    (* v1 snapshots predate arbitration state: reset defaults. *)
    p.claimed <- 0;
    p.level <- 0;
    p.threshold <- 0;
    Array.fill p.prio 0 32 default_prio
  end
