let ram_base = 0x8000_0000
let clint_base = 0x0200_0000
let plic_base = 0x0c00_0000
let uart_base = 0x1000_0000
let gpio_base = 0x4000_0000
let sensor_base = 0x5000_0000
let can_base = 0x5100_0000
let aes_base = 0x6000_0000
let dma_base = 0x7000_0000
let wdt_base = 0x7100_0000
let irq_uart = 1
let irq_sensor = 2
let irq_can = 3
let irq_dma = 4
let irq_aes = 5
let irq_gpio = 6

type cpu = {
  cpu_step : unit -> unit;
  cpu_spawn : stop_on_halt:bool -> unit;
  cpu_set_max : int -> unit;
  cpu_instret : unit -> int;
  cpu_exit : unit -> Rv32.Core.exit_reason;
  cpu_pc : unit -> int;
  cpu_set_pc : int -> unit;
  cpu_get_reg : int -> int;
  cpu_get_reg_tag : int -> Dift.Lattice.tag;
  cpu_set_reg : int -> int -> unit;
  cpu_set_irq : bit:int -> on:bool -> unit;
  cpu_set_trace : (int -> Rv32.Insn.t -> unit) option -> unit;
  cpu_set_trap_hook : (Rv32.Core.trap_event -> unit) option -> unit;
  cpu_set_merge_hook : (int -> int -> int -> unit) option -> unit;
  cpu_csr : Rv32.Csr.t;
  cpu_priv : unit -> int;
  cpu_flush_code : addr:int -> len:int -> unit;
  cpu_blocks_built : unit -> int;
  cpu_superblocks_built : unit -> int;
  cpu_chain_hits : unit -> int;
  cpu_ic_hits : unit -> int;
  cpu_ic_misses : unit -> int;
  cpu_fast_retired : unit -> int;
  cpu_set_pause_at : int -> unit;
  cpu_paused : unit -> bool;
  cpu_clear_paused : unit -> unit;
  cpu_unhalt : unit -> unit;
  cpu_save : Snapshot.Codec.writer -> unit;
  cpu_load : Snapshot.Codec.reader -> unit;
}

type t = {
  env : Env.t;
  kernel : Sysc.Kernel.t;
  router : Tlm.Router.t;
  memory : Memory.t;
  uart : Uart.t;
  gpio : Gpio.t;
  sensor : Sensor.t;
  dma : Dma.t;
  aes : Aes_periph.t;
  can : Can.t;
  clint : Clint.t;
  plic : Plic.t;
  watchdog : Watchdog.t;
  cpu : cpu;
  tracking : bool;
  trace : Trace.Tracer.t option;
}

(* Wrap a Core functor instance behind the mode-independent record. *)
module Wrap (C : Rv32.Core.S) = struct
  let make core =
    {
      cpu_step = (fun () -> C.step core);
      cpu_spawn =
        (fun ~stop_on_halt -> C.spawn_thread ~stop_kernel_on_halt:stop_on_halt core);
      cpu_set_max = (fun n -> C.set_max_instructions core n);
      cpu_instret = (fun () -> C.instret core);
      cpu_exit = (fun () -> C.exit_reason core);
      cpu_pc = (fun () -> C.pc core);
      cpu_set_pc = (fun v -> C.set_pc core v);
      cpu_get_reg = (fun r -> C.get_reg core r);
      cpu_get_reg_tag = (fun r -> C.get_reg_tag core r);
      cpu_set_reg = (fun r v -> C.set_reg core r v);
      cpu_set_irq = (fun ~bit ~on -> C.set_irq core ~bit on);
      cpu_set_trace = (fun fn -> C.set_trace core fn);
      cpu_set_trap_hook = (fun fn -> C.set_trap_hook core fn);
      cpu_set_merge_hook = (fun fn -> C.set_merge_hook core fn);
      cpu_csr = C.csr core;
      cpu_priv = (fun () -> C.priv core);
      cpu_flush_code = (fun ~addr ~len -> C.flush_code core ~addr ~len);
      cpu_blocks_built = (fun () -> C.blocks_built core);
      cpu_superblocks_built = (fun () -> C.superblocks_built core);
      cpu_chain_hits = (fun () -> C.chain_hits core);
      cpu_ic_hits = (fun () -> C.ic_hits core);
      cpu_ic_misses = (fun () -> C.ic_misses core);
      cpu_fast_retired = (fun () -> C.fast_retired core);
      cpu_set_pause_at = (fun n -> C.set_pause_at core n);
      cpu_paused = (fun () -> C.paused core);
      cpu_clear_paused = (fun () -> C.clear_paused core);
      cpu_unhalt = (fun () -> C.unhalt core);
      cpu_save = (fun w -> C.save core w);
      cpu_load = (fun r -> C.load core r);
    }
end

module Wrap_vp = Wrap (Rv32.Core.Vp)
module Wrap_dift = Wrap (Rv32.Core.Vp_dift)

let create ~policy ~monitor ?(tracking = true) ?(ram_size = 1 lsl 20)
    ?(dmi = true) ?(quantum = 1000) ?(block_cache = true) ?(fast_path = true)
    ?(engine = Rv32.Core.Threaded_superblock) ?(strict_align = false)
    ?sensor_period
    ?aes_out_tag
    ?aes_in_clearance ?wdt_clearance ?tracer () =
  let kernel = Sysc.Kernel.create () in
  let env =
    Env.create
      ?prov:(Option.map (fun t -> t.Trace.Tracer.prov) tracer)
      kernel policy monitor
  in
  let router = Tlm.Router.create ~name:"bus" () in
  let memory = Memory.create env ~name:"ram" ~size:ram_size in
  let uart = Uart.create env ~name:"uart" ~port:"uart" in
  let gpio = Gpio.create env ~name:"gpio" ~port:"gpio" in
  let sensor = Sensor.create env ~name:"sensor" ?period:sensor_period () in
  let dma = Dma.create env ~name:"dma" in
  let aes_out_tag = match aes_out_tag with Some t -> t | None -> env.Env.pub in
  let aes =
    Aes_periph.create env ~name:"aes" ~out_tag:aes_out_tag
      ?in_clearance:aes_in_clearance ()
  in
  let can = Can.create env ~name:"can" ~port:"can" in
  let clint = Clint.create env ~name:"clint" () in
  let plic = Plic.create env ~name:"plic" in
  let watchdog = Watchdog.create env ~name:"wdt" ?clearance:wdt_clearance () in
  Tlm.Router.map router ~lo:clint_base ~hi:(clint_base + 0xffff) (Clint.socket clint);
  Tlm.Router.map router ~lo:plic_base ~hi:(plic_base + 0xfff) (Plic.socket plic);
  Tlm.Router.map router ~lo:uart_base ~hi:(uart_base + 0xff) (Uart.socket uart);
  Tlm.Router.map router ~lo:gpio_base ~hi:(gpio_base + 0xff) (Gpio.socket gpio);
  Tlm.Router.map router ~lo:sensor_base ~hi:(sensor_base + 0xff)
    (Sensor.socket sensor);
  Tlm.Router.map router ~lo:can_base ~hi:(can_base + 0xff) (Can.socket can);
  Tlm.Router.map router ~lo:aes_base ~hi:(aes_base + 0xff) (Aes_periph.socket aes);
  Tlm.Router.map router ~lo:dma_base ~hi:(dma_base + 0xff) (Dma.socket dma);
  Tlm.Router.map router ~lo:wdt_base ~hi:(wdt_base + 0xff) (Watchdog.socket watchdog);
  Tlm.Router.map router ~lo:ram_base ~hi:(ram_base + ram_size - 1)
    (Memory.socket memory);
  let bus =
    Rv32.Bus_if.create ~lattice:env.Env.lat
      ~default_tag:policy.Dift.Policy.default_tag ~tracking ~name:"cpu.bus"
  in
  Tlm.Socket.bind (Rv32.Bus_if.socket bus) (Tlm.Router.target_socket router);
  if dmi then
    Rv32.Bus_if.set_dmi bus ~base:ram_base ~data:(Memory.data memory)
      ~tags:(Memory.tags memory);
  Tlm.Socket.bind (Dma.initiator dma) (Tlm.Router.target_socket router);
  let cpu =
    if tracking then
      Wrap_dift.make
        (Rv32.Core.Vp_dift.create ~kernel ~bus ~policy ~monitor ~quantum
           ~block_cache ~fast_path ~engine ~strict_align ~pc:ram_base ())
    else
      Wrap_vp.make
        (Rv32.Core.Vp.create ~kernel ~bus ~policy ~monitor ~quantum
           ~block_cache ~fast_path ~engine ~strict_align ~pc:ram_base ())
  in
  (* Writes landing in RAM behind the CPU's back (DMA over TLM, the loader,
     direct test pokes, reclassification) invalidate decoded blocks. *)
  Memory.set_write_hook memory (fun off len ->
      cpu.cpu_flush_code ~addr:(ram_base + off) ~len);
  Clint.set_timer_irq_callback clint (fun on ->
      cpu.cpu_set_irq ~bit:Rv32.Csr.bit_mti ~on);
  Clint.set_soft_irq_callback clint (fun on ->
      cpu.cpu_set_irq ~bit:Rv32.Csr.bit_msi ~on);
  Plic.set_ext_irq_callback plic (fun on ->
      cpu.cpu_set_irq ~bit:Rv32.Csr.bit_mei ~on);
  (* The UART's rx interrupt is a level: it stays asserted while data sits
     unread in the fifo, so an ISR that claims but never drains (or never
     claims at all) keeps the source live through the PLIC's
     complete-repend path. *)
  Uart.set_irq_callback uart (fun on -> Plic.set_level plic irq_uart on);
  Gpio.set_irq_callback gpio (fun () -> Plic.trigger plic irq_gpio);
  Sensor.set_irq_callback sensor (fun () -> Plic.trigger plic irq_sensor);
  Can.set_irq_callback can (fun () -> Plic.trigger plic irq_can);
  Dma.set_irq_callback dma (fun () -> Plic.trigger plic irq_dma);
  Aes_periph.set_irq_callback aes (fun () -> Plic.trigger plic irq_aes);
  Clint.start clint;
  Sensor.start sensor;
  Watchdog.start watchdog;
  Dma.start dma;
  Aes_periph.start aes;
  let cpu =
    match tracer with
    | None -> cpu
    | Some tr ->
        Trace.Tracer.set_disasm tr Rv32.Disasm.word;
        let pub = env.Env.pub in
        let lat = env.Env.lat in
        let now () = Sysc.Kernel.now kernel in
        (* Taint propagation: every genuine LUB join the core or the bus
           computes becomes a provenance merge edge. *)
        let on_merge a b r = Trace.Provenance.record_merge tr.Trace.Tracer.prov ~a ~b ~result:r in
        cpu.cpu_set_merge_hook (Some on_merge);
        Rv32.Bus_if.set_merge_hook bus (Some on_merge);
        (* Bus traffic: one event per routed transaction (CPU MMIO and DMA
           alike), tagged with the LUB of the payload's byte tags. *)
        Tlm.Router.set_observer router
          (Some
             (fun p target ->
               let len = Tlm.Payload.length p in
               let tag = ref (Tlm.Payload.get_tag p 0) in
               for i = 1 to len - 1 do
                 tag := Dift.Lattice.lub lat !tag (Tlm.Payload.get_tag p i)
               done;
               Trace.Tracer.record_tlm tr ~time:(now ())
                 ~write:(p.Tlm.Payload.cmd = Tlm.Payload.Write)
                 ~addr:p.Tlm.Payload.addr ~len ~tag:!tag ~target));
        (* Monitor events: violations and declassifications enter the event
           stream in order; declassifications also become provenance edges. *)
        Dift.Monitor.set_on_event monitor
          (Some
             (fun ev ->
               let time = now () in
               match ev with
               | Dift.Monitor.Violated v ->
                   Trace.Tracer.record_violation tr ~time
                     ~pc:(Option.value v.Dift.Violation.pc ~default:(-1))
                     ~tag:v.Dift.Violation.data_tag
                     ~what:
                       (Dift.Violation.kind_name v.Dift.Violation.kind
                       ^
                       match v.Dift.Violation.detail with
                       | "" -> ""
                       | d -> ": " ^ d)
               | Dift.Monitor.Declassified { where; from_tag; to_tag } ->
                   Trace.Tracer.record_declass tr ~time ~from_tag ~to_tag ~where;
                   Trace.Provenance.record_declass tr.Trace.Tracer.prov
                     ~from:from_tag ~result:to_tag
               | Dift.Monitor.Note s -> Trace.Tracer.record_note tr ~time s));
        (* Retired instructions: the internal ring push composes with any
           externally installed per-instruction hook (coverage, --echo-insns)
           through the returned record's [cpu_set_trace]. *)
        let data = Memory.data memory in
        let mem_size = Memory.size memory in
        let internal_hook pc insn =
          let off = pc - ram_base in
          let word =
            if off >= 0 && off + 3 < mem_size then
              Int32.to_int (Bytes.get_int32_le data off) land 0xffffffff
            else 0
          in
          let t1 = cpu.cpu_get_reg_tag (Rv32.Insn.rs1 insn) in
          let t2 = cpu.cpu_get_reg_tag (Rv32.Insn.rs2 insn) in
          let tag = Dift.Lattice.lub lat t1 t2 in
          Trace.Tracer.record_insn tr ~time:(now ()) ~pc ~word ~tag
            ~tainted:(tag <> pub)
        in
        let external_hook = ref None in
        let install = cpu.cpu_set_trace in
        let compose () =
          match !external_hook with
          | None -> Some internal_hook
          | Some f ->
              Some
                (fun pc insn ->
                  internal_hook pc insn;
                  f pc insn)
        in
        install (compose ());
        (* Trap entries and mrets enter the event stream (the forensic
           window then shows "trap" lines around a violation raised inside
           a handler). Same composition contract as the trace hook. *)
        let internal_trap ev =
          match ev with
          | Rv32.Core.Trap_enter { cause; epc; tval = _; handler } ->
              Trace.Tracer.record_trap tr ~time:(now ()) ~addr:epc ~code:cause
                ~text:
                  (Printf.sprintf "enter %s -> 0x%08x"
                     (Rv32.Csr.cause_name cause) handler)
          | Rv32.Core.Trap_return { target; to_priv } ->
              Trace.Tracer.record_trap tr ~time:(now ()) ~addr:target
                ~code:to_priv
                ~text:
                  (Printf.sprintf "mret -> 0x%08x (priv %s)" target
                     (if to_priv = Rv32.Csr.priv_m then "M" else "U"))
        in
        let external_trap = ref None in
        let install_trap = cpu.cpu_set_trap_hook in
        let compose_trap () =
          match !external_trap with
          | None -> Some internal_trap
          | Some f ->
              Some
                (fun ev ->
                  internal_trap ev;
                  f ev)
        in
        install_trap (compose_trap ());
        {
          cpu with
          cpu_set_trace =
            (fun fn ->
              external_hook := fn;
              install (compose ()));
          cpu_set_trap_hook =
            (fun fn ->
              external_trap := fn;
              install_trap (compose_trap ()));
        }
  in
  {
    env;
    kernel;
    router;
    memory;
    uart;
    gpio;
    sensor;
    dma;
    aes;
    can;
    clint;
    plic;
    watchdog;
    cpu;
    tracking;
    trace = tracer;
  }

let load_image soc img =
  let org = img.Rv32_asm.Image.org in
  let len = Bytes.length img.Rv32_asm.Image.code in
  if org < ram_base || org + len > ram_base + Memory.size soc.memory then
    invalid_arg "Soc.load_image: image does not fit in RAM";
  Memory.load soc.memory ~off:(org - ram_base) img.Rv32_asm.Image.code;
  (* Classification: assign initial security classes per policy region.
     Regions are applied in reverse declaration order so that, as in
     {!Dift.Policy.classify_at}, the first (most specific) matching region
     wins. *)
  let policy = soc.env.Env.policy in
  List.iter
    (fun r ->
      let lo = max r.Dift.Policy.lo ram_base in
      let hi = min r.Dift.Policy.hi (ram_base + Memory.size soc.memory - 1) in
      if lo <= hi then
        Memory.fill_tags soc.memory ~off:(lo - ram_base) ~len:(hi - lo + 1)
          r.Dift.Policy.r_tag)
    (List.rev policy.Dift.Policy.classification);
  (* Each classified region is a taint introduction in its own right (the
     PIN region of the immobilizer case study, say): register it so a
     violating tag can be walked back to the policy that seeded it. *)
  List.iter
    (fun r ->
      if r.Dift.Policy.r_tag <> soc.env.Env.pub then
        Env.taint_source soc.env
          ~origin:("policy-region:" ^ r.Dift.Policy.r_name)
          ~addr:r.Dift.Policy.lo r.Dift.Policy.r_tag)
    policy.Dift.Policy.classification;
  let entry =
    match Rv32_asm.Image.symbol_opt img "_start" with
    | Some a -> a
    | None -> org
  in
  soc.cpu.cpu_set_pc entry

let seed_taint soc ~origin ~addr ~len tag =
  if addr < ram_base || addr + len > ram_base + Memory.size soc.memory then
    invalid_arg "Soc.seed_taint: range outside RAM";
  Memory.fill_tags soc.memory ~off:(addr - ram_base) ~len tag;
  Env.taint_source soc.env ~origin ~addr tag

let start ?(stop_on_halt = true) soc = soc.cpu.cpu_spawn ~stop_on_halt
let run ?until soc = Sysc.Kernel.run ?until soc.kernel

let run_for_instructions soc n =
  soc.cpu.cpu_set_max n;
  start soc;
  run soc;
  soc.cpu.cpu_exit ()

(* --- Checkpoint / restore ---------------------------------------------- *)

let pause_at soc n = soc.cpu.cpu_set_pause_at n
let paused soc = soc.cpu.cpu_paused ()

let resume ?until soc =
  soc.cpu.cpu_clear_paused ();
  run ?until soc

(* Section order is fixed: identical state must yield identical bytes. *)
let save soc =
  let open Snapshot.Codec in
  if not (paused soc || soc.cpu.cpu_exit () <> Rv32.Core.Running) then
    invalid_arg "Soc.save: CPU is neither paused nor halted";
  (* Drain the current instant: the pause stopped the scheduler mid-phase,
     so processes runnable at this time (peripheral engines, delta
     notifications) still have to settle before the kernel state reduces
     to (now, delta count, pending timed notifications). *)
  Sysc.Kernel.run ~until:(Sysc.Kernel.now soc.kernel) soc.kernel;
  if not (Sysc.Kernel.quiescent soc.kernel) then
    invalid_arg "Soc.save: kernel not quiescent after draining the instant";
  let section name f =
    let w = writer () in
    f w;
    (name, contents w)
  in
  Container.encode
    [
      section "kernel" (fun w ->
          put_i64 w (Sysc.Kernel.now soc.kernel);
          put_i64 w (Sysc.Kernel.delta_count soc.kernel);
          put_list w
            (fun w (name, at) ->
              put_string w name;
              put_i64 w at)
            (Sysc.Kernel.pending_timed soc.kernel));
      section "cpu" soc.cpu.cpu_save;
      section "mem" (Memory.save soc.memory);
      section "uart" (Uart.save soc.uart);
      section "gpio" (Gpio.save soc.gpio);
      section "sensor" (Sensor.save soc.sensor);
      section "dma" (Dma.save soc.dma);
      section "aes" (Aes_periph.save soc.aes);
      section "can" (Can.save soc.can);
      section "clint" (Clint.save soc.clint);
      section "plic" (Plic.save soc.plic);
      section "wdt" (Watchdog.save soc.watchdog);
    ]

(* --- Warm start --------------------------------------------------------

   The campaign engine's per-task setup shortcut (docs/parallel.md): the
   parent builds one SoC, brings it to the post-reset settlement point
   without retiring a single instruction (instruction budget 0: the CPU
   thread halts with Insn_limit at instret 0 before its first fetch, then
   the save below drains the instant so every peripheral's time-0 work is
   folded into the serialised state), and hands the resulting blob to the
   workers. Each worker restores the blob into a freshly created SoC of
   the same configuration *before* loading its task's firmware image —
   replacing the construction-time settlement with a codec decode. *)

let boot_snapshot soc =
  if soc.cpu.cpu_instret () <> 0 then
    invalid_arg "Soc.boot_snapshot: SoC has already executed instructions";
  soc.cpu.cpu_set_max 0;
  start soc;
  run soc;
  save soc

let restore soc data =
  let open Snapshot.Codec in
  let version, sections = Container.decode_versioned data in
  let rd name =
    match List.assoc_opt name sections with
    | Some payload ->
        let r = reader payload in
        (* Stamp the container version so per-section loaders can default
           fields that older snapshots predate. *)
        set_reader_version r version;
        r
    | None -> raise (Corrupt (Printf.sprintf "missing section %S" name))
  in
  let sec name loadfn =
    let r = rd name in
    loadfn r;
    expect_end r
  in
  (* The kernel goes first: it cancels the initial notifications armed
     during construction and re-arms the saved pending set, so the
     peripheral loads below see the clock already at the snapshot time. *)
  sec "kernel" (fun r ->
      let now = get_i64 r in
      let deltas = get_i64 r in
      let notifications =
        get_list r (fun r ->
            let name = get_string r in
            let at = get_i64 r in
            (name, at))
      in
      Sysc.Kernel.restore soc.kernel ~now ~deltas ~notifications);
  sec "cpu" soc.cpu.cpu_load;
  sec "mem" (Memory.restore soc.memory);
  sec "uart" (Uart.load soc.uart);
  sec "gpio" (Gpio.load soc.gpio);
  sec "sensor" (Sensor.load soc.sensor);
  sec "dma" (Dma.load soc.dma);
  sec "aes" (Aes_periph.load soc.aes);
  sec "can" (Can.load soc.can);
  sec "clint" (Clint.load soc.clint);
  sec "plic" (Plic.load soc.plic);
  sec "wdt" (Watchdog.load soc.watchdog)

let warm_start soc data =
  restore soc data;
  (* The blob was taken halted-at-0 (Insn_limit); the worker's core must
     run for real. [restore] also marked the core paused iff it was parked
     on a sync (it was not — no instruction retired, no sync pending), so
     only the halt needs clearing. *)
  soc.cpu.cpu_unhalt ();
  soc.cpu.cpu_clear_paused ()
