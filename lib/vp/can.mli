(** CAN-like mailbox peripheral: 8-byte transmit and receive frames over a
    host-visible channel. This is the immobilizer's link to the engine ECU;
    the transmit path is an output interface whose clearance is checked.

    Register map:
    - [0x00..0x07] TX_DATA (write);
    - [0x08] TX_CTRL: writing 1 sends the frame to the host callback;
    - [0x10..0x17] RX_DATA (read): the current received frame;
    - [0x18] RX_STATUS (read): number of queued frames (including the
      current one); RX_CTRL (write 1): pop the next queued frame into
      RX_DATA. *)

type t

val create : Env.t -> name:string -> port:string -> t
(** [port] names the output interface in the policy's clearance table. *)

val socket : t -> Tlm.Socket.target

val set_irq_callback : t -> (unit -> unit) -> unit
(** Frame-received interrupt. *)

(** {1 Host side (the remote ECU model)} *)

val set_tx_callback : t -> (string -> unit) -> unit
(** Called with each 8-byte frame the firmware transmits. *)

val push_rx_frame : t -> ?tag:Dift.Lattice.tag -> string -> unit
(** Enqueue an 8-byte frame (shorter frames are zero-padded); bytes are
    classified with [tag] (default: the policy default — untrusted input). *)

val tx_frames : t -> string list
(** All frames transmitted so far, oldest first. *)

val rx_pending : t -> int

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
