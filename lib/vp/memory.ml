type t = {
  name : string;
  data : Bytes.t;
  tags : Bytes.t;
  latency : Sysc.Time.t;
  (* Fired with (offset, len) after any mutation of data or tags that does
     not go through the CPU's DMI path: TLM writes (DMA, peripherals), the
     loader, and the direct write_*/fill_tags accessors. The SoC routes it
     to the core's basic-block invalidation. *)
  mutable on_write : int -> int -> unit;
}

let create env ~name ~size =
  {
    name;
    data = Bytes.make size '\000';
    tags = Bytes.make size (Char.chr env.Env.pub);
    latency = Sysc.Time.ns 5;
    on_write = (fun _ _ -> ());
  }

let size m = Bytes.length m.data
let data m = m.data
let tags m = m.tags
let set_write_hook m f = m.on_write <- f
let read_byte m off = Bytes.get_uint8 m.data off

let write_byte m off v =
  Bytes.set_uint8 m.data off (v land 0xff);
  m.on_write off 1

let read_tag m off = Char.code (Bytes.get m.tags off)

let write_tag m off t =
  Bytes.set m.tags off (Char.chr t);
  m.on_write off 1

let read_word m off = Int32.to_int (Bytes.get_int32_le m.data off) land 0xffffffff

let write_word m off v =
  Bytes.set_int32_le m.data off (Int32.of_int v);
  m.on_write off 4

let fill_tags m ~off ~len t =
  Bytes.fill m.tags off len (Char.chr t);
  if len > 0 then m.on_write off len

let load m ~off src =
  let len = Bytes.length src in
  Bytes.blit src 0 m.data off len;
  if len > 0 then m.on_write off len

let tainted_regions m ~baseline =
  let n = size m in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    let t = read_tag m !i in
    if t <> baseline then begin
      let start = !i in
      while !i < n && read_tag m !i = t do
        incr i
      done;
      out := (start, !i - 1, t) :: !out
    end
    else incr i
  done;
  List.rev !out

let transport m (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let off = p.Tlm.Payload.addr in
  if off < 0 || off + len > size m then begin
    p.Tlm.Payload.resp <- Tlm.Payload.Address_error;
    delay
  end
  else begin
    (match p.Tlm.Payload.cmd with
    | Tlm.Payload.Read ->
        Bytes.blit m.data off p.Tlm.Payload.data 0 len;
        Bytes.blit m.tags off p.Tlm.Payload.tags 0 len
    | Tlm.Payload.Write ->
        Bytes.blit p.Tlm.Payload.data 0 m.data off len;
        Bytes.blit p.Tlm.Payload.tags 0 m.tags off len;
        if len > 0 then m.on_write off len);
    p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
    Sysc.Time.add delay m.latency
  end

let socket m = Tlm.Socket.target ~name:m.name (transport m)

let save m w =
  Snapshot.Codec.put_bytes_rle w m.data;
  Snapshot.Codec.put_bytes_rle w m.tags

(* [load] is taken by the image loader above. *)
let restore m r =
  Snapshot.Codec.get_bytes_rle_into r m.data;
  Snapshot.Codec.get_bytes_rle_into r m.tags;
  (* Everything may have changed: let the write hook (basic-block cache
     invalidation) see the full range. *)
  if size m > 0 then m.on_write 0 (size m)
