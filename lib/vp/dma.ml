type t = {
  env : Env.t;
  name : string;
  init : Tlm.Socket.initiator;
  mutable src : int;
  mutable dst : int;
  mutable len : int;
  mutable busy : bool;
  (* A transfer's data movement happens at start time; [in_flight] is true
     while the modelled transfer latency runs down (completion, IRQ and
     [busy] clearing happen when [done_ev] fires). Both the flag and the
     pending [done_ev] notification survive a snapshot. *)
  mutable in_flight : bool;
  mutable done_count : int;
  mutable irq : unit -> unit;
  start_ev : Sysc.Kernel.event;
  done_ev : Sysc.Kernel.event;
  shuttle : Tlm.Payload.t;  (* one-byte payload reused for the copy loop *)
  latency : Sysc.Time.t;
  byte_time : Sysc.Time.t;
}

let create env ~name =
  {
    env;
    name;
    init = Tlm.Socket.initiator ~name:(name ^ ".init");
    src = 0;
    dst = 0;
    len = 0;
    busy = false;
    in_flight = false;
    done_count = 0;
    irq = (fun () -> ());
    start_ev = Sysc.Kernel.create_event env.Env.kernel (name ^ ".start");
    done_ev = Sysc.Kernel.create_event env.Env.kernel (name ^ ".done");
    shuttle = Tlm.Payload.create ~len:1 ~default_tag:env.Env.pub ();
    latency = Sysc.Time.ns 20;
    byte_time = Sysc.Time.ns 10;
  }

let initiator d = d.init
let set_irq_callback d fn = d.irq <- fn
let busy d = d.busy
let transfers_completed d = d.done_count

let copy_byte d ~from ~into =
  let p = d.shuttle in
  p.Tlm.Payload.cmd <- Tlm.Payload.Read;
  p.Tlm.Payload.addr <- from;
  p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
  ignore (Tlm.Socket.transport d.init p Sysc.Time.zero);
  if Tlm.Payload.ok p then begin
    Env.taint_via d.env ~channel:d.name (Tlm.Payload.get_tag p 0);
    Env.check_store d.env ~addr:into
      ~data_tag:(Tlm.Payload.get_tag p 0)
      ~who:d.name;
    p.Tlm.Payload.cmd <- Tlm.Payload.Write;
    p.Tlm.Payload.addr <- into;
    ignore (Tlm.Socket.transport d.init p Sysc.Time.zero)
  end

(* memmove semantics: when the destination window starts inside the source
   window, a low-to-high byte copy would re-read bytes it has already
   overwritten; copy high-to-low instead. Tags ride with their bytes in
   both directions ([copy_byte] shuttles data byte and tag together). *)
let copy_all d =
  if d.dst > d.src && d.dst < d.src + d.len then
    for i = d.len - 1 downto 0 do
      copy_byte d ~from:(d.src + i) ~into:(d.dst + i)
    done
  else
    for i = 0 to d.len - 1 do
      copy_byte d ~from:(d.src + i) ~into:(d.dst + i)
    done

let start d =
  Sysc.Kernel.spawn d.env.Env.kernel ~name:(d.name ^ ".engine") (fun () ->
      while not (Sysc.Kernel.stopped d.env.Env.kernel) do
        if d.in_flight then begin
          Sysc.Kernel.wait_event d.done_ev;
          d.busy <- false;
          d.in_flight <- false;
          d.done_count <- d.done_count + 1;
          d.irq ()
        end
        else begin
          Sysc.Kernel.wait_event d.start_ev;
          if d.busy then begin
            copy_all d;
            d.in_flight <- true;
            Sysc.Kernel.notify_after d.done_ev (d.len * d.byte_time)
          end
        end
      done)

let transport d (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let get () =
    let v = ref 0 in
    for i = len - 1 downto 0 do
      v := (!v lsl 8) lor Tlm.Payload.get_byte p i
    done;
    !v
  in
  let put v =
    for i = 0 to len - 1 do
      Tlm.Payload.set_byte p i ((v lsr (8 * i)) land 0xff)
    done;
    Tlm.Payload.set_all_tags p d.env.Env.pub
  in
  p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
  (match (p.Tlm.Payload.addr, p.Tlm.Payload.cmd) with
  | 0x00, Tlm.Payload.Read -> put d.src
  | 0x00, Tlm.Payload.Write -> d.src <- get ()
  | 0x04, Tlm.Payload.Read -> put d.dst
  | 0x04, Tlm.Payload.Write -> d.dst <- get ()
  | 0x08, Tlm.Payload.Read -> put d.len
  | 0x08, Tlm.Payload.Write -> d.len <- get ()
  | 0x0c, Tlm.Payload.Read -> put (if d.busy then 1 else 0)
  | 0x0c, Tlm.Payload.Write ->
      if get () land 1 <> 0 && not d.busy then begin
        d.busy <- true;
        Sysc.Kernel.notify d.start_ev
      end
  | _, _ -> p.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay d.latency

let socket d = Tlm.Socket.target ~name:d.name (transport d)

let save d w =
  let open Snapshot.Codec in
  put_u32 w d.src;
  put_u32 w d.dst;
  put_u32 w d.len;
  put_bool w d.busy;
  put_bool w d.in_flight;
  put_i64 w d.done_count

let load d r =
  let open Snapshot.Codec in
  d.src <- get_u32 r;
  d.dst <- get_u32 r;
  d.len <- get_u32 r;
  d.busy <- get_bool r;
  d.in_flight <- get_bool r;
  d.done_count <- get_i64 r
