type t = {
  env : Env.t;
  name : string;
  out_tag : int;
  in_clearance : int option;
  latency : Sysc.Time.t;
  key : Bytes.t;
  key_tags : Bytes.t;
  din : Bytes.t;
  din_tags : Bytes.t;
  dout : Bytes.t;
  mutable busy : bool;
  (* [in_flight] spans the modelled encryption latency; the actual
     encryption (and the declassification it implies) happens when
     [done_ev] fires, so a snapshot taken mid-operation re-runs it from
     the restored key/din buffers rather than losing it. *)
  mutable in_flight : bool;
  mutable count : int;
  mutable irq : unit -> unit;
  start_ev : Sysc.Kernel.event;
  done_ev : Sysc.Kernel.event;
}

let create env ~name ~out_tag ?in_clearance ?(latency = Sysc.Time.us 2) () =
  {
    env;
    name;
    out_tag;
    in_clearance;
    latency;
    key = Bytes.make 16 '\000';
    key_tags = Bytes.make 16 (Char.chr env.Env.pub);
    din = Bytes.make 16 '\000';
    din_tags = Bytes.make 16 (Char.chr env.Env.pub);
    dout = Bytes.make 16 '\000';
    busy = false;
    in_flight = false;
    count = 0;
    irq = (fun () -> ());
    start_ev = Sysc.Kernel.create_event env.Env.kernel (name ^ ".start");
    done_ev = Sysc.Kernel.create_event env.Env.kernel (name ^ ".done");
  }

let set_irq_callback a fn = a.irq <- fn
let busy a = a.busy
let encryptions a = a.count

let check_in a ~tag ~detail =
  match a.in_clearance with
  | None -> ()
  | Some required ->
      Dift.Monitor.count_check a.env.Env.monitor;
      if not (Dift.Lattice.allowed_flow a.env.Env.lat tag required) then
        Dift.Monitor.violation a.env.Env.monitor
          {
            Dift.Violation.kind = Dift.Violation.Custom (a.name ^ "-input");
            data_tag = tag;
            required_tag = required;
            pc = None;
            detail;
          }

let encrypt a =
  let key = Bytes.to_string a.key in
  let pt = Bytes.to_string a.din in
  let ct = Crypto.Aes128.encrypt_block (Crypto.Aes128.expand key) pt in
  Bytes.blit_string ct 0 a.dout 0 16;
  (* Declassification: the ciphertext no longer carries the key's or
     plaintext's class — only trusted hardware may do this. *)
  let from_tag = ref (Char.code (Bytes.get a.key_tags 0)) in
  Bytes.iter
    (fun c -> from_tag := Dift.Lattice.lub a.env.Env.lat !from_tag (Char.code c))
    a.din_tags;
  ignore (Env.declassify a.env ~where:a.name ~from_tag:!from_tag a.out_tag);
  (* The ciphertext's class is introduced here, whatever went in. *)
  Env.taint_source a.env ~origin:a.name a.out_tag;
  Env.taint_via a.env ~channel:a.name !from_tag;
  a.count <- a.count + 1

let start a =
  Sysc.Kernel.spawn a.env.Env.kernel ~name:(a.name ^ ".engine") (fun () ->
      while not (Sysc.Kernel.stopped a.env.Env.kernel) do
        if a.in_flight then begin
          Sysc.Kernel.wait_event a.done_ev;
          encrypt a;
          a.busy <- false;
          a.in_flight <- false;
          a.irq ()
        end
        else begin
          Sysc.Kernel.wait_event a.start_ev;
          if a.busy then begin
            a.in_flight <- true;
            Sysc.Kernel.notify_after a.done_ev a.latency
          end
        end
      done)

let transport a (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let addr = p.Tlm.Payload.addr in
  p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
  (match p.Tlm.Payload.cmd with
  | Tlm.Payload.Write when addr + len <= 0x10 ->
      for i = 0 to len - 1 do
        let tag = Tlm.Payload.get_tag p i in
        check_in a ~tag ~detail:(Printf.sprintf "key byte %d" (addr + i));
        Bytes.set a.key (addr + i) (Char.chr (Tlm.Payload.get_byte p i));
        Bytes.set a.key_tags (addr + i) (Char.chr tag)
      done
  | Tlm.Payload.Write when addr >= 0x10 && addr + len <= 0x20 ->
      (* Plaintext input is not clearance-checked: the whole point of the
         peripheral is to accept untrusted challenges and classified keys
         and emit declassified ciphertext. *)
      for i = 0 to len - 1 do
        let o = addr + i - 0x10 in
        Bytes.set a.din o (Char.chr (Tlm.Payload.get_byte p i));
        Bytes.set a.din_tags o (Char.chr (Tlm.Payload.get_tag p i))
      done
  | Tlm.Payload.Read when addr >= 0x20 && addr + len <= 0x30 ->
      for i = 0 to len - 1 do
        Tlm.Payload.set_byte p i (Char.code (Bytes.get a.dout (addr + i - 0x20)));
        Tlm.Payload.set_tag p i a.out_tag
      done
  | Tlm.Payload.Write when addr = 0x30 ->
      if Tlm.Payload.get_byte p 0 land 1 <> 0 && not a.busy then begin
        a.busy <- true;
        Sysc.Kernel.notify a.start_ev
      end
  | Tlm.Payload.Read when addr = 0x30 ->
      Tlm.Payload.set_byte p 0 (if a.busy then 1 else 0);
      for i = 1 to len - 1 do
        Tlm.Payload.set_byte p i 0
      done;
      Tlm.Payload.set_all_tags p a.env.Env.pub
  | Tlm.Payload.Read | Tlm.Payload.Write ->
      p.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay (Sysc.Time.ns 50)

let socket a = Tlm.Socket.target ~name:a.name (transport a)

let put_fixed w b = Snapshot.Codec.put_string w (Bytes.to_string b)

let get_fixed r dst =
  let str = Snapshot.Codec.get_string r in
  if String.length str <> Bytes.length dst then
    raise (Snapshot.Codec.Corrupt "aes buffer length");
  Bytes.blit_string str 0 dst 0 (String.length str)

let save a w =
  let open Snapshot.Codec in
  put_fixed w a.key;
  put_fixed w a.key_tags;
  put_fixed w a.din;
  put_fixed w a.din_tags;
  put_fixed w a.dout;
  put_bool w a.busy;
  put_bool w a.in_flight;
  put_i64 w a.count

let load a r =
  let open Snapshot.Codec in
  get_fixed r a.key;
  get_fixed r a.key_tags;
  get_fixed r a.din;
  get_fixed r a.din_tags;
  get_fixed r a.dout;
  a.busy <- get_bool r;
  a.in_flight <- get_bool r;
  a.count <- get_i64 r
