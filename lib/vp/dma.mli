(** DMA controller: copies memory through its own initiator socket, so
    security tags travel with the data — taint flows through DMA exactly as
    the paper's fine-grained HW/SW-interaction argument requires. Stores
    into policy-protected regions are integrity-checked like CPU stores.

    Register map:
    - [0x00] SRC (read/write): source global address;
    - [0x04] DST (read/write): destination global address;
    - [0x08] LEN (read/write): byte count;
    - [0x0c] CTRL: writing 1 starts the transfer; reading returns bit 0 =
      busy.

    Overlapping windows follow memmove semantics: when DST lands inside
    the live SRC window the engine copies high-to-low, so the destination
    receives the original source bytes (and their tags) rather than
    already-overwritten ones. *)

type t

val create : Env.t -> name:string -> t
val socket : t -> Tlm.Socket.target
val initiator : t -> Tlm.Socket.initiator
(** Bind this to the SoC router. *)

val set_irq_callback : t -> (unit -> unit) -> unit
(** Transfer-complete interrupt. *)

val start : t -> unit
(** Spawn the copy engine process. *)

val busy : t -> bool
val transfers_completed : t -> int

val save : t -> Snapshot.Codec.writer -> unit
val load : t -> Snapshot.Codec.reader -> unit
