type t = {
  env : Env.t;
  name : string;
  tick : Sysc.Time.t;
  (* mtimecmp is architecturally a 64-bit register written as two 32-bit
     halves. It is kept as its halves: composing into one OCaml int is
     exactly the historical bug — [hi lsl 32] overflows the 63-bit int for
     hi >= 0x8000_0000 (including the old [max_int] reset value), going
     negative and asserting the timer interrupt spuriously mid-update. *)
  mutable cmp_lo : int;
  mutable cmp_hi : int;
  mutable msip : bool;
  mutable timer_irq : bool -> unit;
  mutable soft_irq : bool -> unit;
  wake : Sysc.Kernel.event;
  latency : Sysc.Time.t;
}

let create env ~name ?(tick = Sysc.Time.us 1) () =
  {
    env;
    name;
    tick;
    (* Reset to all-ones = "never" (the conventional RISC-V idle value,
       and what firmware writes to park the timer). *)
    cmp_lo = 0xffffffff;
    cmp_hi = 0xffffffff;
    msip = false;
    timer_irq = (fun _ -> ());
    soft_irq = (fun _ -> ());
    wake = Sysc.Kernel.create_event env.Env.kernel (name ^ ".wake");
    latency = Sysc.Time.ns 20;
  }

let set_timer_irq_callback c fn = c.timer_irq <- fn
let set_soft_irq_callback c fn = c.soft_irq <- fn

(* mtime never wraps in practice: [Kernel.now] is an OCaml int of
   picoseconds, so mtime <= 2^62 / tick and both halves stay exact under
   [lsr]/[land] (no sign bit is ever set). *)
let mtime c = Sysc.Kernel.now c.env.Env.kernel / c.tick

let disabled c = c.cmp_lo = 0xffffffff && c.cmp_hi = 0xffffffff

(* Unsigned 64-bit mtime >= mtimecmp, compared half by half — glitch-free
   with respect to OCaml int overflow whatever the halves contain. *)
let reached c mt =
  let mt_hi = (mt lsr 32) land 0xffffffff and mt_lo = mt land 0xffffffff in
  mt_hi > c.cmp_hi || (mt_hi = c.cmp_hi && mt_lo >= c.cmp_lo)

(* Far deadlines are chased in bounded hops: a wake fires at most this far
   ahead and [update_timer] re-evaluates, so no deadline is ever silently
   dropped (the old code skipped scheduling beyond 1e9 ticks outright —
   a distant but reachable mtimecmp missed its interrupt) and the
   tick-multiplication below cannot overflow. *)
let far_chunk = Sysc.Time.sec 3600

let update_timer c =
  let mt = mtime c in
  let pending = (not (disabled c)) && reached c mt in
  c.timer_irq pending;
  (* If the deadline is in the future, make sure we wake then. A stale
     wakeup (after mtimecmp moved) is harmless: the condition is simply
     re-evaluated and the wake re-armed. *)
  if (not pending) && not (disabled c) then begin
    let dt =
      if c.cmp_hi >= 0x4000_0000 then far_chunk
        (* >= 2^62 ticks: beyond any representable simulation time. *)
      else begin
        let delta = ((c.cmp_hi lsl 32) lor c.cmp_lo) - mt in
        let max_ticks = far_chunk / c.tick in
        if delta > max_ticks then far_chunk else delta * c.tick
      end
    in
    Sysc.Kernel.notify_after c.wake dt
  end

let start c =
  Sysc.Kernel.spawn c.env.Env.kernel ~name:(c.name ^ ".timer") (fun () ->
      while not (Sysc.Kernel.stopped c.env.Env.kernel) do
        Sysc.Kernel.wait_event c.wake;
        update_timer c
      done)

let reg_read c addr =
  let t = mtime c in
  match addr with
  | 0x0000 -> if c.msip then 1 else 0
  | 0x4000 -> c.cmp_lo
  | 0x4004 -> c.cmp_hi
  | 0xbff8 -> t land 0xffffffff
  | 0xbffc -> (t lsr 32) land 0xffffffff
  | _ -> raise Not_found

let reg_write c addr v =
  match addr with
  | 0x0000 ->
      c.msip <- v land 1 <> 0;
      c.soft_irq c.msip
  | 0x4000 ->
      c.cmp_lo <- v land 0xffffffff;
      update_timer c
  | 0x4004 ->
      c.cmp_hi <- v land 0xffffffff;
      update_timer c
  | 0xbff8 | 0xbffc -> ()
  | _ -> raise Not_found

let transport c (p : Tlm.Payload.t) delay =
  let len = Tlm.Payload.length p in
  let addr = p.Tlm.Payload.addr in
  (try
     (match p.Tlm.Payload.cmd with
     | Tlm.Payload.Read ->
         let v = reg_read c addr in
         for i = 0 to len - 1 do
           Tlm.Payload.set_byte p i ((v lsr (8 * i)) land 0xff)
         done;
         Tlm.Payload.set_all_tags p c.env.Env.pub
     | Tlm.Payload.Write ->
         let v = ref 0 in
         for i = len - 1 downto 0 do
           v := (!v lsl 8) lor Tlm.Payload.get_byte p i
         done;
         reg_write c addr !v);
     p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp
   with Not_found -> p.Tlm.Payload.resp <- Tlm.Payload.Command_error);
  Sysc.Time.add delay c.latency

let socket c = Tlm.Socket.target ~name:c.name (transport c)

let save c w =
  let open Snapshot.Codec in
  put_u32 w c.cmp_lo;
  put_u32 w c.cmp_hi;
  put_bool w c.msip

let load c r =
  let open Snapshot.Codec in
  c.cmp_lo <- get_u32 r;
  c.cmp_hi <- get_u32 r;
  c.msip <- get_bool r
