(** The complete virtual prototype: RV32IM core (VP or VP+ flavour), TLM
    bus, RAM, and the peripheral set of the paper's experiments (UART,
    sensor, DMA, AES, CAN, CLINT, PLIC).

    Memory map:
    {v
      0x0200_0000  CLINT (msip / mtimecmp / mtime)
      0x0c00_0000  PLIC  (pending / enable / claim / threshold / priorities)
      0x1000_0000  UART
      0x4000_0000  GPIO
      0x5000_0000  Sensor (Fig. 4)
      0x5100_0000  CAN mailbox
      0x6000_0000  AES engine
      0x7000_0000  DMA controller
      0x7100_0000  Watchdog timer
      0x8000_0000  RAM (default 1 MiB)
    v}

    PLIC sources: 1 = UART rx, 2 = sensor frame (as in the paper), 3 = CAN
    rx, 4 = DMA complete, 5 = AES complete, 6 = GPIO input edge. *)

val ram_base : int
val clint_base : int
val plic_base : int
val uart_base : int
val gpio_base : int
val sensor_base : int
val can_base : int
val aes_base : int
val dma_base : int
val wdt_base : int

val irq_uart : int
val irq_sensor : int
val irq_can : int
val irq_dma : int
val irq_aes : int
val irq_gpio : int

(** Mode-independent view of the CPU (the two {!Rv32.Core} functor
    instances are wrapped behind closures so a SoC value has one type). *)
type cpu = {
  cpu_step : unit -> unit;
  cpu_spawn : stop_on_halt:bool -> unit;
  cpu_set_max : int -> unit;
  cpu_instret : unit -> int;
  cpu_exit : unit -> Rv32.Core.exit_reason;
  cpu_pc : unit -> int;
  cpu_set_pc : int -> unit;
  cpu_get_reg : int -> int;
  cpu_get_reg_tag : int -> Dift.Lattice.tag;
  cpu_set_reg : int -> int -> unit;
  cpu_set_irq : bit:int -> on:bool -> unit;
  cpu_set_trace : (int -> Rv32.Insn.t -> unit) option -> unit;
      (** On a SoC built with a tracer this composes: the tracer's internal
          ring push always runs first, then the hook installed here. *)
  cpu_set_trap_hook : (Rv32.Core.trap_event -> unit) option -> unit;
      (** Same composition contract as [cpu_set_trace]: with a tracer
          attached the internal trap-event recorder runs first. *)
  cpu_set_merge_hook : (int -> int -> int -> unit) option -> unit;
  cpu_csr : Rv32.Csr.t;
  cpu_priv : unit -> int;
      (** Current privilege level ({!Rv32.Csr.priv_m} / {!Rv32.Csr.priv_u}). *)
  cpu_flush_code : addr:int -> len:int -> unit;
  cpu_blocks_built : unit -> int;
  cpu_superblocks_built : unit -> int;
  cpu_chain_hits : unit -> int;
  cpu_ic_hits : unit -> int;
  cpu_ic_misses : unit -> int;
  cpu_fast_retired : unit -> int;
  cpu_set_pause_at : int -> unit;
  cpu_paused : unit -> bool;
  cpu_clear_paused : unit -> unit;
  cpu_unhalt : unit -> unit;
  cpu_save : Snapshot.Codec.writer -> unit;
  cpu_load : Snapshot.Codec.reader -> unit;
}

type t = {
  env : Env.t;
  kernel : Sysc.Kernel.t;
  router : Tlm.Router.t;
  memory : Memory.t;
  uart : Uart.t;
  gpio : Gpio.t;
  sensor : Sensor.t;
  dma : Dma.t;
  aes : Aes_periph.t;
  can : Can.t;
  clint : Clint.t;
  plic : Plic.t;
  watchdog : Watchdog.t;
  cpu : cpu;
  tracking : bool;
  trace : Trace.Tracer.t option;
}

val create :
  policy:Dift.Policy.t ->
  monitor:Dift.Monitor.t ->
  ?tracking:bool ->
  ?ram_size:int ->
  ?dmi:bool ->
  ?quantum:int ->
  ?block_cache:bool ->
  ?fast_path:bool ->
  ?engine:Rv32.Core.engine ->
  ?strict_align:bool ->
  ?sensor_period:Sysc.Time.t ->
  ?aes_out_tag:Dift.Lattice.tag ->
  ?aes_in_clearance:Dift.Lattice.tag ->
  ?wdt_clearance:Dift.Lattice.tag ->
  ?tracer:Trace.Tracer.t ->
  unit ->
  t
(** Build and wire the platform on a fresh kernel. [tracking] selects VP+
    (default true); [dmi] enables the direct RAM fast path (default true);
    [block_cache] / [fast_path] control the core's decoded basic-block
    cache and untainted fast path (both default true, see
    {!Rv32.Core.S.create}); [engine] selects the core's execution engine
    (default {!Rv32.Core.Threaded_superblock}); [strict_align] traps
    misaligned data
    accesses (default false); [aes_out_tag] defaults to the lattice
    bottom
    (fully declassified ciphertext). RAM writes that bypass the CPU (DMA,
    the loader) are wired to block-cache invalidation. Peripheral processes
    are spawned; the CPU thread is not — call {!start} or
    [t.cpu.cpu_spawn] after loading firmware.

    [tracer] (built over the same lattice as [policy]) attaches the
    tracing subsystem: retired instructions, routed bus transactions and
    monitor events fill the tracer's ring; taint introductions, merges
    and declassifications feed its provenance graph; the RV32
    disassembler is installed for reports. Without it every hook stays
    unset — the simulation is byte-identical to a trace-free build. *)

val load_image : t -> Rv32_asm.Image.t -> unit
(** Copy the image into RAM, tag every byte according to the policy's
    classification (program regions, keys, ...), and point the CPU's reset
    pc at the image origin (or the ["_start"] symbol if defined). *)

val seed_taint :
  t -> origin:string -> addr:int -> len:int -> Dift.Lattice.tag -> unit
(** Explicit taint seeding: tag [len] bytes of RAM at global address
    [addr] and register the introduction with the provenance recorder
    (when a tracer is attached). Raises [Invalid_argument] if the range
    is outside RAM. *)

val start : ?stop_on_halt:bool -> t -> unit
(** Spawn the CPU thread. *)

val run : ?until:Sysc.Time.t -> t -> unit
(** Run the simulation (forwards to {!Sysc.Kernel.run}). *)

val run_for_instructions : t -> int -> Rv32.Core.exit_reason
(** Convenience: cap the instruction count, spawn the CPU, run to
    completion, and return why the core stopped. *)

(** {1 Checkpoint / restore}

    Deterministic full-state snapshots (see [docs/snapshot.md]). The
    protocol: request a pause with {!pause_at}, {!run} until the kernel
    stops with {!paused} true, {!save} the state, and either continue
    in-process with {!resume} or later rebuild an identically-configured
    SoC, {!load_image} the same firmware, and {!restore} before
    {!start}. Both paths continue bit-identically to an uninterrupted
    run — same architectural state, taint tags, peripheral state and
    trace event stream.

    Monitors and tracers are deliberately {e not} serialised: they are
    host-side observers. An in-process resume keeps observing seamlessly;
    a restore into a fresh process starts with empty observers (events
    before the checkpoint are not re-reported). *)

val pause_at : t -> int -> unit
(** Pause at the first CPU time-sync boundary at or after the given
    retired-instruction count. *)

val paused : t -> bool

val save : t -> string
(** Serialise the full platform state. The CPU must be paused (or halted:
    a final snapshot of a finished run doubles as a canonical state dump
    for diffing). Identical simulator state yields identical strings.
    Raises [Invalid_argument] if the CPU is still running. *)

val restore : t -> string -> unit
(** Load a {!save}d snapshot into a freshly created SoC of the same
    configuration after {!load_image} and before {!start}. Raises
    {!Snapshot.Codec.Corrupt} on malformed input. *)

val resume : ?until:Sysc.Time.t -> t -> unit
(** Clear the pause flag and continue the simulation in-process. *)

(** {1 Warm start}

    The campaign engine's per-task setup shortcut (see
    [docs/parallel.md]): serialise the post-reset settlement point of a
    freshly built, image-free platform once, then stamp it into each
    worker's freshly created SoC {e before} {!load_image} — so the
    construction-time time-0 settlement (peripheral processes running
    their first evaluation, initial notifications re-armed) becomes a
    codec decode. Unlike {!restore}, which expects the same firmware to
    already be loaded, {!warm_start} runs before the image load, so one
    blob serves every task of a campaign regardless of its program. The
    blob is an immutable string: share it freely across domains. *)

val boot_snapshot : t -> string
(** On a freshly created SoC ({e no} image loaded, never started): halt
    the CPU before its first fetch (zero instruction budget), settle all
    time-0 peripheral activity, and {!save}. The SoC is spent afterwards
    (its CPU thread has exited); discard it. Raises [Invalid_argument] if
    the SoC has already executed instructions. *)

val warm_start : t -> string -> unit
(** Load a {!boot_snapshot} blob into a freshly created SoC of the same
    configuration (same flavour, policy lattice shape, quantum, RAM size)
    and clear the halt it was taken under. Call {e before} {!load_image};
    then proceed exactly as after a cold {!create} — load the image,
    set the budget, {!start}, {!run}. Architecturally equivalent to the
    cold path; the determinism suite asserts it. *)
