open Insn

let sext ~width v =
  let v = v land ((1 lsl width) - 1) in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let decode w =
  let w = w land 0xffffffff in
  let opcode = w land 0x7f in
  let rd = (w lsr 7) land 0x1f in
  let funct3 = (w lsr 12) land 0x7 in
  let rs1 = (w lsr 15) land 0x1f in
  let rs2 = (w lsr 20) land 0x1f in
  let funct7 = (w lsr 25) land 0x7f in
  let i_imm = sext ~width:12 (w lsr 20) in
  let s_imm = sext ~width:12 (((w lsr 25) lsl 5) lor rd) in
  let b_imm =
    sext ~width:13
      (((w lsr 31) lsl 12)
      lor (((w lsr 7) land 0x1) lsl 11)
      lor (((w lsr 25) land 0x3f) lsl 5)
      lor (((w lsr 8) land 0xf) lsl 1))
  in
  let u_imm = w land 0xfffff000 in
  let j_imm =
    sext ~width:21
      (((w lsr 31) lsl 20)
      lor (((w lsr 12) land 0xff) lsl 12)
      lor (((w lsr 20) land 0x1) lsl 11)
      lor (((w lsr 21) land 0x3ff) lsl 1))
  in
  match opcode with
  | 0x37 -> LUI (rd, u_imm)
  | 0x17 -> AUIPC (rd, u_imm)
  | 0x6f -> JAL (rd, j_imm)
  | 0x67 -> if funct3 = 0 then JALR (rd, rs1, i_imm) else ILLEGAL w
  | 0x63 -> (
      match funct3 with
      | 0 -> BEQ (rs1, rs2, b_imm)
      | 1 -> BNE (rs1, rs2, b_imm)
      | 4 -> BLT (rs1, rs2, b_imm)
      | 5 -> BGE (rs1, rs2, b_imm)
      | 6 -> BLTU (rs1, rs2, b_imm)
      | 7 -> BGEU (rs1, rs2, b_imm)
      | _ -> ILLEGAL w)
  | 0x03 -> (
      match funct3 with
      | 0 -> LB (rd, rs1, i_imm)
      | 1 -> LH (rd, rs1, i_imm)
      | 2 -> LW (rd, rs1, i_imm)
      | 4 -> LBU (rd, rs1, i_imm)
      | 5 -> LHU (rd, rs1, i_imm)
      | _ -> ILLEGAL w)
  | 0x23 -> (
      match funct3 with
      | 0 -> SB (rs1, rs2, s_imm)
      | 1 -> SH (rs1, rs2, s_imm)
      | 2 -> SW (rs1, rs2, s_imm)
      | _ -> ILLEGAL w)
  | 0x13 -> (
      match funct3 with
      | 0 -> ADDI (rd, rs1, i_imm)
      | 2 -> SLTI (rd, rs1, i_imm)
      | 3 -> SLTIU (rd, rs1, i_imm)
      | 4 -> XORI (rd, rs1, i_imm)
      | 6 -> ORI (rd, rs1, i_imm)
      | 7 -> ANDI (rd, rs1, i_imm)
      | 1 -> if funct7 = 0 then SLLI (rd, rs1, rs2) else ILLEGAL w
      | 5 ->
          if funct7 = 0 then SRLI (rd, rs1, rs2)
          else if funct7 = 0x20 then SRAI (rd, rs1, rs2)
          else ILLEGAL w
      | _ -> ILLEGAL w)
  | 0x33 -> (
      match (funct7, funct3) with
      | 0x00, 0 -> ADD (rd, rs1, rs2)
      | 0x20, 0 -> SUB (rd, rs1, rs2)
      | 0x00, 1 -> SLL (rd, rs1, rs2)
      | 0x00, 2 -> SLT (rd, rs1, rs2)
      | 0x00, 3 -> SLTU (rd, rs1, rs2)
      | 0x00, 4 -> XOR (rd, rs1, rs2)
      | 0x00, 5 -> SRL (rd, rs1, rs2)
      | 0x20, 5 -> SRA (rd, rs1, rs2)
      | 0x00, 6 -> OR (rd, rs1, rs2)
      | 0x00, 7 -> AND (rd, rs1, rs2)
      | 0x01, 0 -> MUL (rd, rs1, rs2)
      | 0x01, 1 -> MULH (rd, rs1, rs2)
      | 0x01, 2 -> MULHSU (rd, rs1, rs2)
      | 0x01, 3 -> MULHU (rd, rs1, rs2)
      | 0x01, 4 -> DIV (rd, rs1, rs2)
      | 0x01, 5 -> DIVU (rd, rs1, rs2)
      | 0x01, 6 -> REM (rd, rs1, rs2)
      | 0x01, 7 -> REMU (rd, rs1, rs2)
      | _ -> ILLEGAL w)
  | 0x0f -> FENCE
  | 0x73 -> (
      let csr = (w lsr 20) land 0xfff in
      match funct3 with
      | 0 -> (
          match (csr, rs1, rd) with
          | 0x000, 0, 0 -> ECALL
          | 0x001, 0, 0 -> EBREAK
          | 0x302, 0, 0 -> MRET
          | 0x105, 0, 0 -> WFI
          | _ -> ILLEGAL w)
      | 1 -> CSRRW (rd, rs1, csr)
      | 2 -> CSRRS (rd, rs1, csr)
      | 3 -> CSRRC (rd, rs1, csr)
      | 5 -> CSRRWI (rd, rs1, csr)
      | 6 -> CSRRSI (rd, rs1, csr)
      | 7 -> CSRRCI (rd, rs1, csr)
      | _ -> ILLEGAL w)
  | _ -> ILLEGAL w

(* --- Block classification ---------------------------------------------

   Which decoded instructions the basic-block machinery (Core's decoded
   block cache and the threaded-code compiler) may cache, shared by both
   execution engines so they build identical blocks. *)

type block_class = Straight | Ender | Breaker

let block_class = function
  (* Excluded from blocks entirely: rare, complex side effects (traps,
     wfi, CSR traffic), always executed via the slow single-step path. *)
  | Insn.FENCE | Insn.ECALL | Insn.EBREAK | Insn.MRET | Insn.WFI
  | Insn.CSRRW _ | Insn.CSRRS _ | Insn.CSRRC _
  | Insn.CSRRWI _ | Insn.CSRRSI _ | Insn.CSRRCI _
  | Insn.ILLEGAL _ -> Breaker
  (* Control transfers end a block and are its last instruction. *)
  | Insn.JAL _ | Insn.JALR _
  | Insn.BEQ _ | Insn.BNE _ | Insn.BLT _ | Insn.BGE _
  | Insn.BLTU _ | Insn.BGEU _ -> Ender
  | _ -> Straight
