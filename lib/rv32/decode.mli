(** RV32IM(+Zicsr) instruction decoder. *)

val decode : int -> Insn.t
(** [decode word] decodes a 32-bit instruction word (given as an unsigned
    OCaml int). Undecodable words yield [Insn.ILLEGAL word]; they never
    raise. *)

val sext : width:int -> int -> int
(** Sign-extend the low [width] bits of a value (exposed for the assembler
    and tests). *)

(** {1 Block classification}

    How an instruction behaves inside a decoded basic block; shared by
    the interpreter's block cache and the threaded-code compiler in
    {!Core} so both engines build identical blocks. *)

type block_class =
  | Straight  (** Cacheable, falls through to the next instruction. *)
  | Ender  (** Cacheable control transfer; terminates a block. *)
  | Breaker
      (** Never cached (system / CSR / illegal); executed single-step. *)

val block_class : Insn.t -> block_class
