(** Machine-mode CSR file (Zicsr subset used by the VP), with a security
    tag per CSR so information flow through CSRs is tracked too.

    Hot CSRs (mstatus, mie, mip, ...) are plain mutable fields so the
    interrupt check in the execute loop stays cheap. *)

(** {1 CSR numbers} *)

val mstatus : int
val misa : int
val mie : int
val mtvec : int
val mscratch : int
val mepc : int
val mcause : int
val mtval : int
val mip : int
val mhartid : int
val mvendorid : int
val marchid : int
val mimpid : int
val mcycle : int
val minstret : int
val cycle : int
val time_csr : int
val instret : int

(** {1 mstatus / mip / mie bits} *)

val mstatus_mie : int
(** Global machine interrupt enable (bit 3). *)

val mstatus_mpie : int
(** Previous MIE (bit 7). *)

val mstatus_mpp_shift : int
(** Bit position of the MPP (previous privilege) field. *)

val mstatus_mpp_mask : int
(** Mask of the MPP field (bits 11..12). *)

val mstatus_mpp : int -> int
(** Extract the MPP field from an mstatus value. *)

(** {1 Privilege levels} *)

val priv_u : int
(** User mode (0). *)

val priv_m : int
(** Machine mode (3). *)

val required_priv : int -> int
(** Minimum privilege level required to access a CSR number (encoded in
    address bits [9:8] per the Zicsr spec). *)

val bit_msi : int
(** Machine software interrupt (bit 3). *)

val bit_mti : int
(** Machine timer interrupt (bit 7). *)

val bit_mei : int
(** Machine external interrupt (bit 11). *)

(** {1 Trap causes} *)

val cause_fetch_misaligned : int
val cause_fetch_fault : int
val cause_illegal : int
val cause_breakpoint : int
val cause_load_misaligned : int
val cause_load_fault : int
val cause_store_misaligned : int
val cause_store_fault : int
val cause_ecall_u : int
val cause_ecall_m : int
val cause_interrupt : int -> int
(** Interrupt cause for an mcause bit index (sets the interrupt flag, which
    on RV32 is bit 31). *)

val cause_name : int -> string
(** Human-readable name of an mcause value (exceptions and interrupts). *)

(** {1 mtvec helpers} *)

val mtvec_base : int -> int
(** Trap-vector base address (bits 31..2) of an mtvec value. *)

val mtvec_mode : int -> int
(** Trap-vector mode (0 = direct, 1 = vectored) of an mtvec value. *)

type t = {
  mutable v_mstatus : int;
  mutable v_mie : int;
  mutable v_mip : int;
  mutable v_mtvec : int;
  mutable v_mscratch : int;
  mutable v_mepc : int;
  mutable v_mcause : int;
  mutable v_mtval : int;
  mutable t_mstatus : int;
  mutable t_mie : int;
  mutable t_mip : int;
  mutable t_mtvec : int;
  mutable t_mscratch : int;
  mutable t_mepc : int;
  mutable t_mcause : int;
  mutable t_mtval : int;
  default_tag : int;
}

val create : default_tag:int -> t

val read : t -> cycles:int -> instret:int -> int -> (int * int) option
(** [read csr ~cycles ~instret n] is [Some (value, tag)], or [None] for an
    unimplemented CSR (the core then raises an illegal-instruction trap).
    [cycles]/[instret] back the counter CSRs. *)

val write : t -> int -> value:int -> tag:int -> bool
(** [write csr n ~value ~tag] returns false for unknown or read-only CSRs.
    Writes to WARL fields are masked to the implemented bits. *)
