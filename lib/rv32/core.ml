exception Fatal_trap of { cause : int; pc : int; tval : int }

type exit_reason = Running | Exited of int | Breakpoint | Insn_limit

(* Architectural trap traffic, observable through {!set_trap_hook} (the SoC
   wires it into the tracer): one event per trap entry (synchronous
   exception or interrupt) and one per mret. *)
type trap_event =
  | Trap_enter of { cause : int; epc : int; tval : int; handler : int }
  | Trap_return of { target : int; to_priv : int }

(* Pluggable execution engines over the same decoded-block cache:
   [Interp] dispatches blocks through the per-instruction execute loop;
   [Threaded] compiles each block into a closure chain (threaded code)
   with pre-resolved operands and an untainted specialization;
   [Threaded_superblock] additionally chains hot block pairs across
   their terminating branch into superblocks and inline-caches jalr
   targets, so hot edges skip the dispatcher entirely. All engines
   retire identical architectural state, tags, counters and hook streams
   — pinned by test_threaded / test_superblock and the difftest
   engine-diff legs. *)
type engine = Interp | Threaded | Threaded_superblock

let engine_name = function
  | Interp -> "interp"
  | Threaded -> "threaded"
  | Threaded_superblock -> "superblock"

let engine_of_string = function
  | "interp" | "interpreter" -> Some Interp
  | "threaded" -> Some Threaded
  | "superblock" | "threaded-superblock" | "threaded_superblock" ->
      Some Threaded_superblock
  | _ -> None

module type MODE = sig
  val tracking : bool
end


module type S = sig
  type t

  val create :
    kernel:Sysc.Kernel.t ->
    bus:Bus_if.t ->
    policy:Dift.Policy.t ->
    monitor:Dift.Monitor.t ->
    ?cycle_time:Sysc.Time.t ->
    ?quantum:int ->
    ?block_cache:bool ->
    ?fast_path:bool ->
    ?engine:engine ->
    ?strict_align:bool ->
    pc:int ->
    unit ->
    t

  val pc : t -> int
  val set_pc : t -> int -> unit
  val get_reg : t -> Reg.t -> int
  val get_reg_tag : t -> Reg.t -> Dift.Lattice.tag
  val set_reg : t -> Reg.t -> int -> unit
  val set_reg_tagged : t -> Reg.t -> int -> Dift.Lattice.tag -> unit
  val csr : t -> Csr.t
  val instret : t -> int
  val priv : t -> int
  val set_irq : t -> bit:int -> bool -> unit
  val step : t -> unit
  val spawn_thread : ?stop_kernel_on_halt:bool -> t -> unit
  val set_max_instructions : t -> int -> unit
  val exit_reason : t -> exit_reason
  val halted : t -> bool
  val halt : t -> exit_reason -> unit
  val unhalt : t -> unit
  val set_trace : t -> (int -> Insn.t -> unit) option -> unit
  val set_trap_hook : t -> (trap_event -> unit) option -> unit
  val set_merge_hook : t -> (int -> int -> int -> unit) option -> unit
  val flush_code : t -> addr:int -> len:int -> unit
  val blocks_built : t -> int
  val superblocks_built : t -> int
  val chain_hits : t -> int
  val ic_hits : t -> int
  val ic_misses : t -> int
  val fast_retired : t -> int
  val set_pause_at : t -> int -> unit
  val paused : t -> bool
  val clear_paused : t -> unit
  val save : t -> Snapshot.Codec.writer -> unit
  val load : t -> Snapshot.Codec.reader -> unit
end

let mask32 v = v land 0xffffffff
let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

(* --- Decoded basic blocks -------------------------------------------- *)

(* A run of instructions starting at [b_pc], fetched and decoded once.
   Control transfers (branches, jal, jalr) terminate a block and are its
   last instruction; system instructions (ecall, csr*, wfi, ...) are never
   cached — a block whose first instruction is one of those is stored as an
   empty marker so the dispatcher falls back to {!step} without re-probing.
   [b_tags] caches the fetch tag of each instruction word (tracking mode);
   [b_fast] is true when every cached word carries the lattice-bottom tag,
   a precondition of the untainted fast path. *)
type block = {
  b_pc : int;
  b_insns : Insn.t array;
  b_words : int array;
  b_tags : int array;
  b_fast : bool;
}

let max_block_insns = 32

(* Block membership is classified next to the decoder so both engines
   build identical blocks. *)
let block_breaker insn = Decode.block_class insn = Decode.Breaker
let block_ender insn = Decode.block_class insn = Decode.Ender

module Make (M : MODE) = struct
  (* A basic block compiled to threaded code (see [compile_block]): one
     closure per instruction with operands pre-resolved, chained
     tail-first so executing the block is a single indirect call.
     [cb_full] is the full-semantics variant (tag plumbing per the
     flavour); [cb_fast] is the untainted specialization with all tag
     code compiled out, present only for blocks whose every word carries
     the bottom tag on cores where the fast path is enabled. A breaker-led
     block is stored with [cb_n = 0] so the dispatcher falls back to
     {!step} without re-probing.

     The superblock engine additionally keeps the decoded source
     ([cb_blk], for recompiling the block chained into a hot successor),
     an exit-edge profile ([cb_edge_pc]/[cb_edge_n]: the last observed
     dispatcher-entry pc after this chain ran, and how many consecutive
     times it repeated), and the byte span the compiled code depends on
     ([cb_lo..cb_hi] — the block itself, widened to the convex hull of
     predecessor and successor once chained, so invalidation stays a
     range compare). *)
  type cblock = {
    cb_pc : int;
    cb_n : int;
    cb_full : unit -> unit;
    cb_fast : (unit -> unit) option;
    cb_blk : block;
    cb_lo : int;
    cb_hi : int;
    mutable cb_edge_pc : int;
    mutable cb_edge_n : int;
    mutable cb_linked : bool;
  }

  (* Inline cache for a compiled jalr site: predicted target pc plus the
     direct chain entry for it. [ic_pc] is -1 while empty and -2 once
     demoted (two distinct targets were observed — the site is
     polymorphic and keeps paying the dispatcher). A cached entry is
     trusted only while no flush epoch has passed since it was installed;
     epoch bumps (SMC/DMA writes, set_trace, privilege changes, snapshot
     restore) invalidate every cache at once. *)
  type ic = {
    mutable ic_pc : int;
    mutable ic_epoch : int;
    mutable ic_entry : unit -> unit;
  }

  type t = {
    kernel : Sysc.Kernel.t;
    bus : Bus_if.t;
    policy : Dift.Policy.t;
    monitor : Dift.Monitor.t;
    lat : Dift.Lattice.t;
    regs : int array;
    rtags : int array;
    mutable pc : int;
    mutable cur_pc : int;  (* pc of the instruction in flight *)
    mutable insn_word : int;
    mutable insn_tag : int;
    csrf : Csr.t;
    mutable priv : int;  (* current privilege: Csr.priv_m or Csr.priv_u *)
    pub : int;  (* lattice bottom: tag of constants / x0 *)
    fetch_req : int option;
    branch_req : int option;
    mem_addr_req : int option;
    has_store_clearance : bool;
    strict_align : bool;  (* misaligned data accesses fault (cause 4 / 6) *)
    decode_cache : (int, Insn.t) Hashtbl.t;
    (* pc-indexed direct cache over the DMI (RAM) region: validated by
       comparing the cached word, so self-modifying code re-decodes. Used
       by the single-step path and during block building. *)
    pc_cache_base : int;
    pc_cache_words : int array;  (* empty if no DMI region *)
    pc_cache_insns : Insn.t array;
    (* Decoded basic-block cache over the same region, keyed by start pc.
       Unlike the per-word cache it is NOT self-validating: stores into
       cached code must call {!flush_code} (wired from Bus_if and the
       SoC memory model). *)
    use_blocks : bool;
    engine : engine;
    blocks : block option array;  (* Interp engine; [||] when disabled *)
    cblocks : cblock option array;  (* Threaded engine; [||] when disabled *)
    blk_base : int;
    blk_limit : int;
    mutable code_lo : int;  (* byte range ever covered by built blocks *)
    mutable code_hi : int;
    mutable flush_epoch : int;
    (* [flush_epoch] at entry of the currently running compiled chain;
       compiled instructions stop the chain when the two diverge (the
       threaded engine's equivalent of exec_block's epoch0). *)
    mutable chain_epoch : int;
    (* Untainted fast path (tracking mode): when enabled and the current
       block is b_fast with all register tags at bottom, tag propagation
       and clearance checks are skipped — they can only produce bottom tags
       and passing checks. [fast] is true only while such a block runs. *)
    fast_enabled : bool;
    (* Whether the threaded compiler may emit the value-only specialized
       variant. Tracked cores inherit [fast_enabled]; untracked cores get
       it whenever the fast path is configured on — with no tags anywhere
       the specialization is exact semantics, not an optimistic gamble,
       so it needs no per-entry tag precondition and never falls back. *)
    fast_spec : bool;
    mutable fast : bool;
    (* Superblock chaining (Threaded_superblock engine): [prev_cb] is the
       chain that ran in the previous scheduling round (exit-edge
       profiling), [sblocks] the registry of slots currently holding a
       recompiled superblock — their spans cover two blocks, so
       invalidation scans the registry in addition to the positional
       window. *)
    superblocks : bool;
    mutable prev_cb : cblock option;
    mutable sblocks : (int * cblock) list;
    mutable n_blocks : int;
    mutable n_superblocks : int;
    mutable n_chain : int;
    mutable n_ic_hits : int;
    mutable n_ic_miss : int;
    mutable n_fast : int;
    irq_event : Sysc.Kernel.event;
    (* Time sync goes through a named event (not [wait_for]) so that a
       paused core's pending wakeup is serialisable: at a sync boundary the
       kernel's only CPU-related state is one pending notification on
       [sync_event]. [syncing] is true while the thread is parked on it. *)
    sync_event : Sysc.Kernel.event;
    mutable syncing : bool;
    mutable pause_at : int;  (* pause at the first sync with instret >= this *)
    mutable paused : bool;
    cycle_time : Sysc.Time.t;
    quantum : int;
    mutable local_cycles : int;
    mutable instret : int;
    mutable max_insns : int;
    mutable in_wfi : bool;
    mutable exit_reason : exit_reason;
    mutable trace : (int -> Insn.t -> unit) option;
    mutable on_merge : (int -> int -> int -> unit) option;
    (* Read dynamically by enter_trap / mret (never from compiled chains:
       trap instructions are breakers), so installing it needs no flush. *)
    mutable on_trap : (trap_event -> unit) option;
  }

  (* Invalidate every cached block overlapping [addr .. addr+len-1] (the
     caller already wrote the bytes). Cheap when the write is outside any
     code executed so far: one range compare. *)
  let flush_code t ~addr ~len =
    if
      len > 0 && t.use_blocks
      && addr <= t.code_hi
      && addr + len - 1 >= t.code_lo
    then begin
      t.flush_epoch <- t.flush_epoch + 1;
      let last = addr + len - 1 in
      (* A block starting up to max_block_insns-1 words earlier can still
         cover [addr]. *)
      let lo = max t.blk_base (addr - ((max_block_insns - 1) * 4)) in
      let hi = min last t.blk_limit in
      if lo <= hi then begin
        let i0 = (lo - t.blk_base) lsr 2 and i1 = (hi - t.blk_base) lsr 2 in
        if Array.length t.blocks > 0 then
          for i = i0 to i1 do
            match Array.unsafe_get t.blocks i with
            | Some b ->
                let words = max 1 (Array.length b.b_insns) in
                if b.b_pc + (4 * words) - 1 >= addr then
                  Array.unsafe_set t.blocks i None
            | None -> ()
          done;
        if Array.length t.cblocks > 0 then
          for i = i0 to i1 do
            match Array.unsafe_get t.cblocks i with
            | Some cb ->
                if cb.cb_hi >= addr then Array.unsafe_set t.cblocks i None
            | None -> ()
          done
      end;
      (* Superblocks span two blocks, so the slot may sit outside the
         positional window above; their registry is scanned by span.
         Entries whose slot no longer holds them (already flushed, or
         replaced) are dropped along the way. *)
      if t.sblocks <> [] then
        t.sblocks <-
          List.filter
            (fun (i, cb) ->
              match Array.unsafe_get t.cblocks i with
              | Some cur when cur == cb ->
                  if cb.cb_hi >= addr && cb.cb_lo <= last then begin
                    Array.unsafe_set t.cblocks i None;
                    false
                  end
                  else true
              | _ -> false)
            t.sblocks
    end

  let create ~kernel ~bus ~policy ~monitor ?(cycle_time = Sysc.Time.ns 10)
      ?(quantum = 1000) ?(block_cache = true) ?(fast_path = true)
      ?(engine = Threaded_superblock) ?(strict_align = false) ~pc () =
    let pc_cache_base, pc_cache_words, pc_cache_insns =
      match Bus_if.dmi_range bus with
      | Some (base, limit) ->
          let entries = ((limit - base) / 4) + 1 in
          (base, Array.make entries (-1), Array.make entries (Insn.ILLEGAL 0))
      | None -> (0, [||], [||])
    in
    let lat = policy.Dift.Policy.lattice in
    let pub =
      match Dift.Lattice.bottom lat with
      | Some b -> b
      | None -> policy.Dift.Policy.default_tag
    in
    let cache_entries, blk_base, blk_limit =
      match Bus_if.dmi_range bus with
      | Some (base, limit) when block_cache ->
          (((limit - base) / 4) + 1, base, limit)
      | Some _ | None -> (0, 0, -1)
    in
    (* Each engine keeps its own cache of derived block state: decoded
       blocks for the interpreter, compiled closure chains for the
       threaded engine. Only the selected engine's array is allocated. *)
    let blocks =
      if cache_entries > 0 && engine = Interp then
        Array.make cache_entries None
      else [||]
    in
    let cblocks : cblock option array =
      if cache_entries > 0 && engine <> Interp then
        Array.make cache_entries None
      else [||]
    in
    (* The fast path is sound only if the bottom tag passes every check the
       engine could skip: the execution clearances and all store-integrity
       regions. Policies where bottom itself is not cleared (so every
       instruction would violate) simply never take it. *)
    let pub_flows_to = function
      | Some req -> Dift.Lattice.allowed_flow lat pub req
      | None -> true
    in
    let fast_enabled =
      M.tracking && fast_path && cache_entries > 0
      && pub_flows_to policy.Dift.Policy.exec_fetch
      && pub_flows_to policy.Dift.Policy.exec_branch
      && pub_flows_to policy.Dift.Policy.exec_mem_addr
      && List.for_all
           (fun r -> Dift.Lattice.allowed_flow lat pub r.Dift.Policy.r_tag)
           policy.Dift.Policy.store_clearance
    in
    let fast_spec =
      if M.tracking then fast_enabled else fast_path && cache_entries > 0
    in
    let t =
      {
        kernel;
        bus;
        policy;
        monitor;
        lat;
        regs = Array.make 32 0;
        rtags = Array.make 32 pub;
        pc;
        cur_pc = pc;
        insn_word = 0;
        insn_tag = pub;
        csrf = Csr.create ~default_tag:pub;
        priv = Csr.priv_m;
        pub;
        fetch_req = policy.Dift.Policy.exec_fetch;
        branch_req = policy.Dift.Policy.exec_branch;
        mem_addr_req = policy.Dift.Policy.exec_mem_addr;
        has_store_clearance = policy.Dift.Policy.store_clearance <> [];
        strict_align;
        decode_cache = Hashtbl.create 1024;
        pc_cache_base;
        pc_cache_words;
        pc_cache_insns;
        use_blocks = cache_entries > 0;
        engine;
        blocks;
        cblocks;
        blk_base;
        blk_limit;
        code_lo = max_int;
        code_hi = min_int;
        flush_epoch = 0;
        chain_epoch = 0;
        fast_enabled;
        fast_spec;
        fast = false;
        superblocks = (engine = Threaded_superblock && cache_entries > 0);
        prev_cb = None;
        sblocks = [];
        n_blocks = 0;
        n_superblocks = 0;
        n_chain = 0;
        n_ic_hits = 0;
        n_ic_miss = 0;
        n_fast = 0;
        irq_event = Sysc.Kernel.create_event kernel "cpu.irq";
        sync_event = Sysc.Kernel.create_event kernel "cpu.sync";
        syncing = false;
        pause_at = max_int;
        paused = false;
        cycle_time;
        quantum;
        local_cycles = 0;
        instret = 0;
        max_insns = max_int;
        in_wfi = false;
        exit_reason = Running;
        trace = None;
        on_merge = None;
        on_trap = None;
      }
    in
    if t.use_blocks then
      Bus_if.set_code_write_hook bus (fun addr len -> flush_code t ~addr ~len);
    t

  let pc t = t.pc
  let set_pc t v = t.pc <- mask32 v
  let get_reg t r = t.regs.(r)
  let get_reg_tag t r = t.rtags.(r)

  let set_reg_tagged t r v tag =
    if r <> 0 then begin
      t.regs.(r) <- mask32 v;
      if M.tracking then begin
        t.rtags.(r) <- tag;
        (* First non-bottom tag (a tainted load) ends the fast path; the
           remainder of the block runs with full propagation. *)
        if t.fast && tag <> t.pub then t.fast <- false
      end
    end

  let set_reg t r v = set_reg_tagged t r v t.pub
  let csr t = t.csrf
  let priv t = t.priv
  let set_trap_hook t fn = t.on_trap <- fn
  let instret t = t.instret
  let set_max_instructions t n = t.max_insns <- n
  let exit_reason t = t.exit_reason
  let halted t = t.exit_reason <> Running

  let halt t reason =
    if t.exit_reason = Running then t.exit_reason <- reason

  (* Compiled chains capture the hook value at compile time (the common
     no-hook case pays nothing per instruction), so changing it must drop
     every compiled block and stop any running chain; the interpreter
     reads [t.trace] dynamically and needs neither. *)
  let set_trace t fn =
    t.trace <- fn;
    if Array.length t.cblocks > 0 then begin
      t.flush_epoch <- t.flush_epoch + 1;
      Array.fill t.cblocks 0 (Array.length t.cblocks) None;
      t.sblocks <- [];
      t.prev_cb <- None
    end
  let set_merge_hook t fn = t.on_merge <- fn
  let blocks_built t = t.n_blocks
  let superblocks_built t = t.n_superblocks
  let chain_hits t = t.n_chain
  let ic_hits t = t.n_ic_hits
  let ic_misses t = t.n_ic_miss
  let fast_retired t = t.n_fast

  let set_irq t ~bit on =
    let c = t.csrf in
    if on then begin
      c.Csr.v_mip <- c.Csr.v_mip lor bit;
      Sysc.Kernel.notify_immediate t.irq_event
    end
    else c.Csr.v_mip <- c.Csr.v_mip land lnot bit land 0xffffffff

  (* --- DIFT checks ------------------------------------------------- *)

  let lub t a b =
    let r = Dift.Lattice.lub t.lat a b in
    (match t.on_merge with Some f -> f a b r | None -> ());
    r

  (* The detail string is built lazily: these checks run on every
     instruction, and allocating a formatted string on the hot path would
     dominate the DIFT overhead. *)
  let check t ~kind ~data_tag ~required ~detail =
    Dift.Monitor.count_check t.monitor;
    if not (Dift.Lattice.allowed_flow t.lat data_tag required) then
      Dift.Monitor.violation t.monitor
        {
          Dift.Violation.kind;
          data_tag;
          required_tag = required;
          pc = Some t.cur_pc;
          detail = detail ();
        }

  let check_fetch t tag =
    match t.fetch_req with
    | Some required ->
        if
          Dift.Monitor.count_check t.monitor;
          not (Dift.Lattice.allowed_flow t.lat tag required)
        then
          Dift.Monitor.violation t.monitor
            {
              Dift.Violation.kind = Dift.Violation.Exec_fetch;
              data_tag = tag;
              required_tag = required;
              pc = Some t.cur_pc;
              detail = Printf.sprintf "fetch of 0x%08x" t.insn_word;
            }
    | None -> ()

  let check_branch t tag detail =
    match t.branch_req with
    | Some required ->
        check t ~kind:Dift.Violation.Exec_branch ~data_tag:tag ~required
          ~detail:(fun () -> detail)
    | None -> ()

  let check_mem_addr t tag addr =
    match t.mem_addr_req with
    | Some required ->
        check t ~kind:Dift.Violation.Exec_mem_addr ~data_tag:tag ~required
          ~detail:(fun () -> Printf.sprintf "effective address 0x%08x" addr)
    | None -> ()

  let check_store_region t ~addr ~width ~tag =
    if t.has_store_clearance then
      for i = 0 to width - 1 do
        match Dift.Policy.store_required_at t.policy (addr + i) with
        | Some (region, required) ->
            check t ~kind:(Dift.Violation.Store_integrity region) ~data_tag:tag
              ~required
              ~detail:(fun () -> Printf.sprintf "store to 0x%08x" (addr + i))
        | None -> ()
      done

  (* --- Traps and interrupts ----------------------------------------- *)

  (* A privilege change invalidates any in-flight compiled chain (no chain
     may span a privilege boundary); the cached blocks themselves are
     privilege-agnostic — CSR access checks run on the breaker slow path —
     so only the epoch moves. *)
  let set_priv t p =
    if p <> t.priv then begin
      t.priv <- p;
      t.flush_epoch <- t.flush_epoch + 1
    end

  let enter_trap t ~cause ~tval ~epc =
    let c = t.csrf in
    if Csr.mtvec_base c.Csr.v_mtvec = 0 then
      raise (Fatal_trap { cause; pc = epc; tval });
    c.Csr.v_mepc <- epc;
    c.Csr.t_mepc <- t.pub;
    c.Csr.v_mcause <- cause;
    c.Csr.t_mcause <- t.pub;
    c.Csr.v_mtval <- mask32 tval;
    c.Csr.t_mtval <- t.pub;
    (* Stack: MPIE <- MIE, MIE <- 0, MPP <- current privilege. *)
    let s = c.Csr.v_mstatus in
    let mie = (s lsr 3) land 1 in
    c.Csr.v_mstatus <-
      s
      land lnot (Csr.mstatus_mie lor Csr.mstatus_mpie lor Csr.mstatus_mpp_mask)
      lor (mie lsl 7)
      lor (t.priv lsl Csr.mstatus_mpp_shift);
    set_priv t Csr.priv_m;
    (* Tags stay exact on the fast path, so this check runs even there. *)
    if M.tracking then check_branch t c.Csr.t_mtvec "trap vector (mtvec)";
    let base = Csr.mtvec_base c.Csr.v_mtvec in
    t.pc <-
      (if Csr.mtvec_mode c.Csr.v_mtvec = 1 && cause land 0x80000000 <> 0 then
         mask32 (base + (4 * (cause land 0x7fffffff)))
       else base);
    match t.on_trap with
    | Some f -> f (Trap_enter { cause; epc; tval = mask32 tval; handler = t.pc })
    | None -> ()

  let trap t ~cause ~tval = enter_trap t ~cause ~tval ~epc:t.cur_pc

  let take_interrupt t =
    let c = t.csrf in
    let pending = c.Csr.v_mip land c.Csr.v_mie in
    let bit =
      if pending land Csr.bit_mei <> 0 then Csr.bit_mei
      else if pending land Csr.bit_msi <> 0 then Csr.bit_msi
      else Csr.bit_mti
    in
    let idx =
      if bit = Csr.bit_mei then 11 else if bit = Csr.bit_msi then 3 else 7
    in
    enter_trap t ~cause:(Csr.cause_interrupt idx) ~tval:0 ~epc:t.pc

  (* --- Memory helpers ------------------------------------------------ *)

  let do_load t ~width ~addr =
    if t.strict_align && addr land (width - 1) <> 0 then begin
      trap t ~cause:Csr.cause_load_misaligned ~tval:addr;
      t.insn_tag <- t.pub;
      raise_notrace Exit
    end;
    try Bus_if.load t.bus ~width ~addr
    with Bus_if.Bus_error _ ->
      trap t ~cause:Csr.cause_load_fault ~tval:addr;
      (* Trap redirected control flow; the load value is irrelevant. *)
      t.insn_tag <- t.pub;
      raise_notrace Exit

  let do_store t ~width ~addr ~value ~tag =
    if t.strict_align && addr land (width - 1) <> 0 then begin
      trap t ~cause:Csr.cause_store_misaligned ~tval:addr;
      raise_notrace Exit
    end;
    try Bus_if.store t.bus ~width ~addr ~value ~tag
    with Bus_if.Bus_error _ ->
      trap t ~cause:Csr.cause_store_fault ~tval:addr;
      raise_notrace Exit

  (* --- CSR instructions ---------------------------------------------- *)

  type csr_op = Op_w | Op_s | Op_c

  let do_csr t rd n ~src_v ~src_t ~op ~do_write =
    if t.priv < Csr.required_priv n then
      trap t ~cause:Csr.cause_illegal ~tval:t.insn_word
    else
      match Csr.read t.csrf ~cycles:t.instret ~instret:t.instret n with
      | None -> trap t ~cause:Csr.cause_illegal ~tval:t.insn_word
      | Some (old_v, old_t) ->
          let write_ok =
            if do_write then begin
              let new_v, new_t =
                match op with
                | Op_w -> (src_v, src_t)
                | Op_s ->
                    ( old_v lor src_v,
                      if M.tracking then lub t old_t src_t else t.pub )
                | Op_c ->
                    ( old_v land lnot src_v land 0xffffffff,
                      if M.tracking then lub t old_t src_t else t.pub )
              in
              (* Trap-steering clearance: the trap vector and return
                 address decide where machine-mode execution resumes, so a
                 policy may require their writes to be untainted. Checked
                 before the write lands (in Halt mode the violation raise
                 leaves the CSR unchanged). *)
              (if M.tracking && (n = Csr.mtvec || n = Csr.mepc) then
                 match t.policy.Dift.Policy.trap_csr with
                 | Some required ->
                     check t
                       ~kind:
                         (Dift.Violation.Trap_steering
                            (if n = Csr.mtvec then "mtvec" else "mepc"))
                       ~data_tag:new_t ~required
                       ~detail:(fun () ->
                         Printf.sprintf "csr write of 0x%08x" (mask32 new_v))
                 | None -> ());
              Csr.write t.csrf n ~value:new_v ~tag:new_t
            end
            else true
          in
          if write_ok then set_reg_tagged t rd old_v old_t
          else trap t ~cause:Csr.cause_illegal ~tval:t.insn_word

  (* --- Execute -------------------------------------------------------- *)

  let execute t insn =
    let open Insn in
    let pc0 = t.cur_pc in
    let regs = t.regs and rtags = t.rtags in
    let itag = t.insn_tag in
    (* On the fast path every live tag is the bottom tag, so propagation is
       the identity and every clearance check passes by construction (see
       [fast_enabled]); both are skipped. A tainted load drops [t.fast]
       inside set_reg_tagged, but [fast] here is deliberately the value at
       instruction entry: nothing after the load reads tags. *)
    let fast = M.tracking && t.fast in
    let rt r = if M.tracking then rtags.(r) else t.pub in
    (* Tag of an ALU result from one / two register sources: immediates and
       the operation itself inherit the instruction's classification. *)
    let tag1 r = if M.tracking && not fast then lub t rtags.(r) itag else t.pub in
    let tag2 a b =
      if M.tracking && not fast then lub t (lub t rtags.(a) rtags.(b)) itag
      else t.pub
    in
    let branch_to target = t.pc <- mask32 target in
    let cond_branch a b off taken =
      if M.tracking && not fast then
        check_branch t (lub t (rt a) (rt b)) "branch condition";
      if taken then branch_to (pc0 + off)
    in
    match insn with
    | LUI (rd, imm) -> set_reg_tagged t rd imm itag
    | AUIPC (rd, imm) -> set_reg_tagged t rd (pc0 + imm) itag
    | JAL (rd, off) ->
        set_reg_tagged t rd (pc0 + 4) itag;
        branch_to (pc0 + off)
    | JALR (rd, rs1, off) ->
        if M.tracking && not fast then
          check_branch t (rt rs1) "indirect jump target";
        let target = mask32 (regs.(rs1) + off) land lnot 1 in
        set_reg_tagged t rd (pc0 + 4) itag;
        branch_to target
    | BEQ (a, b, off) -> cond_branch a b off (regs.(a) = regs.(b))
    | BNE (a, b, off) -> cond_branch a b off (regs.(a) <> regs.(b))
    | BLT (a, b, off) -> cond_branch a b off (signed regs.(a) < signed regs.(b))
    | BGE (a, b, off) -> cond_branch a b off (signed regs.(a) >= signed regs.(b))
    | BLTU (a, b, off) -> cond_branch a b off (regs.(a) < regs.(b))
    | BGEU (a, b, off) -> cond_branch a b off (regs.(a) >= regs.(b))
    | LB (rd, rs1, off) ->
        let addr = mask32 (regs.(rs1) + off) in
        if M.tracking && not fast then check_mem_addr t (rt rs1) addr;
        let v = do_load t ~width:1 ~addr in
        set_reg_tagged t rd
          (if v land 0x80 <> 0 then v lor 0xffffff00 else v)
          (Bus_if.last_tag t.bus)
    | LH (rd, rs1, off) ->
        let addr = mask32 (regs.(rs1) + off) in
        if M.tracking && not fast then check_mem_addr t (rt rs1) addr;
        let v = do_load t ~width:2 ~addr in
        set_reg_tagged t rd
          (if v land 0x8000 <> 0 then v lor 0xffff0000 else v)
          (Bus_if.last_tag t.bus)
    | LW (rd, rs1, off) ->
        let addr = mask32 (regs.(rs1) + off) in
        if M.tracking && not fast then check_mem_addr t (rt rs1) addr;
        let v = do_load t ~width:4 ~addr in
        set_reg_tagged t rd v (Bus_if.last_tag t.bus)
    | LBU (rd, rs1, off) ->
        let addr = mask32 (regs.(rs1) + off) in
        if M.tracking && not fast then check_mem_addr t (rt rs1) addr;
        let v = do_load t ~width:1 ~addr in
        set_reg_tagged t rd v (Bus_if.last_tag t.bus)
    | LHU (rd, rs1, off) ->
        let addr = mask32 (regs.(rs1) + off) in
        if M.tracking && not fast then check_mem_addr t (rt rs1) addr;
        let v = do_load t ~width:2 ~addr in
        set_reg_tagged t rd v (Bus_if.last_tag t.bus)
    | SB (rs1, rs2, off) ->
        let addr = mask32 (regs.(rs1) + off) in
        if M.tracking && not fast then begin
          check_mem_addr t (rt rs1) addr;
          check_store_region t ~addr ~width:1 ~tag:(rt rs2)
        end;
        do_store t ~width:1 ~addr ~value:regs.(rs2) ~tag:(rt rs2)
    | SH (rs1, rs2, off) ->
        let addr = mask32 (regs.(rs1) + off) in
        if M.tracking && not fast then begin
          check_mem_addr t (rt rs1) addr;
          check_store_region t ~addr ~width:2 ~tag:(rt rs2)
        end;
        do_store t ~width:2 ~addr ~value:regs.(rs2) ~tag:(rt rs2)
    | SW (rs1, rs2, off) ->
        let addr = mask32 (regs.(rs1) + off) in
        if M.tracking && not fast then begin
          check_mem_addr t (rt rs1) addr;
          check_store_region t ~addr ~width:4 ~tag:(rt rs2)
        end;
        do_store t ~width:4 ~addr ~value:regs.(rs2) ~tag:(rt rs2)
    | ADDI (rd, rs1, imm) -> set_reg_tagged t rd (regs.(rs1) + imm) (tag1 rs1)
    | SLTI (rd, rs1, imm) ->
        set_reg_tagged t rd (if signed regs.(rs1) < imm then 1 else 0) (tag1 rs1)
    | SLTIU (rd, rs1, imm) ->
        set_reg_tagged t rd
          (if regs.(rs1) < mask32 imm then 1 else 0)
          (tag1 rs1)
    | XORI (rd, rs1, imm) ->
        set_reg_tagged t rd (regs.(rs1) lxor mask32 imm) (tag1 rs1)
    | ORI (rd, rs1, imm) ->
        set_reg_tagged t rd (regs.(rs1) lor mask32 imm) (tag1 rs1)
    | ANDI (rd, rs1, imm) ->
        set_reg_tagged t rd (regs.(rs1) land mask32 imm) (tag1 rs1)
    | SLLI (rd, rs1, sh) -> set_reg_tagged t rd (regs.(rs1) lsl sh) (tag1 rs1)
    | SRLI (rd, rs1, sh) -> set_reg_tagged t rd (regs.(rs1) lsr sh) (tag1 rs1)
    | SRAI (rd, rs1, sh) ->
        set_reg_tagged t rd (signed regs.(rs1) asr sh) (tag1 rs1)
    | ADD (rd, a, b) -> set_reg_tagged t rd (regs.(a) + regs.(b)) (tag2 a b)
    | SUB (rd, a, b) -> set_reg_tagged t rd (regs.(a) - regs.(b)) (tag2 a b)
    | SLL (rd, a, b) ->
        set_reg_tagged t rd (regs.(a) lsl (regs.(b) land 31)) (tag2 a b)
    | SLT (rd, a, b) ->
        set_reg_tagged t rd
          (if signed regs.(a) < signed regs.(b) then 1 else 0)
          (tag2 a b)
    | SLTU (rd, a, b) ->
        set_reg_tagged t rd (if regs.(a) < regs.(b) then 1 else 0) (tag2 a b)
    | XOR (rd, a, b) -> set_reg_tagged t rd (regs.(a) lxor regs.(b)) (tag2 a b)
    | SRL (rd, a, b) ->
        set_reg_tagged t rd (regs.(a) lsr (regs.(b) land 31)) (tag2 a b)
    | SRA (rd, a, b) ->
        set_reg_tagged t rd (signed regs.(a) asr (regs.(b) land 31)) (tag2 a b)
    | OR (rd, a, b) -> set_reg_tagged t rd (regs.(a) lor regs.(b)) (tag2 a b)
    | AND (rd, a, b) -> set_reg_tagged t rd (regs.(a) land regs.(b)) (tag2 a b)
    | MUL (rd, a, b) ->
        let p = Int64.mul (Int64.of_int regs.(a)) (Int64.of_int regs.(b)) in
        set_reg_tagged t rd (Int64.to_int p land 0xffffffff) (tag2 a b)
    | MULH (rd, a, b) ->
        let p =
          Int64.mul
            (Int64.of_int (signed regs.(a)))
            (Int64.of_int (signed regs.(b)))
        in
        set_reg_tagged t rd
          (Int64.to_int (Int64.shift_right p 32) land 0xffffffff)
          (tag2 a b)
    | MULHSU (rd, a, b) ->
        let p =
          Int64.mul (Int64.of_int (signed regs.(a))) (Int64.of_int regs.(b))
        in
        set_reg_tagged t rd
          (Int64.to_int (Int64.shift_right p 32) land 0xffffffff)
          (tag2 a b)
    | MULHU (rd, a, b) ->
        let p = Int64.mul (Int64.of_int regs.(a)) (Int64.of_int regs.(b)) in
        set_reg_tagged t rd
          (Int64.to_int (Int64.shift_right_logical p 32) land 0xffffffff)
          (tag2 a b)
    | DIV (rd, a, b) ->
        let x = signed regs.(a) and y = signed regs.(b) in
        let q =
          if y = 0 then -1
          else if x = -0x80000000 && y = -1 then -0x80000000
          else
            (* OCaml division truncates toward zero, matching RISC-V. *)
            x / y
        in
        set_reg_tagged t rd q (tag2 a b)
    | DIVU (rd, a, b) ->
        let q = if regs.(b) = 0 then 0xffffffff else regs.(a) / regs.(b) in
        set_reg_tagged t rd q (tag2 a b)
    | REM (rd, a, b) ->
        let x = signed regs.(a) and y = signed regs.(b) in
        let r =
          if y = 0 then x
          else if x = -0x80000000 && y = -1 then 0
          else x mod y
        in
        set_reg_tagged t rd r (tag2 a b)
    | REMU (rd, a, b) ->
        let r = if regs.(b) = 0 then regs.(a) else regs.(a) mod regs.(b) in
        set_reg_tagged t rd r (tag2 a b)
    | FENCE -> ()
    | ECALL ->
        if t.priv = Csr.priv_m && regs.(17) = 93 then
          halt t (Exited (signed regs.(10)))
        else begin
          (* Syscall arguments are an explicit declassification gate: every
             argument register must meet the gate clearance; admitted
             arguments above the declassified class are downgraded, and
             each downgrade is recorded by the monitor. *)
          (if M.tracking then
             match t.policy.Dift.Policy.ecall_gate with
             | Some g ->
                 for rno = 10 to 15 do
                   let tag = rtags.(rno) in
                   Dift.Monitor.count_check t.monitor;
                   if
                     not
                       (Dift.Lattice.allowed_flow t.lat tag
                          g.Dift.Policy.g_clearance)
                   then
                     Dift.Monitor.violation t.monitor
                       {
                         Dift.Violation.kind =
                           Dift.Violation.Custom "ecall-gate";
                         data_tag = tag;
                         required_tag = g.Dift.Policy.g_clearance;
                         pc = Some pc0;
                         detail = Printf.sprintf "ecall argument a%d" (rno - 10);
                       }
                   else if
                     tag <> g.Dift.Policy.g_declass
                     && not
                          (Dift.Lattice.allowed_flow t.lat tag
                             g.Dift.Policy.g_declass)
                   then begin
                     rtags.(rno) <- g.Dift.Policy.g_declass;
                     Dift.Monitor.report t.monitor
                       (Dift.Monitor.Declassified
                          {
                            where = Printf.sprintf "ecall-gate(a%d)" (rno - 10);
                            from_tag = tag;
                            to_tag = g.Dift.Policy.g_declass;
                          })
                   end
                 done
             | None -> ());
          trap t
            ~cause:
              (if t.priv = Csr.priv_m then Csr.cause_ecall_m
               else Csr.cause_ecall_u)
            ~tval:0
        end
    | EBREAK ->
        (* With a handler installed, ebreak is an architectural breakpoint
           trap; without one it keeps the simulator's stop convention. *)
        if Csr.mtvec_base t.csrf.Csr.v_mtvec <> 0 then
          trap t ~cause:Csr.cause_breakpoint ~tval:pc0
        else halt t Breakpoint
    | MRET ->
        if t.priv <> Csr.priv_m then
          trap t ~cause:Csr.cause_illegal ~tval:t.insn_word
        else begin
          let c = t.csrf in
          let s = c.Csr.v_mstatus in
          let mpie = (s lsr 7) land 1 in
          let mpp = Csr.mstatus_mpp s in
          (* Unstack: MIE <- MPIE, MPIE <- 1, privilege <- MPP, MPP <- U. *)
          c.Csr.v_mstatus <-
            s
            land lnot (Csr.mstatus_mie lor Csr.mstatus_mpp_mask)
            lor (mpie lsl 3) lor Csr.mstatus_mpie;
          if M.tracking then check_branch t c.Csr.t_mepc "mret target (mepc)";
          set_priv t mpp;
          branch_to c.Csr.v_mepc;
          match t.on_trap with
          | Some f -> f (Trap_return { target = t.pc; to_priv = mpp })
          | None -> ()
        end
    | WFI ->
        if t.csrf.Csr.v_mip land t.csrf.Csr.v_mie = 0 then t.in_wfi <- true
    | CSRRW (rd, rs1, n) ->
        do_csr t rd n ~src_v:regs.(rs1) ~src_t:(rt rs1) ~op:Op_w ~do_write:true
    | CSRRS (rd, rs1, n) ->
        do_csr t rd n ~src_v:regs.(rs1) ~src_t:(rt rs1) ~op:Op_s
          ~do_write:(rs1 <> 0)
    | CSRRC (rd, rs1, n) ->
        do_csr t rd n ~src_v:regs.(rs1) ~src_t:(rt rs1) ~op:Op_c
          ~do_write:(rs1 <> 0)
    | CSRRWI (rd, z, n) ->
        do_csr t rd n ~src_v:z ~src_t:itag ~op:Op_w ~do_write:true
    | CSRRSI (rd, z, n) ->
        do_csr t rd n ~src_v:z ~src_t:itag ~op:Op_s ~do_write:(z <> 0)
    | CSRRCI (rd, z, n) ->
        do_csr t rd n ~src_v:z ~src_t:itag ~op:Op_c ~do_write:(z <> 0)
    | ILLEGAL w -> trap t ~cause:Csr.cause_illegal ~tval:w

  let decode_slow t word =
    try Hashtbl.find t.decode_cache word
    with Not_found ->
      let insn = Decode.decode word in
      Hashtbl.add t.decode_cache word insn;
      insn

  let decode_cached t pc word =
    let idx = (pc - t.pc_cache_base) lsr 2 in
    if idx >= 0 && idx < Array.length t.pc_cache_words then
      if Array.unsafe_get t.pc_cache_words idx = word then
        Array.unsafe_get t.pc_cache_insns idx
      else begin
        let insn = Decode.decode word in
        Array.unsafe_set t.pc_cache_words idx word;
        Array.unsafe_set t.pc_cache_insns idx insn;
        insn
      end
    else decode_slow t word

  let step t =
    let c = t.csrf in
    if
      (t.priv <> Csr.priv_m || c.Csr.v_mstatus land Csr.mstatus_mie <> 0)
      && c.Csr.v_mip land c.Csr.v_mie <> 0
    then take_interrupt t
    else begin
      let pc0 = t.pc in
      t.cur_pc <- pc0;
      if pc0 land 3 <> 0 then begin
        (* Misaligned fetch faults at the fetch itself: epc and mtval are
           the misaligned target (branch targets are encoded in multiples
           of 2, so only bit 1 can be set). *)
        enter_trap t ~cause:Csr.cause_fetch_misaligned ~tval:pc0 ~epc:pc0;
        t.instret <- t.instret + 1
      end
      else
      match
        try
          t.insn_word <- Bus_if.load t.bus ~width:4 ~addr:pc0;
          true
        with Bus_if.Bus_error _ ->
          enter_trap t ~cause:Csr.cause_fetch_fault ~tval:pc0 ~epc:pc0;
          false
      with
      | false -> t.instret <- t.instret + 1
      | true ->
          if M.tracking then begin
            t.insn_tag <- Bus_if.last_tag t.bus;
            check_fetch t t.insn_tag
          end;
          let insn = decode_cached t pc0 t.insn_word in
          (match t.trace with Some f -> f pc0 insn | None -> ());
          t.instret <- t.instret + 1;
          t.local_cycles <- t.local_cycles + 1;
          t.pc <- mask32 (pc0 + 4);
          (try execute t insn with Exit -> ())
    end

  (* --- Block dispatch ------------------------------------------------ *)

  (* M-mode interrupts are always enabled below M (mstatus.MIE only gates
     them at machine level, per the privileged spec). *)
  let interrupt_pending t =
    let c = t.csrf in
    (t.priv <> Csr.priv_m || c.Csr.v_mstatus land Csr.mstatus_mie <> 0)
    && c.Csr.v_mip land c.Csr.v_mie <> 0

  (* Fetch-decode a block starting at [pc] (word-aligned, inside the DMI
     region). DMI loads are side-effect free, so probing ahead of execution
     is safe; words are re-checked against nothing afterwards — the
     invalidation hooks keep the cache coherent instead. *)
  let build_block t pc =
    let insns = ref [] and words = ref [] and tags = ref [] in
    let n = ref 0 in
    let addr = ref pc in
    let all_pub = ref true in
    let stop = ref false in
    while (not !stop) && !n < max_block_insns && !addr + 3 <= t.blk_limit do
      let w = Bus_if.load t.bus ~width:4 ~addr:!addr in
      let tag = if M.tracking then Bus_if.last_tag t.bus else t.pub in
      let insn = decode_cached t !addr w in
      if block_breaker insn then stop := true
      else begin
        insns := insn :: !insns;
        words := w :: !words;
        tags := tag :: !tags;
        if tag <> t.pub then all_pub := false;
        incr n;
        addr := !addr + 4;
        if block_ender insn then stop := true
      end
    done;
    let b =
      {
        b_pc = pc;
        b_insns = Array.of_list (List.rev !insns);
        b_words = Array.of_list (List.rev !words);
        b_tags = (if M.tracking then Array.of_list (List.rev !tags) else [||]);
        b_fast = !all_pub && !n > 0;
      }
    in
    t.n_blocks <- t.n_blocks + 1;
    if pc < t.code_lo then t.code_lo <- pc;
    let last = pc + (4 * max 1 !n) - 1 in
    if last > t.code_hi then t.code_hi <- last;
    b

  let regs_all_pub t =
    let rtags = t.rtags and pub = t.pub in
    let ok = ref true in
    let i = ref 1 in
    while !ok && !i < 32 do
      if Array.unsafe_get rtags !i <> pub then ok := false;
      incr i
    done;
    !ok

  (* Execute instructions from a cached block. Per-instruction semantics
     mirror {!step} exactly (ordering of trace / instret / pc update /
     execute); the loop additionally stops at the instruction budget, the
     sync quantum, a pending interrupt, a taken branch or trap, or when an
     invalidation touched cached code (self-modifying stores take effect
     from the very next instruction, as in single-step mode). *)
  let exec_block t b =
    let epoch0 = t.flush_epoch in
    let n = Array.length b.b_insns in
    if
      t.fast_enabled && b.b_fast
      && regs_all_pub t
      && Dift.Monitor.fast_path_ok t.monitor
    then begin
      t.fast <- true;
      (* LUI/AUIPC/JAL/JALR read the fetch tag through [t.insn_tag]. *)
      t.insn_tag <- t.pub
    end;
    let i = ref 0 in
    let continue = ref true in
    (try
       while !continue && !i < n do
         if
           !i > 0
           && (t.instret >= t.max_insns
              || t.exit_reason <> Running
              || t.local_cycles >= t.quantum
              || t.flush_epoch <> epoch0
              || interrupt_pending t)
         then continue := false
         else begin
           let pc0 = t.pc in
           t.cur_pc <- pc0;
           let insn = Array.unsafe_get b.b_insns !i in
           if M.tracking then begin
             if t.fast then t.n_fast <- t.n_fast + 1
             else begin
               t.insn_word <- Array.unsafe_get b.b_words !i;
               t.insn_tag <- Array.unsafe_get b.b_tags !i;
               check_fetch t t.insn_tag
             end
           end;
           (match t.trace with Some f -> f pc0 insn | None -> ());
           t.instret <- t.instret + 1;
           t.local_cycles <- t.local_cycles + 1;
           t.pc <- mask32 (pc0 + 4);
           (try execute t insn with Exit -> ());
           incr i;
           if t.pc <> mask32 (pc0 + 4) then continue := false
         end
       done
     with e ->
       t.fast <- false;
       raise e);
    t.fast <- false

  (* One scheduling round: take a pending interrupt, or run (up to) one
     basic block from the cache, building it on a miss; pcs outside the
     cacheable region and system instructions fall back to {!step}. *)
  let dispatch t =
    if interrupt_pending t then take_interrupt t
    else begin
      let pc0 = t.pc in
      let idx = (pc0 - t.blk_base) lsr 2 in
      if pc0 land 3 <> 0 || idx >= Array.length t.blocks then step t
      else
        let b =
          match Array.unsafe_get t.blocks idx with
          | Some b -> b
          | None ->
              let b = build_block t pc0 in
              Array.unsafe_set t.blocks idx (Some b);
              b
        in
        if Array.length b.b_insns = 0 then step t else exec_block t b
    end

  (* --- Threaded-code block compiler ---------------------------------- *)

  (* The threaded engine compiles each decoded block into a chain of
     closures, one per instruction, with register indices, immediates and
     fetch tags pre-resolved at compile time. Closures are chained
     tail-first (instruction [i] captures instruction [i+1]'s closure), so
     running a block is a single indirect call. Every chain stop condition
     of {!exec_block} is compiled into the guards below; the retirement
     protocol (cur_pc / fetch bookkeeping / trace / instret / pc update)
     is replicated exactly so both engines produce identical architectural
     state, tags, counters, hook streams and snapshots — pinned by
     test_threaded and the difftest engine-diff leg. *)

  (* Stop conditions checked before every chained instruction except the
     first (mirrors exec_block's [!i > 0] guard; the dispatcher itself
     re-checks them between blocks, and never stop-checking the head keeps
     quantum = 0 configurations live). *)
  let chain_stalled t =
    t.instret >= t.max_insns
    || t.exit_reason <> Running
    || t.local_cycles >= t.quantum
    || t.flush_epoch <> t.chain_epoch
    || interrupt_pending t

  let chain_terminator () = ()

  (* Full-semantics variant: the retirement shell is compiled per
     instruction (pc, word and fetch tag are constants); the body shares
     {!execute}, whose operands were pre-resolved by decoding, so tag
     propagation and clearance checks are identical to the interpreter by
     construction. Runs only with [t.fast] false (block entry either took
     the fast chain or this one).

     [exit_k] runs when control leaves the straight line (a taken branch
     or trap): the chain terminator for a standalone block, or a
     superblock seam that continues into the chained successor when the
     divergence lands exactly on it. *)
  let compile_full t ~guarded ~pc0 ~word ~itag ~insn ~next ~exit_k =
    let next_pc = mask32 (pc0 + 4) in
    (* Captured at compile time; set_trace drops compiled blocks. *)
    let traced = t.trace in
    fun () ->
      if (not guarded) || not (chain_stalled t) then begin
        t.cur_pc <- pc0;
        if M.tracking then begin
          t.insn_word <- word;
          t.insn_tag <- itag;
          check_fetch t itag
        end;
        (match traced with Some f -> f pc0 insn | None -> ());
        t.instret <- t.instret + 1;
        t.local_cycles <- t.local_cycles + 1;
        t.pc <- next_pc;
        (try execute t insn with Exit -> ());
        if t.pc = next_pc then next () else exit_k ()
      end

  (* --- jalr inline caches --------------------------------------------- *)

  let ic_demoted = -2

  (* Monomorphic-install / demote state machine shared by both jalr
     variants. On a miss with an empty (or epoch-invalidated) cache the
     current target's compiled chain is installed if it exists; a second
     distinct target demotes the site for good. Never *enters* a chain —
     control falls back to the dispatcher, which re-checks everything. *)
  let ic_miss t ic ~tgt ~entry_of =
    t.n_ic_miss <- t.n_ic_miss + 1;
    if ic.ic_pc = tgt || ic.ic_pc = -1 then begin
      if tgt land 3 = 0 then
        let idx = (tgt - t.blk_base) lsr 2 in
        if idx >= 0 && idx < Array.length t.cblocks then
          match Array.unsafe_get t.cblocks idx with
          | Some cb when cb.cb_n > 0 ->
              ic.ic_pc <- tgt;
              ic.ic_epoch <- t.flush_epoch;
              ic.ic_entry <- entry_of cb
          | _ -> ()
    end
    else ic.ic_pc <- ic_demoted

  (* Full-semantics jalr with an inline cache: replicates {!execute}'s
     JALR case inside the retirement shell (check before target, target
     before link write — rd may alias rs1), then jumps straight to the
     predicted target's chain when the prediction holds and no stop
     condition is pending. Only built by the superblock engine. *)
  let compile_full_jalr t ~guarded ~pc0 ~word ~itag ~insn ~rd ~rs1 ~off ~next =
    let next_pc = mask32 (pc0 + 4) in
    let traced = t.trace in
    let ic = { ic_pc = -1; ic_epoch = -1; ic_entry = chain_terminator } in
    let entry_of cb = cb.cb_full in
    let regs = t.regs and rtags = t.rtags in
    fun () ->
      if (not guarded) || not (chain_stalled t) then begin
        t.cur_pc <- pc0;
        if M.tracking then begin
          t.insn_word <- word;
          t.insn_tag <- itag;
          check_fetch t itag
        end;
        (match traced with Some f -> f pc0 insn | None -> ());
        t.instret <- t.instret + 1;
        t.local_cycles <- t.local_cycles + 1;
        t.pc <- next_pc;
        if M.tracking && not t.fast then
          check_branch t (Array.unsafe_get rtags rs1) "indirect jump target";
        let tgt = mask32 (Array.unsafe_get regs rs1 + off) land lnot 1 in
        set_reg_tagged t rd next_pc itag;
        t.pc <- tgt;
        if tgt = next_pc then next ()
        else if
          ic.ic_pc = tgt
          && ic.ic_epoch = t.flush_epoch
          && not (chain_stalled t)
        then begin
          t.n_ic_hits <- t.n_ic_hits + 1;
          ic.ic_entry ()
        end
        else ic_miss t ic ~tgt ~entry_of
      end

  (* Untainted specialization (tracking mode): entered only when every
     cached word and every register carries the bottom tag, so all tag
     plumbing — propagation, lub merges, clearance checks — is compiled
     out, not just skipped. Only a load can break the invariant
     mid-block: a non-bottom loaded tag drops [t.fast] and the chain
     falls through to the full variant's next closure. Bodies replicate
     {!execute} value semantics with operands and targets folded into
     the closure. *)
  let compile_fast t ~guarded ~pc0 ~insn ~next ~fallback ~exit_k =
    let open Insn in
    let regs = t.regs and rtags = t.rtags in
    let next_pc = mask32 (pc0 + 4) in
    (* The per-instruction hook is specialized at compile time — the
       common no-hook case pays nothing per retired instruction.
       {!set_trace} drops every compiled block, so a chain can never
       outlive the hook value it captured. *)
    let traced = t.trace in
    (* Retirement bookkeeping is written out inline in every shape below
       rather than shared through a [retire] closure: without flambda a
       shared closure costs an extra indirect call on every retired
       instruction, which is a measurable slice of the margin this
       engine exists to win. Register indices come from 5-bit decode
       fields, so unsafe accesses on the 32-entry files are in bounds by
       construction. *)
    (* Straight-line ops cannot redirect control: continue unconditionally. *)
    let straight body =
     fun () ->
      if (not guarded) || not (chain_stalled t) then begin
        t.cur_pc <- pc0;
        t.n_fast <- t.n_fast + 1;
        (match traced with Some f -> f pc0 insn | None -> ());
        t.instret <- t.instret + 1;
        t.local_cycles <- t.local_cycles + 1;
        t.pc <- next_pc;
        body ();
        next ()
      end
    in
    (* Taken branches / jumps landing exactly on [next_pc] continue the
       chain, exactly like exec_block's pc test; any other landing site
       exits through [exit_k] (terminator, or superblock seam). The
       taken-path continuation is resolved at compile time. *)
    let cond_branch cond tgt =
     let taken_k = if tgt = next_pc then next else exit_k in
     fun () ->
      if (not guarded) || not (chain_stalled t) then begin
        t.cur_pc <- pc0;
        t.n_fast <- t.n_fast + 1;
        (match traced with Some f -> f pc0 insn | None -> ());
        t.instret <- t.instret + 1;
        t.local_cycles <- t.local_cycles + 1;
        t.pc <- next_pc;
        if cond () then begin
          t.pc <- tgt;
          taken_k ()
        end
        else next ()
      end
    in
    (* Loads keep their side effect even for rd = x0; a tainted result
       ends the specialization and resumes on the full chain. A faulting
       load traps exactly like {!do_load} (the trap itself cannot taint:
       CSR tags are written as bottom). *)
    let load width sext rd rs1 off =
     (* Alignment strictness is a create-time constant, so the check is
        specialized away on default cores. *)
     let align = t.strict_align && width > 1 in
     fun () ->
      if (not guarded) || not (chain_stalled t) then begin
        t.cur_pc <- pc0;
        t.n_fast <- t.n_fast + 1;
        (match traced with Some f -> f pc0 insn | None -> ());
        t.instret <- t.instret + 1;
        t.local_cycles <- t.local_cycles + 1;
        t.pc <- next_pc;
        let addr = mask32 (Array.unsafe_get regs rs1 + off) in
        if align && addr land (width - 1) <> 0 then begin
          trap t ~cause:Csr.cause_load_misaligned ~tval:addr;
          t.insn_tag <- t.pub
        end
        else
          (try
             let v = sext (Bus_if.load t.bus ~width ~addr) in
             if rd <> 0 then begin
               Array.unsafe_set regs rd (mask32 v);
               if M.tracking then begin
                 let tag = Bus_if.last_tag t.bus in
                 if tag <> t.pub then begin
                   Array.unsafe_set rtags rd tag;
                   t.fast <- false
                 end
               end
             end
           with Bus_if.Bus_error _ ->
             trap t ~cause:Csr.cause_load_fault ~tval:addr;
             t.insn_tag <- t.pub);
        if t.pc = next_pc then (if t.fast then next () else fallback ())
        else exit_k ()
      end
    in
    (* Stores cannot taint registers; the written tag is bottom by the
       fast-path invariant (rs2's tag is bottom whenever this runs). *)
    let store width rs1 rs2 off =
     let align = t.strict_align && width > 1 in
     fun () ->
      if (not guarded) || not (chain_stalled t) then begin
        t.cur_pc <- pc0;
        t.n_fast <- t.n_fast + 1;
        (match traced with Some f -> f pc0 insn | None -> ());
        t.instret <- t.instret + 1;
        t.local_cycles <- t.local_cycles + 1;
        t.pc <- next_pc;
        let addr = mask32 (Array.unsafe_get regs rs1 + off) in
        if align && addr land (width - 1) <> 0 then
          trap t ~cause:Csr.cause_store_misaligned ~tval:addr
        else
          (try
             Bus_if.store t.bus ~width ~addr
               ~value:(Array.unsafe_get regs rs2)
               ~tag:t.pub
           with Bus_if.Bus_error _ ->
             trap t ~cause:Csr.cause_store_fault ~tval:addr);
        if t.pc = next_pc then next () else exit_k ()
      end
    in
    let sext8 v = if v land 0x80 <> 0 then v lor 0xffffff00 else v in
    let sext16 v = if v land 0x8000 <> 0 then v lor 0xffff0000 else v in
    let id v = v in
    match insn with
    | LUI (rd, imm) ->
        let v = mask32 imm in
        straight (fun () -> if rd <> 0 then regs.(rd) <- v)
    | AUIPC (rd, imm) ->
        let v = mask32 (pc0 + imm) in
        straight (fun () -> if rd <> 0 then regs.(rd) <- v)
    | JAL (rd, off) ->
        let tgt = mask32 (pc0 + off) in
        let taken_k = if tgt = next_pc then next else exit_k in
        fun () ->
          if (not guarded) || not (chain_stalled t) then begin
            t.cur_pc <- pc0;
            t.n_fast <- t.n_fast + 1;
            (match traced with Some f -> f pc0 insn | None -> ());
            t.instret <- t.instret + 1;
            t.local_cycles <- t.local_cycles + 1;
            if rd <> 0 then regs.(rd) <- next_pc;
            t.pc <- tgt;
            taken_k ()
          end
    | JALR (rd, rs1, off) ->
        if not t.superblocks then
          (fun () ->
            if (not guarded) || not (chain_stalled t) then begin
              t.cur_pc <- pc0;
              t.n_fast <- t.n_fast + 1;
              (match traced with Some f -> f pc0 insn | None -> ());
              t.instret <- t.instret + 1;
              t.local_cycles <- t.local_cycles + 1;
              (* Target before link write: rd may alias rs1. *)
              let tgt = mask32 (regs.(rs1) + off) land lnot 1 in
              if rd <> 0 then regs.(rd) <- next_pc;
              t.pc <- tgt;
              if tgt = next_pc then next ()
            end)
        else begin
          (* Superblock engine: inline-cache the jalr target. A hit jumps
             straight into the predicted chain's fast entry; a target
             without a fast variant gets a demoting trampoline so the
             prediction still skips the dispatcher. The tag invariant
             carries over the jump: [t.fast] true here means every
             register tag is bottom, which is exactly the fast-entry
             precondition the dispatcher would re-derive. *)
          let ic = { ic_pc = -1; ic_epoch = -1; ic_entry = chain_terminator } in
          let entry_of cb =
            match cb.cb_fast with
            | Some f -> f
            | None ->
                fun () ->
                  t.fast <- false;
                  cb.cb_full ()
          in
          fun () ->
            if (not guarded) || not (chain_stalled t) then begin
              t.cur_pc <- pc0;
              t.n_fast <- t.n_fast + 1;
              (match traced with Some f -> f pc0 insn | None -> ());
              t.instret <- t.instret + 1;
              t.local_cycles <- t.local_cycles + 1;
              (* Target before link write: rd may alias rs1. *)
              let tgt = mask32 (Array.unsafe_get regs rs1 + off) land lnot 1 in
              if rd <> 0 then Array.unsafe_set regs rd next_pc;
              t.pc <- tgt;
              if tgt = next_pc then next ()
              else if
                ic.ic_pc = tgt
                && ic.ic_epoch = t.flush_epoch
                && (not (chain_stalled t))
                && ((not M.tracking) || Dift.Monitor.fast_path_ok t.monitor)
              then begin
                t.n_ic_hits <- t.n_ic_hits + 1;
                ic.ic_entry ()
              end
              else ic_miss t ic ~tgt ~entry_of
            end
        end
    | BEQ (a, b, off) ->
        cond_branch (fun () -> regs.(a) = regs.(b)) (mask32 (pc0 + off))
    | BNE (a, b, off) ->
        cond_branch (fun () -> regs.(a) <> regs.(b)) (mask32 (pc0 + off))
    | BLT (a, b, off) ->
        cond_branch
          (fun () -> signed regs.(a) < signed regs.(b))
          (mask32 (pc0 + off))
    | BGE (a, b, off) ->
        cond_branch
          (fun () -> signed regs.(a) >= signed regs.(b))
          (mask32 (pc0 + off))
    | BLTU (a, b, off) ->
        cond_branch (fun () -> regs.(a) < regs.(b)) (mask32 (pc0 + off))
    | BGEU (a, b, off) ->
        cond_branch (fun () -> regs.(a) >= regs.(b)) (mask32 (pc0 + off))
    | LB (rd, rs1, off) -> load 1 sext8 rd rs1 off
    | LH (rd, rs1, off) -> load 2 sext16 rd rs1 off
    | LW (rd, rs1, off) -> load 4 id rd rs1 off
    | LBU (rd, rs1, off) -> load 1 id rd rs1 off
    | LHU (rd, rs1, off) -> load 2 id rd rs1 off
    | SB (rs1, rs2, off) -> store 1 rs1 rs2 off
    | SH (rs1, rs2, off) -> store 2 rs1 rs2 off
    | SW (rs1, rs2, off) -> store 4 rs1 rs2 off
    | ADDI (rd, rs1, imm) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- mask32 (regs.(rs1) + imm))
    | SLTI (rd, rs1, imm) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- (if signed regs.(rs1) < imm then 1 else 0))
    | SLTIU (rd, rs1, imm) ->
        let imm = mask32 imm in
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- (if regs.(rs1) < imm then 1 else 0))
    | XORI (rd, rs1, imm) ->
        let imm = mask32 imm in
        straight (fun () -> if rd <> 0 then regs.(rd) <- regs.(rs1) lxor imm)
    | ORI (rd, rs1, imm) ->
        let imm = mask32 imm in
        straight (fun () -> if rd <> 0 then regs.(rd) <- regs.(rs1) lor imm)
    | ANDI (rd, rs1, imm) ->
        let imm = mask32 imm in
        straight (fun () -> if rd <> 0 then regs.(rd) <- regs.(rs1) land imm)
    | SLLI (rd, rs1, sh) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- mask32 (regs.(rs1) lsl sh))
    | SRLI (rd, rs1, sh) ->
        straight (fun () -> if rd <> 0 then regs.(rd) <- regs.(rs1) lsr sh)
    | SRAI (rd, rs1, sh) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- mask32 (signed regs.(rs1) asr sh))
    | ADD (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- mask32 (regs.(a) + regs.(b)))
    | SUB (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- mask32 (regs.(a) - regs.(b)))
    | SLL (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- mask32 (regs.(a) lsl (regs.(b) land 31)))
    | SLT (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then
              regs.(rd) <- (if signed regs.(a) < signed regs.(b) then 1 else 0))
    | SLTU (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- (if regs.(a) < regs.(b) then 1 else 0))
    | XOR (rd, a, b) ->
        straight (fun () -> if rd <> 0 then regs.(rd) <- regs.(a) lxor regs.(b))
    | SRL (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then regs.(rd) <- regs.(a) lsr (regs.(b) land 31))
    | SRA (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then
              regs.(rd) <- mask32 (signed regs.(a) asr (regs.(b) land 31)))
    | OR (rd, a, b) ->
        straight (fun () -> if rd <> 0 then regs.(rd) <- regs.(a) lor regs.(b))
    | AND (rd, a, b) ->
        straight (fun () -> if rd <> 0 then regs.(rd) <- regs.(a) land regs.(b))
    | MUL (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then
              let p =
                Int64.mul (Int64.of_int regs.(a)) (Int64.of_int regs.(b))
              in
              regs.(rd) <- Int64.to_int p land 0xffffffff)
    | MULH (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then
              let p =
                Int64.mul
                  (Int64.of_int (signed regs.(a)))
                  (Int64.of_int (signed regs.(b)))
              in
              regs.(rd) <- Int64.to_int (Int64.shift_right p 32) land 0xffffffff)
    | MULHSU (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then
              let p =
                Int64.mul (Int64.of_int (signed regs.(a))) (Int64.of_int regs.(b))
              in
              regs.(rd) <- Int64.to_int (Int64.shift_right p 32) land 0xffffffff)
    | MULHU (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then
              let p =
                Int64.mul (Int64.of_int regs.(a)) (Int64.of_int regs.(b))
              in
              regs.(rd) <-
                Int64.to_int (Int64.shift_right_logical p 32) land 0xffffffff)
    | DIV (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then begin
              let x = signed regs.(a) and y = signed regs.(b) in
              let q =
                if y = 0 then -1
                else if x = -0x80000000 && y = -1 then -0x80000000
                else x / y
              in
              regs.(rd) <- mask32 q
            end)
    | DIVU (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then
              regs.(rd) <-
                (if regs.(b) = 0 then 0xffffffff else regs.(a) / regs.(b)))
    | REM (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then begin
              let x = signed regs.(a) and y = signed regs.(b) in
              let r =
                if y = 0 then x
                else if x = -0x80000000 && y = -1 then 0
                else x mod y
              in
              regs.(rd) <- mask32 r
            end)
    | REMU (rd, a, b) ->
        straight (fun () ->
            if rd <> 0 then
              regs.(rd) <-
                (if regs.(b) = 0 then regs.(a) else regs.(a) mod regs.(b)))
    | FENCE | ECALL | EBREAK | MRET | WFI
    | CSRRW _ | CSRRS _ | CSRRC _ | CSRRWI _ | CSRRSI _ | CSRRCI _
    | ILLEGAL _ ->
        (* Breakers never enter a block (see build_block). *)
        invalid_arg "compile_fast: breaker instruction in block"

  let compile_block ?link t (b : block) =
    let n = Array.length b.b_insns in
    let lo0 = b.b_pc and hi0 = b.b_pc + (4 * max 1 n) - 1 in
    if n = 0 then
      {
        cb_pc = b.b_pc;
        cb_n = 0;
        cb_full = chain_terminator;
        cb_fast = None;
        cb_blk = b;
        cb_lo = lo0;
        cb_hi = hi0;
        cb_edge_pc = -1;
        cb_edge_n = 0;
        cb_linked = false;
      }
    else begin
      (* Superblock seams: with a hot successor [link], every exit path of
         this block (slot [n] fall-off, taken branches, even a mid-block
         trap) funnels through a seam instead of the chain terminator. The
         seam continues straight into the successor's chain — eliding the
         dispatcher round, the pc/index lookup and, on the fast side, the
         31-register tag rescan — exactly when execution really landed on
         the successor and no stop condition is pending; anything else
         returns to the dispatcher as before. The fast seam re-checks only
         the monitor gate: [t.fast] being true is itself the proof that
         every register tag is still bottom (a tainted load would have
         dropped it before the seam). Entries are threaded through refs so
         a block chained to itself loops inside its own new chain. *)
      let full_tgt = ref chain_terminator in
      let fast_tgt = ref chain_terminator in
      let succ_pc = match link with Some s -> s.cb_pc | None -> -1 in
      let full_seam, fast_seam =
        match link with
        | None -> (chain_terminator, chain_terminator)
        | Some _ ->
            ( (fun () ->
                if t.pc = succ_pc && not (chain_stalled t) then begin
                  t.n_chain <- t.n_chain + 1;
                  !full_tgt ()
                end),
              fun () ->
                if
                  t.pc = succ_pc
                  && (not (chain_stalled t))
                  && ((not M.tracking) || Dift.Monitor.fast_path_ok t.monitor)
                then begin
                  t.n_chain <- t.n_chain + 1;
                  !fast_tgt ()
                end )
      in
      (* Built backwards so each closure captures its successor; slot [n]
         is the fall-off exit (terminator or seam). *)
      let full = Array.make (n + 1) full_seam in
      for i = n - 1 downto 0 do
        let itag = if M.tracking then b.b_tags.(i) else t.pub in
        full.(i) <-
          (match b.b_insns.(i) with
          | Insn.JALR (rd, rs1, off) when t.superblocks ->
              compile_full_jalr t ~guarded:(i > 0)
                ~pc0:(b.b_pc + (4 * i))
                ~word:b.b_words.(i) ~itag ~insn:b.b_insns.(i) ~rd ~rs1 ~off
                ~next:full.(i + 1)
          | insn ->
              compile_full t ~guarded:(i > 0)
                ~pc0:(b.b_pc + (4 * i))
                ~word:b.b_words.(i) ~itag ~insn
                ~next:full.(i + 1)
                ~exit_k:full_seam)
      done;
      let cb_fast =
        if t.fast_spec && b.b_fast then begin
          let fast = Array.make (n + 1) fast_seam in
          for i = n - 1 downto 0 do
            fast.(i) <-
              compile_fast t ~guarded:(i > 0)
                ~pc0:(b.b_pc + (4 * i))
                ~insn:b.b_insns.(i)
                ~next:fast.(i + 1)
                ~fallback:full.(i + 1)
                ~exit_k:fast_seam
          done;
          Some fast.(0)
        end
        else None
      in
      let cb_lo, cb_hi =
        match link with
        | Some s -> (min lo0 s.cb_lo, max hi0 s.cb_hi)
        | None -> (lo0, hi0)
      in
      let cb =
        {
          cb_pc = b.b_pc;
          cb_n = n;
          cb_full = full.(0);
          cb_fast;
          cb_blk = b;
          cb_lo;
          cb_hi;
          cb_edge_pc = -1;
          cb_edge_n = 0;
          cb_linked = link <> None;
        }
      in
      (match link with
      | None -> ()
      | Some succ when succ.cb_pc = b.b_pc ->
          (* Self-loop: the back edge re-enters this block's own new
             chain, so a hot loop body spins inside one chain until a
             stop condition (quantum, interrupt, ...) breaks it. Entries
             are tail calls, so the spin is stack-safe. *)
          full_tgt := cb.cb_full;
          fast_tgt :=
            (match cb.cb_fast with Some f -> f | None -> chain_terminator)
      | Some succ ->
          full_tgt := succ.cb_full;
          fast_tgt :=
            (match succ.cb_fast with
            | Some f -> f
            | None ->
                fun () ->
                  t.fast <- false;
                  succ.cb_full ()));
      cb
    end

  (* Consecutive observations of the same exit edge before the
     predecessor is recompiled into a superblock. *)
  let superblock_threshold = 8

  let ends_in_jalr b =
    let n = Array.length b.b_insns in
    n > 0 && (match b.b_insns.(n - 1) with Insn.JALR _ -> true | _ -> false)

  (* Recompile [pred] chained across its exit edge into [succ], replacing
     pred's cache slot and registering the new chain's two-block span for
     invalidation. Compiled from the stored decoded block — nothing is
     re-fetched, so [blocks_built] is unchanged. *)
  let link_superblock t pred pidx succ =
    let sb = compile_block ~link:succ t pred.cb_blk in
    Array.unsafe_set t.cblocks pidx (Some sb);
    t.sblocks <- (pidx, sb) :: t.sblocks;
    t.n_superblocks <- t.n_superblocks + 1;
    sb

  (* Threaded-engine scheduling round: same structure as {!dispatch}, but
     a cache hit invokes the compiled chain instead of interpreting the
     block. The fast/full decision is made once per block entry, exactly
     like exec_block's fast-path gate. *)
  let dispatch_threaded t =
    if interrupt_pending t then begin
      t.prev_cb <- None;
      take_interrupt t
    end
    else begin
      let pc0 = t.pc in
      let idx = (pc0 - t.blk_base) lsr 2 in
      if pc0 land 3 <> 0 || idx >= Array.length t.cblocks then begin
        t.prev_cb <- None;
        step t
      end
      else
        let cb =
          match Array.unsafe_get t.cblocks idx with
          | Some cb -> cb
          | None ->
              let cb = compile_block t (build_block t pc0) in
              Array.unsafe_set t.cblocks idx (Some cb);
              cb
        in
        if cb.cb_n = 0 then begin
          t.prev_cb <- None;
          step t
        end
        else begin
          (* Exit-edge profiling (superblock engine): each dispatcher
             entry is an edge from the chain that ran last round to
             [pc0]. When the same edge repeats superblock_threshold
             times, the predecessor is recompiled chained into this
             block — jalr exits are excluded (their inline caches cover
             them). The slot identity check refuses to resurrect a chain
             that was flushed since it last ran; a self-loop link swaps
             in the new chain for the current round as well. *)
          let cb =
            if not t.superblocks then cb
            else begin
              match t.prev_cb with
              | Some p when not p.cb_linked ->
                  if p.cb_edge_pc = pc0 then begin
                    p.cb_edge_n <- p.cb_edge_n + 1;
                    if
                      p.cb_edge_n >= superblock_threshold
                      && not (ends_in_jalr p.cb_blk)
                    then begin
                      let pidx = (p.cb_pc - t.blk_base) lsr 2 in
                      match Array.unsafe_get t.cblocks pidx with
                      | Some cur when cur == p ->
                          let sb = link_superblock t p pidx cb in
                          if p.cb_pc = pc0 then sb else cb
                      | _ -> cb
                    end
                    else cb
                  end
                  else begin
                    p.cb_edge_pc <- pc0;
                    p.cb_edge_n <- 1;
                    cb
                  end
              | _ -> cb
            end
          in
          t.prev_cb <- Some cb;
          t.chain_epoch <- t.flush_epoch;
          match cb.cb_fast with
          | Some f
            when (not M.tracking)
                 || (regs_all_pub t && Dift.Monitor.fast_path_ok t.monitor) ->
              t.fast <- true;
              (* LUI/AUIPC/JAL/JALR read the fetch tag through insn_tag. *)
              t.insn_tag <- t.pub;
              (try f ()
               with e ->
                 t.fast <- false;
                 raise e);
              t.fast <- false
          | _ -> cb.cb_full ()
        end
    end

  let unhalt t = t.exit_reason <- Running

  let set_pause_at t n = t.pause_at <- n
  let paused t = t.paused
  let clear_paused t = t.paused <- false

  let sync_time t =
    let elapsed =
      Sysc.Time.add
        (t.local_cycles * t.cycle_time)
        (Bus_if.take_delay t.bus)
    in
    t.local_cycles <- 0;
    if elapsed > 0 then begin
      Sysc.Kernel.notify_after t.sync_event elapsed;
      t.syncing <- true;
      if t.instret >= t.pause_at then begin
        (* Checkpoint request: stop the scheduler with the thread parked on
           its (pending, serialisable) sync notification. The pause is
           invisible to the simulation — the wakeup happens at exactly the
           instant it would have without it. *)
        t.paused <- true;
        t.pause_at <- max_int;
        Sysc.Kernel.stop t.kernel
      end;
      Sysc.Kernel.wait_event t.sync_event;
      t.syncing <- false
    end

  let spawn_thread ?(stop_kernel_on_halt = true) t =
    (* One scheduling round of the selected execution engine. *)
    let round =
      if not t.use_blocks then step
      else
        match t.engine with
        | Interp -> dispatch
        | Threaded | Threaded_superblock -> dispatch_threaded
    in
    Sysc.Kernel.spawn t.kernel ~name:"cpu" (fun () ->
        if t.syncing then begin
          (* Restored from a snapshot taken at a sync boundary: the wakeup
             is already pending (re-armed by the kernel restore); park on
             it like the saved thread was. *)
          Sysc.Kernel.wait_event t.sync_event;
          t.syncing <- false
        end;
        let running = ref true in
        while !running do
          if halted t || Sysc.Kernel.stopped t.kernel then running := false
          else if t.in_wfi then begin
            sync_time t;
            if t.csrf.Csr.v_mip land t.csrf.Csr.v_mie = 0 then
              Sysc.Kernel.wait_event t.irq_event
            else t.in_wfi <- false
          end
          else if t.instret >= t.max_insns then halt t Insn_limit
          else begin
            round t;
            if t.local_cycles >= t.quantum then sync_time t
          end
        done;
        sync_time t;
        if stop_kernel_on_halt then Sysc.Kernel.stop t.kernel)

  (* --- Snapshot ------------------------------------------------------- *)

  let encode_exit = function
    | Running -> (0, 0)
    | Exited code -> (1, code)
    | Breakpoint -> (2, 0)
    | Insn_limit -> (3, 0)

  let decode_exit tag code =
    match tag with
    | 0 -> Running
    | 1 -> Exited code
    | 2 -> Breakpoint
    | 3 -> Insn_limit
    | n -> raise (Snapshot.Codec.Corrupt (Printf.sprintf "bad exit reason %d" n))

  let save t w =
    let open Snapshot.Codec in
    Array.iter (fun v -> put_u32 w v) t.regs;
    Array.iter (fun v -> put_u32 w v) t.rtags;
    put_u32 w t.pc;
    put_u32 w t.cur_pc;
    put_u32 w t.insn_word;
    put_u32 w t.insn_tag;
    put_i64 w t.instret;
    put_i64 w t.local_cycles;
    put_bool w t.in_wfi;
    put_bool w t.syncing;
    let tag, code = encode_exit t.exit_reason in
    put_u8 w tag;
    put_i64 w code;
    let c = t.csrf in
    List.iter
      (fun v -> put_u32 w v)
      [ c.Csr.v_mstatus; c.Csr.v_mie; c.Csr.v_mip; c.Csr.v_mtvec;
        c.Csr.v_mscratch; c.Csr.v_mepc; c.Csr.v_mcause; c.Csr.v_mtval;
        c.Csr.t_mstatus; c.Csr.t_mie; c.Csr.t_mip; c.Csr.t_mtvec;
        c.Csr.t_mscratch; c.Csr.t_mepc; c.Csr.t_mcause; c.Csr.t_mtval ];
    (* v2: current privilege level. *)
    put_u8 w t.priv

  let load t r =
    let open Snapshot.Codec in
    for i = 0 to 31 do
      t.regs.(i) <- get_u32 r
    done;
    for i = 0 to 31 do
      t.rtags.(i) <- get_u32 r
    done;
    t.pc <- get_u32 r;
    t.cur_pc <- get_u32 r;
    t.insn_word <- get_u32 r;
    t.insn_tag <- get_u32 r;
    t.instret <- get_i64 r;
    t.local_cycles <- get_i64 r;
    t.in_wfi <- get_bool r;
    t.syncing <- get_bool r;
    let tag = get_u8 r in
    let code = get_i64 r in
    t.exit_reason <- decode_exit tag code;
    let c = t.csrf in
    c.Csr.v_mstatus <- get_u32 r;
    c.Csr.v_mie <- get_u32 r;
    c.Csr.v_mip <- get_u32 r;
    c.Csr.v_mtvec <- get_u32 r;
    c.Csr.v_mscratch <- get_u32 r;
    c.Csr.v_mepc <- get_u32 r;
    c.Csr.v_mcause <- get_u32 r;
    c.Csr.v_mtval <- get_u32 r;
    c.Csr.t_mstatus <- get_u32 r;
    c.Csr.t_mie <- get_u32 r;
    c.Csr.t_mip <- get_u32 r;
    c.Csr.t_mtvec <- get_u32 r;
    c.Csr.t_mscratch <- get_u32 r;
    c.Csr.t_mepc <- get_u32 r;
    c.Csr.t_mcause <- get_u32 r;
    c.Csr.t_mtval <- get_u32 r;
    (* v1 snapshots predate the privilege architecture; everything ran in
       machine mode then. [set_priv] so a privilege change invalidates any
       compiled chains. *)
    set_priv t
      (if Snapshot.Codec.reader_version r >= 2 then get_u8 r else Csr.priv_m);
    (* A snapshot taken at a pause has the thread parked on its sync
       notification ([syncing] = true); the restored core is back at that
       same checkpoint, so it counts as paused — which keeps it saveable
       again before anything runs. [clear_paused]/running simply drops the
       flag. *)
    t.paused <- t.syncing;
    t.pause_at <- max_int;
    t.fast <- false;
    (* The restored state came from an arbitrary other run: drop the
       exit-edge profile and force every inline cache to re-validate.
       (The memory restore already flushed the compiled blocks through
       the write hook; this covers cores restored without one.) *)
    t.prev_cb <- None;
    t.flush_epoch <- t.flush_epoch + 1
end

module Vp = Make (struct let tracking = false end)
module Vp_dift = Make (struct let tracking = true end)
