(** The RV32IM CPU core, functorised over the taint-tracking mode.

    [Make (struct let tracking = false end)] is the plain VP flavour;
    [Make (struct let tracking = true end)] is VP+ with the DIFT engine
    woven into the execute loop, reproducing the paper's three
    modifications: tainted register/CSR types, execution-clearance checks,
    and a tainted memory interface (Section V-B).

    Taint semantics (VP+):
    - ALU results carry the LUB of the source-register tags and the
      instruction's own tag (immediates inherit the code's class);
    - loads carry the LUB of the loaded bytes' tags; stores tag every
      written byte with the source register's tag;
    - execution clearance: the fetched word's tag is checked against the
      fetch-unit clearance, branch conditions / indirect-jump targets /
      trap-vector tags against the branch clearance, and load/store base
      addresses against the memory-address clearance (Section V-B2);
    - stores into policy-protected regions check the data tag against the
      region's required class.

    Performance machinery (both flavours, see [docs/perf.md]):
    - a decoded basic-block cache over the DMI (RAM) region: straight-line
      runs terminated by a control transfer are fetched and decoded once
      and dispatched from pre-decoded arrays; stores into cached code
      (self-modifying code via the CPU, DMA via the memory model) invalidate
      overlapping blocks through {!flush_code};
    - three pluggable execution {!engine}s over that cache, selected at
      [create] time: [Interp] runs cached blocks through the
      per-instruction execute loop; [Threaded] compiles each block into a
      chain of closures — one per instruction, operands pre-resolved,
      chained tail-first — with an untainted specialization per block
      whose tag plumbing is compiled out entirely;
      [Threaded_superblock] (the default) additionally recompiles hot
      block pairs into superblocks chained across their exit edge and
      inline-caches [jalr] targets, so hot control transfers skip the
      dispatcher (and on the fast side the per-entry register-tag rescan)
      entirely. All engines retire identical architectural state, tags,
      counters, hook streams and snapshots (pinned by [test_threaded] /
      [test_superblock] and the difftest engine-differential legs);
    - an untainted fast path (VP+ only): while every live register tag and
      every fetched word's tag is the lattice bottom and the bottom tag
      passes all static clearances, tag propagation and monitor checks are
      skipped (interpreter) or compiled out (threaded engine); the first
      non-bottom tag re-enables full tracking mid-block. Violation
      behaviour and final tag state are unchanged; only
      {!Dift.Monitor.check_count} undercounts (harnesses that need exact
      check accounting veto it via {!Dift.Monitor.set_fast_path_ok}). *)

exception Fatal_trap of { cause : int; pc : int; tval : int }
(** A synchronous trap occurred while [mtvec] is 0 (no handler installed),
    or a trap was raised from within the trap path. *)

type exit_reason =
  | Running
  | Exited of int  (** Firmware called the exit ecall (a7=93, code in a0). *)
  | Breakpoint  (** [ebreak] executed. *)
  | Insn_limit  (** The configured instruction budget was exhausted. *)

type trap_event =
  | Trap_enter of { cause : int; epc : int; tval : int; handler : int }
      (** A trap (synchronous or interrupt) was taken: [cause] is the raw
          [mcause] value (bit 31 set for interrupts), [epc]/[tval] the values
          written to [mepc]/[mtval], [handler] the resolved (possibly
          vectored) target pc. *)
  | Trap_return of { target : int; to_priv : int }
      (** [mret] executed: [target] is the restored pc, [to_priv] the
          privilege level returned to. *)

type engine =
  | Interp
      (** Dispatch cached blocks through the per-instruction execute
          loop. *)
  | Threaded
      (** Compile each cached block into a threaded-code closure chain
          with an untainted specialization. *)
  | Threaded_superblock
      (** [Threaded], plus superblock chaining of hot block pairs and
          inline caches on [jalr] targets (default). Chains participate
          in SMC/DMA flush-epoch invalidation, [set_trace] flushing and
          cross-engine snapshot restore exactly like single-block
          chains. *)

val engine_name : engine -> string
(** ["interp"] / ["threaded"] / ["superblock"] — stable names for CLIs
    and bench rows. *)

val engine_of_string : string -> engine option
(** Inverse of {!engine_name} (also accepts ["interpreter"] and
    ["threaded-superblock"]/["threaded_superblock"]). *)

module type MODE = sig
  val tracking : bool
end

module type S = sig
  type t

  val create :
    kernel:Sysc.Kernel.t ->
    bus:Bus_if.t ->
    policy:Dift.Policy.t ->
    monitor:Dift.Monitor.t ->
    ?cycle_time:Sysc.Time.t ->
    ?quantum:int ->
    ?block_cache:bool ->
    ?fast_path:bool ->
    ?engine:engine ->
    ?strict_align:bool ->
    pc:int ->
    unit ->
    t
  (** [cycle_time] is the modelled cost of one instruction (default 10 ns);
      [quantum] the number of local cycles the core runs ahead before
      synchronising with the kernel (default 1000, loosely-timed style).
      [block_cache] (default true) enables the decoded basic-block cache
      (requires a DMI region); [fast_path] (default true) enables the
      untainted fast path on top of it (tracking flavour only).
      [engine] (default [Threaded_superblock]) selects how cached blocks
      are executed; with [block_cache] off (or no DMI region) every
      engine degrades to single-stepping and the choice is irrelevant.
      [strict_align] (default false) traps naturally misaligned data
      accesses with causes 4/6 instead of letting the bus split them. *)

  (** {1 Architectural state} *)

  val pc : t -> int
  val set_pc : t -> int -> unit
  val get_reg : t -> Reg.t -> int
  val get_reg_tag : t -> Reg.t -> Dift.Lattice.tag
  val set_reg : t -> Reg.t -> int -> unit
  (** Sets the register with the lattice-bottom (public/trusted) tag. *)

  val set_reg_tagged : t -> Reg.t -> int -> Dift.Lattice.tag -> unit
  val csr : t -> Csr.t
  val instret : t -> int

  val priv : t -> int
  (** Current privilege level: {!Csr.priv_m} (3) or {!Csr.priv_u} (0).
      Resets to machine mode; trap entry raises to M, [mret] drops to
      [mstatus.MPP]. *)

  (** {1 Interrupt lines (driven by CLINT / PLIC)} *)

  val set_irq : t -> bit:int -> bool -> unit
  (** Set or clear an [mip] bit ({!Csr.bit_mti}, {!Csr.bit_msi},
      {!Csr.bit_mei}) and wake the core if it is in [wfi]. *)

  (** {1 Execution} *)

  val step : t -> unit
  (** Execute one instruction (taking a pending enabled interrupt first).
      Must run inside a kernel process if firmware touches TLM peripherals
      whose transport suspends, or uses [wfi]. *)

  val spawn_thread : ?stop_kernel_on_halt:bool -> t -> unit
  (** Register the fetch-decode-execute loop as a kernel process (default
      name ["cpu"]). When the core halts and [stop_kernel_on_halt] is true
      (default), the whole simulation stops. *)

  val set_max_instructions : t -> int -> unit
  val exit_reason : t -> exit_reason
  val halted : t -> bool

  val halt : t -> exit_reason -> unit
  (** Force the core to stop (used by peripherals/tests). *)

  val unhalt : t -> unit
  (** Clear a halt back to [Running]. Only meaningful on a core that has
      not executed past the halt point — the warm-start protocol restores
      a boot snapshot taken with a zero instruction budget (so the core
      halted with {!Insn_limit} at [instret = 0] before its first fetch)
      and un-halts it before loading the real firmware; see
      {!Vp.Soc.boot_snapshot}. No-op when already running. *)

  val set_trace : t -> (int -> Insn.t -> unit) option -> unit
  (** Install (or remove) a per-instruction hook, called with the pc and
      decoded instruction before execution (tracing / coverage).

      Contract (pinned by the [hook x block cache] tier-1 test): the hook
      observes {e every} retired instruction {e exactly once}, in
      retirement order, with the fetch pc — regardless of whether the
      instruction was single-stepped, dispatched from a decoded
      basic-block cache entry, or retired on the untainted fast path.
      [instret] equals the number of hook invocations at any observation
      point. The hook runs after fetch + decode and before execution, so
      register/memory state visible to it is the pre-execution state; an
      instruction whose {e fetch} faults (bus error, DIFT exec-fetch
      violation) is not reported, and interrupt entry reports no event of
      its own (the first handler instruction is reported normally).
      Installing a hook does not flush cached blocks and does not disable
      the fast path. *)

  val set_trap_hook : t -> (trap_event -> unit) option -> unit
  (** Install (or remove) an observer of trap entries and [mret]s, fired
      after the architectural state change (so [mepc]/[mcause]/[mtval] and
      the new pc are already visible). Trap-taking instructions always
      execute on the shared slow path (they are block breakers), so the
      hook sees identical streams from both engines and installing it
      flushes nothing. *)

  val set_merge_hook : t -> (int -> int -> int -> unit) option -> unit
  (** Install (or remove) a tag-merge observer, called as [f a b r] for
      every LUB the core computes during tag propagation ([r = lub a b],
      including trivial joins where [r] equals an input — filter
      downstream). Never called on the untainted fast path (no LUBs
      happen there) or on the plain VP (no tracking). One load-and-branch
      per LUB when unset; used by the provenance tracker. *)

  (** {1 Block cache and fast path} *)

  val flush_code : t -> addr:int -> len:int -> unit
  (** Invalidate cached basic blocks overlapping
      [addr .. addr + len - 1]. Wired automatically to {!Bus_if}'s DMI
      store hook at [create] time; external writers that bypass the bus
      (loaders, DMA models not routed through {!Vp}'s memory) must call it
      themselves. No-op when the block cache is disabled. *)

  val blocks_built : t -> int
  (** Number of basic blocks fetch-decoded so far (rebuilds after
      invalidation count again). Superblock recompilation reuses the
      already-decoded block and does not count. *)

  val superblocks_built : t -> int
  (** Number of hot block pairs recompiled into a chained superblock
      ([Threaded_superblock] engine only; 0 otherwise). *)

  val chain_hits : t -> int
  (** Number of times execution crossed a superblock seam directly into
      the chained successor, skipping the dispatcher. *)

  val ic_hits : t -> int
  (** Number of [jalr] retirements that jumped through a valid inline
      cache straight into the target's compiled chain. *)

  val ic_misses : t -> int
  (** Number of [jalr] retirements (with an off-fall-through target) that
      fell back to the dispatcher: cold caches filling in, flush-epoch
      invalidations re-validating, and polymorphic sites being demoted. *)

  val fast_retired : t -> int
  (** Number of instructions retired on the untainted fast path (0 when
      [fast_path] is off or the flavour is non-tracking). *)

  (** {1 Checkpoint / restore}

      The core synchronises with the kernel through a named event
      (["cpu.sync"]) rather than [wait_for], so a paused core's only
      kernel-side state is one pending timed notification — serialisable
      by {!Sysc.Kernel.pending_timed}. See [docs/snapshot.md]. *)

  val set_pause_at : t -> int -> unit
  (** Request a pause at the first time-sync boundary where [instret] has
      reached the given count. Pausing stops the kernel with the CPU
      thread parked on its pending sync notification; it does not perturb
      the schedule — resuming (or restoring a snapshot taken there)
      continues bit-identically to an uninterrupted run. *)

  val paused : t -> bool
  (** True after a requested pause has been taken (cleared by [load] and
      {!clear_paused}). *)

  val clear_paused : t -> unit
  (** Acknowledge the pause before resuming the kernel. *)

  val save : t -> Snapshot.Codec.writer -> unit
  (** Serialise the architectural state: registers and their taint tags,
      [pc], in-flight instruction word/tag, [instret], wfi/sync flags,
      exit reason, and all CSR values and tags. Decoded-block, compiled
      threaded-code and decode caches are derived state, rebuilt on
      demand, and are not saved. *)

  val load : t -> Snapshot.Codec.reader -> unit
  (** Restore state written by [save] into a freshly created core, before
      {!spawn_thread}. The target core may use a different {!engine} or
      [block_cache] setting than the one that saved: the snapshot holds
      only architectural state, and both engines produce identical
      snapshots at identical instruction counts (pinned by the
      cross-engine case in [test_snapshot]). *)
end

module Make (_ : MODE) : S

module Vp : S
(** The plain VP core. *)

module Vp_dift : S
(** The VP+ core with DIFT enabled. *)
