exception Bus_error of { addr : int; write : bool }

type dmi = { base : int; limit : int; data : Bytes.t; tags : Bytes.t }

type t = {
  socket : Tlm.Socket.initiator;
  lat : Dift.Lattice.t;
  default_tag : int;
  tracking : bool;
  mutable dmi : dmi option;
  p1 : Tlm.Payload.t;
  p2 : Tlm.Payload.t;
  p4 : Tlm.Payload.t;
  mutable last_tag : int;
  mutable acc_delay : Sysc.Time.t;
  (* Invoked with (addr, width) after every DMI store so the core can
     invalidate decoded basic blocks covering the written bytes. MMIO
     stores never hit cached code (blocks only exist over the DMI region),
     so the TLM path does not fire it. *)
  mutable on_code_write : int -> int -> unit;
  mutable on_merge : (int -> int -> int -> unit) option;
}

let create ~lattice ~default_tag ~tracking ~name =
  let payload len =
    Tlm.Payload.create ~len ~default_tag ()
  in
  {
    socket = Tlm.Socket.initiator ~name;
    lat = lattice;
    default_tag;
    tracking;
    dmi = None;
    p1 = payload 1;
    p2 = payload 2;
    p4 = payload 4;
    last_tag = default_tag;
    acc_delay = Sysc.Time.zero;
    on_code_write = (fun _ _ -> ());
    on_merge = None;
  }

let socket b = b.socket

let set_dmi b ~base ~data ~tags =
  if Bytes.length data <> Bytes.length tags then
    invalid_arg "Bus_if.set_dmi: data/tags length mismatch";
  b.dmi <- Some { base; limit = base + Bytes.length data - 1; data; tags }

let clear_dmi b = b.dmi <- None

let dmi_range b =
  match b.dmi with Some d -> Some (d.base, d.limit) | None -> None
let last_tag b = b.last_tag
let set_code_write_hook b f = b.on_code_write <- f
let set_merge_hook b f = b.on_merge <- f

let take_delay b =
  let d = b.acc_delay in
  b.acc_delay <- Sysc.Time.zero;
  d

let payload_for b = function
  | 1 -> b.p1
  | 2 -> b.p2
  | 4 -> b.p4
  | w -> invalid_arg (Printf.sprintf "Bus_if: unsupported access width %d" w)

let mmio_load b ~width ~addr =
  let p = payload_for b width in
  p.Tlm.Payload.cmd <- Tlm.Payload.Read;
  p.Tlm.Payload.addr <- addr;
  p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
  Tlm.Payload.set_all_tags p b.default_tag;
  let delay = Tlm.Socket.transport b.socket p Sysc.Time.zero in
  if not (Tlm.Payload.ok p) then raise (Bus_error { addr; write = false });
  b.acc_delay <- Sysc.Time.add b.acc_delay delay;
  let v = ref 0 and t = ref (Tlm.Payload.get_tag p 0) in
  for i = width - 1 downto 0 do
    v := (!v lsl 8) lor Tlm.Payload.get_byte p i
  done;
  (match b.on_merge with
  | None ->
      for i = 1 to width - 1 do
        t := Dift.Lattice.lub b.lat !t (Tlm.Payload.get_tag p i)
      done
  | Some f ->
      for i = 1 to width - 1 do
        let x = Tlm.Payload.get_tag p i in
        let r = Dift.Lattice.lub b.lat !t x in
        f !t x r;
        t := r
      done);
  b.last_tag <- !t;
  !v

let mmio_store b ~width ~addr ~value ~tag =
  let p = payload_for b width in
  p.Tlm.Payload.cmd <- Tlm.Payload.Write;
  p.Tlm.Payload.addr <- addr;
  p.Tlm.Payload.resp <- Tlm.Payload.Ok_resp;
  for i = 0 to width - 1 do
    Tlm.Payload.set_byte p i ((value lsr (8 * i)) land 0xff);
    Tlm.Payload.set_tag p i tag
  done;
  let delay = Tlm.Socket.transport b.socket p Sysc.Time.zero in
  if not (Tlm.Payload.ok p) then raise (Bus_error { addr; write = true });
  b.acc_delay <- Sysc.Time.add b.acc_delay delay

let load b ~width ~addr =
  match b.dmi with
  | Some d when addr >= d.base && addr + width - 1 <= d.limit ->
      let off = addr - d.base in
      if b.tracking then begin
        let t = ref (Char.code (Bytes.unsafe_get d.tags off)) in
        (* The merge hook is matched outside the byte loop so the common
           (no-tracer) configuration keeps its original inner loop. *)
        (match b.on_merge with
        | None ->
            for i = 1 to width - 1 do
              t :=
                Dift.Lattice.lub b.lat !t
                  (Char.code (Bytes.unsafe_get d.tags (off + i)))
            done
        | Some f ->
            for i = 1 to width - 1 do
              let x = Char.code (Bytes.unsafe_get d.tags (off + i)) in
              let r = Dift.Lattice.lub b.lat !t x in
              f !t x r;
              t := r
            done);
        b.last_tag <- !t
      end;
      (match width with
      | 1 -> Bytes.get_uint8 d.data off
      | 2 -> Bytes.get_uint16_le d.data off
      | 4 -> Int32.to_int (Bytes.get_int32_le d.data off) land 0xffffffff
      | w -> invalid_arg (Printf.sprintf "Bus_if: unsupported access width %d" w))
  | Some _ | None ->
      b.last_tag <- b.default_tag;
      mmio_load b ~width ~addr

let store b ~width ~addr ~value ~tag =
  match b.dmi with
  | Some d when addr >= d.base && addr + width - 1 <= d.limit ->
      let off = addr - d.base in
      (match width with
      | 1 -> Bytes.set_uint8 d.data off (value land 0xff)
      | 2 -> Bytes.set_uint16_le d.data off (value land 0xffff)
      | 4 -> Bytes.set_int32_le d.data off (Int32.of_int value)
      | w -> invalid_arg (Printf.sprintf "Bus_if: unsupported access width %d" w));
      if b.tracking then begin
        let c = Char.chr tag in
        for i = 0 to width - 1 do
          Bytes.unsafe_set d.tags (off + i) c
        done
      end;
      b.on_code_write addr width
  | Some _ | None -> mmio_store b ~width ~addr ~value ~tag

let mem_tag b ~addr =
  match b.dmi with
  | Some d when addr >= d.base && addr <= d.limit ->
      Some (Char.code (Bytes.get d.tags (addr - d.base)))
  | Some _ | None -> None
