(** A golden-model RV32IM interpreter: an independent, deliberately naive
    re-implementation of the ISA semantics over a flat memory image, with
    no taint, no kernel, no peripherals and no decode caching.

    Used purely for differential verification of the production {!Core}
    (cf. the coverage-guided ISS-fuzzing work the paper cites): the same
    program run here and on the VP must produce identical registers,
    memory, CSRs and trap behaviour.

    The machine-mode architecture (mstatus stacking, mtvec direct and
    vectored modes, mepc/mcause/mtval, CSR privilege and WARL masks,
    U-mode, mret) is re-implemented locally — nothing is shared with
    {!Csr} — so a trap-semantics bug on either side surfaces as a
    differential. A synchronous trap with no handler installed
    ([mtvec] base 0) terminates the run, mirroring the VP's [Fatal_trap]
    convention; with a handler it vectors exactly like the VP. The model
    has no interrupt sources ([mip] always reads 0) and, matching the
    production core's one-cycle-per-instruction timing, every counter CSR
    reads as the retired-instruction count. *)

type t

val create : mem_base:int -> mem_size:int -> t

val load : t -> addr:int -> string -> unit
(** Copy bytes into memory. Raises [Invalid_argument] out of range. *)

val set_pc : t -> int -> unit
val set_reg : t -> int -> int -> unit
val reg : t -> int -> int
val pc : t -> int

val priv : t -> int
(** Current privilege level (3 = machine, 0 = user). *)

val mem_byte : t -> int -> int

type stop =
  | Exited of int  (** The machine-mode exit ecall (a7 = 93). *)
  | Trap of int
      (** A trap with no handler installed; the would-be mcause. *)
  | Limit  (** Instruction budget exhausted. *)

val run : t -> max_insns:int -> stop * int
(** Execute until a stopping condition; returns the reason and the number
    of instructions retired. *)
