let mstatus = 0x300
let misa = 0x301
let mie = 0x304
let mtvec = 0x305
let mscratch = 0x340
let mepc = 0x341
let mcause = 0x342
let mtval = 0x343
let mip = 0x344
let mhartid = 0xf14
let mvendorid = 0xf11
let marchid = 0xf12
let mimpid = 0xf13
let mcycle = 0xb00
let minstret = 0xb02
let cycle = 0xc00
let time_csr = 0xc01
let instret = 0xc02
let mstatus_mie = 1 lsl 3
let mstatus_mpie = 1 lsl 7
let mstatus_mpp_shift = 11
let mstatus_mpp_mask = 3 lsl mstatus_mpp_shift
let priv_u = 0
let priv_m = 3
let bit_msi = 1 lsl 3
let bit_mti = 1 lsl 7
let bit_mei = 1 lsl 11
let cause_fetch_misaligned = 0
let cause_fetch_fault = 1
let cause_illegal = 2
let cause_breakpoint = 3
let cause_load_misaligned = 4
let cause_load_fault = 5
let cause_store_misaligned = 6
let cause_store_fault = 7
let cause_ecall_u = 8
let cause_ecall_m = 11
let cause_interrupt bit = 0x80000000 lor bit

let cause_name c =
  if c land 0x80000000 <> 0 then
    match c land 0x7fffffff with
    | 3 -> "machine-software-irq"
    | 7 -> "machine-timer-irq"
    | 11 -> "machine-external-irq"
    | n -> Printf.sprintf "irq-%d" n
  else
    match c with
    | 0 -> "fetch-misaligned"
    | 1 -> "fetch-fault"
    | 2 -> "illegal-instruction"
    | 3 -> "breakpoint"
    | 4 -> "load-misaligned"
    | 5 -> "load-fault"
    | 6 -> "store-misaligned"
    | 7 -> "store-fault"
    | 8 -> "ecall-u"
    | 11 -> "ecall-m"
    | n -> Printf.sprintf "cause-%d" n

(* Privilege level required to touch a CSR lives in address bits [9:8]. *)
let required_priv num = (num lsr 8) land 3

type t = {
  mutable v_mstatus : int;
  mutable v_mie : int;
  mutable v_mip : int;
  mutable v_mtvec : int;
  mutable v_mscratch : int;
  mutable v_mepc : int;
  mutable v_mcause : int;
  mutable v_mtval : int;
  mutable t_mstatus : int;
  mutable t_mie : int;
  mutable t_mip : int;
  mutable t_mtvec : int;
  mutable t_mscratch : int;
  mutable t_mepc : int;
  mutable t_mcause : int;
  mutable t_mtval : int;
  default_tag : int;
}

let create ~default_tag =
  {
    (* MPP = machine (bits 11..12), interrupts initially disabled. *)
    v_mstatus = 0x1800;
    v_mie = 0;
    v_mip = 0;
    v_mtvec = 0;
    v_mscratch = 0;
    v_mepc = 0;
    v_mcause = 0;
    v_mtval = 0;
    t_mstatus = default_tag;
    t_mie = default_tag;
    t_mip = default_tag;
    t_mtvec = default_tag;
    t_mscratch = default_tag;
    t_mepc = default_tag;
    t_mcause = default_tag;
    t_mtval = default_tag;
    default_tag;
  }

(* RV32IM with U-mode: MXL=1, extensions I, M and U. *)
let misa_value = 0x40000000 lor (1 lsl 8) lor (1 lsl 12) lor (1 lsl 20)

let mtvec_base v = v land 0xfffffffc
let mtvec_mode v = v land 3
let mstatus_mpp v = (v lsr mstatus_mpp_shift) land 3

let read c ~cycles ~instret:n_instret num =
  if num = mstatus then Some (c.v_mstatus, c.t_mstatus)
  else if num = mie then Some (c.v_mie, c.t_mie)
  else if num = mip then Some (c.v_mip, c.t_mip)
  else if num = mtvec then Some (c.v_mtvec, c.t_mtvec)
  else if num = mscratch then Some (c.v_mscratch, c.t_mscratch)
  else if num = mepc then Some (c.v_mepc, c.t_mepc)
  else if num = mcause then Some (c.v_mcause, c.t_mcause)
  else if num = mtval then Some (c.v_mtval, c.t_mtval)
  else if num = misa then Some (misa_value, c.default_tag)
  else if num = mhartid || num = mvendorid || num = marchid || num = mimpid
  then Some (0, c.default_tag)
  else if num = mcycle || num = cycle then
    Some (cycles land 0xffffffff, c.default_tag)
  else if num = minstret || num = instret then
    Some (n_instret land 0xffffffff, c.default_tag)
  else if num = time_csr then Some (cycles land 0xffffffff, c.default_tag)
  else None

let write c num ~value ~tag =
  if num = mstatus then begin
    (* Writable fields: MIE, MPIE, MPP. MPP is WARL over {U, M}: the
       unimplemented S/H encodings snap to M. *)
    let mpp = (value lsr mstatus_mpp_shift) land 3 in
    let mpp = if mpp = priv_u then priv_u else priv_m in
    c.v_mstatus <-
      (mpp lsl mstatus_mpp_shift)
      lor (value land (mstatus_mie lor mstatus_mpie));
    c.t_mstatus <- tag;
    true
  end
  else if num = mie then begin
    c.v_mie <- value land (bit_msi lor bit_mti lor bit_mei);
    c.t_mie <- tag;
    true
  end
  else if num = mip then
    (* Software may not set external/timer pending bits directly. *)
    true
  else if num = mtvec then begin
    (* WARL: base is 4-byte aligned; mode 0 (direct) and 1 (vectored) are
       implemented, the reserved modes snap to direct. *)
    let mode = value land 3 in
    c.v_mtvec <- (value land 0xfffffffc) lor (if mode <= 1 then mode else 0);
    c.t_mtvec <- tag;
    true
  end
  else if num = mscratch then begin
    c.v_mscratch <- value land 0xffffffff;
    c.t_mscratch <- tag;
    true
  end
  else if num = mepc then begin
    c.v_mepc <- value land 0xfffffffc;
    c.t_mepc <- tag;
    true
  end
  else if num = mcause then begin
    c.v_mcause <- value land 0xffffffff;
    c.t_mcause <- tag;
    true
  end
  else if num = mtval then begin
    c.v_mtval <- value land 0xffffffff;
    c.t_mtval <- tag;
    true
  end
  else if num = misa then true (* WARL: writes ignored *)
  else false
