type t = {
  mem_base : int;
  mem : Bytes.t;
  regs : int array;
  mutable pc : int;
  mutable retired : int;
  (* Machine-mode state, spelled out locally: the golden model shares no
     CSR code with the production core, so a WARL-mask or trap-stacking
     bug in either side shows up as a differential. *)
  mutable priv : int;
  mutable mstatus : int;
  mutable mie : int;
  mutable mtvec : int;
  mutable mscratch : int;
  mutable mepc : int;
  mutable mcause : int;
  mutable mtval : int;
}

type stop = Exited of int | Trap of int | Limit

let create ~mem_base ~mem_size =
  {
    mem_base;
    mem = Bytes.make mem_size '\000';
    regs = Array.make 32 0;
    pc = mem_base;
    retired = 0;
    priv = 3;
    mstatus = 0x1800;
    mie = 0;
    mtvec = 0;
    mscratch = 0;
    mepc = 0;
    mcause = 0;
    mtval = 0;
  }

let load t ~addr s =
  if addr < t.mem_base || addr + String.length s > t.mem_base + Bytes.length t.mem
  then invalid_arg "Golden.load: out of range";
  Bytes.blit_string s 0 t.mem (addr - t.mem_base) (String.length s)

let set_pc t v = t.pc <- v land 0xffffffff
let set_reg t r v = if r <> 0 then t.regs.(r) <- v land 0xffffffff
let reg t r = t.regs.(r)
let pc t = t.pc
let priv t = t.priv
let mem_byte t addr = Bytes.get_uint8 t.mem (addr - t.mem_base)

let u32 v = v land 0xffffffff
let s32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

exception Stop of stop
exception Mem_fault of { cause : int; addr : int }

let in_range t addr width =
  addr >= t.mem_base && addr + width <= t.mem_base + Bytes.length t.mem

let load_v t width addr =
  if not (in_range t addr width) then raise_notrace (Mem_fault { cause = 5; addr });
  let off = addr - t.mem_base in
  match width with
  | 1 -> Bytes.get_uint8 t.mem off
  | 2 -> Bytes.get_uint16_le t.mem off
  | _ -> Int32.to_int (Bytes.get_int32_le t.mem off) land 0xffffffff

let store_v t width addr v =
  if not (in_range t addr width) then raise_notrace (Mem_fault { cause = 7; addr });
  let off = addr - t.mem_base in
  match width with
  | 1 -> Bytes.set_uint8 t.mem off (v land 0xff)
  | 2 -> Bytes.set_uint16_le t.mem off (v land 0xffff)
  | _ -> Bytes.set_int32_le t.mem off (Int32.of_int v)

(* A synchronous trap: with no handler installed the run stops (the
   pre-privilege convention, kept for programs that never touch mtvec);
   otherwise stack MIE/MPIE/MPP, raise to machine mode and vector. *)
let enter_trap t ~cause ~tval ~epc =
  if t.mtvec land 0xfffffffc = 0 then raise (Stop (Trap cause));
  t.mepc <- epc;
  t.mcause <- u32 cause;
  t.mtval <- u32 tval;
  let mie = (t.mstatus lsr 3) land 1 in
  t.mstatus <- (t.mstatus land lnot 0x1888) lor (mie lsl 7) lor (t.priv lsl 11);
  t.priv <- 3;
  let base = t.mtvec land 0xfffffffc in
  t.pc <-
    (if t.mtvec land 3 = 1 && cause land 0x80000000 <> 0 then
       u32 (base + (4 * (cause land 0x7fffffff)))
     else base)

(* CSR reads; the production core models one cycle per instruction, so
   every counter reads as the retired-instruction count. *)
let csr_read t num =
  match num with
  | 0x300 -> Some t.mstatus
  | 0x301 -> Some 0x40101100 (* misa: MXL=1, extensions I, M, U *)
  | 0x304 -> Some t.mie
  | 0x305 -> Some t.mtvec
  | 0x340 -> Some t.mscratch
  | 0x341 -> Some t.mepc
  | 0x342 -> Some t.mcause
  | 0x343 -> Some t.mtval
  | 0x344 -> Some 0 (* mip: the golden model has no interrupt sources *)
  | 0xf11 | 0xf12 | 0xf13 | 0xf14 -> Some 0
  | 0xb00 | 0xb02 | 0xc00 | 0xc01 | 0xc02 -> Some (u32 t.retired)
  | _ -> None

let csr_write t num v =
  match num with
  | 0x300 ->
      (* Writable: MIE, MPIE, MPP; MPP is WARL over {U, M}. *)
      let mpp = if (v lsr 11) land 3 = 0 then 0 else 3 in
      t.mstatus <- (mpp lsl 11) lor (v land 0x88);
      true
  | 0x301 -> true (* misa is WARL: writes ignored *)
  | 0x304 ->
      t.mie <- v land 0x888;
      true
  | 0x305 ->
      (* Base 4-aligned; modes 0/1 implemented, reserved modes snap to 0. *)
      let mode = v land 3 in
      t.mtvec <- (v land 0xfffffffc) lor (if mode <= 1 then mode else 0);
      true
  | 0x340 ->
      t.mscratch <- u32 v;
      true
  | 0x341 ->
      t.mepc <- v land 0xfffffffc;
      true
  | 0x342 ->
      t.mcause <- u32 v;
      true
  | 0x343 ->
      t.mtval <- u32 v;
      true
  | 0x344 -> true (* software may not pend interrupts directly *)
  | _ -> false

let do_csr t pc0 word rd num ~src ~op ~do_write =
  if t.priv < (num lsr 8) land 3 then enter_trap t ~cause:2 ~tval:word ~epc:pc0
  else
    match csr_read t num with
    | None -> enter_trap t ~cause:2 ~tval:word ~epc:pc0
    | Some old ->
        let ok =
          if do_write then
            let v =
              match op with
              | `W -> src
              | `S -> old lor src
              | `C -> old land lnot src land 0xffffffff
            in
            csr_write t num v
          else true
        in
        if ok then (if rd <> 0 then t.regs.(rd) <- old)
        else enter_trap t ~cause:2 ~tval:word ~epc:pc0

let step t =
  let open Insn in
  let pc0 = t.pc in
  if pc0 land 3 <> 0 then enter_trap t ~cause:0 ~tval:pc0 ~epc:pc0
  else if not (in_range t pc0 4) then enter_trap t ~cause:1 ~tval:pc0 ~epc:pc0
  else begin
    let word = Int32.to_int (Bytes.get_int32_le t.mem (pc0 - t.mem_base)) land 0xffffffff in
    let r = t.regs in
    let wr rd v = if rd <> 0 then r.(rd) <- u32 v in
    t.pc <- u32 (pc0 + 4);
    try
      match Decode.decode word with
      | LUI (rd, imm) -> wr rd imm
      | AUIPC (rd, imm) -> wr rd (pc0 + imm)
      | JAL (rd, off) ->
          wr rd (pc0 + 4);
          t.pc <- u32 (pc0 + off)
      | JALR (rd, rs1, off) ->
          let target = u32 (r.(rs1) + off) land lnot 1 in
          wr rd (pc0 + 4);
          t.pc <- target
      | BEQ (a, b, off) -> if r.(a) = r.(b) then t.pc <- u32 (pc0 + off)
      | BNE (a, b, off) -> if r.(a) <> r.(b) then t.pc <- u32 (pc0 + off)
      | BLT (a, b, off) -> if s32 r.(a) < s32 r.(b) then t.pc <- u32 (pc0 + off)
      | BGE (a, b, off) -> if s32 r.(a) >= s32 r.(b) then t.pc <- u32 (pc0 + off)
      | BLTU (a, b, off) -> if r.(a) < r.(b) then t.pc <- u32 (pc0 + off)
      | BGEU (a, b, off) -> if r.(a) >= r.(b) then t.pc <- u32 (pc0 + off)
      | LB (rd, rs1, off) ->
          let v = load_v t 1 (u32 (r.(rs1) + off)) in
          wr rd (if v land 0x80 <> 0 then v lor 0xffffff00 else v)
      | LH (rd, rs1, off) ->
          let v = load_v t 2 (u32 (r.(rs1) + off)) in
          wr rd (if v land 0x8000 <> 0 then v lor 0xffff0000 else v)
      | LW (rd, rs1, off) -> wr rd (load_v t 4 (u32 (r.(rs1) + off)))
      | LBU (rd, rs1, off) -> wr rd (load_v t 1 (u32 (r.(rs1) + off)))
      | LHU (rd, rs1, off) -> wr rd (load_v t 2 (u32 (r.(rs1) + off)))
      | SB (rs1, rs2, off) -> store_v t 1 (u32 (r.(rs1) + off)) r.(rs2)
      | SH (rs1, rs2, off) -> store_v t 2 (u32 (r.(rs1) + off)) r.(rs2)
      | SW (rs1, rs2, off) -> store_v t 4 (u32 (r.(rs1) + off)) r.(rs2)
      | ADDI (rd, rs1, imm) -> wr rd (r.(rs1) + imm)
      | SLTI (rd, rs1, imm) -> wr rd (if s32 r.(rs1) < imm then 1 else 0)
      | SLTIU (rd, rs1, imm) -> wr rd (if r.(rs1) < u32 imm then 1 else 0)
      | XORI (rd, rs1, imm) -> wr rd (r.(rs1) lxor u32 imm)
      | ORI (rd, rs1, imm) -> wr rd (r.(rs1) lor u32 imm)
      | ANDI (rd, rs1, imm) -> wr rd (r.(rs1) land u32 imm)
      | SLLI (rd, rs1, sh) -> wr rd (r.(rs1) lsl sh)
      | SRLI (rd, rs1, sh) -> wr rd (r.(rs1) lsr sh)
      | SRAI (rd, rs1, sh) -> wr rd (s32 r.(rs1) asr sh)
      | ADD (rd, a, b) -> wr rd (r.(a) + r.(b))
      | SUB (rd, a, b) -> wr rd (r.(a) - r.(b))
      | SLL (rd, a, b) -> wr rd (r.(a) lsl (r.(b) land 31))
      | SLT (rd, a, b) -> wr rd (if s32 r.(a) < s32 r.(b) then 1 else 0)
      | SLTU (rd, a, b) -> wr rd (if r.(a) < r.(b) then 1 else 0)
      | XOR (rd, a, b) -> wr rd (r.(a) lxor r.(b))
      | SRL (rd, a, b) -> wr rd (r.(a) lsr (r.(b) land 31))
      | SRA (rd, a, b) -> wr rd (s32 r.(a) asr (r.(b) land 31))
      | OR (rd, a, b) -> wr rd (r.(a) lor r.(b))
      | AND (rd, a, b) -> wr rd (r.(a) land r.(b))
      | MUL (rd, a, b) ->
          wr rd (Int64.to_int (Int64.mul (Int64.of_int r.(a)) (Int64.of_int r.(b))))
      | MULH (rd, a, b) ->
          wr rd
            (Int64.to_int
               (Int64.shift_right
                  (Int64.mul (Int64.of_int (s32 r.(a))) (Int64.of_int (s32 r.(b))))
                  32))
      | MULHSU (rd, a, b) ->
          wr rd
            (Int64.to_int
               (Int64.shift_right
                  (Int64.mul (Int64.of_int (s32 r.(a))) (Int64.of_int r.(b)))
                  32))
      | MULHU (rd, a, b) ->
          wr rd
            (Int64.to_int
               (Int64.shift_right_logical
                  (Int64.mul (Int64.of_int r.(a)) (Int64.of_int r.(b)))
                  32))
      | DIV (rd, a, b) ->
          let x = s32 r.(a) and y = s32 r.(b) in
          wr rd
            (if y = 0 then -1
             else if x = -0x80000000 && y = -1 then -0x80000000
             else x / y)
      | DIVU (rd, a, b) -> wr rd (if r.(b) = 0 then 0xffffffff else r.(a) / r.(b))
      | REM (rd, a, b) ->
          let x = s32 r.(a) and y = s32 r.(b) in
          wr rd (if y = 0 then x else if x = -0x80000000 && y = -1 then 0 else x mod y)
      | REMU (rd, a, b) -> wr rd (if r.(b) = 0 then r.(a) else r.(a) mod r.(b))
      | FENCE -> ()
      | ECALL ->
          if t.priv = 3 && r.(17) = 93 then raise (Stop (Exited (s32 r.(10))))
          else
            enter_trap t
              ~cause:(if t.priv = 3 then 11 else 8)
              ~tval:0 ~epc:pc0
      | EBREAK ->
          if t.mtvec land 0xfffffffc <> 0 then
            enter_trap t ~cause:3 ~tval:pc0 ~epc:pc0
          else raise (Stop (Trap 3))
      | MRET ->
          if t.priv <> 3 then enter_trap t ~cause:2 ~tval:word ~epc:pc0
          else begin
            let mpie = (t.mstatus lsr 7) land 1 in
            let mpp = (t.mstatus lsr 11) land 3 in
            (* Unstack: MIE <- MPIE, MPIE <- 1, priv <- MPP, MPP <- U. *)
            t.mstatus <- (t.mstatus land lnot 0x1808) lor (mpie lsl 3) lor 0x80;
            t.priv <- mpp;
            t.pc <- u32 t.mepc
          end
      | WFI -> raise (Stop (Trap 2))
      | CSRRW (rd, rs1, n) ->
          do_csr t pc0 word rd n ~src:r.(rs1) ~op:`W ~do_write:true
      | CSRRS (rd, rs1, n) ->
          do_csr t pc0 word rd n ~src:r.(rs1) ~op:`S ~do_write:(rs1 <> 0)
      | CSRRC (rd, rs1, n) ->
          do_csr t pc0 word rd n ~src:r.(rs1) ~op:`C ~do_write:(rs1 <> 0)
      | CSRRWI (rd, z, n) -> do_csr t pc0 word rd n ~src:z ~op:`W ~do_write:true
      | CSRRSI (rd, z, n) ->
          do_csr t pc0 word rd n ~src:z ~op:`S ~do_write:(z <> 0)
      | CSRRCI (rd, z, n) ->
          do_csr t pc0 word rd n ~src:z ~op:`C ~do_write:(z <> 0)
      | ILLEGAL w -> enter_trap t ~cause:2 ~tval:w ~epc:pc0
    with Mem_fault { cause; addr } -> enter_trap t ~cause ~tval:addr ~epc:pc0
  end

let run t ~max_insns =
  let n = ref 0 in
  try
    while !n < max_insns do
      t.retired <- !n;
      step t;
      incr n
    done;
    (Limit, !n)
  with Stop s -> (s, !n + 1)
