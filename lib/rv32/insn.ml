type t =
  | LUI of int * int
  | AUIPC of int * int
  | JAL of int * int
  | JALR of int * int * int
  | BEQ of int * int * int
  | BNE of int * int * int
  | BLT of int * int * int
  | BGE of int * int * int
  | BLTU of int * int * int
  | BGEU of int * int * int
  | LB of int * int * int
  | LH of int * int * int
  | LW of int * int * int
  | LBU of int * int * int
  | LHU of int * int * int
  | SB of int * int * int
  | SH of int * int * int
  | SW of int * int * int
  | ADDI of int * int * int
  | SLTI of int * int * int
  | SLTIU of int * int * int
  | XORI of int * int * int
  | ORI of int * int * int
  | ANDI of int * int * int
  | SLLI of int * int * int
  | SRLI of int * int * int
  | SRAI of int * int * int
  | ADD of int * int * int
  | SUB of int * int * int
  | SLL of int * int * int
  | SLT of int * int * int
  | SLTU of int * int * int
  | XOR of int * int * int
  | SRL of int * int * int
  | SRA of int * int * int
  | OR of int * int * int
  | AND of int * int * int
  | MUL of int * int * int
  | MULH of int * int * int
  | MULHSU of int * int * int
  | MULHU of int * int * int
  | DIV of int * int * int
  | DIVU of int * int * int
  | REM of int * int * int
  | REMU of int * int * int
  | FENCE
  | ECALL
  | EBREAK
  | MRET
  | WFI
  | CSRRW of int * int * int
  | CSRRS of int * int * int
  | CSRRC of int * int * int
  | CSRRWI of int * int * int
  | CSRRSI of int * int * int
  | CSRRCI of int * int * int
  | ILLEGAL of int

let is_branch = function
  | BEQ _ | BNE _ | BLT _ | BGE _ | BLTU _ | BGEU _ -> true
  | _ -> false

let is_jump = function JAL _ | JALR _ -> true | _ -> false

let is_memory = function
  | LB _ | LH _ | LW _ | LBU _ | LHU _ | SB _ | SH _ | SW _ -> true
  | _ -> false

let opcode = function
  | LUI _ -> "lui"
  | AUIPC _ -> "auipc"
  | JAL _ -> "jal"
  | JALR _ -> "jalr"
  | BEQ _ -> "beq"
  | BNE _ -> "bne"
  | BLT _ -> "blt"
  | BGE _ -> "bge"
  | BLTU _ -> "bltu"
  | BGEU _ -> "bgeu"
  | LB _ -> "lb"
  | LH _ -> "lh"
  | LW _ -> "lw"
  | LBU _ -> "lbu"
  | LHU _ -> "lhu"
  | SB _ -> "sb"
  | SH _ -> "sh"
  | SW _ -> "sw"
  | ADDI _ -> "addi"
  | SLTI _ -> "slti"
  | SLTIU _ -> "sltiu"
  | XORI _ -> "xori"
  | ORI _ -> "ori"
  | ANDI _ -> "andi"
  | SLLI _ -> "slli"
  | SRLI _ -> "srli"
  | SRAI _ -> "srai"
  | ADD _ -> "add"
  | SUB _ -> "sub"
  | SLL _ -> "sll"
  | SLT _ -> "slt"
  | SLTU _ -> "sltu"
  | XOR _ -> "xor"
  | SRL _ -> "srl"
  | SRA _ -> "sra"
  | OR _ -> "or"
  | AND _ -> "and"
  | MUL _ -> "mul"
  | MULH _ -> "mulh"
  | MULHSU _ -> "mulhsu"
  | MULHU _ -> "mulhu"
  | DIV _ -> "div"
  | DIVU _ -> "divu"
  | REM _ -> "rem"
  | REMU _ -> "remu"
  | FENCE -> "fence"
  | ECALL -> "ecall"
  | EBREAK -> "ebreak"
  | MRET -> "mret"
  | WFI -> "wfi"
  | CSRRW _ -> "csrrw"
  | CSRRS _ -> "csrrs"
  | CSRRC _ -> "csrrc"
  | CSRRWI _ -> "csrrwi"
  | CSRRSI _ -> "csrrsi"
  | CSRRCI _ -> "csrrci"
  | ILLEGAL _ -> "illegal"

let rv32im_opcodes =
  [
    "lui"; "auipc"; "jal"; "jalr";
    "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu";
    "lb"; "lh"; "lw"; "lbu"; "lhu"; "sb"; "sh"; "sw";
    "addi"; "slti"; "sltiu"; "xori"; "ori"; "andi"; "slli"; "srli"; "srai";
    "add"; "sub"; "sll"; "slt"; "sltu"; "xor"; "srl"; "sra"; "or"; "and";
    "mul"; "mulh"; "mulhsu"; "mulhu"; "div"; "divu"; "rem"; "remu";
    "fence"; "ecall";
  ]

let writes_rd = function
  | LUI (rd, _) | AUIPC (rd, _) | JAL (rd, _) -> Some rd
  | JALR (rd, _, _) -> Some rd
  | LB (rd, _, _) | LH (rd, _, _) | LW (rd, _, _) | LBU (rd, _, _)
  | LHU (rd, _, _) ->
      Some rd
  | ADDI (rd, _, _) | SLTI (rd, _, _) | SLTIU (rd, _, _) | XORI (rd, _, _)
  | ORI (rd, _, _) | ANDI (rd, _, _) | SLLI (rd, _, _) | SRLI (rd, _, _)
  | SRAI (rd, _, _) ->
      Some rd
  | ADD (rd, _, _) | SUB (rd, _, _) | SLL (rd, _, _) | SLT (rd, _, _)
  | SLTU (rd, _, _) | XOR (rd, _, _) | SRL (rd, _, _) | SRA (rd, _, _)
  | OR (rd, _, _) | AND (rd, _, _) ->
      Some rd
  | MUL (rd, _, _) | MULH (rd, _, _) | MULHSU (rd, _, _) | MULHU (rd, _, _)
  | DIV (rd, _, _) | DIVU (rd, _, _) | REM (rd, _, _) | REMU (rd, _, _) ->
      Some rd
  | CSRRW (rd, _, _) | CSRRS (rd, _, _) | CSRRC (rd, _, _)
  | CSRRWI (rd, _, _) | CSRRSI (rd, _, _) | CSRRCI (rd, _, _) ->
      Some rd
  | BEQ _ | BNE _ | BLT _ | BGE _ | BLTU _ | BGEU _ | SB _ | SH _ | SW _
  | FENCE | ECALL | EBREAK | MRET | WFI | ILLEGAL _ ->
      None
