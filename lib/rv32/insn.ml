type t =
  | LUI of int * int
  | AUIPC of int * int
  | JAL of int * int
  | JALR of int * int * int
  | BEQ of int * int * int
  | BNE of int * int * int
  | BLT of int * int * int
  | BGE of int * int * int
  | BLTU of int * int * int
  | BGEU of int * int * int
  | LB of int * int * int
  | LH of int * int * int
  | LW of int * int * int
  | LBU of int * int * int
  | LHU of int * int * int
  | SB of int * int * int
  | SH of int * int * int
  | SW of int * int * int
  | ADDI of int * int * int
  | SLTI of int * int * int
  | SLTIU of int * int * int
  | XORI of int * int * int
  | ORI of int * int * int
  | ANDI of int * int * int
  | SLLI of int * int * int
  | SRLI of int * int * int
  | SRAI of int * int * int
  | ADD of int * int * int
  | SUB of int * int * int
  | SLL of int * int * int
  | SLT of int * int * int
  | SLTU of int * int * int
  | XOR of int * int * int
  | SRL of int * int * int
  | SRA of int * int * int
  | OR of int * int * int
  | AND of int * int * int
  | MUL of int * int * int
  | MULH of int * int * int
  | MULHSU of int * int * int
  | MULHU of int * int * int
  | DIV of int * int * int
  | DIVU of int * int * int
  | REM of int * int * int
  | REMU of int * int * int
  | FENCE
  | ECALL
  | EBREAK
  | MRET
  | WFI
  | CSRRW of int * int * int
  | CSRRS of int * int * int
  | CSRRC of int * int * int
  | CSRRWI of int * int * int
  | CSRRSI of int * int * int
  | CSRRCI of int * int * int
  | ILLEGAL of int

let is_branch = function
  | BEQ _ | BNE _ | BLT _ | BGE _ | BLTU _ | BGEU _ -> true
  | _ -> false

let is_jump = function JAL _ | JALR _ -> true | _ -> false

let is_memory = function
  | LB _ | LH _ | LW _ | LBU _ | LHU _ | SB _ | SH _ | SW _ -> true
  | _ -> false

let opcode = function
  | LUI _ -> "lui"
  | AUIPC _ -> "auipc"
  | JAL _ -> "jal"
  | JALR _ -> "jalr"
  | BEQ _ -> "beq"
  | BNE _ -> "bne"
  | BLT _ -> "blt"
  | BGE _ -> "bge"
  | BLTU _ -> "bltu"
  | BGEU _ -> "bgeu"
  | LB _ -> "lb"
  | LH _ -> "lh"
  | LW _ -> "lw"
  | LBU _ -> "lbu"
  | LHU _ -> "lhu"
  | SB _ -> "sb"
  | SH _ -> "sh"
  | SW _ -> "sw"
  | ADDI _ -> "addi"
  | SLTI _ -> "slti"
  | SLTIU _ -> "sltiu"
  | XORI _ -> "xori"
  | ORI _ -> "ori"
  | ANDI _ -> "andi"
  | SLLI _ -> "slli"
  | SRLI _ -> "srli"
  | SRAI _ -> "srai"
  | ADD _ -> "add"
  | SUB _ -> "sub"
  | SLL _ -> "sll"
  | SLT _ -> "slt"
  | SLTU _ -> "sltu"
  | XOR _ -> "xor"
  | SRL _ -> "srl"
  | SRA _ -> "sra"
  | OR _ -> "or"
  | AND _ -> "and"
  | MUL _ -> "mul"
  | MULH _ -> "mulh"
  | MULHSU _ -> "mulhsu"
  | MULHU _ -> "mulhu"
  | DIV _ -> "div"
  | DIVU _ -> "divu"
  | REM _ -> "rem"
  | REMU _ -> "remu"
  | FENCE -> "fence"
  | ECALL -> "ecall"
  | EBREAK -> "ebreak"
  | MRET -> "mret"
  | WFI -> "wfi"
  | CSRRW _ -> "csrrw"
  | CSRRS _ -> "csrrs"
  | CSRRC _ -> "csrrc"
  | CSRRWI _ -> "csrrwi"
  | CSRRSI _ -> "csrrsi"
  | CSRRCI _ -> "csrrci"
  | ILLEGAL _ -> "illegal"

let rv32im_opcodes =
  [
    "lui"; "auipc"; "jal"; "jalr";
    "beq"; "bne"; "blt"; "bge"; "bltu"; "bgeu";
    "lb"; "lh"; "lw"; "lbu"; "lhu"; "sb"; "sh"; "sw";
    "addi"; "slti"; "sltiu"; "xori"; "ori"; "andi"; "slli"; "srli"; "srai";
    "add"; "sub"; "sll"; "slt"; "sltu"; "xor"; "srl"; "sra"; "or"; "and";
    "mul"; "mulh"; "mulhsu"; "mulhu"; "div"; "divu"; "rem"; "remu";
    "fence"; "ecall";
  ]

let writes_rd = function
  | LUI (rd, _) | AUIPC (rd, _) | JAL (rd, _) -> Some rd
  | JALR (rd, _, _) -> Some rd
  | LB (rd, _, _) | LH (rd, _, _) | LW (rd, _, _) | LBU (rd, _, _)
  | LHU (rd, _, _) ->
      Some rd
  | ADDI (rd, _, _) | SLTI (rd, _, _) | SLTIU (rd, _, _) | XORI (rd, _, _)
  | ORI (rd, _, _) | ANDI (rd, _, _) | SLLI (rd, _, _) | SRLI (rd, _, _)
  | SRAI (rd, _, _) ->
      Some rd
  | ADD (rd, _, _) | SUB (rd, _, _) | SLL (rd, _, _) | SLT (rd, _, _)
  | SLTU (rd, _, _) | XOR (rd, _, _) | SRL (rd, _, _) | SRA (rd, _, _)
  | OR (rd, _, _) | AND (rd, _, _) ->
      Some rd
  | MUL (rd, _, _) | MULH (rd, _, _) | MULHSU (rd, _, _) | MULHU (rd, _, _)
  | DIV (rd, _, _) | DIVU (rd, _, _) | REM (rd, _, _) | REMU (rd, _, _) ->
      Some rd
  | CSRRW (rd, _, _) | CSRRS (rd, _, _) | CSRRC (rd, _, _)
  | CSRRWI (rd, _, _) | CSRRSI (rd, _, _) | CSRRCI (rd, _, _) ->
      Some rd
  | BEQ _ | BNE _ | BLT _ | BGE _ | BLTU _ | BGEU _ | SB _ | SH _ | SW _
  | FENCE | ECALL | EBREAK | MRET | WFI | ILLEGAL _ ->
      None

let rs1 = function
  | JALR (_, rs1, _) -> rs1
  | BEQ (rs1, _, _) | BNE (rs1, _, _) | BLT (rs1, _, _) | BGE (rs1, _, _)
  | BLTU (rs1, _, _) | BGEU (rs1, _, _) ->
      rs1
  | LB (_, rs1, _) | LH (_, rs1, _) | LW (_, rs1, _) | LBU (_, rs1, _)
  | LHU (_, rs1, _) ->
      rs1
  | SB (rs1, _, _) | SH (rs1, _, _) | SW (rs1, _, _) -> rs1
  | ADDI (_, rs1, _) | SLTI (_, rs1, _) | SLTIU (_, rs1, _) | XORI (_, rs1, _)
  | ORI (_, rs1, _) | ANDI (_, rs1, _) | SLLI (_, rs1, _) | SRLI (_, rs1, _)
  | SRAI (_, rs1, _) ->
      rs1
  | ADD (_, rs1, _) | SUB (_, rs1, _) | SLL (_, rs1, _) | SLT (_, rs1, _)
  | SLTU (_, rs1, _) | XOR (_, rs1, _) | SRL (_, rs1, _) | SRA (_, rs1, _)
  | OR (_, rs1, _) | AND (_, rs1, _) ->
      rs1
  | MUL (_, rs1, _) | MULH (_, rs1, _) | MULHSU (_, rs1, _)
  | MULHU (_, rs1, _) | DIV (_, rs1, _) | DIVU (_, rs1, _) | REM (_, rs1, _)
  | REMU (_, rs1, _) ->
      rs1
  | CSRRW (_, rs1, _) | CSRRS (_, rs1, _) | CSRRC (_, rs1, _) -> rs1
  | LUI _ | AUIPC _ | JAL _ | FENCE | ECALL | EBREAK | MRET | WFI
  | CSRRWI _ | CSRRSI _ | CSRRCI _ | ILLEGAL _ ->
      0

let rs2 = function
  | BEQ (_, rs2, _) | BNE (_, rs2, _) | BLT (_, rs2, _) | BGE (_, rs2, _)
  | BLTU (_, rs2, _) | BGEU (_, rs2, _) ->
      rs2
  | SB (_, rs2, _) | SH (_, rs2, _) | SW (_, rs2, _) -> rs2
  | ADD (_, _, rs2) | SUB (_, _, rs2) | SLL (_, _, rs2) | SLT (_, _, rs2)
  | SLTU (_, _, rs2) | XOR (_, _, rs2) | SRL (_, _, rs2) | SRA (_, _, rs2)
  | OR (_, _, rs2) | AND (_, _, rs2) ->
      rs2
  | MUL (_, _, rs2) | MULH (_, _, rs2) | MULHSU (_, _, rs2)
  | MULHU (_, _, rs2) | DIV (_, _, rs2) | DIVU (_, _, rs2) | REM (_, _, rs2)
  | REMU (_, _, rs2) ->
      rs2
  | LUI _ | AUIPC _ | JAL _ | JALR _ | LB _ | LH _ | LW _ | LBU _ | LHU _
  | ADDI _ | SLTI _ | SLTIU _ | XORI _ | ORI _ | ANDI _ | SLLI _ | SRLI _
  | SRAI _ | FENCE | ECALL | EBREAK | MRET | WFI | CSRRW _ | CSRRS _
  | CSRRC _ | CSRRWI _ | CSRRSI _ | CSRRCI _ | ILLEGAL _ ->
      0
