(** The CPU's memory interface: translates loads/stores/fetches into TLM
    transactions carrying tainted bytes (modification 3 of Section V-B1),
    with an optional direct-memory-interface (DMI) fast path into RAM.

    Hot-path convention: {!load} returns the value; the tag of the accessed
    data is left in {!last_tag} to avoid allocating result tuples in the
    execute loop, and timing annotations of TLM transactions accumulate
    until the core drains them with {!take_delay}. *)

exception Bus_error of { addr : int; write : bool }
(** Access to an unmapped address or a target error; the core converts this
    into a load/store access-fault trap. *)

type t

val create :
  lattice:Dift.Lattice.t ->
  default_tag:Dift.Lattice.tag ->
  tracking:bool ->
  name:string ->
  t
(** [tracking:false] (the plain-VP flavour) skips all tag bookkeeping on the
    DMI path; tags still travel in TLM payloads so peripherals are oblivious
    to the mode. *)

val socket : t -> Tlm.Socket.initiator
(** Bind this to the SoC router. *)

val set_dmi : t -> base:int -> data:Bytes.t -> tags:Bytes.t -> unit
(** Register a DMI region: accesses to [base .. base + |data| - 1] touch the
    byte buffers directly, bypassing the router. *)

val clear_dmi : t -> unit

val dmi_range : t -> (int * int) option
(** [(base, limit)] of the registered DMI region, if any (the core sizes
    its pc-indexed decode cache from this). *)

val load : t -> width:int -> addr:int -> int
(** Zero-extended little-endian value of [width] (1, 2 or 4) bytes.
    Sets {!last_tag} (LUB of byte tags). *)

val store : t -> width:int -> addr:int -> value:int -> tag:Dift.Lattice.tag -> unit
(** Write [width] low bytes of [value]; every byte receives [tag]. *)

val last_tag : t -> Dift.Lattice.tag

val set_code_write_hook : t -> (int -> int -> unit) -> unit
(** Install a callback fired with [(addr, width)] after every store taken
    on the DMI path. The core uses this to invalidate decoded basic blocks
    on self-modifying code; stores routed over TLM are covered by the
    memory model's own write hook instead. *)

val set_merge_hook : t -> (int -> int -> int -> unit) option -> unit
(** Install (or clear) a tag-merge observer, called as [f a b r] for each
    LUB taken while folding byte tags of a multi-byte load (both the DMI
    and the MMIO path). Trivial joins ([r] equal to an input) are
    reported too; filter downstream. Used by the provenance tracker; the
    no-observer configuration keeps the original fold loop. *)

val take_delay : t -> Sysc.Time.t
(** Return and reset the accumulated TLM timing annotation. *)

val mem_tag : t -> addr:int -> Dift.Lattice.tag option
(** Tag of a byte via DMI, if the address is in the DMI region (test and
    diagnostic aid). *)
