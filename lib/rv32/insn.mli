(** Decoded RV32IM(+Zicsr) instructions.

    Field conventions: [rd], [rs1], [rs2] are register indices; immediates
    and branch/jump offsets are sign-extended OCaml ints; [LUI]/[AUIPC]
    immediates are the already-shifted 32-bit upper value (bits 31..12 set,
    low 12 zero, as an unsigned int). *)

type t =
  (* Upper-immediate *)
  | LUI of int * int  (** rd, imm (shifted, unsigned 32-bit) *)
  | AUIPC of int * int  (** rd, imm (shifted, unsigned 32-bit) *)
  (* Jumps *)
  | JAL of int * int  (** rd, pc-relative offset *)
  | JALR of int * int * int  (** rd, rs1, offset *)
  (* Conditional branches: rs1, rs2, pc-relative offset *)
  | BEQ of int * int * int
  | BNE of int * int * int
  | BLT of int * int * int
  | BGE of int * int * int
  | BLTU of int * int * int
  | BGEU of int * int * int
  (* Loads: rd, rs1 (base), offset *)
  | LB of int * int * int
  | LH of int * int * int
  | LW of int * int * int
  | LBU of int * int * int
  | LHU of int * int * int
  (* Stores: rs1 (base), rs2 (source), offset *)
  | SB of int * int * int
  | SH of int * int * int
  | SW of int * int * int
  (* Register-immediate ALU: rd, rs1, imm (shamt for shifts) *)
  | ADDI of int * int * int
  | SLTI of int * int * int
  | SLTIU of int * int * int
  | XORI of int * int * int
  | ORI of int * int * int
  | ANDI of int * int * int
  | SLLI of int * int * int
  | SRLI of int * int * int
  | SRAI of int * int * int
  (* Register-register ALU: rd, rs1, rs2 *)
  | ADD of int * int * int
  | SUB of int * int * int
  | SLL of int * int * int
  | SLT of int * int * int
  | SLTU of int * int * int
  | XOR of int * int * int
  | SRL of int * int * int
  | SRA of int * int * int
  | OR of int * int * int
  | AND of int * int * int
  (* M extension: rd, rs1, rs2 *)
  | MUL of int * int * int
  | MULH of int * int * int
  | MULHSU of int * int * int
  | MULHU of int * int * int
  | DIV of int * int * int
  | DIVU of int * int * int
  | REM of int * int * int
  | REMU of int * int * int
  (* System *)
  | FENCE
  | ECALL
  | EBREAK
  | MRET
  | WFI
  (* Zicsr: rd, rs1 (or zero-extended immediate for the *I forms), csr *)
  | CSRRW of int * int * int
  | CSRRS of int * int * int
  | CSRRC of int * int * int
  | CSRRWI of int * int * int
  | CSRRSI of int * int * int
  | CSRRCI of int * int * int
  | ILLEGAL of int  (** Raw instruction word (unsigned 32-bit). *)

val opcode : t -> string
(** Lowercase mnemonic ("addi", "mulhsu", ...); ["illegal"] for
    {!ILLEGAL}. Stable keys for coverage tables. *)

val rv32im_opcodes : string list
(** Every user-mode RV32IM mnemonic a firmware program can retire on this
    platform without trapping (the base integer set, the M extension,
    [fence] and [ecall]) — the coverage target of the difftest fuzzer.
    Excludes [ebreak], the privileged/Zicsr forms and [illegal]. *)

val is_branch : t -> bool
(** Conditional branches only. *)

val is_jump : t -> bool
(** JAL / JALR. *)

val is_memory : t -> bool
(** Loads and stores. *)

val writes_rd : t -> int option
(** Destination register, if the instruction writes one. *)

val rs1 : t -> int
(** First source-register index; [0] (x0, always untainted) when the
    instruction has none — so [rs1]/[rs2] can feed a register-tag lookup
    unconditionally. The CSR immediate forms report 0. *)

val rs2 : t -> int
(** Second source-register index, with the same [0] convention. *)
