(** A simple imperative binary min-heap, used for the kernel's timed event
    queue. Keys are integers (simulation times); ties pop in an unspecified
    but deterministic order (the kernel adds a sequence number for FIFO
    behaviour among equal times). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> key:int -> 'a -> unit

val min_key : 'a t -> int option
(** Key of the minimum element without removing it. *)

val min : 'a t -> (int * 'a) option
(** The minimum element without removing it. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-key element. *)

val to_list : 'a t -> (int * 'a) list
(** All (key, value) pairs in unspecified order, without disturbing the
    heap (snapshot support). *)

val clear : 'a t -> unit
