(** An event-driven simulation kernel with SystemC-like semantics.

    Processes are cooperative coroutines implemented with OCaml 5 effect
    handlers (the analogue of [SC_THREAD]). The scheduler follows the
    SystemC evaluate / update / delta-notification / timed-notification
    phase order:

    - all runnable processes run to their next [wait] (evaluation phase);
    - pending primitive-channel updates run (update phase, used by
      {!Signal});
    - delta notifications wake their waiting processes (a new delta cycle);
    - when nothing is runnable, time advances to the earliest timed
      notification.

    Notification override rule (IEEE-1666 5.10.8): an event carries at
    most one pending notification. A new timed notification is discarded
    if one is already pending at an earlier or equal instant, and replaces
    a pending later one; a delta notification overrides any timed one; an
    immediate notification fires at once and cancels whatever was pending.
    Same-instant wakeups — timed notifications and resumed [wait_for]s
    alike — fire in arming order (a global sequence number), and every
    wakeup goes through the runnable queue, so the evaluation phase runs
    processes in one deterministic order. Both properties are what make
    {!pending_timed}/{!restore} sufficient to checkpoint and resume a
    simulation without perturbing its schedule. *)

type t
(** A kernel instance. Kernels are independent; each VP builds its own. *)

type event
(** A notifiable event (cf. [sc_event]). *)

exception Deadlock of string
(** Raised by {!run} if {!set_expect_progress} is on and the simulation
    runs out of events while processes are still alive and waiting
    (useful to catch lost interrupts / missing notifications). *)

val create : unit -> t

val now : t -> Time.t
(** Current simulation time. *)

val delta_count : t -> int
(** Number of delta cycles executed so far (for tests/statistics). *)

val create_event : t -> string -> event
(** Events are registered by name for {!find_event}/{!restore}; creating a
    second event with the same name shadows the first in the registry (all
    snapshot-relevant event names in this repository are unique). *)

val event_name : event -> string

val find_event : t -> string -> event option
(** The most recently created event of that name, if any. *)

(** {1 Processes} *)

val spawn : t -> name:string -> (unit -> unit) -> unit
(** Register a process; it becomes runnable at the start of simulation (or
    immediately, if spawned during simulation). A process runs until it
    performs one of the [wait_*] operations below, halts, or returns. An
    exception escaping a process aborts the simulation and is re-raised by
    {!run}. *)

(** The following may only be called from inside a process spawned on some
    kernel; calling them elsewhere raises [Effect.Unhandled]. *)

val wait_for : Time.t -> unit
(** Suspend the calling process for a simulated duration. *)

val wait_event : event -> unit
(** Suspend until the event is notified. *)

val wait_any : event list -> unit
(** Suspend until any of the events is notified. *)

val halt : unit -> unit
(** Terminate the calling process. *)

(** {1 Notification} *)

val notify : event -> unit
(** Delta notification: waiters wake in the next delta cycle. *)

val notify_immediate : event -> unit
(** Immediate notification: waiters wake in the current evaluation phase. *)

val notify_after : event -> Time.t -> unit
(** Timed notification (relative delay), subject to the override rule:
    kept only if no earlier notification is pending on the event. *)

val cancel : event -> unit
(** Cancel any pending (delta or timed) notification (cf.
    [sc_event::cancel]). Immediate notifications cannot be cancelled. *)

val pending_notification : event -> Time.t option
(** Absolute instant of the event's pending notification, if any (a
    pending delta notification reports the current time). *)

val request_update : t -> (unit -> unit) -> unit
(** Run a thunk in the next update phase (primitive-channel support). *)

(** {1 Running} *)

val run : ?until:Time.t -> t -> unit
(** Run the simulation until no activity remains, [stop] is called, or
    simulated time would exceed [until]. May be called repeatedly to resume
    (e.g. with increasing [until]). *)

val stop : t -> unit
(** Request the simulation to stop; takes effect at the next scheduling
    point. Callable from inside a process. *)

val stopped : t -> bool

val set_expect_progress : t -> bool -> unit
(** When on, {!run} raises {!Deadlock} if it returns for lack of events
    while spawned processes are still waiting (default off; [stop] and
    [~until] returns are never deadlocks). *)

val live_processes : t -> int
(** Number of spawned processes that have neither returned nor halted. *)

(** {1 Snapshot support}

    Process continuations cannot be serialised, so a kernel can only be
    checkpointed at a {e quiescent} instant: nothing runnable, no pending
    updates or delta notifications, and every pending timed notification
    addressed to a {e named event} (no [wait_for] thunks in flight). The
    VP arranges this by restructuring every long-lived process to wait on
    events armed with {!notify_after} and pausing the CPU at a time-sync
    boundary; see [docs/snapshot.md]. *)

val quiescent : t -> bool
(** True when the kernel state is fully described by [(now, delta_count,
    pending_timed)] — the precondition of a checkpoint. *)

val pending_timed : t -> (string * Time.t) list
(** Live pending timed notifications as [(event name, absolute instant)],
    in arming (sequence) order. Raises [Invalid_argument] if an anonymous
    timed thunk is pending (the kernel is not quiescent). *)

val restore : t -> now:Time.t -> deltas:int -> notifications:(string * Time.t) list -> unit
(** Reset the clock and delta counter and re-arm pending notifications (in
    list order, preserving their relative firing order at equal instants).
    Any notifications armed before the call — e.g. initial arms made by
    freshly-constructed modules — are cancelled first: the saved list is
    the complete pending set. Must run on a freshly built kernel whose
    events have been created but whose processes have not yet run; raises
    [Invalid_argument] for an unknown event name. *)
