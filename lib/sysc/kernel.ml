type event = {
  ev_name : string;
  ev_kernel : t;
  mutable waiters : (unit -> unit) list;  (* newest first *)
  (* At most one notification may be pending per event (IEEE-1666 override
     rule): either a delta notification or a live timed entry, never both. *)
  mutable pending_delta : bool;
  mutable pending_timed : timed_entry option;
  mutable pending_at : Time.t;  (* meaningful iff pending_timed <> None *)
}

(* Timed work is either a named event wakeup — serialisable, the override
   rule applies — or an anonymous thunk ([wait_for] continuations and
   {!schedule_timed} internals), which snapshots reject. A cancelled entry
   stays in the heap and is skipped when its instant is reached. *)
and timed_action = Wake of event | Thunk of (unit -> unit)
and timed_entry = { seq : int; action : timed_action; mutable cancelled : bool }

and t = {
  mutable now : Time.t;
  runnable : (unit -> unit) Queue.t;
  mutable delta_events : event list;  (* newest first *)
  updates : (unit -> unit) Queue.t;
  timed : timed_entry Heap.t;
  events : (string, event) Hashtbl.t;  (* name -> latest event so named *)
  mutable next_seq : int;
  mutable deltas : int;
  mutable stop_requested : bool;
  mutable error : exn option;
  mutable live : int;
  mutable expect_progress : bool;
  mutable hit_until : bool;
}

exception Deadlock of string

type _ Effect.t +=
  | Wait_time : Time.t -> unit Effect.t
  | Wait_event : event -> unit Effect.t
  | Wait_any : event list -> unit Effect.t
  | Halt : unit Effect.t

let create () =
  {
    now = Time.zero;
    runnable = Queue.create ();
    delta_events = [];
    updates = Queue.create ();
    timed = Heap.create ();
    events = Hashtbl.create 16;
    next_seq = 0;
    deltas = 0;
    stop_requested = false;
    error = None;
    live = 0;
    expect_progress = false;
    hit_until = false;
  }

let now k = k.now
let delta_count k = k.deltas

let create_event k name =
  let e =
    {
      ev_name = name;
      ev_kernel = k;
      waiters = [];
      pending_delta = false;
      pending_timed = None;
      pending_at = Time.zero;
    }
  in
  Hashtbl.replace k.events name e;
  e

let event_name e = e.ev_name
let find_event k name = Hashtbl.find_opt k.events name

let push_entry k at entry = Heap.push k.timed ~key:at entry

let schedule_timed k at thunk =
  k.next_seq <- k.next_seq + 1;
  push_entry k at { seq = k.next_seq; action = Thunk thunk; cancelled = false }

(* Move an event's waiters (in FIFO order) onto the runnable queue. *)
let wake e =
  let ws = List.rev e.waiters in
  e.waiters <- [];
  List.iter (fun w -> Queue.push w e.ev_kernel.runnable) ws

let cancel_timed e =
  match e.pending_timed with
  | Some entry ->
      entry.cancelled <- true;
      e.pending_timed <- None
  | None -> ()

let cancel e =
  cancel_timed e;
  if e.pending_delta then begin
    e.pending_delta <- false;
    let k = e.ev_kernel in
    k.delta_events <- List.filter (fun e' -> e' != e) k.delta_events
  end

(* Immediate notification overrides (cancels) any pending notification. *)
let notify_immediate e =
  cancel e;
  wake e

let notify e =
  let k = e.ev_kernel in
  if not e.pending_delta then begin
    (* A delta notification is earlier than any timed one: it overrides. *)
    cancel_timed e;
    e.pending_delta <- true;
    k.delta_events <- e :: k.delta_events
  end

(* Timed notification at an absolute instant, applying the override rule:
   the notification is discarded if one is already pending at an earlier
   (or equal) instant, and replaces a pending later one. *)
let notify_at_abs e at =
  let k = e.ev_kernel in
  if e.pending_delta then ()
  else
    match e.pending_timed with
    | Some _ when e.pending_at <= at -> ()
    | existing ->
        (match existing with Some _ -> cancel_timed e | None -> ());
        k.next_seq <- k.next_seq + 1;
        let entry = { seq = k.next_seq; action = Wake e; cancelled = false } in
        e.pending_timed <- Some entry;
        e.pending_at <- at;
        push_entry k at entry

let notify_after e t = notify_at_abs e (Time.add e.ev_kernel.now t)
let pending_notification e = if e.pending_delta then Some e.ev_kernel.now
  else match e.pending_timed with Some _ -> Some e.pending_at | None -> None

let request_update k thunk = Queue.push thunk k.updates

let wait_for t = Effect.perform (Wait_time t)
let wait_event e = Effect.perform (Wait_event e)

let wait_any evs =
  match evs with
  | [] -> invalid_arg "Kernel.wait_any: empty event list"
  | [ e ] -> wait_event e
  | _ -> Effect.perform (Wait_any evs)

let halt () = Effect.perform Halt

let stop k = k.stop_requested <- true
let stopped k = k.stop_requested
let set_expect_progress k v = k.expect_progress <- v
let live_processes k = k.live

(* --- Snapshot support ------------------------------------------------- *)

let pending_timed k =
  let live =
    List.filter (fun (_, e) -> not e.cancelled) (Heap.to_list k.timed)
  in
  let live =
    List.sort (fun (_, a) (_, b) -> Int.compare a.seq b.seq) live
  in
  List.map
    (fun (at, e) ->
      match e.action with
      | Wake ev -> (ev.ev_name, at)
      | Thunk _ ->
          invalid_arg
            "Kernel.pending_timed: anonymous timed work pending (wait_for / \
             schedule_timed); the kernel is not at a snapshottable instant")
    live

let quiescent k =
  Queue.is_empty k.runnable
  && Queue.is_empty k.updates
  && k.delta_events = []
  && List.for_all
       (fun (_, e) ->
         e.cancelled || match e.action with Wake _ -> true | Thunk _ -> false)
       (Heap.to_list k.timed)

let restore k ~now ~deltas ~notifications =
  (* Freshly-constructed modules arm their initial notifications at small
     absolute times (the kernel is still at t = 0 during reconstruction);
     under the override rule those earlier arms would beat the saved ones.
     The saved notification list is the complete pending set, so drop
     everything armed so far and rebuild from it alone. *)
  Hashtbl.iter (fun _ e -> cancel e) k.events;
  Heap.clear k.timed;
  k.delta_events <- [];
  k.now <- now;
  k.deltas <- deltas;
  List.iter
    (fun (name, at) ->
      match find_event k name with
      | Some e -> notify_at_abs e at
      | None ->
          invalid_arg
            (Printf.sprintf "Kernel.restore: no event named %S" name))
    notifications

(* --- Processes and the scheduler -------------------------------------- *)

let spawn k ~name fn =
  let open Effect.Deep in
  let record_error e =
    k.live <- k.live - 1;
    if k.error = None then begin
      k.error <- Some e;
      k.stop_requested <- true
    end;
    ignore name
  in
  let run_proc () =
    match_with fn ()
      {
        retc = (fun () -> k.live <- k.live - 1);
        exnc = record_error;
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Wait_time t ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    (* Resumption goes through the runnable queue (not an
                       inline call) so that same-instant wakeups — timed
                       thunks and event waiters alike — run in one
                       deterministic seq-ordered evaluation phase. *)
                    schedule_timed k (Time.add k.now t) (fun () ->
                        Queue.push (fun () -> continue cont ()) k.runnable))
            | Wait_event e ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    e.waiters <- (fun () -> continue cont ()) :: e.waiters)
            | Wait_any evs ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    let fired = ref false in
                    let once () =
                      if not !fired then begin
                        fired := true;
                        continue cont ()
                      end
                    in
                    List.iter (fun e -> e.waiters <- once :: e.waiters) evs)
            | Halt ->
                Some
                  (fun (cont : (a, unit) continuation) ->
                    ignore cont;
                    k.live <- k.live - 1)
            | _ -> None);
      }
  in
  k.live <- k.live + 1;
  Queue.push run_proc k.runnable

let run ?until k =
  k.stop_requested <- false;
  let reraise_error () =
    match k.error with
    | Some e ->
        k.error <- None;
        raise e
    | None -> ()
  in
  let rec loop () =
    if k.stop_requested then ()
    else if not (Queue.is_empty k.runnable) then begin
      (* Evaluation phase. *)
      while (not (Queue.is_empty k.runnable)) && not k.stop_requested do
        (Queue.pop k.runnable) ()
      done;
      (* Update phase. *)
      while not (Queue.is_empty k.updates) do
        (Queue.pop k.updates) ()
      done;
      loop ()
    end
    else if not (Queue.is_empty k.updates) then begin
      (* Updates requested outside an evaluation phase: still honour the
         update phase before delta notification. *)
      while not (Queue.is_empty k.updates) do
        (Queue.pop k.updates) ()
      done;
      loop ()
    end
    else if k.delta_events <> [] then begin
      (* Delta-notification phase: start a new delta cycle. *)
      k.deltas <- k.deltas + 1;
      let evs = List.rev k.delta_events in
      k.delta_events <- [];
      List.iter
        (fun e ->
          e.pending_delta <- false;
          wake e)
        evs;
      loop ()
    end
    else begin
      (* Advance time to the next timed notification. Cancelled entries
         (superseded by the override rule) are dead weight: drop them here
         so they neither advance [now] nor count as pending work. *)
      let rec live_min_key () =
        match Heap.min k.timed with
        | Some (_, entry) when entry.cancelled ->
            ignore (Heap.pop k.timed);
            live_min_key ()
        | Some (t, _) -> Some t
        | None -> None
      in
      match live_min_key () with
      | None -> ()
      | Some t -> (
          match until with
          | Some u when t > u ->
              k.hit_until <- true;
              k.now <- u
          | _ ->
              k.now <- t;
              (* Pop everything scheduled for this instant and fire it in
                 insertion (seq) order; every wakeup lands on the runnable
                 queue, so the subsequent evaluation phase runs processes
                 in that same deterministic order. *)
              let batch = ref [] in
              let rec drain () =
                match Heap.min_key k.timed with
                | Some t' when t' = t -> (
                    match Heap.pop k.timed with
                    | Some (_, entry) ->
                        batch := entry :: !batch;
                        drain ()
                    | None -> ())
                | _ -> ()
              in
              drain ();
              let entries =
                List.sort (fun a b -> Int.compare a.seq b.seq) !batch
              in
              List.iter
                (fun e ->
                  if not e.cancelled then
                    match e.action with
                    | Wake ev ->
                        ev.pending_timed <- None;
                        wake ev
                    | Thunk f -> f ())
                entries;
              loop ())
    end
  in
  k.hit_until <- false;
  loop ();
  reraise_error ();
  if
    k.expect_progress && (not k.stop_requested) && (not k.hit_until)
    && k.live > 0
  then
    raise
      (Deadlock
         (Printf.sprintf "%d process(es) still waiting with no pending events"
            k.live))
