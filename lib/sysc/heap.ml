type 'a entry = { key : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
}

let create () = { arr = Array.make 16 None; len = 0 }
let is_empty h = h.len = 0
let size h = h.len

let grow h =
  let arr = Array.make (2 * Array.length h.arr) None in
  Array.blit h.arr 0 arr 0 h.len;
  h.arr <- arr

let get h i =
  match h.arr.(i) with
  | Some e -> e
  | None -> assert false

let push h ~key value =
  if h.len = Array.length h.arr then grow h;
  let i = ref h.len in
  h.len <- h.len + 1;
  h.arr.(!i) <- Some { key; value };
  (* Sift up. *)
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if (get h !i).key < (get h parent).key then begin
      let tmp = h.arr.(!i) in
      h.arr.(!i) <- h.arr.(parent);
      h.arr.(parent) <- tmp;
      i := parent
    end
    else continue := false
  done

let min_key h = if h.len = 0 then None else Some (get h 0).key

let min h =
  if h.len = 0 then None
  else
    let e = get h 0 in
    Some (e.key, e.value)

let pop h =
  if h.len = 0 then None
  else begin
    let top = get h 0 in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    h.arr.(h.len) <- None;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && (get h l).key < (get h !smallest).key then smallest := l;
      if r < h.len && (get h r).key < (get h !smallest).key then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.arr.(!i) in
        h.arr.(!i) <- h.arr.(!smallest);
        h.arr.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    Some (top.key, top.value)
  end

let to_list h =
  let out = ref [] in
  for i = h.len - 1 downto 0 do
    let e = get h i in
    out := (e.key, e.value) :: !out
  done;
  !out

let clear h =
  Array.fill h.arr 0 (Array.length h.arr) None;
  h.len <- 0
