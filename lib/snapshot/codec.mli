(** A small self-describing binary codec for VP snapshots.

    All integers are little-endian. The format is deliberately hand-rolled
    (no [Marshal]): snapshots must be stable across OCaml versions and
    byte-comparable — two snapshots of identical simulator state are
    identical strings, which is what the determinism tests and the CI
    determinism job diff. *)

exception Corrupt of string
(** Raised by any [get_*] on malformed or truncated input. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string

val put_u8 : writer -> int -> unit
val put_u32 : writer -> int -> unit
(** Low 32 bits of the argument. *)

val put_i64 : writer -> int -> unit
(** A full OCaml [int] (sign-extended to 64 bits). *)

val put_bool : writer -> bool -> unit

val put_varint : writer -> int -> unit
(** Unsigned LEB128: 7 value bits per byte, continuation in the high bit.
    The compact choice for the small ids, counts and deltas of the
    provenance-graph stores ([lib/iftgraph]); raises [Invalid_argument]
    on negative values. *)

val put_string : writer -> string -> unit
(** u32 length followed by the raw bytes. *)

val put_bytes_rle : writer -> Bytes.t -> unit
(** Run-length encoded: long runs of one byte (memory images are mostly
    zeros, tag arrays mostly bottom) collapse to a few bytes; incompressible
    stretches are stored as literals. *)

val put_list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
(** u32 count followed by the elements in order. *)

(** {1 Reading} *)

type reader

val reader : string -> reader

val reader_version : reader -> int
(** Container format version the data was written under. Fresh readers
    assume the current version; {!set_reader_version} overrides (stamped by
    [Soc.restore] from the decoded container so per-section loaders can
    default fields that older snapshots predate). *)

val set_reader_version : reader -> int -> unit

val get_u8 : reader -> int
val get_u32 : reader -> int
val get_i64 : reader -> int
val get_bool : reader -> bool

val get_varint : reader -> int
(** Raises {!Corrupt} if the encoding overflows the OCaml [int] range. *)

val get_string : reader -> string

val get_bytes_rle_into : reader -> Bytes.t -> unit
(** Decodes into [dst]; raises {!Corrupt} if the encoded length differs
    from [Bytes.length dst] (snapshots never resize live buffers). *)

val get_list : reader -> (reader -> 'a) -> 'a list

val expect_end : reader -> unit
(** Raises {!Corrupt} if input remains — catches section drift between the
    writer and reader of a peripheral. *)

(** {1 Containers} *)

(** A snapshot file: magic, format version, and named sections. Section
    order is fixed by the writer, so identical state yields identical
    files. *)
module Container : sig
  val magic : string

  val version : int
  (** Current (newest) format version, always used for writing. *)

  val min_version : int
  (** Oldest version {!decode} still accepts; loaders fill fields newer
      than the stored version with their reset defaults. *)

  val encode : (string * string) list -> string

  val encode_at : version:int -> (string * string) list -> string
  (** Encode under an older (still-supported) format version — the
      sections must already match that version's layout. Exists for
      migration tests and tooling; raises [Invalid_argument] outside
      [min_version..version]. *)

  val decode : string -> (string * string) list
  (** Raises {!Corrupt} on a bad magic or unsupported version. *)

  val decode_versioned : string -> int * (string * string) list
  (** Like {!decode}, also returning the stored format version. *)
end
