(** The interface every checkpointable component implements.

    [save] serialises the component's full dynamic state; [load] restores
    it into an already-constructed instance of the {e same configuration}
    (snapshots carry state, not structure: buffer sizes, base addresses,
    policies and wiring all come from reconstructing the component the
    same way it was originally built). Implementations must write and
    read exactly the same field sequence — {!Codec.expect_end} at the
    section boundary catches drift. *)
module type S = sig
  type t

  val save : t -> Codec.writer -> unit
  val load : t -> Codec.reader -> unit
end
