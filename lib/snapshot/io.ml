let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The temp file lives in the destination directory: [Sys.rename] must
   not cross a filesystem boundary to stay atomic. *)
let write_file_atomic path data =
  let tmp =
    Filename.temp_file
      ~temp_dir:(Filename.dirname path)
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc data);
      Sys.rename tmp path)
