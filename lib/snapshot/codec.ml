exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* --- Writer ---------------------------------------------------------- *)

type writer = Buffer.t

let writer () = Buffer.create 4096
let contents w = Buffer.contents w
let put_u8 w v = Buffer.add_uint8 w (v land 0xff)

let put_u32 w v =
  Buffer.add_uint8 w (v land 0xff);
  Buffer.add_uint8 w ((v lsr 8) land 0xff);
  Buffer.add_uint8 w ((v lsr 16) land 0xff);
  Buffer.add_uint8 w ((v lsr 24) land 0xff)

let put_i64 w v = Buffer.add_int64_le w (Int64.of_int v)
let put_bool w b = put_u8 w (if b then 1 else 0)

(* LEB128, unsigned. Graph stores are mostly small ids and deltas, so
   the one-byte common case halves them versus fixed u32s. *)
let put_varint w v =
  if v < 0 then invalid_arg "Codec.put_varint: negative value";
  let rec go v =
    if v < 0x80 then Buffer.add_uint8 w v
    else begin
      Buffer.add_uint8 w (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

let put_string w s =
  put_u32 w (String.length s);
  Buffer.add_string w s

(* RLE: total length, then ops until exhausted. Op 0 = run (u32 count,
   u8 byte), op 1 = literal (u32 len, raw bytes). Runs shorter than 8
   bytes go into the surrounding literal: below that the run op's 6-byte
   overhead loses. *)
let min_run = 8

let put_bytes_rle w b =
  let n = Bytes.length b in
  put_u32 w n;
  let i = ref 0 in
  let lit_start = ref 0 in
  let flush_literal upto =
    if upto > !lit_start then begin
      put_u8 w 1;
      put_u32 w (upto - !lit_start);
      Buffer.add_subbytes w b !lit_start (upto - !lit_start)
    end
  in
  while !i < n do
    let c = Bytes.unsafe_get b !i in
    let j = ref (!i + 1) in
    while !j < n && Bytes.unsafe_get b !j = c do
      incr j
    done;
    let run = !j - !i in
    if run >= min_run then begin
      flush_literal !i;
      put_u8 w 0;
      put_u32 w run;
      put_u8 w (Char.code c);
      lit_start := !j
    end;
    i := !j
  done;
  flush_literal n

let put_list w f xs =
  put_u32 w (List.length xs);
  List.iter (f w) xs

(* --- Reader ---------------------------------------------------------- *)

(* [version] is the container format version the data was written under
   (stamped by whoever decodes the container, e.g. Soc.restore); loaders
   branch on it to fill fields that older snapshots predate. Fresh readers
   start at the current version. *)
type reader = { src : string; mutable pos : int; mutable version : int }

let current_version = 2
let reader s = { src = s; pos = 0; version = current_version }
let reader_version r = r.version
let set_reader_version r v = r.version <- v

let need r n =
  if r.pos + n > String.length r.src then
    corrupt "truncated input at byte %d (want %d more)" r.pos n

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_le r.src r.pos) land 0xffffffff in
  r.pos <- r.pos + 4;
  v

let get_i64 r =
  need r 8;
  let v64 = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  let v = Int64.to_int v64 in
  if Int64.of_int v <> v64 then corrupt "64-bit value exceeds OCaml int range";
  v

let get_varint r =
  let rec go shift acc =
    if shift > 62 then corrupt "varint exceeds OCaml int range";
    let b = get_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let get_bool r =
  match get_u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "bad boolean byte 0x%02x" v

let get_string r =
  let n = get_u32 r in
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let get_bytes_rle_into r dst =
  let n = get_u32 r in
  if n <> Bytes.length dst then
    corrupt "RLE block is %d bytes, destination holds %d" n (Bytes.length dst);
  let off = ref 0 in
  while !off < n do
    match get_u8 r with
    | 0 ->
        let count = get_u32 r in
        let c = Char.chr (get_u8 r) in
        if !off + count > n then corrupt "RLE run overflows block";
        Bytes.fill dst !off count c;
        off := !off + count
    | 1 ->
        let len = get_u32 r in
        if !off + len > n then corrupt "RLE literal overflows block";
        need r len;
        Bytes.blit_string r.src r.pos dst !off len;
        r.pos <- r.pos + len;
        off := !off + len
    | op -> corrupt "bad RLE opcode 0x%02x" op
  done

let get_list r f =
  let n = get_u32 r in
  List.init n (fun _ -> f r)

let expect_end r =
  if r.pos <> String.length r.src then
    corrupt "trailing garbage: %d of %d bytes consumed" r.pos
      (String.length r.src)

(* --- Container ------------------------------------------------------- *)

module Container = struct
  let magic = "DIFTVPSN"

  (* Version history:
     1 — initial format (regs/tags/CSRs, peripherals, kernel).
     2 — privilege architecture: cpu section gains the current privilege
         level; plic section gains priorities, threshold, in-service and
         level-source state. Readers of a v1 snapshot fill the new fields
         with their reset defaults. *)
  let version = current_version
  let min_version = 1

  let encode_at ~version:v sections =
    if v < min_version || v > version then
      invalid_arg (Printf.sprintf "Container.encode_at: version %d" v);
    let w = writer () in
    Buffer.add_string w magic;
    put_u32 w v;
    put_list w
      (fun w (name, payload) ->
        put_string w name;
        put_string w payload)
      sections;
    contents w

  let encode sections = encode_at ~version sections

  let decode_versioned s =
    if String.length s < 8 || String.sub s 0 8 <> magic then
      corrupt "not a VP snapshot (bad magic)";
    let r = reader s in
    r.pos <- 8;
    let v = get_u32 r in
    if v < min_version || v > version then
      corrupt "unsupported snapshot version %d" v;
    let sections = get_list r (fun r ->
        let name = get_string r in
        let payload = get_string r in
        (name, payload))
    in
    expect_end r;
    (v, sections)

  let decode s = snd (decode_versioned s)
end
