(** Exception-safe file I/O for snapshot-family artifacts.

    Every binary artifact the platform persists — [.iftg] graph stores,
    DIFTVPSN snapshots, DIFTVPCP campaign checkpoints, BENCH_*.json
    reports, shrunk reproducers — goes through these two helpers so that

    - a raise mid-read never leaks the descriptor, and
    - a raise (or a SIGKILL) mid-write never leaves a truncated file
      under the final name: writes land in a temp file in the target's
      directory and are published with a single atomic [rename].

    A reader therefore only ever observes the old contents or the
    complete new contents, which is what lets a killed campaign resume
    from its last checkpoint. *)

val read_file : string -> string
(** Read a whole file (binary mode). The descriptor is closed even when
    the read raises. *)

val write_file_atomic : string -> string -> unit
(** [write_file_atomic path data] writes [data] to a fresh temp file
    next to [path], then renames it over [path]. On any failure the temp
    file is removed and [path] is untouched. *)
