(** Alias of {!Jsonkit.Json}, kept for compatibility: the codec moved to
    [lib/jsonkit] so trace/forensics code can use it without depending
    on the VP. The [include] preserves type equalities, so values built
    here interoperate with [Jsonkit.Json] ones. *)

include module type of struct
  include Jsonkit.Json
end
