(* Historical home of the JSON codec. The implementation moved to
   [lib/jsonkit] so that libraries below the VP layer (notably
   [lib/trace]) can emit JSON without dragging in benchkit's dependency
   on the full virtual prototype. Re-exported here so existing users of
   [Benchkit.Json] keep working unchanged. *)

include Jsonkit.Json
