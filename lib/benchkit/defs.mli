(** Table II benchmark definitions and the machine-readable perf report.

    This library backs both the [bench] executable and the tier-1 schema
    test: a workload definition builds a firmware image and policy at a
    given scale, {!measure} times it on the plain VP and VP+ flavours, and
    {!doc} / {!validate} produce and check the [BENCH_*.json] report
    consumed by CI trend tooling (schema in [docs/perf.md]). *)

type def = {
  d_name : string;
  make_image : unit -> Rv32_asm.Image.t;  (** Scale is bound at list-build time. *)
  make_policy : Rv32_asm.Image.t -> Dift.Policy.t;
  setup : Vp.Soc.t -> unit;  (** Host-side wiring (e.g. CAN challenges). *)
  sensor_period : Sysc.Time.t option;
  aes : Rv32_asm.Image.t -> (Dift.Lattice.tag * Dift.Lattice.tag) option;
      (** AES peripheral (out_tag, in_clearance), for the immobilizer. *)
}

val scaled : float -> int -> int
(** [scaled scale base] = [base * scale] rounded, at least 1. *)

val integrity_policy : Rv32_asm.Image.t -> Dift.Policy.t
(** The Section VI-B benchmark policy: program region HI with an HI fetch
    clearance on the two-class integrity lattice. *)

val table2 : scale:float -> def list
(** The paper's Table II workload set (hello, qsort, dhrystone, primes,
    sha512, simple-sensor, freertos-tasks, immo-fixed) plus the
    branch-heavy [dispatch] stressor ({!Firmware.Extra_fw.dispatch}, for
    the superblock/inline-cache counters). [scale] multiplies each
    workload's iteration count; fractions give fast smoke runs. *)

val extended : scale:float -> def list
(** Additional workloads beyond the paper (crc32, matmul, strings, aes-sw). *)

type measurement = {
  m_workload : string;
  m_mode : string;  (** ["vp"] / ["vp+"] (or an ablation label). *)
  m_engine : string;
      (** {!Rv32.Core.engine_name} of the execution engine the row was
          measured under (["superblock"] / ["threaded"] / ["interp"]). *)
  m_instructions : int;  (** Retired, from the core's counter. *)
  m_seconds : float;  (** Monotonic wall time of the simulation. *)
  m_mips : float;
  m_overhead : float;  (** Relative to the workload's vp row; 1.0 there. *)
  m_fast_retired : int;
  m_blocks_built : int;
  m_superblocks : int option;
      (** Block-engine rows only: superblock chains linked. The four
          option fields travel together ([Some] on rows {!measure}
          produced, [None] on parallel / graph rows); {!validate}
          enforces this. All four are zero under engines without the
          superblock tier. *)
  m_chain_hits : int option;  (** In-chain block-to-block transitions. *)
  m_ic_hits : int option;  (** [jalr] inline-cache direct entries. *)
  m_ic_misses : int option;  (** [jalr] inline-cache misses/demotions. *)
  m_loc_asm : int;
  m_exit_ok : bool;  (** Firmware reached the exit ecall with code 0. *)
  m_trace : bool;  (** Row measured with the tracing subsystem attached. *)
  m_jobs : int option;
      (** Parallel-campaign rows only: worker domains used. The four
          option fields travel together ([Some] on parallel rows, [None]
          on classic single-SoC rows); {!validate} enforces this. *)
  m_wall_ns : int option;  (** Monotonic wall time of the whole campaign. *)
  m_cpu_ns : int option;
      (** Process CPU time over the same span, all domains summed.
          [cpu/wall] is the parallelism actually realised — on a
          single-core host it stays ~1 regardless of [jobs]. *)
  m_worker_throughput : float option;  (** Tasks per wall-second per worker. *)
  m_store_bytes : int option;
      (** Graph-analyze rows only: on-disk [.iftg] store size. Like the
          parallel group, the five option fields travel together ([Some]
          on analyze rows, [None] elsewhere); {!validate} enforces this. *)
  m_ingest_ns : int option;  (** Store decode + index-build time. *)
  m_query_ns : int option;  (** One backward source-finding query. *)
  m_nodes : int option;  (** Graph nodes in the store. *)
  m_edges : int option;  (** Graph edges in the store. *)
}

val measure :
  ?block_cache:bool ->
  ?fast_path:bool ->
  ?trace:bool ->
  ?engine:Rv32.Core.engine ->
  def ->
  measurement list
(** Run the workload on VP then VP+ (cache/fast-path flags forwarded to
    {!Vp.Soc.create}, default on) and return the two rows in that order.
    With [~trace:true] a third ["vp+trace"] row follows: VP+ with a
    {!Trace.Tracer} attached (ring + provenance + bus observer), its
    overhead relative to the same vp row — the guardrail number for the
    tracing subsystem's cost. The default remains exactly two rows.
    [engine] (default {!Rv32.Core.Threaded_superblock}) selects the
    core's execution engine for every run and is recorded in each row's
    [m_engine] — the engine-vs-engine perf comparison measures the same
    workload once per engine. *)

val mips : int -> float -> float
(** [mips instructions seconds], 0 when [seconds] is 0. *)

val parallel_row :
  ?exit_ok:bool ->
  workload:string ->
  mode:string ->
  jobs:int ->
  tasks:int ->
  instructions:int ->
  wall_ns:int ->
  cpu_ns:int ->
  overhead:float ->
  unit ->
  measurement
(** A campaign measurement: [tasks] units of work ran on [jobs] worker
    domains in [wall_ns] of wall time burning [cpu_ns] of process CPU
    time. Fills the four parallel option fields (throughput =
    tasks / wall-seconds / jobs); [seconds] / [mips] are derived from
    [wall_ns] and [instructions]. [exit_ok] (default true) lets campaign
    drivers flag a failed invariant — e.g. a jobs=1 vs jobs=N report
    mismatch — directly in the committed artifact. *)

val graph_row :
  ?exit_ok:bool ->
  workload:string ->
  mode:string ->
  store_bytes:int ->
  ingest_ns:int ->
  query_ns:int ->
  nodes:int ->
  edges:int ->
  unit ->
  measurement
(** A graph-store analyze measurement: a [.iftg] store of [store_bytes]
    bytes holding [nodes] / [edges] took [ingest_ns] to decode and index
    and [query_ns] to answer one backward source-finding query (cold or
    memoized, per [mode]). Fills the five graph option fields; [seconds]
    is derived from [ingest_ns + query_ns]. *)

val row : measurement -> Json.t

val doc :
  ?extra:(string * Json.t) list ->
  bench:string ->
  scale:float ->
  block_cache:bool ->
  fast_path:bool ->
  measurement list ->
  Json.t
(** The full report document. [extra] appends top-level fields (e.g. the
    host's core count for parallel campaigns); {!validate} ignores
    unknown fields, so consumers stay compatible. *)

val validate : Json.t -> (unit, string) result
(** Schema check: [bench] non-empty string, [scale] > 0, [block_cache] /
    [fast_path] booleans, [rows] a non-empty list where every row has a
    non-empty [workload], a [mode] string, integral [instructions >= 0],
    [seconds >= 0], [mips >= 0] and [overhead > 0]. A row's optional
    [trace] field, when present, must be a boolean; its optional [engine]
    field, when present, a non-empty string. The block-engine fields
    [superblocks_built], [chain_hits], [ic_hits] and [ic_misses] (ints
    >= 0) must appear all together or not at all. The parallel fields
    [jobs] (int >= 1), [wall_ns] / [cpu_ns] (ints >= 0) and
    [worker_throughput] (number >= 0) must appear all together or not at
    all, and likewise the graph fields [store_bytes], [ingest_ns],
    [query_ns], [nodes] and [edges] (all ints >= 0). *)
