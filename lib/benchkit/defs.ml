type def = {
  d_name : string;
  make_image : unit -> Rv32_asm.Image.t;
  make_policy : Rv32_asm.Image.t -> Dift.Policy.t;
  setup : Vp.Soc.t -> unit;
  sensor_period : Sysc.Time.t option;
  aes : Rv32_asm.Image.t -> (Dift.Lattice.tag * Dift.Lattice.tag) option;
}

let scaled scale base =
  max 1 (int_of_float ((float_of_int base *. scale) +. 0.5))

(* The default benchmark policy: the code-injection setup of Section VI-B
   (program HI, fetch clearance HI) — a representative always-on check. *)
let integrity_policy img =
  let lat = Dift.Lattice.integrity () in
  let hi = Dift.Lattice.tag_of_name lat "HI" in
  let li = Dift.Lattice.tag_of_name lat "LI" in
  Dift.Policy.make ~lattice:lat ~default_tag:li
    ~classification:
      [
        Dift.Policy.region ~name:"program" ~lo:img.Rv32_asm.Image.org
          ~hi:(Rv32_asm.Image.limit img - 1) ~tag:hi;
      ]
    ~exec_fetch:hi ()

let plain name ~make_image =
  {
    d_name = name;
    make_image;
    make_policy = integrity_policy;
    setup = (fun _ -> ());
    sensor_period = None;
    aes = (fun _ -> None);
  }

(* Host side of the immobilizer: keep feeding challenges. *)
let auto_engine ~challenges soc =
  let sent = ref 1 and frames = ref 0 in
  Vp.Can.set_tx_callback soc.Vp.Soc.can (fun _ ->
      incr frames;
      if !frames mod 2 = 0 && !sent < challenges then begin
        incr sent;
        Vp.Can.push_rx_frame soc.Vp.Soc.can (Printf.sprintf "CH%06d" !sent)
      end);
  Vp.Can.push_rx_frame soc.Vp.Soc.can "CH000000"

let table2 ~scale =
  let s = scaled scale in
  [
    plain "hello" ~make_image:(fun () ->
        Firmware.Extra_fw.hello_image ~rounds:(s 5000) ());
    plain "dispatch" ~make_image:(fun () ->
        Firmware.Extra_fw.dispatch_image ~rounds:(s 120000) ());
    plain "qsort" ~make_image:(fun () ->
        Firmware.Qsort_fw.image ~n:1000 ~rounds:(s 4) ());
    plain "dhrystone" ~make_image:(fun () ->
        Firmware.Dhrystone_fw.image ~iterations:(s 8000) ());
    plain "primes" ~make_image:(fun () -> Firmware.Primes_fw.image ~n:(s 4000) ());
    plain "sha512" ~make_image:(fun () ->
        Firmware.Sha_fw.image ~message_len:(s 16384) ());
    {
      (plain "simple-sensor" ~make_image:(fun () ->
           Firmware.Sensor_fw.image ~frames:(s 600) ()))
      with
      sensor_period = Some (Sysc.Time.us 20);
    };
    plain "freertos-tasks" ~make_image:(fun () ->
        Firmware.Rtos_fw.image ~switches:(s 400) ~slice_ticks:20 ());
    {
      d_name = "immo-fixed";
      make_image =
        (fun () ->
          Firmware.Immo_fw.image
            ~variant:(Firmware.Immo_fw.Normal { fixed_dump = true })
            ~challenges:(s 300) ());
      make_policy = Firmware.Immo_fw.base_policy;
      setup = (fun soc -> auto_engine ~challenges:(s 300) soc);
      sensor_period = None;
      aes =
        (fun img ->
          Some (Firmware.Immo_fw.aes_args (Firmware.Immo_fw.base_policy img)));
    };
  ]

let extended ~scale =
  let s = scaled scale in
  [
    plain "crc32" ~make_image:(fun () ->
        Firmware.Extra_fw.crc32_image ~len:(s 8192) ());
    plain "matmul" ~make_image:(fun () ->
        Firmware.Extra_fw.matmul_image ~n:(s 24) ());
    plain "strings" ~make_image:(fun () ->
        Firmware.Extra_fw.strings_image ~count:(s 512) ());
    plain "aes-sw" ~make_image:(fun () -> Firmware.Aes_sw_fw.image ());
  ]

(* --- Measurement ----------------------------------------------------- *)

type raw = {
  raw_instructions : int;
  raw_seconds : float;
  raw_fast : int;
  raw_blocks : int;
  raw_superblocks : int;
  raw_chain : int;
  raw_ic_hits : int;
  raw_ic_misses : int;
  raw_exit_ok : bool;
}

let run_def ?(block_cache = true) ?(fast_path = true) ?(trace = false)
    ?(engine = Rv32.Core.Threaded_superblock) ~tracking def =
  let img = def.make_image () in
  let policy = def.make_policy img in
  let monitor = Dift.Monitor.create policy.Dift.Policy.lattice in
  let aes_out_tag, aes_in_clearance =
    match def.aes img with
    | Some (o, c) -> (Some o, Some c)
    | None -> (None, None)
  in
  let tracer =
    if trace then Some (Trace.Tracer.create policy.Dift.Policy.lattice)
    else None
  in
  let soc =
    Vp.Soc.create ~policy ~monitor ~tracking ~block_cache ~fast_path ~engine
      ?sensor_period:def.sensor_period ?aes_out_tag ?aes_in_clearance ?tracer ()
  in
  Vp.Soc.load_image soc img;
  def.setup soc;
  soc.Vp.Soc.cpu.Vp.Soc.cpu_set_max 500_000_000;
  Vp.Soc.start soc;
  let t0 = Clock.now_s () in
  Vp.Soc.run soc;
  let dt = Clock.now_s () -. t0 in
  let exit_ok =
    match soc.Vp.Soc.cpu.Vp.Soc.cpu_exit () with
    | Rv32.Core.Exited 0 -> true
    | _ -> false
  in
  {
    raw_instructions = soc.Vp.Soc.cpu.Vp.Soc.cpu_instret ();
    raw_seconds = dt;
    raw_fast = soc.Vp.Soc.cpu.Vp.Soc.cpu_fast_retired ();
    raw_blocks = soc.Vp.Soc.cpu.Vp.Soc.cpu_blocks_built ();
    raw_superblocks = soc.Vp.Soc.cpu.Vp.Soc.cpu_superblocks_built ();
    raw_chain = soc.Vp.Soc.cpu.Vp.Soc.cpu_chain_hits ();
    raw_ic_hits = soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_hits ();
    raw_ic_misses = soc.Vp.Soc.cpu.Vp.Soc.cpu_ic_misses ();
    raw_exit_ok = exit_ok;
  }

type measurement = {
  m_workload : string;
  m_mode : string;
  m_engine : string;
  m_instructions : int;
  m_seconds : float;
  m_mips : float;
  m_overhead : float;
  m_fast_retired : int;
  m_blocks_built : int;
  m_superblocks : int option;
  m_chain_hits : int option;
  m_ic_hits : int option;
  m_ic_misses : int option;
  m_loc_asm : int;
  m_exit_ok : bool;
  m_trace : bool;
  m_jobs : int option;
  m_wall_ns : int option;
  m_cpu_ns : int option;
  m_worker_throughput : float option;
  m_store_bytes : int option;
  m_ingest_ns : int option;
  m_query_ns : int option;
  m_nodes : int option;
  m_edges : int option;
}

let mips instructions seconds =
  if seconds > 0. then float_of_int instructions /. seconds /. 1e6 else 0.

let measurement_of_raw ?(trace = false)
    ?(engine = Rv32.Core.Threaded_superblock) ~workload ~mode ~overhead
    ~loc_asm r =
  {
    m_workload = workload;
    m_mode = mode;
    m_engine = Rv32.Core.engine_name engine;
    m_instructions = r.raw_instructions;
    m_seconds = r.raw_seconds;
    m_mips = mips r.raw_instructions r.raw_seconds;
    m_overhead = overhead;
    m_fast_retired = r.raw_fast;
    m_blocks_built = r.raw_blocks;
    m_superblocks = Some r.raw_superblocks;
    m_chain_hits = Some r.raw_chain;
    m_ic_hits = Some r.raw_ic_hits;
    m_ic_misses = Some r.raw_ic_misses;
    m_loc_asm = loc_asm;
    m_exit_ok = r.raw_exit_ok;
    m_trace = trace;
    m_jobs = None;
    m_wall_ns = None;
    m_cpu_ns = None;
    m_worker_throughput = None;
    m_store_bytes = None;
    m_ingest_ns = None;
    m_query_ns = None;
    m_nodes = None;
    m_edges = None;
  }

let parallel_row ?(exit_ok = true) ~workload ~mode ~jobs ~tasks ~instructions
    ~wall_ns ~cpu_ns ~overhead () =
  let secs = float_of_int wall_ns /. 1e9 in
  {
    m_workload = workload;
    m_mode = mode;
    m_engine = Rv32.Core.engine_name Rv32.Core.Threaded_superblock;
    m_instructions = instructions;
    m_seconds = secs;
    m_mips = mips instructions secs;
    m_overhead = overhead;
    m_fast_retired = 0;
    m_blocks_built = 0;
    m_superblocks = None;
    m_chain_hits = None;
    m_ic_hits = None;
    m_ic_misses = None;
    m_loc_asm = 0;
    m_exit_ok = exit_ok;
    m_trace = false;
    m_jobs = Some jobs;
    m_wall_ns = Some wall_ns;
    m_cpu_ns = Some cpu_ns;
    m_worker_throughput =
      Some
        (if secs > 0. && jobs > 0 then
           float_of_int tasks /. secs /. float_of_int jobs
         else 0.);
    m_store_bytes = None;
    m_ingest_ns = None;
    m_query_ns = None;
    m_nodes = None;
    m_edges = None;
  }

let graph_row ?(exit_ok = true) ~workload ~mode ~store_bytes ~ingest_ns
    ~query_ns ~nodes ~edges () =
  let secs = float_of_int (ingest_ns + query_ns) /. 1e9 in
  {
    m_workload = workload;
    m_mode = mode;
    m_engine = Rv32.Core.engine_name Rv32.Core.Threaded_superblock;
    m_instructions = 0;
    m_seconds = secs;
    m_mips = 0.;
    m_overhead = 1.;
    m_fast_retired = 0;
    m_blocks_built = 0;
    m_superblocks = None;
    m_chain_hits = None;
    m_ic_hits = None;
    m_ic_misses = None;
    m_loc_asm = 0;
    m_exit_ok = exit_ok;
    m_trace = false;
    m_jobs = None;
    m_wall_ns = None;
    m_cpu_ns = None;
    m_worker_throughput = None;
    m_store_bytes = Some store_bytes;
    m_ingest_ns = Some ingest_ns;
    m_query_ns = Some query_ns;
    m_nodes = Some nodes;
    m_edges = Some edges;
  }

let measure ?(block_cache = true) ?(fast_path = true) ?(trace = false)
    ?(engine = Rv32.Core.Threaded_superblock) def =
  let vp = run_def ~block_cache ~fast_path ~engine ~tracking:false def in
  let vpp = run_def ~block_cache ~fast_path ~engine ~tracking:true def in
  let loc_asm = (def.make_image ()).Rv32_asm.Image.insn_count in
  let rel r = if vp.raw_seconds > 0. then r.raw_seconds /. vp.raw_seconds else 1. in
  let base =
    [
      measurement_of_raw ~engine ~workload:def.d_name ~mode:"vp" ~overhead:1.
        ~loc_asm vp;
      measurement_of_raw ~engine ~workload:def.d_name ~mode:"vp+"
        ~overhead:(rel vpp) ~loc_asm vpp;
    ]
  in
  if not trace then base
  else
    let vpt =
      run_def ~block_cache ~fast_path ~engine ~trace:true ~tracking:true def
    in
    base
    @ [
        measurement_of_raw ~trace:true ~engine ~workload:def.d_name
          ~mode:"vp+trace" ~overhead:(rel vpt) ~loc_asm vpt;
      ]

(* --- Report document -------------------------------------------------- *)

let row m =
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  Json.Obj
    ([
       ("workload", Json.Str m.m_workload);
       ("mode", Json.Str m.m_mode);
       ("engine", Json.Str m.m_engine);
       ("instructions", Json.num_of_int m.m_instructions);
       ("seconds", Json.Num m.m_seconds);
       ("mips", Json.Num m.m_mips);
       ("overhead", Json.Num m.m_overhead);
       ("fast_retired", Json.num_of_int m.m_fast_retired);
       ("blocks_built", Json.num_of_int m.m_blocks_built);
       ("loc_asm", Json.num_of_int m.m_loc_asm);
       ("exit_ok", Json.Bool m.m_exit_ok);
       ("trace", Json.Bool m.m_trace);
     ]
    @ opt "superblocks_built" m.m_superblocks Json.num_of_int
    @ opt "chain_hits" m.m_chain_hits Json.num_of_int
    @ opt "ic_hits" m.m_ic_hits Json.num_of_int
    @ opt "ic_misses" m.m_ic_misses Json.num_of_int
    @ opt "jobs" m.m_jobs Json.num_of_int
    @ opt "wall_ns" m.m_wall_ns Json.num_of_int
    @ opt "cpu_ns" m.m_cpu_ns Json.num_of_int
    @ opt "worker_throughput" m.m_worker_throughput (fun x -> Json.Num x)
    @ opt "store_bytes" m.m_store_bytes Json.num_of_int
    @ opt "ingest_ns" m.m_ingest_ns Json.num_of_int
    @ opt "query_ns" m.m_query_ns Json.num_of_int
    @ opt "nodes" m.m_nodes Json.num_of_int
    @ opt "edges" m.m_edges Json.num_of_int)

let doc ?(extra = []) ~bench ~scale ~block_cache ~fast_path rows =
  Json.Obj
    ([
       ("bench", Json.Str bench);
       ("scale", Json.Num scale);
       ("block_cache", Json.Bool block_cache);
       ("fast_path", Json.Bool fast_path);
     ]
    @ extra
    @ [ ("rows", Json.List (List.map row rows)) ])

(* Schema check for consumers (CI trend scripts): fail loudly on malformed
   reports rather than silently charting garbage. *)
let validate j =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let field name conv v =
    match Option.bind (Json.member name v) conv with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "missing or ill-typed field %S" name)
  in
  let* bench = field "bench" Json.to_str j in
  let* () = if bench <> "" then Ok () else Error "empty \"bench\"" in
  let* scale = field "scale" Json.to_num j in
  let* () = if scale > 0. then Ok () else Error "\"scale\" must be > 0" in
  let* (_ : bool) = field "block_cache" Json.to_bool j in
  let* (_ : bool) = field "fast_path" Json.to_bool j in
  let* rows = field "rows" Json.to_list j in
  let* () = if rows <> [] then Ok () else Error "\"rows\" must be non-empty" in
  List.fold_left
    (fun acc r ->
      let* () = acc in
      let ctx e =
        Error (Printf.sprintf "row %s: %s" (Json.to_string r) e)
      in
      let rfield name conv =
        match Option.bind (Json.member name r) conv with
        | Some x -> Ok x
        | None -> ctx (Printf.sprintf "missing or ill-typed field %S" name)
      in
      let* workload = rfield "workload" Json.to_str in
      let* () = if workload <> "" then Ok () else ctx "empty \"workload\"" in
      let* (_ : string) = rfield "mode" Json.to_str in
      let* instructions = rfield "instructions" Json.to_int in
      let* () =
        if instructions >= 0 then Ok () else ctx "negative \"instructions\""
      in
      let* seconds = rfield "seconds" Json.to_num in
      let* () = if seconds >= 0. then Ok () else ctx "negative \"seconds\"" in
      let* m = rfield "mips" Json.to_num in
      let* () = if m >= 0. then Ok () else ctx "negative \"mips\"" in
      let* overhead = rfield "overhead" Json.to_num in
      let* () =
        if overhead > 0. then Ok () else ctx "\"overhead\" must be > 0"
      in
      (* Optional: rows from engine-aware producers name their execution
         engine; older reports omit the field. *)
      let* () =
        match Json.member "engine" r with
        | None -> Ok ()
        | Some v -> (
            match Json.to_str v with
            | Some "" -> ctx "empty optional field \"engine\""
            | Some (_ : string) -> Ok ()
            | None -> ctx "ill-typed optional field \"engine\"")
      in
      (* Optional: rows from trace-enabled runs carry a boolean marker. *)
      let* () =
        match Json.member "trace" r with
        | None -> Ok ()
        | Some v -> (
            match Json.to_bool v with
            | Some (_ : bool) -> Ok ()
            | None -> ctx "ill-typed optional field \"trace\"")
      in
      (* Optional parallel-campaign fields: all four travel together (a
         row either is a parallel measurement or is not). *)
      let opt name conv check =
        match Json.member name r with
        | None -> Ok None
        | Some v -> (
            match conv v with
            | Some x when check x -> Ok (Some x)
            | Some _ -> ctx (Printf.sprintf "out-of-range field %S" name)
            | None ->
                ctx (Printf.sprintf "ill-typed optional field %S" name))
      in
      (* Optional block-engine fields: all four travel together (a row
         from a superblock-capable producer carries the whole group;
         older reports omit them all). *)
      let* sblocks = opt "superblocks_built" Json.to_int (fun n -> n >= 0) in
      let* chain = opt "chain_hits" Json.to_int (fun n -> n >= 0) in
      let* ic_h = opt "ic_hits" Json.to_int (fun n -> n >= 0) in
      let* ic_m = opt "ic_misses" Json.to_int (fun n -> n >= 0) in
      let* () =
        match (sblocks, chain, ic_h, ic_m) with
        | Some _, Some _, Some _, Some _ | None, None, None, None -> Ok ()
        | _ ->
            ctx
              "block-engine fields \"superblocks_built\", \"chain_hits\", \
               \"ic_hits\" and \"ic_misses\" must appear together"
      in
      let* jobs = opt "jobs" Json.to_int (fun j -> j >= 1) in
      let* wall = opt "wall_ns" Json.to_int (fun n -> n >= 0) in
      let* cpu = opt "cpu_ns" Json.to_int (fun n -> n >= 0) in
      let* tput = opt "worker_throughput" Json.to_num (fun t -> t >= 0.) in
      let* () =
        match (jobs, wall, cpu, tput) with
        | Some _, Some _, Some _, Some _ | None, None, None, None -> Ok ()
        | _ ->
            ctx
              "parallel fields \"jobs\", \"wall_ns\", \"cpu_ns\" and \
               \"worker_throughput\" must appear together"
      in
      (* Optional graph-store fields: all five travel together (a row
         either is an analyze measurement or is not). *)
      let* store_bytes = opt "store_bytes" Json.to_int (fun n -> n >= 0) in
      let* ingest = opt "ingest_ns" Json.to_int (fun n -> n >= 0) in
      let* query = opt "query_ns" Json.to_int (fun n -> n >= 0) in
      let* nodes = opt "nodes" Json.to_int (fun n -> n >= 0) in
      let* edges = opt "edges" Json.to_int (fun n -> n >= 0) in
      match (store_bytes, ingest, query, nodes, edges) with
      | Some _, Some _, Some _, Some _, Some _ | None, None, None, None, None
        ->
          Ok ()
      | _ ->
          ctx
            "graph fields \"store_bytes\", \"ingest_ns\", \"query_ns\", \
             \"nodes\" and \"edges\" must appear together")
    (Ok ()) rows
