val now_s : unit -> float
(** Seconds from an arbitrary epoch on the monotonic clock (never goes
    backwards; use differences only). The epoch is captured at module
    init so the value stays small enough that float conversion keeps
    nanosecond resolution regardless of system uptime. *)

val now_ns : unit -> int
(** Same clock as {!now_s}, in integer nanoseconds (differences only). *)

val cpu_ns : unit -> int
(** Processor time consumed by the whole process (all domains summed), in
    nanoseconds. Compare a duration on this clock against the same
    duration on {!now_ns} to see real parallelism: cpu/wall ~ the number
    of cores actually working. *)
