val now_s : unit -> float
(** Seconds from an arbitrary epoch on the monotonic clock (never goes
    backwards; use differences only). *)
