val now_s : unit -> float
(** Seconds from an arbitrary epoch on the monotonic clock (never goes
    backwards; use differences only). The epoch is captured at module
    init so the value stays small enough that float conversion keeps
    nanosecond resolution regardless of system uptime. *)
