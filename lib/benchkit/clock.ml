(* Monotonic wall-clock for benchmark timing: Unix.gettimeofday is subject
   to NTP slews and DST jumps, which turn into negative or wildly wrong
   durations in long perf runs. bechamel's clock stub reads
   CLOCK_MONOTONIC. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9
