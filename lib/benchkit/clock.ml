(* Monotonic wall-clock for benchmark timing: Unix.gettimeofday is subject
   to NTP slews and DST jumps, which turn into negative or wildly wrong
   durations in long perf runs. bechamel's clock stub reads
   CLOCK_MONOTONIC.

   The raw counter is nanoseconds since boot; on a machine up for more
   than ~104 days that exceeds 2^53 and [Int64.to_float] starts rounding,
   so converting each absolute reading and subtracting floats loses
   sub-microsecond resolution exactly when benchmarks need it. Rebase on
   an origin captured at module init and convert only the (small) Int64
   delta to float. *)
let origin = Monotonic_clock.now ()
let now_s () = Int64.to_float (Int64.sub (Monotonic_clock.now ()) origin) /. 1e9

let now_ns () = Int64.to_int (Int64.sub (Monotonic_clock.now ()) origin)

(* Processor time of the whole process — on Linux clock() sums the CPU
   time of every thread, so domain-parallel runs report aggregate burn.
   Wall vs cpu is the honest scaling picture: on a single-core host a
   4-domain run shows cpu ~ wall (timeslicing), on a 4-core host
   cpu ~ 4 * wall. *)
let cpu_ns () = int_of_float (Sys.time () *. 1e9)
