type t = { buf : Buffer.t }

let create () = { buf = Buffer.create 1024 }
let raw t s = Buffer.add_string t.buf s
let comment t s = raw t (Printf.sprintf "# %s\n" s)
let label t name = raw t (Printf.sprintf "%s:\n" name)
let insn t i = raw t (Printf.sprintf "        %s\n" (Rv32.Disasm.insn i))
let line t s = raw t (Printf.sprintf "        %s\n" s)
let byte t v = raw t (Printf.sprintf "        .byte %d\n" (v land 0xff))
(* .balign takes a byte count, matching Asm.align; .align would be a
   power-of-two exponent in gas syntax for RISC-V. *)
let align t n = raw t (Printf.sprintf "        .balign %d\n" n)
let contents t = Buffer.contents t.buf
let check ?org t = Parser.parse_result ?org (contents t)
