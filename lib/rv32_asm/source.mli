(** Textual assembly emission — the inverse direction of {!Parser}.

    A tiny builder for [.s] source text in the dialect {!Parser} accepts,
    used by tooling that must hand a human (or a regression suite) a
    standalone reproducer file: decoded instructions are printed through
    {!Rv32.Disasm}, pseudo-instructions and label operands are written as
    raw lines, and {!check} re-parses the accumulated text so emitted
    sources are assembleable by construction. *)

type t

val create : unit -> t

val comment : t -> string -> unit
(** Emit a [# ...] comment line. *)

val label : t -> string -> unit
(** Emit [name:] on its own line. *)

val insn : t -> Rv32.Insn.t -> unit
(** Emit one decoded instruction via {!Rv32.Disasm.insn}. *)

val line : t -> string -> unit
(** Emit a raw instruction/directive line verbatim (for pseudo-instructions
    and label-target forms Disasm cannot print, e.g. ["bnez t4, loop3"]). *)

val byte : t -> int -> unit
val align : t -> int -> unit

val contents : t -> string
(** The accumulated source text. *)

val check : ?org:int -> t -> (Image.t, string) result
(** Assemble {!contents} with {!Parser.parse_result} — emitted text that
    does not round-trip is a bug in the emitter, and callers writing
    reproducer files should fail loudly rather than save broken assembly. *)
