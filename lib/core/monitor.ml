type mode = Halt | Record

type event =
  | Violated of Violation.t
  | Declassified of { where : string; from_tag : Lattice.tag; to_tag : Lattice.tag }
  | Note of string

type t = {
  lat : Lattice.t;
  mutable m : mode;
  mutable evs : event list;  (* newest first *)
  mutable n_violations : int;
  mutable n_declass : int;
  mutable n_checks : int;
  mutable fast_ok : bool;
  mutable on_event : (event -> unit) option;
}

let create ?(mode = Halt) lat =
  { lat; m = mode; evs = []; n_violations = 0; n_declass = 0; n_checks = 0;
    fast_ok = true; on_event = None }

let mode t = t.m
let set_mode t m = t.m <- m
let lattice t = t.lat

let set_on_event t f = t.on_event <- f

let report t ev =
  t.evs <- ev :: t.evs;
  (* The observer runs before any Halt-mode raise so a tracer sees the
     violation event in stream order, ahead of the unwinding. *)
  (match t.on_event with Some f -> f ev | None -> ());
  match ev with
  | Violated v ->
      t.n_violations <- t.n_violations + 1;
      if t.m = Halt then raise (Violation.Violation v)
  | Declassified _ -> t.n_declass <- t.n_declass + 1
  | Note _ -> ()

let violation t v = report t (Violated v)
let events t = List.rev t.evs

let violations t =
  List.filter_map (function Violated v -> Some v | _ -> None) (events t)

let violation_count t = t.n_violations
let declassification_count t = t.n_declass

let clear t =
  t.evs <- [];
  t.n_violations <- 0;
  t.n_declass <- 0;
  t.n_checks <- 0

let check_count t = t.n_checks
let count_check t = t.n_checks <- t.n_checks + 1
let fast_path_ok t = t.fast_ok
let set_fast_path_ok t b = t.fast_ok <- b

let pp_event lat fmt = function
  | Violated v -> Violation.pp lat fmt v
  | Declassified { where; from_tag; to_tag } ->
      Format.fprintf fmt "declassified at %s: %s -> %s" where
        (Lattice.name lat from_tag) (Lattice.name lat to_tag)
  | Note s -> Format.fprintf fmt "note: %s" s

let pp_summary fmt t =
  Format.fprintf fmt "monitor: %d checks, %d violations, %d declassifications"
    t.n_checks t.n_violations t.n_declass
