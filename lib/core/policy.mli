(** Security policies: classification + IFP + clearance (Section IV-A).

    A policy bundles the IFP lattice with
    - {e classification}: security classes assigned to data entering the
      system (initial memory regions, peripheral sources);
    - {e clearance}: classes required at output interfaces and execution
      units (instruction fetch, branch decisions, memory addressing);
    - {e store integrity}: classes required to overwrite protected memory
      regions (used by the per-byte immobilizer fix of Section VI-A). *)

type region = {
  r_name : string;
  lo : int;  (** First address of the region (inclusive). *)
  hi : int;  (** Last address of the region (inclusive). *)
  r_tag : Lattice.tag;
}

type ecall_gate = {
  g_clearance : Lattice.tag;
      (** Class that every ecall argument register (a0..a5) must be allowed
          to flow to; a higher class is a violation. *)
  g_declass : Lattice.tag;
      (** Class the arguments are downgraded to when the gate admits them
          (an explicit, monitored declassification point). *)
}

type t = {
  lattice : Lattice.t;
  default_tag : Lattice.tag;
      (** Class given to data with no explicit classification. *)
  classification : region list;
      (** Initial classes for memory regions, applied by the loader. *)
  output_clearance : (string * Lattice.tag) list;
      (** Required class per named output interface. *)
  exec_fetch : Lattice.tag option;
      (** Clearance of the instruction-fetch unit, if checked. *)
  exec_branch : Lattice.tag option;
      (** Clearance of branch / jump / trap-vector decisions, if checked. *)
  exec_mem_addr : Lattice.tag option;
      (** Clearance of load/store effective addresses, if checked. *)
  store_clearance : region list;
      (** Protected regions: a store of data with class [x] into the region
          is allowed iff [allowed_flow x r_tag]. *)
  trap_csr : Lattice.tag option;
      (** Clearance of the trap-critical CSRs (mtvec, mepc), if checked:
          tainted data must not choose where a machine-mode handler runs. *)
  ecall_gate : ecall_gate option;
      (** Declassification gate applied to the argument registers on a real
          (non-exit) ecall trap, if declared. *)
}

val make :
  lattice:Lattice.t ->
  default_tag:Lattice.tag ->
  ?classification:region list ->
  ?output_clearance:(string * Lattice.tag) list ->
  ?exec_fetch:Lattice.tag ->
  ?exec_branch:Lattice.tag ->
  ?exec_mem_addr:Lattice.tag ->
  ?store_clearance:region list ->
  ?trap_csr:Lattice.tag ->
  ?ecall_gate:ecall_gate ->
  unit ->
  t

val region : name:string -> lo:int -> hi:int -> tag:Lattice.tag -> region
(** Raises [Invalid_argument] if [hi < lo]. *)

val classify_at : t -> int -> Lattice.tag
(** Class of address [addr] under the policy's classification (first
    matching region wins; [default_tag] otherwise). *)

val store_required_at : t -> int -> (string * Lattice.tag) option
(** Required integrity class for a store at [addr], if the address lies in a
    protected region. *)

val output_required : t -> string -> Lattice.tag option
(** Clearance of a named output interface, if declared. *)

val unrestricted : Lattice.t -> default_tag:Lattice.tag -> t
(** A policy with no checks at all (the plain-VP flavour). *)

val validate : t -> (unit, string) result
(** Sanity-check a policy against its lattice: every tag in range, every
    region well-formed, and no two classification regions with different
    classes sharing a byte unless one strictly precedes the other in the
    list (first-match-wins shadowing is reported as an error only when the
    shadowed region can never apply). *)

val pp : Format.formatter -> t -> unit
