(** Run-time monitor: collects DIFT events for reporting and statistics.

    The DIFT engine raises {!Violation.Violation} on a failed check; the
    monitor optionally intercepts events first so a simulation harness can
    log, count, or continue past violations (useful for test suites that
    expect many violations in one run). *)

type mode =
  | Halt  (** Re-raise violations, stopping the simulation (default). *)
  | Record  (** Record violations and let execution continue. *)

type event =
  | Violated of Violation.t
  | Declassified of { where : string; from_tag : Lattice.tag; to_tag : Lattice.tag }
  | Note of string

type t

val create : ?mode:mode -> Lattice.t -> t
val mode : t -> mode
val set_mode : t -> mode -> unit
val lattice : t -> Lattice.t

val report : t -> event -> unit
(** Record an event. If the event is a violation and the mode is [Halt],
    re-raises {!Violation.Violation} after recording. *)

val violation : t -> Violation.t -> unit
(** [violation m v] = [report m (Violated v)]. *)

val events : t -> event list
(** All events, oldest first. *)

val violations : t -> Violation.t list
val violation_count : t -> int
val declassification_count : t -> int
val clear : t -> unit

val check_count : t -> int
(** Total number of clearance checks performed (both passed and failed);
    incremented by the engine via {!count_check}. *)

val count_check : t -> unit

val fast_path_ok : t -> bool
(** May the DIFT engine take its untainted fast path past this monitor?
    True by default. The fast path only ever skips checks that are
    guaranteed to pass, so violations and taint state are unaffected — but
    {!check_count} then undercounts. A harness that needs exact per-check
    accounting vetoes the fast path with {!set_fast_path_ok}. *)

val set_fast_path_ok : t -> bool -> unit

val set_on_event : t -> (event -> unit) option -> unit
(** Install (or clear) an observer invoked synchronously from {!report}
    on every event, after it is recorded but before a [Halt]-mode
    violation re-raises — so a tracer sees the event in stream order.
    The observer must not call {!report} re-entrantly. *)

val pp_event : Lattice.t -> Format.formatter -> event -> unit
val pp_summary : Format.formatter -> t -> unit
