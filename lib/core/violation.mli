(** Structured security-policy violations raised by the DIFT engine. *)

type kind =
  | Output_clearance of string
      (** Data reached an output interface (named) whose clearance does not
          admit its class. *)
  | Exec_fetch
      (** Instruction fetch of data whose class may not flow to the fetch
          unit's clearance (code-injection / implicit-flow protection). *)
  | Exec_branch
      (** Branch / jump / trap-vector decision depending on data above the
          branch unit's clearance (implicit information flow). *)
  | Exec_mem_addr
      (** Load/store address depending on data above the memory unit's
          clearance (address-based leaks). *)
  | Store_integrity of string
      (** Store into a protected memory region (named) with data whose class
          may not flow to the region's required class. *)
  | Trap_steering of string
      (** A write to a trap-critical CSR (named: mtvec, mepc) with data whose
          class may not flow to the trap unit's clearance — tainted data must
          not choose where a machine-mode trap handler runs. *)
  | Custom of string  (** Peripheral- or application-defined check. *)

type t = {
  kind : kind;
  data_tag : Lattice.tag;  (** Class of the offending data. *)
  required_tag : Lattice.tag;  (** Clearance that was not met. *)
  pc : int option;  (** Program counter, when raised from the CPU core. *)
  detail : string;  (** Free-form context (instruction, address, ...). *)
}

exception Violation of t

val raise_violation :
  kind:kind ->
  data_tag:Lattice.tag ->
  required_tag:Lattice.tag ->
  ?pc:int ->
  ?detail:string ->
  unit ->
  'a

val kind_name : kind -> string

val pp : Lattice.t -> Format.formatter -> t -> unit

val to_string : Lattice.t -> t -> string
