type kind =
  | Output_clearance of string
  | Exec_fetch
  | Exec_branch
  | Exec_mem_addr
  | Store_integrity of string
  | Trap_steering of string
  | Custom of string

type t = {
  kind : kind;
  data_tag : Lattice.tag;
  required_tag : Lattice.tag;
  pc : int option;
  detail : string;
}

exception Violation of t

let raise_violation ~kind ~data_tag ~required_tag ?pc ?(detail = "") () =
  raise (Violation { kind; data_tag; required_tag; pc; detail })

let kind_name = function
  | Output_clearance port -> "output-clearance(" ^ port ^ ")"
  | Exec_fetch -> "exec-fetch"
  | Exec_branch -> "exec-branch"
  | Exec_mem_addr -> "exec-mem-addr"
  | Store_integrity region -> "store-integrity(" ^ region ^ ")"
  | Trap_steering what -> "trap-steering(" ^ what ^ ")"
  | Custom s -> "custom(" ^ s ^ ")"

let pp lat fmt v =
  Format.fprintf fmt "security violation: %s: class %s may not flow to %s"
    (kind_name v.kind)
    (Lattice.name lat v.data_tag)
    (Lattice.name lat v.required_tag);
  (match v.pc with
  | Some pc -> Format.fprintf fmt " [pc=0x%08x]" pc
  | None -> ());
  if v.detail <> "" then Format.fprintf fmt " (%s)" v.detail

let to_string lat v = Format.asprintf "%a" (pp lat) v
