type region = { r_name : string; lo : int; hi : int; r_tag : Lattice.tag }
type ecall_gate = { g_clearance : Lattice.tag; g_declass : Lattice.tag }

type t = {
  lattice : Lattice.t;
  default_tag : Lattice.tag;
  classification : region list;
  output_clearance : (string * Lattice.tag) list;
  exec_fetch : Lattice.tag option;
  exec_branch : Lattice.tag option;
  exec_mem_addr : Lattice.tag option;
  store_clearance : region list;
  trap_csr : Lattice.tag option;
  ecall_gate : ecall_gate option;
}

let region ~name ~lo ~hi ~tag =
  if hi < lo then invalid_arg "Policy.region: hi < lo";
  { r_name = name; lo; hi; r_tag = tag }

let make ~lattice ~default_tag ?(classification = []) ?(output_clearance = [])
    ?exec_fetch ?exec_branch ?exec_mem_addr ?(store_clearance = []) ?trap_csr
    ?ecall_gate () =
  {
    lattice;
    default_tag;
    classification;
    output_clearance;
    exec_fetch;
    exec_branch;
    exec_mem_addr;
    store_clearance;
    trap_csr;
    ecall_gate;
  }

let find_region regions addr =
  List.find_opt (fun r -> addr >= r.lo && addr <= r.hi) regions

let classify_at p addr =
  match find_region p.classification addr with
  | Some r -> r.r_tag
  | None -> p.default_tag

let store_required_at p addr =
  match find_region p.store_clearance addr with
  | Some r -> Some (r.r_name, r.r_tag)
  | None -> None

let output_required p port = List.assoc_opt port p.output_clearance

let unrestricted lattice ~default_tag =
  make ~lattice ~default_tag ()

let validate p =
  let n = Lattice.size p.lattice in
  let bad = ref [] in
  let check_tag what tag =
    if tag < 0 || tag >= n then
      bad := Printf.sprintf "%s: tag %d out of range (lattice has %d classes)" what tag n :: !bad
  in
  check_tag "default_tag" p.default_tag;
  List.iter (fun r -> check_tag ("classification " ^ r.r_name) r.r_tag)
    p.classification;
  List.iter (fun (port, tag) -> check_tag ("output " ^ port) tag)
    p.output_clearance;
  Option.iter (check_tag "exec_fetch") p.exec_fetch;
  Option.iter (check_tag "exec_branch") p.exec_branch;
  Option.iter (check_tag "exec_mem_addr") p.exec_mem_addr;
  Option.iter (check_tag "trap_csr") p.trap_csr;
  Option.iter
    (fun g ->
      check_tag "ecall_gate clearance" g.g_clearance;
      check_tag "ecall_gate declass" g.g_declass;
      if not (Lattice.allowed_flow p.lattice g.g_declass g.g_clearance) then
        bad :=
          "ecall_gate: declassified class does not meet its own clearance"
          :: !bad)
    p.ecall_gate;
  List.iter (fun r -> check_tag ("store_clearance " ^ r.r_name) r.r_tag)
    p.store_clearance;
  (* A later classification region fully hidden by an earlier one is a
     policy bug: it can never apply. *)
  let rec shadowing = function
    | [] -> ()
    | r :: rest ->
        List.iter
          (fun r' ->
            if r'.lo >= r.lo && r'.hi <= r.hi && r'.r_tag <> r.r_tag then
              bad :=
                Printf.sprintf
                  "classification %s is fully shadowed by earlier region %s"
                  r'.r_name r.r_name
                :: !bad)
          rest;
        shadowing rest
  in
  shadowing p.classification;
  match List.rev !bad with
  | [] -> Ok ()
  | msgs -> Error (String.concat "; " msgs)

let pp fmt p =
  let nm = Lattice.name p.lattice in
  Format.fprintf fmt "@[<v>policy {default=%s}" (nm p.default_tag);
  List.iter
    (fun r ->
      Format.fprintf fmt "@,  classify %s [0x%08x..0x%08x] as %s" r.r_name r.lo
        r.hi (nm r.r_tag))
    p.classification;
  List.iter
    (fun (port, tag) ->
      Format.fprintf fmt "@,  output %s requires %s" port (nm tag))
    p.output_clearance;
  let exec label = function
    | Some tag -> Format.fprintf fmt "@,  exec %s clearance %s" label (nm tag)
    | None -> ()
  in
  exec "fetch" p.exec_fetch;
  exec "branch" p.exec_branch;
  exec "mem-addr" p.exec_mem_addr;
  exec "trap-csr" p.trap_csr;
  (match p.ecall_gate with
  | Some g ->
      Format.fprintf fmt "@,  ecall gate clearance %s declassifies to %s"
        (nm g.g_clearance) (nm g.g_declass)
  | None -> ());
  List.iter
    (fun r ->
      Format.fprintf fmt "@,  protect %s [0x%08x..0x%08x] requires %s" r.r_name
        r.lo r.hi (nm r.r_tag))
    p.store_clearance;
  Format.fprintf fmt "@]"
