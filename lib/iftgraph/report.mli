(** Rendering of analyzer results — jsonkit values for [--json] and
    aligned text for the terminal.

    Every JSON report is an object with ["schema"] (fixed to
    {!schema_id}) and ["kind"] (["sources-of"] / ["reaches"] /
    ["summary"]) so consumers dispatch without guessing; {!validate}
    checks any of the three shapes. *)

val schema_id : string
(** ["iftgraph-report-v1"]. *)

val sources_json : Analyze.t -> Query.pred -> Jsonkit.Json.t
val sources_text : Analyze.t -> Query.pred -> string
val reaches_json : Analyze.t -> Query.pred -> Jsonkit.Json.t
val reaches_text : Analyze.t -> Query.pred -> string
val summary_json : ?top:int -> Analyze.t -> Jsonkit.Json.t
val summary_text : ?top:int -> Analyze.t -> string

val validate : Jsonkit.Json.t -> (unit, string) result
(** Schema check for any report this module emits (dispatches on
    ["kind"]). [Ok ()] iff every required field is present with the
    right type. *)
