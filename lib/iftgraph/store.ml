module C = Snapshot.Codec

let corrupt fmt = Printf.ksprintf (fun s -> raise (C.Corrupt s)) fmt

type kind = Seed | Merge | Declass | Via | Violation

let kind_name = function
  | Seed -> "seed"
  | Merge -> "merge"
  | Declass -> "declass"
  | Via -> "via"
  | Violation -> "violation"

let kind_code = function
  | Seed -> 0
  | Merge -> 1
  | Declass -> 2
  | Via -> 3
  | Violation -> 4

let kind_of_code = function
  | 0 -> Seed
  | 1 -> Merge
  | 2 -> Declass
  | 3 -> Via
  | 4 -> Violation
  | c -> corrupt "bad node kind code %d" c

type node = {
  n_id : int;
  n_kind : kind;
  n_tag : int;  (** The security class this commit produced / observed. *)
  n_time : int;  (** Simulation time, ps. *)
  n_pc : int;  (** Last retired pc when the commit happened; -1 unknown. *)
  n_a : int;  (** Merge input a / declass from-tag; -1 unused. *)
  n_b : int;  (** Merge input b; -1 unused. *)
  n_origin : string;  (** Seed origin / via channel / violation what. *)
  n_addr : int;  (** Seed bus address; -1 none. *)
  n_count : int;  (** Occurrences coalesced into this node (>= 1). *)
}

type edge = { e_from : int; e_to : int }

type meta = {
  classes : string array;  (** Lattice class names; index = tag. *)
  context : string;
  dropped_edges : int;  (** lib/trace bounded-provenance overflow. *)
  dropped_sources : int;
}

type t = { meta : meta; nodes : node array; edges : edge array }

let magic = "DIFTVPGR"
let version = 1

(* --- Indexes ---------------------------------------------------------- *)

(* Derived, never serialised: rebuild from the arrays after decode so a
   decode -> encode round trip is byte-identical by construction. *)
type index = {
  by_tag : int list array;  (** tag -> node ids, ascending. *)
  violations : int array;  (** Violation node ids, ascending. *)
  out_edges : int list array;  (** node id -> successor node ids. *)
  in_edges : int list array;  (** node id -> predecessor node ids. *)
}

let index t =
  let ntags = Array.length t.meta.classes in
  let n = Array.length t.nodes in
  let by_tag = Array.make (max 1 ntags) [] in
  let violations = ref [] in
  Array.iter
    (fun nd ->
      if nd.n_tag >= 0 && nd.n_tag < ntags then
        by_tag.(nd.n_tag) <- nd.n_id :: by_tag.(nd.n_tag);
      if nd.n_kind = Violation then violations := nd.n_id :: !violations)
    t.nodes;
  Array.iteri (fun i ids -> by_tag.(i) <- List.rev ids) by_tag;
  let out_edges = Array.make (max 1 n) [] in
  let in_edges = Array.make (max 1 n) [] in
  Array.iter
    (fun e ->
      out_edges.(e.e_from) <- e.e_to :: out_edges.(e.e_from);
      in_edges.(e.e_to) <- e.e_from :: in_edges.(e.e_to))
    t.edges;
  Array.iteri (fun i l -> out_edges.(i) <- List.rev l) out_edges;
  Array.iteri (fun i l -> in_edges.(i) <- List.rev l) in_edges;
  {
    by_tag;
    violations = Array.of_list (List.rev !violations);
    out_edges;
    in_edges;
  }

(* --- Encoding --------------------------------------------------------- *)

(* Sectioned container in the lib/snapshot style: magic, format version,
   named sections. Strings are interned into a table built in
   first-reference order, so identical stores are identical byte strings
   (what the CI golden diff and the jobs-1-vs-N ingestion test compare). *)

let encode t =
  let strings = Hashtbl.create 64 in
  let string_list = ref [] in
  let nstrings = ref 0 in
  let intern s =
    match Hashtbl.find_opt strings s with
    | Some i -> i
    | None ->
        let i = !nstrings in
        incr nstrings;
        Hashtbl.add strings s i;
        string_list := s :: !string_list;
        i
  in
  (* +1 shifts the "absent" sentinel -1 into varint range. *)
  let nodes_w = C.writer () in
  Array.iter
    (fun n ->
      C.put_varint nodes_w (kind_code n.n_kind);
      C.put_varint nodes_w n.n_tag;
      C.put_varint nodes_w n.n_time;
      C.put_varint nodes_w (n.n_pc + 1);
      C.put_varint nodes_w (n.n_a + 1);
      C.put_varint nodes_w (n.n_b + 1);
      C.put_varint nodes_w (intern n.n_origin);
      C.put_varint nodes_w (n.n_addr + 1);
      C.put_varint nodes_w n.n_count)
    t.nodes;
  let edges_w = C.writer () in
  (* Edges are appended with ascending targets; delta-code the target and
     the (usually small) backward distance to the source. *)
  let prev_to = ref 0 in
  Array.iter
    (fun e ->
      C.put_varint edges_w (e.e_to - !prev_to);
      prev_to := e.e_to;
      C.put_varint edges_w (e.e_to - e.e_from + 1))
    t.edges;
  let meta_w = C.writer () in
  C.put_varint meta_w (Array.length t.meta.classes);
  Array.iter (fun c -> C.put_string meta_w c) t.meta.classes;
  C.put_string meta_w t.meta.context;
  C.put_varint meta_w t.meta.dropped_edges;
  C.put_varint meta_w t.meta.dropped_sources;
  C.put_varint meta_w (Array.length t.nodes);
  C.put_varint meta_w (Array.length t.edges);
  let strings_w = C.writer () in
  let all = List.rev !string_list in
  C.put_varint strings_w (List.length all);
  List.iter (fun s -> C.put_string strings_w s) all;
  let w = C.writer () in
  C.put_u32 w version;
  C.put_list w
    (fun w (name, payload) ->
      C.put_string w name;
      C.put_string w payload)
    [
      ("meta", C.contents meta_w);
      ("strings", C.contents strings_w);
      ("nodes", C.contents nodes_w);
      ("edges", C.contents edges_w);
    ];
  magic ^ C.contents w

let to_string = encode

let decode s =
  if String.length s < 8 || String.sub s 0 8 <> magic then
    corrupt "not an IFT graph store (bad magic)";
  let r = C.reader (String.sub s 8 (String.length s - 8)) in
  let v = C.get_u32 r in
  if v <> version then corrupt "unsupported graph-store version %d" v;
  let sections =
    C.get_list r (fun r ->
        let name = C.get_string r in
        let payload = C.get_string r in
        (name, payload))
  in
  C.expect_end r;
  let section name =
    match List.assoc_opt name sections with
    | Some p -> C.reader p
    | None -> corrupt "graph store lacks a %S section" name
  in
  let mr = section "meta" in
  let nclasses = C.get_varint mr in
  let classes = Array.init nclasses (fun _ -> C.get_string mr) in
  let context = C.get_string mr in
  let dropped_edges = C.get_varint mr in
  let dropped_sources = C.get_varint mr in
  let n_nodes = C.get_varint mr in
  let n_edges = C.get_varint mr in
  C.expect_end mr;
  let sr = section "strings" in
  let nstrings = C.get_varint sr in
  let strings = Array.init nstrings (fun _ -> C.get_string sr) in
  C.expect_end sr;
  let str i =
    if i < 0 || i >= nstrings then corrupt "string-table id %d out of range" i
    else strings.(i)
  in
  let nr = section "nodes" in
  let nodes =
    Array.init n_nodes (fun id ->
        let n_kind = kind_of_code (C.get_varint nr) in
        let n_tag = C.get_varint nr in
        let n_time = C.get_varint nr in
        let n_pc = C.get_varint nr - 1 in
        let n_a = C.get_varint nr - 1 in
        let n_b = C.get_varint nr - 1 in
        let n_origin = str (C.get_varint nr) in
        let n_addr = C.get_varint nr - 1 in
        let n_count = C.get_varint nr in
        { n_id = id; n_kind; n_tag; n_time; n_pc; n_a; n_b; n_origin;
          n_addr; n_count })
    in
  C.expect_end nr;
  let er = section "edges" in
  let prev_to = ref 0 in
  let edges =
    Array.init n_edges (fun _ ->
        let e_to = !prev_to + C.get_varint er in
        prev_to := e_to;
        let e_from = e_to - (C.get_varint er - 1) in
        if e_from < 0 || e_from >= n_nodes || e_to < 0 || e_to >= n_nodes then
          corrupt "edge %d -> %d out of node range" e_from e_to;
        { e_from; e_to })
  in
  C.expect_end er;
  {
    meta = { classes; context; dropped_edges; dropped_sources };
    nodes;
    edges;
  }

let of_string = decode

(* Atomic publish: an exception mid-encode (or a kill mid-write) must
   not leave a truncated .iftg under the final name — campaign resumes
   and analyze sweeps read these directories. *)
let write_file t path = Snapshot.Io.write_file_atomic path (to_string t)

let read_file path = decode (Snapshot.Io.read_file path)

let tag_name t tag =
  if tag >= 0 && tag < Array.length t.meta.classes then t.meta.classes.(tag)
  else string_of_int tag

let stats t =
  let count k = Array.fold_left
      (fun acc n -> if n.n_kind = k then acc + 1 else acc) 0 t.nodes
  in
  ( count Seed, count Merge, count Declass, count Via, count Violation )
