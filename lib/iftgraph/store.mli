(** The on-disk IFT provenance-graph store ([DIFTVPGR]).

    One store persists the full commit/flow graph of one run: a {e node}
    per distinct tag commit — a peripheral seeding a class ({!Seed}), a
    genuine lattice join ({!Merge}), a {!Declass}, a named transfer hop
    ({!Via}) — plus {!Violation} sink observations, and an {e edge} per
    observed flow between commits. Unlike the bounded in-memory
    provenance of [lib/trace] (whose budgets exist to keep the hot path
    allocation-free), the store holds the {e whole} graph: repeats are
    coalesced into their node's [n_count], never dropped.

    The container reuses the [lib/snapshot] codec conventions: magic,
    format version, named sections, little-endian, varint-packed node and
    edge records, an interned string table. Encoding is canonical —
    [decode] then [encode] is byte-identical, and two runs of the same
    deterministic simulation write identical files. *)

type kind = Seed | Merge | Declass | Via | Violation

val kind_name : kind -> string

type node = {
  n_id : int;  (** Dense id; also the index into {!t.nodes}. *)
  n_kind : kind;
  n_tag : int;  (** The security class this commit produced / observed. *)
  n_time : int;  (** Simulation time, ps. *)
  n_pc : int;  (** Last retired pc when the commit happened; -1 unknown. *)
  n_a : int;  (** Merge input a / declass from-tag; -1 unused. *)
  n_b : int;  (** Merge input b; -1 unused. *)
  n_origin : string;  (** Seed origin / via channel / violation what. *)
  n_addr : int;  (** Seed bus address; -1 none. *)
  n_count : int;  (** Occurrences coalesced into this node (>= 1). *)
}

type edge = { e_from : int; e_to : int }
(** Directed flow: the commit at [e_from] fed the commit at [e_to].
    Always forward in id order ([e_from < e_to]). *)

type meta = {
  classes : string array;  (** Lattice class names; index = tag. *)
  context : string;  (** Free-form run description (policy, file, ...). *)
  dropped_edges : int;
      (** Merge/declass/via edges the {e bounded} in-memory provenance
          discarded during the run — nonzero flags a run whose forensic
          chains (not this store) are truncated. *)
  dropped_sources : int;  (** Same, for source introductions. *)
}

type t = { meta : meta; nodes : node array; edges : edge array }

val magic : string
val version : int

(** {1 Derived indexes}

    Rebuilt from the arrays (never serialised — canonical encoding). *)

type index = {
  by_tag : int list array;  (** tag -> node ids, ascending. *)
  violations : int array;  (** Violation node ids, ascending. *)
  out_edges : int list array;  (** node id -> successor node ids. *)
  in_edges : int list array;  (** node id -> predecessor node ids. *)
}

val index : t -> index

(** {1 Serialisation} *)

val to_string : t -> string
val of_string : string -> t
(** Raises {!Snapshot.Codec.Corrupt} on malformed input. *)

val write_file : t -> string -> unit
val read_file : string -> t

(** {1 Convenience} *)

val tag_name : t -> int -> string

val stats : t -> int * int * int * int * int
(** [(seeds, merges, declasses, vias, violations)] node counts. *)
