(** Single-store queries: backward source-finding and forward reach.

    Backward walks mirror [Trace.Provenance.chain] exactly — tag
    granularity, merge/declass inputs enqueued, seeds collected — so a
    violation's source set from the store equals the live forensic
    walk-back's (the tier-1 acceptance diff). Forward reach follows the
    explicit flow edges instead. *)

(** A start-set predicate, written [kind:value] on the CLI. *)
type pred =
  | P_violation of int  (** [violation:K] — k-th violation, 0-based. *)
  | P_pc of int  (** [pc:0xADDR] — nodes stamped with this pc. *)
  | P_tag of string  (** [tag:NAME] — commits to the named class. *)
  | P_origin of string  (** [origin:NAME] — seeds / via hops by name. *)
  | P_addr of int  (** [addr:0xADDR] — seeds covering this address. *)

val parse_pred : string -> (pred, string) result
val pred_to_string : pred -> string

val start_nodes : Store.t -> Store.index -> pred -> int list
(** Matched node ids, ascending. Empty when nothing matches (e.g. a
    violation index past the store's count). *)

type source = {
  src_origin : string;
  src_addr : int option;
  src_tag : int;
  src_time : int;  (** First observation, ps. *)
  src_node : int;
}

type back = {
  bk_pred : pred;
  bk_start : int list;
  bk_sources : source list;  (** Deduped, (origin, addr, tag)-sorted. *)
  bk_tags : int list;  (** Classes the walk visited, ascending. *)
  bk_nodes_visited : int;
}

val sources_of : Store.t -> Store.index -> pred -> back

type reach = {
  rc_pred : pred;
  rc_start : int list;
  rc_nodes_reached : int;
  rc_tags : int list;
  rc_violations : int list;
  rc_origins : string list;
}

val reaches : Store.t -> Store.index -> pred -> reach
