(** Cross-run analysis over a directory of {!Store} files.

    Creating an analyzer only lists the files. The first query decodes
    every store — sharded over a Parallelkit pool, merged in file order,
    so any [jobs] value yields identical reports — and pins them in
    memory; results are memoized, so a repeated query touches neither
    the files nor the graphs. [store_reads] and [memo_hits] expose that
    behaviour for the tier-1 near-O(answer) check. *)

type t

val store_ext : string
(** [".iftg"] — the suffix [load_dir] selects on. *)

val create : ?jobs:int -> string list -> t
(** Analyzer over an explicit list of store files (sorted by basename).
    [jobs] bounds ingestion parallelism (default 1). *)

val load_dir : ?jobs:int -> string -> t
(** All [*.iftg] files directly inside the directory.
    @raise Invalid_argument if the path is not a directory. *)

val run_count : t -> int
val store_reads : t -> int
(** Store files read {e and} decoded so far. After any number of
    queries this equals [run_count] — each store is read once. *)

val memo_hits : t -> int
(** Queries answered from the memo table without touching the graphs. *)

val stores : t -> (string * Store.t * Store.index) list
(** Forces ingestion; stores in file-name order. *)

val sources_of : t -> Query.pred -> (string * Query.back) list
(** Backward query against every store, keyed by file name. Memoized. *)

val reaches : t -> Query.pred -> (string * Query.reach) list
(** Forward query against every store, keyed by file name. Memoized. *)

(** One store's headline numbers. *)
type run_row = {
  r_name : string;
  r_bytes : int;  (** On-disk store size. *)
  r_context : string;
  r_nodes : int;
  r_edges : int;
  r_seeds : int;
  r_merges : int;
  r_declasses : int;
  r_vias : int;
  r_violations : int;
  r_dropped_edges : int;
  r_dropped_sources : int;
}

(** Per-peripheral reach histogram entry. *)
type origin_row = {
  o_origin : string;
  o_runs : int;  (** Runs whose graph seeds from this origin. *)
  o_seeds : int;  (** Seed nodes across all runs. *)
  o_violations_reached : int;
      (** Violations (across runs) whose backward source set includes
          this origin. *)
}

(** An origin -> violation flow path counted across runs. *)
type path_row = {
  p_origin : string;
  p_what : string;  (** Violation description. *)
  p_runs : int;
  p_flows : int;
}

type summary = {
  sm_runs : run_row list;  (** File-name order. *)
  sm_origins : origin_row list;  (** Sorted by origin name. *)
  sm_top_paths : path_row list;  (** Descending flow count. *)
  sm_total_nodes : int;
  sm_total_edges : int;
  sm_total_violations : int;
  sm_truncated_runs : int;  (** Runs with nonzero dropped counters. *)
}

val summary : ?top:int -> t -> summary
(** Aggregate report; [top] caps [sm_top_paths] (default 10). *)
