(* Rendering of analyzer results: jsonkit values for --json (with a
   self-describing envelope the tests validate) and aligned text for the
   terminal. Every report is an Obj with "schema" and "kind" fields so a
   consumer can dispatch without guessing. *)

module J = Jsonkit.Json

let schema_id = "iftgraph-report-v1"

let envelope kind fields =
  J.Obj (("schema", J.Str schema_id) :: ("kind", J.Str kind) :: fields)

let int_list ns = J.List (List.map J.num_of_int ns)
let str_list ss = J.List (List.map (fun s -> J.Str s) ss)

(* --- sources-of -------------------------------------------------------- *)

let source_json store (s : Query.source) =
  J.Obj
    [
      ("origin", J.Str s.Query.src_origin);
      ( "addr",
        match s.Query.src_addr with
        | None -> J.Null
        | Some a -> J.num_of_int a );
      ("tag", J.num_of_int s.Query.src_tag);
      ("tag_name", J.Str (Store.tag_name store s.Query.src_tag));
      ("time", J.num_of_int s.Query.src_time);
      ("node", J.num_of_int s.Query.src_node);
    ]

let sources_json t pred =
  let results = Analyze.sources_of t pred in
  let stores = Analyze.stores t in
  let runs =
    List.map
      (fun (name, back) ->
        let store =
          let _, s, _ = List.find (fun (n, _, _) -> n = name) stores in
          s
        in
        J.Obj
          [
            ("run", J.Str name);
            ("start", int_list back.Query.bk_start);
            ( "sources",
              J.List (List.map (source_json store) back.Query.bk_sources) );
            ("tags", int_list back.Query.bk_tags);
            ("nodes_visited", J.num_of_int back.Query.bk_nodes_visited);
          ])
      results
  in
  envelope "sources-of"
    [ ("query", J.Str (Query.pred_to_string pred)); ("runs", J.List runs) ]

let sources_text t pred =
  let results = Analyze.sources_of t pred in
  let stores = Analyze.stores t in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "sources-of %s\n" (Query.pred_to_string pred));
  List.iter
    (fun (name, back) ->
      let store =
        let _, s, _ = List.find (fun (n, _, _) -> n = name) stores in
        s
      in
      Buffer.add_string b
        (Printf.sprintf "  %s: %d start node(s), %d source(s)\n" name
           (List.length back.Query.bk_start)
           (List.length back.Query.bk_sources));
      List.iter
        (fun (s : Query.source) ->
          Buffer.add_string b
            (Printf.sprintf "    %-16s %-10s tag=%s t=%dps node=%d\n"
               s.Query.src_origin
               (match s.Query.src_addr with
               | None -> "-"
               | Some a -> Printf.sprintf "0x%08x" a)
               (Store.tag_name store s.Query.src_tag)
               s.Query.src_time s.Query.src_node))
        back.Query.bk_sources)
    results;
  Buffer.contents b

(* --- reaches ----------------------------------------------------------- *)

let reaches_json t pred =
  let results = Analyze.reaches t pred in
  let runs =
    List.map
      (fun (name, r) ->
        J.Obj
          [
            ("run", J.Str name);
            ("start", int_list r.Query.rc_start);
            ("nodes_reached", J.num_of_int r.Query.rc_nodes_reached);
            ("tags", int_list r.Query.rc_tags);
            ("violations", int_list r.Query.rc_violations);
            ("origins", str_list r.Query.rc_origins);
          ])
      results
  in
  envelope "reaches"
    [ ("query", J.Str (Query.pred_to_string pred)); ("runs", J.List runs) ]

let reaches_text t pred =
  let results = Analyze.reaches t pred in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "reaches %s\n" (Query.pred_to_string pred));
  List.iter
    (fun (name, r) ->
      Buffer.add_string b
        (Printf.sprintf
           "  %s: %d start node(s), %d reached, %d violation(s)%s\n" name
           (List.length r.Query.rc_start)
           r.Query.rc_nodes_reached
           (List.length r.Query.rc_violations)
           (match r.Query.rc_origins with
           | [] -> ""
           | os -> " via " ^ String.concat ", " os)))
    results;
  Buffer.contents b

(* --- summary ----------------------------------------------------------- *)

let run_row_json (r : Analyze.run_row) =
  J.Obj
    [
      ("run", J.Str r.Analyze.r_name);
      ("bytes", J.num_of_int r.Analyze.r_bytes);
      ("context", J.Str r.Analyze.r_context);
      ("nodes", J.num_of_int r.Analyze.r_nodes);
      ("edges", J.num_of_int r.Analyze.r_edges);
      ("seeds", J.num_of_int r.Analyze.r_seeds);
      ("merges", J.num_of_int r.Analyze.r_merges);
      ("declasses", J.num_of_int r.Analyze.r_declasses);
      ("vias", J.num_of_int r.Analyze.r_vias);
      ("violations", J.num_of_int r.Analyze.r_violations);
      ("dropped_edges", J.num_of_int r.Analyze.r_dropped_edges);
      ("dropped_sources", J.num_of_int r.Analyze.r_dropped_sources);
    ]

let summary_json ?top t =
  let sm = Analyze.summary ?top t in
  envelope "summary"
    [
      ("runs", J.List (List.map run_row_json sm.Analyze.sm_runs));
      ( "origins",
        J.List
          (List.map
             (fun (o : Analyze.origin_row) ->
               J.Obj
                 [
                   ("origin", J.Str o.Analyze.o_origin);
                   ("runs", J.num_of_int o.Analyze.o_runs);
                   ("seeds", J.num_of_int o.Analyze.o_seeds);
                   ( "violations_reached",
                     J.num_of_int o.Analyze.o_violations_reached );
                 ])
             sm.Analyze.sm_origins) );
      ( "top_paths",
        J.List
          (List.map
             (fun (p : Analyze.path_row) ->
               J.Obj
                 [
                   ("origin", J.Str p.Analyze.p_origin);
                   ("violation", J.Str p.Analyze.p_what);
                   ("runs", J.num_of_int p.Analyze.p_runs);
                   ("flows", J.num_of_int p.Analyze.p_flows);
                 ])
             sm.Analyze.sm_top_paths) );
      ( "totals",
        J.Obj
          [
            ("nodes", J.num_of_int sm.Analyze.sm_total_nodes);
            ("edges", J.num_of_int sm.Analyze.sm_total_edges);
            ("violations", J.num_of_int sm.Analyze.sm_total_violations);
            ("truncated_runs", J.num_of_int sm.Analyze.sm_truncated_runs);
          ] );
    ]

let summary_text ?top t =
  let sm = Analyze.summary ?top t in
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf "%d run(s): %d nodes, %d edges, %d violation(s)"
       (List.length sm.Analyze.sm_runs)
       sm.Analyze.sm_total_nodes sm.Analyze.sm_total_edges
       sm.Analyze.sm_total_violations);
  if sm.Analyze.sm_truncated_runs > 0 then
    Buffer.add_string b
      (Printf.sprintf " (%d run(s) with dropped provenance)"
         sm.Analyze.sm_truncated_runs);
  Buffer.add_char b '\n';
  List.iter
    (fun (r : Analyze.run_row) ->
      Buffer.add_string b
        (Printf.sprintf
           "  %-28s %6d B %5d nodes %5d edges %3d seed %3d viol%s\n"
           r.Analyze.r_name r.Analyze.r_bytes r.Analyze.r_nodes
           r.Analyze.r_edges r.Analyze.r_seeds r.Analyze.r_violations
           (if r.Analyze.r_dropped_edges > 0 || r.Analyze.r_dropped_sources > 0
            then
              Printf.sprintf " (dropped %d edges, %d sources)"
                r.Analyze.r_dropped_edges r.Analyze.r_dropped_sources
            else "")))
    sm.Analyze.sm_runs;
  if sm.Analyze.sm_origins <> [] then begin
    Buffer.add_string b "peripheral reach:\n";
    List.iter
      (fun (o : Analyze.origin_row) ->
        Buffer.add_string b
          (Printf.sprintf "  %-16s seeds=%d runs=%d violations_reached=%d\n"
             o.Analyze.o_origin o.Analyze.o_seeds o.Analyze.o_runs
             o.Analyze.o_violations_reached))
      sm.Analyze.sm_origins
  end;
  if sm.Analyze.sm_top_paths <> [] then begin
    Buffer.add_string b "top flow paths:\n";
    List.iter
      (fun (p : Analyze.path_row) ->
        Buffer.add_string b
          (Printf.sprintf "  %-16s -> %-24s flows=%d runs=%d\n"
             p.Analyze.p_origin p.Analyze.p_what p.Analyze.p_flows
             p.Analyze.p_runs))
      sm.Analyze.sm_top_paths
  end;
  Buffer.contents b

(* --- validation -------------------------------------------------------- *)

let need what = function Some v -> Ok v | None -> Error ("missing " ^ what)

let ( let* ) = Result.bind

let check_fields what fields obj =
  List.fold_left
    (fun acc (name, check) ->
      let* () = acc in
      let* v = need (what ^ "." ^ name) (J.member name obj) in
      if check v then Ok ()
      else Error (Printf.sprintf "%s.%s has wrong type" what name))
    (Ok ()) fields

let is_int v = J.to_int v <> None
let is_str v = J.to_str v <> None
let is_int_or_null v = v = J.Null || is_int v

let is_list_of check v =
  match J.to_list v with
  | None -> false
  | Some l -> List.for_all check l

let validate_runs what per_run j =
  let* runs = need (what ^ ".runs") (J.member "runs" j) in
  let* runs = need (what ^ ".runs list") (J.to_list runs) in
  List.fold_left
    (fun acc r ->
      let* () = acc in
      per_run r)
    (Ok ()) runs

let validate j =
  let* schema = need "schema" (J.member "schema" j) in
  let* schema = need "schema string" (J.to_str schema) in
  if schema <> schema_id then Error ("unknown schema " ^ schema)
  else
    let* kind = need "kind" (J.member "kind" j) in
    let* kind = need "kind string" (J.to_str kind) in
    match kind with
    | "sources-of" ->
        let* _ = need "query" (J.member "query" j) in
        validate_runs "sources-of"
          (fun r ->
            check_fields "run"
              [
                ("run", is_str);
                ("start", is_list_of is_int);
                ( "sources",
                  is_list_of (fun s ->
                      check_fields "source"
                        [
                          ("origin", is_str);
                          ("addr", is_int_or_null);
                          ("tag", is_int);
                          ("tag_name", is_str);
                          ("time", is_int);
                          ("node", is_int);
                        ]
                        s
                      = Ok ()) );
                ("tags", is_list_of is_int);
                ("nodes_visited", is_int);
              ]
              r)
          j
    | "reaches" ->
        let* _ = need "query" (J.member "query" j) in
        validate_runs "reaches"
          (fun r ->
            check_fields "run"
              [
                ("run", is_str);
                ("start", is_list_of is_int);
                ("nodes_reached", is_int);
                ("tags", is_list_of is_int);
                ("violations", is_list_of is_int);
                ("origins", is_list_of is_str);
              ]
              r)
          j
    | "summary" ->
        let* () =
          validate_runs "summary"
            (fun r ->
              check_fields "run"
                [
                  ("run", is_str);
                  ("bytes", is_int);
                  ("context", is_str);
                  ("nodes", is_int);
                  ("edges", is_int);
                  ("seeds", is_int);
                  ("merges", is_int);
                  ("declasses", is_int);
                  ("vias", is_int);
                  ("violations", is_int);
                  ("dropped_edges", is_int);
                  ("dropped_sources", is_int);
                ]
                r)
            j
        in
        let* origins = need "summary.origins" (J.member "origins" j) in
        let* () =
          if
            is_list_of
              (fun o ->
                check_fields "origin"
                  [
                    ("origin", is_str);
                    ("runs", is_int);
                    ("seeds", is_int);
                    ("violations_reached", is_int);
                  ]
                  o
                = Ok ())
              origins
          then Ok ()
          else Error "summary.origins malformed"
        in
        let* paths = need "summary.top_paths" (J.member "top_paths" j) in
        let* () =
          if
            is_list_of
              (fun p ->
                check_fields "path"
                  [
                    ("origin", is_str);
                    ("violation", is_str);
                    ("runs", is_int);
                    ("flows", is_int);
                  ]
                  p
                = Ok ())
              paths
          then Ok ()
          else Error "summary.top_paths malformed"
        in
        let* totals = need "summary.totals" (J.member "totals" j) in
        check_fields "totals"
          [
            ("nodes", is_int);
            ("edges", is_int);
            ("violations", is_int);
            ("truncated_runs", is_int);
          ]
          totals
    | k -> Error ("unknown report kind " ^ k)
