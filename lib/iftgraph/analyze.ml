(* Cross-run analysis over a directory of graph stores.

   Ingestion is lazy and parallel: creating an analyzer only lists the
   files; the first query decodes every store (sharded over a
   Parallelkit pool, results merged in file order, so any --jobs value
   produces identical reports) and pins them in memory. Query results
   are memoized per analyzer — a repeated query touches neither the
   files nor the decoded graphs, which [store_reads] / [memo_hits]
   expose for the tier-1 near-O(answer) check. *)

type entry = {
  e_name : string;
  e_path : string;
  mutable e_bytes : int;
  mutable e_store : (Store.t * Store.index) option;
}

type cached =
  | C_back of (string * Query.back) list
  | C_reach of (string * Query.reach) list

type t = {
  entries : entry array;  (** Sorted by file name. *)
  jobs : int;
  mutable store_reads : int;  (** Store files read and decoded. *)
  mutable memo_hits : int;
  memo : (string, cached) Hashtbl.t;
}

let store_ext = ".iftg"

let create ?(jobs = 1) paths =
  let entries =
    paths
    |> List.map (fun p ->
           { e_name = Filename.basename p; e_path = p; e_bytes = 0;
             e_store = None })
    |> List.sort (fun a b -> compare a.e_name b.e_name)
    |> Array.of_list
  in
  { entries; jobs = max 1 jobs; store_reads = 0; memo_hits = 0;
    memo = Hashtbl.create 16 }

let load_dir ?jobs dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Analyze.load_dir: %s is not a directory" dir);
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f store_ext)
    |> List.map (Filename.concat dir)
  in
  create ?jobs files

let run_count t = Array.length t.entries
let store_reads t = t.store_reads
let memo_hits t = t.memo_hits

(* Descriptor-safe read: a store that fails to decode must not leak the
   channel of the file it came from (parallel ingestion opens many). *)
let read_file = Snapshot.Io.read_file

(* Decode every not-yet-loaded store, in parallel, in file order. *)
let force t =
  let pending =
    Array.to_list t.entries |> List.filter (fun e -> e.e_store = None)
  in
  if pending <> [] then begin
    let loaded =
      Parallelkit.Pool.map_list ~jobs:t.jobs
        (fun e ->
          let raw = read_file e.e_path in
          (String.length raw, Store.of_string raw))
        pending
    in
    List.iter2
      (fun e (bytes, store) ->
        t.store_reads <- t.store_reads + 1;
        e.e_bytes <- bytes;
        e.e_store <- Some (store, Store.index store))
      pending loaded
  end

let stores t =
  force t;
  Array.to_list t.entries
  |> List.map (fun e ->
         match e.e_store with
         | Some (s, idx) -> (e.e_name, s, idx)
         | None -> assert false)

let memoized t key compute =
  match Hashtbl.find_opt t.memo key with
  | Some v ->
      t.memo_hits <- t.memo_hits + 1;
      v
  | None ->
      let v = compute () in
      Hashtbl.add t.memo key v;
      v

let sources_of t pred =
  let key = "sources-of " ^ Query.pred_to_string pred in
  match
    memoized t key (fun () ->
        C_back
          (stores t
          |> List.map (fun (name, s, idx) -> (name, Query.sources_of s idx pred))
          ))
  with
  | C_back r -> r
  | C_reach _ -> assert false

let reaches t pred =
  let key = "reaches " ^ Query.pred_to_string pred in
  match
    memoized t key (fun () ->
        C_reach
          (stores t
          |> List.map (fun (name, s, idx) -> (name, Query.reaches s idx pred))))
  with
  | C_reach r -> r
  | C_back _ -> assert false

(* --- Cross-run aggregation -------------------------------------------- *)

type run_row = {
  r_name : string;
  r_bytes : int;
  r_context : string;
  r_nodes : int;
  r_edges : int;
  r_seeds : int;
  r_merges : int;
  r_declasses : int;
  r_vias : int;
  r_violations : int;
  r_dropped_edges : int;
  r_dropped_sources : int;
}

type origin_row = {
  o_origin : string;
  o_runs : int;  (** Runs whose graph seeds from this origin. *)
  o_seeds : int;  (** Seed nodes across all runs. *)
  o_violations_reached : int;
      (** Violations (across runs) whose backward source set includes
          this origin — the per-peripheral reach histogram. *)
}

type path_row = {
  p_origin : string;
  p_what : string;  (** Violation description. *)
  p_runs : int;
  p_flows : int;  (** origin -> violation pairs observed. *)
}

type summary = {
  sm_runs : run_row list;
  sm_origins : origin_row list;  (** Sorted by origin name. *)
  sm_top_paths : path_row list;  (** By descending flow count. *)
  sm_total_nodes : int;
  sm_total_edges : int;
  sm_total_violations : int;
  sm_truncated_runs : int;  (** Runs with nonzero dropped counters. *)
}

let summary ?(top = 10) t =
  force t;
  let rows =
    Array.to_list t.entries
    |> List.map (fun e ->
           let s, _ = Option.get e.e_store in
           let seeds, merges, declasses, vias, violations = Store.stats s in
           {
             r_name = e.e_name;
             r_bytes = e.e_bytes;
             r_context = s.Store.meta.Store.context;
             r_nodes = Array.length s.Store.nodes;
             r_edges = Array.length s.Store.edges;
             r_seeds = seeds;
             r_merges = merges;
             r_declasses = declasses;
             r_vias = vias;
             r_violations = violations;
             r_dropped_edges = s.Store.meta.Store.dropped_edges;
             r_dropped_sources = s.Store.meta.Store.dropped_sources;
           })
  in
  (* Per-origin histogram and origin -> violation flow paths: one
     backward walk per violation per run (memoized like any query). *)
  let origins : (string, int ref * int ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let get_origin o =
    match Hashtbl.find_opt origins o with
    | Some r -> r
    | None ->
        let r = (ref 0, ref 0, ref 0) in
        Hashtbl.add origins o r;
        r
  in
  let paths : (string * string, int ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (_, s, idx) ->
      let seen_run = Hashtbl.create 8 in
      Array.iter
        (fun n ->
          if n.Store.n_kind = Store.Seed then begin
            let runs, seeds, _ = get_origin n.Store.n_origin in
            seeds := !seeds + 1;
            if not (Hashtbl.mem seen_run n.Store.n_origin) then begin
              Hashtbl.add seen_run n.Store.n_origin ();
              incr runs
            end
          end)
        s.Store.nodes;
      let seen_path_run = Hashtbl.create 8 in
      Array.iteri
        (fun k _ ->
          let back = Query.sources_of s idx (Query.P_violation k) in
          let what =
            match back.Query.bk_start with
            | id :: _ -> s.Store.nodes.(id).Store.n_origin
            | [] -> ""
          in
          List.iter
            (fun src ->
              let _, _, viol = get_origin src.Query.src_origin in
              incr viol;
              let key = (src.Query.src_origin, what) in
              let runs, flows =
                match Hashtbl.find_opt paths key with
                | Some r -> r
                | None ->
                    let r = (ref 0, ref 0) in
                    Hashtbl.add paths key r;
                    r
              in
              incr flows;
              if not (Hashtbl.mem seen_path_run key) then begin
                Hashtbl.add seen_path_run key ();
                incr runs
              end)
            back.Query.bk_sources)
        idx.Store.violations)
    (stores t);
  let origin_rows =
    Hashtbl.fold
      (fun o (runs, seeds, viol) acc ->
        { o_origin = o; o_runs = !runs; o_seeds = !seeds;
          o_violations_reached = !viol }
        :: acc)
      origins []
    |> List.sort (fun a b -> compare a.o_origin b.o_origin)
  in
  let path_rows =
    Hashtbl.fold
      (fun (o, w) (runs, flows) acc ->
        { p_origin = o; p_what = w; p_runs = !runs; p_flows = !flows } :: acc)
      paths []
    |> List.sort (fun a b ->
           compare (-a.p_flows, a.p_origin, a.p_what)
             (-b.p_flows, b.p_origin, b.p_what))
  in
  let path_rows =
    if List.length path_rows <= top then path_rows
    else List.filteri (fun i _ -> i < top) path_rows
  in
  {
    sm_runs = rows;
    sm_origins = origin_rows;
    sm_top_paths = path_rows;
    sm_total_nodes = List.fold_left (fun a r -> a + r.r_nodes) 0 rows;
    sm_total_edges = List.fold_left (fun a r -> a + r.r_edges) 0 rows;
    sm_total_violations =
      List.fold_left (fun a r -> a + r.r_violations) 0 rows;
    sm_truncated_runs =
      List.fold_left
        (fun a r ->
          if r.r_dropped_edges > 0 || r.r_dropped_sources > 0 then a + 1
          else a)
        0 rows;
  }
