(** Incremental, deduplicating construction of a {!Store.t}.

    The builder is fed by the [Trace.Graph] sink while the simulation
    runs: commits are appended in observation order, exact repeats (same
    kind, classes, origin, address {e and} pc) coalesce into the existing
    node's count, and flow edges are derived on append — a per-class
    chain edge from the previous commit of the same class plus input
    edges from the latest commit of each merge/declass input class.
    [finish] freezes everything into a store value. *)

type t

val create : ?context:string -> classes:string list -> unit -> t
(** [classes] are the lattice's class names, indexed by tag. *)

val set_context : t -> string -> unit

val set_pos : t -> time:int -> pc:int -> unit
(** Current simulation position; stamped onto subsequent commits. *)

val set_dropped : t -> edges:int -> sources:int -> unit
(** Bounded-provenance overflow counters for the store header. *)

val add_seed : t -> origin:string -> ?addr:int -> time:int -> tag:int -> unit -> unit
val add_merge : t -> a:int -> b:int -> result:int -> unit
val add_declass : t -> from:int -> result:int -> unit
val add_via : t -> channel:string -> tag:int -> unit
val add_violation : t -> what:string -> pc:int -> time:int -> tag:int -> unit

val node_count : t -> int
val edge_count : t -> int

val finish : t -> Store.t
(** The builder stays usable afterwards (the snapshot is a copy); calling
    [finish] again after more commits yields the longer graph. *)
